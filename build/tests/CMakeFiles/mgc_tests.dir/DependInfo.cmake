
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dacapo/harness_test.cpp" "tests/CMakeFiles/mgc_tests.dir/dacapo/harness_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/dacapo/harness_test.cpp.o.d"
  "/root/repo/tests/dacapo/kernels_test.cpp" "tests/CMakeFiles/mgc_tests.dir/dacapo/kernels_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/dacapo/kernels_test.cpp.o.d"
  "/root/repo/tests/gc/concurrent_cycle_test.cpp" "tests/CMakeFiles/mgc_tests.dir/gc/concurrent_cycle_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/gc/concurrent_cycle_test.cpp.o.d"
  "/root/repo/tests/gc/g1_specific_test.cpp" "tests/CMakeFiles/mgc_tests.dir/gc/g1_specific_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/gc/g1_specific_test.cpp.o.d"
  "/root/repo/tests/gc/gc_property_test.cpp" "tests/CMakeFiles/mgc_tests.dir/gc/gc_property_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/gc/gc_property_test.cpp.o.d"
  "/root/repo/tests/heap/free_list_test.cpp" "tests/CMakeFiles/mgc_tests.dir/heap/free_list_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/heap/free_list_test.cpp.o.d"
  "/root/repo/tests/heap/object_test.cpp" "tests/CMakeFiles/mgc_tests.dir/heap/object_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/heap/object_test.cpp.o.d"
  "/root/repo/tests/heap/region_test.cpp" "tests/CMakeFiles/mgc_tests.dir/heap/region_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/heap/region_test.cpp.o.d"
  "/root/repo/tests/heap/spaces_test.cpp" "tests/CMakeFiles/mgc_tests.dir/heap/spaces_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/heap/spaces_test.cpp.o.d"
  "/root/repo/tests/kvstore/server_concurrency_test.cpp" "tests/CMakeFiles/mgc_tests.dir/kvstore/server_concurrency_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/kvstore/server_concurrency_test.cpp.o.d"
  "/root/repo/tests/kvstore/store_test.cpp" "tests/CMakeFiles/mgc_tests.dir/kvstore/store_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/kvstore/store_test.cpp.o.d"
  "/root/repo/tests/runtime/managed_test.cpp" "tests/CMakeFiles/mgc_tests.dir/runtime/managed_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/runtime/managed_test.cpp.o.d"
  "/root/repo/tests/runtime/safepoint_test.cpp" "tests/CMakeFiles/mgc_tests.dir/runtime/safepoint_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/runtime/safepoint_test.cpp.o.d"
  "/root/repo/tests/runtime/verifier_and_log_test.cpp" "tests/CMakeFiles/mgc_tests.dir/runtime/verifier_and_log_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/runtime/verifier_and_log_test.cpp.o.d"
  "/root/repo/tests/runtime/vm_smoke_test.cpp" "tests/CMakeFiles/mgc_tests.dir/runtime/vm_smoke_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/runtime/vm_smoke_test.cpp.o.d"
  "/root/repo/tests/support/histogram_test.cpp" "tests/CMakeFiles/mgc_tests.dir/support/histogram_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/support/histogram_test.cpp.o.d"
  "/root/repo/tests/support/rng_test.cpp" "tests/CMakeFiles/mgc_tests.dir/support/rng_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/support/rng_test.cpp.o.d"
  "/root/repo/tests/support/stats_test.cpp" "tests/CMakeFiles/mgc_tests.dir/support/stats_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/support/stats_test.cpp.o.d"
  "/root/repo/tests/support/ws_deque_test.cpp" "tests/CMakeFiles/mgc_tests.dir/support/ws_deque_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/support/ws_deque_test.cpp.o.d"
  "/root/repo/tests/ycsb/client_test.cpp" "tests/CMakeFiles/mgc_tests.dir/ycsb/client_test.cpp.o" "gcc" "tests/CMakeFiles/mgc_tests.dir/ycsb/client_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mgc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/dacapo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ycsb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
