file(REMOVE_RECURSE
  "CMakeFiles/gc_pause_study.dir/gc_pause_study.cpp.o"
  "CMakeFiles/gc_pause_study.dir/gc_pause_study.cpp.o.d"
  "gc_pause_study"
  "gc_pause_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_pause_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
