# Empty dependencies file for gc_pause_study.
# This may be replaced when dependencies are built.
