file(REMOVE_RECURSE
  "CMakeFiles/cassandra_server.dir/cassandra_server.cpp.o"
  "CMakeFiles/cassandra_server.dir/cassandra_server.cpp.o.d"
  "cassandra_server"
  "cassandra_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cassandra_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
