# Empty dependencies file for cassandra_server.
# This may be replaced when dependencies are built.
