file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_gc_traits.dir/bench_table1_gc_traits.cpp.o"
  "CMakeFiles/bench_table1_gc_traits.dir/bench_table1_gc_traits.cpp.o.d"
  "bench_table1_gc_traits"
  "bench_table1_gc_traits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_gc_traits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
