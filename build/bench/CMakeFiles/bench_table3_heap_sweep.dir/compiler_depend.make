# Empty compiler generated dependencies file for bench_table3_heap_sweep.
# This may be replaced when dependencies are built.
