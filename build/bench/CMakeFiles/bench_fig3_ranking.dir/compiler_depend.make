# Empty compiler generated dependencies file for bench_fig3_ranking.
# This may be replaced when dependencies are built.
