# Empty dependencies file for bench_table4_tlab.
# This may be replaced when dependencies are built.
