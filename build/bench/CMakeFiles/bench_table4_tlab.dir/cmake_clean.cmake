file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_tlab.dir/bench_table4_tlab.cpp.o"
  "CMakeFiles/bench_table4_tlab.dir/bench_table4_tlab.cpp.o.d"
  "bench_table4_tlab"
  "bench_table4_tlab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_tlab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
