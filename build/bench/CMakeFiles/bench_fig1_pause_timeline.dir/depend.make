# Empty dependencies file for bench_fig1_pause_timeline.
# This may be replaced when dependencies are built.
