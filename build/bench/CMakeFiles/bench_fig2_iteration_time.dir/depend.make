# Empty dependencies file for bench_fig2_iteration_time.
# This may be replaced when dependencies are built.
