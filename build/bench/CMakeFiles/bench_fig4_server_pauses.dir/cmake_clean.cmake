file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_server_pauses.dir/bench_fig4_server_pauses.cpp.o"
  "CMakeFiles/bench_fig4_server_pauses.dir/bench_fig4_server_pauses.cpp.o.d"
  "bench_fig4_server_pauses"
  "bench_fig4_server_pauses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_server_pauses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
