file(REMOVE_RECURSE
  "CMakeFiles/kvstore.dir/kvstore/commit_log.cpp.o"
  "CMakeFiles/kvstore.dir/kvstore/commit_log.cpp.o.d"
  "CMakeFiles/kvstore.dir/kvstore/memtable.cpp.o"
  "CMakeFiles/kvstore.dir/kvstore/memtable.cpp.o.d"
  "CMakeFiles/kvstore.dir/kvstore/row_codec.cpp.o"
  "CMakeFiles/kvstore.dir/kvstore/row_codec.cpp.o.d"
  "CMakeFiles/kvstore.dir/kvstore/server.cpp.o"
  "CMakeFiles/kvstore.dir/kvstore/server.cpp.o.d"
  "CMakeFiles/kvstore.dir/kvstore/sstable.cpp.o"
  "CMakeFiles/kvstore.dir/kvstore/sstable.cpp.o.d"
  "CMakeFiles/kvstore.dir/kvstore/store.cpp.o"
  "CMakeFiles/kvstore.dir/kvstore/store.cpp.o.d"
  "libkvstore.a"
  "libkvstore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
