file(REMOVE_RECURSE
  "libkvstore.a"
)
