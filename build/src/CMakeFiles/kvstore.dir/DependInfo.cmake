
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kvstore/commit_log.cpp" "src/CMakeFiles/kvstore.dir/kvstore/commit_log.cpp.o" "gcc" "src/CMakeFiles/kvstore.dir/kvstore/commit_log.cpp.o.d"
  "/root/repo/src/kvstore/memtable.cpp" "src/CMakeFiles/kvstore.dir/kvstore/memtable.cpp.o" "gcc" "src/CMakeFiles/kvstore.dir/kvstore/memtable.cpp.o.d"
  "/root/repo/src/kvstore/row_codec.cpp" "src/CMakeFiles/kvstore.dir/kvstore/row_codec.cpp.o" "gcc" "src/CMakeFiles/kvstore.dir/kvstore/row_codec.cpp.o.d"
  "/root/repo/src/kvstore/server.cpp" "src/CMakeFiles/kvstore.dir/kvstore/server.cpp.o" "gcc" "src/CMakeFiles/kvstore.dir/kvstore/server.cpp.o.d"
  "/root/repo/src/kvstore/sstable.cpp" "src/CMakeFiles/kvstore.dir/kvstore/sstable.cpp.o" "gcc" "src/CMakeFiles/kvstore.dir/kvstore/sstable.cpp.o.d"
  "/root/repo/src/kvstore/store.cpp" "src/CMakeFiles/kvstore.dir/kvstore/store.cpp.o" "gcc" "src/CMakeFiles/kvstore.dir/kvstore/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mgc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
