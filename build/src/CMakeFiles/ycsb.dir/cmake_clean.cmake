file(REMOVE_RECURSE
  "CMakeFiles/ycsb.dir/ycsb/client.cpp.o"
  "CMakeFiles/ycsb.dir/ycsb/client.cpp.o.d"
  "CMakeFiles/ycsb.dir/ycsb/latency_stats.cpp.o"
  "CMakeFiles/ycsb.dir/ycsb/latency_stats.cpp.o.d"
  "CMakeFiles/ycsb.dir/ycsb/workload.cpp.o"
  "CMakeFiles/ycsb.dir/ycsb/workload.cpp.o.d"
  "libycsb.a"
  "libycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
