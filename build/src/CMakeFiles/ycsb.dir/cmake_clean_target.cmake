file(REMOVE_RECURSE
  "libycsb.a"
)
