# Empty dependencies file for ycsb.
# This may be replaced when dependencies are built.
