
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ycsb/client.cpp" "src/CMakeFiles/ycsb.dir/ycsb/client.cpp.o" "gcc" "src/CMakeFiles/ycsb.dir/ycsb/client.cpp.o.d"
  "/root/repo/src/ycsb/latency_stats.cpp" "src/CMakeFiles/ycsb.dir/ycsb/latency_stats.cpp.o" "gcc" "src/CMakeFiles/ycsb.dir/ycsb/latency_stats.cpp.o.d"
  "/root/repo/src/ycsb/workload.cpp" "src/CMakeFiles/ycsb.dir/ycsb/workload.cpp.o" "gcc" "src/CMakeFiles/ycsb.dir/ycsb/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/kvstore.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/mgc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
