file(REMOVE_RECURSE
  "CMakeFiles/dacapo.dir/dacapo/harness.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/harness.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/avrora.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/avrora.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/batik.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/batik.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/common.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/common.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/crashers.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/crashers.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/fop.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/fop.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/h2.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/h2.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/jython.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/jython.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/luindex.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/luindex.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/lusearch.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/lusearch.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/pmd.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/pmd.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/sunflow.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/sunflow.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/tomcat.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/tomcat.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/kernels/xalan.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/kernels/xalan.cpp.o.d"
  "CMakeFiles/dacapo.dir/dacapo/suite.cpp.o"
  "CMakeFiles/dacapo.dir/dacapo/suite.cpp.o.d"
  "libdacapo.a"
  "libdacapo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dacapo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
