
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dacapo/harness.cpp" "src/CMakeFiles/dacapo.dir/dacapo/harness.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/harness.cpp.o.d"
  "/root/repo/src/dacapo/kernels/avrora.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/avrora.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/avrora.cpp.o.d"
  "/root/repo/src/dacapo/kernels/batik.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/batik.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/batik.cpp.o.d"
  "/root/repo/src/dacapo/kernels/common.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/common.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/common.cpp.o.d"
  "/root/repo/src/dacapo/kernels/crashers.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/crashers.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/crashers.cpp.o.d"
  "/root/repo/src/dacapo/kernels/fop.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/fop.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/fop.cpp.o.d"
  "/root/repo/src/dacapo/kernels/h2.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/h2.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/h2.cpp.o.d"
  "/root/repo/src/dacapo/kernels/jython.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/jython.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/jython.cpp.o.d"
  "/root/repo/src/dacapo/kernels/luindex.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/luindex.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/luindex.cpp.o.d"
  "/root/repo/src/dacapo/kernels/lusearch.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/lusearch.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/lusearch.cpp.o.d"
  "/root/repo/src/dacapo/kernels/pmd.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/pmd.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/pmd.cpp.o.d"
  "/root/repo/src/dacapo/kernels/sunflow.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/sunflow.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/sunflow.cpp.o.d"
  "/root/repo/src/dacapo/kernels/tomcat.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/tomcat.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/tomcat.cpp.o.d"
  "/root/repo/src/dacapo/kernels/xalan.cpp" "src/CMakeFiles/dacapo.dir/dacapo/kernels/xalan.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/kernels/xalan.cpp.o.d"
  "/root/repo/src/dacapo/suite.cpp" "src/CMakeFiles/dacapo.dir/dacapo/suite.cpp.o" "gcc" "src/CMakeFiles/dacapo.dir/dacapo/suite.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/mgc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
