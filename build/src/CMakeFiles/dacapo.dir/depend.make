# Empty dependencies file for dacapo.
# This may be replaced when dependencies are built.
