file(REMOVE_RECURSE
  "libdacapo.a"
)
