
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gc/classic_collector.cpp" "src/CMakeFiles/mgc.dir/gc/classic_collector.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/classic_collector.cpp.o.d"
  "/root/repo/src/gc/classic_heap.cpp" "src/CMakeFiles/mgc.dir/gc/classic_heap.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/classic_heap.cpp.o.d"
  "/root/repo/src/gc/cms_gc.cpp" "src/CMakeFiles/mgc.dir/gc/cms_gc.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/cms_gc.cpp.o.d"
  "/root/repo/src/gc/factory.cpp" "src/CMakeFiles/mgc.dir/gc/factory.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/factory.cpp.o.d"
  "/root/repo/src/gc/full_compact.cpp" "src/CMakeFiles/mgc.dir/gc/full_compact.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/full_compact.cpp.o.d"
  "/root/repo/src/gc/g1_gc.cpp" "src/CMakeFiles/mgc.dir/gc/g1_gc.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/g1_gc.cpp.o.d"
  "/root/repo/src/gc/marking.cpp" "src/CMakeFiles/mgc.dir/gc/marking.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/marking.cpp.o.d"
  "/root/repo/src/gc/parallel_gc.cpp" "src/CMakeFiles/mgc.dir/gc/parallel_gc.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/parallel_gc.cpp.o.d"
  "/root/repo/src/gc/parallel_old_gc.cpp" "src/CMakeFiles/mgc.dir/gc/parallel_old_gc.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/parallel_old_gc.cpp.o.d"
  "/root/repo/src/gc/parnew_gc.cpp" "src/CMakeFiles/mgc.dir/gc/parnew_gc.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/parnew_gc.cpp.o.d"
  "/root/repo/src/gc/scavenge.cpp" "src/CMakeFiles/mgc.dir/gc/scavenge.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/scavenge.cpp.o.d"
  "/root/repo/src/gc/serial_gc.cpp" "src/CMakeFiles/mgc.dir/gc/serial_gc.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/gc/serial_gc.cpp.o.d"
  "/root/repo/src/heap/arena.cpp" "src/CMakeFiles/mgc.dir/heap/arena.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/heap/arena.cpp.o.d"
  "/root/repo/src/heap/card_table.cpp" "src/CMakeFiles/mgc.dir/heap/card_table.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/heap/card_table.cpp.o.d"
  "/root/repo/src/heap/contiguous_space.cpp" "src/CMakeFiles/mgc.dir/heap/contiguous_space.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/heap/contiguous_space.cpp.o.d"
  "/root/repo/src/heap/free_list_space.cpp" "src/CMakeFiles/mgc.dir/heap/free_list_space.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/heap/free_list_space.cpp.o.d"
  "/root/repo/src/heap/object.cpp" "src/CMakeFiles/mgc.dir/heap/object.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/heap/object.cpp.o.d"
  "/root/repo/src/heap/region.cpp" "src/CMakeFiles/mgc.dir/heap/region.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/heap/region.cpp.o.d"
  "/root/repo/src/heap/remembered_set.cpp" "src/CMakeFiles/mgc.dir/heap/remembered_set.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/heap/remembered_set.cpp.o.d"
  "/root/repo/src/runtime/gc_kind.cpp" "src/CMakeFiles/mgc.dir/runtime/gc_kind.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/runtime/gc_kind.cpp.o.d"
  "/root/repo/src/runtime/gc_log.cpp" "src/CMakeFiles/mgc.dir/runtime/gc_log.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/runtime/gc_log.cpp.o.d"
  "/root/repo/src/runtime/heap_verifier.cpp" "src/CMakeFiles/mgc.dir/runtime/heap_verifier.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/runtime/heap_verifier.cpp.o.d"
  "/root/repo/src/runtime/managed.cpp" "src/CMakeFiles/mgc.dir/runtime/managed.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/runtime/managed.cpp.o.d"
  "/root/repo/src/runtime/mutator.cpp" "src/CMakeFiles/mgc.dir/runtime/mutator.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/runtime/mutator.cpp.o.d"
  "/root/repo/src/runtime/safepoint.cpp" "src/CMakeFiles/mgc.dir/runtime/safepoint.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/runtime/safepoint.cpp.o.d"
  "/root/repo/src/runtime/vm.cpp" "src/CMakeFiles/mgc.dir/runtime/vm.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/runtime/vm.cpp.o.d"
  "/root/repo/src/runtime/vm_config.cpp" "src/CMakeFiles/mgc.dir/runtime/vm_config.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/runtime/vm_config.cpp.o.d"
  "/root/repo/src/support/clock.cpp" "src/CMakeFiles/mgc.dir/support/clock.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/support/clock.cpp.o.d"
  "/root/repo/src/support/env.cpp" "src/CMakeFiles/mgc.dir/support/env.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/support/env.cpp.o.d"
  "/root/repo/src/support/gc_worker_pool.cpp" "src/CMakeFiles/mgc.dir/support/gc_worker_pool.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/support/gc_worker_pool.cpp.o.d"
  "/root/repo/src/support/histogram.cpp" "src/CMakeFiles/mgc.dir/support/histogram.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/support/histogram.cpp.o.d"
  "/root/repo/src/support/stats.cpp" "src/CMakeFiles/mgc.dir/support/stats.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/support/stats.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/mgc.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/mgc.dir/support/table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
