// Three-node replication smoke: loads a replicated kvstore through the
// rotating client, then forces a leader failover — a stop-the-world pause
// on the leader (the pump parks at the safepoint, exactly the GC sensor
// the design hangs the failure detector off) with its heartbeats
// deterministically suppressed so the detector must fire — and keeps
// writing through the election. Every phase asserts it actually happened:
// writes acked, an election won, the old leader deposed, client
// redirects observed. Ends with the cluster-wide safety verifier and the
// zero-lost-acked-writes check. Exits non-zero on any violation or on a
// vacuous run.
//
//   repl_smoke [--quick]   (--quick: CI-sized run, ~200 keys)
#include <cstdio>
#include <cstring>
#include <iostream>
#include <thread>

#include "replication/cluster.h"
#include "replication/repl_client.h"
#include "support/fault.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace mgc;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::uint64_t keys = quick ? 200 : 2000;
  const std::size_t vlen = 256;

  repl::ClusterConfig cc;
  cc.nodes = 3;
  repl::NodeConfig& nc = cc.node;
  nc.shards = 2;
  nc.quorum = 2;
  nc.heartbeat_every_ticks = 1;
  nc.election_timeout_ticks = 8;
  nc.vm.gc = GcKind::kSerial;
  nc.vm.heap_bytes = 48 * MiB;
  nc.vm.young_bytes = 12 * MiB;
  nc.vm.gc_threads = 2;
  nc.store = kv::StoreConfig::default_config(nc.vm.heap_bytes);
  nc.store.value_len = vlen;

  repl::Cluster cluster(cc);
  cluster.start_ticker(/*interval_us=*/1000);

  int leader = -1;
  if (!cluster.wait_leader(&leader)) {
    std::cerr << "FAIL: no leader after bootstrap\n";
    return 2;
  }

  net::RetryPolicy policy;
  policy.timeout_ms = 2000;
  policy.backoff_initial_ms = 1;
  policy.backoff_cap_ms = 50;
  repl::ReplClient client(cluster.client_ports(), {policy, /*max_rounds=*/32});

  // Phase 1: load. Every insert must come back kOk (acked by a quorum).
  std::uint64_t failed = 0;
  for (std::uint64_t k = 0; k < keys; ++k) {
    kv::Request req;
    req.op = kv::OpType::kInsert;
    req.key = k;
    req.value_len = vlen;
    if (client.execute(req).status != kv::ExecStatus::kOk) ++failed;
  }
  if (failed != 0) {
    std::cerr << "FAIL: " << failed << " of " << keys << " loads not acked\n";
    return 1;
  }
  if (!cluster.wait_converged()) {
    std::cerr << "FAIL: cluster did not converge after load\n";
    return 1;
  }

  // Phase 2: forced failover. Suppress every heartbeat the leader sends
  // (deterministic — the detector MUST fire) and park its pump in a forced
  // full STW pause while the tick clock keeps running: the same silence a
  // long collector pause inflicts, minus the luck about its length.
  const int old_leader = leader;
  {
    char spec[64];
    std::snprintf(spec, sizeof(spec), "repl-heartbeat-loss:scope=%d",
                  old_leader);
    std::string err;
    if (!fault::parse_spec(spec, &err)) {
      std::cerr << "bad fault spec: " << err << "\n";
      return 2;
    }
    fault::set_seed(7);
  }
  {
    // The pause itself: parks this thread AND the leader's pump/workers.
    Vm::MutatorScope scope(cluster.node(static_cast<std::size_t>(old_leader)).vm(),
                           "smoke-forced-pause");
    scope.mutator().system_gc();
  }
  int new_leader = -1;
  for (int waited = 0; waited < 5000; ++waited) {
    new_leader = cluster.leader_index();
    if (new_leader >= 0 && new_leader != old_leader) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  fault::disarm_all();
  if (new_leader < 0 || new_leader == old_leader) {
    std::cerr << "FAIL: no failover (leader still " << old_leader << ")\n";
    return 1;
  }

  // Phase 3: keep writing through/after the election; the client must
  // chase the leadership via kNotLeader redirects.
  for (std::uint64_t k = keys; k < keys + keys / 2; ++k) {
    kv::Request req;
    req.op = kv::OpType::kInsert;
    req.key = k;
    req.value_len = vlen;
    if (client.execute(req).status != kv::ExecStatus::kOk) ++failed;
  }
  if (failed != 0) {
    std::cerr << "FAIL: " << failed << " post-failover writes not acked\n";
    return 1;
  }

  // Phase 4: settle, then verify safety cluster-wide.
  if (!cluster.wait_converged()) {
    std::cerr << "FAIL: cluster did not re-converge after failover\n";
    return 1;
  }
  const std::vector<std::string> bad = cluster.verify(&client.acked_keys());
  for (const std::string& b : bad) std::cerr << "VERIFY: " << b << "\n";

  // Non-vacuousness: the failover must have been real, observed end to end.
  const repl::NodeStats old_stats =
      cluster.node(static_cast<std::size_t>(old_leader)).stats();
  const repl::NodeStats new_stats =
      cluster.node(static_cast<std::size_t>(new_leader)).stats();
  bool vacuous = false;
  if (old_stats.heartbeats_lost == 0) {
    std::cerr << "FAIL: heartbeat-loss fault never fired\n";
    vacuous = true;
  }
  if (new_stats.elections_won == 0) {
    std::cerr << "FAIL: new leader won no election\n";
    vacuous = true;
  }
  if (old_stats.stepdowns == 0) {
    std::cerr << "FAIL: old leader never stepped down\n";
    vacuous = true;
  }
  if (client.rotations() == 0) {
    std::cerr << "FAIL: client never redirected\n";
    vacuous = true;
  }
  if (client.acked_keys().size() != keys + keys / 2) {
    std::cerr << "FAIL: acked " << client.acked_keys().size() << " writes, "
              << "expected " << (keys + keys / 2) << "\n";
    vacuous = true;
  }

  cluster.shutdown();

  std::cout << "repl smoke: " << client.acked_keys().size() << " acked writes, "
            << "leader " << old_leader << " -> " << new_leader
            << ", client rotations " << client.rotations() << ", backoffs "
            << client.backoffs() << "\n";
  if (!bad.empty() || vacuous) {
    std::cerr << "FAIL: " << bad.size() << " safety violations, vacuous="
              << (vacuous ? "yes" : "no") << "\n";
    return 1;
  }
  std::cout << "repl smoke OK\n";
  return 0;
}
