// Example: run any DaCapo-like benchmark under any collector and print its
// pause profile — a miniature of the paper's §3 methodology.
//
//   $ ./build/examples/gc_pause_study [benchmark] [GC] [heap_paper_GB] [young_paper_GB]
//   $ ./build/examples/gc_pause_study xalan G1 16 5.6
#include <cstdlib>
#include <iostream>

#include "dacapo/harness.h"
#include "dacapo/suite.h"
#include "support/table.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace mgc;
  using namespace mgc::dacapo;

  const std::string benchmark = argc > 1 ? argv[1] : "xalan";
  const GcKind gc = argc > 2 ? gc_kind_from_name(argv[2]) : GcKind::kParallelOld;
  const double heap_gb = argc > 3 ? std::atof(argv[3]) : 16.0;
  const double young_gb = argc > 4 ? std::atof(argv[4]) : 5.6;

  VmConfig cfg = VmConfig::baseline(gc);
  cfg.heap_bytes = static_cast<std::size_t>(heap_gb * 1024) * scale::MB;
  cfg.young_bytes = static_cast<std::size_t>(young_gb * 1024) * scale::MB;

  std::cout << "running " << benchmark << " under " << cfg.describe()
            << " (paper-scale " << heap_gb << "GB/" << young_gb << "GB)\n";

  HarnessOptions opts;
  opts.iterations = 10;
  opts.system_gc_between_iterations = true;
  const HarnessResult res = run_benchmark(cfg, benchmark, opts);
  if (res.crashed) {
    std::cout << benchmark << " crashed (the paper excluded it too)\n";
    return 1;
  }

  Table iters("iteration wall times");
  iters.header({"iteration", "wall (ms)", "cpu (ms)"});
  for (std::size_t i = 0; i < res.iteration_s.size(); ++i) {
    iters.row({std::to_string(i + 1), Table::num(res.iteration_s[i] * 1e3, 2),
               Table::num(res.iteration_cpu_s[i] * 1e3, 2)});
  }
  iters.print(std::cout);

  Table pauses("pause events");
  pauses.header({"t (s)", "kind", "cause", "ms", "heap before->after KiB"});
  for (const PauseEvent& e : res.pause_events) {
    pauses.row({Table::num(ns_to_s(e.start_ns - res.vm_origin_ns), 3),
                pause_kind_name(e.kind), gc_cause_name(e.cause),
                Table::num(e.duration_ms(), 3),
                std::to_string(e.used_before / 1024) + "->" +
                    std::to_string(e.used_after / 1024)});
  }
  pauses.print(std::cout);

  std::cout << "total " << res.total_s << " s, " << res.pauses.pauses
            << " pauses, max pause " << res.pauses.max_s * 1e3 << " ms\n";
  return 0;
}
