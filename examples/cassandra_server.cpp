// Example: the client-server experiment in miniature. Boot the
// Cassandra-like store under a chosen collector, run a YCSB-style load +
// transaction phase, and print how server GC pauses surfaced as client
// latency. With --net the client talks to the server over loopback TCP
// through the epoll front-end (the paper's measurement path); the server
// is then shut down gracefully (drain in-flight, flush responses, stop
// workers) before the statistics are printed.
//
//   $ ./build/examples/cassandra_server [GC] [default|stress] [records] [ops] [--net]
//   $ ./build/examples/cassandra_server CMS stress 8000 40000 --net
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "kvstore/server.h"
#include "net/net_server.h"
#include "support/env.h"
#include "support/table.h"
#include "support/units.h"
#include "ycsb/latency_stats.h"

int main(int argc, char** argv) {
  using namespace mgc;

  bool use_net = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--net") == 0) {
      use_net = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }

  const GcKind gc = args.size() > 0 ? gc_kind_from_name(args[0].c_str())
                                    : GcKind::kCms;
  const bool stress = args.size() > 1 && args[1] == "stress";
  const std::uint64_t records =
      args.size() > 2 ? std::strtoull(args[2].c_str(), nullptr, 10) : 8000;
  const std::uint64_t ops =
      args.size() > 3 ? std::strtoull(args[3].c_str(), nullptr, 10) : 40000;

  VmConfig cfg = VmConfig::baseline(gc);
  cfg.heap_bytes = 64ULL * 1024 * scale::MB;  // the paper's 64 GB, scaled
  cfg.young_bytes = 12ULL * 1024 * scale::MB;
  Vm vm(cfg);

  kv::StoreConfig scfg = stress
                             ? kv::StoreConfig::stress_config(cfg.heap_bytes)
                             : kv::StoreConfig::default_config(cfg.heap_bytes);
  kv::Store store(vm, scfg);
  kv::Server server(vm, store, /*workers=*/4);

  std::unique_ptr<net::NetServer> net_server;
  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::paper_custom(records, ops, 4);
  std::unique_ptr<ycsb::Client> client;
  if (use_net) {
    net_server = std::make_unique<net::NetServer>(server);
    ycsb::RemoteEndpoint ep;
    ep.port = net_server->port();
    client = std::make_unique<ycsb::Client>(ep, spec, env::seed());
  } else {
    client = std::make_unique<ycsb::Client>(server, spec, env::seed());
  }

  std::cout << "server up: " << cfg.describe() << ", "
            << (stress ? "stress" : "default") << " store config"
            << (use_net ? ", loopback TCP front-end on port " +
                              std::to_string(net_server->port())
                        : ", in-process transport")
            << "\nloading " << records << " rows...\n";
  const ycsb::PhaseResult load = client->load();
  std::cout << "load: " << load.duration_s() << " s ("
            << load.throughput_ops_s() << " ops/s)\nrunning " << ops
            << " transactions (50% read / 50% update)...\n";
  const ycsb::PhaseResult run = client->run();
  std::cout << "run: " << run.duration_s() << " s ("
            << run.throughput_ops_s() << " ops/s), flushes="
            << store.flush_count() << "\n";

  if (net_server != nullptr) {
    net_server->shutdown();
    const net::NetServerStats ns = net_server->stats();
    std::cout << "net front-end drained: " << ns.accepted
              << " connections served, " << ns.frames_in << " requests in, "
              << ns.frames_out << " responses out\n";
  }

  const auto pauses = vm.gc_log().snapshot();
  const PauseSummary sum = vm.gc_log().summarize();
  std::cout << "server pauses: " << sum.pauses << " (" << sum.full_pauses
            << " full), max " << sum.max_s * 1e3 << " ms, total "
            << sum.total_s * 1e3 << " ms\n";

  for (kv::OpType op : {kv::OpType::kRead, kv::OpType::kUpdate}) {
    const auto st = ycsb::compute_latency_stats(run.samples, op, pauses);
    const char* name = op == kv::OpType::kRead ? "READ" : "UPDATE";
    std::cout << name << ": avg " << st.avg_ms << " ms, max " << st.max_ms
              << " ms; spikes >4x avg: " << st.bands[2].pct_reqs
              << "% of requests, " << st.bands[2].pct_gcs
              << "% of those overlapped a GC pause\n";
  }
  return 0;
}
