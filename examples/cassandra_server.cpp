// Example: the client-server experiment in miniature. Boot the
// Cassandra-like store under a chosen collector, run a YCSB-style load +
// transaction phase, and print how server GC pauses surfaced as client
// latency.
//
//   $ ./build/examples/cassandra_server [GC] [default|stress] [records] [ops]
//   $ ./build/examples/cassandra_server CMS stress 8000 40000
#include <cstdlib>
#include <iostream>

#include "kvstore/server.h"
#include "support/env.h"
#include "support/table.h"
#include "support/units.h"
#include "ycsb/latency_stats.h"

int main(int argc, char** argv) {
  using namespace mgc;

  const GcKind gc = argc > 1 ? gc_kind_from_name(argv[1]) : GcKind::kCms;
  const bool stress = argc > 2 && std::string(argv[2]) == "stress";
  const std::uint64_t records = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                         : 8000;
  const std::uint64_t ops = argc > 4 ? std::strtoull(argv[4], nullptr, 10)
                                     : 40000;

  VmConfig cfg = VmConfig::baseline(gc);
  cfg.heap_bytes = 64ULL * 1024 * scale::MB;  // the paper's 64 GB, scaled
  cfg.young_bytes = 12ULL * 1024 * scale::MB;
  Vm vm(cfg);

  kv::StoreConfig scfg = stress
                             ? kv::StoreConfig::stress_config(cfg.heap_bytes)
                             : kv::StoreConfig::default_config(cfg.heap_bytes);
  kv::Store store(vm, scfg);
  kv::Server server(vm, store, /*workers=*/4);

  ycsb::WorkloadSpec spec = ycsb::WorkloadSpec::paper_custom(records, ops, 4);
  ycsb::Client client(server, spec, env::seed());

  std::cout << "server up: " << cfg.describe() << ", "
            << (stress ? "stress" : "default") << " store config\n"
            << "loading " << records << " rows...\n";
  const ycsb::PhaseResult load = client.load();
  std::cout << "load: " << load.duration_s() << " s ("
            << load.throughput_ops_s() << " ops/s)\nrunning " << ops
            << " transactions (50% read / 50% update)...\n";
  const ycsb::PhaseResult run = client.run();
  std::cout << "run: " << run.duration_s() << " s ("
            << run.throughput_ops_s() << " ops/s), flushes="
            << store.flush_count() << "\n";

  const auto pauses = vm.gc_log().snapshot();
  const PauseSummary sum = vm.gc_log().summarize();
  std::cout << "server pauses: " << sum.pauses << " (" << sum.full_pauses
            << " full), max " << sum.max_s * 1e3 << " ms, total "
            << sum.total_s * 1e3 << " ms\n";

  for (kv::OpType op : {kv::OpType::kRead, kv::OpType::kUpdate}) {
    const auto st = ycsb::compute_latency_stats(run.samples, op, pauses);
    const char* name = op == kv::OpType::kRead ? "READ" : "UPDATE";
    std::cout << name << ": avg " << st.avg_ms << " ms, max " << st.max_ms
              << " ms; spikes >4x avg: " << st.bands[2].pct_reqs
              << "% of requests, " << st.bands[2].pct_gcs
              << "% of those overlapped a GC pause\n";
  }
  return 0;
}
