// Command-line front end for the GC torture harness: reproduce any stress
// configuration (collector, seed, thread count, rounds, TLAB setting) and
// report the expanded-verifier outcome. Exits non-zero when the run
// produced payload errors or verifier problems, so it slots directly into
// bisection scripts:
//
//   ./stress_torture --gc CMS --threads 8 --rounds 12 --seed 7
//   ./stress_torture --gc G1 --no-tlab
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "stress/torture.h"
#include "support/env.h"
#include "support/units.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--gc NAME] [--seed N] [--threads K] [--rounds R]\n"
      "          [--churn N] [--heap-mb N] [--young-mb N] [--no-tlab]\n"
      "  --gc       Serial|ParNew|Parallel|ParallelOld|CMS|G1|Epsilon\n"
      "             (default: $MGC_GC if set, else CMS)\n"
      "  --seed     base RNG seed reproducing the whole run (default 42)\n"
      "  --threads  mutator threads, >= 2 (default 4)\n"
      "  --rounds   churn/verify rounds (default 6)\n"
      "  --churn    garbage allocations per thread per round (default 2000)\n"
      "  --heap-mb  heap size in MiB (default 10)\n"
      "  --young-mb young generation size in MiB (default 3)\n"
      "  --no-tlab  disable thread-local allocation buffers\n",
      argv0);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgc;

  stress::TortureConfig cfg;
  // MGC_GC picks the default collector; an explicit --gc still wins.
  GcKind default_gc = GcKind::kCms;
  env::gc_override(&default_gc);
  cfg.vm = stress::small_stress_vm(default_gc, /*tlab_enabled=*/true);
  std::size_t heap_mb = 10, young_mb = 3;
  bool heap_set = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--gc") {
      const std::string name = value();
      if (!try_gc_kind_from_name(name, &cfg.vm.gc)) {
        std::fprintf(stderr, "unknown --gc '%s'\n", name.c_str());
        usage(argv[0]);
        return 2;
      }
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--threads") {
      cfg.mutators = std::atoi(value());
    } else if (arg == "--rounds") {
      cfg.rounds = std::atoi(value());
    } else if (arg == "--churn") {
      cfg.churn_per_round = std::atoi(value());
    } else if (arg == "--heap-mb") {
      heap_mb = std::strtoull(value(), nullptr, 10);
      heap_set = true;
    } else if (arg == "--young-mb") {
      young_mb = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--no-tlab") {
      cfg.vm.tlab_enabled = false;
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (cfg.mutators < 2) {
    std::fprintf(stderr, "--threads must be >= 2\n");
    usage(argv[0]);
    return 2;
  }
  if (cfg.vm.gc == GcKind::kEpsilon && !heap_set) {
    // Epsilon never reclaims: the default torture heap must hold the whole
    // run's allocation volume, not the 10 MiB pressure-cooker geometry.
    heap_mb = 2048;
  }
  cfg.vm.heap_bytes = heap_mb * MiB;
  cfg.vm.young_bytes = young_mb * MiB;
  if (cfg.vm.gc == GcKind::kG1) cfg.vm.g1_region_bytes = 128 * KiB;

  std::printf("torture: %s, %d threads, %d rounds, seed %llu, tlab %s\n",
              gc_name(cfg.vm.gc), cfg.mutators, cfg.rounds,
              static_cast<unsigned long long>(cfg.seed),
              cfg.vm.tlab_enabled ? "on" : "off");

  const stress::TortureResult res = stress::run_torture(cfg);

  std::printf(
      "  allocated %llu objects; forced %llu young + %llu full GCs\n"
      "  verifier: %llu runs, %zu cells walked, %zu old->young refs, "
      "%zu cross-region refs, %zu free chunks\n"
      "  fingerprint %016llx\n",
      static_cast<unsigned long long>(res.objects_allocated),
      static_cast<unsigned long long>(res.young_gcs_forced),
      static_cast<unsigned long long>(res.full_gcs_forced),
      static_cast<unsigned long long>(res.verifier_runs), res.cells_walked,
      res.old_young_refs, res.cross_region_refs, res.free_chunks,
      static_cast<unsigned long long>(res.fingerprint));

  if (res.payload_errors != 0)
    std::printf("  PAYLOAD ERRORS: %llu\n",
                static_cast<unsigned long long>(res.payload_errors));
  for (const std::string& p : res.problems)
    std::printf("  PROBLEM: %s\n", p.c_str());
  std::printf("torture: %s\n", res.ok() ? "OK" : "FAILED");
  return res.ok() ? 0 : 1;
}
