// End-to-end smoke of the net client's retry/backoff/reconnect path: a
// loopback kv server with fault sites armed (load shedding, server-side
// EPIPE, byte-at-a-time short I/O) takes a closed-loop run of inserts and
// reads through BlockingClient::execute(). Every operation must end in a
// typed response — kOk here, since the armed faults are all survivable —
// and the run must make retry/reconnect traffic actually happen, or the
// smoke is vacuous. Exits non-zero on any untyped/failed op, on silent
// retry paths, or on a lost write.
//
//   net_retry_smoke [--quick]   (--quick: CI-sized run, ~300 ops)
#include <cstring>
#include <iostream>
#include <string>

#include "kvstore/server.h"
#include "net/blocking_client.h"
#include "net/net_server.h"
#include "support/fault.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace mgc;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  const std::uint64_t ops = quick ? 300 : 5000;

  VmConfig cfg;
  cfg.gc = GcKind::kParNew;
  cfg.heap_bytes = 24 * MiB;
  cfg.young_bytes = 6 * MiB;
  cfg.gc_threads = 2;
  Vm vm(cfg);
  kv::Store store(vm, kv::StoreConfig::default_config(cfg.heap_bytes));
  kv::Server server(vm, store, /*workers=*/2);
  net::NetServer netfe(server);

  // Low-probability but persistent faults: enough that a few-hundred-op
  // run reliably sheds, breaks a connection, and dribbles I/O; survivable
  // so every execute() still converges to kOk within the retry budget.
  std::string err;
  if (!fault::parse_spec("kv-queue-full=0.01;net-epipe=0.005;"
                         "net-read-short=0.05;net-write-short=0.05",
                         &err)) {
    std::cerr << "bad fault spec: " << err << "\n";
    return 2;
  }
  fault::set_seed(42);

  net::RetryPolicy policy;
  policy.timeout_ms = 2000;
  policy.backoff_initial_ms = 1;
  policy.backoff_cap_ms = 50;
  net::BlockingClient client("127.0.0.1", netfe.port(), policy);
  if (!client.connected()) {
    std::cerr << "connect failed\n";
    return 2;
  }

  std::uint64_t failed = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    kv::Request req;
    req.op = kv::OpType::kInsert;
    req.key = i;
    req.value_len = 64;
    if (client.execute(req).status != kv::ExecStatus::kOk) ++failed;
  }
  for (std::uint64_t i = 0; i < ops; i += 7) {
    kv::Request req;
    req.op = kv::OpType::kRead;
    req.key = i;
    const kv::Response resp = client.execute(req);
    if (resp.status != kv::ExecStatus::kOk || !resp.found) ++failed;
  }
  fault::disarm_all();
  netfe.shutdown();

  std::cout << "ops " << ops << "+" << (ops + 6) / 7 << " reads, failed "
            << failed << ", retries " << client.retries() << ", reconnects "
            << client.reconnects() << "\n";
  if (failed != 0) {
    std::cerr << "FAIL: " << failed << " operations did not converge to kOk\n";
    return 1;
  }
  if (client.retries() == 0) {
    std::cerr << "FAIL: no retries happened — the armed faults never bit, "
                 "the smoke proved nothing\n";
    return 1;
  }
  std::cout << "net retry smoke OK\n";
  return 0;
}
