// Quickstart: create a managed runtime, allocate objects, watch the
// collector work.
//
//   $ ./build/examples/quickstart [GC-name]
//
// GC names: Serial, ParNew, Parallel, ParallelOld, CMS, G1.
#include <iostream>

#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/units.h"

int main(int argc, char** argv) {
  using namespace mgc;

  // 1. Configure the VM: collector, heap geometry, TLABs.
  VmConfig cfg;
  cfg.gc = argc > 1 ? gc_kind_from_name(argv[1]) : GcKind::kParallelOld;
  cfg.heap_bytes = 32 * MiB;
  cfg.young_bytes = 8 * MiB;
  cfg.verbose_gc = true;  // print one line per pause, like -verbose:gc

  Vm vm(cfg);
  std::cout << "VM up: " << cfg.describe() << "\n";

  // 2. Attach the current thread as a mutator.
  Vm::MutatorScope scope(vm, "main");
  Mutator& m = scope.mutator();

  // 3. Allocate. `Local` handles are GC roots: collectors move objects, so
  //    raw Obj* must never be held across an allocation.
  Local list(m, managed::list::create(m));
  for (int i = 0; i < 200000; ++i) {
    Local node(m, m.alloc(/*num_refs=*/1, /*payload_words=*/8));
    node->set_field(0, static_cast<word_t>(i));
    if (i % 1000 == 0) {
      // Keep every 1000th object alive; the rest become garbage.
      managed::list::push(m, list, node);
    }
  }

  // 4. Ask for a full collection (System.gc()).
  m.system_gc();

  // 5. Inspect what happened.
  const HeapUsage usage = vm.usage();
  const PauseSummary pauses = vm.gc_log().summarize();
  std::cout << "kept " << managed::list::size(list.get()) << " nodes; heap "
            << usage.used / 1024 << " KiB used of " << usage.capacity / 1024
            << " KiB\n"
            << pauses.pauses << " pauses (" << pauses.full_pauses
            << " full), total " << pauses.total_s * 1e3 << " ms, max "
            << pauses.max_s * 1e3 << " ms\n";

  // 6. Verify the survivors.
  std::size_t idx = 0;
  managed::list::for_each(list.get(), [&](Obj* node) {
    (void)node;
    ++idx;
  });
  std::cout << "verified " << idx << " survivors intact\n";
  return 0;
}
