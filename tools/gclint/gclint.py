#!/usr/bin/env python3
"""gclint — GC-safety discipline checker for the mgc runtime.

Enforces the GC-safety and concurrency-discipline invariants every
HotSpot-style runtime lints for:

  raw-across-safepoint   No raw managed pointer (Obj*) may be live across a
                         safepoint-polling call (allocation, Mutator::poll,
                         blocked-state transitions, or any function that
                         transitively polls) in mutator code. Moving
                         collectors relocate objects at polls; a raw pointer
                         read before and used after is dangling. Use `Local`
                         handles.

  unbarriered-ref-store  Every reference-field store in mutator code goes
                         through the Mutator write-barrier API
                         (Mutator::set_ref), never Obj::set_ref_raw or a raw
                         RefSlot store. A skipped barrier silently breaks
                         card-table / remembered-set completeness.

  alloc-under-gc-lock    No allocation or safepoint poll while holding a
                         GC-internal SpinLock. The lock holder would wait
                         for a safepoint that can never be reached by
                         threads spinning on the same lock.

  lock-order             Lock acquisitions (direct and through transitive
                         calls) must follow the strictly ascending rank
                         order declared in src/support/lock_rank.h, and
                         GuardedLock targets must rank below kSafepoint
                         (leave_blocked takes the safepoint lock while
                         holding them). The runtime registry
                         (support/lock_rank.cpp) checks the same table
                         dynamically in debug builds.

  loop-purity            Nothing reachable from NetServer::loop_main may
                         block: no blocking syscalls, no unbounded waits,
                         no GuardedLock, no managed-heap activity. A GC
                         pause or a slow peer would stall every connection
                         multiplexed on that loop.

Two engines implement the checks:

  lex       A token-level analysis built into this script. No dependencies;
            this is what the ctest self-test gates on.
  libclang  An AST walk via clang.cindex driven off compile_commands.json,
            used in CI where python3-clang is installed. More precise name
            and type resolution, same reporting.

`--engine auto` (default) picks libclang when importable, else lex.

Escape hatches (see src/support/gc_annotations.h): the MGC_GC_UNSAFE
function attribute, MGC_LINT_SUPPRESS("check-id") statement markers, the
`// gclint: suppress(check-id)` line comment, and the file-level
`// gclint: gc-unsafe-file` marker.

Usage:
  gclint.py --root src                         # sweep the runtime sources
  gclint.py src/runtime/managed.cpp            # lint specific files
  gclint.py --self-test                        # run the known-bad/known-good corpus
  gclint.py --root . --json                    # machine-readable findings
"""

import argparse
import json
import os
import re
import sys

# --- policy -----------------------------------------------------------------

# Directories whose code is "mutator code": all three checks apply. The
# collector internals (src/gc, src/heap) legitimately traffic in raw Obj*
# at safepoints, so only the lock-discipline check applies there.
MUTATOR_DIRS = ("src/runtime", "src/stress", "src/kvstore")

CHECK_RAW = "raw-across-safepoint"
CHECK_BARRIER = "unbarriered-ref-store"
CHECK_LOCK = "alloc-under-gc-lock"
CHECK_ORDER = "lock-order"
CHECK_LOOP = "loop-purity"
ALL_CHECKS = (CHECK_RAW, CHECK_BARRIER, CHECK_LOCK, CHECK_ORDER, CHECK_LOOP)

# Mutator methods that can run a safepoint (and therefore a moving GC).
POLLING_METHODS = {"alloc", "poll", "system_gc", "enter_blocked", "leave_blocked"}
# Types whose construction polls (GuardedLock parks the thread blocked).
POLLING_CTORS = {"GuardedLock"}
# Lock wrapper templates that, instantiated over SpinLock, open a
# GC-internal critical section.
LOCK_WRAPPERS = {"lock_guard", "scoped_lock", "unique_lock"}

SUPPRESS_RE = re.compile(r"gclint:\s*suppress\(([a-z-]+)\)")
SUPPRESS_MACRO_RE = re.compile(r'MGC_LINT_SUPPRESS\(\s*"([a-z-]+)"\s*\)')
UNSAFE_FILE_RE = re.compile(r"gclint:\s*gc-unsafe-file")
EXPECT_RE = re.compile(r"gclint-expect:\s*([a-z-]+)")


class Finding:
    def __init__(self, path, line, check, message):
        self.path = path
        self.line = line
        self.check = check
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"

    def key(self):
        return (self.path, self.line, self.check)


# --- lexical engine ---------------------------------------------------------

TOKEN_RE = re.compile(
    r"""
    (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<string>"(?:\\.|[^"\\])*"|'(?:\\.|[^'\\])*')
  | (?P<id>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<num>\.?\d(?:[\w.]|[eEpP][+-])*)
  | (?P<punct>->\*?|::|<<=?|>>=?|<=|>=|==|!=|&&|\|\||\+\+|--|[-+*/%&|^!~=<>?:;,.(){}\[\]\#])
  | (?P<ws>\s+)
""",
    re.VERBOSE | re.DOTALL,
)


class Tok:
    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line


def tokenize(text):
    """Returns (tokens, comments) with comments kept out of the token stream."""
    toks, comments = [], []
    pos, line = 0, 1
    while pos < len(text):
        m = TOKEN_RE.match(text, pos)
        if m is None:  # stray byte; skip
            pos += 1
            continue
        kind = m.lastgroup
        s = m.group()
        if kind == "comment":
            comments.append((line, s))
        elif kind != "ws":
            toks.append(Tok(kind, s, line))
        line += s.count("\n")
        pos = m.end()
    return toks, comments


class SourceFile:
    def __init__(self, path, text):
        self.path = path
        self.text = text
        self.toks, self.comments = tokenize(text)
        self.gc_unsafe_file = False
        # line -> set of suppressed check ids ("*" = all)
        self.suppress = {}
        for ln, c in self.comments:
            if UNSAFE_FILE_RE.search(c):
                self.gc_unsafe_file = True
            for m in SUPPRESS_RE.finditer(c):
                self.suppress.setdefault(ln, set()).add(m.group(1))
        for i, t in enumerate(self.toks):
            if t.kind == "id" and t.text == "MGC_LINT_SUPPRESS":
                # Argument is the next string token.
                for u in self.toks[i + 1 : i + 5]:
                    if u.kind == "string":
                        self.suppress.setdefault(t.line, set()).add(u.text.strip('"'))
                        break

    def suppressed(self, line, check):
        # A suppression covers its own line and the following line (so a
        # marker statement can precede the offending statement).
        for ln in (line, line - 1):
            s = self.suppress.get(ln)
            if s and (check in s or "*" in s):
                return True
        return False


class Function:
    def __init__(self, qualname, decl_start, body_start, body_end, src):
        self.qualname = qualname  # tuple of name parts
        self.decl_start = decl_start  # token index of first decl token
        self.body_start = body_start  # index of '{'
        self.body_end = body_end  # index of matching '}'
        self.src = src
        self.gc_unsafe = any(
            t.kind == "id" and t.text == "MGC_GC_UNSAFE"
            for t in src.toks[decl_start:body_start]
        )
        self.polls_directly = False
        self.polls = False
        self.calls = []  # (name_chain tuple, close_paren_idx, has_mutator_arg)
        self.poll_sites = []  # token indices marking a completed poll


SCOPE_KEYWORDS = {"namespace", "class", "struct", "enum", "union", "extern"}
CONTROL_KEYWORDS = {"if", "for", "while", "switch", "catch", "do", "else", "return"}


def match_brace(toks, open_idx):
    depth = 0
    for i in range(open_idx, len(toks)):
        t = toks[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(toks) - 1


def extract_functions(src):
    """Finds function definitions at namespace/class scope."""
    toks = src.toks
    fns = []
    scope = []  # list of (kind, name) for each open brace at scope level
    i = 0
    stmt_start = 0
    while i < len(toks):
        t = toks[i]
        if t.text == ";":
            stmt_start = i + 1
            i += 1
            continue
        if t.text == "}":
            if scope:
                scope.pop()
            stmt_start = i + 1
            i += 1
            continue
        if t.text != "{":
            i += 1
            continue
        # Classify the brace from the statement tokens before it.
        stmt = toks[stmt_start:i]
        words = [x.text for x in stmt]
        if "namespace" in words:
            names = [x.text for x in stmt if x.kind == "id" and x.text != "namespace"]
            scope.append(("namespace", "::".join(names) if names else "<anon>"))
            stmt_start = i + 1
            i += 1
            continue
        is_fn = False
        if not (set(words) & SCOPE_KEYWORDS) and not (set(words) & CONTROL_KEYWORDS):
            first_paren = next((k for k, x in enumerate(stmt) if x.text == "("), None)
            if first_paren is not None and "=" not in words[:first_paren]:
                # name chain: identifiers (joined by ::) right before '('
                chain = []
                k = first_paren - 1
                while k >= 0:
                    if stmt[k].kind == "id":
                        chain.insert(0, stmt[k].text)
                        if k - 1 >= 0 and stmt[k - 1].text == "::":
                            k -= 2
                            continue
                    break
                if chain:
                    is_fn = True
                    end = match_brace(toks, i)
                    qual = [n for _, n in scope if n != "<anon>"] + chain
                    fns.append(Function(tuple(qual), stmt_start, i, end, src))
                    stmt_start = end + 1
                    i = end + 1
                    continue
        if not is_fn:
            # class/struct body, initializer block, array init, ...: if it's
            # a class, record it so methods get qualified names.
            if {"class", "struct"} & set(words):
                names = [
                    x.text
                    for x in stmt
                    if x.kind == "id" and x.text not in ("class", "struct", "final")
                ]
                scope.append(("class", names[0] if names else "<anon>"))
            else:
                scope.append(("block", "<anon>"))
            stmt_start = i + 1
            i += 1
    return fns


def mutator_idents(src):
    """Names declared with type Mutator (param, local, or member)."""
    toks = src.toks
    names = set()
    for i, t in enumerate(toks):
        if t.kind == "id" and t.text == "Mutator":
            j = i + 1
            while j < len(toks) and toks[j].text in ("&", "*", "const"):
                j += 1
            if j < len(toks) and toks[j].kind == "id":
                names.add(toks[j].text)
    return names


def statement_end(toks, start):
    """Index of the token ending the statement containing `start`: the next
    ';' at the statement's paren depth, or the ')' closing an enclosing
    paren group (for-headers, call arguments)."""
    depth = 0
    for i in range(start, len(toks)):
        t = toks[i].text
        if t == "(" or t == "[":
            depth += 1
        elif t == ")" or t == "]":
            if depth == 0:
                return i
            depth -= 1
        elif t in (";", "{", "}") and depth == 0:
            return i
    return len(toks) - 1


def analyze_calls(fn, mut_names):
    """Fills fn.calls and fn.polls_directly / direct poll sites."""
    toks = fn.src.toks
    i = fn.body_start
    while i < fn.body_end:
        t = toks[i]
        if t.kind != "id":
            i += 1
            continue
        prev = toks[i - 1].text if i > 0 else ""
        # Member call on a known Mutator variable: m.alloc(...), m->poll()
        if prev in (".", "->") and t.text in POLLING_METHODS:
            base = toks[i - 2] if i >= 2 else None
            if base is not None and base.kind == "id" and base.text in mut_names:
                if i + 1 < len(toks) and toks[i + 1].text == "(":
                    close = statement_end(toks, i + 2)
                    fn.polls_directly = True
                    fn.poll_sites.append(close)
            i += 1
            continue
        if prev in (".", "->"):
            i += 1
            continue
        # Free/ctor call: identifier chain followed by '('
        chain = [t.text]
        j = i + 1
        while j + 1 < len(toks) and toks[j].text == "::" and toks[j + 1].kind == "id":
            chain.append(toks[j + 1].text)
            j += 2
        # Skip template arguments between name and '(': Foo<Bar> x(...)
        k = j
        if k < len(toks) and toks[k].text == "<":
            depth, k2 = 0, k
            while k2 < min(len(toks), k + 32):
                if toks[k2].text == "<":
                    depth += 1
                elif toks[k2].text == ">":
                    depth -= 1
                    if depth == 0:
                        k = k2 + 1
                        break
                elif toks[k2].text in (";", "{", "}"):
                    break
                k2 += 1
        # Declarations like `GuardedLock<X> g(m, mu);` put a variable name
        # between the type and '('.
        if (
            chain[-1] in POLLING_CTORS
            and k < len(toks)
            and toks[k].kind == "id"
        ):
            k += 1
        if k < len(toks) and toks[k].text == "(":
            close = statement_end(toks, k + 1)
            has_mut = any(
                x.kind == "id" and x.text in mut_names for x in toks[k + 1 : close]
            )
            if chain[-1] in POLLING_CTORS and has_mut:
                fn.polls_directly = True
                fn.poll_sites.append(close)
            else:
                fn.calls.append((tuple(chain), close, has_mut))
        i = j if j > i + 1 else i + 1


def resolve_polling(functions):
    """Fixpoint: a function polls if it polls directly or calls (passing a
    mutator) a function that polls. Calls resolve by qualified-name suffix."""
    by_suffix = {}
    for fn in functions:
        parts = fn.qualname
        for s in range(len(parts)):
            by_suffix.setdefault(parts[s:], []).append(fn)
    for fn in functions:
        fn.polls = fn.polls_directly
    changed = True
    while changed:
        changed = False
        for fn in functions:
            if fn.polls:
                continue
            for chain, close, has_mut in fn.calls:
                if not has_mut:
                    continue
                for callee in by_suffix.get(chain, []):
                    if callee.polls:
                        fn.polls = True
                        fn.poll_sites.append(close)
                        changed = True
                        break
                if fn.polls:
                    break
    # Poll sites for transitive calls of already-polling functions need a
    # final pass (a function marked polling early may gain sites later).
    for fn in functions:
        for chain, close, has_mut in fn.calls:
            if not has_mut:
                continue
            if any(c.polls for c in by_suffix.get(chain, [])):
                if close not in fn.poll_sites:
                    fn.poll_sites.append(close)
    for fn in functions:
        fn.poll_sites.sort()


def scope_close(toks, start, fn):
    """Index of the '}' closing the innermost block open at `start`."""
    depth = 0
    for i in range(start, fn.body_end + 1):
        t = toks[i].text
        if t == "{":
            depth += 1
        elif t == "}":
            if depth == 0:
                return i
            depth -= 1
    return fn.body_end


def raw_obj_locals(fn):
    """(name, decl_idx, def_idx, scope_end_idx) for each `Obj* x` local or
    parameter. The scope ends at the '}' closing the block the declaration
    lives in — uses past it are a different (shadowing or unrelated)
    variable."""
    toks = fn.src.toks
    out = []
    i = fn.decl_start
    while i < fn.body_end:
        t = toks[i]
        if t.kind == "id" and t.text == "Obj":
            j = i + 1
            stars = 0
            while j < fn.body_end and toks[j].text in ("*", "const"):
                if toks[j].text == "*":
                    stars += 1
                j += 1
            nxt = toks[j + 1].text if j + 1 < fn.body_end else ""
            if (
                stars == 1
                and j < fn.body_end
                and toks[j].kind == "id"
                and nxt not in ("(", "::")  # function declarator, not a var
            ):
                name = toks[j].text
                if i < fn.body_start:
                    # Parameter: defined at body entry, dies with the body.
                    out.append((name, j, fn.body_start, fn.body_end))
                else:
                    d = statement_end(toks, j + 1)
                    out.append((name, j, d, scope_close(toks, d, fn)))
        i += 1
    return out


def check_raw_across_safepoint(fn, findings):
    if fn.gc_unsafe or fn.src.gc_unsafe_file or not fn.poll_sites:
        return
    toks = fn.src.toks
    for name, decl_idx, decl_end, scope_end in raw_obj_locals(fn):
        # Definition points: declaration plus plain reassignments.
        defs = [decl_end]
        uses = []
        for i in range(max(fn.body_start, decl_idx), min(fn.body_end, scope_end)):
            t = toks[i]
            if t.kind != "id" or t.text != name or i == decl_idx:
                continue
            if i > 0 and toks[i - 1].text in (".", "->", "::"):
                continue  # member of something else
            nxt = toks[i + 1].text if i + 1 < len(toks) else ""
            if nxt == "::":
                continue  # qualified name (namespace/class), not a value use
            if nxt == "=" and toks[i + 2].text != "=":
                defs.append(statement_end(toks, i + 2))
            else:
                uses.append(i)
        for u in uses:
            d = max((x for x in defs if x < u), default=None)
            if d is None:
                continue
            poll = next((p for p in fn.poll_sites if d < p < u), None)
            if poll is not None:
                line = toks[u].line
                if not fn.src.suppressed(line, CHECK_RAW):
                    findings.append(
                        Finding(
                            fn.src.path,
                            line,
                            CHECK_RAW,
                            f"raw Obj* '{name}' (defined line "
                            f"{toks[d].line}) used after a safepoint poll on "
                            f"line {toks[poll].line}; a moving GC may have "
                            f"relocated it — hold it in a Local",
                        )
                    )
                break  # one finding per variable


def check_unbarriered_store(src, functions, findings):
    if src.gc_unsafe_file:
        return
    toks = src.toks

    def covering_fn(idx):
        for fn in functions:
            if fn.src is src and fn.decl_start <= idx <= fn.body_end:
                return fn
        return None

    for i, t in enumerate(toks):
        hit = None
        if t.kind == "id" and t.text == "set_ref_raw":
            if i + 1 < len(toks) and toks[i + 1].text == "(":
                hit = "Obj::set_ref_raw bypasses the write barrier"
        elif (
            t.kind == "id"
            and t.text == "refs"
            and i + 3 < len(toks)
            and toks[i + 1].text == "("
            and toks[i + 2].text == ")"
            and toks[i + 3].text == "["
        ):
            # refs()[i].store(...) — a raw RefSlot store.
            j = i + 4
            depth = 1
            while j < len(toks) and depth:
                if toks[j].text == "[":
                    depth += 1
                elif toks[j].text == "]":
                    depth -= 1
                j += 1
            if (
                j + 1 < len(toks)
                and toks[j].text == "."
                and toks[j + 1].text == "store"
            ):
                hit = "raw RefSlot::store bypasses the write barrier"
        if hit is None:
            continue
        fn = covering_fn(i)
        if fn is not None and fn.gc_unsafe:
            continue
        if src.suppressed(t.line, CHECK_BARRIER):
            continue
        findings.append(
            Finding(
                src.path,
                t.line,
                CHECK_BARRIER,
                f"{hit}; use Mutator::set_ref so card-table / remembered-set "
                f"state stays complete",
            )
        )


def check_alloc_under_lock(src, functions, findings):
    toks = src.toks
    for fn in functions:
        if fn.src is not src or not fn.poll_sites:
            continue
        i = fn.body_start
        while i < fn.body_end:
            t = toks[i]
            if t.kind == "id" and t.text in LOCK_WRAPPERS:
                # Require a SpinLock template argument.
                j = i + 1
                is_spin = False
                if j < len(toks) and toks[j].text == "<":
                    depth = 0
                    while j < min(fn.body_end, i + 16):
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif toks[j].kind == "id" and toks[j].text == "SpinLock":
                            is_spin = True
                        j += 1
                if is_spin:
                    # Critical section: from here to the end of the
                    # enclosing block.
                    depth = 0
                    end = fn.body_end
                    for k in range(j, fn.body_end):
                        if toks[k].text == "{":
                            depth += 1
                        elif toks[k].text == "}":
                            if depth == 0:
                                end = k
                                break
                            depth -= 1
                    for p in fn.poll_sites:
                        if j < p < end:
                            line = toks[p].line
                            if not src.suppressed(line, CHECK_LOCK):
                                findings.append(
                                    Finding(
                                        src.path,
                                        line,
                                        CHECK_LOCK,
                                        f"allocation / safepoint poll while "
                                        f"holding a GC-internal SpinLock "
                                        f"(acquired line {t.line}): the pause "
                                        f"would deadlock against threads "
                                        f"spinning on this lock",
                                    )
                                )
                            break
            i += 1


def is_mutator_file(path):
    rel = path.replace("\\", "/")
    return any(d in rel for d in MUTATOR_DIRS) or "/corpus/" in rel


def run_lex(paths, root):
    sources = []
    for p in paths:
        try:
            with open(p, "r", encoding="utf-8", errors="replace") as f:
                sources.append(SourceFile(p, f.read()))
        except OSError as e:
            print(f"gclint: cannot read {p}: {e}", file=sys.stderr)
            return None
    all_fns = []
    per_src_fns = {}
    for src in sources:
        fns = extract_functions(src)
        muts = mutator_idents(src)
        for fn in fns:
            analyze_calls(fn, muts)
        per_src_fns[src.path] = fns
        all_fns.extend(fns)
    resolve_polling(all_fns)
    findings = []
    for src in sources:
        fns = per_src_fns[src.path]
        if is_mutator_file(src.path):
            for fn in fns:
                check_raw_across_safepoint(fn, findings)
            check_unbarriered_store(src, fns, findings)
        check_alloc_under_lock(src, fns, findings)
    run_shared_passes(sources, per_src_fns, all_fns, root, findings)
    seen, out = set(), []
    for f in findings:
        if f.key() not in seen:
            seen.add(f.key())
            out.append(f)
    return out


# --- libclang engine --------------------------------------------------------


def run_libclang(paths, root, compile_commands):
    try:
        from clang import cindex
    except ImportError:
        return None

    index = cindex.Index.create()
    args_by_file = {}
    default_args = ["-std=c++20", f"-I{os.path.join(root, 'src')}"]
    if compile_commands and os.path.exists(compile_commands):
        try:
            db = json.load(open(compile_commands))
            for entry in db:
                fp = os.path.normpath(
                    os.path.join(entry.get("directory", "."), entry["file"])
                )
                raw = entry.get("arguments") or entry.get("command", "").split()
                args = [
                    a
                    for a in raw[1:]
                    if a.startswith(("-I", "-D", "-std", "-f", "-W"))
                ]
                args_by_file[fp] = args
        except (OSError, ValueError, KeyError):
            pass

    findings = []
    # Pass 1: build the polling call graph across all TUs by USR.
    polls = {}  # usr -> bool
    calls = {}  # usr -> set of callee usrs (mutator-arg calls only)
    fn_nodes = []  # (cursor, usr, path)

    def fq(cur):
        return cur.spelling

    def is_mutator_type(t):
        return "Mutator" in t.spelling

    def walk_tu(tu, path):
        for cur in tu.cursor.walk_preorder():
            if cur.kind in (
                cindex.CursorKind.FUNCTION_DECL,
                cindex.CursorKind.CXX_METHOD,
                cindex.CursorKind.CONSTRUCTOR,
            ) and cur.is_definition():
                floc = cur.location.file
                if floc is None or os.path.normpath(floc.name) != os.path.normpath(
                    path
                ):
                    continue
                usr = cur.get_usr()
                fn_nodes.append((cur, usr, path))
                polls.setdefault(usr, False)
                callees = calls.setdefault(usr, set())
                for c in cur.walk_preorder():
                    if c.kind != cindex.CursorKind.CALL_EXPR:
                        continue
                    ref = c.referenced
                    if ref is None:
                        continue
                    if (
                        ref.spelling in POLLING_METHODS
                        and ref.semantic_parent is not None
                        and ref.semantic_parent.spelling == "Mutator"
                    ):
                        polls[usr] = True
                    elif ref.spelling in POLLING_CTORS:
                        polls[usr] = True
                    else:
                        has_mut = any(
                            is_mutator_type(a.type) for a in c.get_arguments()
                        )
                        if has_mut:
                            callees.add(ref.get_usr())

    tus = []
    for p in paths:
        args = args_by_file.get(os.path.normpath(os.path.abspath(p)), default_args)
        try:
            tu = index.parse(p, args=args)
        except cindex.TranslationUnitLoadError:
            print(f"gclint: libclang failed to parse {p}", file=sys.stderr)
            continue
        tus.append((tu, p))
        walk_tu(tu, p)

    changed = True
    while changed:
        changed = False
        for usr, callees in calls.items():
            if not polls.get(usr) and any(polls.get(c) for c in callees):
                polls[usr] = True
                changed = True

    def has_gc_unsafe(cur):
        return any(
            ch.kind == cindex.CursorKind.ANNOTATE_ATTR
            and ch.spelling == "mgc::gc_unsafe"
            for ch in cur.get_children()
        )

    def poll_offsets(cur, usr):
        offs = []
        for c in cur.walk_preorder():
            if c.kind != cindex.CursorKind.CALL_EXPR:
                continue
            ref = c.referenced
            if ref is None:
                continue
            is_poll = (
                ref.spelling in POLLING_METHODS
                and ref.semantic_parent is not None
                and ref.semantic_parent.spelling == "Mutator"
            ) or ref.spelling in POLLING_CTORS
            if not is_poll:
                ru = ref.get_usr()
                if polls.get(ru) and any(
                    is_mutator_type(a.type) for a in c.get_arguments()
                ):
                    is_poll = True
            if is_poll:
                offs.append(c.extent.end.offset)
        return sorted(offs)

    # Pass 2: the three checks.
    for cur, usr, path in fn_nodes:
        src_lines_suppress = _suppress_map(path)
        gc_unsafe_file = _is_unsafe_file(path)
        mutator_file = is_mutator_file(path)
        unsafe = has_gc_unsafe(cur)
        offs = poll_offsets(cur, usr)

        if mutator_file and not unsafe and not gc_unsafe_file and offs:
            # raw-across-safepoint: Obj* locals/params, linear offset order.
            for c in cur.walk_preorder():
                if c.kind not in (
                    cindex.CursorKind.VAR_DECL,
                    cindex.CursorKind.PARM_DECL,
                ):
                    continue
                t = c.type
                if t.kind != cindex.TypeKind.POINTER:
                    continue
                if t.get_pointee().spelling.replace("const ", "").strip() not in (
                    "Obj",
                    "mgc::Obj",
                ):
                    continue
                def_off = c.extent.end.offset
                uses = [
                    r.extent.start.offset
                    for r in cur.walk_preorder()
                    if r.kind == cindex.CursorKind.DECL_REF_EXPR
                    and r.referenced == c
                ]
                for u in sorted(uses):
                    p = next((x for x in offs if def_off < x < u), None)
                    if p is not None:
                        line = _line_of(path, u)
                        if not _sup(src_lines_suppress, line, CHECK_RAW):
                            findings.append(
                                Finding(
                                    path,
                                    line,
                                    CHECK_RAW,
                                    f"raw Obj* '{c.spelling}' used after a "
                                    f"safepoint poll; hold it in a Local",
                                )
                            )
                        break

        if mutator_file and not unsafe and not gc_unsafe_file:
            for c in cur.walk_preorder():
                if c.kind != cindex.CursorKind.CALL_EXPR:
                    continue
                ref = c.referenced
                if ref is None:
                    continue
                bad = None
                if ref.spelling == "set_ref_raw":
                    bad = "Obj::set_ref_raw bypasses the write barrier"
                elif (
                    ref.spelling == "store"
                    and ref.semantic_parent is not None
                    and "atomic" in ref.semantic_parent.spelling
                ):
                    toks = " ".join(
                        t.spelling for t in c.get_tokens()
                    )
                    if "refs" in toks:
                        bad = "raw RefSlot::store bypasses the write barrier"
                if bad:
                    line = c.location.line
                    if not _sup(src_lines_suppress, line, CHECK_BARRIER):
                        findings.append(Finding(path, line, CHECK_BARRIER, bad))

        # alloc-under-gc-lock, all files.
        if offs:
            for c in cur.walk_preorder():
                if c.kind != cindex.CursorKind.VAR_DECL:
                    continue
                ts = c.type.spelling
                if not any(w in ts for w in LOCK_WRAPPERS) or "SpinLock" not in ts:
                    continue
                start = c.extent.end.offset
                parent_end = cur.extent.end.offset
                for p in offs:
                    if start < p < parent_end:
                        line = _line_of(path, p)
                        if not _sup(src_lines_suppress, line, CHECK_LOCK):
                            findings.append(
                                Finding(
                                    path,
                                    line,
                                    CHECK_LOCK,
                                    "allocation / safepoint poll while holding "
                                    "a GC-internal SpinLock",
                                )
                            )
                        break
    return findings


_file_cache = {}


def _file_text(path):
    if path not in _file_cache:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            _file_cache[path] = f.read()
    return _file_cache[path]


def _line_of(path, offset):
    return _file_text(path).count("\n", 0, offset) + 1


def _suppress_map(path):
    sup = {}
    for i, ln in enumerate(_file_text(path).splitlines(), 1):
        for m in SUPPRESS_RE.finditer(ln):
            sup.setdefault(i, set()).add(m.group(1))
        for m in SUPPRESS_MACRO_RE.finditer(ln):
            sup.setdefault(i, set()).add(m.group(1))
    return sup


def _sup(sup, line, check):
    return any(check in sup.get(ln, ()) for ln in (line, line - 1))


def _is_unsafe_file(path):
    return UNSAFE_FILE_RE.search(_file_text(path)) is not None



# --- concurrency-discipline passes (engine-shared) ---------------------------
#
# Two token-level passes run from BOTH engines (the libclang engine reuses
# them after its AST checks — they need cross-file name resolution, not
# type info, so one implementation keeps the engines in agreement):
#
#   lock-order   Static lock-acquisition ordering against the declared rank
#                table in src/support/lock_rank.h. A ranked lock may only
#                be acquired while every held ranked lock has a strictly
#                lower rank (the memtable stripes may self-nest). The pass
#                follows acquisitions through transitive calls, so an
#                inversion split across functions — the classic two-lock
#                cycle — is still reported at the closing acquisition.
#
#   loop-purity  Event-loop thread discipline: functions reachable from
#                NetServer::loop_main must not issue blocking syscalls,
#                park on managed synchronization (GuardedLock, CondVar
#                waits), or allocate on the managed heap. Nonblocking-fd
#                syscalls are allowed via `// gclint: suppress(loop-purity)`
#                on the call line, each annotated with why it cannot block.

LOCK_CLASSES = {"Mutex", "SpinLock"}
GUARD_CLASSES = {"MutexLock", "SpinLockGuard"}
SAME_RANK_OK = {"kMemtableStripe"}
SAFEPOINT_RANK = "kSafepoint"
LOOP_ROOTS = {("NetServer", "loop_main")}
# Blocking syscalls when invoked `::name(...)`. epoll_wait is the loop's
# legitimate wait and is deliberately absent.
BLOCKING_SYSCALLS = {
    "read", "pread", "readv", "recv", "recvfrom", "recvmsg",
    "write", "pwrite", "writev", "send", "sendto", "sendmsg",
    "accept", "accept4", "connect", "poll", "ppoll", "select", "pselect",
    "sleep", "usleep", "nanosleep", "fsync", "fdatasync", "msync",
    "flock", "wait", "waitpid",
}
# Member calls excluded from the transitive call graph: lock primitives
# (modeled as acquisition events instead) plus ubiquitous container /
# smart-pointer / atomic method names whose one-identifier call chains
# would suffix-collide with runtime methods (`items.clear()` is not
# GcLog::clear, `fd.get()` is not Memtable::get). Distinctive method
# names and all qualified free calls stay tracked.
CALL_IGNORE = {
    "lock", "unlock", "try_lock", "set_rank",
    "get", "reset", "release", "clear", "size", "empty", "count",
    "begin", "end", "rbegin", "rend", "contains", "find", "insert",
    "erase", "push_back", "emplace_back", "emplace", "pop_back",
    "pop_front", "push_front", "front", "back", "data", "reserve",
    "resize", "swap", "at", "assign", "append", "substr", "c_str",
    "load", "store", "exchange", "fetch_add", "fetch_sub",
    "compare_exchange_weak", "compare_exchange_strong",
    "notify_one", "notify_all",
}


def load_rank_table(root):
    """LockRank enum -> value, parsed from src/support/lock_rank.h. The
    runtime registry compiles the same header, so the static and dynamic
    checkers cannot drift."""
    here = os.path.dirname(os.path.abspath(__file__))
    for cand in (
        os.path.join(root, "src", "support", "lock_rank.h"),
        os.path.join(here, "..", "..", "src", "support", "lock_rank.h"),
    ):
        if not os.path.exists(cand):
            continue
        with open(cand, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        m = re.search(r"enum class LockRank[^{]*\{(.*?)\};", text, re.S)
        if m is None:
            continue
        ranks = {
            mm.group(1): int(mm.group(2))
            for mm in re.finditer(r"(k\w+)\s*=\s*(\d+)", m.group(1))
        }
        if ranks:
            return ranks
    return {}


def _match_pair(toks, open_idx):
    """Index of the token closing the paren/brace/bracket at open_idx."""
    pairs = {"(": ")", "{": "}", "[": "]"}
    close = pairs[toks[open_idx].text]
    opener = toks[open_idx].text
    depth = 0
    for i in range(open_idx, len(toks)):
        t = toks[i].text
        if t == opener:
            depth += 1
        elif t == close:
            depth -= 1
            if depth == 0:
                return i
    return len(toks) - 1


def _match_pair_angle(toks, open_idx):
    """Best-effort skip of a template argument list; returns the index after
    the closing '>', or open_idx on failure."""
    depth = 0
    for k in range(open_idx, min(len(toks), open_idx + 48)):
        tt = toks[k].text
        if tt == "<":
            depth += 1
        elif tt == ">":
            depth -= 1
            if depth == 0:
                return k + 1
        elif tt in (";", "{", "}"):
            break
    return open_idx


def _stem(path):
    return os.path.splitext(os.path.basename(path))[0]


class LockEnv:
    """Lock declarations (keyed by class and by name) plus rank values and
    lock-returning accessor functions (`Mutex& stripe_for(...)`)."""

    def __init__(self, ranks):
        self.ranks = ranks
        self.by_name = {}  # name -> list of (cls, rankname, path)
        self.accessors = {}  # function name -> rankname

    def add(self, cls, name, rankname, path):
        if rankname in self.ranks:
            self.by_name.setdefault(name, []).append((cls, rankname, path))

    def resolve(self, name, enclosing_cls, path):
        cands = self.by_name.get(name)
        if not cands:
            return None
        if enclosing_cls:
            cm = {r for c, r, _ in cands if c == enclosing_cls}
            if len(cm) == 1:
                return cm.pop()
        sm = {r for _, r, p in cands if _stem(p) == _stem(path)}
        if len(sm) == 1:
            return sm.pop()
        allr = {r for _, r, _ in cands}
        if len(allr) == 1:
            return allr.pop()
        return None  # ambiguous: the runtime registry still covers it


class _EmptyEnv:
    ranks = {}
    accessors = {}

    def resolve(self, name, cls, path):
        return None


_EMPTY_ENV = _EmptyEnv()


def collect_lock_decls(sources, ranks):
    env = LockEnv(ranks)
    pending_accessors = []  # (fname, body_open_idx, src)
    for src in sources:
        toks = src.toks
        scope = []  # (kind, name) per open brace
        stmt_start = 0
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == "id" and t.text in LOCK_CLASSES and i + 1 < len(toks):
                nxt = toks[i + 1]
                # Accessor: `Mutex& name(...) ... { return <lock>; }`
                if (
                    nxt.text == "&"
                    and i + 3 < len(toks)
                    and toks[i + 2].kind == "id"
                    and toks[i + 3].text == "("
                ):
                    close = _match_pair(toks, i + 3)
                    j = close + 1
                    while j < len(toks) and toks[j].text not in ("{", ";"):
                        j += 1
                    if j < len(toks) and toks[j].text == "{":
                        pending_accessors.append((toks[i + 2].text, j, src))
                    i += 1
                    continue
                # Declaration: `Mutex name{LockRank::kX, ...}` / `(...)`.
                if (
                    nxt.kind == "id"
                    and i + 2 < len(toks)
                    and toks[i + 2].text in ("{", "(")
                ):
                    close = _match_pair(toks, i + 2)
                    rankname = None
                    for k in range(i + 3, close):
                        if (
                            toks[k].text == "LockRank"
                            and k + 2 <= close
                            and toks[k + 1].text == "::"
                        ):
                            rankname = toks[k + 2].text
                            break
                    if rankname is not None:
                        cls = next(
                            (n for k, n in reversed(scope) if k == "class"), None
                        )
                        env.add(cls, nxt.text, rankname, src.path)
                        i = close + 1
                        continue
            # `x.set_rank(LockRank::kX, ...)` — arrays ranked in a loop.
            if (
                t.kind == "id"
                and t.text == "set_rank"
                and i + 4 < len(toks)
                and toks[i + 1].text == "("
                and toks[i + 2].text == "LockRank"
                and toks[i + 3].text == "::"
            ):
                rankname = toks[i + 4].text
                name = None
                if i >= 2 and toks[i - 1].text in (".", "->"):
                    name = toks[i - 2].text
                    # `for (auto& s : arr_) s.set_rank(...)`: rank the array.
                    for k in range(max(0, i - 20), i):
                        if (
                            toks[k].text == ":"
                            and k + 2 < i
                            and toks[k + 1].kind == "id"
                            and toks[k + 2].text == ")"
                        ):
                            name = toks[k + 1].text
                if name is not None:
                    cls = next((n for k, n in reversed(scope) if k == "class"), None)
                    env.add(cls, name, rankname, src.path)
                i += 5
                continue
            # Scope bookkeeping (mirrors extract_functions' classifier, but
            # descends into function bodies so locals are attributed too).
            if t.text == ";":
                stmt_start = i + 1
            elif t.text == "}":
                if scope:
                    scope.pop()
                stmt_start = i + 1
            elif t.text == "{":
                words = [x.text for x in toks[stmt_start:i]]
                if "namespace" in words:
                    scope.append(("namespace", "<ns>"))
                elif {"class", "struct"} & set(words):
                    names = [
                        x.text
                        for x in toks[stmt_start:i]
                        if x.kind == "id"
                        and x.text
                        not in ("class", "struct", "final", "public",
                                "private", "protected", "alignas")
                    ]
                    scope.append(("class", names[0] if names else "<anon>"))
                else:
                    scope.append(("block", "<anon>"))
                stmt_start = i + 1
            i += 1
    # Accessors resolve once every declaration is known.
    for fname, body_open, src in pending_accessors:
        toks = src.toks
        end = _match_pair(toks, body_open)
        for k in range(body_open, end):
            if toks[k].kind == "id" and toks[k].text == "return":
                for j in range(k + 1, min(end, k + 12)):
                    if toks[j].kind == "id" and toks[j].text in env.by_name:
                        rnames = {r for _, r, _ in env.by_name[toks[j].text]}
                        if len(rnames) == 1:
                            env.accessors[fname] = rnames.pop()
                        break
                break
    return env


def _receiver_before(toks, dot_idx):
    """Identifier naming the receiver of `<recv>.m(...)`, skipping one
    subscript: `arr_[i].m(...)` -> arr_."""
    j = dot_idx - 1
    if j >= 0 and toks[j].text == "]":
        depth = 0
        while j >= 0:
            if toks[j].text == "]":
                depth += 1
            elif toks[j].text == "[":
                depth -= 1
                if depth == 0:
                    j -= 1
                    break
            j -= 1
    if j >= 0 and toks[j].kind == "id":
        return toks[j].text
    return None


def _resolve_expr(toks, lo, hi, cls, path, env):
    """(display_name, rankname) for a lock expression: the first identifier
    that resolves as a declared lock or a lock-returning accessor."""
    last_id = None
    for k in range(lo, hi):
        if toks[k].kind != "id":
            continue
        last_id = toks[k].text
        acc = env.accessors.get(toks[k].text)
        if acc is not None:
            return toks[k].text, acc
        r = env.resolve(toks[k].text, cls, path)
        if r is not None:
            return toks[k].text, r
    return last_id, None


def _fn_cls(fn):
    return fn.qualname[-2] if len(fn.qualname) >= 2 else None


def _scan_fn_lock_events(fn, env):
    """Token-ordered events: ('acq', idx, scope_end, name, rank, var,
    guarded), ('rel', idx, name), ('call', idx, chain)."""
    toks = fn.src.toks
    cls = _fn_cls(fn)
    path = fn.src.path
    events = []
    i = fn.body_start
    while i < fn.body_end:
        t = toks[i]
        if t.kind != "id":
            i += 1
            continue
        prev = toks[i - 1].text if i > 0 else ""
        # Scoped guards: MutexLock g(mu); SpinLockGuard g(mu);
        if (
            t.text in GUARD_CLASSES
            and i + 2 < len(toks)
            and toks[i + 1].kind == "id"
            and toks[i + 2].text == "("
        ):
            close = _match_pair(toks, i + 2)
            name, rank = _resolve_expr(toks, i + 3, close, cls, path, env)
            events.append(("acq", i, scope_close(toks, close, fn), name, rank,
                           toks[i + 1].text, False))
            i = close + 1
            continue
        # std wrappers over our locks (legacy spellings).
        if t.text in LOCK_WRAPPERS and prev not in (".", "->"):
            j = i + 1
            if j < len(toks) and toks[j].text == "<":
                j = _match_pair_angle(toks, j)
            if j + 1 < len(toks) and toks[j].kind == "id" and toks[j + 1].text == "(":
                close = _match_pair(toks, j + 1)
                arg_words = {toks[k].text for k in range(j + 2, close)}
                if "try_to_lock" not in arg_words:
                    name, rank = _resolve_expr(toks, j + 2, close, cls, path, env)
                    events.append(("acq", i, scope_close(toks, close, fn), name,
                                   rank, toks[j].text, False))
                i = close + 1
                continue
        # GuardedLock<T> g(m, mu): managed acquisition; parks at a
        # safepoint while holding mu, so mu must rank below kSafepoint.
        if t.text == "GuardedLock":
            j = i + 1
            if j < len(toks) and toks[j].text == "<":
                j = _match_pair_angle(toks, j)
            if j + 1 < len(toks) and toks[j].kind == "id" and toks[j + 1].text == "(":
                close = _match_pair(toks, j + 1)
                comma = next(
                    (k for k in range(j + 2, close) if toks[k].text == ","), j + 1
                )
                name, rank = _resolve_expr(toks, comma + 1, close, cls, path, env)
                events.append(("acq", i, scope_close(toks, close, fn), name,
                               rank, toks[j].text, True))
                i = close + 1
                continue
        # Manual lock()/unlock() on a lock object.
        if (
            prev in (".", "->")
            and t.text in ("lock", "unlock")
            and i + 1 < len(toks)
            and toks[i + 1].text == "("
        ):
            recv = _receiver_before(toks, i - 1)
            if recv is not None:
                if t.text == "lock":
                    rank = env.resolve(recv, cls, path)
                    events.append(("acq", i, None, recv, rank, recv, False))
                else:
                    events.append(("rel", i, recv))
            i += 2
            continue
        if prev in (".", "->") and t.text == "try_lock":
            i += 1  # exempt from ordering (a failed try just fails)
            continue
        # Calls, member and free, for the transitive closure.
        if prev in (".", "->"):
            if (
                t.text not in CALL_IGNORE
                and i + 1 < len(toks)
                and toks[i + 1].text == "("
            ):
                events.append(("call", i, (t.text,)))
            i += 1
            continue
        chain = [t.text]
        j = i + 1
        while j + 1 < len(toks) and toks[j].text == "::" and toks[j + 1].kind == "id":
            chain.append(toks[j + 1].text)
            j += 2
        k = j
        if k < len(toks) and toks[k].text == "<":
            k2 = _match_pair_angle(toks, k)
            if k2 > k:
                k = k2
        if k < len(toks) and toks[k].kind == "id" and k != i:
            k += 1  # declaration form: Type var(args)
        if k < len(toks) and toks[k].text == "(" and chain[-1] not in CALL_IGNORE:
            events.append(("call", i, tuple(chain)))
        i = j if j > i + 1 else i + 1
    return events


def _call_suffix_index(all_fns):
    by_suffix = {}
    for fn in all_fns:
        parts = fn.qualname
        for s in range(len(parts)):
            by_suffix.setdefault(parts[s:], []).append(fn)
    return by_suffix


def check_lock_order(sources, per_src_fns, all_fns, env, findings):
    if not env.ranks:
        return
    rv = env.ranks
    safepoint = rv.get(SAFEPOINT_RANK)

    def held_violation(held_rank, acq_rank):
        if rv[held_rank] > rv[acq_rank]:
            return True
        return rv[held_rank] == rv[acq_rank] and acq_rank not in SAME_RANK_OK

    info = {}
    for fn in all_fns:
        events = _scan_fn_lock_events(fn, env)
        held = []  # (name, rankname, line, scope_end, var)
        direct = set()
        callsites = []
        toks = fn.src.toks
        for ev in events:
            idx = ev[1]
            held = [h for h in held if h[3] is None or idx <= h[3]]
            if ev[0] == "acq":
                _, _, scope_end, name, rank, var, guarded = ev
                line = toks[idx].line
                if rank is not None:
                    for h in held:
                        if held_violation(h[1], rank):
                            if not fn.src.suppressed(line, CHECK_ORDER):
                                findings.append(Finding(
                                    fn.src.path, line, CHECK_ORDER,
                                    f"acquires '{name}' ({rank}, rank "
                                    f"{rv[rank]}) while holding '{h[0]}' "
                                    f"({h[1]}, rank {rv[h[1]]}, line {h[2]}): "
                                    f"inverts the declared order in "
                                    f"support/lock_rank.h"))
                            break
                    direct.add(rank)
                if guarded and safepoint is not None:
                    if rank is not None and rv[rank] >= safepoint:
                        if not fn.src.suppressed(line, CHECK_ORDER):
                            findings.append(Finding(
                                fn.src.path, line, CHECK_ORDER,
                                f"GuardedLock over '{name}' ({rank}, rank "
                                f"{rv[rank]}): leave_blocked takes the "
                                f"safepoint lock (rank {safepoint}) while "
                                f"holding it, so GuardedLock targets must "
                                f"rank below kSafepoint"))
                    direct.add(SAFEPOINT_RANK)
                if rank is not None:
                    held.append((name, rank, line, scope_end, var))
            elif ev[0] == "rel":
                name = ev[2]
                for k in range(len(held) - 1, -1, -1):
                    if held[k][4] == name or held[k][0] == name:
                        held.pop(k)
                        break
            else:  # call
                if held:
                    callsites.append((idx, toks[idx].line, ev[2], list(held)))
        info[fn] = (direct, callsites)

    by_suffix = _call_suffix_index(all_fns)
    closure = {fn: set(d) for fn, (d, _) in info.items()}
    changed = True
    while changed:
        changed = False
        for fn, (_, callsites) in info.items():
            for _, _, chain, _ in callsites:
                for callee in by_suffix.get(chain, []):
                    add = closure[callee] - closure[fn]
                    if add:
                        closure[fn] |= add
                        changed = True

    reported = set()
    for fn, (_, callsites) in info.items():
        for idx, line, chain, held in callsites:
            callee_ranks = set()
            for callee in by_suffix.get(chain, []):
                callee_ranks |= closure[callee]
            for rank in sorted(callee_ranks, key=lambda r: rv[r]):
                bad = next((h for h in held if held_violation(h[1], rank)), None)
                if bad is None:
                    continue
                key = (fn.src.path, line, chain, rank)
                if key in reported or fn.src.suppressed(line, CHECK_ORDER):
                    break
                reported.add(key)
                findings.append(Finding(
                    fn.src.path, line, CHECK_ORDER,
                    f"call to {'::'.join(chain)}() may acquire {rank} (rank "
                    f"{rv[rank]}) while holding '{bad[0]}' ({bad[1]}, rank "
                    f"{rv[bad[1]]}, line {bad[2]}): inverts the declared "
                    f"order in support/lock_rank.h"))
                break


def check_loop_purity(sources, per_src_fns, all_fns, findings):
    by_suffix = _call_suffix_index(all_fns)
    fn_calls = {
        fn: [ev[2] for ev in _scan_fn_lock_events(fn, _EMPTY_ENV)
             if ev[0] == "call"]
        for fn in all_fns
    }
    loop_fns = set()
    work = [fn for fn in all_fns
            if any(fn.qualname[-len(r):] == r for r in LOOP_ROOTS)]
    while work:
        fn = work.pop()
        if fn in loop_fns:
            continue
        loop_fns.add(fn)
        for chain in fn_calls[fn]:
            for callee in by_suffix.get(chain, []):
                if callee not in loop_fns:
                    work.append(callee)

    for fn in loop_fns:
        src = fn.src
        toks = src.toks
        muts = mutator_idents(src)
        i = fn.body_start
        while i < fn.body_end:
            t = toks[i]
            if t.kind != "id":
                i += 1
                continue
            line = t.line
            prev = toks[i - 1].text if i > 0 else ""
            hit = None
            if (
                prev == "::"
                and t.text in BLOCKING_SYSCALLS
                and i + 1 < len(toks)
                and toks[i + 1].text == "("
                and (i < 2 or toks[i - 2].kind != "id")
            ):
                hit = (f"blocking syscall ::{t.text}() on the event-loop "
                       f"thread stalls every connection on this loop; move "
                       f"it to a worker, or suppress with a comment stating "
                       f"why the fd cannot block")
            elif t.text == "GuardedLock":
                hit = ("GuardedLock on the event-loop thread parks it "
                       "blocked at a safepoint: a GC pause would stall "
                       "every connection on this loop")
            elif (
                prev in (".", "->")
                and t.text == "wait"
                and i + 1 < len(toks)
                and toks[i + 1].text == "("
            ):
                hit = ("unbounded wait on the event-loop thread stalls "
                       "every connection on this loop")
            elif (
                prev in (".", "->")
                and t.text in POLLING_METHODS
                and i >= 2
                and toks[i - 2].kind == "id"
                and toks[i - 2].text in muts
            ):
                hit = (f"managed-heap activity (Mutator::{t.text}) on the "
                       f"event-loop thread: allocation can trigger a "
                       f"collection and park the loop")
            if hit is not None and not src.suppressed(line, CHECK_LOOP):
                findings.append(Finding(src.path, line, CHECK_LOOP, hit))
            i += 1


def run_shared_passes(sources, per_src_fns, all_fns, root, findings):
    env = collect_lock_decls(sources, load_rank_table(root))
    check_lock_order(sources, per_src_fns, all_fns, env, findings)
    check_loop_purity(sources, per_src_fns, all_fns, findings)


# --- driver -----------------------------------------------------------------


def gather_files(root):
    out = []
    for base in ("src",):
        for dirpath, _, names in os.walk(os.path.join(root, base)):
            for n in sorted(names):
                if n.endswith((".cpp", ".h", ".cc", ".hpp")):
                    out.append(os.path.join(dirpath, n))
    return out


def self_test(engine, root):
    corpus = os.path.join(os.path.dirname(os.path.abspath(__file__)), "corpus")
    files = sorted(
        os.path.join(corpus, f) for f in os.listdir(corpus) if f.endswith(".cpp")
    )
    expected = set()
    for p in files:
        with open(p) as f:
            for i, ln in enumerate(f, 1):
                m = EXPECT_RE.search(ln)
                if m:
                    expected.add((p, i, m.group(1)))
    findings = run_engine(engine, files, root, None)
    if findings is None:
        return 2
    got = {f.key() for f in findings}
    ok = True
    for miss in sorted(expected - got):
        print(f"SELF-TEST FAIL: expected finding not reported: "
              f"{miss[0]}:{miss[1]} [{miss[2]}]")
        ok = False
    for extra in sorted(got - expected):
        print(f"SELF-TEST FAIL: unexpected finding: {extra[0]}:{extra[1]} "
              f"[{extra[2]}]")
        ok = False
    n_bad = len(expected)
    n_good = sum(1 for p in files if "good_" in os.path.basename(p))
    if ok:
        print(
            f"gclint self-test OK ({engine} engine): {n_bad} seeded violations "
            f"flagged, {n_good} known-good files clean"
        )
        return 0
    return 1


def run_engine(engine, files, root, compile_commands):
    if engine == "libclang":
        return run_libclang(files, root, compile_commands)
    return run_lex(files, root)


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    ap.add_argument("files", nargs="*", help="files to lint (default: sweep --root)")
    ap.add_argument("--root", default=".", help="repo root (default: cwd)")
    ap.add_argument(
        "--engine",
        choices=("auto", "lex", "libclang"),
        default="auto",
        help="analysis engine (auto prefers libclang when available)",
    )
    ap.add_argument(
        "--compile-commands",
        default=None,
        help="compile_commands.json for the libclang engine "
        "(default: <root>/build/compile_commands.json)",
    )
    ap.add_argument("--self-test", action="store_true", help="run the corpus")
    ap.add_argument(
        "--json",
        action="store_true",
        help="emit findings as a JSON array of {file, line, pass, message} "
        "(for CI annotations)",
    )
    args = ap.parse_args()

    engine = args.engine
    if engine == "auto":
        try:
            import clang.cindex  # noqa: F401

            engine = "libclang"
        except ImportError:
            engine = "lex"

    cc = args.compile_commands or os.path.join(
        args.root, "build", "compile_commands.json"
    )

    if args.self_test:
        sys.exit(self_test(engine, args.root))

    files = args.files or gather_files(args.root)
    findings = run_engine(engine, files, args.root, cc)
    if findings is None:
        print("gclint: engine unavailable", file=sys.stderr)
        sys.exit(2)
    findings.sort(key=lambda x: (x.path, x.line, x.check))
    if args.json:
        print(json.dumps(
            [
                {"file": f.path, "line": f.line, "pass": f.check,
                 "message": f.message}
                for f in findings
            ],
            indent=2,
        ))
        sys.exit(1 if findings else 0)
    for f in findings:
        print(f)
    if findings:
        print(f"gclint ({engine}): {len(findings)} violation(s)")
        sys.exit(1)
    print(f"gclint ({engine}): {len(files)} file(s) clean")
    sys.exit(0)


if __name__ == "__main__":
    main()
