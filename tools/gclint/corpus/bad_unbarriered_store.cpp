// Known-bad corpus: reference-field stores that bypass the write barrier.
// A skipped barrier leaves the card table / remembered sets incomplete, so
// a later young collection misses the old->young edge and frees live data.
#include "mock_runtime.h"

namespace mgc {

void sneaky_store(Mutator& m, Obj* holder, Obj* value) {
  m.set_ref(holder, 0, value);    // fine: barriered store
  holder->set_ref_raw(1, value);  // gclint-expect: unbarriered-ref-store
}

void raw_slot_store(Obj* holder, Obj* value) {
  holder->refs()[1].store(value, std::memory_order_relaxed);  // gclint-expect: unbarriered-ref-store
}

}  // namespace mgc
