// Known-good corpus: intentionally unsafe code made clean through the
// annotation escape hatches in src/support/gc_annotations.h.
// No engine may report anything in this file.
#include "mock_runtime.h"

namespace mgc {

// Collector internals legitimately hold raw pointers across pause points:
// the whole function opts out.
MGC_GC_UNSAFE void forwarding_fixup(Mutator& m, Obj* stale) {
  m.poll();
  stale->set_field(0, 0);  // allowed: enclosing function is MGC_GC_UNSAFE
}

// The write barrier itself must perform the raw store it guards.
MGC_GC_UNSAFE void barrier_impl(Obj* holder, Obj* value) {
  holder->set_ref_raw(0, value);
}

// A single sanctioned statement inside otherwise-checked code uses a
// line-scoped suppression instead of opting out the whole function.
void single_statement_exception(Mutator& m, Obj* holder, Obj* value) {
  m.set_ref(holder, 0, value);
  // gclint: suppress(unbarriered-ref-store)
  holder->set_ref_raw(1, value);
}

// The macro form reads identically to the comment form.
void macro_suppression(Mutator& m, Obj* holder, Obj* value) {
  MGC_LINT_SUPPRESS("unbarriered-ref-store");
  holder->set_ref_raw(0, value);
  (void)m;
}

}  // namespace mgc
