// Known-bad corpus: blocking calls on the event-loop thread. Everything
// reachable from NetServer::loop_main runs with every connection on the
// loop behind it, so a blocking ::read or an unbounded wait here stalls
// the whole loop. The read is one call deep to exercise reachability.
#include "mock_runtime.h"

namespace mgc {

struct WaitGate {
  void wait(int) {}
};

class NetServer {
 public:
  void loop_main() {
    for (;;) {
      on_readable(7);
      settle();
    }
  }

 private:
  void on_readable(int fd) {
    char buf[64];
    long n = ::read(fd, buf, sizeof(buf));  // gclint-expect: loop-purity
    bytes_ += n > 0 ? n : 0;
  }

  void settle() {
    gate_.wait(0);  // gclint-expect: loop-purity
  }

  WaitGate gate_;
  long bytes_ = 0;
};

}  // namespace mgc
