// Known-bad corpus: raw Obj* values held live across safepoint polls.
// Every `gclint-expect:` line must be flagged by both engines.
#include "mock_runtime.h"

namespace mgc {

// The second allocation can move `node`; the read on the return line is a
// use-after-evacuation.
word_t stale_after_alloc(Mutator& m) {
  Obj* node = m.alloc(1, 2);
  node->set_field(0, 7);  // fine: no poll since the definition
  Obj* other = m.alloc(0, 1);
  (void)other;
  return node->field(0);  // gclint-expect: raw-across-safepoint
}

// A raw parameter is defined at function entry; any poll before its use
// invalidates it.
void stale_param(Mutator& m, Obj* p) {
  m.poll();
  p->set_field(0, 1);  // gclint-expect: raw-across-safepoint
}

Obj* helper_alloc(Mutator& m) { return m.alloc(0, 2); }

// helper_alloc(m) reaches Mutator::alloc, so it polls transitively.
word_t stale_through_helper(Mutator& m) {
  Obj* a = m.alloc(1, 1);
  Obj* b = helper_alloc(m);
  (void)b;
  return a->field(0);  // gclint-expect: raw-across-safepoint
}

// GuardedLock construction parks the thread blocked, which lets a
// safepoint (and a moving collection) run.
word_t stale_across_guarded_lock(Mutator& m, std::mutex& mu) {
  Obj* node = m.alloc(1, 2);
  GuardedLock<std::mutex> g(m, mu);
  return node->field(0);  // gclint-expect: raw-across-safepoint
}

}  // namespace mgc
