// Known-bad corpus: lock-order inversions. `fine_path` nests in declared
// rank order; `cycle_path` nests the same pair the other way, completing a
// cycle the lock-order pass must flag at the exact acquisition. `Deep`
// hides the second acquisition one call deep to exercise the transitive
// closure, and `BadGuard` wraps a lock ranked above kSafepoint in a
// GuardedLock, which would deadlock against the pause protocol.
#include "mock_runtime.h"

namespace mgc {

class OrderPair {
 public:
  void fine_path() {
    MutexLock a(shard_mu_);  // kKvShard (30)
    MutexLock b(log_mu_);    // kGcLog (160): ascending, legal
    hits_++;
  }

  void cycle_path() {
    MutexLock b(log_mu_);
    MutexLock a(shard_mu_);  // gclint-expect: lock-order
    hits_++;
  }

 private:
  Mutex shard_mu_{LockRank::kKvShard, "corpus-shard"};
  Mutex log_mu_{LockRank::kGcLog, "corpus-log"};
  int hits_ = 0;
};

class Deep {
 public:
  void top() {
    MutexLock g(outer_mu_);  // kSsTable (80)
    leaf();  // gclint-expect: lock-order
  }

 private:
  void leaf() {
    MutexLock g(inner_mu_);  // kCommitLog (60): below the caller's hold
    depth_++;
  }

  Mutex outer_mu_{LockRank::kSsTable, "corpus-outer"};
  Mutex inner_mu_{LockRank::kCommitLog, "corpus-inner"};
  int depth_ = 0;
};

class BadGuard {
 public:
  void enter(Mutator& m) {
    GuardedLock<Mutex> g(m, barrier_mu_);  // gclint-expect: lock-order
    entries_++;
  }

 private:
  Mutex barrier_mu_{LockRank::kGcBarrier, "corpus-barrier"};
  int entries_ = 0;
};

}  // namespace mgc
