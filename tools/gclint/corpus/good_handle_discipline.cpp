// Known-good corpus: the handle discipline the runtime actually follows.
// No engine may report anything in this file.
#include "mock_runtime.h"

namespace mgc {

// Re-defining a raw pointer after every poll is legal: the stale value is
// never read.
word_t redefine_after_poll(Mutator& m) {
  Obj* node = m.alloc(1, 2);
  node->set_field(0, 5);
  m.poll();
  node = m.alloc(1, 2);  // fresh definition after the poll
  return node->field(0);
}

// Locals are GC-updated roots; reads through them after a poll are safe.
word_t handle_discipline(Mutator& m) {
  Local node(m, m.alloc(1, 2));
  node->set_field(0, 9);
  m.poll();
  return node->field(0);
}

// A raw pointer whose last use precedes the poll is dead across it.
void dead_after_poll(Mutator& m) {
  Obj* scratch = m.alloc(0, 1);
  scratch->set_field(0, 1);
  m.poll();
}

word_t read_field(Obj* node) { return node->field(0); }

// Helpers that never receive the mutator cannot reach a safepoint, so a
// raw pointer may flow through them freely.
word_t safe_helper_use(Mutator& m) {
  Obj* node = m.alloc(1, 1);
  const word_t v = read_field(node);
  m.poll();
  return v;
}

// Blocking locks are taken through GuardedLock (enter_blocked /
// leave_blocked around the acquire), which is the sanctioned way to wait
// while collections proceed; over a std::mutex this is fine.
void blocked_lock_is_fine(Mutator& m, std::mutex& mu) {
  GuardedLock<std::mutex> g(m, mu);
  Local v(m, m.alloc(0, 2));
  v->set_field(0, 3);
}

// Barriered stores through the Mutator API are the sanctioned pattern.
void barriered_store(Mutator& m, Obj* holder, Obj* value) {
  m.set_ref(holder, 0, value);
}

}  // namespace mgc
