// Minimal stand-in for the runtime headers so the corpus files parse
// standalone: the libclang engine compiles them without the real tree, and
// the lexical engine only needs the token shapes in the .cpp files.
// Mirrors the surface of src/runtime/mutator.h and src/heap/obj.h that the
// checks care about — do not add behavior here.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>

#if defined(__clang__)
#define MGC_GC_UNSAFE __attribute__((annotate("mgc::gc_unsafe")))
#else
#define MGC_GC_UNSAFE
#endif
#define MGC_LINT_SUPPRESS(check)

namespace mgc {

using word_t = std::uint64_t;

struct Obj {
  word_t field(int) const { return 0; }
  void set_field(int, word_t) {}
  Obj* ref(int) const { return nullptr; }
  void set_ref_raw(int, Obj*) {}
  std::atomic<Obj*>* refs() { return slots_; }
  std::atomic<Obj*> slots_[4];
};

// Rank table mirror: enumerator values match src/support/lock_rank.h (the
// lexical engine reads the real header; these exist so the libclang engine
// can compile the corpus standalone).
enum class LockRank : unsigned {
  kUnranked = 0,
  kKvShard = 30,
  kAppData = 40,
  kCommitLog = 60,
  kSsTable = 80,
  kSafepoint = 130,
  kGcLog = 160,
  kGcBarrier = 170,
  kRemSet = 210,
  kNetHandoff = 240,
};

class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(LockRank, const char*) {}
  void lock() {}
  bool try_lock() { return true; }
  void unlock() {}
};

class SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock&) {}
};

class Mutex {
 public:
  Mutex() = default;
  Mutex(LockRank, const char*) {}
  void set_rank(LockRank, const char*) {}
  void lock() {}
  bool try_lock() { return true; }
  void unlock() {}
};

class MutexLock {
 public:
  explicit MutexLock(Mutex&) {}
  void lock() {}
  void unlock() {}
};

class Mutator {
 public:
  Obj* alloc(int, int) { return nullptr; }
  void poll() {}
  void system_gc() {}
  void enter_blocked() {}
  void leave_blocked() {}
  void set_ref(Obj*, int, Obj*) {}
};

class Local {
 public:
  explicit Local(Mutator&) {}
  Local(Mutator&, Obj*) {}
  Obj* get() const { return obj_; }
  void set(Obj* o) { obj_ = o; }
  Obj* operator->() const { return obj_; }
  Obj* obj_ = nullptr;
};

template <typename M>
class GuardedLock {
 public:
  GuardedLock(Mutator&, M&) {}
};

}  // namespace mgc
