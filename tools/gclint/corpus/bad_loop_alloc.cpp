// Known-bad corpus: managed-heap activity on the event-loop thread. A
// Mutator::alloc can trigger a stop-the-world collection, and GuardedLock
// deliberately parks its thread blocked at a safepoint — either one turns
// a GC pause into a stall for every connection on the loop.
#include "mock_runtime.h"

namespace altnet {
using namespace mgc;

class NetServer {
 public:
  explicit NetServer(Mutator& m) : mut_(m) {}

  void loop_main() {
    for (;;) handle_request(mut_);
  }

 private:
  void handle_request(Mutator& m) {
    Local row(m, m.alloc(2, 4));  // gclint-expect: loop-purity
    GuardedLock<Mutex> g(m, table_mu_);  // gclint-expect: loop-purity
    rows_++;
  }

  Mutator& mut_;
  Mutex table_mu_{LockRank::kAppData, "corpus-table"};
  int rows_ = 0;
};

}  // namespace altnet
