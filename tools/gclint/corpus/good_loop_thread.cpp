// Known-good corpus for the loop-purity pass: a loop thread that stays
// pure. Plain (non-Guarded) short critical sections are fine, and a read
// from a nonblocking fd is fine when suppressed with its justification —
// the escape hatch the real server uses for eventfd wakeups.
#include "mock_runtime.h"

namespace goodnet {
using namespace mgc;

class NetServer {
 public:
  void loop_main() {
    for (;;) {
      drain_wakeups();
      drain_handoff();
    }
  }

 private:
  void drain_wakeups() {
    char buf[8];
    // gclint: suppress(loop-purity) wake fd is EFD_NONBLOCK; read never stalls
    long n = ::read(wake_fd_, buf, sizeof(buf));
    wakeups_ += n > 0 ? 1 : 0;
  }

  void drain_handoff() {
    MutexLock g(handoff_mu_);  // plain guard, no safepoint parking: fine
    pending_ = 0;
  }

  int wake_fd_ = -1;
  int pending_ = 0;
  long wakeups_ = 0;
  Mutex handoff_mu_{LockRank::kNetHandoff, "corpus-handoff"};
};

}  // namespace goodnet
