// Known-good corpus for the lock-order pass: strictly ascending nesting
// across mutexes and spinlocks, plus a try_lock against the grain — which
// is exempt by design (a failed try_lock just fails; it cannot deadlock).
#include "mock_runtime.h"

namespace mgc {

class GoodOrder {
 public:
  void ascending() {
    MutexLock a(front_mu_);     // kKvShard (30)
    MutexLock b(sstable_mu_);   // kSsTable (80)
    SpinLockGuard c(rs_lock_);  // kRemSet (210)
    steps_++;
  }

  void opportunistic() {
    MutexLock g(sstable_mu_);
    // Against the declared order, but try_lock is exempt: on contention it
    // returns false instead of deadlocking.
    if (front_mu_.try_lock()) {
      steps_++;
      front_mu_.unlock();
    }
  }

  void sequential_not_nested() {
    {
      MutexLock g(sstable_mu_);
      steps_++;
    }
    // The previous guard is out of scope: this is not a nesting.
    MutexLock g(front_mu_);
    steps_++;
  }

 private:
  Mutex front_mu_{LockRank::kKvShard, "corpus-front"};
  Mutex sstable_mu_{LockRank::kSsTable, "corpus-sstable"};
  SpinLock rs_lock_{LockRank::kRemSet, "corpus-rs"};
  int steps_ = 0;
};

}  // namespace mgc
