// Known-bad corpus: allocating / polling while holding a GC-internal
// SpinLock. The safepoint would wait for threads spinning on the same
// lock, which wait for the holder: deadlock.
#include "mock_runtime.h"

namespace mgc {

SpinLock g_free_list_lock;

Obj* alloc_while_spinning(Mutator& m) {
  std::lock_guard<SpinLock> hold(g_free_list_lock);
  Obj* p = m.alloc(0, 4);  // gclint-expect: alloc-under-gc-lock
  return p;
}

void poll_while_spinning(Mutator& m, SpinLock& lock) {
  std::unique_lock<SpinLock> hold(lock);
  m.poll();  // gclint-expect: alloc-under-gc-lock
}

}  // namespace mgc
