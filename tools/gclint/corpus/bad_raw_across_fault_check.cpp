// Known-bad corpus: raw Obj* values held across a fault-injection check
// point. The fault framework's armed paths fail allocations and refills,
// which sends the mutator down the slow path — collections included — so
// any helper that consults a fault site and reacts on the mutator must be
// treated exactly like a safepoint poll. Holding a raw pointer across it
// is the same use-after-evacuation bug as holding it across m.poll().
#include "mock_runtime.h"

namespace mgc {

// Stand-in for a guarded operation: when the site is armed the helper
// rides the degradation cascade (here: a poll, in the tree: a failed
// refill that escalates into a collection).
inline void fault_check_point(Mutator& m) { m.poll(); }

// The check point can move `node`; the read after it is stale.
word_t stale_across_fault_check(Mutator& m) {
  Obj* node = m.alloc(1, 2);
  node->set_field(0, 11);  // fine: no poll since the definition
  fault_check_point(m);
  return node->field(0);  // gclint-expect: raw-across-safepoint
}

// Same shape, but the check point hides one call deeper — the transitive
// poll resolution must still see it.
inline void guarded_operation(Mutator& m) { fault_check_point(m); }

word_t stale_across_nested_fault_check(Mutator& m) {
  Obj* node = m.alloc(1, 2);
  guarded_operation(m);
  return node->field(0);  // gclint-expect: raw-across-safepoint
}

}  // namespace mgc
