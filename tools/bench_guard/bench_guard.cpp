// bench_guard: compare a fresh BENCH_*.json report against a committed
// baseline and exit non-zero on regression.
//
//   bench_guard --baseline bench/baselines/BENCH_fig1.json
//               --fresh build/BENCH_fig1.json [--threshold-pct 25]
//
// The comparison rules live in bench/bench_json.cpp (compare_reports):
// plain metrics are lower-is-better within the threshold, "_exact"
// metrics must match bit-for-bit, zero baselines are structural
// invariants, and schema/bench-name mismatches or malformed files fail
// loudly. Re-baselining workflow: EXPERIMENTS.md, "Perf trajectory".
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_json.h"

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --baseline <BENCH_x.json> --fresh <BENCH_x.json> "
               "[--threshold-pct <pct>]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline_path;
  std::string fresh_path;
  double threshold_pct = 25.0;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (std::strcmp(argv[i], "--fresh") == 0 && i + 1 < argc) {
      fresh_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threshold-pct") == 0 && i + 1 < argc) {
      char* end = nullptr;
      threshold_pct = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || threshold_pct < 0.0) {
        std::fprintf(stderr, "bench_guard: bad --threshold-pct '%s'\n",
                     argv[i]);
        return 2;
      }
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (baseline_path.empty() || fresh_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  using mgc::Json;
  Json baseline;
  Json fresh;
  std::string err;
  if (!mgc::bench::load_report(baseline_path, &baseline, &err)) {
    std::fprintf(stderr, "bench_guard: baseline: %s\n", err.c_str());
    return 1;
  }
  if (!mgc::bench::load_report(fresh_path, &fresh, &err)) {
    std::fprintf(stderr, "bench_guard: fresh: %s\n", err.c_str());
    return 1;
  }

  const std::vector<std::string> violations =
      mgc::bench::compare_reports(baseline, fresh, threshold_pct);
  if (violations.empty()) {
    std::printf("bench_guard: PASS (%s vs %s, threshold %.0f%%)\n",
                fresh_path.c_str(), baseline_path.c_str(), threshold_pct);
    return 0;
  }
  std::fprintf(stderr, "bench_guard: FAIL — %zu violation(s):\n",
               violations.size());
  for (const std::string& v : violations) {
    std::fprintf(stderr, "  %s\n", v.c_str());
  }
  std::fprintf(stderr,
               "If this movement is intended, re-baseline (see "
               "EXPERIMENTS.md, 'Perf trajectory').\n");
  return 1;
}
