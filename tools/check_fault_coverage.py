#!/usr/bin/env python3
"""Fault-site coverage lint.

Every injection site in support/fault.h exists because some failure path
needs deterministic exercise; a site no test ever arms is a failure path
nobody runs. This checker cross-references the Site enum and its name
table against the test tree and fails if any site is orphaned:

  * the enum in src/support/fault.h and kSiteNames in src/support/fault.cpp
    must agree on the site count, and names must be unique;
  * each spec name must be the kebab-case derivation of its enumerator
    (Site::kReplAppendDrop <-> "repl-append-drop"), so a table row pasted
    against the wrong enumerator fails loudly instead of silently renaming
    a site; two grandfathered names predate the rule (LEGACY_NAMES);
  * every site must be armed by at least one test, either programmatically
    (a `Site::kFoo` token) or through a spec string (its "kebab-name", the
    MGC_FAULT syntax) somewhere under tests/.

Run from anywhere: paths resolve relative to --root (default: the repo
containing this script). Wired into ctest under the `lint` label.
"""

import argparse
import os
import re
import sys

ENUM_RE = re.compile(r"enum\s+class\s+Site[^{]*\{(.*?)\}", re.S)
NAMES_RE = re.compile(r"kSiteNames\[[^\]]*\]\s*=\s*\{(.*?)\};", re.S)

# Names that predate the kebab-derivation rule and are baked into saved
# MGC_FAULT specs and docs; everything added later must derive.
LEGACY_NAMES = {
    "kCommitLogWrite": "commitlog-write",
    "kKvShardQueueFull": "shard-queue-full",
}


def kebab_of(enumerator):
    """Site::kReplAppendDrop -> repl-append-drop (digits bind left: kG1EvacFail
    -> g1-evac-fail)."""
    body = enumerator[1:] if enumerator.startswith("k") else enumerator
    words = re.findall(r"[A-Z][a-z0-9]*", body)
    return "-".join(w.lower() for w in words)


def strip_comments(text):
    text = re.sub(r"//[^\n]*", "", text)
    return re.sub(r"/\*.*?\*/", "", text, flags=re.S)


def parse_enum(path):
    with open(path) as f:
        m = ENUM_RE.search(strip_comments(f.read()))
    if not m:
        sys.exit(f"error: no `enum class Site` found in {path}")
    names = re.findall(r"\b(k[A-Za-z0-9_]+)\b", m.group(1))
    return [n for n in names if n != "kNumSites"]


def parse_name_table(path):
    with open(path) as f:
        m = NAMES_RE.search(strip_comments(f.read()))
    if not m:
        sys.exit(f"error: no kSiteNames table found in {path}")
    return re.findall(r'"([^"]+)"', m.group(1))


def gather_test_text(root, dirs):
    chunks = []
    for base in dirs:
        top = os.path.join(root, base)
        for dirpath, _, names in os.walk(top):
            for n in sorted(names):
                if n.endswith((".cpp", ".h", ".cc", ".hpp")):
                    with open(os.path.join(dirpath, n)) as f:
                        chunks.append(f.read())
    return "\n".join(chunks)


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    default_root = os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    ap.add_argument("--root", default=default_root, help="repo root")
    args = ap.parse_args()

    fault_h = os.path.join(args.root, "src", "support", "fault.h")
    fault_cpp = os.path.join(args.root, "src", "support", "fault.cpp")
    enumerators = parse_enum(fault_h)
    names = parse_name_table(fault_cpp)

    failures = []
    if len(enumerators) != len(names):
        failures.append(
            f"site count mismatch: {len(enumerators)} enumerators in "
            f"fault.h vs {len(names)} entries in kSiteNames (fault.cpp)")
    dupes = {n for n in names if names.count(n) > 1}
    if dupes:
        failures.append(f"duplicate kSiteNames entries: {sorted(dupes)}")

    for enumr, name in zip(enumerators, names):
        want = LEGACY_NAMES.get(enumr, kebab_of(enumr))
        if name != want:
            failures.append(
                f"name/enum mismatch: Site::{enumr} maps to \"{name}\" in "
                f"kSiteNames but the kebab derivation is \"{want}\" — fix "
                f"the table row (or, for a pre-rule name, add it to "
                f"LEGACY_NAMES in this checker)")

    tests = gather_test_text(args.root, ["tests"])
    for enumr, name in zip(enumerators, names):
        by_token = re.search(rf"\bSite::{enumr}\b", tests) is not None
        by_spec = name in tests
        if not (by_token or by_spec):
            failures.append(
                f"orphaned fault site: Site::{enumr} (\"{name}\") is never "
                f"armed by any test under tests/ — add a test that arms it "
                f"(Site::{enumr} or an MGC_FAULT spec \"{name}:...\") or "
                f"delete the site")

    if failures:
        for f in failures:
            print(f"check_fault_coverage: {f}")
        return 1
    print(f"check_fault_coverage OK: {len(enumerators)} sites, all armed "
          f"by tests")
    return 0


if __name__ == "__main__":
    sys.exit(main())
