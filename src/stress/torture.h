// Deterministic multi-threaded GC torture driver.
//
// K mutator threads churn private and shared object graphs from a single
// seed: every thread keeps an aging ladder of retained nodes (promoted over
// successive scavenges), publishes freshly stamped nodes into its own
// partition of a shared array, cross-links its nodes to other threads'
// published nodes (racy-but-atomic reference stores through the write
// barrier), and burns through eden with small, TLAB-bypassing large, and
// occasionally humongous garbage. Rounds are separated by barriers; at the
// end of each round one thread forces a young (periodically full)
// collection and runs the expanded heap verifier at that safepoint.
//
// Every node carries a self-validating stamp (payload[0] = mix of seed,
// thread, round, index; payload[1] = its complement), so torn copies or
// lost updates surface as payload errors, and the surviving private graph
// folds into a fingerprint that is bit-identical across runs with the same
// config — GC scheduling may differ, the reachable state may not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/heap_verifier.h"
#include "runtime/vm_config.h"

namespace mgc::stress {

struct TortureConfig {
  // Collector / heap geometry under test. Tests shrink the heap so each
  // run forces real collection pressure in well under a second.
  VmConfig vm;

  int mutators = 4;            // >= 2; each owns a private graph + partition
  std::uint64_t seed = 42;     // single seed reproducing the whole run
  int rounds = 6;

  // Per-thread, per-round churn knobs.
  int churn_per_round = 2000;       // garbage allocations
  int retained_per_thread = 64;     // aging-ladder slots (quarter replaced/round)
  int published_per_thread = 32;    // shared-partition slots (replaced each round)
  int crosslinks_per_round = 24;    // link/unlink ops against other partitions
  int large_every = 16;             // every Nth garbage alloc bypasses the TLAB
  std::size_t huge_payload_words = 12000;  // periodic humongous/large-direct alloc
  int full_every = 3;               // every Nth forced GC is full (0 = never)

  // Optional fault injection, armed for the whole run and disarmed at exit
  // (MGC_FAULT spec grammar; see support/fault.h). The fingerprint is
  // content-invariant, so a run with faults armed must still reproduce the
  // fingerprint of a second run with the same config — injected failures
  // may add collections, they may not corrupt the reachable graph.
  std::string fault_spec;
  std::uint64_t fault_seed = 1;

  VerifyOptions verify;             // passed to verify_heap_at_safepoint
};

struct TortureResult {
  std::uint64_t objects_allocated = 0;  // deterministic for a fixed config
  std::uint64_t young_gcs_forced = 0;
  std::uint64_t full_gcs_forced = 0;
  std::uint64_t payload_errors = 0;     // stamp mismatches seen by mutators
  std::uint64_t verifier_runs = 0;
  std::uint64_t fingerprint = 0;        // fold of the surviving private graphs

  // Verifier coverage, summed over all runs (proves the checks engaged).
  std::size_t cells_walked = 0;
  std::size_t old_young_refs = 0;
  std::size_t cross_region_refs = 0;
  std::size_t free_chunks = 0;

  std::vector<std::string> problems;    // verifier findings, round-prefixed
  bool ok() const { return problems.empty() && payload_errors == 0; }
};

// Runs the torture loop on a fresh VM built from cfg.vm. Blocks until all
// mutator threads join.
TortureResult run_torture(const TortureConfig& cfg);

// A small heap geometry suitable for CI stress runs of `gc`.
VmConfig small_stress_vm(GcKind gc, bool tlab_enabled);

}  // namespace mgc::stress
