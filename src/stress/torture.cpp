#include "stress/torture.h"

#include <atomic>
#include <optional>

#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/barrier.h"
#include "support/fault.h"
#include "support/rng.h"
#include "support/units.h"

namespace mgc::stress {
namespace {

constexpr std::uint16_t kNodeRefs = 2;       // [0] cross-link, [1] ladder link
constexpr std::size_t kNodePayload = 4;      // [0] stamp, [1] ~stamp, rest free
constexpr std::uint64_t kStampMask = 0xa5a5a5a5a5a5a5a5ULL;

std::uint64_t stamp_of(std::uint64_t seed, int thread, int round,
                       std::uint64_t index) {
  std::uint64_t s = seed ^ (static_cast<std::uint64_t>(thread) << 40) ^
                    (static_cast<std::uint64_t>(round) << 20) ^ index;
  return splitmix64(s);
}

void stamp(Obj* node, std::uint64_t value) {
  node->set_field(0, value);
  node->set_field(1, value ^ kStampMask);
}

// Returns false when the node's stamp is torn/corrupt.
bool stamp_ok(const Obj* node) {
  return node->payload_words() >= 2 &&
         (node->field(0) ^ kStampMask) == node->field(1);
}

// Barrier arrival in the safepoint-blocked state: a waiting thread must not
// hold up a pause (the verifier and forced GCs run while peers wait here).
void blocked_wait(Mutator& m, SenseBarrier& b, bool& sense) {
  m.enter_blocked();
  sense = b.arrive_and_wait(sense);
  m.leave_blocked();
}

struct ThreadOutcome {
  std::uint64_t fingerprint = 0;
  std::uint64_t allocated = 0;
};

}  // namespace

VmConfig small_stress_vm(GcKind gc, bool tlab_enabled) {
  VmConfig cfg;
  cfg.gc = gc;
  cfg.tlab_enabled = tlab_enabled;
  cfg.heap_bytes = 10 * MiB;
  cfg.young_bytes = 3 * MiB;
  cfg.gc_threads = 2;
  if (gc == GcKind::kG1) cfg.g1_region_bytes = 128 * KiB;
  return cfg;
}

TortureResult run_torture(const TortureConfig& cfg) {
  MGC_CHECK(cfg.mutators >= 2);
  MGC_CHECK(cfg.rounds >= 1 && cfg.retained_per_thread >= 4 &&
            cfg.published_per_thread >= 1);

  // Arm before the Vm exists so even startup-path allocations are covered;
  // ScopedSpec disarms everything when the run (and its Vm) are gone.
  std::optional<fault::ScopedSpec> faults;
  if (!cfg.fault_spec.empty()) {
    faults.emplace(cfg.fault_spec, cfg.fault_seed);
  }

  Vm vm(cfg.vm);
  const int K = cfg.mutators;
  const auto S = static_cast<std::size_t>(cfg.published_per_thread);

  // The shared publication board: one partition of S slots per thread,
  // rooted globally so it survives the setup scope.
  const std::size_t board_root = vm.create_global_root();
  {
    Vm::MutatorScope setup(vm, "torture-setup");
    Mutator& m = setup.mutator();
    Local board(m,
                managed::ref_array::create(m, static_cast<std::size_t>(K) * S));
    vm.set_global_root(board_root, board.get());
  }

  TortureResult res;
  std::vector<ThreadOutcome> outcomes(static_cast<std::size_t>(K));
  std::atomic<std::uint64_t> payload_errors{0};
  SenseBarrier barrier(K);

  // Round-end verification state, written by thread 0 only (between the
  // two barriers, while every other thread waits blocked).
  std::uint64_t young_forced = 0;
  std::uint64_t full_forced = 0;
  std::uint64_t verifier_runs = 0;

  vm.run_mutators(K, [&](Mutator& m, int t) {
    Rng rng(cfg.seed + 0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(t));
    bool sense = false;
    std::uint64_t allocated = 0;
    const std::size_t part0 = static_cast<std::size_t>(t) * S;

    auto make_node = [&](int round, std::uint64_t index, std::size_t payload) {
      Obj* node = m.alloc(kNodeRefs, payload < kNodePayload ? kNodePayload
                                                            : payload);
      stamp(node, stamp_of(cfg.seed, t, round, index));
      ++allocated;
      return node;
    };

    Local retained(m, managed::ref_array::create(
                          m, static_cast<std::size_t>(cfg.retained_per_thread)));
    for (int j = 0; j < cfg.retained_per_thread; ++j) {
      Local node(m, make_node(-1, static_cast<std::uint64_t>(j), kNodePayload));
      managed::ref_array::set(m, retained.get(),
                              static_cast<std::size_t>(j), node.get());
    }

    for (int r = 0; r < cfg.rounds; ++r) {
      // 1. Aging ladder: replace a quarter of the retained slots; the other
      //    slots keep aging toward tenure. Then re-link every retained node
      //    to its successor slot — once holders promote, these become the
      //    old->young references the card/remset checks feed on.
      for (int j = r % 4; j < cfg.retained_per_thread; j += 4) {
        Local node(m, make_node(r, static_cast<std::uint64_t>(j), kNodePayload));
        managed::ref_array::set(m, retained.get(),
                                static_cast<std::size_t>(j), node.get());
      }
      for (int j = 0; j < cfg.retained_per_thread; ++j) {
        Obj* holder = managed::ref_array::get(retained.get(),
                                              static_cast<std::size_t>(j));
        Obj* target = managed::ref_array::get(
            retained.get(),
            static_cast<std::size_t>((j + 1) % cfg.retained_per_thread));
        m.set_ref(holder, 1, target);
      }

      // 2. Publish fresh nodes into this thread's partition of the board.
      for (std::size_t j = 0; j < S; ++j) {
        Local node(m, make_node(r, 0x100000u + j, kNodePayload));
        managed::ref_array::set(m, vm.global_root(board_root), part0 + j,
                                node.get());
      }

      // 3. Cross-thread link/unlink: pick a published node from another
      //    partition (racy read — the owner may be a round behind or ahead)
      //    and store it into one of ours through the write barrier.
      for (int k = 0; k < cfg.crosslinks_per_round; ++k) {
        Obj* board = vm.global_root(board_root);
        const auto peer = static_cast<std::size_t>(
            (static_cast<std::uint64_t>(t) + 1 +
             rng.below(static_cast<std::uint64_t>(K - 1))) %
            static_cast<std::uint64_t>(K));
        Obj* theirs = managed::ref_array::get(
            board, peer * S + static_cast<std::size_t>(rng.below(S)));
        Obj* ours = managed::ref_array::get(
            board, part0 + static_cast<std::size_t>(rng.below(S)));
        if (theirs != nullptr && !stamp_ok(theirs)) {
          payload_errors.fetch_add(1, std::memory_order_relaxed);
        }
        // Mostly link, sometimes unlink.
        m.set_ref(ours, 0, rng.below(8) == 0 ? nullptr : theirs);
      }

      // 4. Garbage churn: eden overflow plus TLAB-bypassing large objects,
      //    with a periodic humongous/large-direct allocation.
      for (int j = 0; j < cfg.churn_per_round; ++j) {
        std::size_t payload = kNodePayload + rng.below(12);
        if (cfg.large_every > 0 && j % cfg.large_every == cfg.large_every - 1)
          payload = 600;  // > tlab_bytes/4 at the default 16 KiB TLAB
        Local junk(m, make_node(r, 0x200000u + static_cast<std::uint64_t>(j),
                                payload));
        if (!stamp_ok(junk.get()))
          payload_errors.fetch_add(1, std::memory_order_relaxed);
      }
      if (cfg.huge_payload_words > 0 && r % 2 == t % 2) {
        Local huge(m, m.alloc(0, cfg.huge_payload_words));
        huge->set_field(0, stamp_of(cfg.seed, t, r, 0x300000u));
        ++allocated;
      }
      m.poll();

      // 5. Rendezvous; thread 0 forces a collection and verifies the whole
      //    heap at that safepoint while the rest wait blocked.
      blocked_wait(m, barrier, sense);
      if (t == 0) {
        const bool full =
            cfg.full_every > 0 && (r + 1) % cfg.full_every == 0;
        vm.collect(&m, full, GcCause::kSystemGc);
        if (full) {
          ++full_forced;
        } else {
          ++young_forced;
        }
        const VerifyReport rep = verify_heap_at_safepoint(m, cfg.verify);
        ++verifier_runs;
        res.cells_walked += rep.cells_walked;
        res.old_young_refs += rep.old_young_refs;
        res.cross_region_refs += rep.cross_region_refs;
        res.free_chunks += rep.free_chunks;
        for (const std::string& p : rep.problems)
          res.problems.push_back("round " + std::to_string(r) + ": " + p);
      }
      blocked_wait(m, barrier, sense);
    }

    // Fingerprint the surviving private graph: retained ladder plus this
    // thread's own partition, both written exclusively by this thread, so
    // the fold is independent of cross-thread scheduling.
    std::uint64_t fp = 0x9e3779b97f4a7c15ULL ^ static_cast<std::uint64_t>(t);
    auto fold = [&fp](const Obj* node) {
      std::uint64_t s = fp ^ node->field(0);
      fp = splitmix64(s);
    };
    for (int j = 0; j < cfg.retained_per_thread; ++j)
      fold(managed::ref_array::get(retained.get(), static_cast<std::size_t>(j)));
    for (std::size_t j = 0; j < S; ++j)
      fold(managed::ref_array::get(vm.global_root(board_root), part0 + j));
    outcomes[static_cast<std::size_t>(t)] = {fp, allocated};
  });

  res.young_gcs_forced = young_forced;
  res.full_gcs_forced = full_forced;
  res.verifier_runs = verifier_runs;
  res.payload_errors = payload_errors.load(std::memory_order_relaxed);
  std::uint64_t fp = cfg.seed;
  for (const ThreadOutcome& o : outcomes) {
    res.objects_allocated += o.allocated;
    std::uint64_t s = fp ^ o.fingerprint;
    fp = splitmix64(s);
  }
  res.fingerprint = fp;
  return res;
}

}  // namespace mgc::stress
