// Promotion/GC-local allocation buffer: a per-worker bump region carved out
// of a shared destination space so parallel copying rarely touches the
// shared allocation pointer.
//
// In `parsable` mode (used for the CMS free-list old generation, which
// concurrent card scanners walk while promotion is happening) the PLAB
// maintains the invariant that its unused tail is always covered by a
// filler cell *before* carved memory is handed out: a walker either sees
// the pre-carve cell layout or the post-carve one, never torn bytes.
#pragma once

#include <cstddef>

#include "heap/block_offset_table.h"
#include "heap/object.h"
#include "heap/poison.h"

namespace mgc {

class Plab {
 public:
  explicit Plab(std::size_t plab_bytes, BlockOffsetTable* bot = nullptr,
                bool parsable = false)
      : plab_bytes_(plab_bytes), bot_(bot), parsable_(parsable) {}

  std::size_t plab_bytes() const { return plab_bytes_; }

  char* alloc(std::size_t bytes) {
    if (static_cast<std::size_t>(end_ - top_) < bytes) return nullptr;
    char* p = top_;
    top_ += bytes;
    if (parsable_ && top_ < end_) {
      // Re-cover the tail before the caller writes the object header: the
      // tail only becomes reachable to walkers once the caller's header
      // (written with release ordering) shrinks the current cell.
      Obj::init_filler(top_, static_cast<std::size_t>(end_ - top_) / kWordSize);
      if (bot_ != nullptr) bot_->record_block(top_, end_);
    }
    return p;
  }

  // Allocate from the PLAB, refilling from `refill` (any callable
  // `char*(std::size_t)`; a template so the per-object evacuation path
  // never materializes a std::function) on demand. Objects larger than
  // half a PLAB bypass it. Returns nullptr when the underlying space is
  // exhausted.
  template <typename RefillFn>
  char* alloc_refill(std::size_t bytes, RefillFn&& refill) {
    if (char* p = alloc(bytes)) return p;
    if (bytes > plab_bytes_ / 2) return refill(bytes);
    char* fresh = refill(plab_bytes_);
    if (fresh == nullptr) {
      // The space may still fit this object even if a whole PLAB does not.
      return refill(bytes);
    }
    retire();
    top_ = fresh;
    end_ = fresh + plab_bytes_;
    if (parsable_) {
      // The free-list allocator installed a provisional cell covering the
      // whole PLAB; keep it that way until the first carve.
    }
    return alloc(bytes);
  }

  // Plugs the unused tail with a filler cell so the space stays parsable.
  // The filler's payload is dead memory: zap it (the header must stay
  // readable for space walks).
  void retire() {
    if (top_ != nullptr && top_ < end_) {
      const auto words = static_cast<std::size_t>(end_ - top_) / kWordSize;
      Obj::init_filler(top_, words);
      if (bot_ != nullptr) bot_->record_block(top_, end_);
      poison::zap_and_poison(
          top_ + sizeof(ObjHeader),
          static_cast<std::size_t>(end_ - top_) - sizeof(ObjHeader),
          poison::kLabTailZap);
    }
    top_ = end_ = nullptr;
  }

 private:
  std::size_t plab_bytes_;
  BlockOffsetTable* bot_;
  bool parsable_;
  char* top_ = nullptr;
  char* end_ = nullptr;
};

}  // namespace mgc
