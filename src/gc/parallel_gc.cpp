#include "gc/parallel_gc.h"

namespace mgc {}
