// Shared machinery for parallel collection phases: per-worker work-stealing
// deques with a global in-flight counter for termination, and a chunked
// claim counter for statically partitioned work (root chunks, card chunks).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/check.h"
#include "support/spinlock.h"
#include "support/ws_deque.h"

namespace mgc {

// A pool of work-stealing deques with exact termination: `pending` counts
// tasks that have been pushed but whose processing has not finished, so a
// worker observing pending == 0 knows the phase is globally complete.
template <typename T>
class WorkSet {
 public:
  explicit WorkSet(int workers) : pending_(0) {
    MGC_CHECK(workers >= 1);
    deques_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
      deques_.push_back(std::make_unique<WsDeque<T>>());
  }

  int workers() const { return static_cast<int>(deques_.size()); }

  void push(int worker, T item) {
    pending_.fetch_add(1, std::memory_order_acq_rel);
    deques_[static_cast<std::size_t>(worker)]->push(item);
  }

  // Runs the drain loop for `worker`: pops local work, steals when empty,
  // spins until the phase is globally done. `process` may push new items.
  template <typename ProcessFn>
  void drain(int worker, ProcessFn&& process) {
    auto& own = *deques_[static_cast<std::size_t>(worker)];
    Backoff backoff;
    while (pending_.load(std::memory_order_acquire) > 0) {
      if (auto item = own.pop()) {
        process(*item);
        pending_.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      bool stole = false;
      for (std::size_t i = 1; i < deques_.size(); ++i) {
        const std::size_t victim =
            (static_cast<std::size_t>(worker) + i) % deques_.size();
        if (auto item = deques_[victim]->steal()) {
          process(*item);
          pending_.fetch_sub(1, std::memory_order_acq_rel);
          stole = true;
          break;
        }
      }
      if (!stole) backoff.pause();
    }
  }

 private:
  std::atomic<std::int64_t> pending_;
  std::vector<std::unique_ptr<WsDeque<T>>> deques_;
};

// Relaxed running maximum, for per-worker phase timings folded into a
// shared slot at phase end: the pause's critical path for a phase is the
// slowest worker, and relaxed ordering suffices because the pool's
// run()/join already orders the readers after the writers.
inline void fold_max(std::atomic<std::int64_t>& slot, std::int64_t value) {
  std::int64_t cur = slot.load(std::memory_order_relaxed);
  while (value > cur &&
         !slot.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

// Atomic chunk claimer over a fixed-size item list.
class ChunkClaimer {
 public:
  ChunkClaimer(std::size_t total, std::size_t chunk_size)
      : total_(total), chunk_(chunk_size == 0 ? 1 : chunk_size) {}

  // Claims [begin, end); returns false when exhausted.
  bool claim(std::size_t* begin, std::size_t* end) {
    const std::size_t b = next_.fetch_add(chunk_, std::memory_order_acq_rel);
    if (b >= total_) return false;
    *begin = b;
    *end = std::min(b + chunk_, total_);
    return true;
  }

 private:
  const std::size_t total_;
  const std::size_t chunk_;
  std::atomic<std::size_t> next_{0};
};

}  // namespace mgc
