// ParallelOldGC: the paper's baseline (OpenJDK8 default). Parallel copying
// young collection and parallel compacting old collection — the mark and
// reference-update passes of the full compaction run on the GC worker pool.
#pragma once

#include "gc/classic_collector.h"
#include "runtime/vm_config.h"

namespace mgc {

class ParallelOldGc final : public ClassicCollector {
 public:
  ParallelOldGc(Vm& vm, const VmConfig& cfg)
      : ClassicCollector(vm, cfg, /*free_list_old=*/false,
                         /*young_workers=*/cfg.effective_gc_threads(),
                         /*full_workers=*/cfg.effective_gc_threads()) {}
  GcKind kind() const override { return GcKind::kParallelOld; }
};

}  // namespace mgc
