#include "gc/cms_gc.h"

#include <algorithm>

#include "runtime/vm.h"
#include "support/fault.h"

namespace mgc {
namespace {
constexpr std::size_t kMarkBatch = 128;
constexpr std::size_t kSweepBatch = 256;
}  // namespace

CmsGc::CmsGc(Vm& vm, const VmConfig& cfg)
    : ClassicCollector(vm, cfg, /*free_list_old=*/true,
                       /*young_workers=*/cfg.effective_gc_threads(),
                       /*full_workers=*/1) {
  mod_union_.initialize(heap_.cards().num_cards());
}

CmsGc::~CmsGc() {
  // stop_background() must already have run (Vm's destructor order).
  MGC_CHECK(!bg_.joinable());
}

void CmsGc::start_background() {
  bg_ = std::thread([this] { bg_main(); });
}

void CmsGc::stop_background() {
  {
    MutexLock g(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (bg_.joinable()) bg_.join();
}

void CmsGc::maybe_start_concurrent() {
  if (cycle_active_.load(std::memory_order_acquire)) return;
  if (heap_.cms_old().occupancy() < cfg_.cms_trigger_occupancy) return;
  {
    MutexLock g(bg_mu_);
    cycle_requested_ = true;
  }
  bg_cv_.notify_all();
}

void CmsGc::fill_scavenge_hooks(ScavengeConfig& sc) {
  if (cycle_active_.load(std::memory_order_acquire)) {
    sc.mod_union = &mod_union_;
    sc.allocate_black = true;
    sc.promoted_list = &promoted_;
  }
}

void CmsGc::before_full_compact() {
  // Inside a pause: abort any concurrent cycle; the compaction rebuilds the
  // free-list space and drops all cycle state.
  if (!cycle_active_.load(std::memory_order_relaxed)) return;
  abort_cycle_.store(true, std::memory_order_release);
  if (heap_.cms_old().sweep_in_progress()) heap_.cms_old().abort_sweep();
  heap_.cms_old().set_allocate_black(false);
  cycle_active_.store(false, std::memory_order_release);
}

GcCause CmsGc::escalate_cause(GcCause cause) {
  if (cause == GcCause::kPromotionFailure &&
      cycle_active_.load(std::memory_order_acquire)) {
    cm_failures_.fetch_add(1, std::memory_order_acq_rel);
    return GcCause::kConcurrentModeFailure;
  }
  return cause;
}

void CmsGc::mark_old_target(Obj* t) {
  if (t != nullptr && heap_.in_old(t) && heap_.cms_bits().try_mark(t)) {
    mark_stack_.push_back(t);
  }
}

void CmsGc::scan_cell_refs(Obj* cell) {
  const std::size_t n = cell->num_refs();
  for (std::size_t i = 0; i < n; ++i) {
    mark_old_target(cell->refs()[i].load(std::memory_order_acquire));
  }
}

void CmsGc::scan_young_cells() {
  auto scan_space = [&](ContiguousSpace& s) {
    s.walk([&](Obj* cell) {
      if (!cell->is_free_chunk()) scan_cell_refs(cell);
    });
  };
  scan_space(heap_.eden());
  scan_space(heap_.from_space());
  scan_space(heap_.to_space());
}

PauseOutcome CmsGc::do_initial_mark() {
  vm_.retire_all_tlabs();
  heap_.cms_bits().clear_all();
  mod_union_.clear();
  promoted_.clear();
  mark_stack_.clear();
  abort_cycle_.store(false, std::memory_order_release);
  heap_.cms_old().set_allocate_black(true);
  cycle_active_.store(true, std::memory_order_release);

  vm_.for_each_root_slot([&](Obj** slot) { mark_old_target(*slot); });
  scan_young_cells();

  PauseOutcome out;
  out.kind = PauseKind::kInitialMark;
  out.cause = GcCause::kOccupancyTrigger;
  return out;
}

void CmsGc::drain_mark_stack() {
  while (!mark_stack_.empty()) {
    Obj* o = mark_stack_.back();
    mark_stack_.pop_back();
    scan_cell_refs(o);
  }
}


void CmsGc::scan_card_for_marks(std::size_t card_idx) {
  CardTable& cards = heap_.cards();
  char* const card_base = cards.card_base(card_idx);
  char* const card_end = cards.card_end(card_idx);
  Obj* cell = heap_.old_bot().cell_covering(card_base);
  while (cell->start() < card_end && cell->start() < heap_.old_end()) {
    if (!cell->is_free_chunk() && cell->num_refs() > 0) {
      char* const slots_begin = cell->start() + sizeof(ObjHeader);
      std::size_t i0 = 0;
      if (card_base > slots_begin) {
        i0 = static_cast<std::size_t>(card_base - slots_begin + kWordSize - 1) /
             kWordSize;
      }
      const std::size_t nrefs = cell->num_refs();
      for (std::size_t i = i0; i < nrefs; ++i) {
        char* const slot_addr = slots_begin + i * sizeof(RefSlot);
        if (slot_addr >= card_end) break;
        mark_old_target(cell->refs()[i].load(std::memory_order_acquire));
      }
    }
    cell = cell->next_in_space();
  }
}

bool CmsGc::concurrent_preclean() {
  // Word-wise sweep in blocks: the card table's visitor skips fully-clean
  // words with one 64-bit load, so mostly-clean old generations cost a
  // memory-bandwidth scan instead of one atomic byte load per card. Between
  // blocks we poll the safepoint and check for cycle aborts.
  constexpr std::size_t kBlockCards = 512;
  CardTable& cards = heap_.cards();
  const std::size_t first = cards.index_of(heap_.old_base());
  const std::size_t last = cards.index_of(heap_.old_end() - 1) + 1;
  for (std::size_t blk = first; blk < last; blk += kBlockCards) {
    vm_.safepoints().poll();
    maybe_inject_concurrent_failure();
    if (abort_cycle_.load(std::memory_order_acquire)) return false;
    const std::size_t blk_end = std::min(last, blk + kBlockCards);
    cards.visit_dirty(blk, blk_end, [&](std::size_t idx) {
      // visit_dirty also reports precleaned cards; only dirty ones can
      // win the preclean transition.
      if (cards.is_dirty(idx) && cards.try_preclean(idx)) {
        scan_card_for_marks(idx);
      }
    });
    // Keep the stack shallow while precleaning.
    for (std::size_t i = 0; i < 64 && !mark_stack_.empty(); ++i) {
      Obj* o = mark_stack_.back();
      mark_stack_.pop_back();
      scan_cell_refs(o);
    }
  }
  return true;
}

PauseOutcome CmsGc::do_remark() {
  if (abort_cycle_.load(std::memory_order_acquire)) {
    // A concurrent mode failure compacted the old generation between the
    // remark request and this pause: the mark stack and promoted list hold
    // pre-compaction addresses. Drop them; run_cycle bails right after.
    mark_stack_.clear();
    promoted_.clear();
    PauseOutcome out;
    out.skipped = true;
    return out;
  }
  vm_.retire_all_tlabs();
  // 1. Roots and the whole young generation again.
  vm_.for_each_root_slot([&](Obj** slot) { mark_old_target(*slot); });
  scan_young_cells();
  // 2. Objects promoted into the old generation during the cycle: they may
  //    hold the only reference to an unmarked old object.
  for (Obj* p : promoted_) scan_cell_refs(p);
  promoted_.clear();
  // 3. Cards dirtied by mutator stores during concurrent marking
  //    (incremental-update barrier), plus cards a young collection cleaned
  //    meanwhile (mod-union). Cards stay dirty for the generational
  //    barrier's purposes; remark only reads them.
  CardTable& cards = heap_.cards();
  const std::size_t first = cards.index_of(heap_.old_base());
  const std::size_t last = cards.index_of(heap_.old_end() - 1) + 1;
  // Precleaned cards were already scanned concurrently; only cards the
  // mutator re-dirtied since (or that a young GC folded into the mod-union
  // table) need a stop-the-world rescan. Both sweeps are word-wise; a card
  // present in both sets is scanned twice, which is harmless (marking is
  // idempotent) and rarer than the branch it would take to dedup.
  cards.visit_dirty(first, last, [&](std::size_t idx) {
    if (cards.is_dirty(idx)) scan_card_for_marks(idx);
  });
  mod_union_.for_each_set([&](std::size_t idx) {
    if (idx >= first && idx < last && !cards.is_dirty(idx)) {
      scan_card_for_marks(idx);
    }
  });
  mod_union_.clear();
  // 4. Complete the closure.
  drain_mark_stack();

  PauseOutcome out;
  out.kind = PauseKind::kRemark;
  out.cause = GcCause::kOccupancyTrigger;
  return out;
}

bool CmsGc::maybe_inject_concurrent_failure() {
  if (!fault::should_fire(fault::Site::kCmsConcurrentFail)) return false;
  vm_.run_vm_op(GcCause::kConcurrentModeFailure, /*caller_is_registered=*/true,
                [this]() -> PauseOutcome {
                  // The cycle may have been aborted by a real concurrent
                  // mode failure between the fire and this pause.
                  if (!cycle_active_.load(std::memory_order_relaxed)) {
                    PauseOutcome out;
                    out.skipped = true;
                    return out;
                  }
                  cm_failures_.fetch_add(1, std::memory_order_acq_rel);
                  // run_full -> before_full_compact aborts this cycle, so
                  // the concurrent caller bails at its next aborted() check.
                  PauseOutcome out = run_full(GcCause::kConcurrentModeFailure);
                  out.failures.concurrent_mode_failures = 1;
                  return out;
                });
  return true;
}

void CmsGc::bg_main() {
  SafepointCoordinator& sp = vm_.safepoints();
  sp.register_thread();
  while (true) {
    {
      SafepointCoordinator::BlockedScope blocked(sp);
      MutexLock l(bg_mu_);
      bg_cv_.wait(l, [&]() MGC_REQUIRES(bg_mu_) { return bg_stop_ || cycle_requested_; });
      if (bg_stop_) break;
      cycle_requested_ = false;
    }
    GcCostCounters::CycleScope cost(vm_.cost_counters());
    run_cycle();
  }
  sp.unregister_thread();
}

void CmsGc::run_cycle() {
  auto aborted = [&] {
    return abort_cycle_.load(std::memory_order_acquire) ||
           [&] {
             MutexLock g(bg_mu_);
             return bg_stop_;
           }();
  };

  // Initial mark pause.
  vm_.run_vm_op(GcCause::kOccupancyTrigger, /*caller_is_registered=*/true,
                [this] { return do_initial_mark(); });

  // Concurrent mark: trace the old generation while mutators run.
  while (true) {
    vm_.safepoints().poll();
    maybe_inject_concurrent_failure();
    if (aborted()) {
      mark_stack_.clear();
      return;
    }
    if (mark_stack_.empty()) break;
    for (std::size_t i = 0; i < kMarkBatch && !mark_stack_.empty(); ++i) {
      Obj* o = mark_stack_.back();
      mark_stack_.pop_back();
      scan_cell_refs(o);
    }
  }

  // Concurrent precleaning (two passes: the second catches most of the
  // cards dirtied during the first).
  for (int pass = 0; pass < 2; ++pass) {
    if (!concurrent_preclean()) {
      mark_stack_.clear();
      return;
    }
  }

  // Remark pause.
  vm_.run_vm_op(GcCause::kOccupancyTrigger, /*caller_is_registered=*/true,
                [this] { return do_remark(); });
  if (aborted()) {
    mark_stack_.clear();
    return;
  }

  // Concurrent sweep.
  heap_.cms_old().begin_sweep();
  while (true) {
    vm_.safepoints().poll();
    maybe_inject_concurrent_failure();
    if (aborted()) {
      if (heap_.cms_old().sweep_in_progress()) heap_.cms_old().abort_sweep();
      return;
    }
    std::size_t reclaimed = 0;
    if (!heap_.cms_old().sweep_step(kSweepBatch, &reclaimed)) {
      heap_.cms_old().end_sweep();
      break;
    }
  }

  heap_.cms_old().set_allocate_black(false);
  cycle_active_.store(false, std::memory_order_release);
  cycles_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace mgc
