// The generational copying young collector ("scavenger") shared by all
// classic collectors: Serial runs it with one worker; ParNew, Parallel,
// ParallelOld and CMS run it on the GC worker pool.
//
// Roots are the mutator shadow stacks, the global roots, and the old
// generation's dirty cards (old->young references). Live young objects are
// copied to the to-space survivor or promoted to the old generation (by
// age, or on survivor overflow). On promotion failure objects self-forward
// in place and the caller must immediately run a full collection in the
// same pause (HotSpot semantics).
//
// The pause has no serial prefix: workers claim root-slot chunks across
// the (pre-existing) shadow-stack vectors and fixed-size card *strips*
// over the old generation directly — dirty cards are discovered by the
// workers themselves with the card table's word-wise sweep, never
// collected into an intermediate vector on the VM thread. Each phase's
// critical path (max across workers) is reported in ScavengeResult.
#pragma once

#include <cstddef>
#include <vector>

#include "gc/classic_heap.h"
#include "runtime/gc_log.h"
#include "support/gc_worker_pool.h"

namespace mgc {

class Vm;

struct ScavengeConfig {
  Vm* vm = nullptr;
  ClassicHeap* heap = nullptr;
  GcWorkerPool* pool = nullptr;  // nullptr => serial
  int workers = 1;
  int tenuring_threshold = 6;
  std::size_t plab_bytes = 8 * 1024;
  // CMS: record cleaned cards in the mod-union table while a concurrent
  // cycle is active, mark promoted objects live ("allocate black"), and
  // remember them so the remark pause can scan their fields (objects
  // promoted mid-cycle may hold the only reference to an unmarked old
  // object; HotSpot keeps the same "promotion info" list).
  ModUnionTable* mod_union = nullptr;
  bool allocate_black = false;
  std::vector<Obj*>* promoted_list = nullptr;  // appended inside the pause
};

struct ScavengeResult {
  bool promotion_failed = false;
  std::size_t survivor_bytes = 0;
  std::size_t promoted_bytes = 0;
  std::size_t dirty_cards_scanned = 0;
  // Critical-path phase timings (max across workers); see GcPhaseBreakdown.
  GcPhaseBreakdown phases;
};

ScavengeResult scavenge(const ScavengeConfig& cfg);

}  // namespace mgc
