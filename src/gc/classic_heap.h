// The classic generational heap layout shared by Serial, ParNew, Parallel,
// ParallelOld and CMS:
//
//   [ eden | survivor0 | survivor1 | old generation ............ ]
//
// The old generation is a bump-compacted ContiguousSpace for the four
// compacting collectors, or a FreeListSpace for CMS. A card table covers
// the whole reservation; a block-offset table covers the old generation.
#pragma once

#include <memory>

#include "heap/arena.h"
#include "heap/block_offset_table.h"
#include "heap/card_table.h"
#include "heap/contiguous_space.h"
#include "heap/free_list_space.h"
#include "heap/mark_bitmap.h"
#include "runtime/vm_config.h"

namespace mgc {

class ClassicHeap {
 public:
  ClassicHeap(const VmConfig& cfg, bool free_list_old);

  bool free_list_old() const { return free_list_old_; }

  ContiguousSpace& eden() { return eden_; }
  const ContiguousSpace& eden() const { return eden_; }
  ContiguousSpace& from_space() { return survivors_[from_idx_]; }
  const ContiguousSpace& from_space() const { return survivors_[from_idx_]; }
  ContiguousSpace& to_space() { return survivors_[1 - from_idx_]; }
  const ContiguousSpace& to_space() const { return survivors_[1 - from_idx_]; }
  void swap_survivors() { from_idx_ = 1 - from_idx_; }

  ContiguousSpace& old_space() { return old_; }
  FreeListSpace& cms_old() { return cms_old_; }
  MarkBitmap& cms_bits() { return cms_bits_; }

  CardTable& cards() { return cards_; }
  BlockOffsetTable& old_bot() { return old_bot_; }

  char* heap_base() const { return arena_.base(); }
  char* heap_end() const { return arena_.end(); }
  char* young_base() const { return young_base_; }
  char* young_end() const { return young_end_; }
  char* old_base() const { return old_base_; }
  char* old_end() const { return old_end_; }
  // Farthest the old generation can ever grow (committed end + reserve).
  // The write barrier uses this, not old_end(), so cached per-mutator
  // barrier descriptors stay correct across expansion.
  char* old_limit() const { return arena_.end(); }

  bool in_young(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= young_base_ && c < young_end_;
  }
  bool in_old(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= old_base_ && c < old_end_;
  }
  bool contains(const void* p) const { return arena_.contains(p); }

  // Thread-safe old-generation allocation (promotion / large objects).
  // Records the block in the offset table. Returns nullptr when full.
  char* old_alloc(std::size_t bytes);

  std::size_t old_used() const;
  std::size_t old_capacity() const;
  std::size_t old_free() const;
  std::size_t young_used() const;
  std::size_t young_capacity() const;

  // Uncommitted reservation still available for expansion.
  std::size_t old_reserve_available() const {
    return static_cast<std::size_t>(arena_.end() - old_end_);
  }
  // Grows the old generation by up to `bytes` (clamped to the remaining
  // reserve). Pause-time only: in_old()/old_end() readers must not race.
  // Returns the number of bytes actually committed.
  std::size_t expand_old(std::size_t bytes);

  // Walks every old-generation cell in address order (pause-time only).
  void walk_old(const std::function<void(Obj*)>& fn) const;

 private:
  bool free_list_old_;
  Arena arena_;
  ContiguousSpace eden_;
  ContiguousSpace survivors_[2];
  int from_idx_ = 0;
  ContiguousSpace old_;
  FreeListSpace cms_old_;
  MarkBitmap cms_bits_;
  CardTable cards_;
  BlockOffsetTable old_bot_;
  char* young_base_ = nullptr;
  char* young_end_ = nullptr;
  char* old_base_ = nullptr;
  char* old_end_ = nullptr;
};

}  // namespace mgc
