// ParNewGC: parallel copying young collection (the same young collector CMS
// uses), single-threaded mark-sweep-compact old collection.
#pragma once

#include "gc/classic_collector.h"
#include "runtime/vm_config.h"

namespace mgc {

class ParNewGc final : public ClassicCollector {
 public:
  ParNewGc(Vm& vm, const VmConfig& cfg)
      : ClassicCollector(vm, cfg, /*free_list_old=*/false,
                         /*young_workers=*/cfg.effective_gc_threads(),
                         /*full_workers=*/1) {}
  GcKind kind() const override { return GcKind::kParNew; }
};

}  // namespace mgc
