#include "gc/g1_gc.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "gc/marking.h"
#include "gc/parallel_work.h"
#include "gc/plab.h"
#include "heap/poison.h"
#include "runtime/vm.h"
#include "support/fault.h"

namespace mgc {
namespace {
constexpr std::size_t kMarkBatch = 128;
}

G1Gc::G1Gc(Vm& vm, const VmConfig& cfg)
    : vm_(vm), cfg_(cfg), arena_(cfg.heap_bytes) {
  rm_.initialize(arena_.base(), arena_.size(), cfg.g1_region_bytes);
  cards_.initialize(arena_.base(), arena_.size());
  bot_.initialize(arena_.base(), arena_.size());
  bits_.initialize(arena_.base(), arena_.size());
  region_shift_ = static_cast<unsigned>(std::countr_zero(cfg.g1_region_bytes));
  max_young_regions_ = std::max<std::size_t>(2, cfg.young_bytes / cfg.g1_region_bytes);
}

G1Gc::~G1Gc() { MGC_CHECK(!bg_.joinable()); }

BarrierDescriptor G1Gc::barrier_descriptor() {
  BarrierDescriptor bd;
  bd.kind = BarrierDescriptor::Kind::kG1;
  bd.heap_base = rm_.heap_base();
  bd.heap_end = rm_.heap_end();
  bd.region_shift = region_shift_;
  bd.satb_active = &satb_active_;
  return bd;
}

// --- allocation ---------------------------------------------------------------

std::size_t G1Gc::eden_quota() const {
  const std::size_t survivors = survivor_regions_.size();
  return max_young_regions_ > survivors + 1 ? max_young_regions_ - survivors
                                            : 1;
}

char* G1Gc::young_alloc_locked(std::size_t bytes) {
  // Evacuation reserve (HotSpot's G1ReservePercent, default 10%): keep a
  // slice of free regions for copy destinations so a young pause does not
  // immediately fail evacuation under high occupancy.
  const std::size_t reserve = std::max<std::size_t>(2, rm_.num_regions() / 10);
  while (true) {
    if (mutator_region_ != nullptr) {
      if (char* p = mutator_region_->par_alloc(bytes)) return p;
    }
    if (eden_regions_.size() >= eden_quota()) return nullptr;
    if (!eden_regions_.empty() && rm_.free_region_count() <= reserve)
      return nullptr;
    Region* r = rm_.allocate_region(RegionType::kEden);
    if (r == nullptr) return nullptr;
    eden_regions_.push_back(r);
    mutator_region_ = r;
  }
}

char* G1Gc::alloc_tlab(std::size_t bytes) {
  SpinLockGuard g(alloc_lock_);
  return young_alloc_locked(bytes);
}

Obj* G1Gc::alloc_direct(std::size_t size_words, std::uint16_t num_refs) {
  const std::size_t bytes = words_to_bytes(size_words);
  if (bytes > rm_.region_bytes() / 2) {
    // Humongous: contiguous whole regions, never moved by evacuation.
    const std::size_t nregions =
        (bytes + rm_.region_bytes() - 1) / rm_.region_bytes();
    SpinLockGuard g(alloc_lock_);
    Region* head = rm_.allocate_humongous(nregions);
    if (head == nullptr) return nullptr;
    char* const start = head->base;
    char* const data_end = start + bytes;
    for (std::size_t i = 0; i < nregions; ++i) {
      Region& r = rm_.region_at(head->index + i);
      r.set_top(std::min(r.end, data_end));
      r.set_tams(r.base);
    }
    Obj* o = Obj::init(start, size_words, num_refs);
    o->set_flag(objflag::kHumongous);
    bot_.record_block(start, data_end);
    return o;
  }
  SpinLockGuard g(alloc_lock_);
  char* p = young_alloc_locked(bytes);
  if (p == nullptr) return nullptr;
  return Obj::init(p, size_words, num_refs);
}

// --- barriers -------------------------------------------------------------------

void G1Gc::rset_record(void* slot_addr, Obj* value) {
  Region* hr = rm_.region_of(slot_addr);
  // Young regions are always collected in full, so only old/humongous
  // holders need remembered-set entries.
  if (!hr->is_old_or_humongous()) return;
  Region* vr = rm_.region_of(value);
  if (vr == hr) return;
  vr->rset.add_card(static_cast<std::uint32_t>(cards_.index_of(slot_addr)));
}

void G1Gc::satb_record(Mutator& /*m*/, Obj* old_value) {
  if (!satb_active_.load(std::memory_order_acquire)) return;
  Region* r = rm_.region_of(old_value);
  if (!r->is_old_or_humongous()) return;
  if (old_value->start() >= r->tams()) return;  // implicitly live
  if (bits_.is_marked(old_value)) return;
  SpinLockGuard g(satb_lock_);
  satb_buffer_.push_back(old_value);
}

// --- evacuation -----------------------------------------------------------------

namespace {

// Shared destination allocator handing whole regions to worker PLABs.
struct DestAlloc {
  SpinLock lock;
  RegionManager* rm = nullptr;
  RegionType type = RegionType::kSurvivor;
  Region* cur = nullptr;
  std::vector<Region*> taken;

  char* alloc(std::size_t bytes) {
    SpinLockGuard g(lock);
    while (true) {
      if (cur != nullptr) {
        if (char* p = cur->par_alloc(bytes)) return p;
      }
      Region* r = rm->allocate_region(type);
      if (r == nullptr) return nullptr;
      taken.push_back(r);
      cur = r;
    }
  }
};

struct EvacWorker {
  EvacWorker(std::size_t plab_bytes, BlockOffsetTable* bot)
      : surv_plab(plab_bytes), old_plab(plab_bytes, bot) {}
  Plab surv_plab;
  Plab old_plab;
  std::size_t copied = 0;
};

}  // namespace

struct G1EvacShared {
  G1Gc& g1;
  WorkSet<Obj*> work;
  std::vector<Obj**> root_slots;
  std::vector<std::uint32_t> rset_cards;
  DestAlloc surv_alloc;
  DestAlloc old_alloc;
  std::atomic<std::size_t> copied_bytes{0};
  std::atomic<bool> any_failure{false};
  int tenuring;

  G1EvacShared(G1Gc& g, int workers) : g1(g), work(workers) {
    surv_alloc.rm = &g.rm_;
    surv_alloc.type = RegionType::kSurvivor;
    old_alloc.rm = &g.rm_;
    old_alloc.type = RegionType::kOld;
    tenuring = g.cfg_.tenuring_threshold;
  }

  Obj* copy(EvacWorker& wk, int w, Obj* o) {
    Region* oreg = g1.rm_.region_of(o);
    if (!oreg->in_cset.load(std::memory_order_relaxed)) return o;
    if (Obj* f = o->forwardee()) return f;

    const std::size_t bytes = o->size_bytes();
    const std::uint8_t age = o->age();
    char* dest = nullptr;
    bool to_old = false;
    // kG1EvacFail forces this object down the to-space-exhausted path
    // without consuming any destination region.
    const bool forced_fail = fault::should_fire(fault::Site::kG1EvacFail);
    if (!forced_fail && age < tenuring) {
      dest = fault::should_fire(fault::Site::kPlabRefill)
                 ? nullptr
                 : wk.surv_plab.alloc_refill(bytes, [&](std::size_t b) {
                     return surv_alloc.alloc(b);
                   });
    }
    if (!forced_fail && dest == nullptr) {
      dest = fault::should_fire(fault::Site::kOldAlloc)
                 ? nullptr
                 : wk.old_plab.alloc_refill(bytes, [&](std::size_t b) {
                     return old_alloc.alloc(b);
                   });
      to_old = dest != nullptr;
    }
    if (dest == nullptr) {
      // Evacuation failure: keep in place (self-forward); the region is
      // retained and retyped old after the pause.
      Obj* winner = o->forward_atomic(o);
      if (winner == o) {
        oreg->evac_failed.store(true, std::memory_order_release);
        any_failure.store(true, std::memory_order_release);
        work.push(w, o);
      }
      return winner;
    }

    // Same copy protocol as the scavenger: body first, num_refs last.
    auto* d = reinterpret_cast<Obj*>(dest);
    std::memcpy(dest + sizeof(ObjHeader), o->start() + sizeof(ObjHeader),
                bytes - sizeof(ObjHeader));
    d->set_size_words_atomic(static_cast<std::uint32_t>(bytes / kWordSize));
    d->header().age = static_cast<std::uint8_t>(age >= 15 ? 15 : age + 1);
    d->header().forward.store(nullptr, std::memory_order_relaxed);
    d->header().flags.store(0, std::memory_order_release);
    d->set_num_refs_atomic(o->num_refs());

    Obj* winner = o->forward_atomic(d);
    if (winner != d) {
      d->set_num_refs_atomic(0);
      d->header().flags.store(objflag::kDeadCopy, std::memory_order_release);
      return winner;
    }
    if (to_old) g1.bot_.record_block(d->start(), d->end());
    wk.copied += bytes;
    work.push(w, d);
    return d;
  }

  void process_slot(EvacWorker& wk, int w, Region* holder_region,
                    RefSlot& slot) {
    Obj* t = slot.load(std::memory_order_relaxed);
    if (t == nullptr) return;
    Region* tr = g1.rm_.region_of(t);
    if (tr->in_cset.load(std::memory_order_relaxed)) {
      t = copy(wk, w, t);
      slot.store(t, std::memory_order_relaxed);
      tr = g1.rm_.region_of(t);
    }
    // Remembered-set maintenance: old/humongous holders record their card
    // in the target's region (incl. old->young for the next young pause).
    if (holder_region->is_old_or_humongous() && tr != holder_region) {
      tr->rset.add_card(
          static_cast<std::uint32_t>(g1.cards_.index_of(&slot)));
    }
  }

  void scan_object(EvacWorker& wk, int w, Obj* x) {
    Region* xr = g1.rm_.region_of(x);
    const std::size_t n = x->num_refs();
    for (std::size_t i = 0; i < n; ++i) process_slot(wk, w, xr, x->refs()[i]);
  }

  void process_rset_card(EvacWorker& wk, int w, std::size_t card_idx) {
    char* const cb = g1.cards_.card_base(card_idx);
    char* const ce = g1.cards_.card_end(card_idx);
    Region* src = g1.rm_.region_of(cb);
    if (!src->is_old_or_humongous()) return;     // stale entry: region recycled
    if (src->in_cset.load(std::memory_order_relaxed)) return;  // found by tracing
    if (cb >= src->top()) return;
    Obj* cell = g1.bot_.cell_covering(cb);
    while (cell->start() < ce) {
      Region* cr = g1.rm_.region_of(cell);
      if (cell->start() >= cr->top()) break;
      if (cell->num_refs() > 0) {
        char* const slots_begin = cell->start() + sizeof(ObjHeader);
        std::size_t i0 = 0;
        if (cb > slots_begin) {
          i0 = static_cast<std::size_t>(cb - slots_begin + kWordSize - 1) /
               kWordSize;
        }
        Region* cell_region = g1.rm_.region_of(cell);
        for (std::size_t i = i0; i < cell->num_refs(); ++i) {
          char* const slot_addr = slots_begin + i * sizeof(RefSlot);
          if (slot_addr >= ce) break;
          process_slot(wk, w, cell_region, cell->refs()[i]);
        }
      }
      cell = cell->next_in_space();
    }
  }
};

PauseOutcome G1Gc::evacuate_pause(GcCause cause, bool initial_mark) {
  vm_.retire_all_tlabs();
  mutator_region_ = nullptr;

  // Collection set: all young regions, plus — in a mixed pause — the
  // highest-garbage old candidates that fit the pause-time model.
  std::vector<Region*> cset;
  cset.reserve(eden_regions_.size() + survivor_regions_.size() + 8);
  for (Region* r : eden_regions_) cset.push_back(r);
  for (Region* r : survivor_regions_) cset.push_back(r);

  bool mixed = false;
  if (mixed_pending_.load(std::memory_order_acquire) && !initial_mark &&
      !cycle_active_.load(std::memory_order_relaxed)) {
    double budget_s = cfg_.g1_pause_target_ms / 1000.0;
    double est = 0.0;
    for (Region* r : survivor_regions_)
      est += static_cast<double>(r->used()) * secs_per_byte_;
    for (Region* r : eden_regions_)
      est += 0.3 * static_cast<double>(r->used()) * secs_per_byte_;
    auto it = mixed_candidates_.begin();
    while (it != mixed_candidates_.end()) {
      Region& r = rm_.region_at(*it);
      if (r.type() != RegionType::kOld) {
        it = mixed_candidates_.erase(it);
        continue;
      }
      const double cost =
          static_cast<double>(r.live_bytes.load(std::memory_order_relaxed)) *
          secs_per_byte_;
      if (est + cost > budget_s && mixed) break;
      est += cost;
      cset.push_back(&r);
      mixed = true;
      it = mixed_candidates_.erase(it);
    }
    if (mixed_candidates_.empty())
      mixed_pending_.store(false, std::memory_order_release);
  }

  for (Region* r : cset) r->in_cset.store(true, std::memory_order_release);

  const int workers = cfg_.effective_gc_threads();
  G1EvacShared sh(*this, workers);
  vm_.for_each_root_slot([&](Obj** slot) { sh.root_slots.push_back(slot); });
  for (Region* r : cset) {
    for (std::uint32_t c : r->rset.snapshot()) sh.rset_cards.push_back(c);
  }

  ChunkClaimer root_claimer(sh.root_slots.size(), 64);
  ChunkClaimer card_claimer(sh.rset_cards.size(), 16);

  const std::int64_t t0 = now_ns();
  auto worker_body = [&](int w) {
    // Simulated slow worker: stretches the pause without touching heap
    // state (the pause's critical path is its slowest worker).
    if (fault::should_fire(fault::Site::kGcWorkerStall)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    EvacWorker wk(8 * KiB, &bot_);
    std::size_t b, e;
    while (root_claimer.claim(&b, &e)) {
      for (std::size_t i = b; i < e; ++i) {
        Obj** slot = sh.root_slots[i];
        Obj* t = *slot;
        if (t != nullptr &&
            rm_.region_of(t)->in_cset.load(std::memory_order_relaxed)) {
          *slot = sh.copy(wk, w, t);
        }
      }
    }
    while (card_claimer.claim(&b, &e)) {
      for (std::size_t i = b; i < e; ++i)
        sh.process_rset_card(wk, w, sh.rset_cards[i]);
    }
    sh.work.drain(w, [&](Obj* o) { sh.scan_object(wk, w, o); });
    wk.surv_plab.retire();
    wk.old_plab.retire();
    sh.copied_bytes.fetch_add(wk.copied, std::memory_order_relaxed);
  };
  if (workers == 1) {
    worker_body(0);
  } else {
    vm_.workers().run(workers, worker_body);
  }
  const std::int64_t t1 = now_ns();

  // Dispose of the collection set. Failed regions are fixed up FIRST,
  // while every cset region (and its forwarding pointers) still exists:
  // their retained cells — dead ones included — may reference objects that
  // were evacuated out of other cset regions, and those references must be
  // redirected (or nulled, for unreachable targets) before the source
  // regions are recycled.
  for (Region* r : cset) {
    if (r->evac_failed.load(std::memory_order_acquire)) {
      handle_failed_region(r);
    }
  }
  for (Region* r : cset) {
    if (r->evac_failed.load(std::memory_order_acquire)) {
      // Second pass: clear the self-forwards (only after every failed
      // region's references were fixed against them).
      r->evac_failed.store(false, std::memory_order_release);
      r->in_cset.store(false, std::memory_order_release);
      r->walk([&](Obj* cell) {
        if (cell->forwardee() == cell) cell->set_forward(nullptr);
      });
    } else {
      bot_.clear_range(r->base, r->end);
      rm_.free_region(r);
    }
  }
  eden_regions_.clear();
  survivor_regions_ = sh.surv_alloc.taken;

  // Pause-time model update (EMA).
  const std::size_t copied = sh.copied_bytes.load(std::memory_order_relaxed);
  if (copied > 4096) {
    const double obs = ns_to_s(t1 - t0) / static_cast<double>(copied);
    secs_per_byte_ = 0.7 * secs_per_byte_ + 0.3 * obs;
  }

  if (sh.any_failure.load(std::memory_order_acquire)) {
    evac_failures_.fetch_add(1, std::memory_order_acq_rel);
  }
  if (initial_mark) setup_marking_in_pause();
  if (mixed) mixed_pauses_.fetch_add(1, std::memory_order_acq_rel);

  PauseOutcome out;
  out.kind = initial_mark ? PauseKind::kInitialMark
                          : (mixed ? PauseKind::kMixedGc : PauseKind::kYoungGc);
  if (sh.any_failure.load(std::memory_order_acquire)) {
    out.cause = GcCause::kEvacuationFailure;
    out.failures.evacuation_failures = 1;
  } else {
    out.cause = cause;
  }
  out.full = false;
  return out;
}

void G1Gc::handle_failed_region(Region* r) {
  if (r->is_young()) r->set_type(RegionType::kOld);
  // All current content must be treated as live by an in-progress marking:
  // TAMS at base makes every cell "allocated during the cycle", and the
  // remark pause's above-TAMS rescan will trace their fields.
  r->set_tams(r->base);
  r->walk([&](Obj* cell) {
    bot_.record_block(cell->start(), cell->end());
    const std::size_t n = cell->num_refs();
    for (std::size_t i = 0; i < n; ++i) {
      Obj* t = cell->ref(i);
      if (t == nullptr) continue;
      Region* tr = rm_.region_of(t);
      if (tr->in_cset.load(std::memory_order_acquire)) {
        Obj* f = t->forwardee();
        if (f == nullptr) {
          // Target was never evacuated: it is unreachable (a live holder
          // would have had it traced), so this cell is dead too. Null the
          // ref — its region is about to be recycled.
          cell->set_ref_raw(i, nullptr);
          continue;
        }
        if (f != t) {
          cell->set_ref_raw(i, f);
          t = f;
          tr = rm_.region_of(f);
        }
      }
      if (tr != r) {
        tr->rset.add_card(
            static_cast<std::uint32_t>(cards_.index_of(&cell->refs()[i])));
      }
    }
  });
}

PauseOutcome G1Gc::collect_young(GcCause cause) {
  return evacuate_pause(cause, /*initial_mark=*/false);
}

// --- concurrent marking ------------------------------------------------------------

void G1Gc::mark_old_target(Obj* t) {
  if (t == nullptr) return;
  Region* r = rm_.region_of(t);
  if (!r->is_old_or_humongous()) return;
  if (t->start() >= r->tams()) return;  // implicitly live, fields rescanned at remark
  if (bits_.try_mark(t)) mark_stack_.push_back(t);
}

void G1Gc::setup_marking_in_pause() {
  bits_.clear_all();
  rm_.for_each_region([&](Region& r) {
    if (r.is_old_or_humongous()) {
      r.set_tams(r.top());
    } else {
      r.set_tams(r.base);
    }
  });
  {
    SpinLockGuard g(satb_lock_);
    satb_buffer_.clear();
  }
  mark_stack_.clear();
  abort_cycle_.store(false, std::memory_order_release);
  vm_.for_each_root_slot([&](Obj** slot) { mark_old_target(*slot); });
  satb_active_.store(true, std::memory_order_release);
  cycle_active_.store(true, std::memory_order_release);
}

PauseOutcome G1Gc::do_remark() {
  vm_.retire_all_tlabs();
  // 1. SATB buffers.
  {
    SpinLockGuard g(satb_lock_);
    for (Obj* t : satb_buffer_) mark_old_target(t);
    satb_buffer_.clear();
  }
  // 2. Roots again.
  vm_.for_each_root_slot([&](Obj** slot) { mark_old_target(*slot); });
  // 3. Young regions (objects allocated or kept during the cycle).
  rm_.for_each_region([&](Region& r) {
    if (r.is_young()) {
      r.walk([&](Obj* cell) {
        const std::size_t n = cell->num_refs();
        for (std::size_t i = 0; i < n; ++i) mark_old_target(cell->ref(i));
      });
    }
  });
  // 4. Above-TAMS allocations in old regions (promotions, retyped failed
  //    regions): implicitly live, but their fields must be traced.
  rm_.for_each_region([&](Region& r) {
    if (r.type() != RegionType::kOld) return;
    char* cur = r.tams();
    char* const top = r.top();
    while (cur < top) {
      auto* cell = reinterpret_cast<Obj*>(cur);
      const std::size_t n = cell->num_refs();
      for (std::size_t i = 0; i < n; ++i) mark_old_target(cell->ref(i));
      cur = cell->end();
    }
  });
  // 5. Complete the closure.
  while (!mark_stack_.empty()) {
    Obj* o = mark_stack_.back();
    mark_stack_.pop_back();
    const std::size_t n = o->num_refs();
    for (std::size_t i = 0; i < n; ++i) {
      mark_old_target(o->refs()[i].load(std::memory_order_acquire));
    }
  }
  satb_active_.store(false, std::memory_order_release);

  PauseOutcome out;
  out.kind = PauseKind::kRemark;
  out.cause = GcCause::kOccupancyTrigger;
  return out;
}

void G1Gc::purge_refs_into(Region* dying) {
  for (std::uint32_t card : dying->rset.snapshot()) {
    char* const cb = cards_.card_base(card);
    char* const ce = cards_.card_end(card);
    Region* src = rm_.region_of(cb);
    if (src == dying || !src->is_old_or_humongous()) continue;
    if (cb >= src->top()) continue;
    Obj* cell = bot_.cell_covering(cb);
    while (cell->start() < ce && cell->start() < src->top()) {
      const std::size_t n = cell->num_refs();
      for (std::size_t i = 0; i < n; ++i) {
        Obj* t = cell->ref(i);
        if (t != nullptr && dying->contains(t)) {
          cell->set_ref_raw(i, nullptr);
        }
      }
      cell = cell->next_in_space();
    }
  }
}

PauseOutcome G1Gc::do_cleanup() {
  std::vector<Region*> to_free;
  rm_.for_each_region([&](Region& r) {
    if (r.type() == RegionType::kOld) {
      std::size_t live = 0;
      char* cur = r.base;
      char* const tams = r.tams();
      while (cur < tams) {
        auto* cell = reinterpret_cast<Obj*>(cur);
        if (bits_.is_marked(cell)) live += cell->size_bytes();
        cur = cell->end();
      }
      live += static_cast<std::size_t>(r.top() - tams);
      r.live_bytes.store(live, std::memory_order_release);
      if (live == 0 && r.used() > 0) to_free.push_back(&r);
    } else if (r.type() == RegionType::kHumongousHead) {
      auto* h = reinterpret_cast<Obj*>(r.base);
      const bool below_tams = r.tams() > r.base;
      if (below_tams && !bits_.is_marked(h)) to_free.push_back(&r);
    }
  });

  for (Region* r : to_free) {
    purge_refs_into(r);
    if (r->type() == RegionType::kHumongousHead) {
      // Free the head and all continuation regions.
      std::size_t i = r->index;
      bot_.clear_range(r->base, r->end);
      Region* head = r;
      rm_.free_region(head);
      for (++i; i < rm_.num_regions(); ++i) {
        Region& c = rm_.region_at(i);
        if (c.type() != RegionType::kHumongousCont ||
            c.humongous_head != head) {
          break;
        }
        bot_.clear_range(c.base, c.end);
        rm_.free_region(&c);
      }
    } else {
      bot_.clear_range(r->base, r->end);
      rm_.free_region(r);
    }
  }

  // Mixed collection candidates: most garbage first.
  mixed_candidates_.clear();
  rm_.for_each_region([&](Region& r) {
    if (r.type() != RegionType::kOld) return;
    const std::size_t live = r.live_bytes.load(std::memory_order_acquire);
    const std::size_t used = r.used();
    if (used <= live) return;
    const std::size_t garbage = used - live;
    if (static_cast<double>(garbage) >
        cfg_.g1_mixed_garbage_threshold *
            static_cast<double>(rm_.region_bytes())) {
      mixed_candidates_.push_back(r.index);
    }
  });
  std::sort(mixed_candidates_.begin(), mixed_candidates_.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              const Region& ra = rm_.region_at(a);
              const Region& rb = rm_.region_at(b);
              return ra.used() - ra.live_bytes.load(std::memory_order_relaxed) >
                     rb.used() - rb.live_bytes.load(std::memory_order_relaxed);
            });
  mixed_pending_.store(!mixed_candidates_.empty(), std::memory_order_release);
  cycle_active_.store(false, std::memory_order_release);
  cycles_.fetch_add(1, std::memory_order_acq_rel);

  PauseOutcome out;
  out.kind = PauseKind::kCleanup;
  out.cause = GcCause::kOccupancyTrigger;
  return out;
}

// --- full collection (serial, as in OpenJDK8) ------------------------------------

namespace {

// Region-aware sliding destination cursor for the full compaction.
class RegionDest {
 public:
  RegionDest(RegionManager& rm, const std::vector<bool>& skip)
      : rm_(rm), skip_(skip) {}

  char* alloc(std::size_t bytes) {
    while (true) {
      if (cur_ != nullptr &&
          static_cast<std::size_t>(cur_->end - pos_) >= bytes) {
        char* p = pos_;
        pos_ += bytes;
        return p;
      }
      if (cur_ != nullptr) fills_.emplace_back(cur_, pos_);
      cur_ = nullptr;
      while (next_ < rm_.num_regions() && skip_[next_]) ++next_;
      if (next_ >= rm_.num_regions()) return nullptr;
      cur_ = &rm_.region_at(next_++);
      pos_ = cur_->base;
    }
  }

  void finish() {
    if (cur_ != nullptr) fills_.emplace_back(cur_, pos_);
    cur_ = nullptr;
  }

  const std::vector<std::pair<Region*, char*>>& fills() const {
    return fills_;
  }

 private:
  RegionManager& rm_;
  const std::vector<bool>& skip_;
  Region* cur_ = nullptr;
  char* pos_ = nullptr;
  std::size_t next_ = 0;
  std::vector<std::pair<Region*, char*>> fills_;
};

}  // namespace

void G1Gc::abort_cycle_in_pause() {
  satb_active_.store(false, std::memory_order_release);
  cycle_active_.store(false, std::memory_order_release);
  abort_cycle_.store(true, std::memory_order_release);
  mixed_pending_.store(false, std::memory_order_release);
  mixed_candidates_.clear();
  SpinLockGuard g(satb_lock_);
  satb_buffer_.clear();
}

PauseOutcome G1Gc::full_gc(GcCause cause) {
  abort_cycle_in_pause();
  vm_.retire_all_tlabs();
  mutator_region_ = nullptr;

  // Phase 1: serial mark (this is what makes G1's forced full collections
  // the slowest in the study, as in OpenJDK8).
  mark_from_roots(vm_, nullptr, 1);

  // Free dead humongous objects outright; live ones are pinned in place.
  std::vector<bool> skip(rm_.num_regions(), false);
  std::vector<Obj*> live;
  for (std::size_t i = 0; i < rm_.num_regions(); ++i) {
    Region& r = rm_.region_at(i);
    if (r.type() != RegionType::kHumongousHead) continue;
    auto* h = reinterpret_cast<Obj*>(r.base);
    Region* head = &r;
    if (h->is_marked()) {
      h->set_forward(h);  // pinned: moves to itself
      live.push_back(h);  // header fixup + ref update with the others
      skip[i] = true;
      for (std::size_t j = i + 1; j < rm_.num_regions(); ++j) {
        Region& c = rm_.region_at(j);
        if (c.type() != RegionType::kHumongousCont || c.humongous_head != head)
          break;
        skip[j] = true;
      }
    } else {
      bot_.clear_range(r.base, r.end);
      rm_.free_region(head);
      for (std::size_t j = i + 1; j < rm_.num_regions(); ++j) {
        Region& c = rm_.region_at(j);
        if (c.type() != RegionType::kHumongousCont || c.humongous_head != head)
          break;
        bot_.clear_range(c.base, c.end);
        rm_.free_region(&c);
      }
    }
  }

  // Phase 2: forwarding addresses, walking every non-humongous region in
  // address order, packing into the same region sequence. The slide bumps
  // through regions directly — including free (poisoned) ones — so re-admit
  // the whole heap; rebuild() re-poisons everything that stays free and the
  // phase-5 fill commit re-zaps the kept regions' dead tails.
  poison::unpoison(rm_.heap_base(),
                   static_cast<std::size_t>(rm_.heap_end() - rm_.heap_base()));
  RegionDest dest(rm_, skip);
  std::vector<Obj*> moved;
  rm_.for_each_region([&](Region& r) {
    if (r.is_free() || r.type() == RegionType::kHumongousHead ||
        r.type() == RegionType::kHumongousCont) {
      return;
    }
    r.walk([&](Obj* cell) {
      if (!cell->is_marked()) return;
      char* d = dest.alloc(cell->size_bytes());
      MGC_CHECK_MSG(d != nullptr, "OutOfMemory: G1 full GC cannot fit live data");
      cell->set_forward(reinterpret_cast<Obj*>(d));
      moved.push_back(cell);
    });
  });
  dest.finish();

  // Phase 3: update references (serial).
  vm_.for_each_root_slot([&](Obj** slot) {
    if (*slot != nullptr) *slot = (*slot)->forwardee();
  });
  auto update_refs = [](Obj* o) {
    const std::size_t n = o->num_refs();
    for (std::size_t i = 0; i < n; ++i) {
      Obj* t = o->refs()[i].load(std::memory_order_relaxed);
      if (t != nullptr)
        o->refs()[i].store(t->forwardee(), std::memory_order_relaxed);
    }
  };
  for (Obj* o : moved) update_refs(o);
  for (Obj* o : live) update_refs(o);

  // Phase 4: move (ascending; dest never overtakes source).
  bot_.clear();
  std::vector<Obj*> dests;
  dests.reserve(moved.size());
  for (Obj* src : moved) {
    auto* d = reinterpret_cast<Obj*>(src->forwardee());
    const std::size_t bytes = src->size_bytes();
    if (d != src) std::memmove(d->start(), src->start(), bytes);
    d->header().forward.store(nullptr, std::memory_order_relaxed);
    d->clear_mark();
    bot_.record_block(d->start(), d->end());
    dests.push_back(d);
  }
  for (Obj* h : live) {  // pinned humongous
    h->set_forward(nullptr);
    h->clear_mark();
    bot_.record_block(h->start(), h->start() + h->size_bytes());
  }

  // Phase 5: region metadata. Filled regions become old; the rest is freed.
  for (const auto& [region, top] : dest.fills()) {
    region->set_top(top);
    region->set_type(RegionType::kOld);
    region->set_tams(region->base);
    region->rset.clear();
    region->live_bytes.store(region->used(), std::memory_order_release);
    poison::zap_and_poison(top, static_cast<std::size_t>(region->end - top),
                           poison::kRegionZap);
  }
  std::vector<bool> keep(rm_.num_regions(), false);
  for (const auto& [region, top] : dest.fills()) {
    if (top > region->base) keep[region->index] = true;
  }
  for (std::size_t i = 0; i < rm_.num_regions(); ++i) {
    if (skip[i]) keep[i] = true;  // live humongous
  }
  rm_.rebuild([&](Region& r) { return keep[r.index]; });

  // Phase 6: rebuild remembered sets from the live graph.
  auto record_rsets = [&](Obj* o) {
    Region* hr = rm_.region_of(o);
    const std::size_t n = o->num_refs();
    for (std::size_t i = 0; i < n; ++i) {
      Obj* t = o->ref(i);
      if (t == nullptr) continue;
      Region* tr = rm_.region_of(t);
      if (tr != hr) {
        tr->rset.add_card(
            static_cast<std::uint32_t>(cards_.index_of(&o->refs()[i])));
      }
    }
  };
  for (Obj* d : dests) record_rsets(d);
  for (Obj* h : live) record_rsets(h);

  eden_regions_.clear();
  survivor_regions_.clear();

  PauseOutcome out;
  out.kind = PauseKind::kFullGc;
  out.cause = cause;
  out.full = true;
  return out;
}

PauseOutcome G1Gc::collect_full(GcCause cause) { return full_gc(cause); }

// --- background thread ---------------------------------------------------------------

void G1Gc::start_background() {
  bg_ = std::thread([this] {
    SafepointCoordinator& sp = vm_.safepoints();
    sp.register_thread();
    while (true) {
      {
        SafepointCoordinator::BlockedScope blocked(sp);
        MutexLock l(bg_mu_);
        bg_cv_.wait(l, [&]() MGC_REQUIRES(bg_mu_) { return bg_stop_ || cycle_requested_; });
        if (bg_stop_) break;
        cycle_requested_ = false;
      }
      GcCostCounters::CycleScope cost(vm_.cost_counters());
      // Initial mark piggybacks a young evacuation pause.
      vm_.run_vm_op(GcCause::kOccupancyTrigger, /*caller_is_registered=*/true,
                    [this] {
                      return evacuate_pause(GcCause::kOccupancyTrigger,
                                            /*initial_mark=*/true);
                    });
      // Concurrent mark.
      bool aborted = false;
      while (true) {
        vm_.safepoints().poll();
        {
          MutexLock l(bg_mu_);
          if (bg_stop_) aborted = true;
        }
        if (abort_cycle_.load(std::memory_order_acquire)) aborted = true;
        if (aborted) {
          mark_stack_.clear();
          break;
        }
        if (mark_stack_.empty()) break;
        for (std::size_t i = 0; i < kMarkBatch && !mark_stack_.empty(); ++i) {
          Obj* o = mark_stack_.back();
          mark_stack_.pop_back();
          const std::size_t n = o->num_refs();
          for (std::size_t r = 0; r < n; ++r) {
            mark_old_target(o->refs()[r].load(std::memory_order_acquire));
          }
        }
      }
      if (aborted) continue;
      vm_.run_vm_op(GcCause::kOccupancyTrigger, true,
                    [this] { return do_remark(); });
      if (abort_cycle_.load(std::memory_order_acquire)) continue;
      vm_.run_vm_op(GcCause::kOccupancyTrigger, true,
                    [this] { return do_cleanup(); });
    }
    sp.unregister_thread();
  });
}

void G1Gc::stop_background() {
  {
    MutexLock g(bg_mu_);
    bg_stop_ = true;
  }
  bg_cv_.notify_all();
  if (bg_.joinable()) bg_.join();
}

void G1Gc::maybe_start_concurrent() {
  if (cycle_active_.load(std::memory_order_acquire)) return;
  // Like HotSpot, don't start a new marking cycle while the previous
  // cycle's mixed-collection candidates are still being drained — a new
  // cycle would starve the mixed pauses that actually reclaim old space.
  if (mixed_pending_.load(std::memory_order_acquire)) return;
  const HeapUsage u = usage();
  if (static_cast<double>(u.used) <
      cfg_.g1_ihop * static_cast<double>(u.capacity)) {
    return;
  }
  {
    MutexLock g(bg_mu_);
    cycle_requested_ = true;
  }
  bg_cv_.notify_all();
}

// --- queries -----------------------------------------------------------------------

HeapUsage G1Gc::usage() const {
  HeapUsage u;
  u.capacity = rm_.num_regions() * rm_.region_bytes();
  u.young_capacity = max_young_regions_ * rm_.region_bytes();
  auto& rm = const_cast<RegionManager&>(rm_);
  for (std::size_t i = 0; i < rm.num_regions(); ++i) {
    const Region& r = rm.region_at(i);
    if (r.is_free()) continue;
    const std::size_t used = r.used();
    u.used += used;
    if (r.is_young()) {
      u.young_used += used;
    } else {
      u.old_used += used;
    }
  }
  u.old_capacity = u.capacity - u.young_capacity;
  return u;
}

}  // namespace mgc
