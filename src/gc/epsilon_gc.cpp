#include "gc/epsilon_gc.h"

#include <algorithm>

namespace mgc {

char* EpsilonGc::alloc_tlab(std::size_t bytes) {
  if (char* p = heap().eden().par_alloc(bytes)) return p;
  // Eden exhausted: keep bumping through the old generation. old_alloc
  // also records the block-offset-table entry, which keeps the space
  // parsable for the heap verifier.
  return heap().old_alloc(bytes);
}

Obj* EpsilonGc::alloc_direct(std::size_t size_words, std::uint16_t num_refs) {
  const std::size_t bytes = words_to_bytes(size_words);
  char* p = heap().eden().par_alloc(bytes);
  if (p == nullptr) p = heap().old_alloc(bytes);
  if (p == nullptr) return nullptr;
  return Obj::init(p, size_words, num_refs);
}

PauseOutcome EpsilonGc::collect_young(GcCause cause) {
  (void)cause;
  PauseOutcome out;
  out.skipped = true;  // no collection ran; log nothing, advance no epoch
  return out;
}

PauseOutcome EpsilonGc::collect_full(GcCause cause) {
  return collect_young(cause);
}

BarrierDescriptor EpsilonGc::barrier_descriptor() {
  return BarrierDescriptor{};  // Kind::kNone — reference stores run bare
}

std::size_t EpsilonGc::max_alloc_bytes() const {
  // A single allocation needs contiguous space in one of the two bump
  // regions; the old generation can additionally grow into the reserve.
  const ClassicHeap& h = heap();
  return std::max(h.eden().free_bytes(),
                  h.old_free() + h.old_reserve_available());
}

}  // namespace mgc
