#include "gc/classic_heap.h"

#include "support/check.h"

namespace mgc {

ClassicHeap::ClassicHeap(const VmConfig& cfg, bool free_list_old)
    : free_list_old_(free_list_old),
      arena_(cfg.heap_bytes + cfg.heap_reserve_bytes) {
  const std::size_t survivor = cfg.survivor_bytes();
  const std::size_t eden_sz = cfg.eden_bytes();
  char* p = arena_.base();

  eden_.initialize("eden", p, eden_sz);
  p += eden_sz;
  survivors_[0].initialize("survivor0", p, survivor);
  p += survivor;
  survivors_[1].initialize("survivor1", p, survivor);
  p += survivor;

  young_base_ = arena_.base();
  young_end_ = p;

  // The old generation commits [p, base + heap_bytes); the reserve tail
  // [old_end_, arena_.end()) stays uncommitted until expand_old. Both side
  // tables cover the whole reservation so expansion never resizes them.
  char* committed_end = arena_.base() + cfg.heap_bytes;
  const auto old_sz = static_cast<std::size_t>(committed_end - p);
  const auto old_max = static_cast<std::size_t>(arena_.end() - p);
  MGC_CHECK(old_sz >= 16 * KiB);
  old_base_ = p;
  old_end_ = committed_end;

  old_bot_.initialize(old_base_, old_max);
  if (free_list_old_) {
    cms_old_.initialize("cms-old", p, old_sz, &old_bot_);
    cms_bits_.initialize(old_base_, old_max);
    cms_old_.set_live_bitmap(&cms_bits_);
  } else {
    old_.initialize("old", p, old_sz);
  }

  cards_.initialize(arena_.base(), arena_.size());
}

std::size_t ClassicHeap::expand_old(std::size_t bytes) {
  bytes = align_up(bytes, kObjAlignment);
  const std::size_t avail = old_reserve_available();
  std::size_t grow = bytes < avail ? bytes : avail;
  grow &= ~(kObjAlignment - 1);  // a partial final grab stays aligned
  if (grow == 0) return 0;
  if (free_list_old_) {
    if (grow / kWordSize < FreeListSpace::kMinChunkWords) return 0;
    cms_old_.expand(grow);
  } else {
    old_.expand(grow);
  }
  old_end_ += grow;
  return grow;
}

char* ClassicHeap::old_alloc(std::size_t bytes) {
  bytes = align_up(bytes, kObjAlignment);
  if (free_list_old_) {
    return cms_old_.alloc(bytes);
  }
  char* p = old_.par_alloc(bytes);
  if (p != nullptr) old_bot_.record_block(p, p + bytes);
  return p;
}

std::size_t ClassicHeap::old_used() const {
  return free_list_old_ ? cms_old_.used() : old_.used();
}

std::size_t ClassicHeap::old_capacity() const {
  return free_list_old_ ? cms_old_.capacity() : old_.capacity();
}

std::size_t ClassicHeap::old_free() const {
  return old_capacity() - old_used();
}

std::size_t ClassicHeap::young_used() const {
  return eden_.used() + survivors_[from_idx_].used();
}

std::size_t ClassicHeap::young_capacity() const {
  return eden_.capacity() + survivors_[0].capacity() +
         survivors_[1].capacity();
}

void ClassicHeap::walk_old(const std::function<void(Obj*)>& fn) const {
  if (free_list_old_) {
    cms_old_.walk(fn);
  } else {
    old_.walk(fn);
  }
}

}  // namespace mgc
