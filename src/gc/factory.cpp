#include "gc/cms_gc.h"
#include "gc/epsilon_gc.h"
#include "gc/g1_gc.h"
#include "gc/parallel_gc.h"
#include "gc/parallel_old_gc.h"
#include "gc/parnew_gc.h"
#include "gc/serial_gc.h"
#include "runtime/vm.h"

namespace mgc {

std::unique_ptr<Collector> make_collector(Vm& vm, const VmConfig& cfg) {
  switch (cfg.gc) {
    case GcKind::kSerial:
      return std::make_unique<SerialGc>(vm, cfg);
    case GcKind::kParNew:
      return std::make_unique<ParNewGc>(vm, cfg);
    case GcKind::kParallel:
      return std::make_unique<ParallelGc>(vm, cfg);
    case GcKind::kParallelOld:
      return std::make_unique<ParallelOldGc>(vm, cfg);
    case GcKind::kCms:
      return std::make_unique<CmsGc>(vm, cfg);
    case GcKind::kG1:
      return std::make_unique<G1Gc>(vm, cfg);
    case GcKind::kEpsilon:
      return std::make_unique<EpsilonGc>(vm, cfg);
  }
  MGC_UNREACHABLE("bad GcKind");
}

}  // namespace mgc
