// Stop-the-world tracing (header mark bits) used by full collections.
// Parallel when given a worker pool, serial otherwise.
#pragma once

#include <cstddef>

#include "support/gc_worker_pool.h"

namespace mgc {

class Vm;

struct MarkStats {
  std::size_t live_objects = 0;
  std::size_t live_bytes = 0;
};

// Marks every object reachable from the VM's roots (mutator shadow stacks +
// global roots) by setting header mark bits. Must run inside a safepoint.
// `pool` may be nullptr together with workers == 1 for serial marking.
MarkStats mark_from_roots(Vm& vm, GcWorkerPool* pool, int workers);

}  // namespace mgc
