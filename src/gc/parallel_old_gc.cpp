#include "gc/parallel_old_gc.h"

namespace mgc {}
