// ParallelGC (Parallel Scavenge without parallel old): parallel copying
// young collection, single-threaded compacting old collection.
#pragma once

#include "gc/classic_collector.h"
#include "runtime/vm_config.h"

namespace mgc {

class ParallelGc final : public ClassicCollector {
 public:
  ParallelGc(Vm& vm, const VmConfig& cfg)
      : ClassicCollector(vm, cfg, /*free_list_old=*/false,
                         /*young_workers=*/cfg.effective_gc_threads(),
                         /*full_workers=*/1) {}
  GcKind kind() const override { return GcKind::kParallel; }
};

}  // namespace mgc
