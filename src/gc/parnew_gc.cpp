#include "gc/parnew_gc.h"

namespace mgc {}
