// ConcurrentMarkSweepGC: ParNew young collection over a free-list old
// generation collected by a mostly-concurrent background cycle:
//
//   initial mark (STW)  — roots + young generation scanned for old targets
//   concurrent mark     — background thread traces the old generation;
//                         mutator stores dirty cards (incremental update)
//   remark (STW)        — roots, young gen, objects promoted during the
//                         cycle, and dirty/mod-union cards are rescanned;
//                         the closure is completed
//   concurrent sweep    — free lists rebuilt in address order
//
// A promotion failure while the cycle runs is a *concurrent mode failure*:
// the cycle aborts and a single-threaded mark-sweep-compact runs in the
// same pause (the long CMS pauses of the paper's Cassandra experiment).
#pragma once

#include <thread>
#include <vector>

#include "gc/classic_collector.h"
#include "support/mutex.h"

namespace mgc {

class CmsGc final : public ClassicCollector {
 public:
  CmsGc(Vm& vm, const VmConfig& cfg);
  ~CmsGc() override;

  GcKind kind() const override { return GcKind::kCms; }

  void start_background() override;
  void stop_background() override;
  void maybe_start_concurrent() override;

  bool cycle_active() const {
    return cycle_active_.load(std::memory_order_acquire);
  }
  std::uint64_t cycles_completed() const {
    return cycles_.load(std::memory_order_acquire);
  }
  std::uint64_t concurrent_mode_failures() const {
    return cm_failures_.load(std::memory_order_acquire);
  }

 protected:
  void fill_scavenge_hooks(ScavengeConfig& sc) override;
  void before_full_compact() override;
  int full_compact_workers() const override { return 1; }  // serial MSC
  GcCause escalate_cause(GcCause cause) override;

 private:
  void bg_main();
  void run_cycle();
  // kCmsConcurrentFail fault site: when armed and fired, runs the serial
  // mark-sweep-compact in a pause exactly as a mid-cycle promotion failure
  // would, aborting the concurrent cycle. Checked between batches of every
  // concurrent phase (mark, preclean, sweep). Returns true if it fired.
  bool maybe_inject_concurrent_failure();

  // Pause bodies (run on the VM thread).
  PauseOutcome do_initial_mark();
  PauseOutcome do_remark();

  // Pushes t onto the mark stack if it is an unmarked old-gen object.
  void mark_old_target(Obj* t);
  void scan_cell_refs(Obj* cell);
  void scan_young_cells();
  void drain_mark_stack();
  // Marks the old-gen targets of every reference slot on one card.
  void scan_card_for_marks(std::size_t card_idx);
  // Concurrent precleaning: scans dirty cards while mutators run so remark
  // only has to revisit cards re-dirtied afterwards (HotSpot's
  // CMSPrecleaningEnabled). Returns false if the cycle was aborted.
  bool concurrent_preclean();

  std::thread bg_;
  Mutex bg_mu_{LockRank::kGcBackground, "cms-background"};
  CondVar bg_cv_;
  bool bg_stop_ MGC_GUARDED_BY(bg_mu_) = false;
  bool cycle_requested_ MGC_GUARDED_BY(bg_mu_) = false;

  std::atomic<bool> cycle_active_{false};
  std::atomic<bool> abort_cycle_{false};
  ModUnionTable mod_union_;
  std::vector<Obj*> mark_stack_;
  std::vector<Obj*> promoted_;

  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> cm_failures_{0};
};

}  // namespace mgc
