// Base class for the collectors using the classic generational heap
// (Serial, ParNew, Parallel, ParallelOld, CMS). Subclasses choose the
// parallelism of each phase; CMS adds the concurrent machinery on top.
#pragma once

#include "gc/classic_heap.h"
#include "gc/full_compact.h"
#include "gc/scavenge.h"
#include "runtime/collector.h"
#include "runtime/vm_config.h"
#include "support/stats.h"

namespace mgc {

class ClassicCollector : public Collector {
 public:
  ClassicCollector(Vm& vm, const VmConfig& cfg, bool free_list_old,
                   int young_workers, int full_workers);

  // --- allocation ------------------------------------------------------------
  char* alloc_tlab(std::size_t bytes) override;
  Obj* alloc_direct(std::size_t size_words, std::uint16_t num_refs) override;

  // --- collection ------------------------------------------------------------
  PauseOutcome collect_young(GcCause cause) override;
  PauseOutcome collect_full(GcCause cause) override;

  HeapUsage usage() const override;
  bool contains(const void* p) const override { return heap_.contains(p); }
  BarrierDescriptor barrier_descriptor() override;

  // --- degraded-mode support -------------------------------------------------
  bool try_expand(std::size_t min_bytes) override;
  std::size_t max_alloc_bytes() const override;

  ClassicHeap& heap() { return heap_; }
  const ClassicHeap& heap() const { return heap_; }

 protected:
  // Hooks for CMS.
  virtual void fill_scavenge_hooks(ScavengeConfig& sc) { (void)sc; }
  virtual void before_full_compact() {}
  virtual int full_compact_workers() const { return full_workers_; }
  // Lets CMS rewrite a promotion failure into a concurrent mode failure.
  virtual GcCause escalate_cause(GcCause cause) { return cause; }

  PauseOutcome run_full(GcCause cause);

  Vm& vm_;
  VmConfig cfg_;
  ClassicHeap heap_;
  int young_workers_;
  int full_workers_;

  // Adaptive PLAB sizing: each young cycle's copied volume (survivor +
  // promoted) feeds an EWMA; the next cycle's PLABs are sized so each
  // worker refills ~16 times, clamped to [1 KiB, 256 KiB].
  Ewma copied_per_young_{0.5};
  std::size_t plab_bytes_ = 8 * KiB;
};

}  // namespace mgc
