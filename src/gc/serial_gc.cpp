#include "gc/serial_gc.h"

// SerialGc is fully defined in the header; this TU anchors its vtable.
namespace mgc {}
