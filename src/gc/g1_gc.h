// Garbage-First (G1): region-based heap, parallel evacuation pauses with a
// pause-time target, SATB concurrent marking, mixed collections, and — as
// in OpenJDK8, where it dominates this paper's "system GC" results — a
// SINGLE-THREADED full collection fallback.
//
// Structure of a cycle:
//   young pause (initial mark) — evacuate young; snapshot TAMS per old
//                                region; enable the SATB barrier
//   concurrent mark            — background thread traces old/humongous
//                                regions below TAMS
//   remark (STW)               — drain SATB buffers, rescan roots, young
//                                regions and above-TAMS allocations
//   cleanup (STW)              — per-region liveness; free zero-live
//                                regions (after purging incoming refs via
//                                their remembered sets); build the mixed
//                                collection candidate list
//   mixed pauses               — young + highest-garbage old regions,
//                                bounded by the pause-time model
#pragma once

#include <thread>
#include <vector>

#include "heap/arena.h"
#include "heap/block_offset_table.h"
#include "heap/card_table.h"
#include "heap/mark_bitmap.h"
#include "heap/region.h"
#include "runtime/collector.h"
#include "runtime/vm_config.h"
#include "support/mutex.h"
#include "support/spinlock.h"

namespace mgc {

class G1Gc final : public Collector {
 public:
  G1Gc(Vm& vm, const VmConfig& cfg);
  ~G1Gc() override;

  GcKind kind() const override { return GcKind::kG1; }

  char* alloc_tlab(std::size_t bytes) override;
  Obj* alloc_direct(std::size_t size_words, std::uint16_t num_refs) override;

  PauseOutcome collect_young(GcCause cause) override;
  PauseOutcome collect_full(GcCause cause) override;

  HeapUsage usage() const override;
  bool contains(const void* p) const override { return rm_.contains(p); }
  BarrierDescriptor barrier_descriptor() override;
  // Optimistic ceiling: a humongous allocation spanning every region. No
  // expansion support (try_expand stays false — the region count is fixed).
  std::size_t max_alloc_bytes() const override {
    return rm_.num_regions() * rm_.region_bytes();
  }

  void start_background() override;
  void stop_background() override;
  void maybe_start_concurrent() override;
  void satb_record(Mutator& m, Obj* old_value) override;
  void rset_record(void* slot_addr, Obj* value) override;

  // Introspection for tests, benches and the heap verifier.
  RegionManager& regions() { return rm_; }
  CardTable& card_table() { return cards_; }
  bool cycle_active() const {
    return cycle_active_.load(std::memory_order_acquire);
  }
  std::uint64_t cycles_completed() const {
    return cycles_.load(std::memory_order_acquire);
  }
  std::uint64_t mixed_pauses() const {
    return mixed_pauses_.load(std::memory_order_acquire);
  }
  std::uint64_t evacuation_failures() const {
    return evac_failures_.load(std::memory_order_acquire);
  }

 private:
  friend struct G1EvacShared;

  // Allocation.
  char* young_alloc_locked(std::size_t bytes);
  std::size_t eden_quota() const;

  // Pauses.
  PauseOutcome evacuate_pause(GcCause cause, bool initial_mark);
  PauseOutcome full_gc(GcCause cause);
  PauseOutcome do_remark();
  PauseOutcome do_cleanup();
  void setup_marking_in_pause();
  void abort_cycle_in_pause();
  void handle_failed_region(Region* r);
  void purge_refs_into(Region* dying);
  void mark_old_target(Obj* t);
  void scan_card_for_marks(std::size_t card_idx);

  Vm& vm_;
  VmConfig cfg_;
  Arena arena_;
  RegionManager rm_;
  CardTable cards_;
  BlockOffsetTable bot_;
  MarkBitmap bits_;
  unsigned region_shift_;

  // Guards the young-generation allocation path; ranked below the region
  // manager's free-list lock, which allocate_region takes underneath it.
  SpinLock alloc_lock_{LockRank::kEvacAlloc, "g1-alloc"};
  Region* mutator_region_ = nullptr;
  std::vector<Region*> eden_regions_;
  std::vector<Region*> survivor_regions_;
  std::size_t max_young_regions_;

  std::atomic<bool> satb_active_{false};
  SpinLock satb_lock_{LockRank::kSatb, "g1-satb"};
  std::vector<Obj*> satb_buffer_ MGC_GUARDED_BY(satb_lock_);

  std::thread bg_;
  Mutex bg_mu_{LockRank::kGcBackground, "g1-background"};
  CondVar bg_cv_;
  bool bg_stop_ MGC_GUARDED_BY(bg_mu_) = false;
  bool cycle_requested_ MGC_GUARDED_BY(bg_mu_) = false;
  std::atomic<bool> cycle_active_{false};
  std::atomic<bool> abort_cycle_{false};
  std::vector<Obj*> mark_stack_;

  std::vector<std::uint32_t> mixed_candidates_;
  // Read by mutators (maybe_start_concurrent); written inside pauses.
  std::atomic<bool> mixed_pending_{false};

  // Pause-time model: EMA of seconds per evacuated byte.
  double secs_per_byte_ = 2e-9;

  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> mixed_pauses_{0};
  std::atomic<std::uint64_t> evac_failures_{0};
};

}  // namespace mgc
