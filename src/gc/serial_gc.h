// SerialGC: single-threaded copying young collection and single-threaded
// mark-sweep-compact old collection. No synchronization inside collection
// phases (paper Table 1, row 1).
#pragma once

#include "gc/classic_collector.h"

namespace mgc {

class SerialGc final : public ClassicCollector {
 public:
  SerialGc(Vm& vm, const VmConfig& cfg)
      : ClassicCollector(vm, cfg, /*free_list_old=*/false,
                         /*young_workers=*/1, /*full_workers=*/1) {}
  GcKind kind() const override { return GcKind::kSerial; }
};

}  // namespace mgc
