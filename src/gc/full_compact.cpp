#include "gc/full_compact.h"

#include <cstring>

#include "gc/marking.h"
#include "heap/poison.h"
#include "gc/parallel_work.h"
#include "runtime/vm.h"

namespace mgc {
namespace {

// Bump allocator over an ordered list of destination ranges (old gen, then
// eden, then the survivor spaces for pathological live sets).
class DestinationCursor {
 public:
  void add_range(char* base, char* end) { ranges_.push_back({base, end}); }

  char* alloc(std::size_t bytes) {
    while (cur_ < ranges_.size()) {
      Range& r = ranges_[cur_];
      if (static_cast<std::size_t>(r.end - r.pos()) >= bytes) {
        char* p = r.pos();
        r.used += bytes;
        return p;
      }
      ++cur_;
    }
    return nullptr;
  }

  // Final fill level of range i (== base when untouched).
  char* level(std::size_t i) const {
    return ranges_[i].base + ranges_[i].used;
  }
  std::size_t range_count() const { return ranges_.size(); }

 private:
  struct Range {
    char* base;
    char* end;
    std::size_t used = 0;
    char* pos() const { return base + used; }
  };
  std::vector<Range> ranges_;
  std::size_t cur_ = 0;
};

}  // namespace

FullCompactResult full_compact(const FullCompactConfig& cfg) {
  MGC_CHECK(cfg.vm != nullptr && cfg.heap != nullptr);
  Vm& vm = *cfg.vm;
  ClassicHeap& heap = *cfg.heap;
  vm.retire_all_tlabs();

  // Phase 1: mark (parallel for ParallelOld).
  const MarkStats marked = mark_from_roots(
      vm, cfg.workers > 1 ? cfg.pool : nullptr, cfg.workers);

  // Phase 2 (serial): assign forwarding addresses in compaction order and
  // collect the live list. Sources: old generation first, then the young
  // spaces; destinations: old generation, then eden, then from-space.
  // Eden- and from-resident spill is re-evacuated by the next young
  // collection (the scavenge sources are exactly eden + from-space), so
  // both are legal overflow targets when a promotion-failure pile-up
  // pushes the live set past old+eden. Only to-space must stay empty — and
  // it always is outside a scavenge (the post-scavenge swap drains it), so
  // a live set exceeding old+eden+from cannot occur; the cursor check
  // below is a backstop for that impossible state, not a policy.
  //
  // Slide safety with the from-space range: old sources always fit in the
  // old range and eden sources in old+eden (live <= used per space), so
  // only from/to sources can be assigned from-space destinations — and
  // those are processed after every from-space source has itself been
  // assigned (and, in the slide, moved) in the same order.
  DestinationCursor dest;
  dest.add_range(heap.old_base(), heap.old_end());
  dest.add_range(heap.eden().base(), heap.eden().end());
  dest.add_range(heap.from_space().base(), heap.from_space().end());
  // The slide writes through these raw ranges, bypassing the space
  // allocators: past the current tops and (for CMS) through poisoned
  // free-chunk payloads. Re-admit the destination ranges wholesale; the
  // phase-5 boundary commit re-zaps whatever ends up dead.
  poison::unpoison(heap.old_base(),
                   static_cast<std::size_t>(heap.old_end() - heap.old_base()));
  poison::unpoison(heap.eden().base(), heap.eden().capacity());
  poison::unpoison(heap.from_space().base(), heap.from_space().capacity());

  std::vector<Obj*> live;
  live.reserve(marked.live_objects);
  auto forward_cell = [&](Obj* o) {
    if (!o->is_marked()) return;
    char* d = dest.alloc(o->size_bytes());
    MGC_CHECK_MSG(d != nullptr,
                  "live data exceeds old+eden+from: to-space held objects "
                  "outside a scavenge");
    o->set_forward(reinterpret_cast<Obj*>(d));
    live.push_back(o);
  };
  heap.walk_old(forward_cell);
  heap.eden().walk(forward_cell);
  heap.from_space().walk(forward_cell);
  heap.to_space().walk(forward_cell);

  // Phase 3: update every reference (roots + live objects' slots) to the
  // forwarding address. Parallel for ParallelOld.
  std::vector<Obj**> root_slots;
  vm.for_each_root_slot([&](Obj** slot) { root_slots.push_back(slot); });

  auto update_slot = [](Obj*& target) {
    if (target != nullptr) {
      Obj* fwd = target->forwardee();
      MGC_DCHECK(fwd != nullptr);
      target = fwd;
    }
  };
  auto update_phase = [&](int /*worker*/, ChunkClaimer& roots,
                          ChunkClaimer& objs) {
    std::size_t b, e;
    while (roots.claim(&b, &e)) {
      for (std::size_t i = b; i < e; ++i) update_slot(*root_slots[i]);
    }
    while (objs.claim(&b, &e)) {
      for (std::size_t i = b; i < e; ++i) {
        Obj* o = live[i];
        const std::size_t n = o->num_refs();
        for (std::size_t r = 0; r < n; ++r) {
          Obj* t = o->refs()[r].load(std::memory_order_relaxed);
          if (t != nullptr) {
            o->refs()[r].store(t->forwardee(), std::memory_order_relaxed);
          }
        }
      }
    }
  };
  {
    ChunkClaimer roots(root_slots.size(), 128);
    ChunkClaimer objs(live.size(), 256);
    if (cfg.workers > 1) {
      cfg.pool->run(cfg.workers,
                    [&](int w) { update_phase(w, roots, objs); });
    } else {
      update_phase(0, roots, objs);
    }
  }

  // Phase 4 (serial): slide. Processing order == assignment order, so every
  // destination byte was already vacated (or is below its own source).
  CardTable& cards = heap.cards();
  cards.clear_all();
  char* const yb = heap.young_base();
  char* const ye = heap.young_end();
  bool eden_overflow = false;
  for (Obj* src : live) {
    auto* d = reinterpret_cast<Obj*>(src->forwardee());
    const std::size_t bytes = src->size_bytes();
    if (d != src) std::memmove(d->start(), src->start(), bytes);
    d->header().forward.store(nullptr, std::memory_order_relaxed);
    d->clear_mark();
    const bool d_in_old = heap.in_old(d->start());
    if (d_in_old) {
      heap.old_bot().record_block(d->start(), d->end());
    } else {
      eden_overflow = true;
    }
    // Re-establish the generational invariant for survivors that landed in
    // the young spaces: old holders referencing them need dirty cards.
    if (d_in_old) {
      const std::size_t n = d->num_refs();
      for (std::size_t r = 0; r < n; ++r) {
        Obj* t = d->ref(r);
        if (t != nullptr && t->start() >= yb && t->start() < ye) {
          cards.dirty(&d->refs()[r]);
        }
      }
    }
  }

  // Phase 5: commit space boundaries.
  char* const old_top = dest.level(0);
  if (heap.free_list_old()) {
    heap.cms_old().reset_after_compact(old_top);
  } else {
    heap.old_space().set_top(old_top);
  }
  heap.eden().set_top(dest.level(1));
  heap.from_space().set_top(dest.level(2));
  heap.to_space().reset();

  FullCompactResult res;
  res.live_bytes = marked.live_bytes;
  res.live_objects = marked.live_objects;
  res.eden_overflow = eden_overflow;
  return res;
}

}  // namespace mgc
