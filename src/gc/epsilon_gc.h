// EpsilonGC: the no-op collector of the cost-distillation experiments
// ("Distilling the Real Cost of Production Garbage Collectors"). It
// bump-allocates across the whole heap — eden first, then straight through
// the old generation — never collects, and runs no write barrier, so a run
// under Epsilon is the empirical lower bound every real collector's total
// cost is distilled against.
//
// Exhaustion semantics: a collection can never make a request satisfiable,
// so the allocation ladder (see Mutator::alloc_slow) skips its collection
// rungs for Epsilon — it retries the allocation, takes the heap-expansion
// rung if a reserve exists, and otherwise throws a structured, *hopeless*
// OutOfMemoryError. Never an abort, never a pause-loop hang, and the GC
// log stays empty (zero cycles) for the whole run.
#pragma once

#include "gc/classic_collector.h"

namespace mgc {

class EpsilonGc final : public ClassicCollector {
 public:
  EpsilonGc(Vm& vm, const VmConfig& cfg)
      : ClassicCollector(vm, cfg, /*free_list_old=*/false,
                         /*young_workers=*/1, /*full_workers=*/1) {}

  GcKind kind() const override { return GcKind::kEpsilon; }
  bool collects() const override { return false; }

  // Bump allocation across the whole heap: eden until it runs dry, then
  // the old generation (which for Epsilon is just more bump space).
  char* alloc_tlab(std::size_t bytes) override;
  Obj* alloc_direct(std::size_t size_words, std::uint16_t num_refs) override;

  // Forced collections (System.gc, harness-forced full GCs, the torture
  // driver's round boundaries) are no-ops: nothing is logged, no epoch
  // advances, and the heap is untouched.
  PauseOutcome collect_young(GcCause cause) override;
  PauseOutcome collect_full(GcCause cause) override;

  // No generational invariant to maintain — stores run bare.
  BarrierDescriptor barrier_descriptor() override;

  // The largest request that could *ever* succeed is bounded by what is
  // still free right now (plus the uncommitted reserve): nothing is ever
  // reclaimed, so exhaustion makes every further request hopeless.
  std::size_t max_alloc_bytes() const override;
};

}  // namespace mgc
