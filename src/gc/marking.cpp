#include "gc/marking.h"

#include <atomic>

#include "gc/parallel_work.h"
#include "heap/object.h"
#include "runtime/vm.h"

namespace mgc {

MarkStats mark_from_roots(Vm& vm, GcWorkerPool* pool, int workers) {
  MGC_CHECK(workers >= 1);
  MGC_CHECK(pool != nullptr || workers == 1);

  WorkSet<Obj*> work(workers);
  std::atomic<std::size_t> live_objects{0};
  std::atomic<std::size_t> live_bytes{0};

  // Seed with roots, spread round-robin across workers.
  {
    int w = 0;
    vm.for_each_root_slot([&](Obj** slot) {
      Obj* o = *slot;
      if (o != nullptr && o->try_mark()) {
        work.push(w, o);
        w = (w + 1) % workers;
      }
    });
  }

  auto worker_body = [&](int w) {
    std::size_t objs = 0;
    std::size_t bytes = 0;
    work.drain(w, [&](Obj* o) {
      ++objs;
      bytes += o->size_bytes();
      const std::size_t n = o->num_refs();
      for (std::size_t i = 0; i < n; ++i) {
        Obj* child = o->ref(i);
        if (child != nullptr && child->try_mark()) work.push(w, child);
      }
    });
    live_objects.fetch_add(objs, std::memory_order_relaxed);
    live_bytes.fetch_add(bytes, std::memory_order_relaxed);
  };

  if (workers == 1) {
    worker_body(0);
  } else {
    pool->run(workers, worker_body);
  }

  MarkStats s;
  s.live_objects = live_objects.load(std::memory_order_relaxed);
  s.live_bytes = live_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mgc
