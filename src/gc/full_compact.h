// Full stop-the-world mark-compact collection for the classic heap
// (LISP-2 style: mark, forward, update references, slide).
//
// The entire heap is collected: old-generation live objects slide to the
// low end of the old generation and young survivors are appended after
// them (overflowing back into eden only if the old generation cannot hold
// everything, as HotSpot does). The mark and reference-update passes are
// the dominant pointer-chasing costs and run parallel for ParallelOld; the
// sliding move is serial (see DESIGN.md §4).
#pragma once

#include <cstddef>

#include "gc/classic_heap.h"
#include "support/gc_worker_pool.h"

namespace mgc {

class Vm;

struct FullCompactConfig {
  Vm* vm = nullptr;
  ClassicHeap* heap = nullptr;
  GcWorkerPool* pool = nullptr;  // parallel mark/update when workers > 1
  int workers = 1;
};

struct FullCompactResult {
  std::size_t live_bytes = 0;
  std::size_t live_objects = 0;
  bool eden_overflow = false;  // survivors did not all fit in old gen
};

FullCompactResult full_compact(const FullCompactConfig& cfg);

}  // namespace mgc
