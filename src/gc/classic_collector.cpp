#include "gc/classic_collector.h"

#include <algorithm>

#include "runtime/vm.h"
#include "support/fault.h"

namespace mgc {

ClassicCollector::ClassicCollector(Vm& vm, const VmConfig& cfg,
                                   bool free_list_old, int young_workers,
                                   int full_workers)
    : vm_(vm),
      cfg_(cfg),
      heap_(cfg, free_list_old),
      young_workers_(young_workers),
      full_workers_(full_workers) {}

char* ClassicCollector::alloc_tlab(std::size_t bytes) {
  return heap_.eden().par_alloc(bytes);
}

Obj* ClassicCollector::alloc_direct(std::size_t size_words,
                                    std::uint16_t num_refs) {
  const std::size_t bytes = words_to_bytes(size_words);
  // Objects too large for the eden go straight to the old generation, as
  // HotSpot does for humongous allocations in the classic collectors.
  if (bytes > heap_.eden().capacity() / 2) {
    char* p = heap_.old_alloc(bytes);
    if (p == nullptr) return nullptr;
    return Obj::init(p, size_words, num_refs);
  }
  char* p = heap_.eden().par_alloc(bytes);
  if (p == nullptr) return nullptr;
  return Obj::init(p, size_words, num_refs);
}

PauseOutcome ClassicCollector::collect_young(GcCause cause) {
  ScavengeConfig sc;
  sc.vm = &vm_;
  sc.heap = &heap_;
  sc.workers = young_workers_;
  sc.pool = young_workers_ > 1 ? &vm_.workers() : nullptr;
  sc.tenuring_threshold = cfg_.tenuring_threshold;
  sc.plab_bytes = plab_bytes_;
  fill_scavenge_hooks(sc);
  const ScavengeResult res = scavenge(sc);

  PauseOutcome out;
  if (res.promotion_failed) {
    // HotSpot semantics: finish with a full collection in the same pause.
    // The aborted cycle's copied volume is unrepresentative — skip the
    // PLAB EWMA update.
    const GcCause escalated = escalate_cause(GcCause::kPromotionFailure);
    out = run_full(escalated);
    out.failures.promotion_failures = 1;
    if (escalated == GcCause::kConcurrentModeFailure)
      out.failures.concurrent_mode_failures = 1;
    return out;
  }

  // Resize next cycle's PLABs from this cycle's copied volume.
  copied_per_young_.add(
      static_cast<double>(res.survivor_bytes + res.promoted_bytes));
  const auto want = static_cast<std::size_t>(
      copied_per_young_.value() /
      (static_cast<double>(std::max(1, young_workers_)) * 16.0));
  plab_bytes_ = std::clamp(align_up(want, kObjAlignment),
                           std::size_t{1} * KiB, std::size_t{256} * KiB);

  out.kind = PauseKind::kYoungGc;
  out.cause = cause;
  out.full = false;
  out.phases = res.phases;
  return out;
}

PauseOutcome ClassicCollector::collect_full(GcCause cause) {
  return run_full(cause);
}

PauseOutcome ClassicCollector::run_full(GcCause cause) {
  before_full_compact();
  FullCompactConfig fc;
  fc.vm = &vm_;
  fc.heap = &heap_;
  fc.workers = full_compact_workers();
  fc.pool = fc.workers > 1 ? &vm_.workers() : nullptr;
  full_compact(fc);
  PauseOutcome out;
  out.kind = PauseKind::kFullGc;
  out.cause = cause;
  out.full = true;
  return out;
}

HeapUsage ClassicCollector::usage() const {
  HeapUsage u;
  u.young_used = heap_.young_used();
  u.young_capacity = heap_.young_capacity();
  u.old_used = heap_.old_used();
  u.old_capacity = heap_.old_capacity();
  u.used = u.young_used + u.old_used;
  u.capacity = u.young_capacity + u.old_capacity;
  return u;
}

BarrierDescriptor ClassicCollector::barrier_descriptor() {
  BarrierDescriptor bd;
  bd.kind = BarrierDescriptor::Kind::kCardTable;
  bd.card_table = &heap_.cards();
  bd.old_base = heap_.old_base();
  // old_limit, not old_end: descriptors are cached per mutator, and the
  // old generation may expand while they are live. Nothing is ever
  // allocated between old_end and old_limit before an expansion commits
  // the range, so the wider test only dirties cards that matter.
  bd.old_end = heap_.old_limit();
  return bd;
}

bool ClassicCollector::try_expand(std::size_t min_bytes) {
  if (heap_.old_reserve_available() == 0) return false;
  if (fault::should_fire(fault::Site::kHeapExpand)) return false;
  bool grew = false;
  vm_.run_vm_op(GcCause::kAllocFailure, true, [&]() -> PauseOutcome {
    // Grow by at least one quantum so repeated ladder trips don't
    // nickel-and-dime the reserve into fragments.
    const std::size_t quantum = std::max(min_bytes, std::size_t{1} * MiB);
    grew = heap_.expand_old(quantum) > 0;
    PauseOutcome out;
    out.kind = PauseKind::kHeapExpand;
    out.cause = GcCause::kAllocFailure;
    out.skipped = !grew;
    return out;
  });
  return grew;
}

std::size_t ClassicCollector::max_alloc_bytes() const {
  // Largest single allocation that could ever succeed: the whole old
  // generation after maximal expansion (the large-object path), or half
  // the eden (the young path), whichever is larger.
  const std::size_t old_max =
      heap_.old_capacity() + heap_.old_reserve_available();
  return std::max(old_max, heap_.eden().capacity() / 2);
}

}  // namespace mgc
