#include "gc/scavenge.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "gc/parallel_work.h"
#include "gc/plab.h"
#include "runtime/vm.h"
#include "support/clock.h"
#include "support/fault.h"

namespace mgc {
namespace {

// Cards per claimed strip: 256 cards = 128 KiB of old generation per
// claim. Word-wise sweeping makes a fully clean strip cost 32 loads, so
// strips are cheap enough to keep the claim counter cold while still
// load-balancing the dirty clusters.
constexpr std::size_t kCardsPerStrip = 256;
constexpr std::size_t kRootsPerChunk = 64;

struct Shared {
  const ScavengeConfig& cfg;
  ClassicHeap& heap;
  WorkSet<Obj*> work;
  // Root slots stay where they live (mutator shadow stacks + global
  // roots); workers claim chunks of the flattened index space
  // [0, root_count) and map them back through the prefix sums. No per-slot
  // vector is built on the VM thread.
  std::vector<std::vector<Obj*>*> root_vecs;
  std::vector<std::size_t> root_prefix;  // root_vecs.size() + 1 entries
  std::size_t root_count = 0;
  // Old-generation card window [first_card, last_card), claimed in strips.
  std::size_t first_card = 0;
  std::size_t last_card = 0;
  char* old_parsable_limit = nullptr;
  std::atomic<bool> promotion_failed{false};
  std::atomic<std::size_t> survivor_bytes{0};
  std::atomic<std::size_t> promoted_bytes{0};
  std::atomic<std::size_t> cards_scanned{0};
  std::atomic<std::int64_t> root_scan_ns{0};
  std::atomic<std::int64_t> card_scan_ns{0};
  std::atomic<std::int64_t> evac_drain_ns{0};
  SpinLock promoted_lock{LockRank::kPromotedList, "promoted-list"};

  explicit Shared(const ScavengeConfig& c)
      : cfg(c), heap(*c.heap), work(c.workers) {}

  bool in_source(const Obj* o) const {
    // Objects being evacuated live in eden or the from-survivor space.
    return heap.eden().contains(o) || heap.from_space().contains(o);
  }
};

struct Worker {
  Worker(std::size_t plab_bytes, ClassicHeap& heap)
      : to_plab(plab_bytes),
        old_plab(plab_bytes, &heap.old_bot(),
                 /*parsable=*/heap.free_list_old()) {}
  Plab to_plab;
  Plab old_plab;
  std::size_t survivor_bytes = 0;
  std::size_t promoted_bytes = 0;
  std::vector<Obj*> promoted;  // flushed into cfg.promoted_list at the end
};

Obj* evacuate(Shared& sh, Worker& wk, int w, Obj* o) {
  if (!sh.in_source(o)) return o;
  if (Obj* f = o->forwardee()) return f;

  const std::size_t bytes = o->size_bytes();
  const std::uint8_t age = o->age();

  char* dest_mem = nullptr;
  bool promoted = false;
  // kPromotionFail forces this object down the failure path without
  // touching either destination space — the deterministic analogue of a
  // genuinely exhausted to-space + old generation.
  const bool forced_fail = fault::should_fire(fault::Site::kPromotionFail);
  if (!forced_fail && age < sh.cfg.tenuring_threshold) {
    dest_mem = fault::should_fire(fault::Site::kPlabRefill)
                   ? nullptr
                   : wk.to_plab.alloc_refill(bytes, [&](std::size_t b) {
                       return sh.heap.to_space().par_alloc(b);
                     });
  }
  if (!forced_fail && dest_mem == nullptr) {
    // Tenured by age, or survivor overflow: promote to the old generation.
    dest_mem = fault::should_fire(fault::Site::kOldAlloc)
                   ? nullptr
                   : wk.old_plab.alloc_refill(bytes, [&](std::size_t b) {
                       return sh.heap.old_alloc(b);
                     });
    promoted = dest_mem != nullptr;
  }
  if (dest_mem == nullptr) {
    // Promotion failure: self-forward in place; the caller must run a full
    // collection in this same pause.
    Obj* winner = o->forward_atomic(o);
    if (winner == o) {
      sh.promotion_failed.store(true, std::memory_order_release);
      sh.work.push(w, o);  // children still need processing
    }
    return winner;
  }

  // Copy protocol for concurrent heap walkers (CMS old-gen card scanning
  // runs while other workers promote): body first, header fields next,
  // num_refs last — a walker sees either a 0-ref cell of the right size or
  // a fully copied object.
  auto* dest = reinterpret_cast<Obj*>(dest_mem);
  std::memcpy(dest_mem + sizeof(ObjHeader), o->start() + sizeof(ObjHeader),
              bytes - sizeof(ObjHeader));
  dest->set_size_words_atomic(static_cast<std::uint32_t>(bytes / kWordSize));
  dest->header().age = static_cast<std::uint8_t>(age >= 15 ? 15 : age + 1);
  dest->header().forward.store(nullptr, std::memory_order_relaxed);
  dest->header().flags.store(0, std::memory_order_release);
  dest->set_num_refs_atomic(o->num_refs());

  Obj* winner = o->forward_atomic(dest);
  if (winner != dest) {
    // Another worker copied o first; our duplicate becomes a dead filler.
    dest->set_num_refs_atomic(0);
    dest->header().flags.store(objflag::kDeadCopy, std::memory_order_release);
    return winner;
  }

  if (promoted) {
    sh.heap.old_bot().record_block(dest->start(), dest->end());
    if (sh.cfg.allocate_black) sh.heap.cms_bits().mark(dest);
    if (sh.cfg.promoted_list != nullptr) wk.promoted.push_back(dest);
    wk.promoted_bytes += bytes;
  } else {
    wk.survivor_bytes += bytes;
  }
  sh.work.push(w, dest);
  return dest;
}

// Processes one reference slot of holder `x` (may be anywhere in the heap).
inline void process_slot(Shared& sh, Worker& wk, int w, Obj* x, bool x_in_old,
                         RefSlot& slot) {
  Obj* t = slot.load(std::memory_order_relaxed);
  if (t == nullptr) return;
  if (sh.in_source(t)) {
    t = evacuate(sh, wk, w, t);
    slot.store(t, std::memory_order_relaxed);
  }
  // Maintain the generational invariant: any old-gen slot that (still)
  // points into the young generation keeps its card dirty.
  if (x_in_old && sh.heap.in_young(t)) sh.heap.cards().dirty(&slot);
  (void)x;
}

void scan_object(Shared& sh, Worker& wk, int w, Obj* x) {
  const bool x_in_old = sh.heap.in_old(x);
  const std::size_t n = x->num_refs();
  for (std::size_t i = 0; i < n; ++i) {
    process_slot(sh, wk, w, x, x_in_old, x->refs()[i]);
  }
}

void process_card(Shared& sh, Worker& wk, int w, std::size_t card_idx) {
  CardTable& cards = sh.heap.cards();
  if (sh.cfg.mod_union != nullptr) sh.cfg.mod_union->record(card_idx);
  cards.clear_index(card_idx);
  char* const card_base = cards.card_base(card_idx);
  char* const card_end = cards.card_end(card_idx);
  if (card_base >= sh.old_parsable_limit) return;

  Obj* cell = sh.heap.old_bot().cell_covering(card_base);
  while (cell->start() < card_end &&
         cell->start() < sh.old_parsable_limit) {
    if (!cell->is_free_chunk() && cell->num_refs() > 0) {
      // Only the slots physically on this card; neighbouring cards own the
      // rest (this also partitions big objects between workers).
      char* const slots_begin = cell->start() + sizeof(ObjHeader);
      const std::size_t nrefs = cell->num_refs();
      std::size_t i0 = 0;
      if (card_base > slots_begin) {
        i0 = static_cast<std::size_t>(card_base - slots_begin + kWordSize - 1) /
             kWordSize;
      }
      for (std::size_t i = i0; i < nrefs; ++i) {
        char* const slot_addr = slots_begin + i * sizeof(RefSlot);
        if (slot_addr >= card_end) break;
        process_slot(sh, wk, w, cell, /*x_in_old=*/true, cell->refs()[i]);
      }
    }
    cell = cell->next_in_space();
  }
}

// Evacuates the root slots in the flattened index range [b, e).
void scan_root_chunk(Shared& sh, Worker& wk, int w, std::size_t b,
                     std::size_t e) {
  // Locate the vector containing flat index b, then walk forward.
  std::size_t v = static_cast<std::size_t>(
                      std::upper_bound(sh.root_prefix.begin(),
                                       sh.root_prefix.end(), b) -
                      sh.root_prefix.begin()) -
                  1;
  while (b < e) {
    const std::size_t span_end = std::min(e, sh.root_prefix[v + 1]);
    std::vector<Obj*>& vec = *sh.root_vecs[v];
    for (std::size_t i = b; i < span_end; ++i) {
      Obj*& slot = vec[i - sh.root_prefix[v]];
      if (slot != nullptr && sh.in_source(slot)) {
        slot = evacuate(sh, wk, w, slot);
      }
    }
    b = span_end;
    ++v;
  }
}

}  // namespace

ScavengeResult scavenge(const ScavengeConfig& cfg) {
  MGC_CHECK(cfg.vm != nullptr && cfg.heap != nullptr);
  MGC_CHECK(cfg.workers >= 1);
  MGC_CHECK(cfg.pool != nullptr || cfg.workers == 1);

  Vm& vm = *cfg.vm;
  ClassicHeap& heap = *cfg.heap;
  vm.retire_all_tlabs();

  Shared sh(cfg);
  sh.old_parsable_limit =
      heap.free_list_old() ? heap.old_end() : heap.old_space().top();

  // O(#mutators) setup: gather the root *vectors* and their prefix sums.
  // The slots themselves are claimed and scanned inside worker_body.
  sh.root_vecs = vm.root_vectors();
  sh.root_prefix.resize(sh.root_vecs.size() + 1, 0);
  for (std::size_t i = 0; i < sh.root_vecs.size(); ++i) {
    sh.root_prefix[i + 1] = sh.root_prefix[i] + sh.root_vecs[i]->size();
  }
  sh.root_count = sh.root_prefix.back();

  CardTable& cards = heap.cards();
  sh.first_card = cards.index_of(heap.old_base());
  sh.last_card = sh.old_parsable_limit > heap.old_base()
                     ? cards.index_of(sh.old_parsable_limit - 1) + 1
                     : sh.first_card;

  ChunkClaimer root_claimer(sh.root_count, kRootsPerChunk);
  ChunkClaimer strip_claimer(sh.last_card - sh.first_card, kCardsPerStrip);

  auto worker_body = [&](int w) {
    // Simulated slow worker: the pause's critical path is its slowest
    // worker, so a stall here stretches the pause without touching any
    // heap state (the fingerprint stays deterministic).
    if (fault::should_fire(fault::Site::kGcWorkerStall)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    // The free-list old generation uses parsable PLABs: concurrent card
    // scanners may walk the space while promotion carves it up, so the
    // PLAB keeps its unused tail covered by a filler at every step.
    Worker wk(cfg.plab_bytes, heap);
    const std::int64_t t0 = now_ns();
    std::size_t b, e;
    while (root_claimer.claim(&b, &e)) {
      scan_root_chunk(sh, wk, w, b, e);
    }
    const std::int64_t t1 = now_ns();
    // Striped dirty-card discovery: each claimed strip is swept word-wise
    // and its dirty cards processed in place by this worker.
    std::size_t scanned = 0;
    while (strip_claimer.claim(&b, &e)) {
      cards.visit_dirty(sh.first_card + b, sh.first_card + e,
                        [&](std::size_t idx) {
                          process_card(sh, wk, w, idx);
                          ++scanned;
                        });
    }
    const std::int64_t t2 = now_ns();
    sh.work.drain(w, [&](Obj* o) { scan_object(sh, wk, w, o); });
    wk.to_plab.retire();
    wk.old_plab.retire();
    const std::int64_t t3 = now_ns();
    sh.cards_scanned.fetch_add(scanned, std::memory_order_relaxed);
    sh.survivor_bytes.fetch_add(wk.survivor_bytes, std::memory_order_relaxed);
    sh.promoted_bytes.fetch_add(wk.promoted_bytes, std::memory_order_relaxed);
    if (cfg.promoted_list != nullptr && !wk.promoted.empty()) {
      SpinLockGuard g(sh.promoted_lock);
      cfg.promoted_list->insert(cfg.promoted_list->end(), wk.promoted.begin(),
                                wk.promoted.end());
    }
    fold_max(sh.root_scan_ns, t1 - t0);
    fold_max(sh.card_scan_ns, t2 - t1);
    fold_max(sh.evac_drain_ns, t3 - t2);
  };

  if (cfg.workers == 1) {
    worker_body(0);
  } else {
    cfg.pool->run(cfg.workers, worker_body);
  }

  ScavengeResult res;
  res.promotion_failed = sh.promotion_failed.load(std::memory_order_acquire);
  res.survivor_bytes = sh.survivor_bytes.load(std::memory_order_relaxed);
  res.promoted_bytes = sh.promoted_bytes.load(std::memory_order_relaxed);
  res.dirty_cards_scanned = sh.cards_scanned.load(std::memory_order_relaxed);
  res.phases.root_scan_ns = sh.root_scan_ns.load(std::memory_order_relaxed);
  res.phases.card_scan_ns = sh.card_scan_ns.load(std::memory_order_relaxed);
  res.phases.evac_drain_ns = sh.evac_drain_ns.load(std::memory_order_relaxed);

  if (!res.promotion_failed) {
    heap.eden().reset();
    heap.from_space().reset();
    heap.swap_survivors();  // old to-space (with survivors) becomes from
  }
  return res;
}

}  // namespace mgc
