#include "gc/scavenge.h"

#include <atomic>
#include <cstring>
#include <mutex>

#include "gc/parallel_work.h"
#include "gc/plab.h"
#include "runtime/vm.h"

namespace mgc {
namespace {

struct Shared {
  const ScavengeConfig& cfg;
  ClassicHeap& heap;
  WorkSet<Obj*> work;
  std::vector<Obj**> root_slots;
  std::vector<std::size_t> dirty_cards;
  char* old_parsable_limit = nullptr;
  std::atomic<bool> promotion_failed{false};
  std::atomic<std::size_t> survivor_bytes{0};
  std::atomic<std::size_t> promoted_bytes{0};
  SpinLock promoted_lock;

  explicit Shared(const ScavengeConfig& c)
      : cfg(c), heap(*c.heap), work(c.workers) {}

  bool in_source(const Obj* o) const {
    // Objects being evacuated live in eden or the from-survivor space.
    return heap.eden().contains(o) ||
           const_cast<ClassicHeap&>(heap).from_space().contains(o);
  }
};

struct Worker {
  Worker(std::size_t plab_bytes, ClassicHeap& heap)
      : to_plab(plab_bytes),
        old_plab(plab_bytes, &heap.old_bot(),
                 /*parsable=*/heap.free_list_old()) {}
  Plab to_plab;
  Plab old_plab;
  std::size_t survivor_bytes = 0;
  std::size_t promoted_bytes = 0;
  std::vector<Obj*> promoted;  // flushed into cfg.promoted_list at the end
};

Obj* evacuate(Shared& sh, Worker& wk, int w, Obj* o) {
  if (!sh.in_source(o)) return o;
  if (Obj* f = o->forwardee()) return f;

  const std::size_t bytes = o->size_bytes();
  const std::uint8_t age = o->age();

  char* dest_mem = nullptr;
  bool promoted = false;
  if (age < sh.cfg.tenuring_threshold) {
    dest_mem = wk.to_plab.alloc_refill(
        bytes, [&](std::size_t b) { return sh.heap.to_space().par_alloc(b); });
  }
  if (dest_mem == nullptr) {
    // Tenured by age, or survivor overflow: promote to the old generation.
    dest_mem = wk.old_plab.alloc_refill(
        bytes, [&](std::size_t b) { return sh.heap.old_alloc(b); });
    promoted = dest_mem != nullptr;
  }
  if (dest_mem == nullptr) {
    // Promotion failure: self-forward in place; the caller must run a full
    // collection in this same pause.
    Obj* winner = o->forward_atomic(o);
    if (winner == o) {
      sh.promotion_failed.store(true, std::memory_order_release);
      sh.work.push(w, o);  // children still need processing
    }
    return winner;
  }

  // Copy protocol for concurrent heap walkers (CMS old-gen card scanning
  // runs while other workers promote): body first, header fields next,
  // num_refs last — a walker sees either a 0-ref cell of the right size or
  // a fully copied object.
  auto* dest = reinterpret_cast<Obj*>(dest_mem);
  std::memcpy(dest_mem + sizeof(ObjHeader), o->start() + sizeof(ObjHeader),
              bytes - sizeof(ObjHeader));
  dest->set_size_words_atomic(static_cast<std::uint32_t>(bytes / kWordSize));
  dest->header().age = static_cast<std::uint8_t>(age >= 15 ? 15 : age + 1);
  dest->header().forward.store(nullptr, std::memory_order_relaxed);
  dest->header().flags.store(0, std::memory_order_release);
  dest->set_num_refs_atomic(o->num_refs());

  Obj* winner = o->forward_atomic(dest);
  if (winner != dest) {
    // Another worker copied o first; our duplicate becomes a dead filler.
    dest->set_num_refs_atomic(0);
    dest->header().flags.store(objflag::kDeadCopy, std::memory_order_release);
    return winner;
  }

  if (promoted) {
    sh.heap.old_bot().record_block(dest->start(), dest->end());
    if (sh.cfg.allocate_black) sh.heap.cms_bits().mark(dest);
    if (sh.cfg.promoted_list != nullptr) wk.promoted.push_back(dest);
    wk.promoted_bytes += bytes;
  } else {
    wk.survivor_bytes += bytes;
  }
  sh.work.push(w, dest);
  return dest;
}

// Processes one reference slot of holder `x` (may be anywhere in the heap).
inline void process_slot(Shared& sh, Worker& wk, int w, Obj* x, bool x_in_old,
                         RefSlot& slot) {
  Obj* t = slot.load(std::memory_order_relaxed);
  if (t == nullptr) return;
  if (sh.in_source(t)) {
    t = evacuate(sh, wk, w, t);
    slot.store(t, std::memory_order_relaxed);
  }
  // Maintain the generational invariant: any old-gen slot that (still)
  // points into the young generation keeps its card dirty.
  if (x_in_old && sh.heap.in_young(t)) sh.heap.cards().dirty(&slot);
  (void)x;
}

void scan_object(Shared& sh, Worker& wk, int w, Obj* x) {
  const bool x_in_old = sh.heap.in_old(x);
  const std::size_t n = x->num_refs();
  for (std::size_t i = 0; i < n; ++i) {
    process_slot(sh, wk, w, x, x_in_old, x->refs()[i]);
  }
}

void process_card(Shared& sh, Worker& wk, int w, std::size_t card_idx) {
  CardTable& cards = sh.heap.cards();
  if (sh.cfg.mod_union != nullptr) sh.cfg.mod_union->record(card_idx);
  cards.clear_index(card_idx);
  char* const card_base = cards.card_base(card_idx);
  char* const card_end = cards.card_end(card_idx);
  if (card_base >= sh.old_parsable_limit) return;

  Obj* cell = sh.heap.old_bot().cell_covering(card_base);
  while (cell->start() < card_end &&
         cell->start() < sh.old_parsable_limit) {
    if (!cell->is_free_chunk() && cell->num_refs() > 0) {
      // Only the slots physically on this card; neighbouring cards own the
      // rest (this also partitions big objects between workers).
      char* const slots_begin = cell->start() + sizeof(ObjHeader);
      const std::size_t nrefs = cell->num_refs();
      std::size_t i0 = 0;
      if (card_base > slots_begin) {
        i0 = static_cast<std::size_t>(card_base - slots_begin + kWordSize - 1) /
             kWordSize;
      }
      for (std::size_t i = i0; i < nrefs; ++i) {
        char* const slot_addr = slots_begin + i * sizeof(RefSlot);
        if (slot_addr >= card_end) break;
        process_slot(sh, wk, w, cell, /*x_in_old=*/true, cell->refs()[i]);
      }
    }
    cell = cell->next_in_space();
  }
}

}  // namespace

ScavengeResult scavenge(const ScavengeConfig& cfg) {
  MGC_CHECK(cfg.vm != nullptr && cfg.heap != nullptr);
  MGC_CHECK(cfg.workers >= 1);
  MGC_CHECK(cfg.pool != nullptr || cfg.workers == 1);

  Vm& vm = *cfg.vm;
  ClassicHeap& heap = *cfg.heap;
  vm.retire_all_tlabs();

  Shared sh(cfg);
  sh.old_parsable_limit =
      heap.free_list_old() ? heap.old_end() : heap.old_space().top();

  vm.for_each_root_slot([&](Obj** slot) { sh.root_slots.push_back(slot); });
  heap.cards().for_each_dirty(
      heap.old_base(), sh.old_parsable_limit,
      [&](std::size_t idx) { sh.dirty_cards.push_back(idx); });

  ChunkClaimer root_claimer(sh.root_slots.size(), 64);
  ChunkClaimer card_claimer(sh.dirty_cards.size(), 16);

  auto worker_body = [&](int w) {
    // The free-list old generation uses parsable PLABs: concurrent card
    // scanners may walk the space while promotion carves it up, so the
    // PLAB keeps its unused tail covered by a filler at every step.
    Worker wk(cfg.plab_bytes, heap);
    std::size_t b, e;
    while (root_claimer.claim(&b, &e)) {
      for (std::size_t i = b; i < e; ++i) {
        Obj** slot = sh.root_slots[i];
        Obj* t = *slot;
        if (t != nullptr && sh.in_source(t)) *slot = evacuate(sh, wk, w, t);
      }
    }
    while (card_claimer.claim(&b, &e)) {
      for (std::size_t i = b; i < e; ++i)
        process_card(sh, wk, w, sh.dirty_cards[i]);
    }
    sh.work.drain(w, [&](Obj* o) { scan_object(sh, wk, w, o); });
    wk.to_plab.retire();
    wk.old_plab.retire();
    sh.survivor_bytes.fetch_add(wk.survivor_bytes, std::memory_order_relaxed);
    sh.promoted_bytes.fetch_add(wk.promoted_bytes, std::memory_order_relaxed);
    if (cfg.promoted_list != nullptr && !wk.promoted.empty()) {
      std::lock_guard<SpinLock> g(sh.promoted_lock);
      cfg.promoted_list->insert(cfg.promoted_list->end(), wk.promoted.begin(),
                                wk.promoted.end());
    }
  };

  if (cfg.workers == 1) {
    worker_body(0);
  } else {
    cfg.pool->run(cfg.workers, worker_body);
  }

  ScavengeResult res;
  res.promotion_failed = sh.promotion_failed.load(std::memory_order_acquire);
  res.survivor_bytes = sh.survivor_bytes.load(std::memory_order_relaxed);
  res.promoted_bytes = sh.promoted_bytes.load(std::memory_order_relaxed);
  res.dirty_cards_scanned = sh.dirty_cards.size();

  if (!res.promotion_failed) {
    heap.eden().reset();
    heap.from_space().reset();
    heap.swap_survivors();  // old to-space (with survivors) becomes from
  }
  return res;
}

}  // namespace mgc
