// Heap zapping / sanitizer poisoning.
//
// Debug and ASan builds overwrite reclaimed heap memory with a recognizable
// byte pattern (HotSpot's badHeapWordVal, bdwgc's object canaries) so a
// dangling reference reads garbage that is obviously garbage, and — when the
// build is ASan-instrumented — additionally mark the range as poisoned so
// the dangling access is reported at the faulting address instead of
// silently returning the zap pattern.
//
// Discipline for call sites:
//  - Reclamation paths (space reset, free-list insert, PLAB/TLAB retire,
//    region free) call `zap_and_poison` with the site's pattern.
//  - Allocation paths call `unpoison` on the exact range handed out BEFORE
//    writing the object header.
//  - `unpoison` is unconditional under ASan even when zapping is disabled at
//    runtime, so toggling the flag mid-process can never strand poisoned
//    memory behind a live allocation.
//
// Headers and free-list link words are never poisoned: sweeps, space walks
// and the heap verifier parse cell headers of dead memory by design.
#pragma once

#include <cstddef>

#if defined(__SANITIZE_ADDRESS__)
#define MGC_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MGC_ASAN 1
#endif
#endif
#ifndef MGC_ASAN
#define MGC_ASAN 0
#endif

namespace mgc::poison {

// One byte pattern per reclamation site, so a corrupted value seen in a
// debugger or a test names the path that freed the memory.
inline constexpr unsigned char kFromSpaceZap = 0xF1;  // evacuated young space
inline constexpr unsigned char kFreeChunkZap = 0xF5;  // CMS free-list payload
inline constexpr unsigned char kLabTailZap = 0xFA;    // dead TLAB/PLAB tail
inline constexpr unsigned char kRegionZap = 0xFE;     // reclaimed G1 region

// Whether zapping/poisoning is active. Defaults on in debug (!NDEBUG) and
// ASan builds, off in release; the MGC_HEAP_POISON environment variable
// (0/1) overrides either way. Read once at first use.
bool enabled();
// Test hook; call before any heap is created.
void set_enabled(bool on);

// Fills [p, p+n) with `pattern` and, under ASan, marks it poisoned.
// No-op when disabled.
void zap_and_poison(void* p, std::size_t n, unsigned char pattern);

// Marks [p, p+n) poisoned under ASan without writing the pattern (used for
// virgin, never-allocated space at heap construction). No-op when disabled.
void poison(void* p, std::size_t n);

// Re-admits [p, p+n) for use. Under ASan this runs even when disabled (see
// file comment); otherwise a no-op.
void unpoison(void* p, std::size_t n);

// Test support: true if every byte of [p, p+n) still carries `pattern`.
// Unpoisons the range first under ASan so the check itself is legal.
bool check_zapped(const void* p, std::size_t n, unsigned char pattern);

}  // namespace mgc::poison
