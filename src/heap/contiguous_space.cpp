#include "heap/contiguous_space.h"

#include "heap/poison.h"
#include "support/check.h"

namespace mgc {

void ContiguousSpace::initialize(std::string name, char* base,
                                 std::size_t bytes) {
  MGC_CHECK(base != nullptr);
  MGC_CHECK(reinterpret_cast<std::uintptr_t>(base) % kObjAlignment == 0);
  name_ = std::move(name);
  base_ = base;
  end_ = base + bytes;
  top_.store(base, std::memory_order_release);
  // Virgin space is off-limits until an allocation carves it out.
  poison::poison(base_, bytes);
}

void ContiguousSpace::reset() {
  char* const old_top = top();
  top_.store(base_, std::memory_order_release);
  poison::zap_and_poison(base_, static_cast<std::size_t>(old_top - base_),
                         poison::kFromSpaceZap);
}

void ContiguousSpace::set_top(char* t) {
  char* const old_top = top();
  top_.store(t, std::memory_order_release);
  if (t < old_top) {
    poison::zap_and_poison(t, static_cast<std::size_t>(old_top - t),
                           poison::kFromSpaceZap);
  }
}

char* ContiguousSpace::par_alloc(std::size_t bytes) {
  MGC_DCHECK(bytes % kObjAlignment == 0);
  char* cur = top_.load(std::memory_order_relaxed);
  while (true) {
    if (static_cast<std::size_t>(end_ - cur) < bytes) return nullptr;
    if (top_.compare_exchange_weak(cur, cur + bytes, std::memory_order_acq_rel,
                                   std::memory_order_relaxed)) {
      poison::unpoison(cur, bytes);
      return cur;
    }
  }
}

char* ContiguousSpace::serial_alloc(std::size_t bytes) {
  MGC_DCHECK(bytes % kObjAlignment == 0);
  char* cur = top_.load(std::memory_order_relaxed);
  if (static_cast<std::size_t>(end_ - cur) < bytes) return nullptr;
  top_.store(cur + bytes, std::memory_order_relaxed);
  poison::unpoison(cur, bytes);
  return cur;
}

void ContiguousSpace::walk(const std::function<void(Obj*)>& fn) const {
  char* cur = base_;
  char* const limit = top();
  while (cur < limit) {
    auto* o = reinterpret_cast<Obj*>(cur);
    MGC_CHECK_MSG(o->size_words() >= kMinObjWords, "heap not parsable");
    fn(o);
    cur = o->end();
  }
  MGC_CHECK_MSG(cur == limit, "heap walk overran top");
}

}  // namespace mgc
