#include "heap/object.h"

namespace mgc {

Obj* Obj::init(void* mem, std::size_t size_words, std::uint16_t num_refs) {
  MGC_DCHECK(reinterpret_cast<std::uintptr_t>(mem) % kObjAlignment == 0);
  MGC_DCHECK(size_words >= kHeaderWords + num_refs);
  MGC_DCHECK(size_words <= UINT32_MAX);
  auto* o = static_cast<Obj*>(mem);
  ObjHeader& h = o->header();
  // Write protocol for walker safety: size first (cell boundary), then the
  // ref slots are nulled, and only then does num_refs become visible — a
  // concurrent heap walker either sees 0 refs or fully-initialized slots.
  o->set_size_words_atomic(static_cast<std::uint32_t>(size_words));
  h.age = 0;
  h.flags.store(0, std::memory_order_relaxed);
  h.forward.store(nullptr, std::memory_order_relaxed);
  for (std::size_t i = 0; i < num_refs; ++i)
    o->refs()[i].store(nullptr, std::memory_order_relaxed);
  o->set_num_refs_atomic(num_refs);
  // Payload is intentionally left uninitialized: mutator code writes it.
  return o;
}

Obj* Obj::init_filler(void* mem, std::size_t size_words) {
  Obj* o = init(mem, size_words, 0);
  o->set_flag(objflag::kFiller);
  return o;
}

std::uint64_t object_checksum(const Obj* o) {
  // FNV-1a over shape and payload. Reference *identity* is checked
  // structurally by graph walks in tests; here we only fold in the shape.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(o->size_words());
  mix(o->num_refs());
  for (std::size_t i = 0; i < o->payload_words(); ++i) mix(o->field(i));
  return h;
}

}  // namespace mgc
