#include "heap/free_list_space.h"

#include <mutex>
#include <sstream>
#include <unordered_set>

#include "heap/poison.h"
#include "support/check.h"

namespace mgc {
namespace {

// Metadata prefix of a free chunk that must stay readable/writable while the
// rest of the payload is zapped: the ObjHeader (size/flags/forward=next) plus
// the first payload word (prev link).
constexpr std::size_t kChunkPreserveBytes = sizeof(ObjHeader) + kWordSize;

// Free-chunk link accessors: `forward` is next, payload word 0 is prev.
void set_next(Obj* c, Obj* n) { c->set_forward(n); }
Obj* next_of(Obj* c) { return c->forwardee(); }
void set_prev(Obj* c, Obj* p) {
  reinterpret_cast<word_t*>(c->start() + sizeof(ObjHeader))[0] =
      reinterpret_cast<word_t>(p);
}
Obj* prev_of(Obj* c) {
  return reinterpret_cast<Obj*>(
      reinterpret_cast<word_t*>(c->start() + sizeof(ObjHeader))[0]);
}

}  // namespace

void FreeListSpace::initialize(std::string name, char* base, std::size_t bytes,
                               BlockOffsetTable* bot) {
  MGC_CHECK(bytes % kObjAlignment == 0);
  MGC_CHECK(bytes / kWordSize >= kMinChunkWords);
  name_ = std::move(name);
  base_ = base;
  end_ = base + bytes;
  bot_ = bot;
  bins_.exact.assign((kMaxExactWords - kMinChunkWords) / 2 + 1, nullptr);
  bins_.dict.clear();
  free_bytes_.store(0, std::memory_order_relaxed);
  SpinLockGuard g(lock_);
  insert_locked(base_, bytes);
  free_bytes_.store(bytes, std::memory_order_release);
}

Obj* FreeListSpace::make_chunk(char* start, std::size_t bytes) {
  auto* o = static_cast<Obj*>(static_cast<void*>(start));
  ObjHeader& h = o->header();
  o->set_num_refs_atomic(0);
  o->set_size_words_atomic(static_cast<std::uint32_t>(bytes / kWordSize));
  h.age = 0;
  h.flags.store(objflag::kFreeChunk, std::memory_order_release);
  h.forward.store(nullptr, std::memory_order_relaxed);
  if (bot_ != nullptr) bot_->record_block(start, start + bytes);
  return o;
}

Obj*& FreeListSpace::head_for(std::size_t words) {
  if (words <= kMaxExactWords) return bins_.exact[exact_index(words)];
  return bins_.dict[words];
}

void FreeListSpace::insert_locked(char* start, std::size_t bytes) {
  MGC_DCHECK(bytes % kObjAlignment == 0);
  const std::size_t words = bytes / kWordSize;
  if (words < kMinChunkWords) {
    // Dark matter: too small to link; becomes a filler cell counted as used.
    // May start inside a previously poisoned chunk payload (split
    // remainders), so lift the poison before writing the filler header.
    poison::unpoison(start, bytes);
    Obj::init_filler(start, words);
    if (bot_ != nullptr) bot_->record_block(start, start + bytes);
    return;
  }
  poison::unpoison(start, kChunkPreserveBytes);
  Obj* chunk = make_chunk(start, bytes);
  Obj*& head = head_for(words);
  set_next(chunk, head);
  set_prev(chunk, nullptr);
  if (head != nullptr) set_prev(head, chunk);
  head = chunk;
  poison::zap_and_poison(start + kChunkPreserveBytes,
                         bytes - kChunkPreserveBytes, poison::kFreeChunkZap);
}

void FreeListSpace::unlink_locked(Obj* chunk) {
  Obj* prev = prev_of(chunk);
  Obj* next = next_of(chunk);
  if (next != nullptr) set_prev(next, prev);
  if (prev != nullptr) {
    set_next(prev, next);
    return;
  }
  // Chunk is a bin head.
  const std::size_t words = chunk->size_words();
  if (words <= kMaxExactWords) {
    MGC_DCHECK(bins_.exact[exact_index(words)] == chunk);
    bins_.exact[exact_index(words)] = next;
  } else {
    auto it = bins_.dict.find(words);
    MGC_DCHECK(it != bins_.dict.end() && it->second == chunk);
    if (next == nullptr) {
      bins_.dict.erase(it);
    } else {
      it->second = next;
    }
  }
}

char* FreeListSpace::pop_fit_locked(std::size_t words) {
  if (words < kMinChunkWords) words = kMinChunkWords;
  Obj* found = nullptr;
  if (words <= kMaxExactWords) {
    for (std::size_t idx = exact_index(words); idx < bins_.exact.size();
         ++idx) {
      if (bins_.exact[idx] != nullptr) {
        found = bins_.exact[idx];
        break;
      }
    }
  }
  if (found == nullptr) {
    auto it = bins_.dict.lower_bound(words);
    if (it != bins_.dict.end()) found = it->second;
  }
  if (found == nullptr) return nullptr;
  unlink_locked(found);

  const std::size_t chunk_words = found->size_words();
  MGC_DCHECK(chunk_words >= words);
  const std::size_t rem = chunk_words - words;
  if (rem > 0) {
    insert_locked(found->start() + words_to_bytes(words),
                  words_to_bytes(rem));
    if (rem < kMinChunkWords) {
      // Remainder became dark matter; account it as used.
      free_bytes_.fetch_sub(words_to_bytes(rem), std::memory_order_acq_rel);
    }
  }
  return found->start();
}

char* FreeListSpace::alloc(std::size_t bytes) {
  bytes = align_up(bytes, kObjAlignment);
  const std::size_t words = bytes / kWordSize;
  SpinLockGuard g(lock_);
  char* p = pop_fit_locked(words);
  if (p == nullptr) return nullptr;
  free_bytes_.fetch_sub(bytes, std::memory_order_acq_rel);
  poison::unpoison(p, bytes);
  // Provisional parsable cell; blackened via the bitmap so a concurrent
  // sweep reaching this address treats it as live.
  Obj::init(p, words, 0);
  if (allocate_black_.load(std::memory_order_acquire) && live_bits_ != nullptr)
    live_bits_->mark(p);
  if (bot_ != nullptr) bot_->record_block(p, p + bytes);
  return p;
}

Obj* FreeListSpace::alloc_obj(std::size_t size_words, std::uint16_t num_refs,
                              bool black) {
  const std::size_t bytes = words_to_bytes(size_words);
  SpinLockGuard g(lock_);
  char* p = pop_fit_locked(size_words);
  if (p == nullptr) return nullptr;
  free_bytes_.fetch_sub(bytes, std::memory_order_acq_rel);
  poison::unpoison(p, bytes);
  Obj* o = Obj::init(p, size_words, num_refs);
  if ((black || allocate_black_.load(std::memory_order_acquire)) &&
      live_bits_ != nullptr) {
    live_bits_->mark(p);
  }
  if (bot_ != nullptr) bot_->record_block(p, p + bytes);
  return o;
}

void FreeListSpace::free_chunk(char* start, std::size_t bytes) {
  SpinLockGuard g(lock_);
  insert_locked(start, bytes);
  if (bytes / kWordSize >= kMinChunkWords)
    free_bytes_.fetch_add(bytes, std::memory_order_acq_rel);
}

void FreeListSpace::expand(std::size_t bytes) {
  MGC_CHECK(bytes % kObjAlignment == 0);
  MGC_CHECK(bytes / kWordSize >= kMinChunkWords);
  char* start = end_;
  end_ = start + bytes;
  free_chunk(start, bytes);
}

void FreeListSpace::walk(const std::function<void(Obj*)>& fn) const {
  char* cur = base_;
  while (cur < end_) {
    auto* o = reinterpret_cast<Obj*>(cur);
    MGC_CHECK_MSG(o->size_words() >= kMinObjWords,
                  "free-list space not parsable");
    fn(o);
    cur = o->end();
  }
}

void FreeListSpace::begin_sweep() {
  SpinLockGuard g(lock_);
  MGC_CHECK(!sweeping_.load(std::memory_order_relaxed));
  sweep_cursor_ = base_;
  pending_run_start_ = nullptr;
  sweeping_.store(true, std::memory_order_release);
}

bool FreeListSpace::sweep_step(std::size_t max_cells,
                               std::size_t* reclaimed_bytes) {
  SpinLockGuard g(lock_);
  MGC_CHECK(sweeping_.load(std::memory_order_relaxed));
  std::size_t processed = 0;
  std::size_t reclaimed = 0;
  auto close_run = [&](char* run_end) {
    if (pending_run_start_ == nullptr) return;
    const auto run = static_cast<std::size_t>(run_end - pending_run_start_);
    insert_locked(pending_run_start_, run);
    if (run / kWordSize >= kMinChunkWords)
      free_bytes_.fetch_add(run, std::memory_order_acq_rel);
    pending_run_start_ = nullptr;
  };
  while (sweep_cursor_ < end_ && processed < max_cells) {
    auto* cell = reinterpret_cast<Obj*>(sweep_cursor_);
    char* const cell_end = cell->end();
    if (cell->is_free_chunk()) {
      // Absorb into the current run; eagerly unlink so the bins never hold
      // a chunk whose memory was coalesced into a larger one.
      unlink_locked(cell);
      free_bytes_.fetch_sub(cell->size_bytes(), std::memory_order_acq_rel);
      if (pending_run_start_ == nullptr) pending_run_start_ = cell->start();
    } else if (live_bits_ != nullptr && live_bits_->is_marked(cell)) {
      close_run(cell->start());
    } else {
      // Dead object, filler, or abandoned copy.
      reclaimed += cell->size_bytes();
      if (pending_run_start_ == nullptr) pending_run_start_ = cell->start();
    }
    sweep_cursor_ = cell_end;
    ++processed;
  }
  if (sweep_cursor_ >= end_) close_run(end_);
  if (reclaimed_bytes != nullptr) *reclaimed_bytes = reclaimed;
  return sweep_cursor_ < end_;
}

void FreeListSpace::abort_sweep() {
  SpinLockGuard g(lock_);
  pending_run_start_ = nullptr;
  sweep_cursor_ = end_;
  sweeping_.store(false, std::memory_order_release);
}

void FreeListSpace::end_sweep() {
  SpinLockGuard g(lock_);
  MGC_CHECK(sweep_cursor_ == end_);
  MGC_CHECK(pending_run_start_ == nullptr);
  sweeping_.store(false, std::memory_order_release);
}

void FreeListSpace::reset_after_compact(char* new_top) {
  SpinLockGuard g(lock_);
  MGC_CHECK(!sweeping_.load(std::memory_order_relaxed));
  bins_.exact.assign(bins_.exact.size(), nullptr);
  bins_.dict.clear();
  free_bytes_.store(0, std::memory_order_release);
  const auto tail = static_cast<std::size_t>(end_ - new_top);
  if (tail == 0) return;
  insert_locked(new_top, tail);
  if (tail / kWordSize >= kMinChunkWords)
    free_bytes_.store(tail, std::memory_order_release);
}

std::size_t FreeListSpace::verify_integrity(std::vector<std::string>& problems,
                                            std::size_t max_problems) const {
  SpinLockGuard g(lock_);
  auto report = [&](const char* what, const void* at) {
    if (problems.size() >= max_problems) return;
    std::ostringstream oss;
    oss << name_ << ": " << what << " at " << at;
    problems.push_back(oss.str());
  };

  std::unordered_set<const Obj*> linked;
  std::size_t linked_bytes = 0;
  const std::size_t max_chunks = capacity() / words_to_bytes(kMinChunkWords);
  auto check_chain = [&](Obj* head, std::size_t expected_words) {
    Obj* prev = nullptr;
    for (Obj* c = head; c != nullptr; c = next_of(c)) {
      if (!linked.insert(c).second) {
        report("free chunk linked twice (chain cycle or shared node)", c);
        return;
      }
      if (linked.size() > max_chunks) {
        report("free-list chain longer than the space can hold", c);
        return;
      }
      if (!contains(c) || c->start() + words_to_bytes(expected_words) > end_) {
        report("linked free chunk outside the space", c);
        return;
      }
      if (!c->is_free_chunk()) report("linked chunk missing the free flag", c);
      if (c->size_words() != expected_words)
        report("free chunk in the wrong size-class bin", c);
      if (prev_of(c) != prev) report("free chunk with a broken prev link", c);
      linked_bytes += words_to_bytes(expected_words);
      prev = c;
    }
  };

  for (std::size_t idx = 0; idx < bins_.exact.size(); ++idx)
    check_chain(bins_.exact[idx], kMinChunkWords + 2 * idx);
  for (const auto& [words, head] : bins_.dict) {
    if (head == nullptr) {
      report("empty chain left in the ordered dictionary",
             reinterpret_cast<const void*>(words));
      continue;
    }
    if (words <= kMaxExactWords)
      report("exact-size chunk filed in the ordered dictionary", head);
    check_chain(head, words);
  }

  if (linked_bytes != free_bytes()) {
    std::ostringstream oss;
    oss << name_ << ": free-byte accounting mismatch (bins hold "
        << linked_bytes << ", counter says " << free_bytes() << ")";
    if (problems.size() < max_problems) problems.push_back(oss.str());
  }

  // A mid-flight sweep legitimately holds unlinked free chunks in its
  // pending coalescing run, so the space walk only applies when quiescent.
  if (!sweep_in_progress()) {
    char* cur = base_;
    while (cur < end_) {
      auto* o = reinterpret_cast<Obj*>(cur);
      const std::size_t words = o->size_words();
      if (words < kMinObjWords ||
          words_to_bytes(words) > static_cast<std::size_t>(end_ - cur)) {
        report("unparsable cell stops the free-list space walk", o);
        break;
      }
      if (o->is_free_chunk() && linked.count(o) == 0)
        report("in-space free chunk not linked in any bin", o);
      cur = o->end();
    }
  }
  return linked.size();
}

std::size_t FreeListSpace::largest_free_chunk() const {
  SpinLockGuard g(lock_);
  if (!bins_.dict.empty()) {
    return words_to_bytes(bins_.dict.rbegin()->first);
  }
  for (std::size_t idx = bins_.exact.size(); idx-- > 0;) {
    if (bins_.exact[idx] != nullptr)
      return words_to_bytes(kMinChunkWords + 2 * idx);
  }
  return 0;
}

}  // namespace mgc
