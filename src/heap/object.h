// The managed object model.
//
// Every heap cell starts with a 16-byte header followed by `num_refs`
// reference slots (atomic object pointers — mutators and concurrent marking
// may race on them) and then raw payload words:
//
//   +----------------+-------------------+----------------------+
//   | ObjHeader 16 B | refs[num_refs]    | payload words        |
//   +----------------+-------------------+----------------------+
//
// The header carries the object size (making every space linearly
// parsable), the reference count, the GC age (tenuring), atomic flag bits
// (mark bit for tracing collectors, free-chunk bit for the CMS free-list
// space, dead-copy bit for abandoned racing copies) and a forwarding
// pointer used by copying and compacting phases.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>

#include "heap/layout.h"
#include "support/check.h"

namespace mgc {

class Obj;
using RefSlot = std::atomic<Obj*>;

namespace objflag {
inline constexpr std::uint8_t kMarked = 1u << 0;    // live per current trace
inline constexpr std::uint8_t kFreeChunk = 1u << 1; // CMS free-list chunk, not an object
inline constexpr std::uint8_t kDeadCopy = 1u << 2;  // abandoned duplicate from a copy race
inline constexpr std::uint8_t kHumongous = 1u << 3; // G1 humongous allocation
inline constexpr std::uint8_t kFiller = 1u << 4;    // heap filler (retired TLAB/PLAB tail)
}  // namespace objflag

struct ObjHeader {
  std::uint32_t size_words;  // total cell size in words, header included
  std::uint16_t num_refs;
  std::uint8_t age;
  std::atomic<std::uint8_t> flags;
  std::atomic<Obj*> forward;
};
static_assert(sizeof(ObjHeader) == 16, "header must stay 2 words");

inline constexpr std::size_t kHeaderWords = sizeof(ObjHeader) / kWordSize;
inline constexpr std::size_t kMinObjWords = kHeaderWords;

// An Obj* points at its header. The class has no data members of its own;
// it is a typed view over heap memory.
class Obj {
 public:
  ObjHeader& header() { return *reinterpret_cast<ObjHeader*>(this); }
  const ObjHeader& header() const {
    return *reinterpret_cast<const ObjHeader*>(this);
  }

  // Size and ref-count reads go through atomic_ref: heap walkers (card
  // scanning, sweeping) race with in-place cell rewrites (chunk splitting,
  // promotion); the write protocols guarantee every observable field
  // combination is parsable, but the individual accesses must not tear.
  std::size_t size_words() const {
    return std::atomic_ref<std::uint32_t>(
               const_cast<ObjHeader&>(header()).size_words)
        .load(std::memory_order_acquire);
  }
  std::size_t size_bytes() const { return words_to_bytes(size_words()); }
  std::uint16_t num_refs() const {
    return std::atomic_ref<std::uint16_t>(
               const_cast<ObjHeader&>(header()).num_refs)
        .load(std::memory_order_acquire);
  }
  std::uint8_t age() const { return header().age; }

  void set_size_words_atomic(std::uint32_t words) {
    std::atomic_ref<std::uint32_t>(header().size_words)
        .store(words, std::memory_order_release);
  }
  void set_num_refs_atomic(std::uint16_t n) {
    std::atomic_ref<std::uint16_t>(header().num_refs)
        .store(n, std::memory_order_release);
  }

  char* start() { return reinterpret_cast<char*>(this); }
  const char* start() const { return reinterpret_cast<const char*>(this); }
  char* end() { return start() + size_bytes(); }
  Obj* next_in_space() { return reinterpret_cast<Obj*>(end()); }

  RefSlot* refs() {
    return reinterpret_cast<RefSlot*>(start() + sizeof(ObjHeader));
  }
  const RefSlot* refs() const {
    return reinterpret_cast<const RefSlot*>(start() + sizeof(ObjHeader));
  }

  Obj* ref(std::size_t i) const {
    MGC_DCHECK(i < num_refs());
    return refs()[i].load(std::memory_order_acquire);
  }
  // Raw slot store; write barriers live in the Mutator, not here.
  void set_ref_raw(std::size_t i, Obj* v) {
    MGC_DCHECK(i < num_refs());
    refs()[i].store(v, std::memory_order_release);
  }

  word_t* payload() {
    return reinterpret_cast<word_t*>(start() + sizeof(ObjHeader) +
                                     num_refs() * sizeof(RefSlot));
  }
  const word_t* payload() const {
    return const_cast<Obj*>(this)->payload();
  }
  std::size_t payload_words() const {
    return size_words() - kHeaderWords - num_refs();
  }

  word_t field(std::size_t i) const {
    MGC_DCHECK(i < payload_words());
    return payload()[i];
  }
  void set_field(std::size_t i, word_t v) {
    MGC_DCHECK(i < payload_words());
    payload()[i] = v;
  }

  // --- flag bits ---------------------------------------------------------
  std::uint8_t flags() const {
    return header().flags.load(std::memory_order_acquire);
  }
  bool is_marked() const { return flags() & objflag::kMarked; }
  bool is_free_chunk() const { return flags() & objflag::kFreeChunk; }
  bool is_humongous() const { return flags() & objflag::kHumongous; }
  bool is_filler() const {
    return flags() & (objflag::kFiller | objflag::kDeadCopy);
  }

  // Atomically sets the mark bit; returns true if this call won the race
  // (i.e. the object was previously unmarked). Parallel markers use this
  // to claim objects exactly once.
  bool try_mark() {
    std::uint8_t old = header().flags.load(std::memory_order_relaxed);
    do {
      if (old & objflag::kMarked) return false;
    } while (!header().flags.compare_exchange_weak(
        old, old | objflag::kMarked, std::memory_order_acq_rel,
        std::memory_order_relaxed));
    return true;
  }
  void clear_mark() {
    header().flags.fetch_and(static_cast<std::uint8_t>(~objflag::kMarked),
                             std::memory_order_acq_rel);
  }
  void set_flag(std::uint8_t f) {
    header().flags.fetch_or(f, std::memory_order_acq_rel);
  }

  // --- forwarding --------------------------------------------------------
  Obj* forwardee() const {
    return header().forward.load(std::memory_order_acquire);
  }
  bool is_forwarded() const { return forwardee() != nullptr; }
  void set_forward(Obj* to) {
    header().forward.store(to, std::memory_order_release);
  }
  // Returns the winning forwardee: `to` if this call installed it, the
  // previously installed pointer otherwise.
  Obj* forward_atomic(Obj* to) {
    Obj* expected = nullptr;
    if (header().forward.compare_exchange_strong(expected, to,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
      return to;
    }
    return expected;
  }

  // Initializes a header in raw memory and zero-fills ref slots.
  static Obj* init(void* mem, std::size_t size_words, std::uint16_t num_refs);
  // Initializes a non-reference "filler" cell covering `size_words`.
  static Obj* init_filler(void* mem, std::size_t size_words);

  // Total words needed for an object with the given shape.
  static std::size_t shape_words(std::uint16_t num_refs,
                                 std::size_t payload_words) {
    std::size_t w = kHeaderWords + num_refs + payload_words;
    return align_up(w, kObjAlignment / kWordSize);
  }
};

// A deterministic checksum of an object's identity (shape + payload), used
// by tests to verify that copying/compacting preserves contents.
std::uint64_t object_checksum(const Obj* o);

}  // namespace mgc
