// Bump-pointer space. Supports both a CAS-based shared allocation path
// (mutator slow path / parallel GC promotion) and an unsynchronized path
// for single-threaded collection phases. The space is always linearly
// parsable: every allocated cell carries a valid ObjHeader.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>

#include "heap/object.h"

namespace mgc {

class ContiguousSpace {
 public:
  ContiguousSpace() = default;
  void initialize(std::string name, char* base, std::size_t bytes);

  const std::string& name() const { return name_; }
  char* base() const { return base_; }
  char* end() const { return end_; }
  char* top() const { return top_.load(std::memory_order_acquire); }
  std::size_t capacity() const { return static_cast<std::size_t>(end_ - base_); }
  std::size_t used() const { return static_cast<std::size_t>(top() - base_); }
  std::size_t free_bytes() const { return static_cast<std::size_t>(end_ - top()); }

  bool contains(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= base_ && c < end_;
  }

  // Thread-safe bump allocation; returns nullptr when full.
  char* par_alloc(std::size_t bytes);
  // Unsynchronized bump allocation for serial GC phases.
  char* serial_alloc(std::size_t bytes);

  // Grows the space by `bytes`; the caller owns the backing memory beyond
  // the current end. Pause-time only: readers of end() must not race.
  void expand(std::size_t bytes) { end_ += bytes; }

  // Drops everything; debug/ASan builds zap the vacated range.
  void reset();
  // Used by compaction, which rebuilds the space contents in place. A
  // shrinking top zaps the dead tail [t, old_top).
  void set_top(char* t);

  // Walks every cell (objects, fillers, dead copies) in address order up to
  // the current top. Only safe when no concurrent allocation is happening
  // (inside a pause, or on a sweeping thread that tolerates a stale top).
  void walk(const std::function<void(Obj*)>& fn) const;

 private:
  std::string name_;
  char* base_ = nullptr;
  char* end_ = nullptr;
  std::atomic<char*> top_{nullptr};
};

}  // namespace mgc
