// Fundamental heap layout constants shared by all spaces and collectors.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mgc {

using word_t = std::uint64_t;
inline constexpr std::size_t kWordSize = sizeof(word_t);
inline constexpr std::size_t kObjAlignment = 16;  // header size; all objects 16B-aligned

// Card geometry (matches HotSpot: 512-byte cards).
inline constexpr std::size_t kCardShift = 9;
inline constexpr std::size_t kCardSize = std::size_t{1} << kCardShift;

inline constexpr std::size_t words_to_bytes(std::size_t words) {
  return words * kWordSize;
}
inline constexpr std::size_t bytes_to_words(std::size_t bytes) {
  return (bytes + kWordSize - 1) / kWordSize;
}

inline constexpr std::size_t align_up(std::size_t v, std::size_t alignment) {
  return (v + alignment - 1) & ~(alignment - 1);
}

inline char* align_up_ptr(char* p, std::size_t alignment) {
  return reinterpret_cast<char*>(
      align_up(reinterpret_cast<std::size_t>(p), alignment));
}

}  // namespace mgc
