#include "heap/arena.h"

#include "support/check.h"

namespace mgc {

Arena::Arena(std::size_t bytes) {
  MGC_CHECK(bytes >= kObjAlignment);
  size_ = align_up(bytes, kObjAlignment);
  // Over-allocate to guarantee object alignment of the base address.
  storage_ = std::make_unique<char[]>(size_ + kObjAlignment);
  base_ = align_up_ptr(storage_.get(), kObjAlignment);
}

}  // namespace mgc
