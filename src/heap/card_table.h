// Card-marking table over the whole heap reservation. One byte per
// 512-byte card; the mutator write barrier dirties the card of the updated
// reference slot. Young collections scan dirty old-generation cards to find
// old->young references; the CMS remark phase rescans cards dirtied during
// concurrent marking (incremental-update barrier).
//
// Scanning is word-wise: the table is padded to a multiple of 8 cards and
// visitors load 8 card bytes per 64-bit load, skipping fully-clean words.
// At the dirty densities young collections see in practice (<< 5%), almost
// every word is zero, so the sweep runs at memory bandwidth instead of one
// atomic byte load per card. The `visit_dirty` template takes any callable
// (no `std::function` allocation on the pause critical path) and works on
// an explicit card-index range so parallel GC workers can claim fixed-size
// card strips directly.
//
// Memory-ordering contract
// ------------------------
//   * `dirty*` (mutator write barrier) uses release stores; scanners use
//     acquire loads (`is_dirty` / `needs_young_scan` / `visit_dirty`), so a
//     scanned card's slot contents are visible to the scanner.
//   * `clear_all` / `clear_range` use *release-store-once* semantics: the
//     individual card bytes are cleared with relaxed (word-wise) stores and
//     a single trailing release fence publishes the whole batch. They are
//     only called from stop-the-world phases or from the collector thread
//     that owns the subsequent rescan, so no reader re-checks a card while
//     a clear is in flight; readers that start after the fence (paired with
//     their acquire loads) observe every cleared byte.
//   * `try_preclean` is the only read-modify-write; it synchronizes with
//     racing barrier stores via acq_rel.
//
// A `ModUnionTable` accumulates cards that a young collection is about to
// clean while a CMS cycle is active, so remark information survives young
// collections (HotSpot's mod-union table).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "heap/layout.h"
#include "support/check.h"

namespace mgc {

class CardTable {
 public:
  static constexpr std::uint8_t kClean = 0;
  static constexpr std::uint8_t kDirty = 1;
  // CMS precleaning: the card's targets were marked concurrently; remark
  // may skip it unless the mutator re-dirtied it afterwards.
  static constexpr std::uint8_t kPrecleaned = 2;

  // Cards per word-wise scan step (one 64-bit load).
  static constexpr std::size_t kCardsPerWord = sizeof(std::uint64_t);

  void initialize(char* base, std::size_t bytes);

  std::size_t num_cards() const { return cards_.size(); }
  char* covered_base() const { return base_; }

  std::size_t index_of(const void* addr) const {
    const char* c = static_cast<const char*>(addr);
    MGC_DCHECK(c >= base_ && c < base_ + covered_bytes_);
    return static_cast<std::size_t>(c - base_) >> kCardShift;
  }
  char* card_base(std::size_t index) const {
    return base_ + (index << kCardShift);
  }
  char* card_end(std::size_t index) const { return card_base(index) + kCardSize; }

  void dirty(const void* addr) {
    cards_[index_of(addr)].store(kDirty, std::memory_order_release);
  }
  void dirty_index(std::size_t index) {
    cards_[index].store(kDirty, std::memory_order_release);
  }
  void dirty_range(const void* from, const void* to);

  bool is_dirty(std::size_t index) const {
    return cards_[index].load(std::memory_order_acquire) == kDirty;
  }
  // Dirty OR precleaned: cards the generational young-GC scan must visit.
  bool needs_young_scan(std::size_t index) const {
    return cards_[index].load(std::memory_order_acquire) != kClean;
  }
  // Preclean transition: only succeeds if the card is still kDirty (a
  // concurrent barrier write may race and re-dirty afterwards, which is
  // exactly what remark looks for).
  bool try_preclean(std::size_t index) {
    std::uint8_t expected = kDirty;
    return cards_[index].compare_exchange_strong(expected, kPrecleaned,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed);
  }
  void clear_index(std::size_t index) {
    cards_[index].store(kClean, std::memory_order_release);
  }
  void clear_all();
  void clear_range(const void* from, const void* to);

  // Word-wise visitor: invokes fn(card_index) for every card in the card
  // *index* range [first, last) needing a young-GC scan (dirty or
  // precleaned). Does not clear. Eight cards are inspected per 64-bit load;
  // fully clean words cost one load total. Safe to run from several GC
  // workers concurrently over disjoint (or even overlapping, since it only
  // reads) ranges.
  template <typename Visitor>
  void visit_dirty(std::size_t first, std::size_t last, Visitor&& fn) const {
    MGC_DCHECK(last <= cards_.size());
    std::size_t i = first;
    if (i >= last) return;
    // Leading partial word.
    const std::size_t lead_end =
        std::min(last, align_up(i + 1, kCardsPerWord));
    for (; i < lead_end && (i % kCardsPerWord) != 0; ++i) {
      if (needs_young_scan(i)) fn(i);
    }
    // Full words: skip clean ones with a single load. For nonzero words the
    // dirty cards are extracted from the loaded value itself (lowest nonzero
    // byte first via countr_zero) — no per-card re-load, no 8-iteration
    // inner loop. The word's acquire load provides the ordering the per-card
    // acquire loads used to.
    while (i + kCardsPerWord <= last) {
      std::uint64_t w = load_word(i / kCardsPerWord);
      if (w != 0) {
        if constexpr (std::endian::native == std::endian::little) {
          do {
            const int k = std::countr_zero(w) >> 3;  // lowest nonzero byte
            fn(i + static_cast<std::size_t>(k));
            w &= ~(std::uint64_t{0xff} << (k * 8));
          } while (w != 0);
        } else {
          for (std::size_t j = i; j < i + kCardsPerWord; ++j) {
            if (needs_young_scan(j)) fn(j);
          }
        }
      }
      i += kCardsPerWord;
    }
    // Trailing partial word.
    for (; i < last; ++i) {
      if (needs_young_scan(i)) fn(i);
    }
  }

  // Address-window form of visit_dirty: visits every card whose base lies
  // in [from, to).
  template <typename Visitor>
  void for_each_dirty(const void* from, const void* to, Visitor&& fn) const {
    if (from >= to) return;
    const std::size_t first = index_of(from);
    const std::size_t last = index_of(static_cast<const char*>(to) - 1) + 1;
    visit_dirty(first, last, static_cast<Visitor&&>(fn));
  }

  std::size_t count_dirty(const void* from, const void* to) const;

 private:
  // One 64-bit acquire load covering cards [8w, 8w+8). The card bytes are
  // individually atomic; the word view is the C++20 atomic_ref over the
  // same (suitably aligned, padded) storage — the idiom HotSpot's card
  // scanners use, expressible without UB-prone plain aliasing.
  std::uint64_t load_word(std::size_t word_index) const {
    auto* bytes = reinterpret_cast<std::uint64_t*>(
        const_cast<std::atomic<std::uint8_t>*>(cards_.data()) +
        word_index * kCardsPerWord);
    return std::atomic_ref<std::uint64_t>(*bytes).load(
        std::memory_order_acquire);
  }
  void store_word_relaxed(std::size_t word_index, std::uint64_t value) {
    auto* bytes = reinterpret_cast<std::uint64_t*>(cards_.data() +
                                                   word_index * kCardsPerWord);
    std::atomic_ref<std::uint64_t>(*bytes).store(value,
                                                 std::memory_order_relaxed);
  }
  // Relaxed per-card/word stores over the inclusive card range; callers add
  // the single trailing release fence (see the ordering contract above).
  void clear_span_relaxed(std::size_t first, std::size_t last_inclusive);

  char* base_ = nullptr;
  std::size_t covered_bytes_ = 0;
  std::vector<std::atomic<std::uint8_t>> cards_;
};

// One bit of state per card, OR-accumulated across young collections while
// a concurrent old-generation cycle runs.
class ModUnionTable {
 public:
  void initialize(std::size_t num_cards) {
    bits_.assign(align_up(num_cards, kWordBytes), 0);
  }
  void clear() { std::fill(bits_.begin(), bits_.end(), 0); }
  void record(std::size_t card_index) { bits_[card_index] = 1; }
  bool is_set(std::size_t card_index) const { return bits_[card_index] != 0; }

  // Word-wise sweep over the recorded cards, mirroring
  // CardTable::visit_dirty. Single-threaded use only (remark pause).
  template <typename Visitor>
  void for_each_set(Visitor&& fn) const {
    for (std::size_t i = 0; i < bits_.size(); i += kWordBytes) {
      std::uint64_t w;
      std::memcpy(&w, bits_.data() + i, sizeof(w));
      if (w == 0) continue;
      for (std::size_t j = i; j < i + kWordBytes; ++j) {
        if (bits_[j] != 0) fn(j);
      }
    }
  }

 private:
  static constexpr std::size_t kWordBytes = sizeof(std::uint64_t);
  std::vector<std::uint8_t> bits_;
};

}  // namespace mgc
