// Card-marking table over the whole heap reservation. One byte per
// 512-byte card; the mutator write barrier dirties the card of the updated
// reference slot. Young collections scan dirty old-generation cards to find
// old->young references; the CMS remark phase rescans cards dirtied during
// concurrent marking (incremental-update barrier).
//
// A `ModUnionTable` accumulates cards that a young collection is about to
// clean while a CMS cycle is active, so remark information survives young
// collections (HotSpot's mod-union table).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "heap/layout.h"
#include "support/check.h"

namespace mgc {

class CardTable {
 public:
  static constexpr std::uint8_t kClean = 0;
  static constexpr std::uint8_t kDirty = 1;
  // CMS precleaning: the card's targets were marked concurrently; remark
  // may skip it unless the mutator re-dirtied it afterwards.
  static constexpr std::uint8_t kPrecleaned = 2;

  void initialize(char* base, std::size_t bytes);

  std::size_t num_cards() const { return cards_.size(); }
  char* covered_base() const { return base_; }

  std::size_t index_of(const void* addr) const {
    const char* c = static_cast<const char*>(addr);
    MGC_DCHECK(c >= base_ && c < base_ + covered_bytes_);
    return static_cast<std::size_t>(c - base_) >> kCardShift;
  }
  char* card_base(std::size_t index) const {
    return base_ + (index << kCardShift);
  }
  char* card_end(std::size_t index) const { return card_base(index) + kCardSize; }

  void dirty(const void* addr) {
    cards_[index_of(addr)].store(kDirty, std::memory_order_release);
  }
  void dirty_index(std::size_t index) {
    cards_[index].store(kDirty, std::memory_order_release);
  }
  void dirty_range(const void* from, const void* to);

  bool is_dirty(std::size_t index) const {
    return cards_[index].load(std::memory_order_acquire) == kDirty;
  }
  // Dirty OR precleaned: cards the generational young-GC scan must visit.
  bool needs_young_scan(std::size_t index) const {
    return cards_[index].load(std::memory_order_acquire) != kClean;
  }
  // Preclean transition: only succeeds if the card is still kDirty (a
  // concurrent barrier write may race and re-dirty afterwards, which is
  // exactly what remark looks for).
  bool try_preclean(std::size_t index) {
    std::uint8_t expected = kDirty;
    return cards_[index].compare_exchange_strong(expected, kPrecleaned,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_relaxed);
  }
  void clear_index(std::size_t index) {
    cards_[index].store(kClean, std::memory_order_release);
  }
  void clear_all();
  void clear_range(const void* from, const void* to);

  // Invokes fn(card_index) for every card needing a young-GC scan (dirty
  // or precleaned) whose base lies in [from, to). Does not clear.
  void for_each_dirty(const void* from, const void* to,
                      const std::function<void(std::size_t)>& fn) const;

  std::size_t count_dirty(const void* from, const void* to) const;

 private:
  char* base_ = nullptr;
  std::size_t covered_bytes_ = 0;
  std::vector<std::atomic<std::uint8_t>> cards_;
};

// One bit of state per card, OR-accumulated across young collections while
// a concurrent old-generation cycle runs.
class ModUnionTable {
 public:
  void initialize(std::size_t num_cards) { bits_.assign(num_cards, 0); }
  void clear() { std::fill(bits_.begin(), bits_.end(), 0); }
  void record(std::size_t card_index) { bits_[card_index] = 1; }
  bool is_set(std::size_t card_index) const { return bits_[card_index] != 0; }

 private:
  std::vector<std::uint8_t> bits_;
};

}  // namespace mgc
