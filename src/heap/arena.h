// Backing storage for the managed heap: one aligned, contiguous reservation
// carved up by the collector into spaces or regions.
#pragma once

#include <cstddef>
#include <memory>

#include "heap/layout.h"

namespace mgc {

class Arena {
 public:
  explicit Arena(std::size_t bytes);

  char* base() const { return base_; }
  char* end() const { return base_ + size_; }
  std::size_t size() const { return size_; }
  bool contains(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= base_ && c < end();
  }

 private:
  std::size_t size_;
  std::unique_ptr<char[]> storage_;
  char* base_;
};

}  // namespace mgc
