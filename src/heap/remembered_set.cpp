#include "heap/remembered_set.h"

#include <mutex>

namespace mgc {

void RememberedSet::add_card(std::uint32_t card_index) {
  SpinLockGuard g(lock_);
  cards_.insert(card_index);
}

bool RememberedSet::contains(std::uint32_t card_index) const {
  SpinLockGuard g(lock_);
  return cards_.count(card_index) != 0;
}

void RememberedSet::clear() {
  SpinLockGuard g(lock_);
  cards_.clear();
}

std::size_t RememberedSet::size() const {
  SpinLockGuard g(lock_);
  return cards_.size();
}

std::vector<std::uint32_t> RememberedSet::snapshot() const {
  SpinLockGuard g(lock_);
  return std::vector<std::uint32_t>(cards_.begin(), cards_.end());
}

}  // namespace mgc
