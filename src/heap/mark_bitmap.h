// Side mark bitmap for concurrent collectors (CMS, G1): one bit per 16
// bytes of covered heap. Kept outside object headers so a whole cycle's
// marks can be dropped with one memset at cycle start, and so marking
// state survives arbitrary interleavings with allocation (allocate-black)
// without dirtying object headers.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <vector>

#include "heap/layout.h"
#include "support/check.h"

namespace mgc {

class MarkBitmap {
 public:
  void initialize(char* base, std::size_t bytes) {
    base_ = base;
    covered_bytes_ = bytes;
    bits_.assign((bytes / kObjAlignment + 63) / 64, 0);
  }

  void clear_all() {
    // Only called inside a pause (initial mark); plain stores suffice, the
    // safepoint protocol publishes them.
    std::memset(bits_.data(), 0, bits_.size() * sizeof(std::uint64_t));
    std::atomic_thread_fence(std::memory_order_release);
  }

  bool is_marked(const void* addr) const {
    const std::size_t bit = bit_index(addr);
    const auto word = reinterpret_cast<const std::atomic<std::uint64_t>*>(
                          &bits_[bit / 64])
                          ->load(std::memory_order_acquire);
    return (word >> (bit % 64)) & 1;
  }

  // Atomically sets the bit; returns true if this call set it (claiming the
  // object for exactly one marker).
  bool try_mark(const void* addr) {
    const std::size_t bit = bit_index(addr);
    const std::uint64_t mask = std::uint64_t{1} << (bit % 64);
    auto* word =
        reinterpret_cast<std::atomic<std::uint64_t>*>(&bits_[bit / 64]);
    const std::uint64_t old = word->fetch_or(mask, std::memory_order_acq_rel);
    return (old & mask) == 0;
  }

  void mark(const void* addr) { (void)try_mark(addr); }

  bool covers(const void* addr) const {
    const char* c = static_cast<const char*>(addr);
    return c >= base_ && c < base_ + covered_bytes_;
  }

 private:
  std::size_t bit_index(const void* addr) const {
    const char* c = static_cast<const char*>(addr);
    MGC_DCHECK(covers(addr));
    return static_cast<std::size_t>(c - base_) / kObjAlignment;
  }

  char* base_ = nullptr;
  std::size_t covered_bytes_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace mgc
