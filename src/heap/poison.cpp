#include "heap/poison.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if MGC_ASAN
#include <sanitizer/asan_interface.h>
#endif

namespace mgc::poison {
namespace {

bool initial_enabled() {
  // Read once, from the first poison call, behind a function-local static.
  if (const char* env = std::getenv("MGC_HEAP_POISON")) {  // NOLINT(concurrency-mt-unsafe)
    return env[0] != '0';
  }
#if MGC_ASAN
  return true;
#elif defined(NDEBUG)
  return false;
#else
  return true;
#endif
}

std::atomic<bool>& flag() {
  static std::atomic<bool> f{initial_enabled()};
  return f;
}

}  // namespace

bool enabled() { return flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) { flag().store(on, std::memory_order_relaxed); }

void zap_and_poison(void* p, std::size_t n, unsigned char pattern) {
  if (n == 0 || !enabled()) return;
#if MGC_ASAN
  // The range may contain already-poisoned stretches (e.g. retired TLAB
  // tails inside a young space being reset); lift the poison before the
  // pattern write, then re-cover the whole range.
  ASAN_UNPOISON_MEMORY_REGION(p, n);
#endif
  std::memset(p, pattern, n);
#if MGC_ASAN
  ASAN_POISON_MEMORY_REGION(p, n);
#endif
}

void poison(void* p, std::size_t n) {
  if (n == 0 || !enabled()) return;
#if MGC_ASAN
  ASAN_POISON_MEMORY_REGION(p, n);
#else
  (void)p;
#endif
}

void unpoison(void* p, std::size_t n) {
#if MGC_ASAN
  if (n != 0) ASAN_UNPOISON_MEMORY_REGION(p, n);
#else
  (void)p;
  (void)n;
#endif
}

bool check_zapped(const void* p, std::size_t n, unsigned char pattern) {
#if MGC_ASAN
  ASAN_UNPOISON_MEMORY_REGION(const_cast<void*>(p), n);
#endif
  const auto* c = static_cast<const unsigned char*>(p);
  for (std::size_t i = 0; i < n; ++i) {
    if (c[i] != pattern) return false;
  }
  return true;
}

}  // namespace mgc::poison
