#include "heap/region.h"

#include <bit>
#include <mutex>

#include "heap/poison.h"
#include "support/check.h"

namespace mgc {

const char* region_type_name(RegionType t) {
  switch (t) {
    case RegionType::kFree: return "free";
    case RegionType::kEden: return "eden";
    case RegionType::kSurvivor: return "survivor";
    case RegionType::kOld: return "old";
    case RegionType::kHumongousHead: return "humongous";
    case RegionType::kHumongousCont: return "humongous-cont";
  }
  return "?";
}

void Region::walk(const std::function<void(Obj*)>& fn) const {
  char* cur = base;
  char* const limit = top();
  while (cur < limit) {
    auto* o = reinterpret_cast<Obj*>(cur);
    MGC_CHECK_MSG(o->size_words() >= kMinObjWords, "region not parsable");
    fn(o);
    cur = o->end();
  }
}

void Region::reset_for_reuse() {
  // Zap what was allocated, then poison the whole region until it is handed
  // out again (the unused tail lost its poison when the region was
  // allocated).
  poison::zap_and_poison(base, used(), poison::kRegionZap);
  poison::poison(base, capacity());
  set_type(RegionType::kFree);
  set_top(base);
  set_tams(base);
  live_bytes.store(0, std::memory_order_relaxed);
  evac_failed.store(false, std::memory_order_relaxed);
  in_cset.store(false, std::memory_order_relaxed);
  rset.clear();
  humongous_head = nullptr;
}

void RegionManager::initialize(char* base, std::size_t bytes,
                               std::size_t region_bytes) {
  MGC_CHECK(std::has_single_bit(region_bytes));
  MGC_CHECK(bytes >= region_bytes);
  base_ = base;
  region_bytes_ = region_bytes;
  shift_ = static_cast<unsigned>(std::countr_zero(region_bytes));
  const std::size_t n = bytes / region_bytes;
  covered_bytes_ = n * region_bytes;
  regions_ = std::vector<Region>(n);
  free_list_.clear();
  free_list_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Region& r = regions_[i];
    r.index = static_cast<std::uint32_t>(i);
    r.base = base_ + i * region_bytes;
    r.end = r.base + region_bytes;
    r.set_top(r.base);
    r.set_tams(r.base);
  }
  // LIFO pop from the back; push low indices last so allocation prefers
  // low addresses (keeps the heap compact-ish, like HotSpot).
  for (std::size_t i = n; i-- > 0;)
    free_list_.push_back(static_cast<std::uint32_t>(i));
  poison::poison(base_, covered_bytes_);
}

Region* RegionManager::allocate_region(RegionType type) {
  MGC_CHECK(type != RegionType::kFree);
  SpinLockGuard g(free_lock_);
  if (free_list_.empty()) return nullptr;
  Region& r = regions_[free_list_.back()];
  free_list_.pop_back();
  MGC_DCHECK(r.is_free());
  r.set_type(type);
  poison::unpoison(r.base, r.capacity());
  return &r;
}

Region* RegionManager::allocate_humongous(std::size_t count) {
  MGC_CHECK(count >= 1);
  SpinLockGuard g(free_lock_);
  // Find `count` physically contiguous free regions (linear scan; humongous
  // allocation is rare).
  std::size_t run = 0;
  std::size_t run_start = 0;
  for (std::size_t i = 0; i < regions_.size(); ++i) {
    if (regions_[i].is_free()) {
      if (run == 0) run_start = i;
      if (++run == count) {
        for (std::size_t j = run_start; j <= i; ++j) {
          regions_[j].set_type(j == run_start ? RegionType::kHumongousHead
                                              : RegionType::kHumongousCont);
          regions_[j].humongous_head = &regions_[run_start];
          std::erase(free_list_, static_cast<std::uint32_t>(j));
          poison::unpoison(regions_[j].base, regions_[j].capacity());
        }
        return &regions_[run_start];
      }
    } else {
      run = 0;
    }
  }
  return nullptr;
}

void RegionManager::free_region(Region* r) {
  MGC_CHECK(r != nullptr && !r->is_free());
  r->reset_for_reuse();
  SpinLockGuard g(free_lock_);
  free_list_.push_back(r->index);
}

std::size_t RegionManager::free_region_count() const {
  SpinLockGuard g(free_lock_);
  return free_list_.size();
}

std::size_t RegionManager::count_of(RegionType t) const {
  std::size_t n = 0;
  for (const Region& r : regions_) {
    if (r.type() == t) ++n;
  }
  return n;
}

void RegionManager::for_each_region(const std::function<void(Region&)>& fn) {
  for (Region& r : regions_) fn(r);
}

void RegionManager::rebuild(const std::function<bool(Region&)>& keep) {
  SpinLockGuard g(free_lock_);
  free_list_.clear();
  for (std::size_t i = regions_.size(); i-- > 0;) {
    Region& r = regions_[i];
    if (!keep(r)) {
      r.reset_for_reuse();
      free_list_.push_back(r.index);
    }
  }
}

}  // namespace mgc
