// Free-list old-generation space for the ConcurrentMarkSweep collector.
//
// The space is linearly parsable: every cell is either a live/dead object,
// a filler, or a free chunk. A free chunk is an ObjHeader with the
// kFreeChunk flag whose `forward` field is the next-link and whose first
// payload word is the prev-link of a doubly-linked size-class chain. The
// minimum linkable chunk is therefore 4 words; 2-word holes become filler
// cells ("dark matter", as in HotSpot) and are reclaimed when a later sweep
// coalesces them with a dying neighbour.
//
// Chunks live in segregated exact-size bins for small sizes plus a best-fit
// ordered dictionary for large ones. Sweeping is concurrent with mutator
// allocation and proceeds in address order in small lock-protected batches:
// dead cells and absorbed free chunks (eagerly unlinked from their bins)
// coalesce into maximal runs that are reinserted immediately, so memory
// becomes allocatable as the sweep advances.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "heap/block_offset_table.h"
#include "heap/mark_bitmap.h"
#include "heap/object.h"
#include "support/spinlock.h"

namespace mgc {

class FreeListSpace {
 public:
  static constexpr std::size_t kMaxExactWords = 64;
  static constexpr std::size_t kMinChunkWords = 4;  // below this: dark matter

  void initialize(std::string name, char* base, std::size_t bytes,
                  BlockOffsetTable* bot);

  const std::string& name() const { return name_; }
  char* base() const { return base_; }
  char* end() const { return end_; }
  std::size_t capacity() const { return static_cast<std::size_t>(end_ - base_); }
  std::size_t used() const {
    return capacity() - free_bytes_.load(std::memory_order_acquire);
  }
  std::size_t free_bytes() const {
    return free_bytes_.load(std::memory_order_acquire);
  }
  double occupancy() const {
    return static_cast<double>(used()) / static_cast<double>(capacity());
  }
  bool contains(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= base_ && c < end_;
  }

  // Allocates `bytes` (object-aligned) and installs a provisional black
  // (marked) zero-ref cell so the space stays parsable and a concurrent
  // sweep cannot reclaim it before the caller initializes the real object.
  // Pause-time callers (promotion, compaction) may overwrite the cell
  // freely. Returns nullptr when no chunk fits.
  char* alloc(std::size_t bytes);

  // Allocates and fully initializes an object under the space lock —
  // required for allocations racing a concurrent sweep (mutator-time large
  // object allocation). `black` marks the object live for an in-progress
  // mark/sweep cycle.
  Obj* alloc_obj(std::size_t size_words, std::uint16_t num_refs, bool black);

  // Inserts [start, start+bytes) as free. Small remainders become fillers.
  void free_chunk(char* start, std::size_t bytes);

  // Grows the space by `bytes` past the current end (caller owns the
  // backing memory) and inserts the new range as one free chunk.
  // Pause-time only: readers of end() must not race the update.
  void expand(std::size_t bytes);

  // Walks all cells in address order. Only valid inside a pause.
  void walk(const std::function<void(Obj*)>& fn) const;

  // --- concurrent sweep ---------------------------------------------------
  void begin_sweep();
  // Processes up to `max_cells` cells; returns false once the space end is
  // reached. `reclaimed_bytes` (optional) reports newly freed bytes.
  bool sweep_step(std::size_t max_cells, std::size_t* reclaimed_bytes);
  void end_sweep();
  // Abandons an in-progress sweep (full-collection fallback); the caller
  // must rebuild the space via reset_after_compact afterwards.
  void abort_sweep();
  bool sweep_in_progress() const {
    return sweeping_.load(std::memory_order_acquire);
  }

  // After a stop-the-world compaction packed live objects into
  // [base, new_top), rebuild the free metadata as one tail chunk.
  void reset_after_compact(char* new_top);

  // Concurrent-cycle liveness plumbing. The CMS collector installs its side
  // mark bitmap; while `allocate_black` is on, every allocation is marked
  // live in it (so objects born during a cycle survive the sweep). The
  // sweep consults the same bitmap.
  void set_live_bitmap(MarkBitmap* bm) { live_bits_ = bm; }
  void set_allocate_black(bool on) {
    allocate_black_.store(on, std::memory_order_release);
  }

  // Largest currently available chunk, in bytes (fragmentation metric).
  std::size_t largest_free_chunk() const;

  // Safepoint-time consistency check of the free-list metadata: chunk
  // containment and flags, bin size-class membership, doubly-linked chain
  // consistency, byte accounting against free_bytes(), and (when no sweep
  // is mid-flight) that every in-space free chunk is linked in some bin.
  // Appends findings to `problems` (up to `max_problems` entries total) and
  // returns the number of linked chunks examined.
  std::size_t verify_integrity(std::vector<std::string>& problems,
                               std::size_t max_problems) const;

 private:
  struct Bins {
    std::vector<Obj*> exact;
    std::map<std::size_t, Obj*> dict;
  };

  static std::size_t exact_index(std::size_t words) {
    return (words - kMinChunkWords) / 2;
  }

  Obj*& head_for(std::size_t words);
  void insert_locked(char* start, std::size_t bytes);
  void unlink_locked(Obj* chunk);
  char* pop_fit_locked(std::size_t words);
  Obj* make_chunk(char* start, std::size_t bytes);

  std::string name_;
  char* base_ = nullptr;
  char* end_ = nullptr;
  BlockOffsetTable* bot_ = nullptr;

  mutable SpinLock lock_{LockRank::kFreeListSpace, "free-list-space"};
  Bins bins_ MGC_GUARDED_BY(lock_);
  std::atomic<std::size_t> free_bytes_{0};

  std::atomic<bool> sweeping_{false};
  char* sweep_cursor_ = nullptr;
  char* pending_run_start_ = nullptr;

  MarkBitmap* live_bits_ = nullptr;
  std::atomic<bool> allocate_black_{false};
};

}  // namespace mgc
