#include "heap/card_table.h"

#include "support/check.h"

namespace mgc {

void CardTable::initialize(char* base, std::size_t bytes) {
  base_ = base;
  covered_bytes_ = bytes;
  // Pad to a whole number of scan words so the word-wise visitors never
  // need a bounds check inside a word. Padding cards are never dirtied
  // (index_of bounds-checks against the covered window).
  const std::size_t n = align_up((bytes >> kCardShift) + 1, kCardsPerWord);
  cards_ = std::vector<std::atomic<std::uint8_t>>(n);
  clear_all();
}

void CardTable::dirty_range(const void* from, const void* to) {
  if (from >= to) return;
  const std::size_t first = index_of(from);
  const std::size_t last = index_of(static_cast<const char*>(to) - 1);
  std::size_t i = first;
  for (; i <= last && (i % kCardsPerWord) != 0; ++i) {
    cards_[i].store(kDirty, std::memory_order_relaxed);
  }
  constexpr std::uint64_t kAllDirty = 0x0101010101010101ULL;
  for (; i + kCardsPerWord <= last + 1; i += kCardsPerWord) {
    store_word_relaxed(i / kCardsPerWord, kAllDirty);
  }
  for (; i <= last; ++i) {
    cards_[i].store(kDirty, std::memory_order_relaxed);
  }
  // Publish the batch with one fence (see the header's ordering contract).
  std::atomic_thread_fence(std::memory_order_release);
}

void CardTable::clear_span_relaxed(std::size_t first,
                                   std::size_t last_inclusive) {
  std::size_t i = first;
  for (; i <= last_inclusive && (i % kCardsPerWord) != 0; ++i) {
    cards_[i].store(kClean, std::memory_order_relaxed);
  }
  for (; i + kCardsPerWord <= last_inclusive + 1; i += kCardsPerWord) {
    store_word_relaxed(i / kCardsPerWord, 0);
  }
  for (; i <= last_inclusive; ++i) {
    cards_[i].store(kClean, std::memory_order_relaxed);
  }
}

void CardTable::clear_all() {
  if (cards_.empty()) return;
  clear_span_relaxed(0, cards_.size() - 1);
  std::atomic_thread_fence(std::memory_order_release);
}

void CardTable::clear_range(const void* from, const void* to) {
  if (from >= to) return;
  clear_span_relaxed(index_of(from),
                     index_of(static_cast<const char*>(to) - 1));
  std::atomic_thread_fence(std::memory_order_release);
}

std::size_t CardTable::count_dirty(const void* from, const void* to) const {
  std::size_t n = 0;
  for_each_dirty(from, to, [&n](std::size_t) { ++n; });
  return n;
}

}  // namespace mgc
