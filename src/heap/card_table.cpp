#include "heap/card_table.h"

#include "support/check.h"

namespace mgc {

void CardTable::initialize(char* base, std::size_t bytes) {
  base_ = base;
  covered_bytes_ = bytes;
  cards_ = std::vector<std::atomic<std::uint8_t>>((bytes >> kCardShift) + 1);
  clear_all();
}

void CardTable::dirty_range(const void* from, const void* to) {
  if (from >= to) return;
  const std::size_t first = index_of(from);
  const std::size_t last = index_of(static_cast<const char*>(to) - 1);
  for (std::size_t i = first; i <= last; ++i) dirty_index(i);
}

void CardTable::clear_all() {
  for (auto& c : cards_) c.store(kClean, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

void CardTable::clear_range(const void* from, const void* to) {
  if (from >= to) return;
  const std::size_t first = index_of(from);
  const std::size_t last = index_of(static_cast<const char*>(to) - 1);
  for (std::size_t i = first; i <= last; ++i) clear_index(i);
}

void CardTable::for_each_dirty(
    const void* from, const void* to,
    const std::function<void(std::size_t)>& fn) const {
  if (from >= to) return;
  const std::size_t first = index_of(from);
  const std::size_t last = index_of(static_cast<const char*>(to) - 1);
  for (std::size_t i = first; i <= last; ++i) {
    if (needs_young_scan(i)) fn(i);
  }
}

std::size_t CardTable::count_dirty(const void* from, const void* to) const {
  std::size_t n = 0;
  for_each_dirty(from, to, [&n](std::size_t) { ++n; });
  return n;
}

}  // namespace mgc
