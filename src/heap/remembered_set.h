// Per-region remembered set for G1: the set of (global) card indices that
// may contain references *into* the owning region. Fed by the mutator
// post-write barrier on cross-region stores and by the evacuation's
// reference-update path; consumed when the region joins a collection set.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "support/spinlock.h"

namespace mgc {

class RememberedSet {
 public:
  void add_card(std::uint32_t card_index);
  bool contains(std::uint32_t card_index) const;
  void clear();
  std::size_t size() const;

  // Snapshot for scanning inside a pause (no concurrent mutation then, but
  // a copy keeps iteration independent of barrier-time insertions from
  // other pause workers updating refs).
  std::vector<std::uint32_t> snapshot() const;

 private:
  mutable SpinLock lock_{LockRank::kRemSet, "rem-set"};
  std::unordered_set<std::uint32_t> cards_ MGC_GUARDED_BY(lock_);
};

}  // namespace mgc
