// G1 heap regions. The whole reservation is divided into equal power-of-two
// regions; each is bump-allocated and linearly parsable. Humongous objects
// span a head region plus zero or more continuation regions.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "heap/arena.h"
#include "heap/object.h"
#include "heap/remembered_set.h"
#include "support/spinlock.h"

namespace mgc {

enum class RegionType : std::uint8_t {
  kFree,
  kEden,
  kSurvivor,
  kOld,
  kHumongousHead,
  kHumongousCont,
};

const char* region_type_name(RegionType t);

class Region {
 public:
  std::uint32_t index = 0;
  char* base = nullptr;
  char* end = nullptr;

  RegionType type() const { return type_.load(std::memory_order_acquire); }
  void set_type(RegionType t) { type_.store(t, std::memory_order_release); }
  bool is_free() const { return type() == RegionType::kFree; }
  bool is_young() const {
    const RegionType t = type();
    return t == RegionType::kEden || t == RegionType::kSurvivor;
  }
  bool is_old_or_humongous() const {
    const RegionType t = type();
    return t == RegionType::kOld || t == RegionType::kHumongousHead ||
           t == RegionType::kHumongousCont;
  }

  char* top() const { return top_.load(std::memory_order_acquire); }
  void set_top(char* t) { top_.store(t, std::memory_order_release); }
  std::size_t used() const { return static_cast<std::size_t>(top() - base); }
  std::size_t free_bytes() const {
    return static_cast<std::size_t>(end - top());
  }
  std::size_t capacity() const { return static_cast<std::size_t>(end - base); }
  bool contains(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= base && c < end;
  }

  // Thread-safe bump allocation within the region.
  char* par_alloc(std::size_t bytes) {
    char* cur = top_.load(std::memory_order_relaxed);
    while (true) {
      if (static_cast<std::size_t>(end - cur) < bytes) return nullptr;
      if (top_.compare_exchange_weak(cur, cur + bytes,
                                     std::memory_order_acq_rel,
                                     std::memory_order_relaxed)) {
        return cur;
      }
    }
  }

  // Walks cells [base, top). Pause-time only.
  void walk(const std::function<void(Obj*)>& fn) const;

  // --- concurrent-marking metadata ---------------------------------------
  // Top-at-mark-start: objects allocated at/above this address during a
  // marking cycle are implicitly live.
  char* tams() const { return tams_.load(std::memory_order_acquire); }
  void set_tams(char* t) { tams_.store(t, std::memory_order_release); }

  // Live bytes computed by the last completed marking (old regions only).
  std::atomic<std::size_t> live_bytes{0};

  // Set if an evacuation failed while copying out of this region; the
  // region is then kept in place and retyped old.
  std::atomic<bool> evac_failed{false};

  // Member of the current collection set (valid only inside an evacuation
  // pause).
  std::atomic<bool> in_cset{false};

  // Incoming-reference remembered set.
  RememberedSet rset;

  // Humongous bookkeeping: continuation regions point at their head.
  Region* humongous_head = nullptr;

  void reset_for_reuse();

 private:
  std::atomic<RegionType> type_{RegionType::kFree};
  std::atomic<char*> top_{nullptr};
  std::atomic<char*> tams_{nullptr};
};

// Owns the region array over one arena and the free-region list.
class RegionManager {
 public:
  void initialize(char* base, std::size_t bytes, std::size_t region_bytes);

  std::size_t region_bytes() const { return region_bytes_; }
  std::size_t num_regions() const { return regions_.size(); }
  char* heap_base() const { return base_; }
  char* heap_end() const { return base_ + covered_bytes_; }
  bool contains(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return c >= base_ && c < heap_end();
  }

  Region& region_at(std::size_t i) { return regions_[i]; }
  const Region& region_at(std::size_t i) const { return regions_[i]; }

  Region* region_of(const void* p) {
    MGC_DCHECK(contains(p));
    const auto off =
        static_cast<std::size_t>(static_cast<const char*>(p) - base_);
    return &regions_[off >> shift_];
  }
  const Region* region_of(const void* p) const {
    return const_cast<RegionManager*>(this)->region_of(p);
  }

  // Pops a free region and retypes it. Returns nullptr when exhausted.
  Region* allocate_region(RegionType type);
  // Allocates `count` physically contiguous regions for a humongous object.
  Region* allocate_humongous(std::size_t count);
  void free_region(Region* r);

  std::size_t free_region_count() const;
  std::size_t count_of(RegionType t) const;

  void for_each_region(const std::function<void(Region&)>& fn);

  // Full-GC support: resets every region for which keep(r) is false and
  // rebuilds the free list from scratch (ascending indices popped first).
  void rebuild(const std::function<bool(Region&)>& keep);

 private:
  char* base_ = nullptr;
  std::size_t covered_bytes_ = 0;
  std::size_t region_bytes_ = 0;
  unsigned shift_ = 0;
  std::vector<Region> regions_;

  mutable SpinLock free_lock_{LockRank::kRegionFree, "region-free"};
  // LIFO of free region indices
  std::vector<std::uint32_t> free_list_ MGC_GUARDED_BY(free_lock_);
};

}  // namespace mgc
