// Block-offset table: for each 512-byte card of a covered range, records
// how far back (in words) the cell that covers the card's first word
// starts. This lets card scanning resolve "first object on card" in O(1)
// instead of walking the space from its base — the reason young-collection
// pauses stay O(young size) even with a large old generation.
//
// Entries are maintained by every bump/free-list allocation and rebuilt by
// compaction. One u32 per card is 0.8% space overhead at our card size.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "heap/layout.h"
#include "heap/object.h"
#include "support/check.h"

namespace mgc {

class BlockOffsetTable {
 public:
  BlockOffsetTable() = default;

  void initialize(char* base, std::size_t bytes) {
    base_ = base;
    covered_bytes_ = bytes;
    entries_.assign(bytes / kCardSize + 1, 0);
  }

  void clear() { std::fill(entries_.begin(), entries_.end(), 0); }

  // Resets entries covering [start, end); used when a G1 region is recycled.
  void clear_range(const char* start, const char* end) {
    if (start >= end) return;
    for (std::size_t c = card_of(start); c <= card_of(end - 1); ++c)
      entries_[c] = 0;
  }

  // Records a block [start, end). Must be called for every allocated cell
  // (object, filler or free chunk) whose span crosses a card boundary.
  void record_block(const char* start, const char* end) {
    MGC_DCHECK(start >= base_ && end <= base_ + covered_bytes_);
    std::size_t c = card_of(start);
    // The card containing `start` belongs to the previous block unless the
    // block begins exactly at the card base.
    if (card_base(c) != start) ++c;
    const std::size_t last = card_of(end - 1);
    for (; c <= last; ++c) {
      // Relaxed-atomic: concurrent GC workers record adjacent blocks while
      // card scanners read. A reader seeing a stale entry starts its walk
      // at an older (still parsable) block and walks forward — safe.
      std::atomic_ref<std::uint32_t>(entries_[c])
          .store(static_cast<std::uint32_t>((card_base(c) - start) / kWordSize),
                 std::memory_order_relaxed);
    }
  }

  // Start of the cell covering `addr`'s card base. The caller then walks
  // forward from it to the cell covering `addr` itself.
  char* block_start_for_card(std::size_t card_index) const {
    MGC_DCHECK(card_index < entries_.size());
    const std::uint32_t entry =
        std::atomic_ref<std::uint32_t>(
            const_cast<std::uint32_t&>(entries_[card_index]))
            .load(std::memory_order_relaxed);
    return card_base(card_index) - static_cast<std::ptrdiff_t>(entry) * kWordSize;
  }

  // The cell that covers `addr`. `addr` must be below the space's top.
  Obj* cell_covering(const char* addr) const {
    char* cur = block_start_for_card(card_of(addr));
    while (true) {
      auto* o = reinterpret_cast<Obj*>(cur);
      MGC_DCHECK(o->size_words() >= kMinObjWords);
      if (addr < o->end()) return o;
      cur = o->end();
    }
  }

  std::size_t card_of(const char* addr) const {
    MGC_DCHECK(addr >= base_ && addr < base_ + covered_bytes_);
    return static_cast<std::size_t>(addr - base_) >> kCardShift;
  }
  char* card_base(std::size_t card_index) const {
    return const_cast<char*>(base_) + (card_index << kCardShift);
  }

 private:
  const char* base_ = nullptr;
  std::size_t covered_bytes_ = 0;
  std::vector<std::uint32_t> entries_;
};

}  // namespace mgc
