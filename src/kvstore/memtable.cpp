#include "kvstore/memtable.h"

#include <cstring>

namespace mgc::kv {

Memtable::Memtable(Vm& vm, std::size_t buckets) : vm_(vm), buckets_(buckets) {
  for (auto& s : stripes_) s.set_rank(LockRank::kMemtableStripe, "memtable-stripe");
  map_root_ = vm.create_global_root();
  Vm::MutatorScope scope(vm, "memtable-init");
  Mutator& m = scope.mutator();
  vm.set_global_root(map_root_, managed::hash_map::create(m, buckets));
}

void Memtable::put(Mutator& m, std::uint64_t key, std::uint64_t version,
                   const char* value, std::size_t value_len) {
  // Encode outside the stripe lock (allocation may collect).
  Local row(m, encode_row(m, key, version, value, value_len));
  GuardedLock<Mutex> g(m, stripe_for(key));
  Local map(m, vm_.global_root(map_root_));
  const bool existed = managed::hash_map::get(map.get(), key) != nullptr;
  managed::hash_map::put(m, map, key, row);
  if (!existed) {
    bytes_.fetch_add(row_heap_bytes(value_len), std::memory_order_acq_rel);
  }
}

bool Memtable::get(Mutator& m, std::uint64_t key, char* out,
                   std::size_t out_cap, std::size_t* value_len,
                   std::uint64_t* version) {
  GuardedLock<Mutex> g(m, stripe_for(key));
  Obj* row = managed::hash_map::get(vm_.global_root(map_root_), key);
  if (row == nullptr) return false;
  if (value_len != nullptr) *value_len = row_value_len(row);
  if (version != nullptr) *version = row_version(row);
  if (out != nullptr && out_cap > 0) row_copy_value(row, out, out_cap);
  return true;
}

bool Memtable::remove(Mutator& m, std::uint64_t key) {
  GuardedLock<Mutex> g(m, stripe_for(key));
  Obj* map = vm_.global_root(map_root_);
  Obj* row = managed::hash_map::get(map, key);
  if (row == nullptr) return false;
  const std::size_t bytes = row_heap_bytes(row_value_len(row));
  if (!managed::hash_map::remove(m, map, key)) return false;
  // The accounting is approximate (put only adds on first insert, so an
  // overwrite that changed the length skews it); clamp at zero instead of
  // wrapping.
  std::size_t cur = bytes_.load(std::memory_order_acquire);
  while (!bytes_.compare_exchange_weak(
      cur, cur - (bytes < cur ? bytes : cur), std::memory_order_acq_rel)) {
  }
  return true;
}

std::size_t Memtable::row_count() const {
  return managed::hash_map::size(vm_.global_root(map_root_));
}

void Memtable::for_each_row(
    const std::function<void(const Obj*)>& fn) const {
  managed::hash_map::for_each(
      vm_.global_root(map_root_),
      [&](std::uint64_t, Obj* row) { fn(row); });
}

void Memtable::reset(Mutator& m) {
  Local fresh(m, managed::hash_map::create(m, buckets_));
  vm_.set_global_root(map_root_, fresh.get());
  bytes_.store(0, std::memory_order_release);
}

Memtable::AllStripesLock::AllStripesLock(Mutator& m, Memtable& t) : t_(t) {
  // Acquire every stripe in order, declaring the thread blocked for each
  // acquisition so collections requested by stripe holders can proceed.
  for (auto& s : t_.stripes_) {
    m.enter_blocked();
    s.lock();
    m.leave_blocked();
  }
}

Memtable::AllStripesLock::~AllStripesLock() {
  for (auto& s : t_.stripes_) s.unlock();
}

}  // namespace mgc::kv
