// Shared-nothing sharding of the Cassandra-like store (the scaling move
// the paper's 48-core Cassandra setup implies): the key space is split by
// hash into N independent shards, each owning its own memtable, commit
// log, and sstable set. No locks are shared between shards — a flush, a
// commit-log rotation, or a memtable stripe convoy in one shard never
// stalls another, so the front-end can drive one worker (and one core)
// per shard without cross-shard contention.
//
// All shards allocate from the same managed heap: GC pressure stays a
// whole-process phenomenon (which is the paper's subject), only the
// store-level synchronization is sharded.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "kvstore/store.h"

namespace mgc::kv {

class ShardedStore {
 public:
  // Splits `cfg` into `shards` shared-nothing slices (per-shard byte
  // budgets sum to the original, per-shard fault scope = shard index).
  // shards must be >= 1; 1 is a valid degenerate case.
  ShardedStore(Vm& vm, const StoreConfig& cfg, std::size_t shards);

  ShardedStore(const ShardedStore&) = delete;
  ShardedStore& operator=(const ShardedStore&) = delete;

  std::size_t shard_count() const { return shards_.size(); }

  // The shard that owns `key`. Pure function of (key, shard_count) — the
  // server's dispatch, the tests' skew workloads, and the bench's
  // per-shard latency split all rely on agreeing with this.
  std::size_t shard_of(std::uint64_t key) const;

  Store& shard(std::size_t idx) { return *shards_[idx]; }
  const Store& shard(std::size_t idx) const { return *shards_[idx]; }

  // Whole-store routing helpers (resolve the shard, then delegate).
  bool put(Mutator& m, std::uint64_t key, const char* value,
           std::size_t value_len);
  bool get(Mutator& m, std::uint64_t key, char* out, std::size_t out_cap,
           std::size_t* value_len);

  // Aggregates across shards.
  std::uint64_t flush_count() const;
  std::size_t approx_bytes() const;

 private:
  std::vector<std::unique_ptr<Store>> shards_;
};

}  // namespace mgc::kv
