#include "kvstore/sharded_store.h"

#include "runtime/managed.h"
#include "support/check.h"

namespace mgc::kv {

ShardedStore::ShardedStore(Vm& vm, const StoreConfig& cfg,
                           std::size_t shards) {
  MGC_CHECK(shards >= 1);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(
        std::make_unique<Store>(vm, cfg.shard_slice(shards, i)));
  }
}

std::size_t ShardedStore::shard_of(std::uint64_t key) const {
  // The memtable stripes hash with managed::hash_u64 too; reusing it keeps
  // the shard split as well-mixed as the stripe split.
  return managed::hash_u64(key) % shards_.size();
}

bool ShardedStore::put(Mutator& m, std::uint64_t key, const char* value,
                       std::size_t value_len) {
  return shards_[shard_of(key)]->put(m, key, value, value_len);
}

bool ShardedStore::get(Mutator& m, std::uint64_t key, char* out,
                       std::size_t out_cap, std::size_t* value_len) {
  return shards_[shard_of(key)]->get(m, key, out, out_cap, value_len);
}

std::uint64_t ShardedStore::flush_count() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) total += s->flush_count();
  return total;
}

std::size_t ShardedStore::approx_bytes() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    total += s->memtable().approx_bytes() + s->commit_log().approx_bytes();
  }
  return total;
}

}  // namespace mgc::kv
