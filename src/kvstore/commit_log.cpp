#include "kvstore/commit_log.h"

#include <cstring>

#include "kvstore/row_codec.h"
#include "support/fault.h"

namespace mgc::kv {

CommitLog::CommitLog(Vm& vm, std::size_t segment_bytes,
                     std::size_t retention_bytes, std::uint32_t fault_scope)
    : vm_(vm),
      segment_bytes_(segment_bytes),
      retention_bytes_(retention_bytes),
      fault_scope_(fault_scope) {
  active_root_ = vm.create_global_root();
  Vm::MutatorScope scope(vm, "commitlog-init");
  vm.set_global_root(active_root_, managed::list::create(scope.mutator()));
  // Last-ditch memory pressure: drop every archived segment ("already on
  // disk") before the VM declares OutOfMemory. Runs on the allocating
  // mutator's thread between collections, so it must not touch the managed
  // heap and must not block on mu_ — a holder of mu_ may be parked inside a
  // GC pause, and waiting here would keep this mutator out of the safepoint
  // that pause needs. try_lock and walk away instead (best effort).
  pressure_hook_id_ = vm.add_memory_pressure_hook([this] {
    if (!mu_.try_lock()) return;
    while (!archived_.empty()) {
      auto [root, seg_bytes] = archived_.front();
      archived_.erase(archived_.begin());
      vm_.set_global_root(root, nullptr);
      free_roots_.push_back(root);
      bytes_.fetch_sub(seg_bytes, std::memory_order_acq_rel);
    }
    mu_.unlock();
  });
}

CommitLog::~CommitLog() { vm_.remove_memory_pressure_hook(pressure_hook_id_); }

bool CommitLog::append(Mutator& m, std::uint64_t key, const char* value,
                       std::size_t value_len) {
  if (fault::should_fire(fault::Site::kCommitLogWrite, fault_scope_))
    return false;
  // Build the record before taking the log lock.
  Local record(m, encode_row(m, key, /*version=*/0, value, value_len));
  const std::size_t rec_bytes = row_heap_bytes(value_len) + 48;  // + list node

  GuardedLock<Mutex> g(m, mu_);
  Local segment(m, vm_.global_root(active_root_));
  managed::list::push(m, segment, record);
  active_bytes_ += rec_bytes;
  bytes_.fetch_add(rec_bytes, std::memory_order_acq_rel);
  if (active_bytes_ >= segment_bytes_) rotate_locked(m);
  return true;
}

void CommitLog::rotate_locked(Mutator& m) {
  // Archive the active segment.
  std::size_t root;
  if (!free_roots_.empty()) {
    root = free_roots_.back();
    free_roots_.pop_back();
  } else {
    root = vm_.create_global_root();
  }
  vm_.set_global_root(root, vm_.global_root(active_root_));
  archived_.emplace_back(root, active_bytes_);

  Local fresh(m, managed::list::create(m));
  vm_.set_global_root(active_root_, fresh.get());
  active_bytes_ = 0;

  // Enforce retention: drop oldest segments ("flushed to disk").
  while (bytes_.load(std::memory_order_relaxed) > retention_bytes_ &&
         !archived_.empty()) {
    auto [old_root, old_bytes] = archived_.front();
    archived_.erase(archived_.begin());
    vm_.set_global_root(old_root, nullptr);
    free_roots_.push_back(old_root);
    bytes_.fetch_sub(old_bytes, std::memory_order_acq_rel);
  }
}

void CommitLog::replay(Mutator& m,
                       const std::function<void(std::uint64_t, const char*,
                                                std::size_t)>& fn) {
  GuardedLock<Mutex> g(m, mu_);
  std::vector<char> scratch;
  auto replay_segment = [&](const Obj* segment) {
    // list::push prepends, so iteration order is newest-first; gather and
    // walk backwards to recover append order.
    std::vector<const Obj*> records;
    managed::list::for_each(segment,
                            [&](Obj* rec) { records.push_back(rec); });
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      const Obj* row = *it;
      const std::size_t len = row_value_len(row);
      scratch.resize(len);
      row_copy_value(row, scratch.data(), len);
      fn(row_key(row), scratch.data(), len);
    }
  };
  for (const auto& [root, seg_bytes] : archived_) {
    replay_segment(vm_.global_root(root));
  }
  replay_segment(vm_.global_root(active_root_));
}

void CommitLog::truncate(Mutator& m) {
  GuardedLock<Mutex> g(m, mu_);
  for (auto& [root, seg_bytes] : archived_) {
    vm_.set_global_root(root, nullptr);
    free_roots_.push_back(root);
  }
  archived_.clear();
  Local fresh(m, managed::list::create(m));
  vm_.set_global_root(active_root_, fresh.get());
  active_bytes_ = 0;
  bytes_.store(0, std::memory_order_release);
}

std::size_t CommitLog::segment_count() const {
  // Approximate (unsynchronized) — used by tests and stats only.
  return archived_.size() + 1;
}

}  // namespace mgc::kv
