#include "kvstore/store.h"

#include <algorithm>

#include "support/units.h"

namespace mgc::kv {

StoreConfig StoreConfig::default_config(std::size_t heap_bytes) {
  StoreConfig cfg;
  cfg.memtable_flush_bytes = heap_bytes / 4;
  cfg.commitlog_segment_bytes = heap_bytes / 32;
  cfg.commitlog_retention_bytes = heap_bytes / 4;
  return cfg;
}

StoreConfig StoreConfig::stress_config(std::size_t heap_bytes) {
  StoreConfig cfg;
  // "we set up both the commitlog and the internal caching structure of
  // Cassandra (called memtable) to have the same size as the heap" — §4.1.
  // The memtable never flushes; the commit log retention is capped at a
  // third of the heap so that live data saturates the old generation
  // (memtable + log ~ 90%+ occupancy under the YCSB load) without tipping
  // into a hard OutOfMemory, which is the regime the paper measures.
  cfg.memtable_flush_bytes = heap_bytes;
  cfg.commitlog_segment_bytes = heap_bytes / 32;
  cfg.commitlog_retention_bytes = heap_bytes / 4;
  return cfg;
}

StoreConfig StoreConfig::shard_slice(std::size_t shards,
                                     std::size_t shard) const {
  StoreConfig cfg = *this;
  if (shards > 1) {
    cfg.memtable_flush_bytes = std::max<std::size_t>(
        memtable_flush_bytes / shards, 64 * 1024);
    cfg.commitlog_segment_bytes = std::max<std::size_t>(
        commitlog_segment_bytes / shards, 16 * 1024);
    cfg.commitlog_retention_bytes = std::max<std::size_t>(
        commitlog_retention_bytes / shards, 64 * 1024);
    cfg.memtable_buckets =
        std::max<std::size_t>(memtable_buckets / shards, 1024);
  }
  cfg.fault_scope = static_cast<std::uint32_t>(shard);
  return cfg;
}

Store::Store(Vm& vm, const StoreConfig& cfg)
    : vm_(vm),
      cfg_(cfg),
      memtable_(vm, cfg.memtable_buckets),
      log_(vm, cfg.commitlog_segment_bytes, cfg.commitlog_retention_bytes,
           cfg.fault_scope) {}

bool Store::put(Mutator& m, std::uint64_t key, const char* value,
                std::size_t value_len, std::uint64_t* out_seq) {
  // Log first (write-ahead): a refused log write fails the whole put before
  // the memtable sees the row, preserving "memtable ⊆ log ∪ sstables".
  if (!log_.append(m, key, value, value_len)) return false;
  const std::uint64_t version =
      version_.fetch_add(1, std::memory_order_acq_rel);
  memtable_.put(m, key, version, value, value_len);
  // Commit point: the row is durable and visible. The replication hook
  // runs with no store locks held (the memtable stripe was released) so it
  // may take the replication-log lock without ordering hazards.
  std::uint64_t seq = 0;
  if (commit_hook_) {
    seq = commit_hook_(key, static_cast<std::uint32_t>(value_len));
  }
  if (out_seq != nullptr) *out_seq = seq;
  maybe_flush(m);
  return true;
}

bool Store::remove(Mutator& m, std::uint64_t key) {
  return memtable_.remove(m, key);
}

bool Store::get(Mutator& m, std::uint64_t key, char* out, std::size_t out_cap,
                std::size_t* value_len) {
  if (memtable_.get(m, key, out, out_cap, value_len, nullptr)) return true;
  return sstables_.get(key, out, out_cap, value_len, nullptr);
}

void Store::maybe_flush(Mutator& m) {
  if (memtable_.approx_bytes() < cfg_.memtable_flush_bytes) return;
  GuardedLock<Mutex> g(m, flush_mu_);
  if (memtable_.approx_bytes() < cfg_.memtable_flush_bytes) return;

  // Serialize the memtable to an sstable ("write to disk"), then swap in a
  // fresh memtable and truncate the commit log — a large, sudden burst of
  // old-generation garbage, just like Cassandra's flush.
  std::unordered_map<std::uint64_t, SsTableSet::StoredRow> frozen;
  {
    Memtable::AllStripesLock all(m, memtable_);
    frozen.reserve(memtable_.row_count());
    memtable_.for_each_row([&](const Obj* row) {
      SsTableSet::StoredRow stored;
      stored.version = row_version(row);
      stored.value.resize(row_value_len(row));
      if (!stored.value.empty()) {
        row_copy_value(row, stored.value.data(), stored.value.size());
      }
      frozen.emplace(row_key(row), std::move(stored));
    });
    memtable_.reset(m);
  }
  sstables_.add_table(std::move(frozen));
  log_.truncate(m);
  flushes_.fetch_add(1, std::memory_order_acq_rel);
}

}  // namespace mgc::kv
