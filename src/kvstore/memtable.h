// Memtable: Cassandra's in-memory write-back cache, here a managed hash
// map of row blobs with striped locks and byte accounting. Everything the
// memtable holds lives on the managed heap — the source of the server-side
// GC pressure the paper studies.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "kvstore/row_codec.h"
#include "runtime/vm.h"
#include "support/mutex.h"

namespace mgc::kv {

class Memtable {
 public:
  // `buckets` sizes the managed hash map (fixed at creation).
  Memtable(Vm& vm, std::size_t buckets);

  // Inserts/overwrites the row for key. Returns bytes added (net growth may
  // be smaller when overwriting). May GC.
  void put(Mutator& m, std::uint64_t key, std::uint64_t version,
           const char* value, std::size_t value_len);

  // Copies the row's value into `out` (up to out_cap). Returns true and the
  // version when found. Does not allocate.
  bool get(Mutator& m, std::uint64_t key, char* out, std::size_t out_cap,
           std::size_t* value_len, std::uint64_t* version);

  // Unlinks the row for key, adjusting the byte accounting. Returns false
  // when no row exists. Does not allocate (hash_map::remove only unlinks).
  bool remove(Mutator& m, std::uint64_t key);

  std::size_t approx_bytes() const {
    return bytes_.load(std::memory_order_acquire);
  }
  std::size_t row_count() const;

  // Iterates row objects (for flushing). Caller must hold all stripes via
  // AllStripesLock; fn must not allocate.
  void for_each_row(const std::function<void(const Obj*)>& fn) const;

  // Drops all rows (after a flush): installs a fresh managed map, making
  // the old one garbage in one step, exactly like Cassandra swapping
  // memtables. May GC.
  void reset(Mutator& m);

  class AllStripesLock {
   public:
    // Acquires the whole stripe array in index (= ascending address)
    // order — the one same-rank nesting the lock-rank registry allows.
    // Thread-safety analysis cannot express an array of capabilities.
    AllStripesLock(Mutator& m, Memtable& t) MGC_NO_THREAD_SAFETY_ANALYSIS;
    ~AllStripesLock() MGC_NO_THREAD_SAFETY_ANALYSIS;

   private:
    Memtable& t_;
  };

 private:
  static constexpr std::size_t kStripes = 16;
  Mutex& stripe_for(std::uint64_t key) {
    return stripes_[managed::hash_u64(key) % kStripes];
  }

  Vm& vm_;
  std::size_t buckets_;
  std::size_t map_root_;
  mutable std::array<Mutex, kStripes> stripes_;
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace mgc::kv
