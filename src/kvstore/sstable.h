// SSTables: flushed memtables, simulated as off-heap (native) storage —
// the analogue of Cassandra writing its cache to disk. Reads from sstables
// are slower than memtable hits (a fixed simulated I/O cost) and allocate
// nothing on the managed heap.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "support/mutex.h"

namespace mgc::kv {

class SsTableSet {
 public:
  struct StoredRow {
    std::uint64_t version = 0;
    std::vector<char> value;
  };

  // Registers one flushed table (newest wins on lookup).
  void add_table(std::unordered_map<std::uint64_t, StoredRow> rows);

  // Looks the key up across tables, newest first.
  bool get(std::uint64_t key, char* out, std::size_t out_cap,
           std::size_t* value_len, std::uint64_t* version) const;

  std::size_t table_count() const;
  std::size_t total_rows() const;

  // Visits every stored row, newest table first (the lookup order of
  // get()): a key shadowed by a newer table is visited newest version
  // first, once per table holding it. No simulated I/O cost.
  void for_each(const std::function<void(std::uint64_t key,
                                         const StoredRow& row)>& fn) const;

  // Simulated read amplification: busy-work per sstable probed.
  static void simulate_io_cost();

 private:
  mutable Mutex mu_{LockRank::kSsTable, "sstable"};
  std::vector<std::unordered_map<std::uint64_t, StoredRow>> tables_
      MGC_GUARDED_BY(mu_);
};

}  // namespace mgc::kv
