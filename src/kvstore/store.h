// The Cassandra-like store: memtable + commit log + sstables, glued by the
// flush policy. Two named configurations mirror the paper's §4.1:
//
//   * default — the memtable flushes to sstables at a fraction of the heap
//     and the commit log keeps a bounded retention;
//   * stress  — memtable and commit log are sized to the whole heap
//     ("everything was always kept in memory"), so the old generation
//     saturates and collections become catastrophic.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "kvstore/commit_log.h"
#include "kvstore/memtable.h"
#include "kvstore/sstable.h"

namespace mgc::kv {

struct StoreConfig {
  std::size_t memtable_flush_bytes;   // flush threshold
  std::size_t commitlog_segment_bytes;
  std::size_t commitlog_retention_bytes;
  std::size_t value_len = 1024;  // YCSB-style ~1 KB rows (scaled with heap)
  std::size_t memtable_buckets = 16384;
  // Tags this store's commit-log fault checks (shard index under
  // ShardedStore); see CommitLog.
  std::uint32_t fault_scope = 0;

  static StoreConfig default_config(std::size_t heap_bytes);
  static StoreConfig stress_config(std::size_t heap_bytes);
  // The per-shard slice of this configuration: byte budgets divided by the
  // shard count (shards are shared-nothing, so their budgets must sum to
  // the original), bucket counts scaled down, fault scope set to `shard`.
  StoreConfig shard_slice(std::size_t shards, std::size_t shard) const;
};

class Store {
 public:
  // Commit hook: invoked after a successful put has reached the memtable
  // (commit log + memtable mutated, no store locks held), with the row's
  // key and value length. Returns the replication sequence number assigned
  // to the committed row (0 = unreplicated store). repl::Node installs one
  // per shard to append committed writes to its replication log.
  using CommitHook = std::function<std::uint64_t(std::uint64_t key,
                                                 std::uint32_t value_len)>;

  Store(Vm& vm, const StoreConfig& cfg);

  // All operations run on a mutator (server worker) thread.
  // put() returns false — with neither the log nor the memtable mutated —
  // when the commit-log write is refused (injected device failure); the
  // server maps that to ExecStatus::kOverloaded. On success *out_seq (when
  // given) holds the commit hook's sequence number, 0 if no hook is set.
  bool put(Mutator& m, std::uint64_t key, const char* value,
           std::size_t value_len, std::uint64_t* out_seq = nullptr);
  bool get(Mutator& m, std::uint64_t key, char* out, std::size_t out_cap,
           std::size_t* value_len);

  // Removes the row from the memtable (replication truncation repair: a
  // rejoining ex-leader undoes rows its diverged log suffix applied).
  // Rows already flushed to an sstable are beyond the repair window —
  // sstables are immutable — so replication configs keep the flush
  // threshold above the divergence window. Returns true if a row was
  // removed.
  bool remove(Mutator& m, std::uint64_t key);

  // Install/clear the commit hook. Not thread-safe against concurrent
  // puts: wire it before the serving threads start (repl::Node does this
  // in its constructor).
  void set_commit_hook(CommitHook hook) { commit_hook_ = std::move(hook); }

  Memtable& memtable() { return memtable_; }
  CommitLog& commit_log() { return log_; }
  SsTableSet& sstables() { return sstables_; }
  std::uint64_t flush_count() const {
    return flushes_.load(std::memory_order_acquire);
  }

 private:
  void maybe_flush(Mutator& m);

  Vm& vm_;
  StoreConfig cfg_;
  Memtable memtable_;
  CommitLog log_;
  SsTableSet sstables_;
  CommitHook commit_hook_;
  Mutex flush_mu_{LockRank::kStoreFlush, "store-flush"};
  std::atomic<std::uint64_t> version_{1};
  std::atomic<std::uint64_t> flushes_{0};
};

}  // namespace mgc::kv
