// The database server: shard-per-core worker groups (VM mutators), each
// draining its own bounded request queue in front of its own store shard.
// Clients (plain, non-mutator threads — they model the remote YCSB box)
// submit requests synchronously and measure latency around the call, so
// server-side stop-the-world pauses surface directly as client-visible
// latency spikes (paper §4.2).
//
// Sharding model: requests are routed by key hash to the shard that owns
// the key (ShardedStore::shard_of). Each shard is shared-nothing — its
// queue, its condition variables, its workers, and its store (memtable +
// commit log + sstables) are touched by no other shard — so the request
// path scales with cores instead of serializing on one queue mutex. The
// single-store constructor is the degenerate one-shard case and behaves
// exactly like the pre-sharding server.
//
// Two submission paths share each shard's queue and workers:
//   * execute()    — synchronous in-process call; blocks while the shard's
//                    queue is full (admission control), then until the
//                    request ran. Wakes with ExecStatus::kShutdown if the
//                    server stops while the caller is blocked.
//   * try_submit() — asynchronous, used by the net::NetServer front-end;
//                    enqueues and returns immediately, the completion
//                    callback runs on a worker thread of the owning shard.
//                    Async submissions are not flow-controlled on the
//                    queue capacity — the net layer applies its own
//                    bounded in-flight admission control and must not
//                    block its event loops here — but both paths SHED
//                    (kOverloaded) per shard when that shard's queue is
//                    full while the heap is near capacity, so a GC death
//                    spiral degrades into typed rejections instead of a
//                    convoy, and a single hot shard sheds without taking
//                    the healthy shards down with it.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "kvstore/sharded_store.h"
#include "kvstore/store.h"
#include "support/mutex.h"

namespace mgc::kv {

enum class OpType : std::uint8_t { kRead, kUpdate, kInsert };

struct Request {
  OpType op = OpType::kRead;
  std::uint64_t key = 0;
  std::size_t value_len = 0;  // for updates/inserts
};

enum class ExecStatus : std::uint8_t {
  kOk = 0,
  kShutdown = 1,    // rejected: server was stopping
  kOverloaded = 2,  // shed: queue full under GC pressure, or the request
                    // failed in a retryable way (commit-log write failure,
                    // worker OutOfMemoryError). Clients should back off.
  kNotLeader = 3,   // write sent to a replication follower; retry against
                    // another node (repl::ReplClient rotates on this)
};

struct Response {
  bool found = false;
  ExecStatus status = ExecStatus::kOk;
  // Replication sequence number the write committed at (0 for reads,
  // failures, and unreplicated stores). In-process only — the wire
  // response does not carry it; repl::Node consumes it before the frame
  // is encoded.
  std::uint64_t seq = 0;
};

// Deterministic value bytes derived from the key — what the server workers
// store for every write. Replication streams only {key, value_len}: every
// replica regenerates identical value bytes from the key, so append frames
// stay fixed-size regardless of row size.
inline void synth_value(std::uint64_t key, char* out, std::size_t len) {
  const std::size_t n = len < 16 ? len : 16;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<char>(key >> (i % 8));
  }
}

// Outcome of an asynchronous try_submit(). On kAccepted the completion runs
// exactly once on a worker thread; on any rejection it never runs.
enum class SubmitResult : std::uint8_t {
  kAccepted = 0,
  kShutdown = 1,    // server is stopping
  kOverloaded = 2,  // shed: the owning shard's queue is at capacity while
                    // the heap is near-full
  kNotLeader = 3,   // replication follower rejecting a write (repl::Node)
};

// Abstract asynchronous submission surface: what the socket front-end
// (net::NetServer) drives. kv::Server implements it directly; repl::Node
// wraps a Server per replica to intercept writes for quorum replication
// and gate follower reads on staleness, without the net layer knowing.
class RequestSink {
 public:
  using CompletionFn = std::function<void(const Response&)>;
  virtual ~RequestSink() = default;
  // On kAccepted the completion runs exactly once on some non-event-loop
  // thread; on any rejection it never runs. Must not block: event loops
  // call this directly.
  virtual SubmitResult try_submit(const Request& req, CompletionFn done) = 0;
};

// Sharded-mode tuning. The single-store constructor ignores it.
struct ServerConfig {
  int workers_per_shard = 1;
  std::size_t queue_capacity = 256;  // per shard
  // Pin shard i's workers to core i (mod allowed cores; support/affinity).
  // Best effort — refusals fall back to floating workers.
  bool pin_workers = false;
};

class Server : public RequestSink {
 public:
  using CompletionFn = RequestSink::CompletionFn;

  // Single-shard server over an externally owned store (the pre-sharding
  // shape; every original call site still works).
  Server(Vm& vm, Store& store, int workers, std::size_t queue_capacity = 256);

  // Shard-per-core server: one worker group and one bounded queue per
  // shard of `store`. The ShardedStore must outlive the server.
  Server(Vm& vm, ShardedStore& store, ServerConfig cfg = {});

  ~Server() override;

  // Stops accepting work, wakes clients blocked on full queues (they get
  // ExecStatus::kShutdown), drains requests already queued, and joins the
  // workers of every shard. Idempotent; the destructor calls it. Callers
  // that keep client threads running may invoke it explicitly and only
  // destroy the server once those threads have observed the rejection.
  void shutdown();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Synchronous call from a client thread; routed to the owning shard.
  // Blocks while that shard's queue is full (admission control), then
  // until a worker has executed the request. If the server starts stopping
  // while the caller is blocked on a full queue, returns a Response with
  // status == ExecStatus::kShutdown instead of hanging (requests already
  // queued are still drained and completed). Sheds load per shard
  // (ExecStatus::kOverloaded, without blocking) when the shard's queue is
  // full while the heap is near capacity.
  Response execute(const Request& req);

  // Asynchronous submission for the socket front-end; routed to the owning
  // shard. On kAccepted, `done` is invoked exactly once on one of that
  // shard's worker threads after the request executes; on kShutdown /
  // kOverloaded it never runs.
  SubmitResult try_submit(const Request& req, CompletionFn done) override;

  std::size_t shard_count() const { return shards_.size(); }
  // The shard execute()/try_submit() would route `key` to.
  std::size_t shard_of_key(std::uint64_t key) const;

  std::uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }
  // Requests shed (kOverloaded at admission) by one shard — the per-shard
  // isolation tests and the scaling bench read these.
  std::uint64_t shed_count(std::size_t shard) const;

 private:
  struct Pending {
    Request req;
    Response resp;        // resp/done are guarded by the owning shard's mu
    bool done = false;
    CondVar cv;           // sync path: client waits here (on the shard's mu)
    CompletionFn completion;  // async path: set => heap-owned, worker frees
  };

  // One shared-nothing shard: queue + cvs + workers + store. Never touched
  // by another shard's workers.
  struct Shard {
    std::uint32_t index = 0;
    Store* store = nullptr;
    Mutex mu{LockRank::kKvShard, "kv-shard"};
    CondVar queue_cv;  // workers wait for work
    CondVar space_cv;  // sync clients wait for queue space
    std::deque<Pending*> queue MGC_GUARDED_BY(mu);
    bool stopping MGC_GUARDED_BY(mu) = false;
    std::atomic<std::uint64_t> shed{0};
    std::vector<std::thread> workers;
  };

  void start_shard_workers(Shard& s, int workers);
  void worker_main(Shard& s, int widx);
  // True when the heap is close enough to capacity that queueing more work
  // would only deepen the collection spiral (shed instead).
  bool under_gc_pressure() const;

  Vm& vm_;
  ShardedStore* sharded_ = nullptr;  // null => single external store
  ServerConfig cfg_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> completed_{0};
  Mutex shutdown_mu_{LockRank::kKvShutdown, "kv-shutdown"};
  bool stopped_ MGC_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace mgc::kv
