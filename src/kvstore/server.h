// The database server: a pool of worker threads (VM mutators) draining a
// bounded request queue. Clients (plain, non-mutator threads — they model
// the remote YCSB box) submit requests synchronously and measure latency
// around the call, so server-side stop-the-world pauses surface directly
// as client-visible latency spikes (paper §4.2).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "kvstore/store.h"

namespace mgc::kv {

enum class OpType : std::uint8_t { kRead, kUpdate, kInsert };

struct Request {
  OpType op = OpType::kRead;
  std::uint64_t key = 0;
  std::size_t value_len = 0;  // for updates/inserts
};

struct Response {
  bool found = false;
};

class Server {
 public:
  Server(Vm& vm, Store& store, int workers, std::size_t queue_capacity = 256);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Synchronous call from a client thread. Blocks while the queue is full
  // (admission control), then until a worker has executed the request.
  Response execute(const Request& req);

  std::uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }

 private:
  struct Pending {
    Request req;
    Response resp;
    bool done = false;
    std::condition_variable cv;
  };

  void worker_main(int idx);

  Vm& vm_;
  Store& store_;
  std::size_t capacity_;

  std::mutex mu_;
  std::condition_variable queue_cv_;   // workers wait for work
  std::condition_variable space_cv_;   // clients wait for queue space
  std::deque<Pending*> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> completed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace mgc::kv
