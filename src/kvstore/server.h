// The database server: a pool of worker threads (VM mutators) draining a
// bounded request queue. Clients (plain, non-mutator threads — they model
// the remote YCSB box) submit requests synchronously and measure latency
// around the call, so server-side stop-the-world pauses surface directly
// as client-visible latency spikes (paper §4.2).
//
// Two submission paths share the queue and workers:
//   * execute()    — synchronous in-process call; blocks while the queue is
//                    full (admission control), then until the request ran.
//                    Wakes with ExecStatus::kShutdown if the server stops
//                    while the caller is blocked.
//   * try_submit() — asynchronous, used by the net::NetServer front-end;
//                    enqueues and returns immediately, the completion
//                    callback runs on the worker thread. Async submissions
//                    are not flow-controlled on queue_capacity — the net
//                    layer applies its own bounded in-flight admission
//                    control and must not block its event loop here — but
//                    both paths SHED (kOverloaded) when the queue is full
//                    while the heap is near capacity, so a GC death spiral
//                    degrades into typed rejections instead of a convoy.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "kvstore/store.h"

namespace mgc::kv {

enum class OpType : std::uint8_t { kRead, kUpdate, kInsert };

struct Request {
  OpType op = OpType::kRead;
  std::uint64_t key = 0;
  std::size_t value_len = 0;  // for updates/inserts
};

enum class ExecStatus : std::uint8_t {
  kOk = 0,
  kShutdown = 1,    // rejected: server was stopping
  kOverloaded = 2,  // shed: queue full under GC pressure, or the request
                    // failed in a retryable way (commit-log write failure,
                    // worker OutOfMemoryError). Clients should back off.
};

struct Response {
  bool found = false;
  ExecStatus status = ExecStatus::kOk;
};

// Outcome of an asynchronous try_submit(). On kAccepted the completion runs
// exactly once on a worker thread; on any rejection it never runs.
enum class SubmitResult : std::uint8_t {
  kAccepted = 0,
  kShutdown = 1,    // server is stopping
  kOverloaded = 2,  // shed: queue at capacity while the heap is near-full
};

class Server {
 public:
  using CompletionFn = std::function<void(const Response&)>;

  Server(Vm& vm, Store& store, int workers, std::size_t queue_capacity = 256);
  ~Server();

  // Stops accepting work, wakes clients blocked on a full queue (they get
  // ExecStatus::kShutdown), drains requests already queued, and joins the
  // workers. Idempotent; the destructor calls it. Callers that keep client
  // threads running may invoke it explicitly and only destroy the server
  // once those threads have observed the rejection.
  void shutdown();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Synchronous call from a client thread. Blocks while the queue is full
  // (admission control), then until a worker has executed the request.
  // If the server starts stopping while the caller is blocked on a full
  // queue, returns a Response with status == ExecStatus::kShutdown instead
  // of hanging (requests already queued are still drained and completed).
  // Sheds load (ExecStatus::kOverloaded, without blocking) when the queue
  // is full while the heap is near capacity — admission control must not
  // convert a GC death spiral into an unbounded client convoy.
  Response execute(const Request& req);

  // Asynchronous submission for the socket front-end. On kAccepted, `done`
  // is invoked exactly once on a worker thread after the request executes;
  // on kShutdown/kOverloaded it never runs. The net layer applies its own
  // bounded in-flight admission control, so the queue-capacity gate here
  // only engages under GC pressure (load shedding, not flow control).
  SubmitResult try_submit(const Request& req, CompletionFn done);

  std::uint64_t completed() const {
    return completed_.load(std::memory_order_acquire);
  }

 private:
  struct Pending {
    Request req;
    Response resp;
    bool done = false;
    std::condition_variable cv;  // sync path: client waits here
    CompletionFn completion;     // async path: set => heap-owned, worker frees
  };

  void worker_main(int idx);
  // True when the heap is close enough to capacity that queueing more work
  // would only deepen the collection spiral (shed instead).
  bool under_gc_pressure() const;

  Vm& vm_;
  Store& store_;
  std::size_t capacity_;

  std::mutex mu_;
  std::condition_variable queue_cv_;   // workers wait for work
  std::condition_variable space_cv_;   // clients wait for queue space
  std::deque<Pending*> queue_;
  bool stopping_ = false;
  std::atomic<std::uint64_t> completed_{0};
  std::vector<std::thread> workers_;
};

}  // namespace mgc::kv
