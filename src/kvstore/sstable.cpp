#include "kvstore/sstable.h"

#include <cstring>

#include "support/spinlock.h"

namespace mgc::kv {

void SsTableSet::add_table(
    std::unordered_map<std::uint64_t, StoredRow> rows) {
  MutexLock g(mu_);
  tables_.push_back(std::move(rows));
}

bool SsTableSet::get(std::uint64_t key, char* out, std::size_t out_cap,
                     std::size_t* value_len, std::uint64_t* version) const {
  MutexLock g(mu_);
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    simulate_io_cost();
    auto found = it->find(key);
    if (found != it->end()) {
      const StoredRow& row = found->second;
      if (value_len != nullptr) *value_len = row.value.size();
      if (version != nullptr) *version = row.version;
      if (out != nullptr && out_cap > 0 && !row.value.empty()) {
        std::memcpy(out, row.value.data(),
                    std::min(out_cap, row.value.size()));
      }
      return true;
    }
  }
  return false;
}

void SsTableSet::for_each(
    const std::function<void(std::uint64_t, const StoredRow&)>& fn) const {
  MutexLock g(mu_);
  for (auto it = tables_.rbegin(); it != tables_.rend(); ++it) {
    for (const auto& [key, row] : *it) fn(key, row);
  }
}

std::size_t SsTableSet::table_count() const {
  MutexLock g(mu_);
  return tables_.size();
}

std::size_t SsTableSet::total_rows() const {
  MutexLock g(mu_);
  std::size_t n = 0;
  for (const auto& t : tables_) n += t.size();
  return n;
}

void SsTableSet::simulate_io_cost() {
  // ~1 microsecond of "disk": a bloom-filter-miss-sized cost.
  for (int i = 0; i < 40; ++i) cpu_relax();
}

}  // namespace mgc::kv
