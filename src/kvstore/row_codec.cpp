#include "kvstore/row_codec.h"

#include <algorithm>
#include <cstring>

#include "support/check.h"

namespace mgc::kv {
namespace {
// Row header payload words.
constexpr std::size_t kKeyField = 0;
constexpr std::size_t kVersionField = 1;
constexpr std::size_t kLenField = 2;

std::size_t column_count(std::size_t value_len) {
  return value_len == 0 ? 0 : (value_len + kColumnBytes - 1) / kColumnBytes;
}
}  // namespace

Obj* encode_row(Mutator& m, std::uint64_t key, std::uint64_t version,
                const char* value, std::size_t value_len) {
  const std::size_t ncols = column_count(value_len);
  MGC_CHECK(ncols <= UINT16_MAX);
  Local head(m, m.alloc(static_cast<std::uint16_t>(ncols), 3));
  head->set_field(kKeyField, key);
  head->set_field(kVersionField, version);
  head->set_field(kLenField, value_len);
  for (std::size_t c = 0; c < ncols; ++c) {
    const std::size_t off = c * kColumnBytes;
    const std::size_t n = std::min(kColumnBytes, value_len - off);
    Obj* col = value != nullptr
                   ? managed::blob::create(m, value + off, n)
                   : managed::blob::create_zeroed(m, n);
    m.set_ref(head.get(), c, col);
  }
  return head.get();
}

std::uint64_t row_key(const Obj* row) { return row->field(kKeyField); }
std::uint64_t row_version(const Obj* row) { return row->field(kVersionField); }
std::size_t row_value_len(const Obj* row) { return row->field(kLenField); }

std::size_t row_copy_value(const Obj* row, char* out, std::size_t cap) {
  const std::size_t len = row_value_len(row);
  const std::size_t ncols = column_count(len);
  std::size_t copied = 0;
  for (std::size_t c = 0; c < ncols && copied < cap; ++c) {
    const Obj* col = row->ref(c);
    const std::size_t n =
        std::min(managed::blob::length(col), cap - copied);
    std::memcpy(out + copied, managed::blob::data(col), n);
    copied += n;
  }
  return copied;
}

std::size_t row_heap_bytes(std::size_t value_len) {
  const std::size_t ncols = column_count(value_len);
  std::size_t bytes = words_to_bytes(
      Obj::shape_words(static_cast<std::uint16_t>(ncols), 3));
  for (std::size_t c = 0; c < ncols; ++c) {
    const std::size_t n =
        std::min(kColumnBytes, value_len - c * kColumnBytes);
    bytes += words_to_bytes(Obj::shape_words(0, 1 + bytes_to_words(n)));
  }
  return bytes;
}

}  // namespace mgc::kv
