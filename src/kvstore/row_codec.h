// Row encoding for the kvstore. A row is a *column chain*, as in
// Cassandra: a header object referencing ~128-byte column fragments. This
// object-rich representation (a 1 KB row is ~11 managed objects, not one
// blob) is what makes full collections trace realistically many objects —
// the effect behind the paper's minutes-long ParallelOld pauses.
#pragma once

#include <cstdint>

#include "runtime/managed.h"

namespace mgc::kv {

inline constexpr std::size_t kColumnBytes = 112;

// Allocates a managed row (header + column fragments). May GC.
Obj* encode_row(Mutator& m, std::uint64_t key, std::uint64_t version,
                const char* value, std::size_t value_len);

std::uint64_t row_key(const Obj* row);
std::uint64_t row_version(const Obj* row);
std::size_t row_value_len(const Obj* row);

// Reassembles the value into `out` (up to cap); returns bytes copied.
// Does not allocate.
std::size_t row_copy_value(const Obj* row, char* out, std::size_t cap);

// Heap bytes a row of the given value length occupies (header + columns).
std::size_t row_heap_bytes(std::size_t value_len);

}  // namespace mgc::kv
