#include "kvstore/server.h"

#include <algorithm>

#include "support/affinity.h"
#include "support/env.h"
#include "support/fault.h"

namespace mgc::kv {

Server::Server(Vm& vm, Store& store, int workers, std::size_t queue_capacity)
    : vm_(vm) {
  MGC_CHECK(workers >= 1);
  cfg_.workers_per_shard = workers;
  cfg_.queue_capacity = queue_capacity;
  cfg_.pin_workers = false;
  auto s = std::make_unique<Shard>();
  s->index = 0;
  s->store = &store;
  shards_.push_back(std::move(s));
  start_shard_workers(*shards_[0], workers);
}

Server::Server(Vm& vm, ShardedStore& store, ServerConfig cfg)
    : vm_(vm), sharded_(&store), cfg_(cfg) {
  MGC_CHECK(cfg.workers_per_shard >= 1);
  const std::size_t n = store.shard_count();
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->index = static_cast<std::uint32_t>(i);
    s->store = &store.shard(i);
    shards_.push_back(std::move(s));
  }
  for (auto& s : shards_) start_shard_workers(*s, cfg.workers_per_shard);
}

Server::~Server() { shutdown(); }

void Server::start_shard_workers(Shard& s, int workers) {
  s.workers.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    s.workers.emplace_back([this, &s, i] { worker_main(s, i); });
  }
}

void Server::shutdown() {
  MutexLock outer(shutdown_mu_);
  if (stopped_) return;
  stopped_ = true;
  for (auto& s : shards_) {
    {
      MutexLock g(s->mu);
      s->stopping = true;
    }
    s->queue_cv.notify_all();
    // Wake clients blocked on a full queue too: they observe stopping and
    // return ExecStatus::kShutdown instead of hanging forever.
    s->space_cv.notify_all();
  }
  // Join every shard's workers only after all shards were told to stop, so
  // shutdown latency is the slowest shard's drain, not the sum of drains.
  for (auto& s : shards_) {
    for (auto& t : s->workers) {
      if (t.joinable()) t.join();
    }
    // The drain invariant must be read under the shard lock: `stopping`
    // rejects new submissions, but a try_submit caller that lost the race
    // may still be inside its critical section when the last worker exits.
    MutexLock g(s->mu);
    MGC_CHECK_MSG(s->queue.empty(), "server stopped with queued requests");
  }
}

bool Server::under_gc_pressure() const {
  const HeapUsage u = vm_.usage();
  return u.used > (u.capacity / 100) * 95;
}

std::size_t Server::shard_of_key(std::uint64_t key) const {
  if (sharded_ == nullptr) return 0;
  return sharded_->shard_of(key);
}

std::uint64_t Server::shed_count(std::size_t shard) const {
  return shards_[shard]->shed.load(std::memory_order_acquire);
}

Response Server::execute(const Request& req) {
  Shard& s = *shards_[shard_of_key(req.key)];
  Pending p;
  p.req = req;
  MutexLock l(s.mu);
  // Load shedding: a full queue is normally back-pressured by blocking, but
  // when the heap is also near capacity every queued request deepens the
  // collection spiral. Reject immediately with a typed status instead. The
  // decision is per shard: a hot shard sheds while its siblings keep
  // serving.
  if (fault::should_fire(fault::Site::kKvQueueFull) ||
      fault::should_fire(fault::Site::kKvShardQueueFull, s.index) ||
      (s.queue.size() >= cfg_.queue_capacity && under_gc_pressure())) {
    s.shed.fetch_add(1, std::memory_order_acq_rel);
    Response r;
    r.status = ExecStatus::kOverloaded;
    return r;
  }
  s.space_cv.wait(l, [&]() MGC_REQUIRES(s.mu) {
    return s.queue.size() < cfg_.queue_capacity || s.stopping;
  });
  if (s.stopping) {
    Response r;
    r.status = ExecStatus::kShutdown;
    return r;
  }
  s.queue.push_back(&p);
  s.queue_cv.notify_one();
  p.cv.wait(l, [&]() MGC_REQUIRES(s.mu) { return p.done; });
  return p.resp;
}

SubmitResult Server::try_submit(const Request& req, CompletionFn done) {
  Shard& s = *shards_[shard_of_key(req.key)];
  auto* p = new Pending;
  p->req = req;
  p->completion = std::move(done);
  {
    MutexLock g(s.mu);
    if (s.stopping) {
      delete p;
      return SubmitResult::kShutdown;
    }
    if (fault::should_fire(fault::Site::kKvQueueFull) ||
        fault::should_fire(fault::Site::kKvShardQueueFull, s.index) ||
        (s.queue.size() >= cfg_.queue_capacity && under_gc_pressure())) {
      s.shed.fetch_add(1, std::memory_order_acq_rel);
      delete p;
      return SubmitResult::kOverloaded;
    }
    s.queue.push_back(p);
  }
  s.queue_cv.notify_one();
  return SubmitResult::kAccepted;
}

void Server::worker_main(Shard& s, int widx) {
  if (cfg_.pin_workers) {
    // Best effort: shard i's workers share core i so each shard's working
    // set stays core-local. Refusal (no affinity syscall, 1-core box) just
    // leaves the worker floating.
    (void)pin_this_thread(static_cast<int>(s.index));
  }
  Mutator m(vm_,
            "kv-worker-s" + std::to_string(s.index) + "-" +
                std::to_string(widx),
            env::seed() +
                0x517cc1b727220a95ULL *
                    static_cast<std::uint64_t>(
                        s.index * 64 + static_cast<std::uint32_t>(widx) + 1));
  std::vector<char> scratch(64 * 1024);
  while (true) {
    Pending* p = nullptr;
    {
      // Blocked while waiting: GC pauses proceed without this worker.
      m.enter_blocked();
      MutexLock l(s.mu);
      s.queue_cv.wait(l, [&]() MGC_REQUIRES(s.mu) { return s.stopping || !s.queue.empty(); });
      if (!s.queue.empty()) {
        p = s.queue.front();
        s.queue.pop_front();
        s.space_cv.notify_one();
      }
      l.unlock();
      m.leave_blocked();
      if (p == nullptr) break;  // stopping and drained
    }

    Response resp;
    try {
      switch (p->req.op) {
        case OpType::kRead: {
          std::size_t len = 0;
          resp.found = s.store->get(m, p->req.key, scratch.data(),
                                    scratch.size(), &len);
          break;
        }
        case OpType::kUpdate:
        case OpType::kInsert: {
          const std::size_t len = std::min(p->req.value_len, scratch.size());
          synth_value(p->req.key, scratch.data(), len);
          std::uint64_t seq = 0;
          resp.found = s.store->put(m, p->req.key, scratch.data(), len, &seq);
          resp.seq = seq;
          if (!resp.found) resp.status = ExecStatus::kOverloaded;
          break;
        }
      }
    } catch (const OutOfMemoryError&) {
      // The allocation ladder ran dry mid-request. The request is lost but
      // the worker survives: degrade to a typed rejection, don't die.
      resp.found = false;
      resp.status = ExecStatus::kOverloaded;
    }
    completed_.fetch_add(1, std::memory_order_acq_rel);

    if (p->completion) {
      // Async path: the worker owns the Pending. Run the completion outside
      // the shard mutex — it only posts to the net layer's completion
      // queue, but must never be able to deadlock against submit paths
      // taking shard mutexes.
      p->completion(resp);
      delete p;
    } else {
      // Notify under the lock: the client owns `p` and destroys it as soon
      // as it observes done (see Vm::vm_thread_main for the same pattern).
      MutexLock g(s.mu);
      p->resp = resp;
      p->done = true;
      p->cv.notify_one();
    }
  }
}

}  // namespace mgc::kv
