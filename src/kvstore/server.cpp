#include "kvstore/server.h"

#include "support/env.h"
#include "support/fault.h"

namespace mgc::kv {

Server::Server(Vm& vm, Store& store, int workers, std::size_t queue_capacity)
    : vm_(vm), store_(store), capacity_(queue_capacity) {
  MGC_CHECK(workers >= 1);
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

Server::~Server() { shutdown(); }

void Server::shutdown() {
  {
    std::lock_guard<std::mutex> g(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Wake clients blocked on a full queue too: they observe stopping_ and
  // return ExecStatus::kShutdown instead of hanging forever.
  space_cv_.notify_all();
  for (auto& t : workers_) {
    if (t.joinable()) t.join();
  }
  MGC_CHECK_MSG(queue_.empty(), "server stopped with queued requests");
}

bool Server::under_gc_pressure() const {
  const HeapUsage u = vm_.usage();
  return u.used > (u.capacity / 100) * 95;
}

Response Server::execute(const Request& req) {
  Pending p;
  p.req = req;
  std::unique_lock<std::mutex> l(mu_);
  // Load shedding: a full queue is normally back-pressured by blocking, but
  // when the heap is also near capacity every queued request deepens the
  // collection spiral. Reject immediately with a typed status instead.
  if (fault::should_fire(fault::Site::kKvQueueFull) ||
      (queue_.size() >= capacity_ && under_gc_pressure())) {
    Response r;
    r.status = ExecStatus::kOverloaded;
    return r;
  }
  space_cv_.wait(l, [&] { return queue_.size() < capacity_ || stopping_; });
  if (stopping_) {
    Response r;
    r.status = ExecStatus::kShutdown;
    return r;
  }
  queue_.push_back(&p);
  queue_cv_.notify_one();
  p.cv.wait(l, [&] { return p.done; });
  return p.resp;
}

SubmitResult Server::try_submit(const Request& req, CompletionFn done) {
  auto* p = new Pending;
  p->req = req;
  p->completion = std::move(done);
  {
    std::lock_guard<std::mutex> g(mu_);
    if (stopping_) {
      delete p;
      return SubmitResult::kShutdown;
    }
    if (fault::should_fire(fault::Site::kKvQueueFull) ||
        (queue_.size() >= capacity_ && under_gc_pressure())) {
      delete p;
      return SubmitResult::kOverloaded;
    }
    queue_.push_back(p);
  }
  queue_cv_.notify_one();
  return SubmitResult::kAccepted;
}

void Server::worker_main(int idx) {
  Mutator m(vm_, "kv-worker-" + std::to_string(idx),
            env::seed() + 0x517cc1b727220a95ULL * static_cast<std::uint64_t>(idx + 1));
  std::vector<char> scratch(64 * 1024);
  while (true) {
    Pending* p = nullptr;
    {
      // Blocked while waiting: GC pauses proceed without this worker.
      m.enter_blocked();
      std::unique_lock<std::mutex> l(mu_);
      queue_cv_.wait(l, [&] { return stopping_ || !queue_.empty(); });
      if (!queue_.empty()) {
        p = queue_.front();
        queue_.pop_front();
        space_cv_.notify_one();
      }
      l.unlock();
      m.leave_blocked();
      if (p == nullptr) break;  // stopping and drained
    }

    Response resp;
    try {
      switch (p->req.op) {
        case OpType::kRead: {
          std::size_t len = 0;
          resp.found = store_.get(m, p->req.key, scratch.data(),
                                  scratch.size(), &len);
          break;
        }
        case OpType::kUpdate:
        case OpType::kInsert: {
          const std::size_t len = std::min(p->req.value_len, scratch.size());
          // Deterministic value bytes derived from the key.
          for (std::size_t i = 0; i < std::min<std::size_t>(len, 16); ++i) {
            scratch[i] = static_cast<char>(p->req.key >> (i % 8));
          }
          resp.found = store_.put(m, p->req.key, scratch.data(), len);
          if (!resp.found) resp.status = ExecStatus::kOverloaded;
          break;
        }
      }
    } catch (const OutOfMemoryError&) {
      // The allocation ladder ran dry mid-request. The request is lost but
      // the worker survives: degrade to a typed rejection, don't die.
      resp.found = false;
      resp.status = ExecStatus::kOverloaded;
    }
    completed_.fetch_add(1, std::memory_order_acq_rel);

    if (p->completion) {
      // Async path: the worker owns the Pending. Run the completion outside
      // mu_ — it only posts to the net layer's completion queue, but must
      // never be able to deadlock against submit paths taking mu_.
      p->completion(resp);
      delete p;
    } else {
      // Notify under the lock: the client owns `p` and destroys it as soon
      // as it observes done (see Vm::vm_thread_main for the same pattern).
      std::lock_guard<std::mutex> g(mu_);
      p->resp = resp;
      p->done = true;
      p->cv.notify_one();
    }
  }
}

}  // namespace mgc::kv
