// Commit log: every mutation is appended as a managed record blob.
// Segments accumulate on the heap; a flush archives (drops) segments older
// than the retention budget — unless the stress configuration sets the
// retention to the heap size, in which case the log grows until the old
// generation saturates (the paper's §4.1 stress test).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <vector>

#include "runtime/vm.h"
#include "support/mutex.h"

namespace mgc::kv {

class CommitLog {
 public:
  // `fault_scope` tags this log's kCommitLogWrite fault checks (the shard
  // index under ShardedStore), so MGC_FAULT="commitlog-write:shard=K"
  // injects append failures into exactly one shard's log.
  CommitLog(Vm& vm, std::size_t segment_bytes, std::size_t retention_bytes,
            std::uint32_t fault_scope = 0);
  ~CommitLog();

  // Appends a mutation record; rotates the segment when full and drops the
  // oldest segments beyond the retention budget. May GC. Returns false —
  // without mutating the log — when the write is refused (fault site
  // kCommitLogWrite models a failed/slow log device); callers surface that
  // as a retryable failure rather than asserting.
  bool append(Mutator& m, std::uint64_t key, const char* value,
              std::size_t value_len);

  // Drops all segments (after a memtable flush made them redundant).
  void truncate(Mutator& m);

  // Recovery: replays every retained record in append order (oldest
  // retained segment first, oldest record first), invoking
  // fn(key, value, value_len). Records dropped by the retention policy are
  // gone — replay yields a suffix of the append history. `fn` must not
  // allocate on the managed heap: replay walks raw record pointers that a
  // collection could move.
  void replay(Mutator& m,
              const std::function<void(std::uint64_t key, const char* value,
                                       std::size_t value_len)>& fn);

  std::size_t approx_bytes() const {
    return bytes_.load(std::memory_order_acquire);
  }
  // Approximate (unsynchronized) — tests and stats only; see the .cpp.
  std::size_t segment_count() const MGC_NO_THREAD_SAFETY_ANALYSIS;

 private:
  void rotate_locked(Mutator& m) MGC_REQUIRES(mu_);

  Vm& vm_;
  std::size_t segment_bytes_;
  std::size_t retention_bytes_;
  std::uint32_t fault_scope_;

  Mutex mu_{LockRank::kCommitLog, "commit-log"};
  // Active segment: a managed list of record blobs.
  std::size_t active_root_;
  std::size_t active_bytes_ MGC_GUARDED_BY(mu_) = 0;
  // Archived segments, oldest first. Each owns a global root slot.
  std::vector<std::pair<std::size_t, std::size_t>> archived_
      MGC_GUARDED_BY(mu_);  // root, bytes
  std::vector<std::size_t> free_roots_ MGC_GUARDED_BY(mu_);
  std::atomic<std::size_t> bytes_{0};
  // Registered with the Vm: the last-ditch collection rung drops archived
  // segments ("flushed to disk") before declaring OutOfMemory — the
  // SoftReference-clearing analogue of this heap.
  std::size_t pressure_hook_id_ = 0;
};

}  // namespace mgc::kv
