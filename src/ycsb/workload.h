// YCSB-like workload specification: a load phase populating the store and
// a transaction phase with a read/update/insert mix over a zipfian or
// uniform key distribution (Cooper et al., SoCC'10).
#pragma once

#include <cstdint>

namespace mgc::ycsb {

enum class KeyDistribution { kZipfian, kUniform };

struct WorkloadSpec {
  std::uint64_t record_count = 10000;
  std::uint64_t operation_count = 100000;
  double read_proportion = 0.5;
  double update_proportion = 0.5;
  double insert_proportion = 0.0;
  KeyDistribution distribution = KeyDistribution::kZipfian;
  std::size_t value_len = 1024;
  int client_threads = 4;
  // Requests kept in flight per client thread during the transaction
  // phase. 1 = the classic closed loop (one op, one round trip); >1 sends
  // windows of this many ops as pipelined batch frames (remote transport)
  // or back-to-back calls (in-process), and each op in a window is charged
  // the whole window's round-trip latency — the client-visible cost of an
  // op inside a pipeline.
  int pipeline_depth = 1;

  // The paper's custom client-side workload: 50% read / 50% update.
  static WorkloadSpec paper_custom(std::uint64_t records,
                                   std::uint64_t operations,
                                   int client_threads);

  void validate() const;
};

}  // namespace mgc::ycsb
