#include "ycsb/latency_stats.h"

#include <algorithm>

#include "support/check.h"
#include "support/clock.h"

namespace mgc::ycsb {

bool overlaps_pause(const std::vector<PauseEvent>& pauses,
                    std::int64_t start_ns, std::int64_t end_ns) {
  // First pause whose end is at/after the op start; overlap iff its start
  // is at/before the op end. Pauses are non-overlapping and sorted.
  auto it = std::lower_bound(
      pauses.begin(), pauses.end(), start_ns,
      [](const PauseEvent& e, std::int64_t t) { return e.end_ns < t; });
  return it != pauses.end() && it->start_ns <= end_ns;
}

LatencyStats compute_latency_stats(const std::vector<OpSample>& samples,
                                   kv::OpType op,
                                   const std::vector<PauseEvent>& pauses) {
  LatencyStats st;
  double sum = 0;
  for (const OpSample& s : samples) {
    if (s.op != op) continue;
    const double ms = ns_to_ms(s.latency_ns);
    if (st.count == 0) {
      st.min_ms = st.max_ms = ms;
    } else {
      st.min_ms = std::min(st.min_ms, ms);
      st.max_ms = std::max(st.max_ms, ms);
    }
    sum += ms;
    ++st.count;
  }
  if (st.count == 0) return st;
  st.avg_ms = sum / static_cast<double>(st.count);

  struct BandDef {
    std::string label;
    double lo;  // inclusive multiple of avg
    double hi;  // exclusive; <=0 means unbounded
  };
  const BandDef defs[] = {
      {"0.5x-1.5x AVG", 0.5, 1.5}, {">2x AVG", 2.0, -1.0},
      {">4x AVG", 4.0, -1.0},      {">8x AVG", 8.0, -1.0},
      {">16x AVG", 16.0, -1.0},
  };

  for (const BandDef& def : defs) {
    auto in_band = [&](double ms) {
      return def.hi > 0 ? (ms >= def.lo * st.avg_ms && ms <= def.hi * st.avg_ms)
                        : (ms > def.lo * st.avg_ms);
    };
    std::size_t reqs = 0;
    for (const OpSample& s : samples) {
      if (s.op == op && in_band(ns_to_ms(s.latency_ns))) ++reqs;
    }
    std::size_t gcs = 0;
    for (const PauseEvent& e : pauses) {
      if (in_band(e.duration_ms())) ++gcs;
    }
    LatencyBand band;
    band.label = def.label;
    band.pct_reqs =
        100.0 * static_cast<double>(reqs) / static_cast<double>(st.count);
    band.pct_gcs = pauses.empty() ? 0.0
                                  : 100.0 * static_cast<double>(gcs) /
                                        static_cast<double>(pauses.size());
    st.bands.push_back(band);
  }
  return st;
}

LatencyStats merge_latency_stats(const std::vector<LatencyStats>& parts) {
  LatencyStats merged;
  for (const LatencyStats& p : parts) {
    if (p.count == 0) continue;
    const double w = static_cast<double>(p.count);
    if (merged.count == 0) {
      merged.min_ms = p.min_ms;
      merged.max_ms = p.max_ms;
      merged.bands.resize(p.bands.size());
      for (std::size_t i = 0; i < p.bands.size(); ++i) {
        merged.bands[i].label = p.bands[i].label;
      }
    } else {
      merged.min_ms = std::min(merged.min_ms, p.min_ms);
      merged.max_ms = std::max(merged.max_ms, p.max_ms);
      MGC_CHECK_MSG(merged.bands.size() == p.bands.size(),
                    "merge_latency_stats: mismatched band structure");
    }
    // Accumulate count-weighted sums; normalized once all parts are in.
    merged.avg_ms += p.avg_ms * w;
    for (std::size_t i = 0; i < p.bands.size(); ++i) {
      merged.bands[i].pct_reqs += p.bands[i].pct_reqs * w;
      merged.bands[i].pct_gcs += p.bands[i].pct_gcs * w;
    }
    merged.count += p.count;
  }
  if (merged.count == 0) return merged;
  const double total = static_cast<double>(merged.count);
  merged.avg_ms /= total;
  for (LatencyBand& b : merged.bands) {
    b.pct_reqs /= total;
    b.pct_gcs /= total;
  }
  return merged;
}

}  // namespace mgc::ycsb
