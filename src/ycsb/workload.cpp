#include "ycsb/workload.h"

#include <cmath>

#include "support/check.h"

namespace mgc::ycsb {

WorkloadSpec WorkloadSpec::paper_custom(std::uint64_t records,
                                        std::uint64_t operations,
                                        int client_threads_) {
  WorkloadSpec spec;
  spec.record_count = records;
  spec.operation_count = operations;
  spec.read_proportion = 0.5;
  spec.update_proportion = 0.5;
  spec.insert_proportion = 0.0;
  spec.distribution = KeyDistribution::kZipfian;
  spec.client_threads = client_threads_;
  return spec;
}

void WorkloadSpec::validate() const {
  MGC_CHECK(record_count > 0);
  MGC_CHECK(client_threads >= 1);
  MGC_CHECK(pipeline_depth >= 1);
  const double total =
      read_proportion + update_proportion + insert_proportion;
  MGC_CHECK_MSG(std::abs(total - 1.0) < 1e-9,
                "operation proportions must sum to 1");
}

}  // namespace mgc::ycsb
