// YCSB-like client driver. Client threads are deliberately *not* VM
// mutators — they model the paper's separate 16-core client machine — and
// measure wall-clock latency around each synchronous server call, so every
// server-side stop-the-world pause shows up in the samples.
//
// Two transports, same closed-loop thread structure:
//   * in-process (default): direct kv::Server::execute calls, as in the
//     original harness — every existing bench/test is unchanged;
//   * remote: each client thread opens its own loopback TCP connection to
//     a net::NetServer and times the full socket round-trip, reproducing
//     the paper's actual measurement path (client box -> network -> server).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kvstore/server.h"
#include "ycsb/workload.h"

namespace mgc::ycsb {

struct OpSample {
  std::int64_t start_ns = 0;    // absolute Clock time
  std::int64_t latency_ns = 0;
  kv::OpType op = kv::OpType::kRead;
};

struct PhaseResult {
  std::vector<OpSample> samples;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  double duration_s() const;
  double throughput_ops_s() const;
};

// Loopback TCP endpoint for the remote transport.
struct RemoteEndpoint {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

class Client {
 public:
  // In-process transport: direct calls into the server's request queue.
  Client(kv::Server& server, const WorkloadSpec& spec, std::uint64_t seed);
  // Remote transport: one TCP connection per client thread.
  Client(const RemoteEndpoint& endpoint, const WorkloadSpec& spec,
         std::uint64_t seed);

  // Load phase: inserts records [0, record_count).
  PhaseResult load();
  // Transaction phase: operation_count ops with the configured mix.
  PhaseResult run();

 private:
  kv::Server* server_ = nullptr;  // null => remote transport
  RemoteEndpoint remote_;
  WorkloadSpec spec_;
  std::uint64_t seed_;
};

}  // namespace mgc::ycsb
