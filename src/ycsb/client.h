// YCSB-like client driver. Client threads are deliberately *not* VM
// mutators — they model the paper's separate 16-core client machine — and
// measure wall-clock latency around each synchronous server call, so every
// server-side stop-the-world pause shows up in the samples.
#pragma once

#include <cstdint>
#include <vector>

#include "kvstore/server.h"
#include "ycsb/workload.h"

namespace mgc::ycsb {

struct OpSample {
  std::int64_t start_ns = 0;    // absolute Clock time
  std::int64_t latency_ns = 0;
  kv::OpType op = kv::OpType::kRead;
};

struct PhaseResult {
  std::vector<OpSample> samples;
  std::int64_t start_ns = 0;
  std::int64_t end_ns = 0;
  double duration_s() const;
  double throughput_ops_s() const;
};

class Client {
 public:
  Client(kv::Server& server, const WorkloadSpec& spec, std::uint64_t seed);

  // Load phase: inserts records [0, record_count).
  PhaseResult load();
  // Transaction phase: operation_count ops with the configured mix.
  PhaseResult run();

 private:
  kv::Server& server_;
  WorkloadSpec spec_;
  std::uint64_t seed_;
};

}  // namespace mgc::ycsb
