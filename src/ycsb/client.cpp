#include "ycsb/client.h"

#include <memory>
#include <thread>

#include "net/blocking_client.h"
#include "support/check.h"
#include "support/clock.h"
#include "support/rng.h"

namespace mgc::ycsb {
namespace {

// Per-thread transport: either direct in-process execution or a private
// loopback TCP connection. Constructed on the client thread itself so the
// connect cost never lands inside a timed sample.
class Transport {
 public:
  Transport(kv::Server* server, const RemoteEndpoint& ep) : server_(server) {
    if (server_ == nullptr) {
      remote_ = std::make_unique<net::BlockingClient>(ep.host, ep.port);
      MGC_CHECK_MSG(remote_->connected(), "ycsb: cannot connect to kv server");
    }
  }

  kv::Response execute(const kv::Request& req) {
    return server_ != nullptr ? server_->execute(req) : remote_->execute(req);
  }

  // A pipelined window: one batch round trip on the remote transport,
  // back-to-back calls in-process (where there is no wire to pipeline).
  std::vector<kv::Response> execute_window(
      const std::vector<kv::Request>& reqs) {
    if (server_ != nullptr) {
      std::vector<kv::Response> out;
      out.reserve(reqs.size());
      for (const kv::Request& r : reqs) out.push_back(server_->execute(r));
      return out;
    }
    return remote_->execute_batch(reqs);
  }

 private:
  kv::Server* server_;
  std::unique_ptr<net::BlockingClient> remote_;
};

}  // namespace

double PhaseResult::duration_s() const { return ns_to_s(end_ns - start_ns); }

double PhaseResult::throughput_ops_s() const {
  const double d = duration_s();
  return d > 0 ? static_cast<double>(samples.size()) / d : 0.0;
}

Client::Client(kv::Server& server, const WorkloadSpec& spec,
               std::uint64_t seed)
    : server_(&server), spec_(spec), seed_(seed) {
  spec_.validate();
}

Client::Client(const RemoteEndpoint& endpoint, const WorkloadSpec& spec,
               std::uint64_t seed)
    : remote_(endpoint), spec_(spec), seed_(seed) {
  spec_.validate();
}

PhaseResult Client::load() {
  PhaseResult result;
  result.start_ns = now_ns();
  const int threads = spec_.client_threads;
  std::vector<std::vector<OpSample>> per_thread(
      static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([this, t, threads, &per_thread] {
      Transport transport(server_, remote_);
      auto& samples = per_thread[static_cast<std::size_t>(t)];
      for (std::uint64_t key = static_cast<std::uint64_t>(t);
           key < spec_.record_count;
           key += static_cast<std::uint64_t>(threads)) {
        kv::Request req;
        req.op = kv::OpType::kInsert;
        req.key = key;
        req.value_len = spec_.value_len;
        OpSample s;
        s.op = req.op;
        s.start_ns = now_ns();
        transport.execute(req);
        s.latency_ns = now_ns() - s.start_ns;
        samples.push_back(s);
      }
    });
  }
  for (auto& t : pool) t.join();
  result.end_ns = now_ns();
  for (auto& v : per_thread) {
    result.samples.insert(result.samples.end(), v.begin(), v.end());
  }
  return result;
}

PhaseResult Client::run() {
  PhaseResult result;
  result.start_ns = now_ns();
  const int threads = spec_.client_threads;
  const std::uint64_t per_thread_ops =
      spec_.operation_count / static_cast<std::uint64_t>(threads) + 1;
  std::vector<std::vector<OpSample>> per_thread(
      static_cast<std::size_t>(threads));
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([this, t, per_thread_ops, &per_thread] {
      Transport transport(server_, remote_);
      Rng rng(seed_ * 1000003 + static_cast<std::uint64_t>(t));
      ScrambledZipfian zipf(spec_.record_count);
      auto& samples = per_thread[static_cast<std::size_t>(t)];
      samples.reserve(per_thread_ops);
      std::uint64_t next_insert_key =
          spec_.record_count + static_cast<std::uint64_t>(t) * (1ULL << 40);
      const std::size_t depth =
          static_cast<std::size_t>(spec_.pipeline_depth);
      std::vector<kv::Request> window;
      window.reserve(depth);
      const auto next_request = [&] {
        kv::Request req;
        const double roll = rng.unit();
        if (roll < spec_.read_proportion) {
          req.op = kv::OpType::kRead;
        } else if (roll < spec_.read_proportion + spec_.update_proportion) {
          req.op = kv::OpType::kUpdate;
          req.value_len = spec_.value_len;
        } else {
          req.op = kv::OpType::kInsert;
          req.key = next_insert_key++;
          req.value_len = spec_.value_len;
        }
        if (req.op != kv::OpType::kInsert) {
          req.key = spec_.distribution == KeyDistribution::kZipfian
                        ? zipf.sample(rng)
                        : rng.below(spec_.record_count);
        }
        return req;
      };
      for (std::uint64_t i = 0; i < per_thread_ops;) {
        if (depth == 1) {
          const kv::Request req = next_request();
          OpSample s;
          s.op = req.op;
          s.start_ns = now_ns();
          transport.execute(req);
          s.latency_ns = now_ns() - s.start_ns;
          samples.push_back(s);
          ++i;
          continue;
        }
        // Pipelined: a window of `depth` ops rides one batch round trip;
        // every op in it is charged the window latency (that is what an op
        // costs a client that keeps `depth` requests in flight).
        window.clear();
        while (window.size() < depth && i + window.size() < per_thread_ops) {
          window.push_back(next_request());
        }
        const std::int64_t t0 = now_ns();
        transport.execute_window(window);
        const std::int64_t lat = now_ns() - t0;
        for (const kv::Request& req : window) {
          OpSample s;
          s.op = req.op;
          s.start_ns = t0;
          s.latency_ns = lat;
          samples.push_back(s);
        }
        i += window.size();
      }
    });
  }
  for (auto& t : pool) t.join();
  result.end_ns = now_ns();
  for (auto& v : per_thread) {
    result.samples.insert(result.samples.end(), v.begin(), v.end());
  }
  return result;
}

}  // namespace mgc::ycsb
