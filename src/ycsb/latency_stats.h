// The paper's client-latency statistics (Tables 5-7): AVG/MAX/MIN latency
// per operation type, the 0.5x-1.5x "normal" band, and the >2^n x AVG
// spike bands, each with the share of requests falling in the band and the
// share of those requests that overlapped a server GC pause.
#pragma once

#include <string>
#include <vector>

#include "runtime/gc_log.h"
#include "ycsb/client.h"

namespace mgc::ycsb {

struct LatencyBand {
  std::string label;     // "0.5x-1.5x AVG", ">2x AVG", ...
  double pct_reqs = 0;   // % of all requests whose latency is in this band
  // % of all GC pauses whose *duration* falls in this band (relative to
  // the average request latency) — the paper's correlation metric: every
  // pause is far longer than the average request, so the spike bands
  // report (near) 100% and the normal band 0%.
  double pct_gcs = 0;
};

struct LatencyStats {
  std::size_t count = 0;
  double avg_ms = 0;
  double max_ms = 0;
  double min_ms = 0;
  std::vector<LatencyBand> bands;
};

// Computes stats over the samples of one operation type.
LatencyStats compute_latency_stats(const std::vector<OpSample>& samples,
                                   kv::OpType op,
                                   const std::vector<PauseEvent>& pauses);

// Merges per-partition stats (per shard, per loop, per client slice) into
// one: counts sum, avg/bands are count-weighted, min/max span the parts.
// Parts must share the same band structure (they do when they all came
// from compute_latency_stats); empty parts are skipped.
LatencyStats merge_latency_stats(const std::vector<LatencyStats>& parts);

// True if [start_ns, end_ns] overlaps any pause. `pauses` must be sorted
// by start_ns (GcLog snapshots already are).
bool overlaps_pause(const std::vector<PauseEvent>& pauses,
                    std::int64_t start_ns, std::int64_t end_ns);

}  // namespace mgc::ycsb
