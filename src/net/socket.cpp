#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mgc::net {

void UniqueFd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool set_nodelay(int fd) {
  const int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

bool set_timeouts(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return true;
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  const bool rcv =
      ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) == 0;
  const bool snd =
      ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) == 0;
  return rcv && snd;
}

bool reuseport_supported() {
#ifdef SO_REUSEPORT
  static const bool supported = [] {
    UniqueFd probe(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
    if (!probe.valid()) return false;
    const int one = 1;
    return ::setsockopt(probe.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                        sizeof(one)) == 0;
  }();
  return supported;
#else
  return false;
#endif
}

UniqueFd listen_loopback(std::uint16_t port, int backlog,
                         std::uint16_t* bound_port, bool reuse_port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port) {
#ifdef SO_REUSEPORT
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
        0) {
      return {};
    }
#else
    return {};
#endif
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    return {};
  if (::listen(fd.get(), backlog) != 0) return {};
  if (!set_nonblocking(fd.get())) return {};
  if (bound_port != nullptr) {
    sockaddr_in actual{};
    socklen_t alen = sizeof(actual);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&actual), &alen) !=
        0)
      return {};
    *bound_port = ntohs(actual.sin_port);
  }
  return fd;
}

UniqueFd connect_tcp(const std::string& host, std::uint16_t port) {
  UniqueFd fd(::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0));
  if (!fd.valid()) return {};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) return {};
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return {};
  set_nodelay(fd.get());
  return fd;
}

bool send_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t off = 0;
  while (off < len) {
    const ssize_t n = ::send(fd, p + off, len - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

ssize_t recv_some(int fd, void* buf, std::size_t cap) {
  ssize_t n;
  do {
    n = ::recv(fd, buf, cap, 0);
  } while (n < 0 && errno == EINTR);
  return n;
}

}  // namespace mgc::net
