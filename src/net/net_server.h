// Epoll-based TCP front-end for kv::Server (paper §4.2's network path).
//
// One or more event-loop threads own disjoint sets of connections:
// non-blocking accept, read, decode, submit, encode, write. Execution
// itself happens on the kv::Server's per-shard worker pools (the VM
// mutators); workers hand results back via the owning loop's completion
// queue + eventfd wakeup, so loop threads never touch the managed heap and
// never block a safepoint — they play the role of the paper's network
// stack, not of application threads.
//
// Multi-loop front-end (cfg.loops > 1): preferred shape is one
// SO_REUSEPORT listener per loop on the same port — the kernel spreads
// incoming connections across loops with no shared accept lock. When
// SO_REUSEPORT is unavailable (or disabled via cfg.allow_reuseport), the
// server falls back to a single accept loop that hands accepted fds to the
// other loops round-robin through per-loop handoff queues. Either way a
// connection lives and dies on exactly one loop: its buffers, its epoll
// registration, and its completion sink are single-threaded state.
//
// Both protocol versions are served: single-op frames and version-2 batch
// (pipelined) request frames. A batch of N sub-requests counts as N frames
// for stats and admission control, and is answered with N single response
// frames (possibly interleaved across shards, in any order) — the
// per-loop drain invariant frames_out + dropped_responses == frames_in
// counts sub-frames on both sides.
//
// Backpressure / admission control: each connection may have at most
// max_inflight_per_conn requests submitted; past that the loop stops
// decoding (and, once the input buffer fills, stops reading) until
// completions drain. A batch is admitted whole once the connection has
// room for it (an idle connection may overshoot so an oversized window
// still makes progress). Total in-flight work is therefore bounded per
// loop, which is what keeps the shard queues finite without ever blocking
// an event loop.
//
// Shutdown is graceful: stop accepting, stop reading new requests, close
// un-adopted handoff fds, let in-flight requests finish, flush every
// response, then close. A drain deadline force-closes stragglers so
// shutdown() always returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "kvstore/server.h"
#include "net/socket.h"
#include "support/mutex.h"

namespace mgc::net {

struct NetServerConfig {
  std::uint16_t port = 0;  // 0 = kernel-assigned loopback port
  int backlog = 128;
  std::size_t max_inflight_per_conn = 64;
  std::size_t max_input_buffer = 1 << 20;  // per-connection decode buffer cap
  int drain_timeout_ms = 5000;             // graceful-shutdown deadline
  int loops = 1;                           // event-loop thread count
  // Pin loop i to core i (mod allowed cores; support/affinity). Best
  // effort.
  bool pin_loops = false;
  // When false, never bind SO_REUSEPORT listeners — exercise the
  // single-accept-loop + round-robin handoff fallback even on kernels
  // that support SO_REUSEPORT (tests rely on this switch).
  bool allow_reuseport = true;
};

struct NetServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t frames_in = 0;          // well-formed requests decoded
                                        // (batch sub-requests counted)
  std::uint64_t frames_out = 0;         // responses encoded for the wire
  std::uint64_t protocol_errors = 0;    // malformed frames (connection dropped)
  std::uint64_t dropped_responses = 0;  // completions whose connection died
};

class NetServer {
 public:
  // Binds and starts the event loops; aborts (MGC_CHECK) if no loopback
  // listen socket can be created — tests and benches cannot proceed. The
  // backend is any RequestSink: a kv::Server directly, or a repl::Node
  // interposing replication in front of one.
  explicit NetServer(kv::RequestSink& backend, NetServerConfig cfg = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t port() const { return port_; }
  std::size_t loop_count() const { return loops_.size(); }
  // True when every loop owns its own SO_REUSEPORT listener; false in the
  // single-accept-loop fallback.
  bool using_reuseport() const { return reuseport_; }

  // Graceful shutdown (idempotent): drains in-flight requests, flushes
  // responses, closes connections, joins every loop thread.
  void shutdown();

  NetServerStats stats() const;  // summed across loops
  // One entry per loop, index-aligned with the loop's fault scope. The
  // per-loop drain invariant (frames_out + dropped_responses == frames_in
  // after shutdown) holds entry by entry, not just in aggregate.
  std::vector<NetServerStats> per_loop_stats() const;

 private:
  struct Conn;
  struct Completion;
  struct CompletionSink;

  // One event loop: its own epoll, wakeup eventfd, listener (absent on
  // loops > 0 in fallback mode), connection table, completion sink, and
  // stats. Only its own thread touches any of it — except the handoff
  // queue, which the accepting loop feeds under handoff_mu.
  struct Loop {
    std::uint32_t index = 0;
    UniqueFd listen_fd;
    UniqueFd epoll_fd;
    UniqueFd wake_fd;
    std::shared_ptr<CompletionSink> sink;
    std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
    std::uint64_t next_conn_id = 0;
    bool draining = false;
    std::int64_t drain_deadline_ns = 0;

    // Fallback-mode fd handoff (accepting loop -> this loop).
    Mutex handoff_mu{LockRank::kNetHandoff, "net-handoff"};
    std::vector<int> handoff MGC_GUARDED_BY(handoff_mu);

    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> frames_in{0};
    std::atomic<std::uint64_t> frames_out{0};
    std::atomic<std::uint64_t> protocol_errors{0};
    std::atomic<std::uint64_t> dropped_responses{0};

    std::thread thread;
  };

  void loop_main(Loop& lp);
  void accept_ready(Loop& lp);
  // Registers an accepted fd with `lp` (it becomes a Conn on lp's epoll).
  void adopt_fd(Loop& lp, int fd);
  // Moves pending handoff fds into the loop — adopted normally, or closed
  // unserved when the loop is already draining.
  void drain_handoff(Loop& lp);
  void on_readable(Loop& lp, Conn* c);
  void process_input(Loop& lp, Conn* c);
  void submit_one(Loop& lp, Conn* c, std::uint64_t tag,
                  const kv::Request& req);
  void flush_out(Loop& lp, Conn* c);
  void process_completions(Loop& lp);
  void update_interest(Loop& lp, Conn* c);
  void begin_drain(Loop& lp);
  bool maybe_close(Loop& lp, Conn* c);  // true if the connection was destroyed
  void destroy(Loop& lp, Conn* c);
  void enqueue_response(Loop& lp, Conn* c, std::uint64_t tag,
                        const kv::Response& r);

  kv::RequestSink& backend_;
  NetServerConfig cfg_;
  std::uint16_t port_ = 0;
  bool reuseport_ = false;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::size_t rr_next_ = 0;  // fallback round-robin; accepting thread only

  std::atomic<bool> stop_requested_{false};
  Mutex shutdown_mu_{LockRank::kNetShutdown, "net-shutdown"};
  bool stopped_ MGC_GUARDED_BY(shutdown_mu_) = false;
};

}  // namespace mgc::net
