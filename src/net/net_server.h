// Epoll-based TCP front-end for kv::Server (paper §4.2's network path).
//
// One event-loop thread owns all connections: non-blocking accept, read,
// decode, submit, encode, write. Execution itself happens on the existing
// kv::Server worker pool (the VM mutators); workers hand results back via
// a completion queue + eventfd wakeup, so the loop thread never touches
// the managed heap and never blocks a safepoint — it plays the role of the
// paper's network stack, not of an application thread.
//
// Backpressure / admission control: each connection may have at most
// max_inflight_per_conn requests submitted; past that the loop stops
// decoding (and, once the input buffer fills, stops reading) until
// completions drain. Total in-flight work is therefore bounded by
// connections x max_inflight_per_conn, which is what keeps the worker
// queue finite without ever blocking the event loop.
//
// Shutdown is graceful: stop accepting, stop reading new requests, let
// in-flight requests finish, flush every response, then close. A drain
// deadline force-closes stragglers so shutdown() always returns.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "kvstore/server.h"
#include "net/socket.h"

namespace mgc::net {

struct NetServerConfig {
  std::uint16_t port = 0;  // 0 = kernel-assigned loopback port
  int backlog = 128;
  std::size_t max_inflight_per_conn = 64;
  std::size_t max_input_buffer = 1 << 20;  // per-connection decode buffer cap
  int drain_timeout_ms = 5000;             // graceful-shutdown deadline
};

struct NetServerStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t frames_in = 0;          // well-formed requests decoded
  std::uint64_t frames_out = 0;         // responses encoded for the wire
  std::uint64_t protocol_errors = 0;    // malformed frames (connection dropped)
  std::uint64_t dropped_responses = 0;  // completions whose connection died
};

class NetServer {
 public:
  // Binds and starts the event loop; aborts (MGC_CHECK) if the loopback
  // listen socket cannot be created — tests and benches cannot proceed.
  explicit NetServer(kv::Server& backend, NetServerConfig cfg = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  std::uint16_t port() const { return port_; }

  // Graceful shutdown (idempotent): drains in-flight requests, flushes
  // responses, closes connections, joins the loop thread.
  void shutdown();

  NetServerStats stats() const;

 private:
  struct Conn;
  struct Completion;
  struct CompletionSink;

  void loop_main();
  void accept_ready();
  void on_readable(Conn* c);
  void process_input(Conn* c);
  void flush_out(Conn* c);
  void process_completions();
  void update_interest(Conn* c);
  void begin_drain();
  bool maybe_close(Conn* c);  // true if the connection was destroyed
  void destroy(Conn* c);
  void enqueue_response(Conn* c, std::uint64_t tag, const kv::Response& r);

  kv::Server& backend_;
  NetServerConfig cfg_;
  UniqueFd listen_fd_;
  UniqueFd epoll_fd_;
  UniqueFd wake_fd_;
  std::uint16_t port_ = 0;

  // Shared with worker-thread completion callbacks; outlives the server if
  // a callback is still in flight when we tear down (it then drops).
  std::shared_ptr<CompletionSink> sink_;

  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_;

  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  std::int64_t drain_deadline_ns_ = 0;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> closed_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> dropped_responses_{0};

  std::thread loop_;
  std::mutex shutdown_mu_;  // serializes shutdown() callers
  bool stopped_ = false;
};

}  // namespace mgc::net
