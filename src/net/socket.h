// Thin POSIX socket helpers shared by the epoll server, the blocking
// client, and the fault-injection tests. All sockets are loopback TCP —
// the "network" in this reproduction is the kernel's loopback path, which
// is enough to move request latency measurement off the server's own
// synchronization (paper §4.2 measures from a separate client box).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/types.h>

namespace mgc::net {

// RAII file descriptor. Movable, not copyable.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }
  UniqueFd(UniqueFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();  // closes if valid

 private:
  int fd_ = -1;
};

// Creates a non-blocking listening socket bound to 127.0.0.1:port
// (port 0 = kernel-assigned). On success *bound_port holds the actual
// port. With reuse_port the socket is bound with SO_REUSEPORT so several
// event loops can each own a listener on the same port and let the kernel
// spread incoming connections across them (the multi-loop front-end).
// Returns an invalid fd on failure.
UniqueFd listen_loopback(std::uint16_t port, int backlog,
                         std::uint16_t* bound_port, bool reuse_port = false);

// Feature probe: true when SO_REUSEPORT can actually be set on a TCP
// socket on this kernel. The multi-loop server falls back to a single
// accept loop with round-robin fd handoff when this is false.
bool reuseport_supported();

// Blocking connect to host:port with TCP_NODELAY. Invalid fd on failure.
UniqueFd connect_tcp(const std::string& host, std::uint16_t port);

bool set_nonblocking(int fd);
bool set_nodelay(int fd);

// Applies SO_RCVTIMEO and SO_SNDTIMEO so blocking send/recv fail with
// EAGAIN after timeout_ms instead of hanging forever (a stalled or
// GC-wedged server must surface as a client-side transport failure the
// retry policy can act on). timeout_ms <= 0 is a no-op.
bool set_timeouts(int fd, int timeout_ms);

// Blocking full-buffer send (MSG_NOSIGNAL, retries on EINTR / short
// writes). False on any hard error.
bool send_all(int fd, const void* data, std::size_t len);

// One blocking recv; returns bytes read, 0 on orderly EOF, -1 on error.
ssize_t recv_some(int fd, void* buf, std::size_t cap);

}  // namespace mgc::net
