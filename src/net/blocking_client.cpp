#include "net/blocking_client.h"

#include "support/check.h"

namespace mgc::net {

BlockingClient::BlockingClient(const std::string& host, std::uint16_t port)
    : fd_(connect_tcp(host, port)), next_tag_(1) {}

bool BlockingClient::call(const kv::Request& req, ResponseFrame* out) {
  if (!fd_.valid()) return false;
  wbuf_.clear();
  RequestFrame rf;
  rf.req = req;
  rf.tag = next_tag_++;
  encode_request(rf, wbuf_);
  if (!send_all(fd_.get(), wbuf_.data(), wbuf_.size())) {
    fd_.reset();
    return false;
  }

  for (;;) {
    RequestFrame ignored;
    std::size_t consumed = 0;
    const DecodeResult r = decode_frame(rbuf_.data() + roff_,
                                        rbuf_.size() - roff_, &consumed,
                                        &ignored, out);
    if (r == DecodeResult::kResponse) {
      roff_ += consumed;
      if (roff_ >= rbuf_.size()) {
        rbuf_.clear();
        roff_ = 0;
      }
      // With one request in flight the tag must match; a mismatch means the
      // server cross-wired responses, which callers treat as a transport
      // failure (and tests assert on directly).
      return out->tag == rf.tag;
    }
    if (r == DecodeResult::kError || r == DecodeResult::kRequest) {
      fd_.reset();
      return false;
    }
    // kNeedMore: pull more bytes off the socket (blocking).
    std::uint8_t chunk[4096];
    const ssize_t n = recv_some(fd_.get(), chunk, sizeof(chunk));
    if (n <= 0) {
      fd_.reset();
      return false;
    }
    rbuf_.insert(rbuf_.end(), chunk, chunk + n);
  }
}

kv::Response BlockingClient::execute(const kv::Request& req) {
  ResponseFrame f;
  MGC_CHECK_MSG(call(req, &f), "net: remote execute failed");
  kv::Response r;
  r.found = f.found;
  r.status = f.status;
  return r;
}

}  // namespace mgc::net
