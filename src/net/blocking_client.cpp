#include "net/blocking_client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <unordered_map>

namespace mgc::net {

BlockingClient::BlockingClient(const std::string& host, std::uint16_t port,
                               RetryPolicy policy)
    : host_(host),
      port_(port),
      policy_(policy),
      next_tag_(1),
      jitter_rng_(policy.jitter_seed) {
  fd_ = connect_tcp(host_, port_);
  if (fd_.valid()) set_timeouts(fd_.get(), policy_.timeout_ms);
}

int BlockingClient::next_backoff_ms(int prev_ms) {
  if (prev_ms < 0) prev_ms = 0;
  if (!policy_.decorrelated_jitter) {
    return std::min(prev_ms * 2, policy_.backoff_cap_ms);
  }
  const auto lo = static_cast<std::uint64_t>(
      policy_.backoff_initial_ms > 0 ? policy_.backoff_initial_ms : 0);
  const std::uint64_t hi =
      std::max(lo, 3 * static_cast<std::uint64_t>(prev_ms));
  const std::uint64_t d = jitter_rng_.in_range(lo, hi);
  const auto cap = static_cast<std::uint64_t>(
      policy_.backoff_cap_ms > 0 ? policy_.backoff_cap_ms : 0);
  return static_cast<int>(std::min(d, cap));
}

bool BlockingClient::call_once(const kv::Request& req, ResponseFrame* out) {
  if (!fd_.valid() && !reconnect()) return false;
  return call(req, out);
}

bool BlockingClient::reconnect() {
  fd_.reset();
  // Any buffered bytes belong to the dead connection's response stream.
  rbuf_.clear();
  roff_ = 0;
  fd_ = connect_tcp(host_, port_);
  if (!fd_.valid()) return false;
  set_timeouts(fd_.get(), policy_.timeout_ms);
  ++reconnects_;
  return true;
}

bool BlockingClient::call(const kv::Request& req, ResponseFrame* out) {
  if (!fd_.valid()) return false;
  wbuf_.clear();
  RequestFrame rf;
  rf.req = req;
  rf.tag = next_tag_++;
  encode_request(rf, wbuf_);
  if (!send_all(fd_.get(), wbuf_.data(), wbuf_.size())) {
    fd_.reset();
    return false;
  }

  for (;;) {
    RequestFrame ignored;
    std::size_t consumed = 0;
    const DecodeResult r = decode_frame(rbuf_.data() + roff_,
                                        rbuf_.size() - roff_, &consumed,
                                        &ignored, out);
    if (r == DecodeResult::kResponse) {
      roff_ += consumed;
      if (roff_ >= rbuf_.size()) {
        rbuf_.clear();
        roff_ = 0;
      }
      // With one request in flight the tag must match; a mismatch means the
      // server cross-wired responses, which callers treat as a transport
      // failure (and tests assert on directly).
      return out->tag == rf.tag;
    }
    if (r == DecodeResult::kError || r == DecodeResult::kRequest) {
      fd_.reset();
      return false;
    }
    // kNeedMore: pull more bytes off the socket (blocking, bounded by the
    // socket timeout — a wedged server surfaces as a failed call here).
    std::uint8_t chunk[4096];
    const ssize_t n = recv_some(fd_.get(), chunk, sizeof(chunk));
    if (n <= 0) {
      fd_.reset();
      return false;
    }
    rbuf_.insert(rbuf_.end(), chunk, chunk + n);
  }
}

bool BlockingClient::submit_batch(const std::vector<kv::Request>& reqs,
                                  std::vector<ResponseFrame>* out) {
  if (!fd_.valid() || reqs.empty()) return false;
  wbuf_.clear();
  std::vector<RequestFrame> frames;
  frames.reserve(reqs.size());
  for (const kv::Request& r : reqs) {
    RequestFrame rf;
    rf.req = r;
    rf.tag = next_tag_++;
    frames.push_back(rf);
  }
  // One batch frame per kMaxBatchCount window; all windows go out in a
  // single send so the whole pipeline costs one syscall on this side.
  for (std::size_t off = 0; off < frames.size(); off += kMaxBatchCount) {
    const std::size_t n =
        std::min<std::size_t>(kMaxBatchCount, frames.size() - off);
    const std::vector<RequestFrame> chunk(
        frames.begin() + static_cast<std::ptrdiff_t>(off),
        frames.begin() + static_cast<std::ptrdiff_t>(off + n));
    encode_request_batch(chunk, wbuf_);
  }
  if (!send_all(fd_.get(), wbuf_.data(), wbuf_.size())) {
    fd_.reset();
    return false;
  }

  out->assign(reqs.size(), ResponseFrame{});
  std::unordered_map<std::uint64_t, std::size_t> pending;  // tag -> index
  pending.reserve(frames.size());
  for (std::size_t i = 0; i < frames.size(); ++i) {
    pending.emplace(frames[i].tag, i);
  }
  // A response with a tag we are not waiting for — never issued, or already
  // answered — means the stream is cross-wired: transport failure.
  const auto deliver = [&](const ResponseFrame& f) {
    auto it = pending.find(f.tag);
    if (it == pending.end()) return false;
    (*out)[it->second] = f;
    pending.erase(it);
    return true;
  };
  while (!pending.empty()) {
    DecodedFrame df;
    std::size_t consumed = 0;
    const DecodeResult r = decode_any(rbuf_.data() + roff_,
                                      rbuf_.size() - roff_, &consumed, &df);
    bool ok = true;
    switch (r) {
      case DecodeResult::kResponse:
        roff_ += consumed;
        ok = deliver(df.resp);
        break;
      case DecodeResult::kBatchResponse:
        roff_ += consumed;
        for (const ResponseFrame& f : df.batch_resp) {
          if (!deliver(f)) {
            ok = false;
            break;
          }
        }
        break;
      case DecodeResult::kNeedMore: {
        std::uint8_t chunk[4096];
        const ssize_t n = recv_some(fd_.get(), chunk, sizeof(chunk));
        if (n <= 0) {
          fd_.reset();
          return false;
        }
        rbuf_.insert(rbuf_.end(), chunk, chunk + n);
        break;
      }
      default:  // kError, or the server sending request frames
        ok = false;
        break;
    }
    if (!ok) {
      fd_.reset();
      return false;
    }
    if (roff_ >= rbuf_.size()) {
      rbuf_.clear();
      roff_ = 0;
    }
  }
  return true;
}

std::vector<kv::Response> BlockingClient::execute_batch(
    const std::vector<kv::Request>& reqs) {
  std::vector<kv::Response> out(reqs.size());
  for (kv::Response& r : out) r.status = kv::ExecStatus::kShutdown;
  if (reqs.empty()) return out;

  std::vector<std::size_t> todo(reqs.size());
  for (std::size_t i = 0; i < todo.size(); ++i) todo[i] = i;
  int delay_ms = policy_.backoff_initial_ms;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
      delay_ms = next_backoff_ms(delay_ms);
    }
    if (!fd_.valid() && !reconnect()) continue;
    std::vector<kv::Request> window;
    window.reserve(todo.size());
    for (std::size_t idx : todo) window.push_back(reqs[idx]);
    std::vector<ResponseFrame> frames;
    if (!submit_batch(window, &frames)) continue;  // transport: retry window
    std::vector<std::size_t> still;
    for (std::size_t i = 0; i < todo.size(); ++i) {
      out[todo[i]].found = frames[i].found;
      out[todo[i]].status = frames[i].status;
      // Shed under GC pressure: only the shed subset is resent after the
      // backoff, answered entries keep their responses.
      if (frames[i].status == kv::ExecStatus::kOverloaded) {
        still.push_back(todo[i]);
      }
    }
    todo = std::move(still);
    if (todo.empty()) return out;
  }
  return out;
}

kv::Response BlockingClient::execute(const kv::Request& req) {
  kv::Response last;
  last.status = kv::ExecStatus::kShutdown;  // transport never answered
  int delay_ms = policy_.backoff_initial_ms;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
      delay_ms = next_backoff_ms(delay_ms);
    }
    if (!fd_.valid() && !reconnect()) continue;
    ResponseFrame f;
    if (!call(req, &f)) continue;  // transport failure: reconnect and retry
    last.found = f.found;
    last.status = f.status;
    if (last.status != kv::ExecStatus::kOverloaded) return last;
    // Overloaded: the server shed this request under GC pressure. Backing
    // off and retrying is the contract; if every attempt is shed, the
    // caller sees the typed kOverloaded response.
  }
  return last;
}

}  // namespace mgc::net
