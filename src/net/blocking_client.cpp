#include "net/blocking_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace mgc::net {

BlockingClient::BlockingClient(const std::string& host, std::uint16_t port,
                               RetryPolicy policy)
    : host_(host), port_(port), policy_(policy), next_tag_(1) {
  fd_ = connect_tcp(host_, port_);
  if (fd_.valid()) set_timeouts(fd_.get(), policy_.timeout_ms);
}

bool BlockingClient::reconnect() {
  fd_.reset();
  // Any buffered bytes belong to the dead connection's response stream.
  rbuf_.clear();
  roff_ = 0;
  fd_ = connect_tcp(host_, port_);
  if (!fd_.valid()) return false;
  set_timeouts(fd_.get(), policy_.timeout_ms);
  ++reconnects_;
  return true;
}

bool BlockingClient::call(const kv::Request& req, ResponseFrame* out) {
  if (!fd_.valid()) return false;
  wbuf_.clear();
  RequestFrame rf;
  rf.req = req;
  rf.tag = next_tag_++;
  encode_request(rf, wbuf_);
  if (!send_all(fd_.get(), wbuf_.data(), wbuf_.size())) {
    fd_.reset();
    return false;
  }

  for (;;) {
    RequestFrame ignored;
    std::size_t consumed = 0;
    const DecodeResult r = decode_frame(rbuf_.data() + roff_,
                                        rbuf_.size() - roff_, &consumed,
                                        &ignored, out);
    if (r == DecodeResult::kResponse) {
      roff_ += consumed;
      if (roff_ >= rbuf_.size()) {
        rbuf_.clear();
        roff_ = 0;
      }
      // With one request in flight the tag must match; a mismatch means the
      // server cross-wired responses, which callers treat as a transport
      // failure (and tests assert on directly).
      return out->tag == rf.tag;
    }
    if (r == DecodeResult::kError || r == DecodeResult::kRequest) {
      fd_.reset();
      return false;
    }
    // kNeedMore: pull more bytes off the socket (blocking, bounded by the
    // socket timeout — a wedged server surfaces as a failed call here).
    std::uint8_t chunk[4096];
    const ssize_t n = recv_some(fd_.get(), chunk, sizeof(chunk));
    if (n <= 0) {
      fd_.reset();
      return false;
    }
    rbuf_.insert(rbuf_.end(), chunk, chunk + n);
  }
}

kv::Response BlockingClient::execute(const kv::Request& req) {
  kv::Response last;
  last.status = kv::ExecStatus::kShutdown;  // transport never answered
  int delay_ms = policy_.backoff_initial_ms;
  for (int attempt = 0; attempt < policy_.max_attempts; ++attempt) {
    if (attempt > 0) {
      ++retries_;
      if (delay_ms > 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
      }
      delay_ms = std::min(delay_ms * 2, policy_.backoff_cap_ms);
    }
    if (!fd_.valid() && !reconnect()) continue;
    ResponseFrame f;
    if (!call(req, &f)) continue;  // transport failure: reconnect and retry
    last.found = f.found;
    last.status = f.status;
    if (last.status != kv::ExecStatus::kOverloaded) return last;
    // Overloaded: the server shed this request under GC pressure. Backing
    // off and retrying is the contract; if every attempt is shed, the
    // caller sees the typed kOverloaded response.
  }
  return last;
}

}  // namespace mgc::net
