// Binary wire protocol for the kv front-end (paper §4.2: the YCSB client
// talks to the server over a real socket, so server-side GC pauses become
// client-visible response-time spikes).
//
// Framing: every message is a little-endian u32 payload length followed by
// the payload. Payloads carry a fixed header (magic, version, kind) and a
// fixed-size body per kind; the decoder validates every field and never
// reads past the bytes it was given, so adversarial input (truncated,
// oversized-length, bit-flipped frames) is rejected without memory errors.
//
//   Request payload (24 bytes):
//     u8 magic, u8 version, u8 kind=0, u8 op, u64 tag, u64 key, u32 value_len
//   Response payload (13 bytes):
//     u8 magic, u8 version, u8 kind=1, u8 status, u64 tag, u8 found
//
// The tag is chosen by the client and echoed verbatim in the response, so
// clients (and tests) can detect cross-wired responses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kvstore/server.h"

namespace mgc::net {

inline constexpr std::uint8_t kMagic = 0xC5;
inline constexpr std::uint8_t kVersion = 1;

// Hard decode bounds. Both payloads are fixed-size today; the cap leaves
// room for versioned growth while still rejecting absurd length prefixes
// before any buffering happens.
inline constexpr std::uint32_t kMaxPayload = 64;
inline constexpr std::uint32_t kMaxValueLen = 1u << 20;

inline constexpr std::size_t kLenPrefixSize = 4;
inline constexpr std::size_t kRequestPayloadSize = 24;
inline constexpr std::size_t kResponsePayloadSize = 13;

enum class MsgKind : std::uint8_t { kRequest = 0, kResponse = 1 };

struct RequestFrame {
  kv::Request req;
  std::uint64_t tag = 0;
};

struct ResponseFrame {
  std::uint64_t tag = 0;
  kv::ExecStatus status = kv::ExecStatus::kOk;
  bool found = false;
};

// Appends one encoded frame to `out` (length prefix included).
void encode_request(const RequestFrame& f, std::vector<std::uint8_t>& out);
void encode_response(const ResponseFrame& f, std::vector<std::uint8_t>& out);

enum class DecodeResult {
  kNeedMore,   // not enough bytes yet for a whole frame — keep buffering
  kRequest,    // *req filled, *consumed bytes eaten
  kResponse,   // *resp filled, *consumed bytes eaten
  kError,      // malformed frame — the connection must be dropped
};

// Attempts to decode one frame from [data, data+len). On kRequest /
// kResponse sets *consumed and fills the matching out-param; on kNeedMore
// and kError nothing is consumed. Never reads outside [data, data+len).
DecodeResult decode_frame(const std::uint8_t* data, std::size_t len,
                          std::size_t* consumed, RequestFrame* req,
                          ResponseFrame* resp);

}  // namespace mgc::net
