// Binary wire protocol for the kv front-end (paper §4.2: the YCSB client
// talks to the server over a real socket, so server-side GC pauses become
// client-visible response-time spikes).
//
// Framing: every message is a little-endian u32 payload length followed by
// the payload. Payloads carry a fixed header (magic, version, kind) and a
// fixed-size body per kind; the decoder validates every field and never
// reads past the bytes it was given, so adversarial input (truncated,
// oversized-length, bit-flipped frames) is rejected without memory errors.
//
//   Request payload (24 bytes):
//     u8 magic, u8 version=1, u8 kind=0, u8 op, u64 tag, u64 key, u32 value_len
//   Response payload (13 bytes):
//     u8 magic, u8 version=1, u8 kind=1, u8 status, u64 tag, u8 found
//
// Pipelining (protocol version 2): a batch frame carries many logical
// requests/responses in one frame — one syscall on each side moves a whole
// window of operations, which is what lets a client keep N requests in
// flight per connection without N sends.
//
//   Batch request payload (8 + 21*count bytes):
//     u8 magic, u8 version=2, u8 kind=2, u8 reserved=0, u32 count,
//     count x { u8 op, u64 tag, u64 key, u32 value_len }
//   Batch response payload (8 + 10*count bytes):
//     u8 magic, u8 version=2, u8 kind=3, u8 reserved=0, u32 count,
//     count x { u8 status, u64 tag, u8 found }
//
// count is bounded (kMaxBatchCount) and the payload length must match the
// count exactly; a frame that fails any bound is rejected before buffering.
//
// The tag is chosen by the client and echoed verbatim in the response, so
// clients (and tests) can detect cross-wired responses. Batch entries keep
// their individual tags — responses to one batch may arrive as any mix of
// single/batch frames, in any order across shards.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kvstore/server.h"

namespace mgc::net {

inline constexpr std::uint8_t kMagic = 0xC5;
inline constexpr std::uint8_t kVersion = 1;       // single-op frames
inline constexpr std::uint8_t kBatchVersion = 2;  // pipelined batch frames

// Hard decode bounds. Single-op payloads are fixed-size; batch payloads
// are exactly header + count * entry, with the count capped, so an absurd
// length prefix is still rejected before any buffering happens.
inline constexpr std::uint32_t kMaxPayload = 64;
inline constexpr std::uint32_t kMaxValueLen = 1u << 20;
inline constexpr std::uint32_t kMaxBatchCount = 1024;

inline constexpr std::size_t kLenPrefixSize = 4;
inline constexpr std::size_t kRequestPayloadSize = 24;
inline constexpr std::size_t kResponsePayloadSize = 13;
inline constexpr std::size_t kBatchHeaderSize = 8;
inline constexpr std::size_t kBatchRequestEntrySize = 21;
inline constexpr std::size_t kBatchResponseEntrySize = 10;
inline constexpr std::uint32_t kMaxBatchPayload = static_cast<std::uint32_t>(
    kBatchHeaderSize + kMaxBatchCount * kBatchRequestEntrySize);

enum class MsgKind : std::uint8_t {
  kRequest = 0,
  kResponse = 1,
  kBatchRequest = 2,
  kBatchResponse = 3,
  // Replication-plane frames (version 2). Client-facing decoders reject
  // them: decode_any's header check recognizes only the four kinds above,
  // so a replication frame arriving on a client connection is a protocol
  // error, exactly like any other unknown kind. The strict codec for these
  // lives in replication/repl_wire.{h,cpp}.
  kReplAppend = 4,
  kReplAck = 5,
  kReplHeartbeat = 6,
  kReplVoteReq = 7,
  kReplVoteResp = 8,
  kReplHello = 9,
};

struct RequestFrame {
  kv::Request req;
  std::uint64_t tag = 0;
};

struct ResponseFrame {
  std::uint64_t tag = 0;
  kv::ExecStatus status = kv::ExecStatus::kOk;
  bool found = false;
};

// Appends one encoded frame to `out` (length prefix included).
void encode_request(const RequestFrame& f, std::vector<std::uint8_t>& out);
void encode_response(const ResponseFrame& f, std::vector<std::uint8_t>& out);

// Appends one batch frame carrying all the given items (1..kMaxBatchCount;
// MGC_CHECKed — callers split larger windows).
void encode_request_batch(const std::vector<RequestFrame>& items,
                          std::vector<std::uint8_t>& out);
void encode_response_batch(const std::vector<ResponseFrame>& items,
                           std::vector<std::uint8_t>& out);

enum class DecodeResult {
  kNeedMore,       // not enough bytes yet for a whole frame — keep buffering
  kRequest,        // *req filled, *consumed bytes eaten
  kResponse,       // *resp filled, *consumed bytes eaten
  kBatchRequest,   // batch_req filled, *consumed bytes eaten
  kBatchResponse,  // batch_resp filled, *consumed bytes eaten
  kError,          // malformed frame — the connection must be dropped
};

// One decoded frame of any kind; only the member matching the returned
// DecodeResult is meaningful.
struct DecodedFrame {
  RequestFrame req;
  ResponseFrame resp;
  std::vector<RequestFrame> batch_req;
  std::vector<ResponseFrame> batch_resp;
};

// Attempts to decode one frame (any kind, both protocol versions) from
// [data, data+len). On success sets *consumed and fills the matching
// member of *out; on kNeedMore and kError nothing is consumed. Never reads
// outside [data, data+len).
DecodeResult decode_any(const std::uint8_t* data, std::size_t len,
                        std::size_t* consumed, DecodedFrame* out);

// Single-frame compatibility wrapper: as decode_any, but batch frames are
// reported as kError (callers that speak only protocol version 1 treat
// pipelined traffic as a protocol violation). On kRequest / kResponse sets
// *consumed and fills the matching out-param; on kNeedMore and kError
// nothing is consumed.
DecodeResult decode_frame(const std::uint8_t* data, std::size_t len,
                          std::size_t* consumed, RequestFrame* req,
                          ResponseFrame* resp);

}  // namespace mgc::net
