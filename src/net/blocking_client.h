// Synchronous one-connection client for the kv wire protocol: the remote
// transport behind ycsb::Client's --net mode. One BlockingClient per
// client thread, one request in flight at a time (exactly the YCSB
// closed-loop model), blocking send/recv — the round-trip the caller
// times therefore includes the socket path plus whatever the server-side
// GC is doing.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kvstore/server.h"
#include "net/socket.h"
#include "net/wire.h"

namespace mgc::net {

class BlockingClient {
 public:
  BlockingClient(const std::string& host, std::uint16_t port);

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  bool connected() const { return fd_.valid(); }

  // One round trip: sends `req` with a fresh tag, blocks for the response.
  // Returns false on transport failure (connection reset / EOF / protocol
  // violation from the server side); *out is filled on success, including
  // the echoed tag so callers can verify responses are not cross-wired.
  bool call(const kv::Request& req, ResponseFrame* out);

  // Convenience wrapper for callers that only want the kv::Response shape.
  kv::Response execute(const kv::Request& req);

  std::uint64_t last_tag() const { return next_tag_ - 1; }

 private:
  UniqueFd fd_;
  std::uint64_t next_tag_;
  std::vector<std::uint8_t> wbuf_;
  std::vector<std::uint8_t> rbuf_;
  std::size_t roff_ = 0;
};

}  // namespace mgc::net
