// Synchronous one-connection client for the kv wire protocol: the remote
// transport behind ycsb::Client's --net mode. One BlockingClient per
// client thread, blocking send/recv — the round-trip the caller times
// therefore includes the socket path plus whatever the server-side GC is
// doing. Two shapes of in-flight window:
//
//   * call()/execute()            — one request in flight (exactly the
//     YCSB closed-loop model);
//   * submit_batch()/execute_batch() — a pipelined window: one version-2
//     batch frame carries the whole window, responses stream back in any
//     order (the sharded server answers per shard) and are matched by tag.
//
// Failure handling mirrors a real YCSB client box: every socket op runs
// under a timeout, a transport failure tears the connection down, and
// execute() retries with a fresh connection under capped exponential
// backoff. kOverloaded responses (server-side load shedding) are also
// backed off and retried — they are the server asking for exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kvstore/server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "support/rng.h"

namespace mgc::net {

// Governs execute()'s retry loop. The defaults keep tests fast while still
// riding out a multi-second server-side full GC.
struct RetryPolicy {
  int max_attempts = 5;         // total call attempts before giving up
  int timeout_ms = 2000;        // per-socket-op SO_RCVTIMEO/SO_SNDTIMEO
  int backoff_initial_ms = 10;  // delay before the first retry
  int backoff_cap_ms = 500;     // exponential backoff ceiling
  // Decorrelated jitter: after the first retry each delay is drawn
  // uniformly from [backoff_initial_ms, 3 * previous_delay], capped at
  // backoff_cap_ms. Pure exponential backoff synchronizes the retry
  // storms of every client that observed the same failover at the same
  // moment; jitter spreads them out. The draw comes from a client-local
  // RNG seeded with jitter_seed, so fault-replay runs that fix the seed
  // reproduce the exact same retry schedule.
  bool decorrelated_jitter = true;
  std::uint64_t jitter_seed = 0x6d67632d6a697401ULL;
};

class BlockingClient {
 public:
  BlockingClient(const std::string& host, std::uint16_t port,
                 RetryPolicy policy = {});

  BlockingClient(const BlockingClient&) = delete;
  BlockingClient& operator=(const BlockingClient&) = delete;

  bool connected() const { return fd_.valid(); }

  // One round trip: sends `req` with a fresh tag, blocks for the response.
  // Returns false on transport failure (connection reset / EOF / timeout /
  // protocol violation from the server side) and invalidates the
  // connection; *out is filled on success, including the echoed tag so
  // callers can verify responses are not cross-wired. No retries — this is
  // the single-attempt primitive execute() builds on.
  bool call(const kv::Request& req, ResponseFrame* out);

  // Reconnects if the connection is down, then performs exactly one
  // call(). For callers that run their own retry/redirect policy across
  // several servers (repl::ReplClient rotating through a replica set) —
  // execute() below retries against this one address only.
  bool call_once(const kv::Request& req, ResponseFrame* out);

  // Retrying wrapper: reconnects and backs off on transport failure, backs
  // off and resends on kOverloaded. Returns the last server response, or a
  // Response with status == ExecStatus::kShutdown if the transport never
  // produced one — it never aborts the process.
  kv::Response execute(const kv::Request& req);

  // Pipelined round trip: sends all of `reqs` as version-2 batch frames
  // (windows larger than kMaxBatchCount are split), then blocks until every
  // tag has been answered — responses may arrive as any mix of single and
  // batch frames, in any order. On success *out holds one ResponseFrame per
  // request, index-aligned with `reqs` (re-ordered by tag). Returns false
  // on transport failure or a response carrying an unknown/duplicate tag,
  // and invalidates the connection. Single-attempt primitive, like call().
  bool submit_batch(const std::vector<kv::Request>& reqs,
                    std::vector<ResponseFrame>* out);

  // Retrying wrapper over submit_batch: reconnects and resends the whole
  // outstanding window on transport failure, backs off and resends only the
  // shed (kOverloaded) subset otherwise. Returns one Response per request,
  // index-aligned; entries the transport never answered carry
  // ExecStatus::kShutdown. Never aborts the process.
  std::vector<kv::Response> execute_batch(const std::vector<kv::Request>& reqs);

  std::uint64_t last_tag() const { return next_tag_ - 1; }
  // Retry-loop introspection for tests and stats.
  std::uint64_t retries() const { return retries_; }
  std::uint64_t reconnects() const { return reconnects_; }

  // The delay to sleep before the retry after one that slept `prev_ms`
  // (pass backoff_initial_ms for the first). Public so tests can check
  // the jittered schedule is deterministic and bounded without timing
  // real sleeps.
  int next_backoff_ms(int prev_ms);

 private:
  // Drops the current connection (and any half-read response bytes) and
  // dials a new one. False if the server is unreachable.
  bool reconnect();

  std::string host_;
  std::uint16_t port_;
  RetryPolicy policy_;
  UniqueFd fd_;
  std::uint64_t next_tag_;
  std::vector<std::uint8_t> wbuf_;
  std::vector<std::uint8_t> rbuf_;
  std::size_t roff_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t reconnects_ = 0;
  Rng jitter_rng_;
};

}  // namespace mgc::net
