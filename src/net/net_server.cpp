#include "net/net_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "net/wire.h"
#include "support/check.h"
#include "support/clock.h"
#include "support/fault.h"

namespace mgc::net {

namespace {
constexpr std::uint64_t kListenKey = 0;
constexpr std::uint64_t kWakeKey = 1;
constexpr std::uint64_t kFirstConnId = 2;
constexpr std::size_t kReadChunk = 64 * 1024;
}  // namespace

struct NetServer::Conn {
  UniqueFd fd;
  std::uint64_t id = 0;
  std::vector<std::uint8_t> in;
  std::size_t in_off = 0;  // consumed prefix of `in`
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;  // flushed prefix of `out`
  std::size_t inflight = 0;
  bool read_closed = false;  // stop recv()ing: EOF, error, or server drain
  bool input_dead = false;   // discard buffered input: error or server drain
  bool broken = false;       // write side dead: output is discarded
  std::uint32_t interest = 0;

  std::size_t in_pending() const { return in.size() - in_off; }
  std::size_t out_pending() const { return out.size() - out_off; }
};

struct NetServer::Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t tag = 0;
  kv::Response resp;
};

// Worker-thread completion callbacks post here. The sink is shared_ptr-held
// by every callback, so even if the NetServer dies while a request is still
// executing, the late completion lands on a live (but closed) sink and is
// dropped instead of touching freed memory.
struct NetServer::CompletionSink {
  std::mutex mu;
  std::vector<Completion> items;
  int wake_fd = -1;  // -1 once the server has torn down

  void post(Completion&& c) {
    std::lock_guard<std::mutex> g(mu);
    if (wake_fd < 0) return;  // server gone: drop the response
    items.push_back(std::move(c));
    const std::uint64_t one = 1;
    // Best effort: if the eventfd write fails the loop still sees the item
    // on its next wakeup (EAGAIN only happens with the counter saturated,
    // which itself guarantees a pending wakeup).
    [[maybe_unused]] ssize_t rc = ::write(wake_fd, &one, sizeof(one));
  }
};

NetServer::NetServer(kv::Server& backend, NetServerConfig cfg)
    : backend_(backend), cfg_(cfg), next_conn_id_(kFirstConnId) {
  listen_fd_ = listen_loopback(cfg_.port, cfg_.backlog, &port_);
  MGC_CHECK_MSG(listen_fd_.valid(), "net: cannot listen on loopback");
  epoll_fd_ = UniqueFd(::epoll_create1(EPOLL_CLOEXEC));
  MGC_CHECK_MSG(epoll_fd_.valid(), "net: epoll_create1 failed");
  wake_fd_ = UniqueFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  MGC_CHECK_MSG(wake_fd_.valid(), "net: eventfd failed");

  sink_ = std::make_shared<CompletionSink>();
  sink_->wake_fd = wake_fd_.get();

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenKey;
  MGC_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, listen_fd_.get(),
                        &ev) == 0);
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeKey;
  MGC_CHECK(::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, wake_fd_.get(), &ev) ==
            0);

  loop_ = std::thread([this] { loop_main(); });
}

NetServer::~NetServer() { shutdown(); }

void NetServer::shutdown() {
  std::lock_guard<std::mutex> g(shutdown_mu_);
  if (stopped_) return;
  stopped_ = true;
  stop_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t rc = ::write(wake_fd_.get(), &one, sizeof(one));
  loop_.join();
  // Detach the sink before closing the eventfd: late worker completions
  // must see a dead sink, not a recycled fd.
  {
    std::lock_guard<std::mutex> sg(sink_->mu);
    sink_->wake_fd = -1;
  }
  wake_fd_.reset();
  epoll_fd_.reset();
  listen_fd_.reset();
}

NetServerStats NetServer::stats() const {
  NetServerStats s;
  s.accepted = accepted_.load(std::memory_order_acquire);
  s.closed = closed_.load(std::memory_order_acquire);
  s.frames_in = frames_in_.load(std::memory_order_acquire);
  s.frames_out = frames_out_.load(std::memory_order_acquire);
  s.protocol_errors = protocol_errors_.load(std::memory_order_acquire);
  s.dropped_responses = dropped_responses_.load(std::memory_order_acquire);
  return s;
}

void NetServer::loop_main() {
  std::vector<epoll_event> events(64);
  for (;;) {
    const int timeout_ms = draining_ ? 20 : -1;
    const int n =
        ::epoll_wait(epoll_fd_.get(), events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only possible during teardown
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = events[i].data.u64;
      const std::uint32_t ev = events[i].events;
      if (key == kListenKey) {
        accept_ready();
        continue;
      }
      if (key == kWakeKey) {
        std::uint64_t drain = 0;
        [[maybe_unused]] ssize_t rc =
            ::read(wake_fd_.get(), &drain, sizeof(drain));
        continue;  // completions and stop flag handled below
      }
      auto it = conns_.find(key);
      if (it == conns_.end()) continue;  // closed earlier this iteration
      Conn* c = it->second.get();
      if (ev & (EPOLLHUP | EPOLLERR)) {
        c->read_closed = true;
        c->input_dead = true;
        c->broken = true;
        c->out.clear();
        c->out_off = 0;
      }
      if (ev & EPOLLIN) on_readable(c);
      if (conns_.find(key) == conns_.end()) continue;  // closed by reader
      if (ev & EPOLLOUT) flush_out(c);
      if (maybe_close(c)) continue;
      update_interest(c);
    }

    process_completions();

    if (stop_requested_.load(std::memory_order_acquire) && !draining_) {
      begin_drain();
    }
    if (draining_) {
      // Reap connections that finished draining; force the rest past the
      // deadline so shutdown() always returns.
      for (auto it = conns_.begin(); it != conns_.end();) {
        Conn* c = it->second.get();
        ++it;  // destroy() erases — advance first
        flush_out(c);
        maybe_close(c);
      }
      if (conns_.empty()) break;
      if (now_ns() >= drain_deadline_ns_) {
        while (!conns_.empty()) destroy(conns_.begin()->second.get());
        break;
      }
    }
  }
}

void NetServer::accept_ready() {
  for (;;) {
    const int fd = ::accept4(listen_fd_.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: back to epoll
    }
    if (fault::should_fire(fault::Site::kNetAccept)) {
      // Injected accept failure (fd exhaustion / transient ECONNABORTED):
      // the connection is dropped before registration; the client's retry
      // logic owns recovery.
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    auto conn = std::make_unique<Conn>();
    conn->fd = UniqueFd(fd);
    conn->id = next_conn_id_++;
    Conn* c = conn.get();
    conns_.emplace(c->id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_acq_rel);

    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = c->id;
    c->interest = EPOLLIN;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      destroy(c);
    }
  }
}

void NetServer::on_readable(Conn* c) {
  while (!c->read_closed) {
    if (c->in_pending() >= cfg_.max_input_buffer) break;  // backpressure
    const std::size_t old = c->in.size();
    // Injected short read: the kernel returns one byte at a time, forcing
    // the frame decoder through every resume-from-partial-prefix path.
    const std::size_t chunk =
        fault::should_fire(fault::Site::kNetReadShort) ? 1 : kReadChunk;
    c->in.resize(old + chunk);
    const ssize_t n = ::recv(c->fd.get(), c->in.data() + old, chunk, 0);
    if (n > 0) {
      c->in.resize(old + static_cast<std::size_t>(n));
      continue;
    }
    c->in.resize(old);
    if (n == 0) {
      // Orderly EOF. Requests already buffered (a client may half-close
      // its send side and keep reading) are still decoded and executed;
      // only then does the connection wind down.
      c->read_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c->read_closed = true;  // hard error: treat both directions as dead
    c->input_dead = true;
    c->broken = true;
    c->out.clear();
    c->out_off = 0;
    break;
  }
  process_input(c);
}

void NetServer::process_input(Conn* c) {
  while (!c->input_dead && c->inflight < cfg_.max_inflight_per_conn) {
    RequestFrame rf;
    ResponseFrame ignored;
    std::size_t consumed = 0;
    const DecodeResult r = decode_frame(c->in.data() + c->in_off,
                                        c->in_pending(), &consumed, &rf,
                                        &ignored);
    if (r == DecodeResult::kNeedMore) break;
    if (r != DecodeResult::kRequest) {
      // Malformed frame, or a client sending response frames: drop this
      // connection (after flushing whatever it is still owed) without
      // disturbing the rest of the loop.
      protocol_errors_.fetch_add(1, std::memory_order_acq_rel);
      c->read_closed = true;
      c->input_dead = true;
      c->in.clear();
      c->in_off = 0;
      break;
    }
    c->in_off += consumed;
    frames_in_.fetch_add(1, std::memory_order_acq_rel);
    c->inflight++;

    const std::uint64_t conn_id = c->id;
    const std::uint64_t tag = rf.tag;
    std::shared_ptr<CompletionSink> sink = sink_;
    const kv::SubmitResult sr = backend_.try_submit(
        rf.req, [sink, conn_id, tag](const kv::Response& resp) {
          sink->post(Completion{conn_id, tag, resp});
        });
    if (sr != kv::SubmitResult::kAccepted) {
      // Rejected without executing: answer directly with the typed status —
      // kShutdown (backend stopping under us) or kOverloaded (load shed
      // under GC pressure; the client backs off and retries).
      c->inflight--;
      kv::Response resp;
      resp.status = sr == kv::SubmitResult::kShutdown
                        ? kv::ExecStatus::kShutdown
                        : kv::ExecStatus::kOverloaded;
      enqueue_response(c, tag, resp);
    }
  }
  // Compact once the consumed prefix dominates the buffer.
  if (c->in_off > 0 && (c->in_off >= c->in.size() || c->in_off > kReadChunk)) {
    c->in.erase(c->in.begin(),
                c->in.begin() + static_cast<std::ptrdiff_t>(c->in_off));
    c->in_off = 0;
  }
}

void NetServer::enqueue_response(Conn* c, std::uint64_t tag,
                                 const kv::Response& r) {
  if (c->broken) {
    dropped_responses_.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  ResponseFrame f;
  f.tag = tag;
  f.status = r.status;
  f.found = r.found;
  encode_response(f, c->out);
  frames_out_.fetch_add(1, std::memory_order_acq_rel);
  flush_out(c);
}

void NetServer::flush_out(Conn* c) {
  while (c->out_pending() > 0 && !c->broken) {
    if (fault::should_fire(fault::Site::kNetEpipe)) {
      // Injected EPIPE: the peer reset mid-write. Same path as a real send
      // failure below — the rest of the output is discarded.
      c->broken = true;
      c->out.clear();
      c->out_off = 0;
      return;
    }
    // Injected short write: a one-byte send window forces clients through
    // their partial-frame reassembly paths.
    const std::size_t len = fault::should_fire(fault::Site::kNetWriteShort)
                                ? 1
                                : c->out_pending();
    const ssize_t n = ::send(c->fd.get(), c->out.data() + c->out_off, len,
                             MSG_NOSIGNAL);
    if (n > 0) {
      c->out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    c->broken = true;  // peer reset: discard the rest
    c->out.clear();
    c->out_off = 0;
    return;
  }
  if (c->out_pending() == 0) {
    c->out.clear();
    c->out_off = 0;
  }
}

void NetServer::process_completions() {
  std::vector<Completion> items;
  {
    std::lock_guard<std::mutex> g(sink_->mu);
    items.swap(sink_->items);
  }
  for (const Completion& comp : items) {
    auto it = conns_.find(comp.conn_id);
    if (it == conns_.end()) {
      // Client went away mid-request: the worker already freed the pending
      // slot; the response just has nowhere to go.
      dropped_responses_.fetch_add(1, std::memory_order_acq_rel);
      continue;
    }
    Conn* c = it->second.get();
    MGC_CHECK(c->inflight > 0);
    c->inflight--;
    enqueue_response(c, comp.tag, comp.resp);
    // An in-flight slot freed: parked bytes in the input buffer may now be
    // decodable again.
    process_input(c);
    if (!maybe_close(c)) update_interest(c);
  }
}

void NetServer::update_interest(Conn* c) {
  const bool want_read = !c->read_closed &&
                         c->inflight < cfg_.max_inflight_per_conn &&
                         c->in_pending() < cfg_.max_input_buffer;
  const bool want_write = c->out_pending() > 0 && !c->broken;
  const std::uint32_t mask =
      (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  if (mask == c->interest) return;
  epoll_event ev{};
  ev.events = mask;
  ev.data.u64 = c->id;
  if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, c->fd.get(), &ev) == 0) {
    c->interest = mask;
  }
}

void NetServer::begin_drain() {
  draining_ = true;
  drain_deadline_ns_ =
      now_ns() + static_cast<std::int64_t>(cfg_.drain_timeout_ms) * 1000000;
  // Stop accepting new connections.
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, listen_fd_.get(), nullptr);
  // Stop reading new requests; in-flight ones finish and get flushed. A
  // half-received request frame is simply discarded with the connection.
  for (auto& [id, conn] : conns_) {
    Conn* c = conn.get();
    c->read_closed = true;
    c->input_dead = true;
    c->in.clear();
    c->in_off = 0;
    ::shutdown(c->fd.get(), SHUT_RD);
    update_interest(c);
  }
}

bool NetServer::maybe_close(Conn* c) {
  const bool flushed = c->broken || c->out_pending() == 0;
  if (c->read_closed && c->inflight == 0 && flushed) {
    destroy(c);
    return true;
  }
  return false;
}

void NetServer::destroy(Conn* c) {
  closed_.fetch_add(1, std::memory_order_acq_rel);
  ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, c->fd.get(), nullptr);
  conns_.erase(c->id);  // frees c (and closes the fd via UniqueFd)
}

}  // namespace mgc::net
