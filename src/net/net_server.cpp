#include "net/net_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "net/wire.h"
#include "support/affinity.h"
#include "support/check.h"
#include "support/clock.h"
#include "support/fault.h"

namespace mgc::net {

namespace {
constexpr std::uint64_t kListenKey = 0;
constexpr std::uint64_t kWakeKey = 1;
constexpr std::uint64_t kFirstConnId = 2;
constexpr std::size_t kReadChunk = 64 * 1024;
}  // namespace

struct NetServer::Conn {
  UniqueFd fd;
  std::uint64_t id = 0;
  std::vector<std::uint8_t> in;
  std::size_t in_off = 0;  // consumed prefix of `in`
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;  // flushed prefix of `out`
  std::size_t inflight = 0;
  bool read_closed = false;  // stop recv()ing: EOF, error, or server drain
  bool input_dead = false;   // discard buffered input: error or server drain
  bool broken = false;       // write side dead: output is discarded
  std::uint32_t interest = 0;

  std::size_t in_pending() const { return in.size() - in_off; }
  std::size_t out_pending() const { return out.size() - out_off; }
};

struct NetServer::Completion {
  std::uint64_t conn_id = 0;
  std::uint64_t tag = 0;
  kv::Response resp;
};

// Worker-thread completion callbacks post here. The sink is shared_ptr-held
// by every callback, so even if the NetServer dies while a request is still
// executing, the late completion lands on a live (but closed) sink and is
// dropped instead of touching freed memory. One sink per loop: a completion
// always wakes the loop that owns the connection.
struct NetServer::CompletionSink {
  Mutex mu{LockRank::kNetSink, "net-sink"};
  std::vector<Completion> items MGC_GUARDED_BY(mu);
  int wake_fd MGC_GUARDED_BY(mu) = -1;  // -1 once the server has torn down

  void post(Completion&& c) {
    MutexLock g(mu);
    if (wake_fd < 0) return;  // server gone: drop the response
    items.push_back(std::move(c));
    const std::uint64_t one = 1;
    // Best effort: if the eventfd write fails the loop still sees the item
    // on its next wakeup (EAGAIN only happens with the counter saturated,
    // which itself guarantees a pending wakeup).
    // gclint: suppress(loop-purity) eventfd is EFD_NONBLOCK; write never stalls
    [[maybe_unused]] ssize_t rc = ::write(wake_fd, &one, sizeof(one));
  }
};

NetServer::NetServer(kv::RequestSink& backend, NetServerConfig cfg)
    : backend_(backend), cfg_(cfg) {
  const int nloops = std::max(1, cfg_.loops);
  loops_.reserve(static_cast<std::size_t>(nloops));
  for (int i = 0; i < nloops; ++i) {
    auto lp = std::make_unique<Loop>();
    lp->index = static_cast<std::uint32_t>(i);
    lp->next_conn_id = kFirstConnId;
    loops_.push_back(std::move(lp));
  }

  // Preferred front-end: every loop binds its own SO_REUSEPORT listener on
  // the same port. All-or-nothing — if any bind fails we fall back rather
  // than run a lopsided mix.
  if (nloops > 1 && cfg_.allow_reuseport && reuseport_supported()) {
    std::vector<UniqueFd> fds;
    std::uint16_t port = cfg_.port;
    UniqueFd first = listen_loopback(port, cfg_.backlog, &port, true);
    bool ok = first.valid();
    if (ok) {
      fds.push_back(std::move(first));
      for (int i = 1; i < nloops && ok; ++i) {
        UniqueFd f = listen_loopback(port, cfg_.backlog, nullptr, true);
        if (f.valid()) {
          fds.push_back(std::move(f));
        } else {
          ok = false;
        }
      }
    }
    if (ok) {
      reuseport_ = true;
      port_ = port;
      for (int i = 0; i < nloops; ++i) {
        loops_[static_cast<std::size_t>(i)]->listen_fd = std::move(
            fds[static_cast<std::size_t>(i)]);
      }
    }
  }
  if (!reuseport_) {
    // Fallback: loop 0 owns the only listener and hands accepted fds to
    // its siblings round-robin.
    loops_[0]->listen_fd = listen_loopback(cfg_.port, cfg_.backlog, &port_);
    MGC_CHECK_MSG(loops_[0]->listen_fd.valid(),
                  "net: cannot listen on loopback");
  }

  for (auto& lpp : loops_) {
    Loop& lp = *lpp;
    lp.epoll_fd = UniqueFd(::epoll_create1(EPOLL_CLOEXEC));
    MGC_CHECK_MSG(lp.epoll_fd.valid(), "net: epoll_create1 failed");
    lp.wake_fd = UniqueFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
    MGC_CHECK_MSG(lp.wake_fd.valid(), "net: eventfd failed");

    lp.sink = std::make_shared<CompletionSink>();
    lp.sink->wake_fd = lp.wake_fd.get();

    epoll_event ev{};
    if (lp.listen_fd.valid()) {
      ev.events = EPOLLIN;
      ev.data.u64 = kListenKey;
      MGC_CHECK(::epoll_ctl(lp.epoll_fd.get(), EPOLL_CTL_ADD,
                            lp.listen_fd.get(), &ev) == 0);
    }
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeKey;
    MGC_CHECK(::epoll_ctl(lp.epoll_fd.get(), EPOLL_CTL_ADD, lp.wake_fd.get(),
                          &ev) == 0);
  }
  // Spawn only after every loop is fully wired: loop 0 may hand an fd to a
  // sibling the moment it starts accepting.
  for (auto& lpp : loops_) {
    Loop& lp = *lpp;
    lp.thread = std::thread([this, &lp] { loop_main(lp); });
  }
}

NetServer::~NetServer() { shutdown(); }

void NetServer::shutdown() {
  MutexLock g(shutdown_mu_);
  if (stopped_) return;
  stopped_ = true;
  stop_requested_.store(true, std::memory_order_release);
  const std::uint64_t one = 1;
  for (auto& lp : loops_) {
    [[maybe_unused]] ssize_t rc =
        // gclint: suppress(loop-purity) eventfd is EFD_NONBLOCK; write never stalls
        ::write(lp->wake_fd.get(), &one, sizeof(one));
  }
  for (auto& lp : loops_) lp->thread.join();
  for (auto& lp : loops_) {
    // Detach the sink before closing the eventfd: late worker completions
    // must see a dead sink, not a recycled fd.
    {
      MutexLock sg(lp->sink->mu);
      lp->sink->wake_fd = -1;
    }
    // Handoff fds pushed after the receiving loop exited: close them here
    // (nothing was ever registered for them).
    {
      MutexLock hg(lp->handoff_mu);
      for (int fd : lp->handoff) ::close(fd);
      lp->handoff.clear();
    }
    lp->wake_fd.reset();
    lp->epoll_fd.reset();
    lp->listen_fd.reset();
  }
}

NetServerStats NetServer::stats() const {
  NetServerStats total;
  for (const NetServerStats& s : per_loop_stats()) {
    total.accepted += s.accepted;
    total.closed += s.closed;
    total.frames_in += s.frames_in;
    total.frames_out += s.frames_out;
    total.protocol_errors += s.protocol_errors;
    total.dropped_responses += s.dropped_responses;
  }
  return total;
}

std::vector<NetServerStats> NetServer::per_loop_stats() const {
  std::vector<NetServerStats> out;
  out.reserve(loops_.size());
  for (const auto& lp : loops_) {
    NetServerStats s;
    s.accepted = lp->accepted.load(std::memory_order_acquire);
    s.closed = lp->closed.load(std::memory_order_acquire);
    s.frames_in = lp->frames_in.load(std::memory_order_acquire);
    s.frames_out = lp->frames_out.load(std::memory_order_acquire);
    s.protocol_errors = lp->protocol_errors.load(std::memory_order_acquire);
    s.dropped_responses =
        lp->dropped_responses.load(std::memory_order_acquire);
    out.push_back(s);
  }
  return out;
}

void NetServer::loop_main(Loop& lp) {
  if (cfg_.pin_loops) {
    // Best effort — a refused pin just leaves the loop floating.
    (void)pin_this_thread(static_cast<int>(lp.index));
  }
  std::vector<epoll_event> events(64);
  for (;;) {
    const int timeout_ms = lp.draining ? 20 : -1;
    const int n =
        ::epoll_wait(lp.epoll_fd.get(), events.data(),
                     static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd gone — only possible during teardown
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = events[i].data.u64;
      const std::uint32_t ev = events[i].events;
      if (key == kListenKey) {
        accept_ready(lp);
        continue;
      }
      if (key == kWakeKey) {
        std::uint64_t drain = 0;
        [[maybe_unused]] ssize_t rc =
            // gclint: suppress(loop-purity) eventfd is EFD_NONBLOCK; drain never stalls
            ::read(lp.wake_fd.get(), &drain, sizeof(drain));
        continue;  // handoffs, completions and stop flag handled below
      }
      auto it = lp.conns.find(key);
      if (it == lp.conns.end()) continue;  // closed earlier this iteration
      Conn* c = it->second.get();
      if (ev & (EPOLLHUP | EPOLLERR)) {
        c->read_closed = true;
        c->input_dead = true;
        c->broken = true;
        c->out.clear();
        c->out_off = 0;
      }
      if (ev & EPOLLIN) on_readable(lp, c);
      if (lp.conns.find(key) == lp.conns.end()) continue;  // closed by reader
      if (ev & EPOLLOUT) flush_out(lp, c);
      if (maybe_close(lp, c)) continue;
      update_interest(lp, c);
    }

    drain_handoff(lp);
    process_completions(lp);

    if (stop_requested_.load(std::memory_order_acquire) && !lp.draining) {
      begin_drain(lp);
    }
    if (lp.draining) {
      // Reap connections that finished draining; force the rest past the
      // deadline so shutdown() always returns.
      for (auto it = lp.conns.begin(); it != lp.conns.end();) {
        Conn* c = it->second.get();
        ++it;  // destroy() erases — advance first
        flush_out(lp, c);
        maybe_close(lp, c);
      }
      if (lp.conns.empty()) break;
      if (now_ns() >= lp.drain_deadline_ns) {
        while (!lp.conns.empty()) destroy(lp, lp.conns.begin()->second.get());
        break;
      }
    }
  }
}

void NetServer::accept_ready(Loop& lp) {
  for (;;) {
    // gclint: suppress(loop-purity) listener is O_NONBLOCK; returns EAGAIN when drained
    const int fd = ::accept4(lp.listen_fd.get(), nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: back to epoll
    }
    // Scoped to the loop index: MGC_FAULT="net-accept:...,loop=K" drops
    // connections on exactly one loop of the multi-loop front-end.
    if (fault::should_fire(fault::Site::kNetAccept, lp.index)) {
      // Injected accept failure (fd exhaustion / transient ECONNABORTED):
      // the connection is dropped before registration; the client's retry
      // logic owns recovery.
      ::close(fd);
      continue;
    }
    if (reuseport_ || loops_.size() == 1) {
      adopt_fd(lp, fd);
      continue;
    }
    // Fallback: only loop 0 accepts; spread connections round-robin. Local
    // target adopts directly, siblings get the fd through their handoff
    // queue + wakeup.
    const std::size_t target = rr_next_++ % loops_.size();
    if (target == lp.index) {
      adopt_fd(lp, fd);
      continue;
    }
    Loop& peer = *loops_[target];
    {
      MutexLock g(peer.handoff_mu);
      peer.handoff.push_back(fd);
    }
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t rc =
        // gclint: suppress(loop-purity) eventfd is EFD_NONBLOCK; write never stalls
        ::write(peer.wake_fd.get(), &one, sizeof(one));
  }
}

void NetServer::adopt_fd(Loop& lp, int fd) {
  set_nodelay(fd);
  auto conn = std::make_unique<Conn>();
  conn->fd = UniqueFd(fd);
  conn->id = lp.next_conn_id++;
  Conn* c = conn.get();
  lp.conns.emplace(c->id, std::move(conn));
  lp.accepted.fetch_add(1, std::memory_order_acq_rel);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = c->id;
  c->interest = EPOLLIN;
  if (::epoll_ctl(lp.epoll_fd.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
    destroy(lp, c);
  }
}

void NetServer::drain_handoff(Loop& lp) {
  std::vector<int> fds;
  {
    MutexLock g(lp.handoff_mu);
    fds.swap(lp.handoff);
  }
  for (int fd : fds) {
    if (lp.draining) {
      ::close(fd);  // arrived after this loop stopped taking connections
      continue;
    }
    adopt_fd(lp, fd);
  }
}

void NetServer::on_readable(Loop& lp, Conn* c) {
  while (!c->read_closed) {
    if (c->in_pending() >= cfg_.max_input_buffer) break;  // backpressure
    const std::size_t old = c->in.size();
    // Injected short read: the kernel returns one byte at a time, forcing
    // the frame decoder through every resume-from-partial-prefix path.
    const std::size_t chunk =
        fault::should_fire(fault::Site::kNetReadShort) ? 1 : kReadChunk;
    c->in.resize(old + chunk);
    // gclint: suppress(loop-purity) conn fd is SOCK_NONBLOCK; recv returns EAGAIN
    const ssize_t n = ::recv(c->fd.get(), c->in.data() + old, chunk, 0);
    if (n > 0) {
      c->in.resize(old + static_cast<std::size_t>(n));
      continue;
    }
    c->in.resize(old);
    if (n == 0) {
      // Orderly EOF. Requests already buffered (a client may half-close
      // its send side and keep reading) are still decoded and executed;
      // only then does the connection wind down.
      c->read_closed = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c->read_closed = true;  // hard error: treat both directions as dead
    c->input_dead = true;
    c->broken = true;
    c->out.clear();
    c->out_off = 0;
    break;
  }
  process_input(lp, c);
}

void NetServer::process_input(Loop& lp, Conn* c) {
  while (!c->input_dead) {
    DecodedFrame df;
    std::size_t consumed = 0;
    const DecodeResult r =
        decode_any(c->in.data() + c->in_off, c->in_pending(), &consumed, &df);
    if (r == DecodeResult::kNeedMore) break;
    if (r == DecodeResult::kRequest) {
      if (c->inflight >= cfg_.max_inflight_per_conn) break;
      c->in_off += consumed;
      lp.frames_in.fetch_add(1, std::memory_order_acq_rel);
      c->inflight++;
      submit_one(lp, c, df.req.tag, df.req.req);
      continue;
    }
    if (r == DecodeResult::kBatchRequest) {
      // Admission is all-or-nothing per batch (sub-requests count like
      // single frames). An idle connection may overshoot the in-flight cap
      // so a window larger than the cap still makes progress; otherwise
      // the batch stays buffered until completions free room.
      const std::size_t n = df.batch_req.size();
      if (c->inflight != 0 &&
          c->inflight + n > cfg_.max_inflight_per_conn) {
        break;
      }
      c->in_off += consumed;
      lp.frames_in.fetch_add(n, std::memory_order_acq_rel);
      c->inflight += n;
      for (const RequestFrame& rf : df.batch_req) {
        submit_one(lp, c, rf.tag, rf.req);
      }
      continue;
    }
    // Malformed frame, or a client sending response frames: drop this
    // connection (after flushing whatever it is still owed) without
    // disturbing the rest of the loop.
    lp.protocol_errors.fetch_add(1, std::memory_order_acq_rel);
    c->read_closed = true;
    c->input_dead = true;
    c->in.clear();
    c->in_off = 0;
    break;
  }
  // Compact once the consumed prefix dominates the buffer.
  if (c->in_off > 0 && (c->in_off >= c->in.size() || c->in_off > kReadChunk)) {
    c->in.erase(c->in.begin(),
                c->in.begin() + static_cast<std::ptrdiff_t>(c->in_off));
    c->in_off = 0;
  }
}

void NetServer::submit_one(Loop& lp, Conn* c, std::uint64_t tag,
                           const kv::Request& req) {
  const std::uint64_t conn_id = c->id;
  std::shared_ptr<CompletionSink> sink = lp.sink;
  const kv::SubmitResult sr = backend_.try_submit(
      req, [sink, conn_id, tag](const kv::Response& resp) {
        sink->post(Completion{conn_id, tag, resp});
      });
  if (sr != kv::SubmitResult::kAccepted) {
    // Rejected without executing: answer directly with the typed status —
    // kShutdown (backend stopping under us), kOverloaded (load shed under
    // GC pressure; the client backs off and retries), or kNotLeader (a
    // replication follower refusing a write; the client re-routes).
    c->inflight--;
    kv::Response resp;
    switch (sr) {
      case kv::SubmitResult::kShutdown:
        resp.status = kv::ExecStatus::kShutdown;
        break;
      case kv::SubmitResult::kNotLeader:
        resp.status = kv::ExecStatus::kNotLeader;
        break;
      default:
        resp.status = kv::ExecStatus::kOverloaded;
        break;
    }
    enqueue_response(lp, c, tag, resp);
  }
}

void NetServer::enqueue_response(Loop& lp, Conn* c, std::uint64_t tag,
                                 const kv::Response& r) {
  if (c->broken) {
    lp.dropped_responses.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  ResponseFrame f;
  f.tag = tag;
  f.status = r.status;
  f.found = r.found;
  encode_response(f, c->out);
  lp.frames_out.fetch_add(1, std::memory_order_acq_rel);
  flush_out(lp, c);
}

void NetServer::flush_out(Loop& /*lp*/, Conn* c) {
  while (c->out_pending() > 0 && !c->broken) {
    if (fault::should_fire(fault::Site::kNetEpipe)) {
      // Injected EPIPE: the peer reset mid-write. Same path as a real send
      // failure below — the rest of the output is discarded.
      c->broken = true;
      c->out.clear();
      c->out_off = 0;
      return;
    }
    // Injected short write: a one-byte send window forces clients through
    // their partial-frame reassembly paths.
    const std::size_t len = fault::should_fire(fault::Site::kNetWriteShort)
                                ? 1
                                : c->out_pending();
    // gclint: suppress(loop-purity) conn fd is SOCK_NONBLOCK; send returns EAGAIN
    const ssize_t n = ::send(c->fd.get(), c->out.data() + c->out_off, len,
                             MSG_NOSIGNAL);
    if (n > 0) {
      c->out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    c->broken = true;  // peer reset: discard the rest
    c->out.clear();
    c->out_off = 0;
    return;
  }
  if (c->out_pending() == 0) {
    c->out.clear();
    c->out_off = 0;
  }
}

void NetServer::process_completions(Loop& lp) {
  std::vector<Completion> items;
  {
    MutexLock g(lp.sink->mu);
    items.swap(lp.sink->items);
  }
  for (const Completion& comp : items) {
    auto it = lp.conns.find(comp.conn_id);
    if (it == lp.conns.end()) {
      // Client went away mid-request: the worker already freed the pending
      // slot; the response just has nowhere to go.
      lp.dropped_responses.fetch_add(1, std::memory_order_acq_rel);
      continue;
    }
    Conn* c = it->second.get();
    MGC_CHECK(c->inflight > 0);
    c->inflight--;
    enqueue_response(lp, c, comp.tag, comp.resp);
    // An in-flight slot freed: parked bytes in the input buffer may now be
    // decodable again.
    process_input(lp, c);
    if (!maybe_close(lp, c)) update_interest(lp, c);
  }
}

void NetServer::update_interest(Loop& lp, Conn* c) {
  const bool want_read = !c->read_closed &&
                         c->inflight < cfg_.max_inflight_per_conn &&
                         c->in_pending() < cfg_.max_input_buffer;
  const bool want_write = c->out_pending() > 0 && !c->broken;
  const std::uint32_t mask =
      (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
  if (mask == c->interest) return;
  epoll_event ev{};
  ev.events = mask;
  ev.data.u64 = c->id;
  if (::epoll_ctl(lp.epoll_fd.get(), EPOLL_CTL_MOD, c->fd.get(), &ev) == 0) {
    c->interest = mask;
  }
}

void NetServer::begin_drain(Loop& lp) {
  lp.draining = true;
  lp.drain_deadline_ns =
      now_ns() + static_cast<std::int64_t>(cfg_.drain_timeout_ms) * 1000000;
  // Stop accepting new connections.
  if (lp.listen_fd.valid()) {
    ::epoll_ctl(lp.epoll_fd.get(), EPOLL_CTL_DEL, lp.listen_fd.get(),
                nullptr);
  }
  // Handed-off fds not yet adopted never got a connection: close unserved.
  drain_handoff(lp);
  // Stop reading new requests; in-flight ones finish and get flushed. A
  // half-received request frame is simply discarded with the connection.
  for (auto& [id, conn] : lp.conns) {
    Conn* c = conn.get();
    c->read_closed = true;
    c->input_dead = true;
    c->in.clear();
    c->in_off = 0;
    ::shutdown(c->fd.get(), SHUT_RD);
    update_interest(lp, c);
  }
}

bool NetServer::maybe_close(Loop& lp, Conn* c) {
  const bool flushed = c->broken || c->out_pending() == 0;
  if (c->read_closed && c->inflight == 0 && flushed) {
    destroy(lp, c);
    return true;
  }
  return false;
}

void NetServer::destroy(Loop& lp, Conn* c) {
  lp.closed.fetch_add(1, std::memory_order_acq_rel);
  ::epoll_ctl(lp.epoll_fd.get(), EPOLL_CTL_DEL, c->fd.get(), nullptr);
  lp.conns.erase(c->id);  // frees c (and closes the fd via UniqueFd)
}

}  // namespace mgc::net
