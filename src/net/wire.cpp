#include "net/wire.h"

#include <cstring>

#include "support/check.h"

namespace mgc::net {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void encode_request(const RequestFrame& f, std::vector<std::uint8_t>& out) {
  MGC_CHECK(f.req.value_len <= kMaxValueLen);
  put_u32(out, kRequestPayloadSize);
  put_u8(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(MsgKind::kRequest));
  put_u8(out, static_cast<std::uint8_t>(f.req.op));
  put_u64(out, f.tag);
  put_u64(out, f.req.key);
  put_u32(out, static_cast<std::uint32_t>(f.req.value_len));
}

void encode_response(const ResponseFrame& f, std::vector<std::uint8_t>& out) {
  put_u32(out, kResponsePayloadSize);
  put_u8(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(MsgKind::kResponse));
  put_u8(out, static_cast<std::uint8_t>(f.status));
  put_u64(out, f.tag);
  put_u8(out, f.found ? 1 : 0);
}

void encode_request_batch(const std::vector<RequestFrame>& items,
                          std::vector<std::uint8_t>& out) {
  MGC_CHECK(!items.empty() && items.size() <= kMaxBatchCount);
  const std::size_t payload =
      kBatchHeaderSize + items.size() * kBatchRequestEntrySize;
  out.reserve(out.size() + kLenPrefixSize + payload);
  put_u32(out, static_cast<std::uint32_t>(payload));
  put_u8(out, kMagic);
  put_u8(out, kBatchVersion);
  put_u8(out, static_cast<std::uint8_t>(MsgKind::kBatchRequest));
  put_u8(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(items.size()));
  for (const RequestFrame& f : items) {
    MGC_CHECK(f.req.value_len <= kMaxValueLen);
    put_u8(out, static_cast<std::uint8_t>(f.req.op));
    put_u64(out, f.tag);
    put_u64(out, f.req.key);
    put_u32(out, static_cast<std::uint32_t>(f.req.value_len));
  }
}

void encode_response_batch(const std::vector<ResponseFrame>& items,
                           std::vector<std::uint8_t>& out) {
  MGC_CHECK(!items.empty() && items.size() <= kMaxBatchCount);
  const std::size_t payload =
      kBatchHeaderSize + items.size() * kBatchResponseEntrySize;
  out.reserve(out.size() + kLenPrefixSize + payload);
  put_u32(out, static_cast<std::uint32_t>(payload));
  put_u8(out, kMagic);
  put_u8(out, kBatchVersion);
  put_u8(out, static_cast<std::uint8_t>(MsgKind::kBatchResponse));
  put_u8(out, 0);  // reserved
  put_u32(out, static_cast<std::uint32_t>(items.size()));
  for (const ResponseFrame& f : items) {
    put_u8(out, static_cast<std::uint8_t>(f.status));
    put_u64(out, f.tag);
    put_u8(out, f.found ? 1 : 0);
  }
}

namespace {

// Validates (magic, version, kind, payload_len) coherence as soon as the
// three header bytes are visible, so a malformed frame is rejected before
// the decoder buffers toward its claimed length.
DecodeResult check_header(const std::uint8_t* p, std::uint32_t payload_len) {
  if (p[0] != kMagic) return DecodeResult::kError;
  const std::uint8_t version = p[1];
  const std::uint8_t kind = p[2];
  switch (kind) {
    case static_cast<std::uint8_t>(MsgKind::kRequest):
      if (version != kVersion || payload_len != kRequestPayloadSize)
        return DecodeResult::kError;
      return DecodeResult::kRequest;
    case static_cast<std::uint8_t>(MsgKind::kResponse):
      if (version != kVersion || payload_len != kResponsePayloadSize)
        return DecodeResult::kError;
      return DecodeResult::kResponse;
    case static_cast<std::uint8_t>(MsgKind::kBatchRequest): {
      if (version != kBatchVersion) return DecodeResult::kError;
      if (payload_len < kBatchHeaderSize + kBatchRequestEntrySize ||
          (payload_len - kBatchHeaderSize) % kBatchRequestEntrySize != 0) {
        return DecodeResult::kError;
      }
      return DecodeResult::kBatchRequest;
    }
    case static_cast<std::uint8_t>(MsgKind::kBatchResponse): {
      if (version != kBatchVersion) return DecodeResult::kError;
      if (payload_len < kBatchHeaderSize + kBatchResponseEntrySize ||
          (payload_len - kBatchHeaderSize) % kBatchResponseEntrySize != 0) {
        return DecodeResult::kError;
      }
      return DecodeResult::kBatchResponse;
    }
    default:
      return DecodeResult::kError;
  }
}

bool decode_request_body(const std::uint8_t* p, RequestFrame* out) {
  // p points at { op, tag, key, value_len } (21 bytes).
  const std::uint8_t op = p[0];
  if (op > static_cast<std::uint8_t>(kv::OpType::kInsert)) return false;
  const std::uint32_t value_len = get_u32(p + 17);
  if (value_len > kMaxValueLen) return false;
  out->req.op = static_cast<kv::OpType>(op);
  out->tag = get_u64(p + 1);
  out->req.key = get_u64(p + 9);
  out->req.value_len = value_len;
  return true;
}

bool decode_response_body(const std::uint8_t* p, std::size_t found_off,
                          ResponseFrame* out) {
  // p points at { status, tag, ... found at found_off } — the single frame
  // carries found at offset 9, the batch entry packs it at offset 9 too;
  // the offset parameter keeps the two layouts honest if they diverge.
  const std::uint8_t status = p[0];
  if (status > static_cast<std::uint8_t>(kv::ExecStatus::kNotLeader))
    return false;
  const std::uint8_t found = p[found_off];
  if (found > 1) return false;
  out->status = static_cast<kv::ExecStatus>(status);
  out->tag = get_u64(p + 1);
  out->found = found != 0;
  return true;
}

}  // namespace

DecodeResult decode_any(const std::uint8_t* data, std::size_t len,
                        std::size_t* consumed, DecodedFrame* out) {
  if (len < kLenPrefixSize) return DecodeResult::kNeedMore;
  const std::uint32_t payload_len = get_u32(data);
  // Bound the length *before* waiting for more bytes: an oversized prefix
  // must be rejected immediately, not buffered toward.
  if (payload_len < 4 || payload_len > kMaxBatchPayload)
    return DecodeResult::kError;
  // With the three header bytes visible the (version, kind, length) triple
  // is fully checkable — reject incoherent frames without buffering more.
  if (len < kLenPrefixSize + 3) return DecodeResult::kNeedMore;
  const std::uint8_t* p = data + kLenPrefixSize;
  const DecodeResult kind = check_header(p, payload_len);
  if (kind == DecodeResult::kError) return DecodeResult::kError;
  if (len < kLenPrefixSize + payload_len) return DecodeResult::kNeedMore;

  switch (kind) {
    case DecodeResult::kRequest: {
      // Single request body: { op, tag, key, value_len } from offset 3.
      if (!decode_request_body(p + 3, &out->req)) return DecodeResult::kError;
      break;
    }
    case DecodeResult::kResponse: {
      if (!decode_response_body(p + 3, /*found_off=*/9, &out->resp))
        return DecodeResult::kError;
      break;
    }
    case DecodeResult::kBatchRequest: {
      if (p[3] != 0) return DecodeResult::kError;  // reserved byte
      const std::uint32_t count = get_u32(p + 4);
      if (count == 0 || count > kMaxBatchCount ||
          payload_len !=
              kBatchHeaderSize + count * kBatchRequestEntrySize) {
        return DecodeResult::kError;
      }
      out->batch_req.clear();
      out->batch_req.reserve(count);
      const std::uint8_t* e = p + kBatchHeaderSize;
      for (std::uint32_t i = 0; i < count;
           ++i, e += kBatchRequestEntrySize) {
        RequestFrame f;
        if (!decode_request_body(e, &f)) return DecodeResult::kError;
        out->batch_req.push_back(f);
      }
      break;
    }
    case DecodeResult::kBatchResponse: {
      if (p[3] != 0) return DecodeResult::kError;  // reserved byte
      const std::uint32_t count = get_u32(p + 4);
      if (count == 0 || count > kMaxBatchCount ||
          payload_len !=
              kBatchHeaderSize + count * kBatchResponseEntrySize) {
        return DecodeResult::kError;
      }
      out->batch_resp.clear();
      out->batch_resp.reserve(count);
      const std::uint8_t* e = p + kBatchHeaderSize;
      for (std::uint32_t i = 0; i < count;
           ++i, e += kBatchResponseEntrySize) {
        ResponseFrame f;
        if (!decode_response_body(e, /*found_off=*/9, &f))
          return DecodeResult::kError;
        out->batch_resp.push_back(f);
      }
      break;
    }
    default:
      return DecodeResult::kError;
  }
  *consumed = kLenPrefixSize + payload_len;
  return kind;
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t len,
                          std::size_t* consumed, RequestFrame* req,
                          ResponseFrame* resp) {
  DecodedFrame f;
  const DecodeResult r = decode_any(data, len, consumed, &f);
  switch (r) {
    case DecodeResult::kRequest:
      *req = f.req;
      return r;
    case DecodeResult::kResponse:
      *resp = f.resp;
      return r;
    case DecodeResult::kBatchRequest:
    case DecodeResult::kBatchResponse:
      // Version-1 callers do not speak batches: protocol violation. Nothing
      // is consumed on kError, even though the batch decoded cleanly.
      *consumed = 0;
      return DecodeResult::kError;
    default:
      return r;
  }
}

}  // namespace mgc::net
