#include "net/wire.h"

#include <cstring>

#include "support/check.h"

namespace mgc::net {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void encode_request(const RequestFrame& f, std::vector<std::uint8_t>& out) {
  MGC_CHECK(f.req.value_len <= kMaxValueLen);
  put_u32(out, kRequestPayloadSize);
  put_u8(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(MsgKind::kRequest));
  put_u8(out, static_cast<std::uint8_t>(f.req.op));
  put_u64(out, f.tag);
  put_u64(out, f.req.key);
  put_u32(out, static_cast<std::uint32_t>(f.req.value_len));
}

void encode_response(const ResponseFrame& f, std::vector<std::uint8_t>& out) {
  put_u32(out, kResponsePayloadSize);
  put_u8(out, kMagic);
  put_u8(out, kVersion);
  put_u8(out, static_cast<std::uint8_t>(MsgKind::kResponse));
  put_u8(out, static_cast<std::uint8_t>(f.status));
  put_u64(out, f.tag);
  put_u8(out, f.found ? 1 : 0);
}

DecodeResult decode_frame(const std::uint8_t* data, std::size_t len,
                          std::size_t* consumed, RequestFrame* req,
                          ResponseFrame* resp) {
  if (len < kLenPrefixSize) return DecodeResult::kNeedMore;
  const std::uint32_t payload_len = get_u32(data);
  // Bound the length *before* waiting for more bytes: an oversized prefix
  // must be rejected immediately, not buffered toward.
  if (payload_len < 4 || payload_len > kMaxPayload) return DecodeResult::kError;
  if (len < kLenPrefixSize + payload_len) return DecodeResult::kNeedMore;

  const std::uint8_t* p = data + kLenPrefixSize;
  if (p[0] != kMagic || p[1] != kVersion) return DecodeResult::kError;
  const std::uint8_t kind = p[2];

  if (kind == static_cast<std::uint8_t>(MsgKind::kRequest)) {
    if (payload_len != kRequestPayloadSize) return DecodeResult::kError;
    const std::uint8_t op = p[3];
    if (op > static_cast<std::uint8_t>(kv::OpType::kInsert))
      return DecodeResult::kError;
    const std::uint32_t value_len = get_u32(p + 20);
    if (value_len > kMaxValueLen) return DecodeResult::kError;
    req->req.op = static_cast<kv::OpType>(op);
    req->tag = get_u64(p + 4);
    req->req.key = get_u64(p + 12);
    req->req.value_len = value_len;
    *consumed = kLenPrefixSize + payload_len;
    return DecodeResult::kRequest;
  }
  if (kind == static_cast<std::uint8_t>(MsgKind::kResponse)) {
    if (payload_len != kResponsePayloadSize) return DecodeResult::kError;
    const std::uint8_t status = p[3];
    if (status > static_cast<std::uint8_t>(kv::ExecStatus::kOverloaded))
      return DecodeResult::kError;
    const std::uint8_t found = p[12];
    if (found > 1) return DecodeResult::kError;
    resp->status = static_cast<kv::ExecStatus>(status);
    resp->tag = get_u64(p + 4);
    resp->found = found != 0;
    *consumed = kLenPrefixSize + payload_len;
    return DecodeResult::kResponse;
  }
  return DecodeResult::kError;
}

}  // namespace mgc::net
