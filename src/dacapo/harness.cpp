#include "dacapo/harness.h"

#include <algorithm>

#include "support/clock.h"
#include "support/env.h"

namespace mgc::dacapo {

int harness_threads(const BenchmarkInfo& info, const HarnessOptions& opts) {
  if (opts.threads > 0) return opts.threads;
  if (info.default_threads > 0) return info.default_threads;
  return std::min(env::threads(), 8);
}

HarnessResult run_benchmark(const VmConfig& cfg, const std::string& name,
                            const HarnessOptions& opts) {
  HarnessResult res;
  res.benchmark = name;
  auto bench = make_benchmark(name);
  const BenchmarkInfo& info = bench->info();
  const int threads = harness_threads(info, opts);

  Vm vm(cfg);
  res.vm_origin_ns = vm.gc_log().origin_ns();
  try {
    bench->setup(vm, opts.seed);
    for (int it = 0; it < opts.iterations; ++it) {
      Stopwatch sw;
      const std::int64_t cpu0 = process_cpu_ns();
      // DaCapo performs a system GC between every two iterations; its cost
      // is part of the measured iteration (this is what makes G1's serial
      // full collections visible in the paper's Figure 2(a)).
      if (opts.system_gc_between_iterations && it > 0) {
        Vm::MutatorScope scope(vm, "harness");
        scope.mutator().system_gc();
      }
      bench->run_iteration(vm, threads, opts.seed + static_cast<std::uint64_t>(it) * 7919);
      res.iteration_cpu_s.push_back(ns_to_s(process_cpu_ns() - cpu0));
      res.iteration_s.push_back(sw.elapsed_s());
    }
  } catch (const BenchmarkCrash&) {
    res.crashed = true;
  }
  if (!res.iteration_s.empty()) {
    res.final_iteration_s = res.iteration_s.back();
    res.final_iteration_cpu_s = res.iteration_cpu_s.back();
    for (double d : res.iteration_s) res.total_s += d;
    for (double d : res.iteration_cpu_s) res.total_cpu_s += d;
  }
  res.pauses = vm.gc_log().summarize();
  res.pause_events = vm.gc_log().snapshot();
  res.cost = vm.cost_snapshot();
  res.allocated_bytes = vm.total_allocated_bytes();
  return res;
}

}  // namespace mgc::dacapo
