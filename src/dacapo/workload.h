// Benchmark interface for the DaCapo-like suite. Each kernel models the
// memory behaviour (allocation rate, object lifetimes, footprint, thread
// structure) of one DaCapo 2009 application, as characterized in §2.1 of
// the paper. The kernels are synthetic: the paper uses DaCapo purely as a
// GC load generator, so the axes that matter are the ones the collectors
// see (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "runtime/vm.h"

namespace mgc::dacapo {

struct BenchmarkInfo {
  std::string name;
  // 0 = one client thread per hardware thread (the DaCapo default).
  int default_threads = 0;
  // eclipse / tradebeans / tradesoap crashed on every run in the paper.
  bool crashes = false;
  // Fraction of per-iteration work that is randomized. Drives the
  // stability profile the paper measures in Table 2.
  double jitter = 0.02;
};

// Thrown by the crashing benchmarks, mirroring the paper's §3.2.
class BenchmarkCrash : public std::runtime_error {
 public:
  explicit BenchmarkCrash(const std::string& what)
      : std::runtime_error(what) {}
};

class Benchmark {
 public:
  virtual ~Benchmark() = default;

  virtual const BenchmarkInfo& info() const = 0;

  // Creates per-run long-lived state (global roots). Called once per run.
  virtual void setup(Vm& vm, std::uint64_t seed) {
    (void)vm;
    (void)seed;
  }

  // Runs one iteration on `threads` mutator threads.
  virtual void run_iteration(Vm& vm, int threads, std::uint64_t seed) = 0;
};

std::unique_ptr<Benchmark> make_benchmark(const std::string& name);

}  // namespace mgc::dacapo
