// Registry of the 14 DaCapo 2009 benchmarks the paper ran.
#pragma once

#include <string>
#include <vector>

namespace mgc::dacapo {

// All 14 names, in the paper's §2.1 order.
const std::vector<std::string>& all_benchmarks();

// The 7-benchmark stable subset the paper selects in Table 2.
const std::vector<std::string>& stable_subset();

// The 3 benchmarks that crashed on every test (§3.2).
const std::vector<std::string>& crashing_benchmarks();

}  // namespace mgc::dacapo
