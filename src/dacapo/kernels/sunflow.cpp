// sunflow: ray-tracer model. One render thread per hardware thread; each
// traces ray bundles, allocating per-ray scratch vectors (short-lived) and
// doing real CPU work. Excluded by Table 2 (unstable).
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"

namespace mgc::dacapo {
namespace {

class Sunflow final : public KernelBase {
 public:
  Sunflow() {
    info_.name = "sunflow";
    info_.default_threads = 0;
    info_.jitter = 0.35;
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    const std::uint64_t bundles =
        iteration_count(seed, jitter, env::scaled(1200));
    vm.run_mutators(threads, [&, seed, bundles](Mutator& m, int idx) {
      Rng rng(seed * 29 + static_cast<std::uint64_t>(idx));
      for (std::uint64_t b = 0; b < bundles; ++b) {
        for (int ray = 0; ray < 16; ++ray) {
          Local origin(m, m.alloc(0, 3));
          Local dir(m, m.alloc(0, 3));
          Local hit(m, m.alloc(2, 4));
          origin->set_field(0, rng.next());
          dir->set_field(0, rng.next());
          m.set_ref(hit.get(), 0, origin.get());
          m.set_ref(hit.get(), 1, dir.get());
          hit->set_field(0, cpu_work(90));
        }
        if (b % 32 == 0) m.poll();
      }
    });
  }
};

}  // namespace

std::unique_ptr<Benchmark> make_sunflow() {
  return std::make_unique<Sunflow>();
}

}  // namespace mgc::dacapo
