// jython: interpreter model. One worker per hardware thread executes
// "function calls": each allocates a frame plus boxed locals; a rolling
// window of recent frames survives a while (medium lifetimes) before being
// dropped — interpreter-style allocation behaviour.
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"

namespace mgc::dacapo {
namespace {

class Jython final : public KernelBase {
 public:
  Jython() {
    info_.name = "jython";
    info_.default_threads = 0;
    info_.jitter = 0.04;
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    const std::uint64_t calls = iteration_count(seed, jitter, env::scaled(12000));
    vm.run_mutators(threads, [&, seed, calls](Mutator& m, int idx) {
      Rng rng(seed * 257 + static_cast<std::uint64_t>(idx));
      // Rolling window of live frames (chained via ref 0).
      constexpr int kWindow = 64;
      Local window_head(m);
      int window_len = 0;
      for (std::uint64_t c = 0; c < calls; ++c) {
        Local frame(m, m.alloc(6, 6));
        frame->set_field(0, c);
        // Boxed locals.
        for (int l = 1; l <= 3; ++l) {
          Local boxed(m, m.alloc(0, 2));
          boxed->set_field(0, rng.next());
          m.set_ref(frame.get(), static_cast<std::size_t>(l), boxed.get());
        }
        m.set_ref(frame.get(), 0, window_head.get());
        window_head.set(frame.get());
        if (++window_len > kWindow) {
          // Drop the tail: walk to the end and cut (keeps the window hot).
          Obj* cur = window_head.get();
          for (int i = 0; i < kWindow - 1; ++i) cur = cur->ref(0);
          m.set_ref(cur, 0, nullptr);
          window_len = kWindow;
        }
        cpu_work(80);
        if (c % 256 == 0) m.poll();
      }
    });
  }
};

}  // namespace

std::unique_ptr<Benchmark> make_jython() { return std::make_unique<Jython>(); }

}  // namespace mgc::dacapo
