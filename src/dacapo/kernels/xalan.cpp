// xalan: XSLT processor model. Multi-threaded (one client thread per
// hardware thread); each thread repeatedly builds an XML-like document
// tree, runs a transform pass over it (touching every node and emitting
// output fragments), then drops everything — a high-allocation-rate,
// short-lived-object workload.
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"

namespace mgc::dacapo {
namespace {

class Xalan final : public KernelBase {
 public:
  Xalan() {
    info_.name = "xalan";
    info_.default_threads = 0;  // one per hw thread
    info_.jitter = 0.08;
  }

  void setup(Vm& vm, std::uint64_t seed) override {
    // Parsed stylesheets and cached source documents survive the whole
    // run (~5 MB scaled = ~5 GB in paper units): this retained set is what
    // every forced full collection has to trace and slide, making the
    // full-GC cost differences of Figures 1(a)/2(a) visible.
    cache_root_ = vm.create_global_root();
    Vm::MutatorScope scope(vm, "xalan-setup");
    Mutator& m = scope.mutator();
    Rng rng(seed);
    Local cache(m, managed::ref_array::create(m, 12));
    for (int i = 0; i < 12; ++i) {
      Local doc(m, build_tree(m, rng, /*depth=*/6, /*fanout=*/4,
                              /*payload_words=*/4));
      managed::ref_array::set(m, cache.get(), static_cast<std::size_t>(i),
                              doc.get());
    }
    vm.set_global_root(cache_root_, cache.get());
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    const std::uint64_t docs = iteration_count(seed, jitter, env::scaled(100));
    vm.run_mutators(threads, [&, seed, docs](Mutator& m, int idx) {
      Rng rng(seed * 31 + static_cast<std::uint64_t>(idx));
      for (std::uint64_t d = 0; d < docs; ++d) {
        // Parse: build the document tree (~1365 nodes).
        Local doc(m, build_tree(m, rng, /*depth=*/5, /*fanout=*/4,
                                /*payload_words=*/4));
        // Transform: touch every node, emit output fragments.
        Local out(m, managed::list::create(m));
        const std::uint64_t check = tree_checksum(doc.get());
        for (int frag = 0; frag < 300; ++frag) {
          Local piece(m, m.alloc(0, 4));
          piece->set_field(0, check ^ static_cast<word_t>(frag));
          managed::list::push(m, out, piece);
        }
        cpu_work(2000);
        m.poll();
      }
    });
  }

 private:
  std::size_t cache_root_ = 0;
};

}  // namespace

std::unique_ptr<Benchmark> make_xalan() { return std::make_unique<Xalan>(); }

}  // namespace mgc::dacapo
