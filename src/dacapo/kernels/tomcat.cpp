// tomcat: servlet container model. A long-lived session store; each
// iteration serves a batch of requests on one client thread per hardware
// thread: parse the request (temporary buffers), look up / mutate the
// session, render a response — mostly short-lived objects over a modest
// resident set.
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"
#include "support/mutex.h"

namespace mgc::dacapo {
namespace {

class Tomcat final : public KernelBase {
 public:
  Tomcat() {
    info_.name = "tomcat";
    info_.default_threads = 0;
    info_.jitter = 0.03;
  }

  void setup(Vm& vm, std::uint64_t seed) override {
    sessions_ = env::scaled(1000);
    store_root_ = vm.create_global_root();
    Vm::MutatorScope scope(vm, "tomcat-setup");
    Mutator& m = scope.mutator();
    Local store(m, managed::hash_map::create(m, 512));
    vm.set_global_root(store_root_, store.get());
    Rng rng(seed);
    for (std::uint64_t s = 0; s < sessions_; ++s) {
      Local session(m, m.alloc(1, 8));
      session->set_field(0, s);
      Local attrs(m, managed::blob::create_zeroed(m, 96));
      m.set_ref(session.get(), 0, attrs.get());
      managed::hash_map::put(m, store, s, session);
    }
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    const std::uint64_t sessions = sessions_;
    const std::size_t root = store_root_;
    Mutex store_mu{LockRank::kAppData, "tomcat-store"};
    vm.run_mutators(threads, [&, seed, threads](Mutator& m, int idx) {
      Rng rng(seed * 17 + static_cast<std::uint64_t>(idx));
      const std::uint64_t reqs =
          iteration_count(seed, jitter, env::scaled(12000)) /
              static_cast<std::uint64_t>(threads) +
          1;
      for (std::uint64_t r = 0; r < reqs; ++r) {
        // Parse: request line + headers.
        Local request(m, managed::blob::create_zeroed(m, 160));
        managed::blob::mutable_data(request.get())[0] = static_cast<char>(r);
        Local headers(m, m.alloc(4, 4));
        for (int h = 0; h < 4; ++h) {
          Local header(m, managed::blob::create_zeroed(m, 32));
          m.set_ref(headers.get(), static_cast<std::size_t>(h), header.get());
        }
        // Session lookup; occasionally replace session attributes.
        const std::uint64_t sid = rng.below(sessions);
        Obj* session = managed::hash_map::get(vm.global_root(root), sid);
        if (session != nullptr && rng.chance(0.1)) {
          Local sess(m, session);
          Local attrs(m, managed::blob::create_zeroed(m, 96));
          GuardedLock<Mutex> g(m, store_mu);
          m.set_ref(sess.get(), 0, attrs.get());
        }
        // Render the response.
        Local response(m, managed::blob::create_zeroed(m, 256));
        managed::blob::mutable_data(response.get())[1] = static_cast<char>(sid);
        cpu_work(800);
        if (r % 256 == 0) m.poll();
      }
    });
  }

 private:
  std::size_t store_root_ = 0;
  std::uint64_t sessions_ = 1000;
};

}  // namespace

std::unique_ptr<Benchmark> make_tomcat() { return std::make_unique<Tomcat>(); }

}  // namespace mgc::dacapo
