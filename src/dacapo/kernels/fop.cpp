// fop: print formatter model. Strictly single-threaded; builds a document
// layout tree and formats it. One of the unstable benchmarks excluded by
// the paper's Table 2 selection (high run-to-run variance).
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"

namespace mgc::dacapo {
namespace {

class Fop final : public KernelBase {
 public:
  Fop() {
    info_.name = "fop";
    info_.default_threads = 1;
    info_.jitter = 0.50;
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    vm.run_mutators(threads, [&, seed](Mutator& m, int idx) {
      Rng rng(seed * 67 + static_cast<std::uint64_t>(idx));
      const std::uint64_t pages = iteration_count(seed, jitter, env::scaled(30));
      for (std::uint64_t p = 0; p < pages; ++p) {
        Local layout(m, build_tree(m, rng, /*depth=*/6, /*fanout=*/3,
                                   /*payload_words=*/4));
        // Formatting pass: line boxes.
        Local lines(m, managed::list::create(m));
        for (int l = 0; l < 200; ++l) {
          Local line(m, managed::blob::create_zeroed(m, 48));
          managed::list::push(m, lines, line);
        }
        (void)tree_checksum(layout.get());
        cpu_work(jittered(rng, jitter, 4000));
        m.poll();
      }
    });
  }
};

}  // namespace

std::unique_ptr<Benchmark> make_fop() { return std::make_unique<Fop>(); }

}  // namespace mgc::dacapo
