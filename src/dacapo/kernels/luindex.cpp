// luindex: index-builder model. Mostly single-threaded (one worker plus a
// helper, per the paper's §2.1): each iteration builds a fresh inverted
// index from documents — postings accumulate and survive the whole
// iteration (promotion pressure), then the index is dropped.
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"

namespace mgc::dacapo {
namespace {

class Luindex final : public KernelBase {
 public:
  Luindex() {
    info_.name = "luindex";
    info_.default_threads = 2;
    info_.jitter = 0.03;
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    vm.run_mutators(threads, [&, seed, threads](Mutator& m, int idx) {
      Rng rng(seed * 41 + static_cast<std::uint64_t>(idx));
      // Per-thread index segment: term -> posting chain. Like Lucene,
      // the segment is sealed and a fresh one started every kSegmentDocs
      // documents, which bounds the live set.
      constexpr std::uint64_t kSegmentDocs = 300;
      Local index(m, managed::hash_map::create(m, 512));
      const std::uint64_t docs =
          iteration_count(seed, jitter, env::scaled(8000)) /
              static_cast<std::uint64_t>(threads) +
          1;
      for (std::uint64_t d = 0; d < docs; ++d) {
        if (d > 0 && d % kSegmentDocs == 0) {
          index.set(managed::hash_map::create(m, 512));
        }
        Local doc(m, managed::blob::create_zeroed(m, 200));
        managed::blob::mutable_data(doc.get())[0] = static_cast<char>(d);
        // Tokenize into ~18 terms; append postings to the index.
        for (int t = 0; t < 18; ++t) {
          const std::uint64_t term = rng.below(4000);
          Local posting(m, m.alloc(2, 1));
          posting->set_field(0, d);
          Obj* chain = managed::hash_map::get(index.get(), term);
          if (chain != nullptr) m.set_ref(posting.get(), 0, chain);
          managed::hash_map::put(m, index, term, posting);
        }
        cpu_work(2500);
        if (d % 64 == 0) m.poll();
      }
      // Index dropped here: a burst of old-generation garbage per iteration.
    });
  }
};

}  // namespace

std::unique_ptr<Benchmark> make_luindex() {
  return std::make_unique<Luindex>();
}

}  // namespace mgc::dacapo
