#include "dacapo/kernels/common.h"

namespace mgc::dacapo {

std::uint64_t cpu_work(std::uint64_t units) {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (std::uint64_t i = 0; i < units; ++i) {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= i;
  }
  // Returned (and typically ignored) so the loop cannot be optimized away.
  return h;
}

std::uint64_t jittered(Rng& rng, double jitter, std::uint64_t base) {
  const double factor = 1.0 + jitter * (2.0 * rng.unit() - 1.0);
  const auto v = static_cast<std::uint64_t>(static_cast<double>(base) * factor);
  return v == 0 ? 1 : v;
}

Obj* build_tree(Mutator& m, Rng& rng, int depth, int fanout,
                int payload_words) {
  Local node(m, m.alloc(static_cast<std::uint16_t>(fanout),
                        static_cast<std::size_t>(payload_words)));
  for (int i = 0; i < payload_words; ++i) {
    node->set_field(static_cast<std::size_t>(i), rng.next());
  }
  if (depth > 0) {
    for (int c = 0; c < fanout; ++c) {
      Obj* child = build_tree(m, rng, depth - 1, fanout, payload_words);
      m.set_ref(node.get(), static_cast<std::size_t>(c), child);
    }
  }
  return node.get();
}

std::uint64_t tree_checksum(Obj* root) {
  if (root == nullptr) return 0;
  std::uint64_t h = root->payload_words() > 0 ? root->field(0) : 1;
  const std::size_t n = root->num_refs();
  for (std::size_t i = 0; i < n; ++i) {
    h = h * 31 + tree_checksum(root->ref(i));
  }
  return h;
}

}  // namespace mgc::dacapo
