// avrora: microcontroller-simulator model. A single external thread but
// internally multi-threaded: simulated nodes exchange event messages.
// The most unstable benchmark in the paper (its iteration times varied so
// much it was excluded from the stable subset immediately).
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"

namespace mgc::dacapo {
namespace {

class Avrora final : public KernelBase {
 public:
  Avrora() {
    info_.name = "avrora";
    info_.default_threads = 4;  // internal simulation threads
    info_.jitter = 0.50;
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    const std::uint64_t events =
        iteration_count(seed, jitter, env::scaled(15000));
    vm.run_mutators(threads, [&, seed, events](Mutator& m, int idx) {
      Rng rng(seed * 97 + static_cast<std::uint64_t>(idx));
      Local queue(m, managed::list::create(m));
      for (std::uint64_t e = 0; e < events; ++e) {
        // Fire an event: message + timestamped envelope.
        Local msg(m, managed::blob::create_zeroed(m, 40));
        managed::blob::mutable_data(msg.get())[0] = static_cast<char>(e);
        Local envelope(m, m.alloc(1, 2));
        envelope->set_field(0, e);
        m.set_ref(envelope.get(), 0, msg.get());
        managed::list::push(m, queue, envelope);
        // Drain bursts to keep the queue bounded — the burst size is what
        // varies wildly between runs.
        if (managed::list::size(queue.get()) >
            jittered(rng, jitter, 64)) {
          managed::list::clear(m, queue.get());
        }
        cpu_work(jittered(rng, jitter, 200));
        if (e % 256 == 0) m.poll();
      }
    });
  }
};

}  // namespace

std::unique_ptr<Benchmark> make_avrora() { return std::make_unique<Avrora>(); }

}  // namespace mgc::dacapo
