// Internal: per-kernel factory functions, one per DaCapo benchmark.
#pragma once

#include <memory>

#include "dacapo/workload.h"

namespace mgc::dacapo {

std::unique_ptr<Benchmark> make_avrora();
std::unique_ptr<Benchmark> make_batik();
std::unique_ptr<Benchmark> make_eclipse();
std::unique_ptr<Benchmark> make_fop();
std::unique_ptr<Benchmark> make_h2();
std::unique_ptr<Benchmark> make_jython();
std::unique_ptr<Benchmark> make_luindex();
std::unique_ptr<Benchmark> make_lusearch();
std::unique_ptr<Benchmark> make_pmd();
std::unique_ptr<Benchmark> make_sunflow();
std::unique_ptr<Benchmark> make_tomcat();
std::unique_ptr<Benchmark> make_tradebeans();
std::unique_ptr<Benchmark> make_tradesoap();
std::unique_ptr<Benchmark> make_xalan();

}  // namespace mgc::dacapo
