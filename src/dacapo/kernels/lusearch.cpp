// lusearch: search model. One client thread per hardware thread fires
// queries against a small shared read-only index; result sets are
// short-lived. Excluded by Table 2 (unstable).
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"

namespace mgc::dacapo {
namespace {

class Lusearch final : public KernelBase {
 public:
  Lusearch() {
    info_.name = "lusearch";
    info_.default_threads = 0;
    info_.jitter = 0.35;
  }

  void setup(Vm& vm, std::uint64_t seed) override {
    index_root_ = vm.create_global_root();
    Vm::MutatorScope scope(vm, "lusearch-setup");
    Mutator& m = scope.mutator();
    Rng rng(seed);
    Local index(m, managed::hash_map::create(m, 1024));
    for (std::uint64_t term = 0; term < 2000; ++term) {
      Local postings(m, managed::blob::create_zeroed(m, 64));
      managed::blob::mutable_data(postings.get())[0] =
          static_cast<char>(rng.next());
      managed::hash_map::put(m, index, term, postings);
    }
    vm.set_global_root(index_root_, index.get());
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    const std::size_t root = index_root_;
    const std::uint64_t queries =
        iteration_count(seed, jitter, env::scaled(6000));
    vm.run_mutators(threads, [&, seed, queries](Mutator& m, int idx) {
      Rng rng(seed * 71 + static_cast<std::uint64_t>(idx));
      for (std::uint64_t q = 0; q < queries; ++q) {
        // A query touches ~4 terms and materializes a hit list.
        Local hits(m, managed::list::create(m));
        for (int t = 0; t < 4; ++t) {
          Obj* postings =
              managed::hash_map::get(vm.global_root(root), rng.below(2000));
          Local hit(m, m.alloc(1, 4));
          hit->set_field(0, postings != nullptr
                                ? static_cast<word_t>(
                                      managed::blob::data(postings)[0])
                                : 0);
          managed::list::push(m, hits, hit);
        }
        Local rendered(m, managed::blob::create_zeroed(m, 180));
        (void)rendered;
        cpu_work(120);
        if (q % 256 == 0) m.poll();
      }
    });
  }

 private:
  std::size_t index_root_ = 0;
};

}  // namespace

std::unique_ptr<Benchmark> make_lusearch() {
  return std::make_unique<Lusearch>();
}

}  // namespace mgc::dacapo
