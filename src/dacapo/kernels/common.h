// Shared building blocks for the DaCapo-like kernels: tree/graph builders,
// bounded traversals, CPU work, and the per-iteration jitter that gives
// each benchmark its stability profile (paper Table 2).
#pragma once

#include "dacapo/workload.h"
#include "runtime/managed.h"
#include "support/env.h"
#include "support/rng.h"

namespace mgc::dacapo {

class KernelBase : public Benchmark {
 public:
  const BenchmarkInfo& info() const override { return info_; }

 protected:
  BenchmarkInfo info_;
};

// Pure-CPU work unit (hash mixing); keeps kernels from being purely
// allocation-bound, like real applications.
std::uint64_t cpu_work(std::uint64_t units);

// Multiplies a base count by the benchmark's jitter for this iteration:
// uniform in [1 - j, 1 + j]. This is what makes avrora-like benchmarks
// unstable and pmd-like ones stable.
std::uint64_t jittered(Rng& rng, double jitter, std::uint64_t base);

// One jitter draw per *iteration*, shared by every worker thread (so the
// draws do not average out across threads and the instability the paper
// measured survives).
inline std::uint64_t iteration_count(std::uint64_t seed, double jitter,
                                     std::uint64_t base) {
  Rng rng(seed ^ 0xd1b54a32d192ed03ULL);
  return jittered(rng, jitter, base);
}

// Builds a tree of managed nodes: each node has `fanout` children slots
// plus `payload_words` of data. Returns the root. Allocation-safe (uses
// Locals internally).
Obj* build_tree(Mutator& m, Rng& rng, int depth, int fanout,
                int payload_words);

// Walks the tree without allocating; returns a checksum (and implicitly
// touches every node, like a transform/analysis pass would).
std::uint64_t tree_checksum(Obj* root);

// Number of nodes in a full tree.
constexpr std::uint64_t tree_nodes(int depth, int fanout) {
  std::uint64_t n = 0;
  std::uint64_t level = 1;
  for (int d = 0; d <= depth; ++d) {
    n += level;
    level *= static_cast<std::uint64_t>(fanout);
  }
  return n;
}

}  // namespace mgc::dacapo
