// pmd: static-analysis model. A single client thread drives one worker per
// hardware thread; each worker parses "source files" into deep ASTs,
// analyzes them (full traversals producing report objects) and drops them.
// The most stable benchmark in the paper's Table 2.
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"

namespace mgc::dacapo {
namespace {

class Pmd final : public KernelBase {
 public:
  Pmd() {
    info_.name = "pmd";
    info_.default_threads = 0;
    info_.jitter = 0.02;
  }

  void setup(Vm& vm, std::uint64_t /*seed*/) override {
    // Shared rule set: small, long-lived.
    rules_root_ = vm.create_global_root();
    Vm::MutatorScope scope(vm, "pmd-setup");
    Mutator& m = scope.mutator();
    Local rules(m, managed::ref_array::create(m, 64));
    for (int i = 0; i < 64; ++i) {
      Local rule(m, m.alloc(0, 6));
      rule->set_field(0, static_cast<word_t>(i));
      managed::ref_array::set(m, rules.get(), static_cast<std::size_t>(i),
                              rule.get());
    }
    vm.set_global_root(rules_root_, rules.get());
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    const std::uint64_t files = iteration_count(seed, jitter, env::scaled(60));
    vm.run_mutators(threads, [&, seed, files](Mutator& m, int idx) {
      Rng rng(seed * 13 + static_cast<std::uint64_t>(idx));
      for (std::uint64_t f = 0; f < files; ++f) {
        // Parse: a deep AST (~1093 nodes).
        Local ast(m, build_tree(m, rng, /*depth=*/6, /*fanout=*/3,
                                /*payload_words=*/6));
        // Analyze: run every rule as a traversal emitting violations.
        Local report(m, managed::list::create(m));
        for (int rule = 0; rule < 16; ++rule) {
          const std::uint64_t hits = tree_checksum(ast.get()) % 7;
          for (std::uint64_t v = 0; v <= hits; ++v) {
            Local violation(m, m.alloc(1, 3));
            violation->set_field(0, static_cast<word_t>(rule));
            managed::list::push(m, report, violation);
          }
        }
        cpu_work(1000);
        m.poll();
      }
    });
  }

 private:
  std::size_t rules_root_ = 0;
};

}  // namespace

std::unique_ptr<Benchmark> make_pmd() { return std::make_unique<Pmd>(); }

}  // namespace mgc::dacapo
