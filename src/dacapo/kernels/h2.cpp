// h2: in-memory database model. A persistent table (managed hash map of
// row blobs) is created at setup; each iteration runs a transaction mix
// (reads, updates, inserts/deletes keeping the table size steady) across
// one client thread per hardware thread. Moderate allocation rate with a
// significant long-lived resident set — the benchmark the paper uses for
// its heap/young-generation sweep (Table 3).
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"
#include "support/mutex.h"

namespace mgc::dacapo {
namespace {

// Sized so the resident set (~160 KB scaled ~ 160 MB in paper units) still
// fits the paper's smallest Table 3 configuration (250 MB heap / 200 MB
// young) the same way real H2 barely fit the authors' machine.
constexpr std::uint64_t kBaseRows = 900;
constexpr std::size_t kRowBytes = 40;

class H2 final : public KernelBase {
 public:
  H2() {
    info_.name = "h2";
    info_.default_threads = 0;
    info_.jitter = 0.03;
  }

  void setup(Vm& vm, std::uint64_t seed) override {
    rows_ = env::scaled(kBaseRows);
    table_root_ = vm.create_global_root();
    Vm::MutatorScope scope(vm, "h2-setup");
    Mutator& m = scope.mutator();
    Local table(m, managed::hash_map::create(m, 1024));
    vm.set_global_root(table_root_, table.get());
    Rng rng(seed);
    for (std::uint64_t r = 0; r < rows_; ++r) {
      Local row(m, managed::blob::create_zeroed(m, kRowBytes));
      std::memcpy(managed::blob::mutable_data(row.get()), &r, sizeof(r));
      managed::hash_map::put(m, table, r, row);
    }
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    const std::uint64_t rows = rows_;
    const std::size_t root = table_root_;
    Mutex table_mu{LockRank::kAppData, "h2-table"};
    vm.run_mutators(threads, [&, seed, threads](Mutator& m, int idx) {
      Rng rng(seed * 131 + static_cast<std::uint64_t>(idx));
      const std::uint64_t per_thread =
          iteration_count(seed, jitter, env::scaled(8000)) /
              static_cast<std::uint64_t>(threads) +
          1;
      for (std::uint64_t t = 0; t < per_thread; ++t) {
        const std::uint64_t key = rng.below(rows);
        const double op = rng.unit();
        if (op < 0.5) {
          // Read: locate the row and hash its contents (scratch allocs).
          Obj* table = vm.global_root(root);
          Obj* row = managed::hash_map::get(table, key);
          if (row != nullptr) {
            // Materialize a result set (cursor + row copy).
            Local cursor(m, m.alloc(1, 8));
            Local result(m, m.alloc(0, 24));
            result->set_field(
                0, static_cast<word_t>(managed::blob::data(row)[0]));
            m.set_ref(cursor.get(), 0, result.get());
          }
        } else {
          // Update: build the new row version, then swap it in.
          Local fresh(m, managed::blob::create_zeroed(m, kRowBytes));
          std::memcpy(managed::blob::mutable_data(fresh.get()), &t, sizeof(t));
          Local undo(m, m.alloc(1, 4));  // transaction log scratch
          m.set_ref(undo.get(), 0, fresh.get());
          GuardedLock<Mutex> g(m, table_mu);
          Local table(m, vm.global_root(root));
          managed::hash_map::put(m, table, key, fresh);
        }
        cpu_work(2000);
        if (t % 256 == 0) m.poll();
      }
    });
  }

 private:
  std::size_t table_root_ = 0;
  std::uint64_t rows_ = kBaseRows;
};

}  // namespace

std::unique_ptr<Benchmark> make_h2() { return std::make_unique<H2>(); }

}  // namespace mgc::dacapo
