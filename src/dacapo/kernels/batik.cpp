// batik: SVG rasterizer model. Mostly single-threaded with a small memory
// footprint — at the paper's baseline heap it performs NO collections at
// all when the forced system GC is disabled (§3.3), which is exactly the
// property used to study GC-free execution. Allocation per iteration is
// kept well under one eden.
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"

namespace mgc::dacapo {
namespace {

class Batik final : public KernelBase {
 public:
  Batik() {
    info_.name = "batik";
    info_.default_threads = 1;
    info_.jitter = 0.12;
  }

  void run_iteration(Vm& vm, int threads, std::uint64_t seed) override {
    const double jitter = info_.jitter;
    vm.run_mutators(threads, [&, seed](Mutator& m, int idx) {
      Rng rng(seed * 101 + static_cast<std::uint64_t>(idx));
      // Parse the SVG: a small scene graph (~364 nodes, ~30 KB).
      Local scene(m, build_tree(m, rng, /*depth=*/5, /*fanout=*/3,
                                /*payload_words=*/6));
      // Rasterize into a framebuffer, one pass per "tile".
      Local framebuffer(m, managed::blob::create_zeroed(m, 48 * 1024));
      const std::uint64_t tiles = iteration_count(seed, jitter, 200);
      char* fb = managed::blob::mutable_data(framebuffer.get());
      for (std::uint64_t tile = 0; tile < tiles; ++tile) {
        const std::uint64_t paint = tree_checksum(scene.get());
        fb[tile % (48 * 1024)] = static_cast<char>(paint);
        // A couple of temporary paint objects per tile — deliberately few.
        Local grad(m, m.alloc(0, 8));
        grad->set_field(0, paint);
        cpu_work(30000);
        m.poll();
      }
    });
  }
};

}  // namespace

std::unique_ptr<Benchmark> make_batik() { return std::make_unique<Batik>(); }

}  // namespace mgc::dacapo
