// eclipse, tradebeans, tradesoap: the paper reports these three DaCapo
// benchmarks crashed on every test (§3.2) and excludes them. We model that
// faithfully: the kernels abort with BenchmarkCrash before doing any work,
// so the harness and the Table 2 stability experiment see the same
// behaviour the authors saw.
#include "dacapo/kernels/common.h"
#include "dacapo/kernels/registry.h"

namespace mgc::dacapo {
namespace {

class Crasher final : public KernelBase {
 public:
  explicit Crasher(const std::string& name) {
    info_.name = name;
    info_.crashes = true;
    info_.jitter = 0.0;
  }

  void run_iteration(Vm& /*vm*/, int /*threads*/,
                     std::uint64_t /*seed*/) override {
    throw BenchmarkCrash(info_.name +
                         ": crashes on every run (paper §3.2, excluded)");
  }
};

}  // namespace

std::unique_ptr<Benchmark> make_eclipse() {
  return std::make_unique<Crasher>("eclipse");
}
std::unique_ptr<Benchmark> make_tradebeans() {
  return std::make_unique<Crasher>("tradebeans");
}
std::unique_ptr<Benchmark> make_tradesoap() {
  return std::make_unique<Crasher>("tradesoap");
}

}  // namespace mgc::dacapo
