#include "dacapo/suite.h"

#include "dacapo/kernels/registry.h"
#include "support/check.h"

namespace mgc::dacapo {

const std::vector<std::string>& all_benchmarks() {
  static const std::vector<std::string> kAll = {
      "avrora", "batik",   "eclipse",    "fop",       "h2",
      "jython", "luindex", "lusearch",   "pmd",       "sunflow",
      "tomcat", "tradebeans", "tradesoap", "xalan",
  };
  return kAll;
}

const std::vector<std::string>& stable_subset() {
  // Table 2 of the paper.
  static const std::vector<std::string> kStable = {
      "h2", "tomcat", "xalan", "jython", "pmd", "luindex", "batik",
  };
  return kStable;
}

const std::vector<std::string>& crashing_benchmarks() {
  static const std::vector<std::string> kCrash = {"eclipse", "tradebeans",
                                                  "tradesoap"};
  return kCrash;
}

std::unique_ptr<Benchmark> make_benchmark(const std::string& name) {
  if (name == "avrora") return make_avrora();
  if (name == "batik") return make_batik();
  if (name == "eclipse") return make_eclipse();
  if (name == "fop") return make_fop();
  if (name == "h2") return make_h2();
  if (name == "jython") return make_jython();
  if (name == "luindex") return make_luindex();
  if (name == "lusearch") return make_lusearch();
  if (name == "pmd") return make_pmd();
  if (name == "sunflow") return make_sunflow();
  if (name == "tomcat") return make_tomcat();
  if (name == "tradebeans") return make_tradebeans();
  if (name == "tradesoap") return make_tradesoap();
  if (name == "xalan") return make_xalan();
  MGC_UNREACHABLE("unknown benchmark name");
}

}  // namespace mgc::dacapo
