// The DaCapo-style harness: N iterations on a fresh VM, all but the last
// being warm-up rounds, with an optional forced full collection ("system
// GC") between iterations — the axis the paper's experiments pivot on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dacapo/workload.h"
#include "runtime/gc_cost.h"
#include "runtime/gc_log.h"
#include "runtime/vm_config.h"

namespace mgc::dacapo {

struct HarnessOptions {
  int iterations = 10;
  bool system_gc_between_iterations = true;  // the DaCapo default
  int threads = 0;      // 0 = benchmark default (hw threads for most)
  std::uint64_t seed = 42;
};

struct HarnessResult {
  std::string benchmark;
  bool crashed = false;
  std::vector<double> iteration_s;  // wall time per iteration
  double total_s = 0.0;             // sum of all iterations
  double final_iteration_s = 0.0;   // the actual (non-warm-up) run
  // Process-CPU-time mirrors of the above (see process_cpu_ns()).
  std::vector<double> iteration_cpu_s;
  double total_cpu_s = 0.0;
  double final_iteration_cpu_s = 0.0;
  PauseSummary pauses;
  std::vector<PauseEvent> pause_events;
  std::int64_t vm_origin_ns = 0;  // for relative pause timelines
  // Distilled GC cost channels for the whole run (see runtime/gc_cost.h).
  GcCostSnapshot cost;
  // Total bytes allocated across the run; sizes the Epsilon baseline heap.
  std::uint64_t allocated_bytes = 0;
};

// Runs `name` under a fresh VM configured by `cfg`.
HarnessResult run_benchmark(const VmConfig& cfg, const std::string& name,
                            const HarnessOptions& opts);

// Effective thread count for a benchmark (respects MGC_THREADS, caps at 8).
int harness_threads(const BenchmarkInfo& info, const HarnessOptions& opts);

}  // namespace mgc::dacapo
