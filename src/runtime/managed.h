// Managed ("on-heap") data structures, built purely out of mgc objects the
// way Java library classes are built out of Java objects. The kvstore's
// memtable and commit log and several DaCapo-like kernels use these, which
// is what makes their heap pressure realistic.
//
// Thread-safety: like java.util collections, none of these are internally
// synchronized; callers stripe locks around structural mutation.
//
// GC discipline: any operation that allocates takes `Local&` handles for
// the structures it touches (a moving collection may run mid-operation);
// read-only operations take raw Obj* and must not allocate.
#pragma once

#include <cstdint>
#include <functional>

#include "runtime/mutator.h"

namespace mgc::managed {

inline std::uint64_t hash_u64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

// --- RefArray ----------------------------------------------------------------
// Fixed-capacity reference array, chunked so arbitrarily large arrays fit
// the 16-bit per-object reference limit. Layout:
//   root: payload[0] = capacity, refs = chunk pointers
//   chunk: up to kChunkRefs refs
namespace ref_array {
inline constexpr std::size_t kChunkRefs = 1024;

Obj* create(Mutator& m, std::size_t capacity);
std::size_t capacity(const Obj* arr);
Obj* get(const Obj* arr, std::size_t i);
void set(Mutator& m, Obj* arr, std::size_t i, Obj* v);
}  // namespace ref_array

// --- HashMap<uint64 -> Obj*> ---------------------------------------------------
// Chained hash map with a fixed bucket array. Layout:
//   map:  refs[0] = bucket RefArray; payload[0] = bucket_count, [1] = size
//   node: refs[0] = next, refs[1] = value; payload[0] = key
namespace hash_map {
Obj* create(Mutator& m, std::size_t buckets);
std::size_t size(const Obj* map);
// Returns the value for key, or nullptr.
Obj* get(const Obj* map, std::uint64_t key);
// Inserts or replaces; `map` and `value` stay valid across the internal
// allocation via the Locals.
void put(Mutator& m, const Local& map, std::uint64_t key, const Local& value);
// Removes key; returns true if present.
bool remove(Mutator& m, Obj* map, std::uint64_t key);
// fn(key, value) for every entry; must not allocate.
void for_each(const Obj* map,
              const std::function<void(std::uint64_t, Obj*)>& fn);
}  // namespace hash_map

// --- List (singly linked LIFO) ---------------------------------------------------
// list: refs[0] = head; payload[0] = count
// node: refs[0] = next, refs[1] = value
namespace list {
Obj* create(Mutator& m);
std::size_t size(const Obj* lst);
void push(Mutator& m, const Local& lst, const Local& value);
// Pops the head value (nullptr when empty).
Obj* pop(Mutator& m, Obj* lst);
void clear(Mutator& m, Obj* lst);
void for_each(const Obj* lst, const std::function<void(Obj*)>& fn);
}  // namespace list

// --- Blob -----------------------------------------------------------------------
// Reference-free byte payload: payload[0] = length in bytes, rest = data.
namespace blob {
Obj* create(Mutator& m, const void* data, std::size_t len);
Obj* create_zeroed(Mutator& m, std::size_t len);
std::size_t length(const Obj* b);
const char* data(const Obj* b);
char* mutable_data(Obj* b);
}  // namespace blob

}  // namespace mgc::managed
