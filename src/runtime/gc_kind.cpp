#include "runtime/gc_kind.h"

#include <algorithm>
#include <cctype>

#include "support/check.h"

namespace mgc {
namespace {

// Table 1 of the paper, one row per collector.
constexpr GcTraits kTraits[] = {
    //                name            short        Ypar  Ycp  YcM    YcC    Opar  Ocmp  OcM    OcS
    /* Serial      */ {"SerialGC", "Serial", false, true, false, false, false, true, false, false},
    /* ParNew      */ {"ParNewGC", "ParNew", true, true, false, false, false, true, false, false},
    /* Parallel    */ {"ParallelGC", "Parallel", true, true, false, false, false, true, false, false},
    /* ParallelOld */ {"ParallelOldGC", "ParallelOld", true, true, false, false, true, true, false, false},
    /* CMS         */ {"ConcMarkSweepGC", "CMS", true, true, false, false, true, false, true, true},
    /* G1          */ {"G1GC", "G1", true, true, false, false, true, true, true, false},
    /* Epsilon     */ {"EpsilonGC", "Epsilon", false, false, false, false, false, false, false, false},
};

static_assert(sizeof(kTraits) / sizeof(kTraits[0]) ==
                  static_cast<std::size_t>(GcKind::kEpsilon) + 1,
              "every GcKind needs a kTraits row");

}  // namespace

const GcTraits& gc_traits(GcKind kind) {
  return kTraits[static_cast<int>(kind)];
}

const char* gc_name(GcKind kind) { return gc_traits(kind).name; }

const std::vector<GcKind>& all_gc_kinds() {
  static const std::vector<GcKind> kAll = {
      GcKind::kSerial,   GcKind::kParNew, GcKind::kParallel,
      GcKind::kParallelOld, GcKind::kCms, GcKind::kG1,
  };
  return kAll;
}

const std::vector<GcKind>& main_gc_kinds() {
  static const std::vector<GcKind> kMain = {
      GcKind::kParallelOld, GcKind::kCms, GcKind::kG1};
  return kMain;
}

const std::vector<GcKind>& every_gc_kind() {
  static const std::vector<GcKind> kEvery = {
      GcKind::kSerial, GcKind::kParNew,  GcKind::kParallel, GcKind::kParallelOld,
      GcKind::kCms,    GcKind::kG1,      GcKind::kEpsilon,
  };
  return kEvery;
}

bool try_gc_kind_from_name(const std::string& name, GcKind* out) {
  std::string lower = name;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (GcKind k : every_gc_kind()) {
    std::string full = gc_traits(k).name;
    std::string shrt = gc_traits(k).short_name;
    std::transform(full.begin(), full.end(), full.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    std::transform(shrt.begin(), shrt.end(), shrt.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower == full || lower == shrt) {
      *out = k;
      return true;
    }
  }
  if (lower == "concurrentmarksweep" || lower == "concurrentmarksweepgc") {
    *out = GcKind::kCms;
    return true;
  }
  return false;
}

GcKind gc_kind_from_name(const std::string& name) {
  GcKind k;
  if (try_gc_kind_from_name(name, &k)) return k;
  MGC_UNREACHABLE("unknown GC name");
}

}  // namespace mgc
