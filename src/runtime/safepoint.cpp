#include "runtime/safepoint.h"

#include "support/check.h"

namespace mgc {

void SafepointCoordinator::register_thread() {
  MutexLock l(mu_);
  // Joining counts as leaving a blocked region: wait out any active stop.
  cv_resume_.wait(l, [&] { return !requested_.load(std::memory_order_relaxed); });
  ++managed_;
}

void SafepointCoordinator::unregister_thread() {
  {
    MutexLock l(mu_);
    --managed_;
    MGC_CHECK(managed_ >= 0);
  }
  cv_stopped_.notify_all();
}

void SafepointCoordinator::enter_blocked() {
  {
    MutexLock l(mu_);
    --managed_;
    MGC_CHECK(managed_ >= 0);
  }
  // The VM thread may be waiting for this thread to stop.
  cv_stopped_.notify_all();
}

void SafepointCoordinator::leave_blocked() {
  MutexLock l(mu_);
  cv_resume_.wait(l, [&] { return !requested_.load(std::memory_order_relaxed); });
  ++managed_;
}

void SafepointCoordinator::poll_slow() {
  MutexLock l(mu_);
  while (requested_.load(std::memory_order_relaxed)) {
    ++parked_;
    cv_stopped_.notify_all();
    cv_resume_.wait(l, [&] { return !requested_.load(std::memory_order_relaxed); });
    --parked_;
  }
}

void SafepointCoordinator::begin() {
  MutexLock l(mu_);
  MGC_CHECK_MSG(!requested_.load(std::memory_order_relaxed),
                "nested safepoint");
  requested_.store(true, std::memory_order_release);
  cv_stopped_.wait(l, [&]() MGC_REQUIRES(mu_) { return parked_ == managed_; });
}

void SafepointCoordinator::end() {
  {
    MutexLock l(mu_);
    MGC_CHECK(requested_.load(std::memory_order_relaxed));
    requested_.store(false, std::memory_order_release);
  }
  cv_resume_.notify_all();
}

int SafepointCoordinator::registered_managed_threads() const {
  MutexLock l(mu_);
  return managed_;
}

}  // namespace mgc
