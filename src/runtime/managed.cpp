#include "runtime/managed.h"

#include <atomic>
#include <cstring>

#include "support/check.h"

namespace mgc::managed {

// --- RefArray -------------------------------------------------------------

namespace ref_array {

Obj* create(Mutator& m, std::size_t capacity) {
  MGC_CHECK(capacity >= 1);
  const std::size_t nchunks = (capacity + kChunkRefs - 1) / kChunkRefs;
  MGC_CHECK_MSG(nchunks <= UINT16_MAX, "RefArray too large");
  Local root(m, m.alloc(static_cast<std::uint16_t>(nchunks), 1));
  root->set_field(0, capacity);
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t refs_here =
        std::min(kChunkRefs, capacity - c * kChunkRefs);
    Obj* chunk = m.alloc(static_cast<std::uint16_t>(refs_here), 0);
    m.set_ref(root.get(), c, chunk);
  }
  return root.get();
}

std::size_t capacity(const Obj* arr) { return arr->field(0); }

Obj* get(const Obj* arr, std::size_t i) {
  MGC_DCHECK(i < capacity(arr));
  return arr->ref(i / kChunkRefs)->ref(i % kChunkRefs);
}

void set(Mutator& m, Obj* arr, std::size_t i, Obj* v) {
  MGC_DCHECK(i < capacity(arr));
  m.set_ref(arr->ref(i / kChunkRefs), i % kChunkRefs, v);
}

}  // namespace ref_array

// --- HashMap ----------------------------------------------------------------

namespace hash_map {
namespace {
constexpr std::size_t kBucketsField = 0;
constexpr std::size_t kSizeField = 1;

std::size_t bucket_of(const Obj* map, std::uint64_t key) {
  return hash_u64(key) % map->field(kBucketsField);
}
}  // namespace

Obj* create(Mutator& m, std::size_t buckets) {
  MGC_CHECK(buckets >= 1);
  Local map(m, m.alloc(1, 2));
  map->set_field(kBucketsField, buckets);
  map->set_field(kSizeField, 0);
  Obj* arr = ref_array::create(m, buckets);
  m.set_ref(map.get(), 0, arr);
  return map.get();
}

std::size_t size(const Obj* map) {
  return std::atomic_ref<word_t>(
             const_cast<Obj*>(map)->payload()[kSizeField])
      .load(std::memory_order_acquire);
}

Obj* get(const Obj* map, std::uint64_t key) {
  const Obj* buckets = map->ref(0);
  for (Obj* node = ref_array::get(buckets, bucket_of(map, key));
       node != nullptr; node = node->ref(0)) {
    if (node->field(0) == key) return node->ref(1);
  }
  return nullptr;
}

void put(Mutator& m, const Local& map, std::uint64_t key, const Local& value) {
  // Fast path: replace in place (no allocation, raw pointers are stable).
  {
    Obj* buckets = map->ref(0);
    for (Obj* node = ref_array::get(buckets, bucket_of(map.get(), key));
         node != nullptr; node = node->ref(0)) {
      if (node->field(0) == key) {
        m.set_ref(node, 1, value.get());
        return;
      }
    }
  }
  // Insert: the node allocation may move everything, so re-derive all
  // pointers from the Locals afterwards.
  Local node(m, m.alloc(2, 1));
  node->set_field(0, key);
  m.set_ref(node.get(), 1, value.get());
  Obj* buckets = map->ref(0);
  const std::size_t b = bucket_of(map.get(), key);
  m.set_ref(node.get(), 0, ref_array::get(buckets, b));
  ref_array::set(m, buckets, b, node.get());
  // Callers stripe-lock per bucket, so the shared size counter must be
  // updated atomically (payload words are 8-byte aligned).
  std::atomic_ref<word_t>(map->payload()[kSizeField])
      .fetch_add(1, std::memory_order_acq_rel);
}

bool remove(Mutator& m, Obj* map, std::uint64_t key) {
  Obj* buckets = map->ref(0);
  const std::size_t b = bucket_of(map, key);
  Obj* prev = nullptr;
  for (Obj* node = ref_array::get(buckets, b); node != nullptr;
       node = node->ref(0)) {
    if (node->field(0) == key) {
      if (prev == nullptr) {
        ref_array::set(m, buckets, b, node->ref(0));
      } else {
        m.set_ref(prev, 0, node->ref(0));
      }
      std::atomic_ref<word_t>(map->payload()[kSizeField])
          .fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
    prev = node;
  }
  return false;
}

void for_each(const Obj* map,
              const std::function<void(std::uint64_t, Obj*)>& fn) {
  const Obj* buckets = map->ref(0);
  const std::size_t n = map->field(kBucketsField);
  for (std::size_t b = 0; b < n; ++b) {
    for (Obj* node = ref_array::get(buckets, b); node != nullptr;
         node = node->ref(0)) {
      fn(node->field(0), node->ref(1));
    }
  }
}

}  // namespace hash_map

// --- List ----------------------------------------------------------------------

namespace list {

Obj* create(Mutator& m) {
  Obj* lst = m.alloc(1, 1);
  lst->set_field(0, 0);
  return lst;
}

std::size_t size(const Obj* lst) { return lst->field(0); }

void push(Mutator& m, const Local& lst, const Local& value) {
  Local node(m, m.alloc(2, 0));
  m.set_ref(node.get(), 1, value.get());
  m.set_ref(node.get(), 0, lst->ref(0));
  m.set_ref(lst.get(), 0, node.get());
  lst->set_field(0, lst->field(0) + 1);
}

Obj* pop(Mutator& m, Obj* lst) {
  Obj* node = lst->ref(0);
  if (node == nullptr) return nullptr;
  m.set_ref(lst, 0, node->ref(0));
  lst->set_field(0, lst->field(0) - 1);
  return node->ref(1);
}

void clear(Mutator& m, Obj* lst) {
  m.set_ref(lst, 0, nullptr);
  lst->set_field(0, 0);
}

void for_each(const Obj* lst, const std::function<void(Obj*)>& fn) {
  for (Obj* node = lst->ref(0); node != nullptr; node = node->ref(0)) {
    fn(node->ref(1));
  }
}

}  // namespace list

// --- Blob ------------------------------------------------------------------------

namespace blob {

Obj* create(Mutator& m, const void* data, std::size_t len) {
  Obj* b = create_zeroed(m, len);
  std::memcpy(mutable_data(b), data, len);
  return b;
}

Obj* create_zeroed(Mutator& m, std::size_t len) {
  const std::size_t payload_words = 1 + bytes_to_words(len);
  Obj* b = m.alloc(0, payload_words);
  b->set_field(0, len);
  std::memset(b->payload() + 1, 0, words_to_bytes(payload_words - 1));
  return b;
}

std::size_t length(const Obj* b) { return b->field(0); }

const char* data(const Obj* b) {
  return reinterpret_cast<const char*>(b->payload() + 1);
}

char* mutable_data(Obj* b) { return reinterpret_cast<char*>(b->payload() + 1); }

}  // namespace blob

}  // namespace mgc::managed
