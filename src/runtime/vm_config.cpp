#include "runtime/vm_config.h"

#include <algorithm>
#include <thread>
#include <sstream>

#include "heap/layout.h"
#include "support/check.h"
#include "support/env.h"

namespace mgc {

VmConfig VmConfig::baseline(GcKind gc) {
  VmConfig cfg;
  cfg.gc = gc;
  return cfg;
}

std::size_t VmConfig::eden_bytes() const {
  // eden : survivor : survivor = ratio : 1 : 1
  const std::size_t sv = survivor_bytes();
  return align_up(young_bytes - 2 * sv, kObjAlignment);
}

std::size_t VmConfig::survivor_bytes() const {
  std::size_t sv = young_bytes / static_cast<std::size_t>(survivor_ratio + 2);
  sv = align_up(std::max<std::size_t>(sv, 4 * KiB), kObjAlignment);
  return sv;
}

int VmConfig::effective_gc_threads() const {
  if (gc_threads > 0) return gc_threads;
  // Like HotSpot, GC parallelism follows the *hardware*: parallel phases
  // on a single-CPU host would only add spin overhead. (Workload thread
  // counts, by contrast, follow the paper's thread structure; see
  // support/env.cpp.)
  const unsigned hw = std::thread::hardware_concurrency();
  return std::min(hw == 0 ? 1 : static_cast<int>(hw), 8);
}

void VmConfig::validate() const {
  MGC_CHECK(heap_bytes >= 64 * KiB);
  MGC_CHECK(young_bytes >= 16 * KiB);
  MGC_CHECK_MSG(young_bytes < heap_bytes, "young generation must fit in heap");
  MGC_CHECK(heap_bytes % kObjAlignment == 0);
  MGC_CHECK(tlab_bytes >= 512 && tlab_bytes < eden_bytes());
  MGC_CHECK(min_tlab_bytes >= 512 && min_tlab_bytes <= tlab_bytes);
  MGC_CHECK(tlab_refill_target >= 1);
  MGC_CHECK(tenuring_threshold >= 0 && tenuring_threshold < 16);
  MGC_CHECK(survivor_ratio >= 1);
  if (gc == GcKind::kG1) {
    MGC_CHECK((g1_region_bytes & (g1_region_bytes - 1)) == 0);
    MGC_CHECK(heap_bytes / g1_region_bytes >= 8);
    MGC_CHECK(young_bytes >= 2 * g1_region_bytes);
  }
}

std::string VmConfig::describe() const {
  std::ostringstream oss;
  oss << gc_name(gc) << " heap=" << scale::label(heap_bytes)
      << " young=" << scale::label(young_bytes)
      << " tlab=" << (tlab_enabled ? (tlab_adaptive ? "adaptive" : "on")
                                   : "off")
      << " gcthreads=" << effective_gc_threads();
  return oss.str();
}

}  // namespace mgc
