#include "runtime/gc_cost.h"

#include "runtime/gc_log.h"

namespace mgc {

GcCostSnapshot GcCostCounters::snapshot(const GcLog& log) const {
  GcCostSnapshot s;
  s.pause_ns = log.total_pause_ns();
  s.pauses = log.count();
  s.alloc_slow_ns = alloc_slow_ns_.load(std::memory_order_relaxed);
  s.alloc_slow_calls = alloc_slow_calls_.load(std::memory_order_relaxed);
  s.barrier_card_ops = barrier_card_ops_.load(std::memory_order_relaxed);
  s.barrier_satb_ops = barrier_satb_ops_.load(std::memory_order_relaxed);
  s.barrier_rset_ops = barrier_rset_ops_.load(std::memory_order_relaxed);
  s.concurrent_ns = concurrent_ns_.load(std::memory_order_relaxed);
  s.concurrent_cycles = concurrent_cycles_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace mgc
