// VM configuration: the knobs the paper varies (collector, heap size, young
// generation size, TLAB) plus collector tuning constants at their HotSpot
// defaults. All sizes are in *scaled* bytes (see support/units.h).
#pragma once

#include <cstddef>
#include <string>

#include "runtime/gc_kind.h"
#include "support/units.h"

namespace mgc {

struct VmConfig {
  GcKind gc = GcKind::kParallelOld;

  // Paper baseline: ~16 GB fixed heap, ~5.6 GB young generation, TLAB on.
  std::size_t heap_bytes = 16 * scale::GB;
  std::size_t young_bytes = 5734 * scale::MB;  // ~5.6 GB

  // Extra reservation beyond heap_bytes that the allocation ladder may
  // commit to the old generation under pressure (the heap-expand rung).
  // 0 = fixed-size heap, the paper's measurement configuration.
  std::size_t heap_reserve_bytes = 0;

  bool tlab_enabled = true;
  std::size_t tlab_bytes = 16 * KiB;  // initial (and fixed, if !adaptive) size

  // Adaptive TLAB sizing (HotSpot's ResizeTLAB analogue): each mutator
  // resizes its TLAB from an EWMA of its allocation volume per young
  // cycle, targeting ~tlab_refill_target refills per cycle, clamped to
  // [min_tlab_bytes, eden / live mutators].
  bool tlab_adaptive = true;
  std::size_t min_tlab_bytes = 1 * KiB;
  int tlab_refill_target = 50;

  // 0 = default: min(hardware threads, 8).
  int gc_threads = 0;

  // Generational tuning (HotSpot defaults).
  int tenuring_threshold = 6;
  int survivor_ratio = 8;  // eden : survivor = 8 : 1 : 1

  // CMS: background cycle starts above this old-gen occupancy.
  double cms_trigger_occupancy = 0.70;

  // G1.
  std::size_t g1_region_bytes = 256 * KiB;
  double g1_ihop = 0.45;           // heap occupancy starting a mark cycle
  double g1_pause_target_ms = 5.0; // scaled analogue of -XX:MaxGCPauseMillis
  double g1_mixed_garbage_threshold = 0.15;  // skip old regions with less garbage

  bool verbose_gc = false;

  // The paper's default configuration for a given collector.
  static VmConfig baseline(GcKind gc);

  // Derived geometry.
  std::size_t eden_bytes() const;
  std::size_t survivor_bytes() const;
  std::size_t old_bytes() const { return heap_bytes - young_bytes; }
  int effective_gc_threads() const;

  // Aborts on nonsensical configurations (young >= heap, tiny spaces, ...).
  void validate() const;

  std::string describe() const;
};

}  // namespace mgc
