// Heap verification: walks the reachable graph and the spaces inside a
// pause and checks the invariants every collector must maintain. Used by
// tests after forced collections and available to applications for
// debugging (HotSpot's -XX:+VerifyAfterGC analogue).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mgc {

class Vm;

struct VerifyReport {
  std::size_t reachable_objects = 0;
  std::size_t reachable_bytes = 0;
  std::vector<std::string> problems;
  bool ok() const { return problems.empty(); }
};

// Must be called from an attached mutator thread with no other mutators
// running (tests) — it reads the heap without stopping the world itself.
// Checks:
//   * every reference reachable from the roots points at a cell inside the
//     collector's heap with a sane header (size/refs within bounds);
//   * no reachable reference targets a free-list chunk or filler;
//   * no reachable object is left with a forwarding pointer installed.
VerifyReport verify_heap(Vm& vm);

}  // namespace mgc
