// Heap verification: walks the reachable graph and the spaces inside a
// pause and checks the invariants every collector must maintain. Used by
// tests after forced collections and available to applications for
// debugging (HotSpot's -XX:+VerifyAfterGC analogue).
//
// Two entry points:
//   * verify_heap(Vm&)            — reachability-only checks, callable from
//     an attached mutator with no other mutators running (legacy tests);
//   * verify_heap_at_safepoint(m) — the expanded cross-layer verifier. It
//     runs inside a stop-the-world VM operation, so it may additionally
//     retire TLABs and walk every space linearly. Checks, per layer:
//       - spaces:     every space tiles exactly into parsable cells up to
//                     its top (TLAB/PLAB retirement left no holes);
//       - card marks: every old-generation slot that references a young
//                     object lies on a card the next young collection will
//                     scan (dirty or precleaned) — classic heaps only;
//       - free list:  CMS old-space chunk integrity (bin size classes,
//                     doubly-linked chains, byte accounting, and every
//                     in-space free chunk actually linked in a bin);
//       - regions:    G1 region metadata (types, tops, humongous chains,
//                     liveness accounting) and remembered-set completeness:
//                     every cross-region reference held by an old or
//                     humongous region is covered by an entry in the target
//                     region's remembered set.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mgc {

class Mutator;
class Vm;

struct VerifyOptions {
  bool reachable_graph = true;
  bool spaces = true;
  bool card_marks = true;
  bool free_list = true;
  bool regions = true;
  std::size_t max_problems = 16;
};

struct VerifyReport {
  std::size_t reachable_objects = 0;
  std::size_t reachable_bytes = 0;
  // Expanded-verifier coverage counters (zero for verify_heap(Vm&)).
  std::size_t cells_walked = 0;        // cells seen by linear space walks
  std::size_t old_young_refs = 0;      // old->young refs checked vs cards
  std::size_t cross_region_refs = 0;   // G1 refs checked vs remembered sets
  std::size_t free_chunks = 0;         // CMS free-list chunks checked
  std::vector<std::string> problems;
  bool ok() const { return problems.empty(); }
};

// Reachability-only verification. Must be called from an attached mutator
// thread with no other mutators running (tests) — it reads the heap without
// stopping the world itself. Checks:
//   * every reference reachable from the roots points at a cell inside the
//     collector's heap with a sane header (size/refs within bounds);
//   * no reachable reference targets a free-list chunk or filler;
//   * no reachable object is left with a forwarding pointer installed.
VerifyReport verify_heap(Vm& vm);

// The expanded cross-layer verifier. Stops the world (a VM operation on the
// VM thread), retires all TLABs, and runs every check enabled in `opts`.
// Safe to call from any attached mutator thread at any time; concurrent
// collector phases (CMS marking/sweeping, G1 marking) may be in flight.
VerifyReport verify_heap_at_safepoint(Mutator& m,
                                      const VerifyOptions& opts = {});

}  // namespace mgc
