// Distilled GC cost accounting ("Distilling the Real Cost of Production
// Garbage Collectors"): the total cost a collector imposes on the
// application is attributed to four channels —
//
//   1. stop-the-world pause time       (from the GcLog; wall time)
//   2. allocation slow-path time       (mutator time burnt outside the
//                                       TLAB bump: refills, direct old/
//                                       humongous allocation, the ladder)
//   3. write-barrier work              (counted in *operations*: card
//                                       dirties, SATB records, remembered-
//                                       set insertions; converted to time
//                                       with a calibrated ns/op when a
//                                       report needs one number)
//   4. concurrent cycles               (CPU time the CMS/G1 background
//                                       threads steal from mutators)
//
// Epsilon pays none of these, which is what makes it the empirical lower
// bound: distilled overhead = (collector total cost) relative to an
// Epsilon run of the same workload.
//
// The counters live on the Vm; mutators batch their contributions in
// thread-local fields (relaxed atomics, folded on detach and on demand),
// the background collector threads add their cycle CPU time directly.
#pragma once

#include <atomic>
#include <cstdint>

#include "support/clock.h"

namespace mgc {

class GcLog;

// A point-in-time copy of the accounting, with pause totals folded in
// from the GcLog. Plain data: benches serialize it into BENCH_*.json.
struct GcCostSnapshot {
  // 1. stop-the-world pauses (young, full, remark, cleanup, expansion).
  std::int64_t pause_ns = 0;
  std::uint64_t pauses = 0;

  // 2. allocation slow path (excludes time spent waiting inside pauses —
  // that is channel 1; this is pure allocation work).
  std::int64_t alloc_slow_ns = 0;
  std::uint64_t alloc_slow_calls = 0;

  // 3. write-barrier operations.
  std::uint64_t barrier_card_ops = 0;  // generational post-barrier dirties
  std::uint64_t barrier_satb_ops = 0;  // G1 SATB pre-barrier records
  std::uint64_t barrier_rset_ops = 0;  // G1 cross-region rset insertions

  // 4. concurrent collector work (thread CPU time of background cycles).
  std::int64_t concurrent_ns = 0;
  std::uint64_t concurrent_cycles = 0;

  std::uint64_t barrier_ops() const {
    return barrier_card_ops + barrier_satb_ops + barrier_rset_ops;
  }
  // Total attributed cost. The barrier channel is counted in ops, so the
  // caller supplies the calibrated per-op cost (see
  // bench::calibrate_barrier_ns_per_op); 0 drops the channel.
  std::int64_t total_ns(double barrier_ns_per_op) const {
    return pause_ns + alloc_slow_ns + concurrent_ns +
           static_cast<std::int64_t>(barrier_ns_per_op *
                                     static_cast<double>(barrier_ops()));
  }
};

// The live accumulator. All adds are relaxed: channels are statistics, and
// every reader (snapshot) tolerates being a few operations stale.
class GcCostCounters {
 public:
  void add_alloc_slow(std::int64_t ns, std::uint64_t calls) {
    alloc_slow_ns_.fetch_add(ns, std::memory_order_relaxed);
    alloc_slow_calls_.fetch_add(calls, std::memory_order_relaxed);
  }
  void add_barrier_ops(std::uint64_t card, std::uint64_t satb,
                       std::uint64_t rset) {
    if (card != 0) barrier_card_ops_.fetch_add(card, std::memory_order_relaxed);
    if (satb != 0) barrier_satb_ops_.fetch_add(satb, std::memory_order_relaxed);
    if (rset != 0) barrier_rset_ops_.fetch_add(rset, std::memory_order_relaxed);
  }
  void add_concurrent_cycle(std::int64_t cpu_ns) {
    concurrent_ns_.fetch_add(cpu_ns, std::memory_order_relaxed);
    concurrent_cycles_.fetch_add(1, std::memory_order_relaxed);
  }

  // Folds the counters plus the log's pause totals into a snapshot.
  GcCostSnapshot snapshot(const GcLog& log) const;

  // RAII: charges the enclosing scope's *thread CPU* time as one
  // concurrent cycle on destruction. CMS/G1 background threads wrap each
  // cycle body with one of these; the thread-CPU clock naturally excludes
  // the stop-the-world pauses the cycle requests (the thread is parked
  // while the VM thread runs them), leaving only the work genuinely
  // concurrent with — and stolen from — the mutators.
  class CycleScope {
   public:
    explicit CycleScope(GcCostCounters& c) : c_(c), cpu0_(thread_cpu_ns()) {}
    ~CycleScope() { c_.add_concurrent_cycle(thread_cpu_ns() - cpu0_); }
    CycleScope(const CycleScope&) = delete;
    CycleScope& operator=(const CycleScope&) = delete;

   private:
    GcCostCounters& c_;
    std::int64_t cpu0_;
  };

 private:
  std::atomic<std::int64_t> alloc_slow_ns_{0};
  std::atomic<std::uint64_t> alloc_slow_calls_{0};
  std::atomic<std::uint64_t> barrier_card_ops_{0};
  std::atomic<std::uint64_t> barrier_satb_ops_{0};
  std::atomic<std::uint64_t> barrier_rset_ops_{0};
  std::atomic<std::int64_t> concurrent_ns_{0};
  std::atomic<std::uint64_t> concurrent_cycles_{0};
};

}  // namespace mgc
