// Abstract collector interface. The VM owns exactly one collector; the six
// implementations live under src/gc/. Collection entry points run on the
// VM thread inside a safepoint; allocation entry points run on mutator
// threads concurrently.
#pragma once

#include <cstddef>
#include <cstdint>

#include "heap/card_table.h"
#include "heap/object.h"
#include "runtime/gc_kind.h"
#include "runtime/gc_log.h"

namespace mgc {

class Vm;
class Mutator;

struct HeapUsage {
  std::size_t used = 0;
  std::size_t capacity = 0;
  std::size_t young_used = 0;
  std::size_t young_capacity = 0;
  std::size_t old_used = 0;
  std::size_t old_capacity = 0;
};

// What a collection pause did, for the GC log.
struct PauseOutcome {
  PauseKind kind = PauseKind::kYoungGc;
  GcCause cause = GcCause::kAllocFailure;  // final cause (may be escalated)
  bool full = false;
  bool skipped = false;  // another thread's GC already satisfied the request
  GcPhaseBreakdown phases;  // young-pause breakdown (zeros otherwise)
  GcFailureCounters failures;  // degraded-mode transitions in this pause
};

// Inline data consulted by the mutator write barrier on every reference
// store. Kept as a POD so the hot path has no virtual dispatch.
struct BarrierDescriptor {
  enum class Kind : std::uint8_t {
    kNone,        // Serial-style: generational card marking only
    kCardTable,   // classic generational collectors (incl. CMS)
    kG1,          // cross-region remembered sets + SATB pre-barrier
  };
  Kind kind = Kind::kNone;

  // kCardTable: dirty the slot's card when the holder is at/above old_base.
  CardTable* card_table = nullptr;
  char* old_base = nullptr;
  char* old_end = nullptr;

  // kG1: region geometry for the cross-region test.
  char* heap_base = nullptr;
  char* heap_end = nullptr;
  unsigned region_shift = 0;

  // kG1: SATB pre-barrier active while a concurrent mark cycle runs.
  const std::atomic<bool>* satb_active = nullptr;
};

class Collector {
 public:
  virtual ~Collector() = default;

  virtual GcKind kind() const = 0;

  // --- mutator-side allocation (outside safepoints, thread-safe) ----------
  // Carves a TLAB out of the young generation; nullptr when a GC is needed.
  virtual char* alloc_tlab(std::size_t bytes) = 0;
  // Allocates a single object (TLAB-bypassing path: TLAB disabled, or the
  // object is large). nullptr when a GC is needed.
  virtual Obj* alloc_direct(std::size_t size_words, std::uint16_t num_refs) = 0;

  // --- collection (VM thread, inside a safepoint) --------------------------
  virtual PauseOutcome collect_young(GcCause cause) = 0;
  virtual PauseOutcome collect_full(GcCause cause) = 0;

  // --- queries -------------------------------------------------------------
  virtual HeapUsage usage() const = 0;
  virtual bool contains(const void* p) const = 0;

  // --- concurrent machinery -------------------------------------------------
  virtual void start_background() {}
  virtual void stop_background() {}
  // Called after allocation slow paths; concurrent collectors check their
  // occupancy triggers here.
  virtual void maybe_start_concurrent() {}
  // G1 SATB pre-barrier slow path.
  virtual void satb_record(Mutator& m, Obj* old_value) {
    (void)m;
    (void)old_value;
  }
  // G1 post-barrier slow path (cross-region remembered-set insertion).
  virtual void rset_record(void* slot_addr, Obj* value) {
    (void)slot_addr;
    (void)value;
  }

  // False for collectors that never reclaim memory (Epsilon): the
  // allocation ladder skips its collection rungs entirely and walks
  // straight from expansion to a structured, *hopeless* OutOfMemoryError —
  // no pause could ever make the request satisfiable.
  virtual bool collects() const { return true; }

  // --- degraded-mode support ------------------------------------------------
  // Attempts to grow the committed heap by at least `min_bytes` (runs its
  // own stop-the-world op). Step 3 of the allocation ladder; collectors
  // without expansion support return false. The kHeapExpand fault site
  // models expansion refusal.
  virtual bool try_expand(std::size_t min_bytes) {
    (void)min_bytes;
    return false;
  }
  // Upper bound on a single allocation that could ever succeed, after a
  // full collection and maximal expansion. Requests above this are
  // *hopeless*: the allocation ladder fails them fast with a structured
  // OutOfMemoryError instead of running useless collections.
  virtual std::size_t max_alloc_bytes() const {
    return ~static_cast<std::size_t>(0);
  }

  virtual BarrierDescriptor barrier_descriptor() = 0;
};

}  // namespace mgc
