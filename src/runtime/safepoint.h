// Stop-the-world coordination. Threads that touch the managed heap
// (mutators and concurrent collector threads) register themselves and
// periodically poll; the VM thread brings them all to a halt before
// running a collection pause.
//
// A registered thread is in one of two states:
//   * managed — running heap code; must reach a poll to stop;
//   * blocked — waiting on I/O, a queue, or a VM operation; its roots are
//     stable, so a safepoint proceeds without it (HotSpot "thread in
//     native"). Re-entering managed state blocks while a safepoint is
//     active.
#pragma once

#include <atomic>

#include "support/mutex.h"

namespace mgc {

class SafepointCoordinator {
 public:
  // --- participant side ---------------------------------------------------
  void register_thread();
  void unregister_thread();

  // Fast-path poll; parks the caller while a safepoint is active.
  void poll() {
    if (!requested_.load(std::memory_order_acquire)) return;
    poll_slow();
  }
  bool is_requested() const {
    return requested_.load(std::memory_order_acquire);
  }

  void enter_blocked();
  void leave_blocked();

  // RAII for blocked regions.
  class BlockedScope {
   public:
    explicit BlockedScope(SafepointCoordinator& sp) : sp_(sp) {
      sp_.enter_blocked();
    }
    ~BlockedScope() { sp_.leave_blocked(); }
    BlockedScope(const BlockedScope&) = delete;
    BlockedScope& operator=(const BlockedScope&) = delete;

   private:
    SafepointCoordinator& sp_;
  };

  // --- VM-thread side -------------------------------------------------------
  // Requests a safepoint and returns once every managed thread is parked.
  void begin();
  // Releases all parked threads.
  void end();

  int registered_managed_threads() const;

 private:
  void poll_slow();

  std::atomic<bool> requested_{false};
  // Ranked above every GuardedLock-wrapped mutex: leave_blocked() takes
  // mu_ while the caller still holds the mutex the GuardedLock wraps.
  mutable Mutex mu_{LockRank::kSafepoint, "safepoint"};
  CondVar cv_resume_;  // parked threads wait here
  CondVar cv_stopped_; // VM thread waits here
  int managed_ MGC_GUARDED_BY(mu_) = 0;  // threads currently in managed state
  int parked_ MGC_GUARDED_BY(mu_) = 0;   // managed threads parked right now
};

}  // namespace mgc
