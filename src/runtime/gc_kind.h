// The six OpenJDK8 collectors reproduced by this study, with the structural
// traits of the paper's Table 1, plus the Epsilon baseline collector used
// by the cost-distillation experiments (bump-allocate, never collect).
#pragma once

#include <string>
#include <vector>

namespace mgc {

enum class GcKind {
  kSerial,
  kParNew,
  kParallel,
  kParallelOld,
  kCms,
  kG1,
  // Not one of the paper's collectors: the empirical lower bound for the
  // distilled-overhead experiments ("Distilling the Real Cost of
  // Production Garbage Collectors"). Excluded from all_gc_kinds() /
  // main_gc_kinds() so the paper's tables keep their six rows; selectable
  // everywhere a collector name is parsed (MGC_GC=Epsilon, --gc Epsilon).
  kEpsilon,
};

struct GcTraits {
  const char* name;        // e.g. "ParallelOldGC" (the paper's chart labels)
  const char* short_name;  // e.g. "ParallelOld"   (the paper's table labels)
  // Young generation collection:
  bool young_parallel;
  bool young_copying;           // all six copy the young generation
  bool young_concurrent_mark;   // none do
  bool young_concurrent_copy;   // none do
  // Old generation collection:
  bool old_parallel;
  bool old_compacting;
  bool old_concurrent_mark;
  bool old_concurrent_sweep;
};

const GcTraits& gc_traits(GcKind kind);
const char* gc_name(GcKind kind);

// All six *paper* collectors, in the paper's Table 1 order. Epsilon is
// deliberately absent: benchmarks iterate this list by default, and the
// baseline only appears where a distillation explicitly asks for it.
const std::vector<GcKind>& all_gc_kinds();

// The three collectors the client-server study focuses on.
const std::vector<GcKind>& main_gc_kinds();

// Every implemented collector including Epsilon — for trait tables, name
// parsing, and exhaustive test matrices.
const std::vector<GcKind>& every_gc_kind();

// Parses "ParallelOld", "CMS", "G1", ... (case-insensitive); aborts on junk.
GcKind gc_kind_from_name(const std::string& name);

// Non-aborting variant for command-line validation: returns false (leaving
// *out untouched) when the name matches no collector.
bool try_gc_kind_from_name(const std::string& name, GcKind* out);

}  // namespace mgc
