// Mutator thread context: the public face of the managed runtime.
//
// A Mutator owns a TLAB, a shadow stack of GC roots, and a deterministic
// RNG. All application heap access goes through it:
//
//   Local obj(m, m.alloc(/*refs=*/2, /*payload_words=*/4));
//   m.set_ref(obj.get(), 0, other.get());   // write barrier applied
//
// Because every allocation may trigger a moving collection, raw Obj*
// values must not be held across an allocation — use `Local` handles
// (slots in the shadow stack that the collectors update). tools/gclint
// enforces this statically; gc_annotations.h (re-exported here) carries
// the escape hatches for code that is intentionally exempt.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <atomic>

#include "heap/object.h"
#include "runtime/collector.h"
#include "runtime/gc_cost.h"
#include "support/check.h"
#include "support/gc_annotations.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/thread_annotations.h"

namespace mgc {

class Vm;

class Mutator {
 public:
  Mutator(Vm& vm, std::string name, std::uint64_t seed);
  ~Mutator();

  Mutator(const Mutator&) = delete;
  Mutator& operator=(const Mutator&) = delete;

  Vm& vm() { return vm_; }
  const std::string& name() const { return name_; }
  Rng& rng() { return rng_; }

  // --- allocation -----------------------------------------------------------
  // Allocates an object with `num_refs` null reference slots and
  // `payload_words` uninitialized payload words. May run a GC internally.
  Obj* alloc(std::uint16_t num_refs, std::size_t payload_words);

  // --- reference access (write barrier) -------------------------------------
  void set_ref(Obj* holder, std::size_t i, Obj* value);
  Obj* get_ref(Obj* holder, std::size_t i) const { return holder->ref(i); }

  // --- GC roots (shadow stack) ----------------------------------------------
  std::size_t push_root(Obj* o) {
    roots_.push_back(o);
    return roots_.size() - 1;
  }
  void pop_root(std::size_t idx) {
    MGC_DCHECK(idx == roots_.size() - 1);
    roots_.pop_back();
  }
  Obj* root(std::size_t idx) const { return roots_[idx]; }
  void set_root(std::size_t idx, Obj* o) { roots_[idx] = o; }
  std::size_t root_count() const { return roots_.size(); }

  // --- safepoints ------------------------------------------------------------
  // Call regularly from long computations.
  void poll();
  // Declares this thread blocked (roots stable, no heap access) so pauses
  // can proceed without it. Used by GuardedLock and long waits.
  void enter_blocked();
  void leave_blocked();

  // --- explicit collection (System.gc()) --------------------------------------
  void system_gc();

  // Collector-internal access ---------------------------------------------
  std::vector<Obj*>& roots_for_gc() { return roots_; }
  void retire_tlab();  // pause-time only (VM thread), or own thread

  // TLAB instrumentation.
  std::uint64_t tlab_refills() const { return tlab_refills_; }
  std::uint64_t allocated_bytes() const { return allocated_bytes_; }

  // Adds this thread's distilled-cost contributions (allocation slow-path
  // time, write-barrier operation counts — see runtime/gc_cost.h) to the
  // accumulator. Called by Vm::cost_snapshot for live mutators and by
  // Vm::remove_mutator on detach; the fields are relaxed atomics because
  // the snapshot thread reads them while this thread keeps mutating.
  void fold_cost_into(GcCostCounters& c) const {
    c.add_alloc_slow(cost_alloc_slow_ns_.load(std::memory_order_relaxed),
                     cost_alloc_slow_calls_.load(std::memory_order_relaxed));
    c.add_barrier_ops(cost_barrier_card_ops_.load(std::memory_order_relaxed),
                      cost_barrier_satb_ops_.load(std::memory_order_relaxed),
                      cost_barrier_rset_ops_.load(std::memory_order_relaxed));
  }
  // Current adaptive TLAB size (== config().tlab_bytes when adaptation is
  // off or has not kicked in yet).
  std::size_t desired_tlab_bytes() const { return desired_tlab_bytes_; }

 private:
  friend class Vm;

  Obj* alloc_slow(std::size_t size_words, std::uint16_t num_refs);
  Obj* try_alloc_once(std::size_t size_words, std::uint16_t num_refs);
  // try_alloc_once with the elapsed time charged to the allocation
  // slow-path cost channel. Only the allocation work itself is timed —
  // waits inside vm_.collect are pauses, already accounted by the GcLog.
  Obj* timed_alloc_once(std::size_t size_words, std::uint16_t num_refs);
  // Refill-time hook: when one or more young cycles completed since the
  // last refill, fold the finished window's allocation volume into the
  // EWMA and re-derive the TLAB size (HotSpot-style ResizeTLAB: target
  // ~tlab_refill_target refills per mutator per young cycle, clamped to
  // [min_tlab_bytes, eden / live mutators]).
  void maybe_resize_tlab();
  char* tlab_bump(std::size_t bytes) {
    if (static_cast<std::size_t>(tlab_end_ - tlab_top_) < bytes)
      return nullptr;
    char* p = tlab_top_;
    tlab_top_ += bytes;
    return p;
  }

  Vm& vm_;
  std::string name_;
  Rng rng_;
  std::vector<Obj*> roots_;

  // Cached barrier descriptor and TLAB policy: the allocation and
  // reference-store fast paths consult only mutator-local state, never
  // the VmConfig / Vm indirections.
  const BarrierDescriptor barrier_;
  const bool tlab_enabled_;
  const bool tlab_adaptive_;
  std::size_t desired_tlab_bytes_;
  std::size_t tlab_direct_limit_;  // objects above this bypass the TLAB

  char* tlab_top_ = nullptr;
  char* tlab_end_ = nullptr;

  std::uint64_t tlab_refills_ = 0;
  std::uint64_t allocated_bytes_ = 0;

  // Distilled-cost channels. Written only by the owning thread, read by
  // Vm::cost_snapshot from any thread.
  std::atomic<std::int64_t> cost_alloc_slow_ns_{0};
  std::atomic<std::uint64_t> cost_alloc_slow_calls_{0};
  std::atomic<std::uint64_t> cost_barrier_card_ops_{0};
  std::atomic<std::uint64_t> cost_barrier_satb_ops_{0};
  std::atomic<std::uint64_t> cost_barrier_rset_ops_{0};

  // Adaptive-sizing window: allocation volume since the young cycle at
  // which the TLAB was last resized.
  Ewma alloc_per_cycle_{0.35};
  std::uint64_t tlab_epoch_ = 0;
  std::uint64_t allocated_at_epoch_ = 0;
};

// Safepoint-aware mutex acquisition. A mutator thread must NEVER block on
// application synchronization in managed state: the blocked thread cannot
// reach a poll, so a collection requested by the lock holder (allocation
// inside the critical section) would deadlock the safepoint. This guard
// declares the thread blocked for the duration of the lock *acquisition*,
// exactly like HotSpot parks Java monitors.
template <typename MutexT>
class MGC_SCOPED_CAPABILITY GuardedLock {
 public:
  GuardedLock(Mutator& m, MutexT& mu) MGC_ACQUIRE(mu) : mu_(mu) {
    m.enter_blocked();
    mu_.lock();
    // leave_blocked waits out any active pause — while already holding
    // mu_, which is why every GuardedLock-wrapped mutex must rank below
    // LockRank::kSafepoint.
    m.leave_blocked();
  }
  ~GuardedLock() MGC_RELEASE() { mu_.unlock(); }
  GuardedLock(const GuardedLock&) = delete;
  GuardedLock& operator=(const GuardedLock&) = delete;

 private:
  MutexT& mu_;
};

// RAII root handle. Strictly LIFO per mutator.
class Local {
 public:
  explicit Local(Mutator& m, Obj* o = nullptr)
      : m_(m), idx_(m.push_root(o)) {}
  ~Local() { m_.pop_root(idx_); }
  Local(const Local&) = delete;
  Local& operator=(const Local&) = delete;

  Obj* get() const { return m_.root(idx_); }
  void set(Obj* o) { m_.set_root(idx_, o); }
  Obj* operator->() const { return get(); }
  explicit operator bool() const { return get() != nullptr; }

  // Barrier-applied field helpers.
  void set_ref(std::size_t i, Obj* v) { m_.set_ref(get(), i, v); }
  void set_ref(std::size_t i, const Local& v) { m_.set_ref(get(), i, v.get()); }
  Obj* ref(std::size_t i) const { return get()->ref(i); }

 private:
  Mutator& m_;
  std::size_t idx_;
};

}  // namespace mgc
