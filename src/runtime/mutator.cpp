#include "runtime/mutator.h"

#include <algorithm>

#include "heap/poison.h"
#include "runtime/vm.h"
#include "support/fault.h"

namespace mgc {

Mutator::Mutator(Vm& vm, std::string name, std::uint64_t seed)
    : vm_(vm),
      name_(std::move(name)),
      rng_(seed),
      barrier_(vm.barrier()),
      tlab_enabled_(vm.config().tlab_enabled),
      tlab_adaptive_(vm.config().tlab_adaptive),
      desired_tlab_bytes_(vm.config().tlab_bytes),
      tlab_direct_limit_(tlab_enabled_ ? desired_tlab_bytes_ / 4 : 0),
      tlab_epoch_(vm.gc_epoch()) {
  roots_.reserve(256);
  vm_.add_mutator(this);
}

Mutator::~Mutator() {
  MGC_CHECK_MSG(roots_.empty(), "mutator detached with live Local handles");
  retire_tlab();
  vm_.remove_mutator(this);
}

void Mutator::poll() { vm_.safepoints().poll(); }

void Mutator::enter_blocked() { vm_.safepoints().enter_blocked(); }
void Mutator::leave_blocked() { vm_.safepoints().leave_blocked(); }

void Mutator::system_gc() { vm_.collect(this, /*full=*/true, GcCause::kSystemGc); }

void Mutator::retire_tlab() {
  if (tlab_top_ != nullptr && tlab_top_ < tlab_end_) {
    // Plug the unused tail so the eden stays linearly parsable; the filler
    // payload is dead memory and gets zapped in debug/ASan builds.
    Obj::init_filler(tlab_top_,
                     static_cast<std::size_t>(tlab_end_ - tlab_top_) / kWordSize);
    poison::zap_and_poison(
        tlab_top_ + sizeof(ObjHeader),
        static_cast<std::size_t>(tlab_end_ - tlab_top_) - sizeof(ObjHeader),
        poison::kLabTailZap);
  }
  tlab_top_ = tlab_end_ = nullptr;
}

Obj* Mutator::alloc(std::uint16_t num_refs, std::size_t payload_words) {
  poll();
  const std::size_t words = Obj::shape_words(num_refs, payload_words);
  const std::size_t bytes = words_to_bytes(words);
  allocated_bytes_ += bytes;
  // tlab_direct_limit_ is 0 when TLABs are disabled, folding the enabled
  // check into the size test.
  if (bytes <= tlab_direct_limit_) {
    if (char* p = tlab_bump(bytes)) return Obj::init(p, words, num_refs);
  }
  return alloc_slow(words, num_refs);
}

void Mutator::maybe_resize_tlab() {
  if (!tlab_adaptive_) return;
  const std::uint64_t epoch = vm_.gc_epoch();
  if (epoch == tlab_epoch_) return;
  // One or more collections completed since the last refill: the closed
  // window tells us this mutator's allocation rate per cycle. An idle
  // window (no allocation across a cycle) decays the EWMA toward zero, so
  // the TLAB shrinks back to min_tlab_bytes — an idle thread must not pin
  // a large eden chunk it will not fill before the next collection.
  const std::uint64_t cycles = epoch - tlab_epoch_;
  alloc_per_cycle_.add(
      static_cast<double>(allocated_bytes_ - allocated_at_epoch_) /
      static_cast<double>(cycles));
  tlab_epoch_ = epoch;
  allocated_at_epoch_ = allocated_bytes_;

  const VmConfig& cfg = vm_.config();
  const auto want = static_cast<std::size_t>(
      alloc_per_cycle_.value() /
      static_cast<double>(cfg.tlab_refill_target));
  const std::size_t cap = std::max(
      cfg.min_tlab_bytes,
      cfg.eden_bytes() /
          static_cast<std::size_t>(std::max(1, vm_.mutator_count())));
  desired_tlab_bytes_ =
      std::clamp(align_up(want, kObjAlignment), cfg.min_tlab_bytes, cap);
  tlab_direct_limit_ = desired_tlab_bytes_ / 4;
}

Obj* Mutator::try_alloc_once(std::size_t size_words, std::uint16_t num_refs) {
  const std::size_t bytes = words_to_bytes(size_words);
  Collector& c = vm_.collector();
  if (tlab_enabled_) {
    maybe_resize_tlab();
    if (bytes <= tlab_direct_limit_) {
      retire_tlab();
      char* t = fault::should_fire(fault::Site::kTlabRefill)
                    ? nullptr
                    : c.alloc_tlab(desired_tlab_bytes_);
      if (t == nullptr) return nullptr;
      tlab_top_ = t;
      tlab_end_ = t + desired_tlab_bytes_;
      ++tlab_refills_;
      char* p = tlab_bump(bytes);
      MGC_DCHECK(p != nullptr);
      return Obj::init(p, size_words, num_refs);
    }
  }
  return c.alloc_direct(size_words, num_refs);
}

Obj* Mutator::timed_alloc_once(std::size_t size_words,
                               std::uint16_t num_refs) {
  const std::int64_t t0 = now_ns();
  Obj* o = try_alloc_once(size_words, num_refs);
  cost_alloc_slow_ns_.fetch_add(now_ns() - t0, std::memory_order_relaxed);
  cost_alloc_slow_calls_.fetch_add(1, std::memory_order_relaxed);
  return o;
}

Obj* Mutator::alloc_slow(std::size_t size_words, std::uint16_t num_refs) {
  const std::size_t bytes = words_to_bytes(size_words);
  Collector& c = vm_.collector();

  // Hopeless requests fail fast: no rung of the ladder — not a full
  // collection, not maximal expansion — can ever fit this size, so no
  // collection runs on its behalf.
  const std::size_t ceiling = c.max_alloc_bytes();
  if (bytes > ceiling) {
    throw OutOfMemoryError(
        name_ + ": requested " + std::to_string(bytes) +
            " bytes exceeds the largest satisfiable allocation (" +
            std::to_string(ceiling) + " bytes)",
        bytes, /*hopeless=*/true);
  }

  // A collector that never reclaims (Epsilon) gets no collection rungs:
  // its skipped pauses advance no epoch, so the ladder below would burn
  // all 256 attempts spinning. Instead: retry (another thread may have
  // raced us to a refill), take the expansion rung while a reserve
  // remains, try the object directly (a TLAB-sized refill can fail where
  // the object itself still fits), then exhaustion is *hopeless* — by
  // definition no collection could ever help.
  if (!c.collects()) {
    for (int attempt = 0; attempt < 4; ++attempt) {
      if (!fault::should_fire(fault::Site::kHeapAlloc)) {
        if (Obj* o = timed_alloc_once(size_words, num_refs)) return o;
      }
      if (!c.try_expand(bytes)) break;
    }
    if (Obj* o = c.alloc_direct(size_words, num_refs)) return o;
    throw OutOfMemoryError(name_ + ": allocation of " + std::to_string(bytes) +
                               " bytes failed and " + gc_traits(c.kind()).name +
                               " never reclaims memory",
                           bytes, /*hopeless=*/true);
  }

  // The allocation ladder: young GCs → full GCs → heap expansion →
  // last-ditch full GC with memory-pressure hooks run (the SoftReference-
  // clearing analogue) → structured OutOfMemoryError. Never an abort, never
  // an unbounded loop: each rung bounds its own work, and the attempt cap
  // is a backstop against multi-thread refill races only. Collections are
  // counted only when they *actually ran* (coalesced requests mean someone
  // else collected for us), so losing a post-GC race never burns a rung.
  int young_collections = 0;
  int full_collections = 0;
  bool expand_tried = false;
  bool last_ditch_tried = false;
  for (int attempt = 0; attempt < 256; ++attempt) {
    // The kHeapAlloc fault site models forced space exhaustion: an armed
    // fire skips the attempt entirely, driving this thread down the ladder.
    if (!fault::should_fire(fault::Site::kHeapAlloc)) {
      Obj* o = timed_alloc_once(size_words, num_refs);
      if (o != nullptr) {
        vm_.collector().maybe_start_concurrent();
        return o;
      }
    }
    if (young_collections < 3) {
      const std::uint64_t before = vm_.gc_epoch();
      vm_.collect(this, false, GcCause::kAllocFailure);
      if (vm_.gc_epoch() != before) ++young_collections;
      continue;
    }
    if (full_collections < 8) {
      const std::uint64_t before = vm_.full_gc_epoch();
      vm_.collect(this, true, GcCause::kAllocFailure);
      if (vm_.full_gc_epoch() != before) ++full_collections;
      continue;
    }
    if (!expand_tried) {
      expand_tried = true;
      // Retry against the grown heap; refusal falls through to the last
      // rung on the next iteration.
      if (c.try_expand(bytes)) continue;
    }
    if (!last_ditch_tried) {
      last_ditch_tried = true;
      vm_.run_memory_pressure_hooks();
      vm_.collect(this, true, GcCause::kAllocFailure);
      continue;
    }
    break;
  }
  throw OutOfMemoryError(name_ + ": allocation of " + std::to_string(bytes) +
                             " bytes failed after repeated full GCs",
                         bytes, /*hopeless=*/false);
}

void Mutator::set_ref(Obj* holder, std::size_t i, Obj* value) {
  MGC_DCHECK(i < holder->num_refs());
  const BarrierDescriptor& bd = barrier_;  // mutator-local cached copy
  RefSlot& slot = holder->refs()[i];

  if (bd.kind == BarrierDescriptor::Kind::kG1 &&
      bd.satb_active->load(std::memory_order_acquire)) {
    // SATB pre-barrier: record the overwritten value so concurrent marking
    // sees the snapshot-at-the-beginning object graph.
    if (Obj* old = slot.load(std::memory_order_acquire)) {
      vm_.collector().satb_record(*this, old);
      cost_barrier_satb_ops_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  slot.store(value, std::memory_order_release);

  switch (bd.kind) {
    case BarrierDescriptor::Kind::kNone:
      break;
    case BarrierDescriptor::Kind::kCardTable: {
      // Generational post-barrier: stores into the old generation dirty the
      // slot's card (also feeds CMS incremental-update remark).
      const char* h = holder->start();
      if (h >= bd.old_base && h < bd.old_end) {
        bd.card_table->dirty(&slot);
        cost_barrier_card_ops_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    case BarrierDescriptor::Kind::kG1: {
      if (value == nullptr) break;
      const auto hoff = static_cast<std::size_t>(holder->start() - bd.heap_base);
      const auto voff = static_cast<std::size_t>(value->start() - bd.heap_base);
      if ((hoff >> bd.region_shift) != (voff >> bd.region_shift)) {
        vm_.collector().rset_record(&slot, value);
        cost_barrier_rset_ops_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
  }
}

}  // namespace mgc
