#include "runtime/heap_verifier.h"

#include <sstream>
#include <unordered_set>

#include "runtime/vm.h"

namespace mgc {
namespace {

void problem(VerifyReport& rep, const char* what, const void* at) {
  if (rep.problems.size() >= 16) return;  // cap the noise
  std::ostringstream oss;
  oss << what << " at " << at;
  rep.problems.push_back(oss.str());
}

}  // namespace

VerifyReport verify_heap(Vm& vm) {
  VerifyReport rep;
  Collector& c = vm.collector();

  std::unordered_set<const Obj*> visited;
  std::vector<Obj*> stack;
  vm.for_each_root_slot([&](Obj** slot) {
    if (*slot != nullptr) stack.push_back(*slot);
  });

  while (!stack.empty()) {
    Obj* o = stack.back();
    stack.pop_back();
    if (!visited.insert(o).second) continue;

    if (!c.contains(o)) {
      problem(rep, "reachable reference outside the heap", o);
      continue;
    }
    const std::size_t words = o->size_words();
    if (words < kMinObjWords || words > (64u << 20) / kWordSize) {
      problem(rep, "implausible object size", o);
      continue;
    }
    if (o->is_free_chunk()) {
      problem(rep, "reachable reference into a free chunk", o);
      continue;
    }
    if (o->is_filler()) {
      problem(rep, "reachable reference into a filler cell", o);
      continue;
    }
    if (o->is_forwarded()) {
      problem(rep, "reachable object still carries a forwarding pointer", o);
    }
    if (o->num_refs() + kHeaderWords > words) {
      problem(rep, "reference count exceeds object size", o);
      continue;
    }
    ++rep.reachable_objects;
    rep.reachable_bytes += o->size_bytes();
    const std::size_t n = o->num_refs();
    for (std::size_t i = 0; i < n; ++i) {
      Obj* t = o->ref(i);
      if (t != nullptr) stack.push_back(t);
    }
  }
  return rep;
}

}  // namespace mgc
