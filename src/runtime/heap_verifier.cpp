#include "runtime/heap_verifier.h"

#include <sstream>
#include <unordered_set>

#include "gc/classic_collector.h"
#include "gc/g1_gc.h"
#include "runtime/vm.h"

namespace mgc {
namespace {

void add_problem(VerifyReport& rep, std::size_t cap, const std::string& msg) {
  if (rep.problems.size() < cap) rep.problems.push_back(msg);
}

std::string describe(const std::string& what, const void* at) {
  std::ostringstream oss;
  oss << what << " at " << at;
  return oss.str();
}

// The reachable-graph walk shared by both entry points.
void check_reachable_graph(Vm& vm, VerifyReport& rep, std::size_t cap) {
  Collector& c = vm.collector();

  std::unordered_set<const Obj*> visited;
  std::vector<Obj*> stack;
  vm.for_each_root_slot([&](Obj** slot) {
    if (*slot != nullptr) stack.push_back(*slot);
  });

  while (!stack.empty()) {
    Obj* o = stack.back();
    stack.pop_back();
    if (!visited.insert(o).second) continue;

    if (!c.contains(o)) {
      add_problem(rep, cap, describe("reachable reference outside the heap", o));
      continue;
    }
    const std::size_t words = o->size_words();
    if (words < kMinObjWords || words > (64u << 20) / kWordSize) {
      add_problem(rep, cap, describe("implausible object size", o));
      continue;
    }
    if (o->is_free_chunk()) {
      add_problem(rep, cap, describe("reachable reference into a free chunk", o));
      continue;
    }
    if (o->is_filler()) {
      add_problem(rep, cap,
                  describe("reachable reference into a filler cell", o));
      continue;
    }
    if (o->is_forwarded()) {
      add_problem(
          rep, cap,
          describe("reachable object still carries a forwarding pointer", o));
    }
    if (o->num_refs() + kHeaderWords > words) {
      add_problem(rep, cap, describe("reference count exceeds object size", o));
      continue;
    }
    ++rep.reachable_objects;
    rep.reachable_bytes += o->size_bytes();
    const std::size_t n = o->num_refs();
    for (std::size_t i = 0; i < n; ++i) {
      Obj* t = o->ref(i);
      if (t != nullptr) stack.push_back(t);
    }
  }
}

// Walks [base, limit) as a sequence of cells, reporting problems instead of
// aborting on parsability breakdowns. A cell whose size would overshoot the
// limit means the space does not tile to its top — exactly the hole a buggy
// TLAB/PLAB retirement leaves behind. Returns false when the walk stopped
// early. Template visitor: verification walks whole spaces, and a
// std::function call per cell dominates the walk cost.
template <typename CellFn>
bool walk_cells(const char* space_name, char* base, char* limit,
                VerifyReport& rep, std::size_t cap, CellFn&& fn) {
  char* cur = base;
  while (cur < limit) {
    auto* o = reinterpret_cast<Obj*>(cur);
    const std::size_t words = o->size_words();
    if (words < kMinObjWords ||
        words_to_bytes(words) > static_cast<std::size_t>(limit - cur)) {
      add_problem(rep, cap,
                  describe(std::string(space_name) +
                               ": space does not tile to its top "
                               "(TLAB/PLAB retirement hole?)",
                           o));
      return false;
    }
    if (!o->is_free_chunk() && !o->is_filler() &&
        o->num_refs() + kHeaderWords > words) {
      add_problem(rep, cap,
                  describe(std::string(space_name) +
                               ": cell reference count exceeds its size",
                           o));
      cur = o->end();
      continue;  // the ref slots cannot be trusted; skip fn
    }
    ++rep.cells_walked;
    fn(o);
    cur = o->end();
  }
  return true;
}

// --- classic generational heaps (Serial/ParNew/Parallel/ParallelOld/CMS) ----

void verify_classic(ClassicCollector& cc, const VerifyOptions& opts,
                    VerifyReport& rep) {
  ClassicHeap& h = cc.heap();
  const std::size_t cap = opts.max_problems;

  if (opts.spaces) {
    for (ContiguousSpace* s : {&h.eden(), &h.from_space(), &h.to_space()}) {
      walk_cells(s->name().c_str(), s->base(), s->top(), rep, cap, [&](Obj* o) {
        if (o->is_free_chunk()) {
          add_problem(rep, cap,
                      describe(s->name() + ": free-chunk cell outside the "
                                           "CMS old space",
                               o));
          return;
        }
        const std::size_t n = o->num_refs();
        for (std::size_t i = 0; i < n; ++i) {
          Obj* t = o->refs()[i].load(std::memory_order_acquire);
          if (t != nullptr && !cc.contains(t)) {
            add_problem(
                rep, cap,
                describe(s->name() + ": slot points outside the heap",
                         &o->refs()[i]));
          }
        }
      });
    }
    // Outside a scavenge the to-space must be empty: survivors live in the
    // from-space, and a promotion failure escalates to a full collection
    // (which resets both survivors) within the same pause.
    if (h.to_space().used() != 0) {
      add_problem(rep, cap,
                  describe("to-space not empty outside a scavenge",
                           h.to_space().base()));
    }
  }

  if (opts.spaces || opts.card_marks) {
    // For the compacting collectors everything above top is virgin memory;
    // the CMS free-list space is parsable across its whole capacity.
    char* const old_limit =
        h.free_list_old() ? h.old_end() : h.old_space().top();
    CardTable& cards = h.cards();
    // Snapshot the cards the next young collection would scan, using the
    // same word-wise visitor the scavenger uses — one sweep over the card
    // table instead of one atomic card load per old reference slot.
    const std::size_t first_card =
        old_limit > h.old_base() ? cards.index_of(h.old_base()) : 0;
    std::vector<std::uint8_t> scannable;
    if (opts.card_marks && old_limit > h.old_base()) {
      const std::size_t last_card = cards.index_of(old_limit - 1) + 1;
      scannable.assign(last_card - first_card, 0);
      cards.visit_dirty(first_card, last_card, [&](std::size_t idx) {
        scannable[idx - first_card] = 1;
      });
    }
    walk_cells("old", h.old_base(), old_limit, rep, cap, [&](Obj* o) {
      if (o->is_free_chunk()) {
        if (!h.free_list_old()) {
          add_problem(rep, cap,
                      describe("free chunk in a compacted old space", o));
        }
        return;
      }
      const std::size_t n = o->num_refs();
      for (std::size_t i = 0; i < n; ++i) {
        RefSlot& slot = o->refs()[i];
        Obj* t = slot.load(std::memory_order_acquire);
        if (t == nullptr) continue;
        if (!cc.contains(t)) {
          add_problem(rep, cap,
                      describe("old slot points outside the heap", &slot));
          continue;
        }
        // The generational invariant: every old slot holding a young
        // pointer — conservatively including slots of dead cells, which
        // scavenge re-dirties too — must lie on a card the next young
        // collection will scan.
        if (opts.card_marks && h.in_young(t)) {
          ++rep.old_young_refs;
          if (!scannable[cards.index_of(&slot) - first_card]) {
            add_problem(
                rep, cap,
                describe("old->young reference on a clean card", &slot));
          }
        }
      }
    });
  }

  if (opts.free_list && h.free_list_old()) {
    rep.free_chunks +=
        h.cms_old().verify_integrity(rep.problems, opts.max_problems);
  }
}

// --- G1 ---------------------------------------------------------------------

void verify_g1(G1Gc& g1, const VerifyOptions& opts, VerifyReport& rep) {
  RegionManager& rm = g1.regions();
  CardTable& cards = g1.card_table();
  const std::size_t cap = opts.max_problems;

  auto check_refs = [&](Region& hr, Obj* o) {
    const std::size_t n = o->num_refs();
    for (std::size_t i = 0; i < n; ++i) {
      RefSlot& slot = o->refs()[i];
      Obj* t = slot.load(std::memory_order_acquire);
      if (t == nullptr) continue;
      if (!rm.contains(t)) {
        add_problem(rep, cap,
                    describe("G1 slot points outside the heap", &slot));
        continue;
      }
      Region* tr = rm.region_of(t);
      if (tr->is_free()) {
        add_problem(rep, cap,
                    describe("reference into a free region", &slot));
        continue;
      }
      // Remembered-set completeness: every cross-region reference held by
      // an old or humongous region (young holders are always traced in
      // full) must be covered by an entry in the target's remembered set.
      if (opts.regions && hr.is_old_or_humongous() && tr != &hr) {
        ++rep.cross_region_refs;
        if (!tr->rset.contains(
                static_cast<std::uint32_t>(cards.index_of(&slot)))) {
          add_problem(rep, cap,
                      describe("cross-region reference missing from the "
                               "target region's remembered set",
                               &slot));
        }
      }
    }
  };

  if (!opts.spaces && !opts.regions) return;

  for (std::size_t i = 0; i < rm.num_regions(); ++i) {
    Region& r = rm.region_at(i);
    switch (r.type()) {
      case RegionType::kFree:
        if (r.top() != r.base) {
          add_problem(rep, cap,
                      describe("free region with a non-reset top", r.base));
        }
        break;
      case RegionType::kHumongousCont:
        // Validated via its head below.
        if (r.humongous_head == nullptr) {
          add_problem(
              rep, cap,
              describe("humongous continuation without a head", r.base));
        }
        break;
      case RegionType::kHumongousHead: {
        auto* h = reinterpret_cast<Obj*>(r.base);
        const std::size_t words = h->size_words();
        char* const data_end = r.base + words_to_bytes(words);
        if (words < kMinObjWords || data_end > rm.heap_end()) {
          add_problem(rep, cap,
                      describe("humongous head with an implausible size", h));
          break;
        }
        if (!h->is_humongous()) {
          add_problem(
              rep, cap,
              describe("humongous head object missing its flag", h));
        }
        // Every region of the chain has top == min(end, data_end) and the
        // continuations point back at the head.
        for (std::size_t j = i; j < rm.num_regions(); ++j) {
          Region& cr = rm.region_at(j);
          if (cr.base >= data_end) break;
          char* const expect_top = data_end < cr.end ? data_end : cr.end;
          if (cr.top() != expect_top) {
            add_problem(rep, cap,
                        describe("humongous region top does not match the "
                                 "object extent",
                                 cr.base));
          }
          if (j > i && (cr.type() != RegionType::kHumongousCont ||
                        cr.humongous_head != &r)) {
            add_problem(rep, cap,
                        describe("humongous object spans a region that is "
                                 "not its continuation",
                                 cr.base));
          }
        }
        ++rep.cells_walked;
        check_refs(r, h);
        break;
      }
      case RegionType::kEden:
      case RegionType::kSurvivor:
      case RegionType::kOld: {
        walk_cells(region_type_name(r.type()), r.base, r.top(), rep, cap,
                   [&](Obj* o) { check_refs(r, o); });
        if (r.type() == RegionType::kOld && opts.regions) {
          // Liveness accounting: marking counts a subset of the cells below
          // top, and compaction resets live == used, so live can never
          // exceed the bytes actually allocated in the region.
          if (r.live_bytes.load(std::memory_order_acquire) > r.used()) {
            add_problem(rep, cap,
                        describe("old region liveness accounting exceeds "
                                 "its used bytes",
                                 r.base));
          }
          if (r.tams() < r.base || r.tams() > r.top()) {
            add_problem(
                rep, cap,
                describe("old region TAMS outside [base, top]", r.base));
          }
        }
        break;
      }
    }
  }
}

}  // namespace

VerifyReport verify_heap(Vm& vm) {
  VerifyReport rep;
  check_reachable_graph(vm, rep, 16);  // cap the noise
  return rep;
}

VerifyReport verify_heap_at_safepoint(Mutator& m, const VerifyOptions& opts) {
  VerifyReport rep;
  Vm& vm = m.vm();
  vm.run_vm_op(GcCause::kSystemGc, /*caller_is_registered=*/true, [&] {
    vm.retire_all_tlabs();
    if (opts.reachable_graph) check_reachable_graph(vm, rep, opts.max_problems);
    Collector& c = vm.collector();
    if (c.kind() == GcKind::kG1) {
      verify_g1(static_cast<G1Gc&>(c), opts, rep);
    } else if (c.kind() == GcKind::kEpsilon) {
      // Epsilon runs no write barrier, so the generational invariant
      // ("old->young references live on dirty cards") does not hold and
      // must not be checked; everything structural still is.
      VerifyOptions eopts = opts;
      eopts.card_marks = false;
      verify_classic(static_cast<ClassicCollector&>(c), eopts, rep);
    } else {
      verify_classic(static_cast<ClassicCollector&>(c), opts, rep);
    }
    PauseOutcome out;
    out.skipped = true;  // a verification pause is not a collection
    return out;
  });
  return rep;
}

}  // namespace mgc
