#include "runtime/vm.h"

#include "support/env.h"
#include "support/fault.h"

namespace mgc {

Vm::Vm(VmConfig cfg) : cfg_(cfg) {
  // Apply MGC_FAULT / MGC_FAULT_SEED before any subsystem can hit a fault
  // site (once per process; later Vms see the same armed state).
  fault::init_from_env();
  cfg_.validate();
  log_.set_verbose(cfg_.verbose_gc || env::verbose_gc());
  workers_ = std::make_unique<GcWorkerPool>(cfg_.effective_gc_threads());
  collector_ = make_collector(*this, cfg_);
  barrier_ = collector_->barrier_descriptor();
  vm_thread_ = std::thread([this] { vm_thread_main(); });
  collector_->start_background();
  log_.set_origin(now_ns());
}

Vm::~Vm() {
  collector_->stop_background();
  {
    MutexLock g(ops_mu_);
    shutdown_ = true;
  }
  ops_cv_.notify_all();
  vm_thread_.join();
  {
    MutexLock g(mutators_mu_);
    MGC_CHECK_MSG(mutators_.empty(), "VM destroyed with attached mutators");
  }
}

// --- mutators ----------------------------------------------------------------

Vm::MutatorScope::MutatorScope(Vm& vm, std::string name)
    : m_(std::make_unique<Mutator>(vm, std::move(name),
                                   env::seed() ^ std::hash<std::string>{}(
                                                     std::string("mutator")))) {}

Vm::MutatorScope::~MutatorScope() = default;

void Vm::run_mutators(int count, const std::function<void(Mutator&, int)>& fn) {
  MGC_CHECK(count >= 1);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    threads.emplace_back([this, &fn, i] {
      Mutator m(*this, "mutator-" + std::to_string(i),
                env::seed() + 0x9e3779b9u * static_cast<std::uint64_t>(i + 1));
      fn(m, i);
    });
  }
  for (auto& t : threads) t.join();
}

void Vm::add_mutator(Mutator* m) {
  // Register with the safepoint protocol *before* joining the scan list:
  // a registered-but-unlisted thread has no roots yet, which is safe; the
  // reverse order could deadlock against an in-progress pause.
  sp_.register_thread();
  MutexLock g(mutators_mu_);
  mutators_.push_back(m);
}

int Vm::mutator_count() {
  MutexLock g(mutators_mu_);
  return static_cast<int>(mutators_.size());
}

void Vm::remove_mutator(Mutator* m) {
  {
    MutexLock g(mutators_mu_);
    // Bank the thread's cost contributions before it disappears from the
    // scan list; cost_snapshot holds the same lock, so a detach is never
    // double-counted (still listed + already folded).
    m->fold_cost_into(cost_);
    detached_allocated_bytes_.fetch_add(m->allocated_bytes(),
                                        std::memory_order_relaxed);
    std::erase(mutators_, m);
  }
  sp_.unregister_thread();
}

std::uint64_t Vm::total_allocated_bytes() {
  MutexLock g(mutators_mu_);
  std::uint64_t total =
      detached_allocated_bytes_.load(std::memory_order_relaxed);
  for (Mutator* m : mutators_) total += m->allocated_bytes();
  return total;
}

GcCostSnapshot Vm::cost_snapshot() {
  MutexLock g(mutators_mu_);
  GcCostCounters folded;
  for (Mutator* m : mutators_) m->fold_cost_into(folded);
  GcCostSnapshot live = folded.snapshot(log_);
  GcCostSnapshot s = cost_.snapshot(log_);
  // Both snapshots folded the log's pause totals; keep one copy.
  s.alloc_slow_ns += live.alloc_slow_ns;
  s.alloc_slow_calls += live.alloc_slow_calls;
  s.barrier_card_ops += live.barrier_card_ops;
  s.barrier_satb_ops += live.barrier_satb_ops;
  s.barrier_rset_ops += live.barrier_rset_ops;
  return s;
}

// --- global roots --------------------------------------------------------------

std::size_t Vm::create_global_root() {
  MutexLock g(groots_mu_);
  global_roots_.push_back(nullptr);
  return global_roots_.size() - 1;
}

Obj* Vm::global_root(std::size_t idx) const {
  MutexLock g(groots_mu_);
  return global_roots_[idx];
}

void Vm::set_global_root(std::size_t idx, Obj* o) {
  MutexLock g(groots_mu_);
  global_roots_[idx] = o;
}

// --- memory-pressure hooks ------------------------------------------------------

std::size_t Vm::add_memory_pressure_hook(std::function<void()> fn) {
  MutexLock g(pressure_mu_);
  const std::size_t id = next_pressure_id_++;
  pressure_hooks_.emplace_back(id, std::move(fn));
  return id;
}

void Vm::remove_memory_pressure_hook(std::size_t id) {
  MutexLock g(pressure_mu_);
  std::erase_if(pressure_hooks_, [id](const auto& h) { return h.first == id; });
}

void Vm::run_memory_pressure_hooks() {
  MutexLock g(pressure_mu_);
  for (auto& h : pressure_hooks_) h.second();
}

// --- collection ------------------------------------------------------------------

void Vm::collect(Mutator* requester, bool full, GcCause cause) {
  const std::uint64_t seen =
      full ? full_epoch_.load(std::memory_order_acquire)
           : epoch_.load(std::memory_order_acquire);
  const std::function<PauseOutcome()> fn = [this, full, cause, seen] {
    if (cause == GcCause::kAllocFailure) {
      // Coalesce: if another thread's request already ran a (full enough)
      // collection since this one was posted, skip.
      const std::uint64_t now =
          full ? full_epoch_.load(std::memory_order_relaxed)
               : epoch_.load(std::memory_order_relaxed);
      if (now != seen) {
        PauseOutcome out;
        out.skipped = true;
        return out;
      }
    }
    return full ? collector_->collect_full(cause)
                : collector_->collect_young(cause);
  };
  run_vm_op(cause, requester != nullptr, fn);
}

void Vm::run_vm_op(GcCause cause, bool caller_is_registered,
                   const std::function<PauseOutcome()>& fn) {
  VmOp op;
  op.fn = &fn;
  op.cause = cause;
  auto wait_done = [&] {
    MutexLock l(ops_mu_);
    ops_.push_back(&op);
    ops_cv_.notify_all();
    op.cv.wait(l, [&] { return op.done; });
  };
  if (caller_is_registered) {
    SafepointCoordinator::BlockedScope blocked(sp_);
    wait_done();
  } else {
    wait_done();
  }
}

void Vm::vm_thread_main() {
  while (true) {
    VmOp* op = nullptr;
    {
      MutexLock l(ops_mu_);
      ops_cv_.wait(l, [&]() MGC_REQUIRES(ops_mu_) { return shutdown_ || !ops_.empty(); });
      if (ops_.empty() && shutdown_) return;
      op = ops_.front();
      ops_.pop_front();
    }

    PauseEvent ev;
    ev.cause = op->cause;
    ev.start_ns = now_ns();
    sp_.begin();
    ev.used_before = collector_->usage().used;
    const PauseOutcome out = (*op->fn)();
    ev.used_after = collector_->usage().used;
    sp_.end();
    ev.end_ns = now_ns();

    if (!out.skipped) {
      ev.kind = out.kind;
      ev.full = out.full;
      ev.cause = out.cause;
      ev.phases = out.phases;
      ev.failures = out.failures;
      log_.add(ev);
      epoch_.fetch_add(1, std::memory_order_acq_rel);
      if (out.full) full_epoch_.fetch_add(1, std::memory_order_acq_rel);
    }

    {
      // Notify while holding the lock: the waiter owns the VmOp (and its
      // condition variable) and destroys it the moment it observes done,
      // so notifying after unlocking would race with that destruction.
      MutexLock l(ops_mu_);
      op->done = true;
      op->cv.notify_all();
    }
  }
}

// --- collector support -------------------------------------------------------------

void Vm::for_each_root_slot(const std::function<void(Obj**)>& fn) {
  {
    MutexLock g(mutators_mu_);
    for (Mutator* m : mutators_) {
      for (Obj*& r : m->roots_for_gc()) fn(&r);
    }
  }
  {
    MutexLock g(groots_mu_);
    for (Obj*& r : global_roots_) fn(&r);
  }
}

std::vector<std::vector<Obj*>*> Vm::root_vectors() {
  std::vector<std::vector<Obj*>*> out;
  {
    MutexLock g(mutators_mu_);
    out.reserve(mutators_.size() + 1);
    for (Mutator* m : mutators_) out.push_back(&m->roots_for_gc());
  }
  {
    // Taking groots_mu_ here is not optional politeness: create_global_root
    // may be mid-push_back on another (blocked) thread, and reading the
    // vector's internals unlocked races with its reallocation.
    MutexLock g(groots_mu_);
    out.push_back(&global_roots_);
  }
  return out;
}

void Vm::retire_all_tlabs() {
  MutexLock g(mutators_mu_);
  for (Mutator* m : mutators_) m->retire_tlab();
}

}  // namespace mgc
