// Structured GC event log — the reproduction's -verbose:gc. Every
// stop-the-world pause is recorded with wall-clock bounds, its kind, its
// cause, and heap occupancy, and every experiment reads its results from
// here (pause timelines, pause statistics, full-GC counts).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/clock.h"
#include "support/mutex.h"

namespace mgc {

enum class PauseKind {
  kYoungGc,
  kFullGc,
  kInitialMark,  // CMS/G1 concurrent cycle start pause
  kRemark,       // CMS/G1 final marking pause
  kCleanup,      // G1 liveness accounting pause
  kMixedGc,      // G1 young + old evacuation
  kHeapExpand,   // allocation-ladder heap expansion (stop-the-world, no GC)
};

enum class GcCause {
  kAllocFailure,
  kSystemGc,
  kPromotionFailure,
  kConcurrentModeFailure,
  kEvacuationFailure,
  kOccupancyTrigger,
  kHumongousAllocation,
};

const char* pause_kind_name(PauseKind k);
const char* gc_cause_name(GcCause c);

// Per-phase breakdown of a young-collection pause. Each figure is the
// *critical path* of that phase: the maximum across the parallel GC
// workers, since the pause cannot end before its slowest worker. Zero for
// pauses that have no scavenge (full GCs, G1 pauses, remark, ...).
struct GcPhaseBreakdown {
  std::int64_t root_scan_ns = 0;   // claiming + evacuating root slots
  std::int64_t card_scan_ns = 0;   // striped dirty-card discovery + scan
  std::int64_t evac_drain_ns = 0;  // transitive copy via the work-stealing deques

  bool any() const {
    return (root_scan_ns | card_scan_ns | evac_drain_ns) != 0;
  }
};

// Degraded-mode transitions observed during a pause: promotion failure
// (classic collectors), concurrent-mode failure (CMS), evacuation failure
// (G1). All zero in healthy pauses; the paper's worst-case tails come from
// exactly these transitions, so they are first-class log data.
struct GcFailureCounters {
  std::uint32_t promotion_failures = 0;
  std::uint32_t concurrent_mode_failures = 0;
  std::uint32_t evacuation_failures = 0;

  bool any() const {
    return (promotion_failures | concurrent_mode_failures |
            evacuation_failures) != 0;
  }
};

struct PauseEvent {
  std::int64_t start_ns = 0;  // absolute, Clock epoch
  std::int64_t end_ns = 0;
  PauseKind kind = PauseKind::kYoungGc;
  GcCause cause = GcCause::kAllocFailure;
  bool full = false;  // counts as a "full GC" in the paper's statistics
  std::size_t used_before = 0;
  std::size_t used_after = 0;
  GcPhaseBreakdown phases;  // young-pause breakdown (zeros otherwise)
  GcFailureCounters failures;  // degraded-mode transitions in this pause

  double duration_s() const { return ns_to_s(end_ns - start_ns); }
  double duration_ms() const { return ns_to_ms(end_ns - start_ns); }
};

struct PauseSummary {
  std::size_t pauses = 0;
  std::size_t full_pauses = 0;
  double total_s = 0.0;
  double avg_s = 0.0;
  double max_s = 0.0;
};

class GcLog {
 public:
  GcLog() : origin_ns_(now_ns()) {}

  // Time zero for relative timelines (VM start by default).
  void set_origin(std::int64_t ns) { origin_ns_ = ns; }
  std::int64_t origin_ns() const { return origin_ns_; }
  double to_relative_s(std::int64_t abs_ns) const {
    return ns_to_s(abs_ns - origin_ns_);
  }

  void add(const PauseEvent& e);
  std::vector<PauseEvent> snapshot() const;
  std::size_t count() const;
  PauseSummary summarize() const;

  // Sum of all pause durations, in ns — the stop-the-world channel of the
  // distilled GC cost accounting (see runtime/gc_cost.h).
  std::int64_t total_pause_ns() const;

  // True if any pause overlaps [start_ns, end_ns] (absolute). Used by the
  // client-side study to attribute latency spikes to collections.
  bool pause_overlaps(std::int64_t start_ns, std::int64_t end_ns) const;

  void clear();
  void set_verbose(bool v) { verbose_ = v; }

 private:
  mutable Mutex mu_{LockRank::kGcLog, "gc-log"};
  std::vector<PauseEvent> events_ MGC_GUARDED_BY(mu_);
  std::int64_t origin_ns_;
  bool verbose_ = false;
};

}  // namespace mgc
