// The managed runtime ("VM"): one heap, one collector, a VM thread that
// serializes stop-the-world operations, a safepoint coordinator, a GC
// worker pool, registered mutator threads, and the GC event log.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/collector.h"
#include "runtime/gc_cost.h"
#include "runtime/gc_log.h"
#include "runtime/mutator.h"
#include "runtime/safepoint.h"
#include "runtime/vm_config.h"
#include "support/gc_worker_pool.h"
#include "support/mutex.h"

namespace mgc {

// Thrown when the allocation ladder is exhausted: every rung (young GC,
// full GC, expansion, last-ditch full GC with pressure hooks run) failed,
// or the request was hopeless to begin with. A structured status, not an
// abort: callers (kv worker threads, workload drivers) catch it and shed
// the operation.
class OutOfMemoryError : public std::runtime_error {
 public:
  explicit OutOfMemoryError(const std::string& what,
                            std::size_t requested_bytes = 0,
                            bool hopeless = false)
      : std::runtime_error(what),
        requested_bytes_(requested_bytes),
        hopeless_(hopeless) {}

  std::size_t requested_bytes() const { return requested_bytes_; }
  // True when the request exceeded what the heap could ever satisfy; no
  // collections were run on its behalf.
  bool hopeless() const { return hopeless_; }

 private:
  std::size_t requested_bytes_ = 0;
  bool hopeless_ = false;
};

class Vm {
 public:
  explicit Vm(VmConfig cfg);
  ~Vm();

  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  const VmConfig& config() const { return cfg_; }
  GcLog& gc_log() { return log_; }
  const GcLog& gc_log() const { return log_; }
  SafepointCoordinator& safepoints() { return sp_; }
  GcWorkerPool& workers() { return *workers_; }
  Collector& collector() { return *collector_; }
  const BarrierDescriptor& barrier() const { return barrier_; }

  HeapUsage usage() const { return collector_->usage(); }

  // --- distilled cost accounting ---------------------------------------------
  // The accumulator for cost channels reported by non-mutator threads
  // (CMS/G1 background cycles) and by detaching mutators.
  GcCostCounters& cost_counters() { return cost_; }
  // Point-in-time total across all channels: detached contributions, live
  // mutators, and the GcLog's pause total. See runtime/gc_cost.h.
  GcCostSnapshot cost_snapshot();

  // --- mutators -------------------------------------------------------------
  // Attaches the calling thread as a mutator for the scope's lifetime.
  class MutatorScope {
   public:
    MutatorScope(Vm& vm, std::string name);
    ~MutatorScope();
    MutatorScope(const MutatorScope&) = delete;
    MutatorScope& operator=(const MutatorScope&) = delete;
    Mutator& mutator() { return *m_; }

   private:
    std::unique_ptr<Mutator> m_;
  };

  // Spawns `count` mutator threads running fn(mutator, index); joins all.
  void run_mutators(int count,
                    const std::function<void(Mutator&, int)>& fn);

  // --- global roots -----------------------------------------------------------
  std::size_t create_global_root();
  Obj* global_root(std::size_t idx) const;
  void set_global_root(std::size_t idx, Obj* o);

  // --- collection --------------------------------------------------------------
  // Requests a collection from a mutator thread; returns once done.
  // `requester` may be nullptr for unregistered (external) threads.
  void collect(Mutator* requester, bool full, GcCause cause);

  // Runs fn inside a stop-the-world pause on the VM thread and logs the
  // resulting PauseEvent. `caller_is_registered` must be true when the
  // calling thread participates in safepoints (mutators, concurrent GC
  // threads) so it is excluded from the stop while it waits.
  void run_vm_op(GcCause cause, bool caller_is_registered,
                 const std::function<PauseOutcome()>& fn);

  // Completed-collection counters (for request coalescing).
  std::uint64_t gc_epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  std::uint64_t full_gc_epoch() const {
    return full_epoch_.load(std::memory_order_acquire);
  }

  // --- collector support (inside pauses) ---------------------------------------
  // Applies fn to every root slot: all mutator shadow stacks + global roots.
  void for_each_root_slot(const std::function<void(Obj**)>& fn);
  // Root slots only, chunked for parallel scanning.
  std::vector<std::vector<Obj*>*> root_vectors();
  void retire_all_tlabs();

  // --- memory-pressure hooks ---------------------------------------------
  // Callbacks that release droppable managed memory (e.g. the commit log's
  // archived segments) — the runtime's analogue of clearing SoftReferences.
  // The allocation ladder runs them immediately before its last-ditch full
  // collection. Hooks must not allocate and must not block on mutator
  // work. Returns an id for remove_memory_pressure_hook.
  std::size_t add_memory_pressure_hook(std::function<void()> fn);
  void remove_memory_pressure_hook(std::size_t id);
  void run_memory_pressure_hooks();

  // Registration hooks used by Mutator's ctor/dtor.
  void add_mutator(Mutator* m);
  void remove_mutator(Mutator* m);

  // Number of currently attached mutators (adaptive TLAB clamp input).
  int mutator_count();

  // Total bytes allocated by all mutators over the VM's lifetime (detached
  // ones included). The distilled-cost bench sizes the Epsilon baseline
  // heap from a pilot run's value: Epsilon must hold a workload's *entire*
  // allocation volume, nothing ever being reclaimed.
  std::uint64_t total_allocated_bytes();

 private:
  struct VmOp {
    const std::function<PauseOutcome()>* fn = nullptr;
    GcCause cause = GcCause::kAllocFailure;
    bool done = false;  // guarded by the Vm's ops_mu_
    CondVar cv;
  };

  void vm_thread_main();

  VmConfig cfg_;
  GcLog log_;
  SafepointCoordinator sp_;
  std::unique_ptr<GcWorkerPool> workers_;
  std::unique_ptr<Collector> collector_;
  BarrierDescriptor barrier_;

  Mutex mutators_mu_{LockRank::kVmMutators, "vm-mutators"};
  std::vector<Mutator*> mutators_ MGC_GUARDED_BY(mutators_mu_);

  GcCostCounters cost_;
  std::atomic<std::uint64_t> detached_allocated_bytes_{0};

  mutable Mutex groots_mu_{LockRank::kVmGlobalRoots, "vm-global-roots"};
  std::vector<Obj*> global_roots_ MGC_GUARDED_BY(groots_mu_);

  Mutex pressure_mu_{LockRank::kVmPressure, "vm-pressure"};
  std::size_t next_pressure_id_ MGC_GUARDED_BY(pressure_mu_) = 0;
  std::vector<std::pair<std::size_t, std::function<void()>>> pressure_hooks_
      MGC_GUARDED_BY(pressure_mu_);

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint64_t> full_epoch_{0};

  Mutex ops_mu_{LockRank::kVmOps, "vm-ops"};
  CondVar ops_cv_;
  std::deque<VmOp*> ops_ MGC_GUARDED_BY(ops_mu_);
  bool shutdown_ MGC_GUARDED_BY(ops_mu_) = false;
  std::thread vm_thread_;
};

// Creates the collector implementation for cfg.gc (defined in src/gc/).
std::unique_ptr<Collector> make_collector(Vm& vm, const VmConfig& cfg);

}  // namespace mgc
