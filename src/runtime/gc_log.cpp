#include "runtime/gc_log.h"

#include <algorithm>
#include <cstdio>

namespace mgc {

const char* pause_kind_name(PauseKind k) {
  switch (k) {
    case PauseKind::kYoungGc: return "YoungGC";
    case PauseKind::kFullGc: return "FullGC";
    case PauseKind::kInitialMark: return "InitialMark";
    case PauseKind::kRemark: return "Remark";
    case PauseKind::kCleanup: return "Cleanup";
    case PauseKind::kMixedGc: return "MixedGC";
    case PauseKind::kHeapExpand: return "ExpandHeap";
  }
  return "?";
}

const char* gc_cause_name(GcCause c) {
  switch (c) {
    case GcCause::kAllocFailure: return "Allocation Failure";
    case GcCause::kSystemGc: return "System.gc()";
    case GcCause::kPromotionFailure: return "Promotion Failure";
    case GcCause::kConcurrentModeFailure: return "Concurrent Mode Failure";
    case GcCause::kEvacuationFailure: return "Evacuation Failure";
    case GcCause::kOccupancyTrigger: return "Occupancy Trigger";
    case GcCause::kHumongousAllocation: return "Humongous Allocation";
  }
  return "?";
}

void GcLog::add(const PauseEvent& e) {
  {
    MutexLock g(mu_);
    events_.push_back(e);
  }
  if (verbose_) {
    std::fprintf(stderr, "[gc %8.3fs] %-11s (%s) %.3f ms, %zu->%zu KB",
                 to_relative_s(e.start_ns), pause_kind_name(e.kind),
                 gc_cause_name(e.cause), e.duration_ms(), e.used_before / 1024,
                 e.used_after / 1024);
    if (e.phases.any()) {
      std::fprintf(stderr, " [roots %.0fus cards %.0fus evac %.0fus]",
                   static_cast<double>(e.phases.root_scan_ns) / 1e3,
                   static_cast<double>(e.phases.card_scan_ns) / 1e3,
                   static_cast<double>(e.phases.evac_drain_ns) / 1e3);
    }
    if (e.failures.any()) {
      std::fprintf(stderr, " [promo-fail %u cms-fail %u evac-fail %u]",
                   e.failures.promotion_failures,
                   e.failures.concurrent_mode_failures,
                   e.failures.evacuation_failures);
    }
    std::fputc('\n', stderr);
  }
}

std::vector<PauseEvent> GcLog::snapshot() const {
  MutexLock g(mu_);
  return events_;
}

std::size_t GcLog::count() const {
  MutexLock g(mu_);
  return events_.size();
}

PauseSummary GcLog::summarize() const {
  MutexLock g(mu_);
  PauseSummary s;
  for (const PauseEvent& e : events_) {
    ++s.pauses;
    if (e.full) ++s.full_pauses;
    const double d = e.duration_s();
    s.total_s += d;
    s.max_s = std::max(s.max_s, d);
  }
  if (s.pauses > 0) s.avg_s = s.total_s / static_cast<double>(s.pauses);
  return s;
}

std::int64_t GcLog::total_pause_ns() const {
  MutexLock g(mu_);
  std::int64_t total = 0;
  for (const PauseEvent& e : events_) total += e.end_ns - e.start_ns;
  return total;
}

bool GcLog::pause_overlaps(std::int64_t start_ns, std::int64_t end_ns) const {
  MutexLock g(mu_);
  for (const PauseEvent& e : events_) {
    if (e.start_ns <= end_ns && e.end_ns >= start_ns) return true;
  }
  return false;
}

void GcLog::clear() {
  MutexLock g(mu_);
  events_.clear();
}

}  // namespace mgc
