// Wall-clock helpers. All pause and latency measurements in the study use
// a single monotonic clock so timelines from different components line up.
#pragma once

#include <chrono>
#include <cstdint>

namespace mgc {

using Clock = std::chrono::steady_clock;
using TimePoint = Clock::time_point;

// Nanoseconds since an arbitrary (per-process) epoch.
inline std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

// Process CPU time in nanoseconds (sum over all threads). Used by the
// stability experiment: on a noisy shared host, wall-clock run-to-run
// variance (3-7% here) would swamp the paper's 5% stability threshold,
// while CPU time still reflects mutator and collector work faithfully.
std::int64_t process_cpu_ns();

// CPU time of the *calling thread* in nanoseconds. The cost-accounting
// layer wraps each CMS/G1 background cycle with a delta of this clock:
// unlike wall time it excludes the stop-the-world pauses the cycle itself
// requests (the thread is blocked, burning no CPU), so the delta is the
// concurrent work genuinely stolen from mutator cores.
std::int64_t thread_cpu_ns();

inline double ns_to_ms(std::int64_t ns) { return static_cast<double>(ns) / 1e6; }
inline double ns_to_s(std::int64_t ns) { return static_cast<double>(ns) / 1e9; }

// Simple scoped stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void restart() { start_ = now_ns(); }
  std::int64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_ms() const { return ns_to_ms(elapsed_ns()); }
  double elapsed_s() const { return ns_to_s(elapsed_ns()); }

 private:
  std::int64_t start_;
};

}  // namespace mgc
