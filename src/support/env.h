// Environment-variable knobs for the bench harness.
//
//   MGC_SCALE      — multiplies workload repetition counts (default 1.0;
//                    0.2 for a quick smoke run, 5 for a long run).
//   MGC_THREADS    — overrides the hardware-thread count the harness uses.
//   MGC_SEED       — base RNG seed for workloads.
//   MGC_VERBOSE_GC — if set (non-zero), VMs print per-pause log lines.
#pragma once

#include <cstdint>
#include <string>

namespace mgc::env {

double scale();          // workload scale factor, default 1.0
int threads();           // default: std::thread::hardware_concurrency()
std::uint64_t seed();    // default 42
bool verbose_gc();       // default false

// Scales an iteration/op count by MGC_SCALE with a floor of 1.
std::uint64_t scaled(std::uint64_t base_count);

}  // namespace mgc::env
