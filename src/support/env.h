// Environment-variable knobs for the bench harness.
//
//   MGC_SCALE      — multiplies workload repetition counts (default 1.0;
//                    0.2 for a quick smoke run, 5 for a long run).
//   MGC_THREADS    — overrides the hardware-thread count the harness uses.
//   MGC_SEED       — base RNG seed for workloads.
//   MGC_VERBOSE_GC — if set (non-zero), VMs print per-pause log lines.
//   MGC_GC         — restricts bench/example runs to one collector (any
//                    name gc_kind_from_name accepts, incl. "Epsilon");
//                    aborts on junk so a typo can't silently run all six.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/gc_kind.h"

namespace mgc::env {

double scale();          // workload scale factor, default 1.0
int threads();           // default: std::thread::hardware_concurrency()
std::uint64_t seed();    // default 42
bool verbose_gc();       // default false

// True (and *out filled) when MGC_GC selects a collector. Aborts with a
// clear message when MGC_GC is set but names no collector.
bool gc_override(GcKind* out);

// Scales an iteration/op count by MGC_SCALE with a floor of 1.
std::uint64_t scaled(std::uint64_t base_count);

}  // namespace mgc::env
