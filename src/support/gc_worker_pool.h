// Pool of long-lived GC worker threads. Parallel collection phases are
// expressed as `run(n, fn)` where fn(worker_id) executes on n workers and
// run() returns when all have finished — the classic HotSpot WorkGang.
// Keeping the threads alive across collections avoids thread creation in
// every pause (CP.41).
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "support/mutex.h"

namespace mgc {

class GcWorkerPool {
 public:
  explicit GcWorkerPool(int num_workers);
  ~GcWorkerPool();

  GcWorkerPool(const GcWorkerPool&) = delete;
  GcWorkerPool& operator=(const GcWorkerPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  // Runs `fn(worker_id)` on `workers` workers (clamped to pool size) and
  // blocks until all complete. Only one run() may be active at a time;
  // collections are serialized by the VM thread so this is not limiting.
  void run(int workers, const std::function<void(int)>& fn);

 private:
  void worker_main(int id);

  Mutex mu_{LockRank::kGcWorkerPool, "gc-worker-pool"};
  CondVar start_cv_;
  CondVar done_cv_;
  const std::function<void(int)>* task_ MGC_GUARDED_BY(mu_) = nullptr;
  std::uint64_t epoch_ MGC_GUARDED_BY(mu_) = 0;
  int active_workers_ MGC_GUARDED_BY(mu_) = 0;
  int finished_ MGC_GUARDED_BY(mu_) = 0;
  bool shutdown_ MGC_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace mgc
