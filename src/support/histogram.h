// Log-bucketed latency histogram (HDR-histogram style, base-2 buckets with
// linear sub-buckets). Records nanosecond values up to ~hours with bounded
// relative error; used for per-operation latency series where keeping every
// sample (millions of ops) would be wasteful.
#pragma once

#include <cstdint>
#include <vector>

namespace mgc {

class Histogram {
 public:
  // sub_bucket_bits controls precision: 2^bits linear sub-buckets per
  // power-of-two bucket (relative error <= 1/2^bits).
  explicit Histogram(int sub_bucket_bits = 5);

  void add(std::uint64_t value_ns);
  void merge(const Histogram& other);
  void clear();

  std::uint64_t count() const { return count_; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return count_ ? max_ : 0; }
  double mean() const;
  // Returns an upper bound of the bucket containing the p-th percentile.
  std::uint64_t percentile(double p) const;
  // Number of recorded values strictly greater than `threshold`.
  std::uint64_t count_above(std::uint64_t threshold) const;
  // Number of recorded values in [lo, hi].
  std::uint64_t count_between(std::uint64_t lo, std::uint64_t hi) const;

 private:
  std::size_t bucket_index(std::uint64_t v) const;
  std::uint64_t bucket_low(std::size_t idx) const;
  std::uint64_t bucket_high(std::size_t idx) const;

  int sub_bits_;
  std::uint64_t sub_count_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace mgc
