#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/check.h"

namespace mgc {

Table& Table::header(std::vector<std::string> cells) {
  header_ = std::move(cells);
  return *this;
}

Table& Table::row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  auto grow = [&](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  if (!header_.empty()) grow(header_);
  for (const auto& r : rows_) grow(r);

  auto line = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      os << ' ' << c << std::string(widths[i] - c.size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  if (!title_.empty()) os << "== " << title_ << " ==\n";
  line();
  if (!header_.empty()) {
    emit(header_);
    line();
  }
  for (const auto& r : rows_) emit(r);
  line();
}

std::string Table::to_string() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

void print_series(std::ostream& os, const std::string& name,
                  const std::vector<SeriesPoint>& pts, std::size_t max_points) {
  os << "# series " << name << " (" << pts.size() << " points";
  std::vector<SeriesPoint> shown = pts;
  if (shown.size() > max_points) {
    // Keep the highest-y points, as the paper does for Fig. 5, then restore
    // chronological order.
    std::sort(shown.begin(), shown.end(),
              [](const SeriesPoint& a, const SeriesPoint& b) { return a.y > b.y; });
    shown.resize(max_points);
    os << ", showing top " << max_points << " by y";
  }
  os << ")\n";
  std::sort(shown.begin(), shown.end(),
            [](const SeriesPoint& a, const SeriesPoint& b) { return a.x < b.x; });
  for (const auto& p : shown) os << p.x << ' ' << p.y << '\n';
  os << "# end series " << name << "\n";
}

}  // namespace mgc
