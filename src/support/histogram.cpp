#include "support/histogram.h"

#include <algorithm>
#include <bit>

#include "support/check.h"

namespace mgc {

Histogram::Histogram(int sub_bucket_bits) : sub_bits_(sub_bucket_bits) {
  MGC_CHECK(sub_bucket_bits >= 1 && sub_bucket_bits <= 12);
  sub_count_ = 1ULL << sub_bits_;
  // 64 power-of-two buckets x sub_count_ linear sub-buckets covers all u64.
  buckets_.assign(64 * sub_count_, 0);
}

std::size_t Histogram::bucket_index(std::uint64_t v) const {
  if (v < sub_count_) return static_cast<std::size_t>(v);
  const int msb = 63 - std::countl_zero(v);
  const int shift = msb - sub_bits_;
  const std::uint64_t sub = (v >> shift) & (sub_count_ - 1);
  // Power bucket p covers [2^p, 2^(p+1)); p starts at sub_bits_.
  const std::size_t power = static_cast<std::size_t>(msb - sub_bits_ + 1);
  return power * sub_count_ + static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucket_low(std::size_t idx) const {
  const std::size_t power = idx / sub_count_;
  const std::uint64_t sub = idx % sub_count_;
  if (power == 0) return sub;
  const int shift = static_cast<int>(power) - 1;
  return ((sub_count_ + sub) << shift);
}

std::uint64_t Histogram::bucket_high(std::size_t idx) const {
  const std::size_t power = idx / sub_count_;
  if (power == 0) return bucket_low(idx);
  const int shift = static_cast<int>(power) - 1;
  return bucket_low(idx) + ((1ULL << shift) - 1);
}

void Histogram::add(std::uint64_t v) {
  const std::size_t idx = bucket_index(v);
  MGC_DCHECK(idx < buckets_.size());
  ++buckets_[idx];
  if (count_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += static_cast<double>(v);
}

void Histogram::merge(const Histogram& other) {
  MGC_CHECK(sub_bits_ == other.sub_bits_);
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void Histogram::clear() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  min_ = max_ = 0;
  sum_ = 0.0;
}

double Histogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t Histogram::percentile(double p) const {
  if (count_ == 0) return 0;
  MGC_CHECK(p >= 0.0 && p <= 100.0);
  const auto target = static_cast<std::uint64_t>(
      p / 100.0 * static_cast<double>(count_) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= target && buckets_[i] > 0) return std::min(bucket_high(i), max_);
  }
  return max_;
}

std::uint64_t Histogram::count_above(std::uint64_t threshold) const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (bucket_low(i) > threshold) {
      n += buckets_[i];
    }
    // Buckets straddling the threshold are counted as below: the histogram
    // trades exactness at bucket edges for O(1) memory; callers use bands
    // far wider than one bucket.
  }
  return n;
}

std::uint64_t Histogram::count_between(std::uint64_t lo, std::uint64_t hi) const {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    if (bucket_low(i) >= lo && bucket_high(i) <= hi) n += buckets_[i];
  }
  return n;
}

}  // namespace mgc
