// Chase-Lev work-stealing deque (dynamic circular array variant), the task
// queue behind all parallel collection phases. The owner pushes/pops at the
// bottom without contention; thieves steal from the top with a single CAS.
//
// Reference: Chase & Lev, "Dynamic Circular Work-Stealing Deque", SPAA'05,
// with the C11 memory-ordering corrections of Lê et al., PPoPP'13.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "support/check.h"
#include "support/tsan_annotations.h"

namespace mgc {

template <typename T>
class WsDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "WsDeque elements are copied with relaxed atomicity");

 public:
  explicit WsDeque(std::size_t initial_capacity = 256)
      : array_(new Array(round_up_pow2(initial_capacity))) {}

  ~WsDeque() {
    delete array_.load(std::memory_order_relaxed);
    for (Array* a : retired_) delete a;
  }

  WsDeque(const WsDeque&) = delete;
  WsDeque& operator=(const WsDeque&) = delete;

  // Owner-only.
  void push(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Array* a = array_.load(std::memory_order_relaxed);
    if (b - t > static_cast<std::int64_t>(a->capacity) - 1) {
      a = grow(a, t, b);
    }
    a->put(b, item);
    std::atomic_thread_fence(std::memory_order_release);
    // TSan does not model the fence above; hand it the release edge on
    // bottom_ explicitly so a thief's read of the pushed task (and of
    // whatever the task points at) is ordered after this publish.
    MGC_TSAN_RELEASE(&bottom_);
    bottom_.store(b + 1, std::memory_order_relaxed);
  }

  // Owner-only.
  std::optional<T> pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Array* a = array_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t <= b) {
      T item = a->get(b);
      if (t == b) {
        // Last element: race with thieves via CAS on top.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
          bottom_.store(b + 1, std::memory_order_relaxed);
          return std::nullopt;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return item;
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
    return std::nullopt;
  }

  // Any thread.
  std::optional<T> steal() {
    std::int64_t t = top_.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    // Acquire side of the annotated release in push(): everything the owner
    // published before bumping bottom_ is visible to this thief.
    MGC_TSAN_ACQUIRE(&bottom_);
    if (t >= b) return std::nullopt;
    Array* a = array_.load(std::memory_order_consume);
    T item = a->get(t);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      return std::nullopt;
    }
    return item;
  }

  bool empty() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b <= t;
  }

  std::size_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Array {
    explicit Array(std::size_t cap) : capacity(cap), mask(cap - 1), slots(cap) {}
    std::size_t capacity;
    std::size_t mask;
    std::vector<std::atomic<T>> slots;

    T get(std::int64_t i) const {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, T v) {
      slots[static_cast<std::size_t>(i) & mask].store(v,
                                                      std::memory_order_relaxed);
    }
  };

  static std::size_t round_up_pow2(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  Array* grow(Array* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Array(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    array_.store(bigger, std::memory_order_release);
    // Old arrays are retired, not freed: a concurrent thief may still hold a
    // pointer to one. They are reclaimed when the deque is destroyed, which
    // only happens after all parallel phases using it have joined.
    retired_.push_back(old);
    return bigger;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Array*> array_;
  std::vector<Array*> retired_;
};

}  // namespace mgc
