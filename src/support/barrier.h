// Sense-reversing centralized barrier for GC worker phases. Spins briefly,
// then falls back to futex-style blocking via condition variable so we do
// not burn cores when workers outnumber CPUs.
#pragma once

#include <atomic>

#include "support/check.h"
#include "support/mutex.h"
#include "support/spinlock.h"

namespace mgc {

class SenseBarrier {
 public:
  explicit SenseBarrier(int parties) : parties_(parties), waiting_(0) {
    MGC_CHECK(parties > 0);
  }

  // Blocks until `parties` threads have arrived. Thread-local sense is kept
  // by the caller via the returned value: pass the previous return value on
  // the next arrival (initially false).
  bool arrive_and_wait(bool my_sense) {
    const bool next = !my_sense;
    if (waiting_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
      waiting_.store(0, std::memory_order_relaxed);
      {
        MutexLock g(mu_);
        sense_.store(next, std::memory_order_release);
      }
      cv_.notify_all();
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != next) {
        if (++spins < 2048) {
          cpu_relax();
        } else {
          MutexLock g(mu_);
          cv_.wait(g, [&] {
            return sense_.load(std::memory_order_acquire) == next;
          });
        }
      }
    }
    return next;
  }

 private:
  const int parties_;
  std::atomic<int> waiting_;
  std::atomic<bool> sense_{false};
  Mutex mu_{LockRank::kGcBarrier, "gc-barrier"};
  CondVar cv_;
};

// Termination detector for work-stealing phases: workers that fail to find
// work offer termination; if any worker finds new work, offers reset.
class TerminationDetector {
 public:
  explicit TerminationDetector(int workers) : workers_(workers) {}

  void reset() { offered_.store(0, std::memory_order_relaxed); }

  // Called by a worker with no local work. Returns true when all workers
  // have offered termination, i.e. the phase is globally done.
  bool offer_termination() {
    const int n = offered_.fetch_add(1, std::memory_order_acq_rel) + 1;
    return n >= workers_;
  }

  // Called when a worker found work after offering termination.
  void retract() { offered_.fetch_sub(1, std::memory_order_acq_rel); }

  bool terminated() const {
    return offered_.load(std::memory_order_acquire) >= workers_;
  }

 private:
  const int workers_;
  std::atomic<int> offered_{0};
};

}  // namespace mgc
