#include "support/env.h"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace mgc::env {
namespace {

double get_double(const char* name, double def) {
  // Read once at startup behind function-local statics; no setenv anywhere.
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return end != v ? parsed : def;
}

long get_long(const char* name, long def) {
  const char* v = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (v == nullptr || *v == '\0') return def;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return end != v ? parsed : def;
}

}  // namespace

double scale() {
  static const double s = std::max(0.01, get_double("MGC_SCALE", 1.0));
  return s;
}

int threads() {
  static const int t = [] {
    const long v = get_long("MGC_THREADS", 0);
    if (v > 0) return static_cast<int>(v);
    const unsigned hw = std::thread::hardware_concurrency();
    // Floor of 4: the paper's workloads are defined by their *thread
    // structure* (one client per hardware thread on a 48-core box); on a
    // smaller host the same structure runs timeshared rather than being
    // silently degraded to single-threaded code paths.
    return std::max(4, hw == 0 ? 4 : static_cast<int>(hw));
  }();
  return t;
}

std::uint64_t seed() {
  static const auto s =
      static_cast<std::uint64_t>(get_long("MGC_SEED", 42));
  return s;
}

bool verbose_gc() {
  static const bool v = get_long("MGC_VERBOSE_GC", 0) != 0;
  return v;
}

namespace {
struct GcOverride {
  bool set = false;
  GcKind kind = GcKind::kSerial;
};
}  // namespace

bool gc_override(GcKind* out) {
  // gc_kind_from_name aborts on junk, which is exactly the behavior we
  // want for an env knob: MGC_GC=Epislon must not silently run all six.
  static const GcOverride o = [] {
    GcOverride g;
    const char* v = std::getenv("MGC_GC");  // NOLINT(concurrency-mt-unsafe)
    if (v != nullptr && *v != '\0') {
      g.set = true;
      g.kind = gc_kind_from_name(v);
    }
    return g;
  }();
  if (o.set && out != nullptr) *out = o.kind;
  return o.set;
}

std::uint64_t scaled(std::uint64_t base_count) {
  const double s = scale();
  const auto v = static_cast<std::uint64_t>(static_cast<double>(base_count) * s);
  return v == 0 ? 1 : v;
}

}  // namespace mgc::env
