#include "support/clock.h"

#include <ctime>

namespace mgc {

std::int64_t process_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

std::int64_t thread_cpu_ns() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

}  // namespace mgc
