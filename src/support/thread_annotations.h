// Clang Thread Safety Analysis attribute macros.
//
// Wrappers over clang's capability attributes so annotated code still
// compiles (as a no-op) under GCC and older clangs. The conventions:
//
//   MGC_CAPABILITY("mutex")   on a lock class (SpinLock, Mutex)
//   MGC_SCOPED_CAPABILITY     on RAII lock holders (MutexLock, GuardedLock)
//   MGC_GUARDED_BY(mu)        on a field only touched with mu held
//   MGC_PT_GUARDED_BY(mu)     on a pointer whose *pointee* needs mu
//   MGC_REQUIRES(mu)          on a function that must be called with mu held
//   MGC_ACQUIRE(mu) / MGC_RELEASE(mu) on lock/unlock-shaped functions
//   MGC_TRY_ACQUIRE(ok, mu)   on try_lock-shaped functions
//   MGC_EXCLUDES(mu)          on a function that must NOT hold mu (it locks)
//   MGC_NO_THREAD_SAFETY_ANALYSIS  escape hatch for patterns the analysis
//                             cannot express (array-of-stripes acquisition,
//                             condition-variable re-lock plumbing)
//
// The analysis itself runs only under clang with -Wthread-safety; the
// tier-1 CMake build turns it on (as an error) whenever the compiler is
// clang, and the CI static-analysis job does a dedicated clang configure.
// See DESIGN.md §13 for the annotation conventions and the lock-rank
// table these annotations are checked against.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define MGC_TSA_HAS(x) __has_attribute(x)
#else
#define MGC_TSA_HAS(x) 0
#endif

#if MGC_TSA_HAS(capability)
#define MGC_TSA(x) __attribute__((x))
#else
#define MGC_TSA(x)
#endif

#define MGC_CAPABILITY(name) MGC_TSA(capability(name))
#define MGC_SCOPED_CAPABILITY MGC_TSA(scoped_lockable)
#define MGC_GUARDED_BY(x) MGC_TSA(guarded_by(x))
#define MGC_PT_GUARDED_BY(x) MGC_TSA(pt_guarded_by(x))
#define MGC_REQUIRES(...) MGC_TSA(requires_capability(__VA_ARGS__))
#define MGC_ACQUIRE(...) MGC_TSA(acquire_capability(__VA_ARGS__))
#define MGC_RELEASE(...) MGC_TSA(release_capability(__VA_ARGS__))
#define MGC_TRY_ACQUIRE(...) MGC_TSA(try_acquire_capability(__VA_ARGS__))
#define MGC_EXCLUDES(...) MGC_TSA(locks_excluded(__VA_ARGS__))
#define MGC_RETURN_CAPABILITY(x) MGC_TSA(lock_returned(x))
#define MGC_NO_THREAD_SAFETY_ANALYSIS MGC_TSA(no_thread_safety_analysis)
