// Annotated, rank-checked mutex and friends.
//
// mgc::Mutex wraps std::mutex with (a) Clang Thread Safety Analysis
// capability annotations, so -Wthread-safety can prove guarded fields
// are only touched under their lock, and (b) an optional LockRank, so
// the runtime registry can validate acquisition order per thread (see
// support/lock_rank.h). libstdc++'s std::mutex carries neither, which
// is why every long-lived lock in src/ is an mgc::Mutex (or the
// annotated SpinLock) rather than a bare standard one.
//
// MutexLock is the scoped holder (lock_guard/unique_lock shaped: it
// supports explicit unlock()/lock() mid-scope, which the VM-op loop and
// the kv worker loop need). CondVar wraps condition_variable_any so
// waits go through Mutex::lock()/unlock() and therefore re-validate the
// rank order on every wakeup.
#pragma once

#include <condition_variable>
#include <mutex>

#include "support/check.h"
#include "support/lock_rank.h"
#include "support/thread_annotations.h"

namespace mgc {

class MGC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  // For locks that live in arrays (memtable stripes): rank them after
  // construction, before any concurrent use.
  void set_rank(LockRank rank, const char* name) {
    rank_ = rank;
    name_ = name;
  }

  void lock() MGC_ACQUIRE() {
    mu_.lock();
    lockrank::note_acquire(this, rank_, name_, /*trylock=*/false);
  }

  // A successful try_lock is recorded but exempt from order validation:
  // an inverted try_lock fails instead of deadlocking, which is exactly
  // why call sites chose try_lock (the commit log's pressure hook).
  bool try_lock() MGC_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    lockrank::note_acquire(this, rank_, name_, /*trylock=*/true);
    return true;
  }

  void unlock() MGC_RELEASE() {
    lockrank::note_release(this, rank_);
    mu_.unlock();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "unranked";
};

// Scoped holder. Satisfies BasicLockable so condition_variable_any can
// drop/retake it across waits (via CondVar below).
class MGC_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) MGC_ACQUIRE(mu) : mu_(mu), owned_(true) {
    mu_.lock();
  }
  ~MutexLock() MGC_RELEASE() {
    if (owned_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() MGC_RELEASE() {
    MGC_DCHECK(owned_);
    owned_ = false;
    mu_.unlock();
  }
  void lock() MGC_ACQUIRE() {
    MGC_DCHECK(!owned_);
    mu_.lock();
    owned_ = true;
  }
  bool owns() const { return owned_; }

 private:
  Mutex& mu_;
  bool owned_;
};

// Condition variable over mgc::Mutex. Waits release and re-acquire the
// Mutex itself, so the rank registry sees (and re-validates) the
// re-acquisition. The waits are NO_THREAD_SAFETY_ANALYSIS because the
// analysis cannot see that the capability is held again on return; from
// the caller's perspective the lock is held before and after, which is
// the contract the annotation-free signature expresses.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void wait(MutexLock& l) MGC_NO_THREAD_SAFETY_ANALYSIS { cv_.wait(l); }

  template <typename Pred>
  void wait(MutexLock& l, Pred pred) MGC_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(l, pred);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace mgc
