// Deterministic pseudo-random number generation for workloads and tests.
//
// xoshiro256** seeded via splitmix64, plus the distributions the YCSB and
// DaCapo-like workloads need (uniform, bounded, zipfian, exponential-ish
// think times). All generators are value types; every thread owns its own,
// so there is no shared mutable state (CP.2).
#pragma once

#include <array>
#include <cmath>
#include <cstdint>

#include "support/check.h"

namespace mgc {

// splitmix64: used only to expand seeds.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  std::uint64_t operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). Lemire-style rejection-free reduction is
  // fine here: bias is negligible for bound << 2^64 and workloads only need
  // statistical (not cryptographic) uniformity.
  std::uint64_t below(std::uint64_t bound) {
    MGC_DCHECK(bound > 0);
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::uint64_t in_range(std::uint64_t lo, std::uint64_t hi) {
    MGC_DCHECK(hi >= lo);
    return lo + below(hi - lo + 1);
  }

  // Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  // True with probability p.
  bool chance(double p) { return unit() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

// Zipfian key-popularity distribution over [0, n), as used by YCSB.
// Implements the Gray et al. "quick zipf" sampling with precomputed zeta.
class Zipfian {
 public:
  Zipfian(std::uint64_t n, double theta = 0.99) : n_(n), theta_(theta) {
    MGC_CHECK(n > 0);
    zetan_ = zeta(n, theta_);
    zeta2_ = zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }

  std::uint64_t sample(Rng& rng) const {
    const double u = rng.unit();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const auto idx = static_cast<std::uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return idx >= n_ ? n_ - 1 : idx;
  }

  std::uint64_t n() const { return n_; }

 private:
  static double zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    // Exact sum is O(n); cap the exact computation and extend with the
    // integral approximation for very large n (we never exceed ~10M keys).
    const std::uint64_t exact = n < 1000000 ? n : 1000000;
    for (std::uint64_t i = 1; i <= exact; ++i)
      sum += 1.0 / std::pow(static_cast<double>(i), theta);
    if (exact < n) {
      sum += (std::pow(static_cast<double>(n), 1.0 - theta) -
              std::pow(static_cast<double>(exact), 1.0 - theta)) /
             (1.0 - theta);
    }
    return sum;
  }

  std::uint64_t n_;
  double theta_;
  double zetan_, zeta2_, alpha_, eta_;
};

// Scrambles zipfian ranks over the key space so hot keys are spread out,
// mirroring YCSB's ScrambledZipfianGenerator.
class ScrambledZipfian {
 public:
  explicit ScrambledZipfian(std::uint64_t n, double theta = 0.99)
      : zipf_(n, theta), n_(n) {}

  std::uint64_t sample(Rng& rng) const {
    const std::uint64_t rank = zipf_.sample(rng);
    std::uint64_t h = rank;
    return fnv64(h) % n_;
  }

 private:
  static std::uint64_t fnv64(std::uint64_t x) {
    std::uint64_t hash = 0xcbf29ce484222325ULL;
    for (int i = 0; i < 8; ++i) {
      hash ^= (x >> (i * 8)) & 0xff;
      hash *= 0x100000001b3ULL;
    }
    return hash;
  }

  Zipfian zipf_;
  std::uint64_t n_;
};

}  // namespace mgc
