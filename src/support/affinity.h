// Core-affinity helpers for the shard-per-core kvstore and the multi-loop
// network front-end. Pinning is best effort: on kernels/configurations
// where sched_setaffinity is unavailable (or the cpuset forbids the
// requested core) the callers fall back to floating threads — correctness
// never depends on placement, only the scaling curves do.
#pragma once

namespace mgc {

// Number of cores this process may run on (sched_getaffinity when
// available, std::thread::hardware_concurrency otherwise). Always >= 1.
int hw_cores();

// True when thread pinning is available on this platform.
bool affinity_supported();

// Pins the calling thread to `core` (modulo the allowed-core count, so
// callers can pass a shard/loop index directly). Returns false when
// pinning is unsupported or the kernel refused the mask.
bool pin_this_thread(int core);

}  // namespace mgc
