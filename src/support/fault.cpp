#include "support/fault.h"

#include <cstdlib>

#include "support/check.h"
#include "support/mutex.h"
#include "support/rng.h"

namespace mgc::fault {

namespace internal {
std::atomic<std::uint32_t> g_armed_mask{0};
}  // namespace internal

namespace {

// Cap on the per-site fired-check log: enough for the replay tests to
// compare sequences, bounded so a high-probability site in a long run
// cannot grow without bound.
constexpr std::size_t kFiredLogCap = 64;

struct SiteState {
  Policy policy;
  std::uint64_t checks = 0;
  std::uint64_t fires = 0;
  std::vector<std::uint64_t> fired_log;
};

// One mutex guards all slow-path state. Only armed checks take it; the
// unarmed fast path never reaches here. Ranked as a global leaf: checks
// run under shard queues, the commit-log lock, even heap spinlocks.
Mutex g_mu{LockRank::kFault, "fault"};
SiteState g_sites[kNumSites] MGC_GUARDED_BY(g_mu);  // NOLINT(modernize-avoid-c-arrays)
std::uint64_t g_seed MGC_GUARDED_BY(g_mu) = 0;

std::size_t idx(Site s) { return static_cast<std::size_t>(s); }

// Pure function of (seed, site, check number): the same triple always
// yields the same verdict, which is what makes armed runs replayable.
bool hash_fires(std::uint64_t seed_v, Site s, std::uint64_t n, double p) {
  if (p >= 1.0) return true;
  if (p <= 0.0) return false;
  std::uint64_t state =
      seed_v ^ (0x9e3779b97f4a7c15ULL * (idx(s) + 1)) ^ (n * 0xd1342543de82ef95ULL);
  const std::uint64_t h = splitmix64(state);
  return (static_cast<double>(h >> 11) * 0x1.0p-53) < p;
}

const char* const kSiteNames[kNumSites] = {
    "heap-alloc",     "tlab-refill",    "plab-refill",        "old-alloc",
    "heap-expand",    "promotion-fail", "g1-evac-fail",       "cms-concurrent-fail",
    "gc-worker-stall","commitlog-write","kv-queue-full",      "shard-queue-full",
    "net-accept",     "net-read-short", "net-write-short",    "net-epipe",
    "repl-append-drop", "repl-ack-drop", "repl-heartbeat-loss",
    "repl-follower-stall",
};

}  // namespace

namespace internal {

bool fire_slow(Site s, std::uint32_t scope) {
  MutexLock l(g_mu);
  SiteState& st = g_sites[idx(s)];
  // Re-check under the lock: the relaxed fast-path load may have raced a
  // disarm; the lock makes policy reads consistent.
  if ((g_armed_mask.load(std::memory_order_relaxed) &
       (1U << static_cast<unsigned>(s))) == 0) {
    return false;
  }
  // Every check is counted (scoped or not) so fired-check numbers stay a
  // pure function of the site's overall check sequence; a scoped policy
  // then only fires at checks carrying the matching shard/loop index.
  const std::uint64_t n = st.checks++;
  if (st.policy.scope != kScopeAny && scope != st.policy.scope) return false;
  if (n < st.policy.after) return false;
  if (st.fires >= st.policy.limit) return false;
  if (!hash_fires(g_seed, s, n, st.policy.probability)) return false;
  st.fires++;
  if (st.fired_log.size() < kFiredLogCap) st.fired_log.push_back(n);
  return true;
}

}  // namespace internal

void arm(Site s, const Policy& p) {
  MGC_CHECK(s < Site::kNumSites);
  {
    MutexLock l(g_mu);
    SiteState& st = g_sites[idx(s)];
    st.policy = p;
    st.checks = 0;
    st.fires = 0;
    st.fired_log.clear();
  }
  internal::g_armed_mask.fetch_or(1U << static_cast<unsigned>(s),
                                  std::memory_order_release);
}

void disarm(Site s) {
  internal::g_armed_mask.fetch_and(~(1U << static_cast<unsigned>(s)),
                                   std::memory_order_release);
}

void disarm_all() {
  internal::g_armed_mask.store(0, std::memory_order_release);
  MutexLock l(g_mu);
  for (auto& st : g_sites) {
    st.policy = Policy{};
    st.checks = 0;
    st.fires = 0;
    st.fired_log.clear();
  }
}

void set_seed(std::uint64_t seed_v) {
  MutexLock l(g_mu);
  g_seed = seed_v;
}

std::uint64_t seed() {
  MutexLock l(g_mu);
  return g_seed;
}

std::uint64_t check_count(Site s) {
  MutexLock l(g_mu);
  return g_sites[idx(s)].checks;
}

std::uint64_t fire_count(Site s) {
  MutexLock l(g_mu);
  return g_sites[idx(s)].fires;
}

std::vector<std::uint64_t> fired_checks(Site s) {
  MutexLock l(g_mu);
  return g_sites[idx(s)].fired_log;
}

const char* site_name(Site s) {
  return s < Site::kNumSites ? kSiteNames[idx(s)] : "?";
}

bool parse_site(const std::string& name, Site* out) {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    if (name == kSiteNames[i]) {
      *out = static_cast<Site>(i);
      return true;
    }
  }
  return false;
}

namespace {

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

bool parse_clause(const std::string& clause, std::string* error) {
  // site[=probability][:after=N][:limit=M][:oneshot]
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = clause.find(':', start);
    parts.push_back(clause.substr(start, colon - start));
    if (colon == std::string::npos) break;
    start = colon + 1;
  }

  Policy p;
  std::string head = parts[0];
  const std::size_t eq = head.find('=');
  std::string site_name_str = head.substr(0, eq);
  if (eq != std::string::npos) {
    const std::string prob = head.substr(eq + 1);
    char* end = nullptr;
    p.probability = std::strtod(prob.c_str(), &end);
    if (prob.empty() || end != prob.c_str() + prob.size() ||
        p.probability < 0.0 || p.probability > 1.0) {
      if (error != nullptr) *error = "bad probability in '" + clause + "'";
      return false;
    }
  }

  Site site{};
  if (!parse_site(site_name_str, &site)) {
    if (error != nullptr) *error = "unknown fault site '" + site_name_str + "'";
    return false;
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string& opt = parts[i];
    if (opt == "oneshot") {
      p.limit = 1;
    } else if (opt.rfind("after=", 0) == 0) {
      if (!parse_u64(opt.substr(6), &p.after)) {
        if (error != nullptr) *error = "bad option '" + opt + "'";
        return false;
      }
    } else if (opt.rfind("limit=", 0) == 0) {
      if (!parse_u64(opt.substr(6), &p.limit)) {
        if (error != nullptr) *error = "bad option '" + opt + "'";
        return false;
      }
    } else if (opt.rfind("scope=", 0) == 0 || opt.rfind("shard=", 0) == 0 ||
               opt.rfind("loop=", 0) == 0) {
      // 'shard=' and 'loop=' are readable aliases for the generic scope.
      std::uint64_t v = 0;
      if (!parse_u64(opt.substr(opt.find('=') + 1), &v) || v >= kScopeAny) {
        if (error != nullptr) *error = "bad option '" + opt + "'";
        return false;
      }
      p.scope = static_cast<std::uint32_t>(v);
    } else {
      if (error != nullptr) *error = "unknown option '" + opt + "'";
      return false;
    }
  }

  arm(site, p);
  return true;
}

}  // namespace

bool parse_spec(const std::string& spec, std::string* error) {
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t semi = spec.find(';', start);
    const std::string clause =
        spec.substr(start, semi == std::string::npos ? std::string::npos
                                                     : semi - start);
    if (!clause.empty() && !parse_clause(clause, error)) return false;
    if (semi == std::string::npos) break;
    start = semi + 1;
  }
  return true;
}

void init_from_env() {
  static const bool once = [] {
    const char* seed_s = std::getenv("MGC_FAULT_SEED");  // NOLINT(concurrency-mt-unsafe)
    if (seed_s != nullptr && *seed_s != '\0') {
      std::uint64_t v = 0;
      MGC_CHECK_MSG(parse_u64(seed_s, &v), "MGC_FAULT_SEED must be an integer");
      set_seed(v);
    }
    const char* spec = std::getenv("MGC_FAULT");  // NOLINT(concurrency-mt-unsafe)
    if (spec != nullptr && *spec != '\0') {
      std::string err;
      if (!parse_spec(spec, &err)) {
        panic(__FILE__, __LINE__, ("MGC_FAULT: " + err).c_str());
      }
    }
    return true;
  }();
  (void)once;
}

ScopedSpec::ScopedSpec(const std::string& spec, std::uint64_t spec_seed) {
  disarm_all();
  set_seed(spec_seed);
  std::string err;
  if (!parse_spec(spec, &err)) {
    panic(__FILE__, __LINE__, ("fault spec: " + err).c_str());
  }
}

ScopedSpec::~ScopedSpec() { disarm_all(); }

}  // namespace mgc::fault
