// ASCII table renderer used by the bench binaries to print the paper's
// tables, plus a tiny gnuplot-style series dumper for the figures.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace mgc {

class Table {
 public:
  explicit Table(std::string title = {}) : title_(std::move(title)) {}

  Table& header(std::vector<std::string> cells);
  Table& row(std::vector<std::string> cells);

  // Formats a double with fixed precision, trimming to a compact cell.
  static std::string num(double v, int precision = 2);
  static std::string pct(double v, int precision = 1);

  void print(std::ostream& os) const;
  std::string to_string() const;

  // Structured access for serializers (bench_json turns a Table into the
  // "tables" section of a BENCH_*.json report).
  const std::string& title() const { return title_; }
  const std::vector<std::string>& header_cells() const { return header_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Prints "# series <name>" followed by "x y" lines — a figure data series
// (consumable by gnuplot) that mirrors one curve/point-cloud of a paper
// figure. `max_points` keeps logs readable (the paper itself plots only the
// highest 10000 points of Fig. 5).
struct SeriesPoint {
  double x;
  double y;
};

void print_series(std::ostream& os, const std::string& name,
                  const std::vector<SeriesPoint>& pts,
                  std::size_t max_points = 10000);

}  // namespace mgc
