// Annotations consumed by tools/gclint (the GC-discipline checker).
//
// MGC_GC_UNSAFE marks a function that legitimately manipulates raw managed
// pointers across safepoints or writes reference fields without the barrier
// — collector internals, the barrier implementation itself, heap verifiers.
// gclint skips the raw-pointer and barrier checks inside such functions.
// Under clang the marker survives into the AST as an annotate attribute;
// other compilers see nothing.
//
// MGC_LINT_SUPPRESS("check-id") suppresses findings of one check on the
// statement line it appears on and the line below it. Prefer it over
// MGC_GC_UNSAFE when only a single statement is intentionally unsafe.
//
// A file whose first lines contain the comment `// gclint: gc-unsafe-file`
// is exempt from the raw-pointer and barrier checks entirely (the
// lock-discipline check still applies).
#pragma once

#if defined(__clang__)
#define MGC_GC_UNSAFE __attribute__((annotate("mgc::gc_unsafe")))
#else
#define MGC_GC_UNSAFE
#endif

// Expands to nothing; the checker reads the token (and its argument) from
// the source text / AST, not from the preprocessed output.
#define MGC_LINT_SUPPRESS(check)
