#include "support/affinity.h"

#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace mgc {

#if defined(__linux__)

int hw_cores() {
  cpu_set_t set;
  CPU_ZERO(&set);
  if (::sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) return n;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

bool affinity_supported() { return true; }

bool pin_this_thread(int core) {
  if (core < 0) return false;
  // Pin to the core-th *allowed* cpu: under a restricted cpuset (CI
  // containers) the allowed ids need not start at 0 or be contiguous.
  cpu_set_t allowed;
  CPU_ZERO(&allowed);
  if (::sched_getaffinity(0, sizeof(allowed), &allowed) != 0) return false;
  const int n = CPU_COUNT(&allowed);
  if (n <= 0) return false;
  int want = core % n;
  int cpu = -1;
  for (int id = 0; id < CPU_SETSIZE; ++id) {
    if (!CPU_ISSET(id, &allowed)) continue;
    if (want-- == 0) {
      cpu = id;
      break;
    }
  }
  if (cpu < 0) return false;
  cpu_set_t one;
  CPU_ZERO(&one);
  CPU_SET(cpu, &one);
  return ::pthread_setaffinity_np(pthread_self(), sizeof(one), &one) == 0;
}

#else  // !__linux__

int hw_cores() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

bool affinity_supported() { return false; }

bool pin_this_thread(int) { return false; }

#endif

}  // namespace mgc
