#include "support/stats.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"

namespace mgc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::rsd_percent() const {
  if (n_ < 2 || mean_ == 0.0) return 0.0;
  return stddev() / mean_ * 100.0;
}

double mean_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.mean();
}

double stddev_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double rsd_percent_of(const std::vector<double>& xs) {
  RunningStats s;
  for (double x : xs) s.add(x);
  return s.rsd_percent();
}

double percentile_of(std::vector<double> xs, double p) {
  MGC_CHECK(!xs.empty());
  MGC_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (p <= 0.0) return xs.front();
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(xs.size())));
  return xs[std::min(xs.size() - 1, rank == 0 ? 0 : rank - 1)];
}

}  // namespace mgc
