// Minimal JSON value, writer, and parser for the persisted benchmark
// reports (BENCH_*.json) and the perf regression guard.
//
// Deliberately small: objects preserve insertion order (so dumps are
// deterministic and diffs are readable), numbers are doubles (an IEEE
// double holds integers exactly up to 2^53 ≈ 9.0e15, which covers every
// nanosecond counter a bench run can produce), and the parser accepts
// exactly the JSON this writer emits plus ordinary hand-edits. No
// external dependency — the toolchain image is all we get.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mgc {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double d) : type_(Type::kNumber), num_(d) {}
  Json(int i) : type_(Type::kNumber), num_(i) {}
  Json(std::int64_t i) : type_(Type::kNumber), num_(static_cast<double>(i)) {}
  Json(std::uint64_t u) : type_(Type::kNumber), num_(static_cast<double>(u)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_double() const { return num_; }
  std::int64_t as_int64() const { return static_cast<std::int64_t>(num_); }
  const std::string& as_string() const { return str_; }

  // --- arrays ---------------------------------------------------------------
  void push_back(Json v) { arr_.push_back(std::move(v)); }
  const std::vector<Json>& items() const { return arr_; }
  std::size_t size() const {
    return type_ == Type::kArray ? arr_.size() : obj_.size();
  }

  // --- objects (insertion-ordered) -------------------------------------------
  // set() replaces an existing key in place, keeping its position.
  void set(const std::string& key, Json v);
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  // nullptr when absent.
  const Json* find(const std::string& key) const;
  // Missing-key access returns a shared null (safe to chain on).
  const Json& at(const std::string& key) const;
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  // Typed accessors with defaults — baseline files are hand-rebased, so
  // readers stay tolerant of missing fields.
  double number_or(const std::string& key, double dflt) const;
  std::string string_or(const std::string& key, const std::string& dflt) const;

  // --- serialization ----------------------------------------------------------
  // Deterministic pretty print: 2-space indent, insertion order, '\n'
  // line ends, integral numbers without a trailing ".0".
  std::string dump() const;

  // Strict parse of a complete document; trailing garbage is an error.
  // Returns false and fills *err (with an offset) on malformed input.
  static bool parse(const std::string& text, Json* out, std::string* err);

 private:
  void dump_to(std::string& out, int indent) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace mgc
