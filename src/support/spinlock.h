// Tiny TTAS spinlock with exponential backoff, for very short critical
// sections inside the collectors (per-region remembered sets, free-list
// bins). Satisfies the Lockable named requirement so std::scoped_lock and
// std::lock_guard work with it (CP.20). Carries thread-safety-analysis
// capability annotations and an optional LockRank, like mgc::Mutex.
#pragma once

#include <atomic>

#include "support/lock_rank.h"
#include "support/thread_annotations.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace mgc {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

class MGC_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  explicit SpinLock(LockRank rank, const char* name)
      : rank_(rank), name_(name) {}

  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() MGC_ACQUIRE() {
    int spins = 1;
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) break;
      // Test-and-test-and-set: spin on a plain load to avoid cache-line
      // ping-pong, backing off exponentially.
      while (flag_.load(std::memory_order_relaxed)) {
        for (int i = 0; i < spins; ++i) cpu_relax();
        if (spins < 1024) spins <<= 1;
      }
    }
    lockrank::note_acquire(this, rank_, name_, /*trylock=*/false);
  }

  bool try_lock() MGC_TRY_ACQUIRE(true) {
    if (flag_.exchange(true, std::memory_order_acquire)) return false;
    lockrank::note_acquire(this, rank_, name_, /*trylock=*/true);
    return true;
  }

  void unlock() MGC_RELEASE() {
    lockrank::note_release(this, rank_);
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "unranked";
};

// Scoped SpinLock holder with the scoped-capability annotation (the
// std::lock_guard<SpinLock> it replaces is invisible to -Wthread-safety:
// libstdc++'s guards carry no annotations).
class MGC_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& l) MGC_ACQUIRE(l) : l_(l) { l_.lock(); }
  ~SpinLockGuard() MGC_RELEASE() { l_.unlock(); }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;

 private:
  SpinLock& l_;
};

// Exponential backoff helper for CAS retry loops.
class Backoff {
 public:
  void pause() {
    for (int i = 0; i < spins_; ++i) cpu_relax();
    if (spins_ < 4096) spins_ <<= 1;
  }

 private:
  int spins_ = 1;
};

}  // namespace mgc
