// Tiny TTAS spinlock with exponential backoff, for very short critical
// sections inside the collectors (per-region remembered sets, free-list
// bins). Satisfies the Lockable named requirement so std::scoped_lock and
// std::lock_guard work with it (CP.20).
#pragma once

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace mgc {

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

class SpinLock {
 public:
  void lock() {
    int spins = 1;
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // Test-and-test-and-set: spin on a plain load to avoid cache-line
      // ping-pong, backing off exponentially.
      while (flag_.load(std::memory_order_relaxed)) {
        for (int i = 0; i < spins; ++i) cpu_relax();
        if (spins < 1024) spins <<= 1;
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

// Exponential backoff helper for CAS retry loops.
class Backoff {
 public:
  void pause() {
    for (int i = 0; i < spins_; ++i) cpu_relax();
    if (spins_ < 4096) spins_ <<= 1;
  }

 private:
  int spins_ = 1;
};

}  // namespace mgc
