#include "support/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace mgc {

namespace {

const Json kNullJson;

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  // Integral values (every counter in a bench report) print as integers;
  // true fractions keep enough digits to round-trip.
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.0e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
  } else if (std::isfinite(d)) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", d);
    out += buf;
  } else {
    out += "null";  // JSON has no Inf/NaN; a null stands out in review
  }
}

}  // namespace

void Json::set(const std::string& key, Json v) {
  for (auto& kv : obj_) {
    if (kv.first == key) {
      kv.second = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const Json* Json::find(const std::string& key) const {
  for (const auto& kv : obj_) {
    if (kv.first == key) return &kv.second;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* j = find(key);
  return j != nullptr ? *j : kNullJson;
}

double Json::number_or(const std::string& key, double dflt) const {
  const Json* j = find(key);
  return (j != nullptr && j->is_number()) ? j->as_double() : dflt;
}

std::string Json::string_or(const std::string& key,
                            const std::string& dflt) const {
  const Json* j = find(key);
  return (j != nullptr && j->is_string()) ? j->as_string() : dflt;
}

void Json::dump_to(std::string& out, int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray:
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += pad_in;
        arr_[i].dump_to(out, indent + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += ']';
      break;
    case Type::kObject:
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += pad_in;
        append_escaped(out, obj_[i].first);
        out += ": ";
        obj_[i].second.dump_to(out, indent + 1);
        if (i + 1 < obj_.size()) out += ',';
        out += '\n';
      }
      out += pad;
      out += '}';
      break;
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  out += '\n';
  return out;
}

// --- parser --------------------------------------------------------------------

namespace {

struct Parser {
  const std::string& s;
  std::size_t pos = 0;
  std::string err;

  bool fail(const std::string& what) {
    if (err.empty())
      err = what + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == '\t' ||
                              s[pos] == '\n' || s[pos] == '\r'))
      ++pos;
  }

  bool consume(char c) {
    skip_ws();
    if (pos < s.size() && s[pos] == c) {
      ++pos;
      return true;
    }
    return fail(std::string("expected '") + c + "'");
  }

  bool literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (s.compare(pos, n, lit) != 0) return fail("bad literal");
    pos += n;
    return true;
  }

  bool parse_string(std::string* out) {
    if (!consume('"')) return false;
    out->clear();
    while (pos < s.size()) {
      char c = s[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= s.size()) return fail("dangling escape");
        char e = s[pos++];
        switch (e) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'n': *out += '\n'; break;
          case 't': *out += '\t'; break;
          case 'r': *out += '\r'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'u': {
            if (pos + 4 > s.size()) return fail("short \\u escape");
            unsigned v = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s[pos++];
              v <<= 4;
              if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
              else return fail("bad \\u escape");
            }
            // Bench reports are ASCII; encode BMP code points as UTF-8.
            if (v < 0x80) {
              *out += static_cast<char>(v);
            } else if (v < 0x800) {
              *out += static_cast<char>(0xC0 | (v >> 6));
              *out += static_cast<char>(0x80 | (v & 0x3F));
            } else {
              *out += static_cast<char>(0xE0 | (v >> 12));
              *out += static_cast<char>(0x80 | ((v >> 6) & 0x3F));
              *out += static_cast<char>(0x80 | (v & 0x3F));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        *out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Json* out) {
    skip_ws();
    if (pos >= s.size()) return fail("unexpected end of input");
    char c = s[pos];
    if (c == 'n') {
      if (!literal("null")) return false;
      *out = Json();
      return true;
    }
    if (c == 't') {
      if (!literal("true")) return false;
      *out = Json(true);
      return true;
    }
    if (c == 'f') {
      if (!literal("false")) return false;
      *out = Json(false);
      return true;
    }
    if (c == '"') {
      std::string str;
      if (!parse_string(&str)) return false;
      *out = Json(std::move(str));
      return true;
    }
    if (c == '[') {
      ++pos;
      *out = Json::array();
      skip_ws();
      if (pos < s.size() && s[pos] == ']') {
        ++pos;
        return true;
      }
      while (true) {
        Json v;
        if (!parse_value(&v)) return false;
        out->push_back(std::move(v));
        skip_ws();
        if (pos < s.size() && s[pos] == ',') {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == '{') {
      ++pos;
      *out = Json::object();
      skip_ws();
      if (pos < s.size() && s[pos] == '}') {
        ++pos;
        return true;
      }
      while (true) {
        skip_ws();
        std::string key;
        if (!parse_string(&key)) return false;
        if (!consume(':')) return false;
        Json v;
        if (!parse_value(&v)) return false;
        out->set(key, std::move(v));
        skip_ws();
        if (pos < s.size() && s[pos] == ',') {
          ++pos;
          continue;
        }
        return consume('}');
      }
    }
    if (c == '-' || (c >= '0' && c <= '9')) {
      // Validate against the JSON number grammar before converting:
      // strtod alone would also accept hex, "inf"/"nan", and leading zeros.
      const auto digit = [&](std::size_t i) {
        return i < s.size() && s[i] >= '0' && s[i] <= '9';
      };
      std::size_t q = pos;
      if (s[q] == '-') ++q;
      if (!digit(q)) return fail("bad number");
      if (s[q] == '0' && digit(q + 1)) return fail("leading zero in number");
      while (digit(q)) ++q;
      if (q < s.size() && s[q] == '.') {
        ++q;
        if (!digit(q)) return fail("bad number: missing fraction digits");
        while (digit(q)) ++q;
      }
      if (q < s.size() && (s[q] == 'e' || s[q] == 'E')) {
        ++q;
        if (q < s.size() && (s[q] == '+' || s[q] == '-')) ++q;
        if (!digit(q)) return fail("bad number: missing exponent digits");
        while (digit(q)) ++q;
      }
      const double d = std::strtod(s.substr(pos, q - pos).c_str(), nullptr);
      pos = q;
      *out = Json(d);
      return true;
    }
    return fail("unexpected character");
  }
};

}  // namespace

bool Json::parse(const std::string& text, Json* out, std::string* err) {
  Parser p{text, 0, {}};
  if (!p.parse_value(out)) {
    if (err != nullptr) *err = p.err;
    return false;
  }
  p.skip_ws();
  if (p.pos != text.size()) {
    if (err != nullptr)
      *err = "trailing garbage at offset " + std::to_string(p.pos);
    return false;
  }
  return true;
}

}  // namespace mgc
