// ThreadSanitizer happens-before annotations.
//
// TSan does not model standalone `std::atomic_thread_fence`: synchronization
// expressed as relaxed-atomic + fence (the Chase-Lev deque's push/steal
// hand-off) is correct under the C11 model but invisible to the race
// detector, which then reports the relaxed data read as racing with the
// owner's write. These macros attach the release/acquire edge to a
// synchronization object explicitly, and compile to nothing outside TSan.
//
// The safepoint handshake needs no annotations: it synchronizes through a
// mutex/condvar pair plus one seq_cst flag, all of which TSan models
// natively.
#pragma once

#if defined(__SANITIZE_THREAD__)
#define MGC_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MGC_TSAN 1
#endif
#endif
#ifndef MGC_TSAN
#define MGC_TSAN 0
#endif

#if MGC_TSAN
#include <sanitizer/tsan_interface.h>
#define MGC_TSAN_RELEASE(addr) __tsan_release(const_cast<void*>(static_cast<const volatile void*>(addr)))
#define MGC_TSAN_ACQUIRE(addr) __tsan_acquire(const_cast<void*>(static_cast<const volatile void*>(addr)))
#else
#define MGC_TSAN_RELEASE(addr) ((void)0)
#define MGC_TSAN_ACQUIRE(addr) ((void)0)
#endif
