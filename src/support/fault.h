// Deterministic fault injection.
//
// Every failure-prone operation in the runtime is guarded by a *fault
// site*: a named check point that normally does nothing, but can be armed
// to fail on a seeded, reproducible schedule. Sites cover the heap
// (allocation, TLAB/PLAB refill, expansion refusal), the collectors
// (forced promotion/evacuation failure, CMS concurrent-mode failure,
// stalled parallel workers) and the kv/net front-ends (commit-log write
// failure, full queues, short socket I/O, EPIPE).
//
// Cost model: with nothing armed, a check is a single relaxed atomic load
// and a bit test — cheap enough for pause-critical paths. The decision
// logic only runs once a site's bit is set in the global armed mask.
//
// Determinism: each site keeps a check counter; whether check number `n`
// fires is a pure function of (seed, site, n) plus the site's policy
// (probability / after / limit). Replaying the same spec and seed against
// the same check sequence reproduces the same injected-fault sequence.
//
// Configuration: programmatic (`fault::arm`) or via the environment:
//
//   MGC_FAULT="promotion-fail:after=3:limit=1;net-epipe=0.01"
//   MGC_FAULT_SEED=7
//
// Spec grammar (clauses joined by ';'):
//
//   clause  := site [ '=' probability ] { ':' option }
//   option  := 'after=' N        fire only from check number N on (0-based)
//            | 'limit=' M        fire at most M times
//            | 'oneshot'         shorthand for limit=1
//            | 'scope=' K        fire only at scoped checks with scope K
//                                ('shard=' and 'loop=' are aliases)
//
// A clause with no probability fires on every eligible check.
//
// Scopes: sharded subsystems (per-shard kv queues and commit logs, the
// multi-loop accept path) pass their shard/loop index to the check, so a
// spec like "commitlog-write:shard=2" injects failures into exactly one
// shard while the rest of the fleet stays healthy. A clause without a
// scope matches every check, scoped or not; a scoped clause never matches
// checks from unscoped call sites.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mgc::fault {

enum class Site : std::uint8_t {
  // heap
  kHeapAlloc = 0,    // whole slow-path allocation attempt fails
  kTlabRefill,       // TLAB refill from eden fails
  kPlabRefill,       // GC-worker PLAB refill (survivor/to-space) fails
  kOldAlloc,         // old-gen allocation (promotion target) fails
  kHeapExpand,       // heap expansion request refused
  // gc
  kPromotionFail,    // force promotion failure mid-evacuation (classic)
  kG1EvacFail,       // force G1 to-space exhaustion mid-copy
  kCmsConcurrentFail,// force CMS concurrent-mode failure in a concurrent phase
  kGcWorkerStall,    // simulate a slow/stalled parallel GC worker
  // kvstore
  kCommitLogWrite,   // commit-log append fails (scoped: shard index)
  kKvQueueFull,      // request queue reports full (load shed)
  kKvShardQueueFull, // one shard's submission queue reports full (scoped)
  // net
  kNetAccept,        // accept() drops the incoming connection (scoped: loop)
  kNetReadShort,     // recv() capped to 1 byte (short-count)
  kNetWriteShort,    // send() capped to 1 byte (short-count)
  kNetEpipe,         // send() fails as if the peer vanished (EPIPE)
  // replication (scoped: the node id of the node performing the action, so
  // a spec can break exactly one replica while the rest stay healthy)
  kReplAppendDrop,    // leader drops an outgoing append batch to one peer
  kReplAckDrop,       // follower drops its outgoing append/heartbeat ack
  kReplHeartbeatLoss, // leader's outgoing heartbeat to one peer is lost
  kReplFollowerStall, // follower's replication pump skips an iteration
  kNumSites,
};

inline constexpr std::size_t kNumSites =
    static_cast<std::size_t>(Site::kNumSites);

// Scope wildcard: matches every check (and is what unscoped call sites
// pass, so an unscoped policy keeps firing everywhere).
inline constexpr std::uint32_t kScopeAny = 0xFFFFFFFFu;

// Per-site firing policy. All fields are written only while the site is
// disarmed; arming publishes them.
struct Policy {
  double probability = 1.0;          // chance an eligible check fires
  std::uint64_t after = 0;           // first check number that may fire
  std::uint64_t limit = ~0ULL;       // max total fires
  std::uint32_t scope = kScopeAny;   // only checks with this scope fire
};

namespace internal {
// Bit i set <=> Site(i) is armed. The ONLY state the fast path touches.
extern std::atomic<std::uint32_t> g_armed_mask;
// Armed-path decision: counts the check, applies the policy. In fault.cpp.
bool fire_slow(Site s, std::uint32_t scope);
}  // namespace internal

// The check point. Returns true when the guarded operation should fail.
// Unarmed cost: one relaxed load + bit test. Sharded call sites pass their
// shard/loop index as `scope` so policies can target a single shard; the
// policy's scope (default: any) decides whether the check is eligible.
inline bool should_fire(Site s, std::uint32_t scope = kScopeAny) {
  const std::uint32_t mask =
      internal::g_armed_mask.load(std::memory_order_relaxed);
  if ((mask & (1U << static_cast<unsigned>(s))) == 0) return false;
  return internal::fire_slow(s, scope);
}

// --- programmatic API -------------------------------------------------------
void arm(Site s, const Policy& p = Policy{});
void disarm(Site s);
void disarm_all();           // also resets counters and the fired log
void set_seed(std::uint64_t seed);
std::uint64_t seed();

std::uint64_t check_count(Site s);  // checks observed while armed
std::uint64_t fire_count(Site s);   // checks that fired
// Check numbers (0-based, per site) of the first fires, capped; the replay
// tests compare these across runs.
std::vector<std::uint64_t> fired_checks(Site s);

const char* site_name(Site s);
bool parse_site(const std::string& name, Site* out);

// Parses a spec string and arms the named sites. Returns false (and fills
// *error, if given) on a malformed spec; sites armed before the bad clause
// stay armed.
bool parse_spec(const std::string& spec, std::string* error = nullptr);

// Reads MGC_FAULT / MGC_FAULT_SEED once per process and applies them.
// Called from the Vm constructor so `MGC_FAULT=... ./bench_foo` works with
// no code changes; a malformed spec aborts (a typo'd fault experiment must
// not silently run as a clean one).
void init_from_env();

// --- scoped helpers for tests ----------------------------------------------
class ScopedFault {
 public:
  explicit ScopedFault(Site s, const Policy& p = Policy{}) : site_(s) {
    arm(site_, p);
  }
  ~ScopedFault() { disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

 private:
  Site site_;
};

// Arms a full spec (with its own seed) and disarms everything on exit.
class ScopedSpec {
 public:
  ScopedSpec(const std::string& spec, std::uint64_t spec_seed);
  ~ScopedSpec();
  ScopedSpec(const ScopedSpec&) = delete;
  ScopedSpec& operator=(const ScopedSpec&) = delete;
};

}  // namespace mgc::fault
