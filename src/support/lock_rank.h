// Runtime lock-rank registry.
//
// Every long-lived lock in the runtime carries a LockRank: its position
// in the global acquisition order. The rule is HotSpot's: a thread may
// only acquire a lock whose rank is STRICTLY GREATER than every ranked
// lock it already holds. Two exceptions, both deliberate:
//
//   * same-rank ranks flagged below (the memtable stripes) may nest with
//     themselves as long as the lock addresses ascend — AllStripesLock
//     walks the stripe array in index (= address) order;
//   * a successful try_lock records the lock as held but is exempt from
//     the ordering check — a try_lock that would invert the order simply
//     fails instead of deadlocking (the commit log's memory-pressure
//     hook relies on this).
//
// Unranked locks (tests, short-lived scratch state) never touch the
// registry. Validation itself is off by default in release builds — each
// acquire then costs one relaxed atomic load and a branch — and on by
// default in debug (!NDEBUG) builds; MGC_LOCK_RANK=1/0 overrides either
// way. Violations die loudly with both lock names and the full held
// stack: a rank bug is a latent deadlock, never something to limp past.
//
// The same table drives tools/gclint's static lock-order pass: gclint
// parses this header for the rank values and the lock declarations for
// their ranks, so the static and runtime checkers cannot drift apart.
#pragma once

#include <cstdint>

namespace mgc {

// Acquisition order: a thread holding rank r may only acquire ranks > r.
// Outermost (coarsest, taken first) ranks are lowest. Gaps of 10 leave
// room to slot new locks without renumbering.
enum class LockRank : std::uint16_t {
  kUnranked = 0,        // not tracked; never registered
  // front-end shutdown paths (outermost: taken with nothing held)
  kNetShutdown = 10,    // net::NetServer shutdown_mu_
  kKvShutdown = 20,     // kv::Server shutdown_mu_
  kKvShard = 30,        // kv::Server per-shard queue mutex
  kAppData = 40,        // dacapo kernel table/store mutexes
  // replication (between the kv front-end and the storage layers: the
  // pump takes repl-state, then repl-log, then — with neither held — the
  // store path below; the Store::put commit hook takes repl-log alone)
  kReplState = 44,      // repl::Node state_mu_ (role/term/pending writes)
  kReplLog = 46,        // repl::ReplLog mu_ (per-shard entry vectors)
  // kvstore storage layers
  kStoreFlush = 50,     // kv::Store flush_mu_
  kCommitLog = 60,      // kv::CommitLog mu_ (replay puts rows under it)
  kMemtableStripe = 70, // kv::Memtable stripes; same-rank ascending allowed
  kSsTable = 80,        // kv::SsTableSet mu_
  // runtime
  kVmPressure = 90,     // Vm pressure_mu_
  kVmOps = 100,         // Vm ops_mu_ (VM-op queue)
  kVmMutators = 110,    // Vm mutators_mu_
  kVmGlobalRoots = 120, // Vm groots_mu_ (taken under the commit-log lock)
  kSafepoint = 130,     // SafepointCoordinator mu_ (leave_blocked nests
                        // inside every GuardedLock-wrapped mutex)
  kGcWorkerPool = 140,  // GcWorkerPool mu_
  kGcBackground = 150,  // CMS/G1 background-cycle bg_mu_
  kGcLog = 160,         // GcLog mu_ (taken under mutators_mu_)
  kGcBarrier = 170,     // SenseBarrier mu_
  // heap / pause internals (innermost spinlocks)
  kEvacAlloc = 180,     // G1 alloc_lock_, evacuation DestAlloc locks
  kRegionFree = 190,    // RegionManager free-list lock (under kEvacAlloc)
  kFreeListSpace = 195, // FreeListSpace allocation lock
  kSatb = 200,          // G1 SATB buffer lock
  kRemSet = 210,        // RememberedSet lock
  kPromotedList = 220,  // scavenge promoted-list flush lock
  // leaves that may be reached from almost anywhere
  kFault = 230,         // fault-injection slow-path g_mu
  kNetHandoff = 240,    // net per-loop handoff queue
  kNetSink = 250,       // net completion sink
};

namespace lockrank {

// True when acquisition-order validation is on. One relaxed load.
bool enabled();
// Programmatic override (tests; death tests turn validation on in
// release builds). Affects subsequent acquisitions process-wide.
void set_enabled(bool on);

const char* rank_name(LockRank r);

// Called by Mutex/SpinLock around the underlying lock operations.
// note_acquire validates (unless `trylock`) and pushes onto the calling
// thread's held stack; note_release pops (any position — condition-wait
// re-lock patterns can release out of stack order). Both are no-ops for
// kUnranked and when validation is disabled.
void note_acquire(const void* lock, LockRank r, const char* name,
                  bool trylock);
void note_release(const void* lock, LockRank r);

// Number of ranked locks the calling thread currently holds (tests).
int held_count();

}  // namespace lockrank
}  // namespace mgc
