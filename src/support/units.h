// Size units and the paper-scale mapping.
//
// The paper ran on a 64 GB machine; this reproduction scales every
// paper-quoted size by 1/1024 (GB -> MiB) so experiments complete on a
// laptop while preserving the *relative* heap geometry (heap : young :
// TLAB : card : region ratios). Benchmark output labels sizes in paper
// units via `scale::label`.
#pragma once

#include <cstddef>
#include <string>

namespace mgc {

inline constexpr std::size_t KiB = 1024;
inline constexpr std::size_t MiB = 1024 * KiB;
inline constexpr std::size_t GiB = 1024 * MiB;

namespace scale {

// One "paper gigabyte" / "paper megabyte" of heap in this reproduction.
inline constexpr std::size_t GB = MiB;
inline constexpr std::size_t MB = KiB;

// Human label for a scaled size, in paper units ("64GB", "200MB").
inline std::string label(std::size_t scaled_bytes) {
  const std::size_t paper_mb = scaled_bytes / MB;
  if (paper_mb >= 1024 && paper_mb % 1024 == 0)
    return std::to_string(paper_mb / 1024) + "GB";
  return std::to_string(paper_mb) + "MB";
}

// "64GB-12GB" style heap/young label, as used by the paper's Table 3.
inline std::string label(std::size_t scaled_heap, std::size_t scaled_young) {
  return label(scaled_heap) + "-" + label(scaled_young);
}

}  // namespace scale
}  // namespace mgc
