// Assertion and fatal-error helpers for the mgc runtime.
//
// MGC_CHECK is always on (release included): a managed-heap invariant
// violation must never be allowed to corrupt memory silently.
// MGC_DCHECK compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace mgc {

[[noreturn]] inline void panic(const char* file, int line, const char* msg) {
  std::fprintf(stderr, "mgc: fatal: %s:%d: %s\n", file, line, msg);
  std::fflush(stderr);
  std::abort();
}

}  // namespace mgc

#define MGC_CHECK(cond)                                     \
  do {                                                      \
    if (!(cond)) ::mgc::panic(__FILE__, __LINE__, #cond);   \
  } while (0)

#define MGC_CHECK_MSG(cond, msg)                            \
  do {                                                      \
    if (!(cond)) ::mgc::panic(__FILE__, __LINE__, msg);     \
  } while (0)

#ifdef NDEBUG
// sizeof keeps the operands referenced (no unused-variable/parameter
// warnings in release builds) without evaluating them.
#define MGC_DCHECK(cond) ((void)sizeof(!(cond)))
#else
#define MGC_DCHECK(cond) MGC_CHECK(cond)
#endif

#define MGC_UNREACHABLE(msg) ::mgc::panic(__FILE__, __LINE__, "unreachable: " msg)
