// Streaming and batch statistics used throughout the study:
// Welford running mean/variance, relative standard deviation (Table 2),
// and percentile extraction for latency series (Tables 5-7).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mgc {

// Numerically stable (Welford) running mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }
  // Sample variance / stddev (n-1 denominator).
  double variance() const;
  double stddev() const;
  // Relative standard deviation in percent (stddev / mean * 100),
  // the stability metric of the paper's Table 2.
  double rsd_percent() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exponentially weighted moving average, used by the adaptive sizing
// policies (per-mutator TLAB size, scavenge PLAB size): the first sample
// seeds the average, later samples are folded with weight `alpha`.
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x) {
    value_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seeded_ = true;
  }
  bool seeded() const { return seeded_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

// Batch helpers over a sample vector. `percentile` uses nearest-rank on a
// sorted copy; callers with big series should use Histogram instead.
double mean_of(const std::vector<double>& xs);
double stddev_of(const std::vector<double>& xs);
double rsd_percent_of(const std::vector<double>& xs);
double percentile_of(std::vector<double> xs, double p);  // p in [0,100]

}  // namespace mgc
