#include "support/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "support/check.h"

namespace mgc::lockrank {

namespace {

// -1 = uninitialized (read MGC_LOCK_RANK / NDEBUG on first use).
std::atomic<int> g_enabled{-1};

int initial_enabled() {
  const char* v = std::getenv("MGC_LOCK_RANK");  // NOLINT(concurrency-mt-unsafe)
  if (v != nullptr && *v != '\0') {
    return (std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0) ? 0 : 1;
  }
#ifdef NDEBUG
  return 0;
#else
  return 1;
#endif
}

struct Held {
  const void* lock;
  LockRank rank;
  const char* name;
};

// Per-thread stack of ranked locks. Fixed capacity: the deepest legal
// chain (shutdown → shard → store → log → stripe → safepoint → heap
// leaves) is far shorter; AllStripesLock's 16 same-rank stripes are the
// widest single step.
constexpr int kMaxHeld = 64;

struct HeldStack {
  Held slots[kMaxHeld];  // NOLINT(modernize-avoid-c-arrays)
  int depth = 0;
};

thread_local HeldStack t_held;

[[noreturn]] void die(const char* verb, const Held& incoming) {
  std::fprintf(stderr,
               "lock-rank violation: %s %s (rank %u, %p) while holding:\n",
               verb, incoming.name,
               static_cast<unsigned>(incoming.rank), incoming.lock);
  for (int i = t_held.depth - 1; i >= 0; --i) {
    const Held& h = t_held.slots[i];
    std::fprintf(stderr, "  #%d %s (rank %u, %p)\n", i, h.name,
                 static_cast<unsigned>(h.rank), h.lock);
  }
  std::fflush(stderr);
  panic("lock_rank", 0, "lock acquisition order violation");
}

}  // namespace

bool enabled() {
  int v = g_enabled.load(std::memory_order_relaxed);
  if (v < 0) {
    v = initial_enabled();
    g_enabled.store(v, std::memory_order_relaxed);
  }
  return v != 0;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

const char* rank_name(LockRank r) {
  switch (r) {
    case LockRank::kUnranked: return "unranked";
    case LockRank::kNetShutdown: return "net-shutdown";
    case LockRank::kKvShutdown: return "kv-shutdown";
    case LockRank::kKvShard: return "kv-shard";
    case LockRank::kAppData: return "app-data";
    case LockRank::kReplState: return "repl-state";
    case LockRank::kReplLog: return "repl-log";
    case LockRank::kStoreFlush: return "store-flush";
    case LockRank::kCommitLog: return "commit-log";
    case LockRank::kMemtableStripe: return "memtable-stripe";
    case LockRank::kSsTable: return "sstable";
    case LockRank::kVmPressure: return "vm-pressure";
    case LockRank::kVmOps: return "vm-ops";
    case LockRank::kVmMutators: return "vm-mutators";
    case LockRank::kVmGlobalRoots: return "vm-global-roots";
    case LockRank::kSafepoint: return "safepoint";
    case LockRank::kGcWorkerPool: return "gc-worker-pool";
    case LockRank::kGcBackground: return "gc-background";
    case LockRank::kGcLog: return "gc-log";
    case LockRank::kGcBarrier: return "gc-barrier";
    case LockRank::kEvacAlloc: return "evac-alloc";
    case LockRank::kRegionFree: return "region-free";
    case LockRank::kFreeListSpace: return "free-list-space";
    case LockRank::kSatb: return "satb";
    case LockRank::kRemSet: return "remset";
    case LockRank::kPromotedList: return "promoted-list";
    case LockRank::kFault: return "fault";
    case LockRank::kNetHandoff: return "net-handoff";
    case LockRank::kNetSink: return "net-sink";
  }
  return "?";
}

void note_acquire(const void* lock, LockRank r, const char* name,
                  bool trylock) {
  if (r == LockRank::kUnranked || !enabled()) return;
  HeldStack& hs = t_held;
  const Held incoming{lock, r, name};
  if (!trylock) {
    for (int i = 0; i < hs.depth; ++i) {
      const Held& h = hs.slots[i];
      if (h.rank < r) continue;
      // Same-rank nesting: only the memtable stripes allow it, and only
      // in ascending address order (AllStripesLock's index order).
      if (h.rank == r && r == LockRank::kMemtableStripe && h.lock < lock) {
        continue;
      }
      die("acquiring", incoming);
    }
  }
  if (hs.depth >= kMaxHeld) die("overflow tracking", incoming);
  hs.slots[hs.depth++] = incoming;
}

void note_release(const void* lock, LockRank r) {
  if (r == LockRank::kUnranked || !enabled()) return;
  HeldStack& hs = t_held;
  // Search from the top: releases are almost always LIFO, but condition
  // waits and multi-lock scopes may release out of order.
  for (int i = hs.depth - 1; i >= 0; --i) {
    if (hs.slots[i].lock == lock) {
      for (int j = i; j < hs.depth - 1; ++j) hs.slots[j] = hs.slots[j + 1];
      --hs.depth;
      return;
    }
  }
  // Not found: acquired while validation was off, or the lock is shared
  // across an enable/disable toggle. Ignore rather than die — the stack
  // is best-effort bookkeeping, the ORDER is the invariant.
}

int held_count() { return t_held.depth; }

}  // namespace mgc::lockrank
