#include "support/gc_worker_pool.h"

#include "support/check.h"

namespace mgc {

GcWorkerPool::GcWorkerPool(int num_workers) {
  MGC_CHECK(num_workers >= 1);
  threads_.reserve(static_cast<std::size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i)
    threads_.emplace_back([this, i] { worker_main(i); });
}

GcWorkerPool::~GcWorkerPool() {
  {
    MutexLock g(mu_);
    shutdown_ = true;
  }
  start_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void GcWorkerPool::run(int workers, const std::function<void(int)>& fn) {
  if (workers > size()) workers = size();
  MGC_CHECK(workers >= 1);
  MutexLock g(mu_);
  MGC_CHECK_MSG(task_ == nullptr, "GcWorkerPool::run is not reentrant");
  task_ = &fn;
  active_workers_ = workers;
  finished_ = 0;
  ++epoch_;
  start_cv_.notify_all();
  done_cv_.wait(g, [&]() MGC_REQUIRES(mu_) { return finished_ == active_workers_; });
  task_ = nullptr;
}

void GcWorkerPool::worker_main(int id) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    const std::function<void(int)>* task = nullptr;
    {
      MutexLock g(mu_);
      start_cv_.wait(g, [&]() MGC_REQUIRES(mu_) {
        return shutdown_ || (task_ != nullptr && epoch_ != seen_epoch && id < active_workers_);
      });
      if (shutdown_) return;
      seen_epoch = epoch_;
      task = task_;
    }
    (*task)(id);
    {
      MutexLock g(mu_);
      ++finished_;
    }
    done_cv_.notify_all();
  }
}

}  // namespace mgc
