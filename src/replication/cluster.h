// In-process replication cluster harness: N repl::Nodes on loopback, each
// with its own VM (so each replica's collector pauses independently — the
// point of the study), wired into a full mesh.
//
// Time is explicit: tick() advances every node's failure-detector clock by
// the same amount (tests drive it manually for determinism), or
// start_ticker() runs a background wall-clock ticker (benches). The pumps
// exchange frames continuously either way — ticks only gate heartbeats,
// election timeouts, retransmits, and pending-write age-out.
//
// verify() is the cluster-wide safety check the acceptance criteria hang
// off: prefix-consistent logs, commit never past the log, contiguous
// per-shard sequence numbers, and — when the caller passes the keys its
// clients saw acked — every acknowledged write present on every live
// replica with the right value length. It returns human-readable
// violations; tests assert the list is empty.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "replication/node.h"

namespace mgc::repl {

struct ClusterConfig {
  std::size_t nodes = 3;
  // Template for every node; id, ports, and start_as_leader are overridden
  // per replica. Node 0 bootstraps as leader of term 1.
  NodeConfig node;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::size_t size() const { return nodes_.size(); }
  Node& node(std::size_t i) { return *nodes_[i]; }
  std::vector<std::uint16_t> client_ports() const;

  // Advance every node's detector clock by n ticks.
  void tick(std::uint64_t n = 1);
  // Background ticker: one tick on every node each interval. Idempotent.
  void start_ticker(int interval_us);
  void stop_ticker();

  // Index of the unique highest-term leader; -1 when there is none (or
  // two nodes claim the same term — a safety violation verify() reports).
  int leader_index() const;

  // Bounded waits (wall clock; the pumps run continuously). Each returns
  // false on timeout. wait_leader and wait_commit assume ticks are being
  // driven (manually or by the ticker) when progress needs them.
  bool wait_leader(int* idx, int timeout_ms = 5000);
  bool wait_commit_at_least(std::uint64_t seq, int timeout_ms = 5000);
  // Quiesce: every node's log and commit index agree (requires a live
  // leader and no in-flight writes).
  bool wait_converged(int timeout_ms = 5000);

  // Cluster-wide safety check; empty result = clean. When acked_keys is
  // given, every key must be present (found, correct length) on every
  // node's store.
  std::vector<std::string> verify(
      const std::vector<std::uint64_t>* acked_keys = nullptr);

  // Stops the ticker, then shuts every node down. Idempotent; the
  // destructor calls it.
  void shutdown();

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  std::thread ticker_;
  std::atomic<bool> ticker_stop_{false};
  bool ticker_running_ = false;
};

}  // namespace mgc::repl
