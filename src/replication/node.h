// One replica of the replicated kvstore: a full node — its own managed
// VM (the collector under test), sharded store, kv::Server worker pools,
// and net::NetServer client front-end — plus the replication plane that
// makes a handful of such nodes a single-leader cluster.
//
// Data path. The node interposes on the client request path as the
// net front-end's kv::RequestSink:
//
//   * leader write  — forwarded to the local kv::Server; the store's
//     commit hook appends the committed row to the ReplLog (assigning the
//     global sequence number), and the completion is *held* until a
//     quorum of replicas (counting the leader) has acked that sequence.
//     Only then does the client see kOk: an acknowledged write survives
//     any single node failing.
//   * follower write — rejected with kNotLeader; ReplClient rotates.
//   * read — served locally on any node. A follower first checks its
//     staleness: if the leader's last-known per-shard sequence number is
//     more than staleness_bound entries ahead of the local shard, the
//     read is shed (kOverloaded) rather than served arbitrarily stale.
//     Reads are READ-UNCOMMITTED by design: every node applies entries to
//     its memtable before they are quorum-committed (the leader on local
//     commit, a follower on append), so a read can observe a value whose
//     write later fails (pending age-out, stepdown) or is truncated away
//     during divergence repair. This is deliberate for the GC-research
//     harness — the measured workload is memtable pressure, and gating
//     reads on commit_ would add a coordination hop the paper's workloads
//     don't have. The durability contract covers acknowledged WRITES
//     only; see DESIGN.md §14.
//
// Replication plane. A single "pump" thread per node owns all replication
// I/O: a loopback listener, inbound peer connections, and one outbound
// link per peer, multiplexed with poll(2). The pump is a registered VM
// mutator and wraps its poll wait in enter_blocked()/leave_blocked() —
// deliberately, because that is the failure detector's sensor: during a
// stop-the-world pause on this node the pump parks at the safepoint, its
// heartbeats stop, and peers observe exactly the silence a GC pause
// inflicts on a JVM-hosted replica.
//
// Failure detection is counted in ticks, not wall time: an external
// ticker (repl::Cluster) advances every node's tick target, the leader
// heartbeats every heartbeat_every_ticks, and a follower that misses
// election_timeout_ticks + id (the id staggers rivals) starts an
// election. Tests drive ticks manually, so fault-armed runs replay the
// same detector decisions regardless of machine speed.
//
// Elections are Raft-shaped over the single global log: candidate
// increments the term and requests votes; a voter grants at most one vote
// per term and only to a candidate whose log is at least as UP TO DATE as
// its own — higher (last entry term, last seq) lexicographically, the
// Raft §5.4.1 rule; length alone would let a deposed leader's long
// unacked suffix outrank newer committed entries. A quorum of grants
// makes the leader. Any frame with a higher term converts the receiver to
// a follower (an ex-leader rejoining this way fails its still-pending
// writes with kOverloaded — the client retry path). Divergence repair is
// term-driven: appends carry the term before the batch (prevLogTerm) and
// each entry's creating term, a follower truncates where terms disagree
// (never at or below its commit point), the leader trusts an ack only
// when the acked term matches its own log, and commit only advances at a
// current-term entry (Raft §5.4.2).
//
// Fault sites (all scoped by this node's id): repl-append-drop loses an
// outgoing append batch, repl-ack-drop suppresses an outgoing ack,
// repl-heartbeat-loss loses an outgoing heartbeat, repl-follower-stall
// makes the pump skip iterations while the node is not leader.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "kvstore/server.h"
#include "kvstore/sharded_store.h"
#include "net/net_server.h"
#include "net/socket.h"
#include "replication/repl_log.h"
#include "replication/repl_wire.h"
#include "runtime/vm.h"
#include "support/mutex.h"

namespace mgc::repl {

enum class Role : std::uint8_t { kFollower, kCandidate, kLeader };

struct PeerAddr {
  std::uint32_t id = 0;
  std::uint16_t port = 0;  // replication-plane loopback port
};

struct NodeConfig {
  std::uint32_t id = 0;
  std::size_t shards = 2;
  // Acks (counting the leader's own log) required to commit a write and
  // to win an election. 2 of 3 tolerates one lost replica.
  std::size_t quorum = 2;

  int heartbeat_every_ticks = 1;
  // Missed-heartbeat budget before a follower starts an election. The
  // node id is added as a deterministic stagger so rivals don't tie.
  int election_timeout_ticks = 8;
  // Ticks a peer's ack may stagnate behind the log before the leader
  // rewinds its stream to the acked position and resends.
  int retransmit_ticks = 2;

  // Follower reads are shed once the leader is known to be more than this
  // many entries ahead on the key's shard.
  std::uint64_t staleness_bound = 64;
  // Writes held for quorum; past the cap new writes shed (kOverloaded).
  std::size_t max_pending_writes = 256;
  // A held write that cannot reach quorum (followers stalled/partitioned)
  // is failed with kOverloaded after this many ticks — bounded latency,
  // never a hang.
  int pending_timeout_ticks = 64;

  std::size_t append_batch = 256;  // entries per append frame (<= codec max)
  bool start_as_leader = false;    // bootstrap: node 0 leads term 1
  std::uint16_t repl_port = 0;     // 0 = kernel-assigned

  VmConfig vm;              // this replica's collector + heap
  kv::StoreConfig store;    // whole-node budgets, sliced per shard
  kv::ServerConfig server;  // workers_per_shard is forced to 1 (see .cpp)
  net::NetServerConfig net; // client-facing front-end
};

// Counter snapshot (all monotone; readable while running).
struct NodeStats {
  std::uint64_t elections_started = 0;
  std::uint64_t elections_won = 0;
  std::uint64_t stepdowns = 0;
  std::uint64_t truncated_entries = 0;
  std::uint64_t entries_applied = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_lost = 0;   // suppressed by repl-heartbeat-loss
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_lost = 0;         // suppressed by repl-ack-drop
  std::uint64_t append_batches_sent = 0;
  std::uint64_t append_batches_lost = 0;  // suppressed by repl-append-drop
  std::uint64_t writes_acked = 0;      // completed kOk after quorum
  std::uint64_t writes_shed = 0;       // pending cap hit at submit
  std::uint64_t writes_aged_out = 0;   // quorum never reached in time
  std::uint64_t writes_failed_stepdown = 0;
  std::uint64_t not_leader_rejects = 0;
  std::uint64_t stale_reads_shed = 0;
  std::uint64_t follower_stalls = 0;   // repl-follower-stall fires
  std::uint64_t stream_gaps = 0;       // out-of-order append frames seen
  std::uint64_t links_reset = 0;       // live outbound links torn down
  std::uint64_t connect_failures = 0;  // failed peer connect attempts
};

class Node : public kv::RequestSink {
 public:
  explicit Node(const NodeConfig& cfg);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Wire the full mesh. Call once, after every node's constructor has
  // bound its replication listener (repl_port()), before ticking.
  void connect_peers(const std::vector<PeerAddr>& peers);

  // Advance the failure-detector clock by n ticks (the pump catches up
  // asynchronously; it wakes immediately).
  void advance_ticks(std::uint64_t n);

  // Client request entry point (the net front-end calls this; in-process
  // tests may too). Never blocks.
  kv::SubmitResult try_submit(const kv::Request& req,
                              CompletionFn done) override;

  // Graceful stop: client front-end, then the pump, then the kv workers.
  // Held writes fail with kShutdown. Idempotent; the destructor calls it.
  void shutdown();

  std::uint32_t id() const { return cfg_.id; }
  std::uint16_t client_port() const { return net_->port(); }
  std::uint16_t repl_port() const { return repl_port_; }

  Role role() const;
  std::uint64_t term() const { return term_.load(std::memory_order_acquire); }
  bool is_leader() const { return role() == Role::kLeader; }
  std::uint64_t commit_seq() const {
    return commit_.load(std::memory_order_acquire);
  }
  std::uint64_t ticks_processed() const {
    return ticks_done_.load(std::memory_order_acquire);
  }

  Vm& vm() { return vm_; }
  kv::ShardedStore& store() { return store_; }
  ReplLog& log() { return log_; }
  NodeStats stats() const;

 private:
  struct PeerState {
    std::int64_t match = -1;      // highest acked seq; -1 = unknown
    std::uint64_t next_send = 1;  // next seq to stream
    int stall_ticks = 0;
  };
  struct PendingWrite {
    std::uint64_t seq = 0;
    std::uint64_t enq_tick = 0;
    kv::Response resp;
    CompletionFn done;
  };
  // Pump-thread-local sockets and buffers (all defined in node.cpp).
  struct PumpIo;
  struct InConn;  // one inbound peer connection
  struct Link;    // one outbound peer link

  void pump_main();
  void load_peers(PumpIo& io);
  void try_connect(PumpIo& io);
  void process_ticks(Mutator& m, PumpIo& io);
  void on_tick(Mutator& m, PumpIo& io);
  void pump_io(Mutator& m, PumpIo& io);
  void read_inbound(Mutator& m, PumpIo& io, InConn& c);
  void dispatch(Mutator& m, PumpIo& io, const Frame& f);
  void on_heartbeat(Mutator& m, PumpIo& io, const Frame& f);
  void on_append(Mutator& m, PumpIo& io, const Frame& f);
  void on_ack(const Frame& f);
  void on_vote_req(PumpIo& io, const Frame& f);
  void on_vote_resp(PumpIo& io, const Frame& f);
  void send_to_peer(PumpIo& io, std::uint32_t peer_id, const Frame& f);
  void send_heartbeats(PumpIo& io);
  void send_pending_appends(PumpIo& io);
  void send_ack(PumpIo& io, std::uint32_t to_peer);
  void start_election_locked(PumpIo& io) MGC_REQUIRES(state_mu_);
  void become_leader_locked() MGC_REQUIRES(state_mu_);
  // Adopt a higher term: step down to follower; returns the pending
  // writes to fail (fired by the caller outside the lock).
  void adopt_term_locked(std::uint64_t term,
                         std::vector<PendingWrite>* failed)
      MGC_REQUIRES(state_mu_);
  // Raise commit_ to min(to, log last), updating per-shard committed
  // counts from the entries crossing the threshold.
  void advance_commit_locked(std::uint64_t to) MGC_REQUIRES(state_mu_);
  void take_committed_locked(std::vector<PendingWrite>* out)
      MGC_REQUIRES(state_mu_);
  // Undo truncated entries in the memtable: re-put the latest surviving
  // write of each removed key, or remove the row if the key only ever
  // existed in the truncated suffix.
  void repair_rows(Mutator& m, const std::vector<ReplLog::Entry>& removed);
  void truncate_to(Mutator& m, std::uint64_t upto);
  std::uint64_t on_commit(std::uint32_t shard, std::uint64_t key,
                          std::uint32_t value_len);
  void on_local_write_done(const kv::Response& r, const CompletionFn& done);
  bool read_is_fresh(std::uint64_t key);
  int peer_index(std::uint32_t peer_id) const;  // -1 when unknown
  void prod();  // wake the pump (eventfd)

  NodeConfig cfg_;
  Vm vm_;
  kv::ShardedStore store_;
  ReplLog log_;
  std::unique_ptr<kv::Server> server_;

  std::uint16_t repl_port_ = 0;
  net::UniqueFd listen_fd_;
  net::UniqueFd wake_fd_;

  mutable Mutex state_mu_{LockRank::kReplState, "repl-state"};
  Role role_ MGC_GUARDED_BY(state_mu_) = Role::kFollower;
  std::uint32_t voted_for_ MGC_GUARDED_BY(state_mu_) = kNoNode;
  std::uint64_t votes_mask_ MGC_GUARDED_BY(state_mu_) = 0;  // by peer index
  std::uint32_t leader_hint_ MGC_GUARDED_BY(state_mu_) = kNoNode;
  int ticks_since_hb_ MGC_GUARDED_BY(state_mu_) = 0;
  std::uint64_t now_tick_ MGC_GUARDED_BY(state_mu_) = 0;
  std::vector<PeerAddr> peers_ MGC_GUARDED_BY(state_mu_);
  std::vector<PeerState> peer_state_ MGC_GUARDED_BY(state_mu_);
  std::vector<PendingWrite> pending_ MGC_GUARDED_BY(state_mu_);
  // Leader: per-shard committed counts (heartbeat payload). Follower:
  // leader's last-known per-shard counts (staleness gate).
  std::vector<std::uint64_t> shard_committed_ MGC_GUARDED_BY(state_mu_);
  std::vector<std::uint64_t> leader_shard_last_ MGC_GUARDED_BY(state_mu_);
  std::uint64_t leader_commit_seen_ MGC_GUARDED_BY(state_mu_) = 0;

  // term_/commit_ are written under state_mu_ but read lock-free (commit
  // hook, stats, tests).
  std::atomic<std::uint64_t> term_{0};
  std::atomic<std::uint64_t> commit_{0};
  std::atomic<std::uint8_t> role_relaxed_{0};  // mirrors role_ for readers

  std::atomic<bool> have_peers_{false};
  std::atomic<std::uint64_t> tick_target_{0};
  std::atomic<std::uint64_t> ticks_done_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> shutting_down_{false};

  // stats
  std::atomic<std::uint64_t> elections_started_{0};
  std::atomic<std::uint64_t> elections_won_{0};
  std::atomic<std::uint64_t> stepdowns_{0};
  std::atomic<std::uint64_t> truncated_entries_{0};
  std::atomic<std::uint64_t> entries_applied_{0};
  std::atomic<std::uint64_t> heartbeats_sent_{0};
  std::atomic<std::uint64_t> heartbeats_lost_{0};
  std::atomic<std::uint64_t> acks_sent_{0};
  std::atomic<std::uint64_t> acks_lost_{0};
  std::atomic<std::uint64_t> append_batches_sent_{0};
  std::atomic<std::uint64_t> append_batches_lost_{0};
  std::atomic<std::uint64_t> writes_acked_{0};
  std::atomic<std::uint64_t> writes_shed_{0};
  std::atomic<std::uint64_t> writes_aged_out_{0};
  std::atomic<std::uint64_t> writes_failed_stepdown_{0};
  std::atomic<std::uint64_t> not_leader_rejects_{0};
  std::atomic<std::uint64_t> stale_reads_shed_{0};
  std::atomic<std::uint64_t> follower_stalls_{0};
  std::atomic<std::uint64_t> stream_gaps_{0};
  std::atomic<std::uint64_t> links_reset_{0};
  std::atomic<std::uint64_t> connect_failures_{0};

  std::thread pump_;
  // Declared last: destroyed first, so client traffic stops before the
  // replication plane and the kv workers do.
  std::unique_ptr<net::NetServer> net_;

  static constexpr std::uint32_t kNoNode = 0xFFFFFFFFu;
};

}  // namespace mgc::repl
