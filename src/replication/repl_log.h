// Replication log: one totally-ordered array of committed {seq, key,
// value_len} records per node — the stream the leader replays to
// followers. Global sequence numbers are contiguous and start at 1, so
// entry seq s lives at index s-1, lookup is O(1), and a gap is
// structurally impossible.
//
// Why one global log and not one log per store shard: elections pick the
// replica whose log is most up to date — highest (last term, last seq)
// lexicographically, the Raft rule. With independent per-shard logs there
// is no total order to compare — a candidate can be ahead on shard B but
// behind on shard A, and any aggregate rule (sum, max) can elect a
// replica that is *missing* a quorum-committed entry, whose truncation
// repair would then delete an acknowledged write. A single stream makes
// "my log is a prefix of yours" a total order, so the Raft vote rule is
// sound.
// Shard-per-core parallelism is unaffected: each entry records the store
// shard that owns its key (a pure function of the key), and carries that
// shard's own monotone, contiguous *shard sequence number* — assigned from
// the stream order, so every replica derives identical per-shard numbering
// without it appearing on the wire.
//
// The log lives in plain (unmanaged) memory on purpose: it is replication
// metadata, not application data, so it must survive — and not distort —
// the managed-heap GC behavior the benches measure. Value bytes are not
// stored at all; every replica regenerates them from the key
// (kv::synth_value), which keeps entries fixed-size regardless of row
// size.
//
// Thread model: the leader's commit hook appends from kv worker threads;
// the replication pump reads ranges, force-appends follower streams, and
// truncates diverged suffixes; follower read gating peeks at per-shard
// counts from net loop threads. One LockRank::kReplLog mutex guards it
// all; critical sections never allocate on the managed heap and never
// nest other locks.
#pragma once

#include <cstdint>
#include <vector>

#include "support/mutex.h"

namespace mgc::repl {

class ReplLog {
 public:
  struct Entry {
    std::uint64_t seq = 0;        // global stream position (1-based)
    std::uint64_t key = 0;
    std::uint32_t value_len = 0;
    std::uint32_t shard = 0;      // store shard owning the key
    std::uint64_t shard_seq = 0;  // monotone per-shard number (derived)
    std::uint64_t term = 0;       // term of the leader that appended it
  };

  explicit ReplLog(std::size_t shards);

  ReplLog(const ReplLog&) = delete;
  ReplLog& operator=(const ReplLog&) = delete;

  std::size_t shard_count() const { return shard_counts_cap_; }

  // Leader path: assigns and returns the next global sequence number
  // (last + 1); the entry's shard_seq becomes that shard's count.
  std::uint64_t append(std::uint32_t shard, std::uint64_t key,
                       std::uint32_t value_len, std::uint64_t term);

  // Follower path: append the replicated entry at its forced global
  // sequence number, idempotently. On kAppended, e->shard_seq is filled
  // with the derived per-shard number.
  enum class AppendAt {
    kAppended,   // e.seq == last+1: appended
    kDuplicate,  // e.seq <= last and the stored entry matches: ignored
    kConflict,   // e.seq <= last but key/len/shard differ: caller truncates
    kGap,        // e.seq > last+1: out of order (a dropped batch upstream)
  };
  AppendAt append_at(Entry* e);

  std::uint64_t last_seq() const;

  // Term of the entry at global seq (1-based). seq must be within the log.
  std::uint64_t term_at(std::uint64_t seq) const;

  // Atomic snapshot of {last seq, last term} — {0, 0} for an empty log.
  // Election and ack paths need the pair coherent; two separate reads
  // could straddle a concurrent append.
  void last(std::uint64_t* seq, std::uint64_t* term) const;

  // Per-shard entry counts == each shard's highest shard_seq. The follower
  // staleness gate compares these against the leader's heartbeat.
  std::uint64_t shard_last(std::uint32_t shard) const;
  std::vector<std::uint64_t> shard_lasts() const;

  // Copies up to `max` entries starting at global seq from_seq into *out
  // (cleared first). Returns the number copied (0 when past the end).
  std::size_t read_from(std::uint64_t from_seq, std::size_t max,
                        std::vector<Entry>* out) const;

  // Drops every entry with seq > upto (the rejoining ex-leader's diverged
  // unacked suffix) and rewinds the per-shard counts. The removed entries
  // are appended to *removed (when given) so the caller can repair the
  // memtable. Returns the number of entries removed.
  std::size_t truncate_above(std::uint64_t upto, std::vector<Entry>* removed);

  // Full copy of the log (determinism tests compare these across replicas
  // and across same-seed runs).
  std::vector<Entry> entries() const;

 private:
  mutable Mutex mu_{LockRank::kReplLog, "repl-log"};
  std::vector<Entry> entries_ MGC_GUARDED_BY(mu_);
  std::vector<std::uint64_t> shard_counts_ MGC_GUARDED_BY(mu_);
  std::size_t shard_counts_cap_ = 0;
};

}  // namespace mgc::repl
