#include "replication/repl_log.h"

#include "support/check.h"

namespace mgc::repl {

ReplLog::ReplLog(std::size_t shards) : shard_counts_cap_(shards) {
  MGC_CHECK(shards >= 1);
  MutexLock l(mu_);
  shard_counts_.assign(shards, 0);
}

std::uint64_t ReplLog::append(std::uint32_t shard, std::uint64_t key,
                              std::uint32_t value_len, std::uint64_t term) {
  MutexLock l(mu_);
  MGC_CHECK(shard < shard_counts_.size());
  Entry e;
  e.seq = entries_.size() + 1;
  e.key = key;
  e.value_len = value_len;
  e.shard = shard;
  e.shard_seq = ++shard_counts_[shard];
  e.term = term;
  entries_.push_back(e);
  return e.seq;
}

ReplLog::AppendAt ReplLog::append_at(Entry* e) {
  MGC_CHECK(e->seq >= 1);
  MutexLock l(mu_);
  MGC_CHECK(e->shard < shard_counts_.size());
  const std::uint64_t last = entries_.size();
  if (e->seq > last + 1) return AppendAt::kGap;
  if (e->seq == last + 1) {
    e->shard_seq = ++shard_counts_[e->shard];
    entries_.push_back(*e);
    return AppendAt::kAppended;
  }
  const Entry& have = entries_[e->seq - 1];
  // Identity is {term, key, value_len, shard}. The term is what actually
  // decides (Raft's Log Matching property: same seq + same term ⇒ same
  // entry); the content fields are a cross-check that the invariant holds.
  if (have.term == e->term && have.key == e->key &&
      have.value_len == e->value_len && have.shard == e->shard) {
    return AppendAt::kDuplicate;
  }
  return AppendAt::kConflict;
}

std::uint64_t ReplLog::term_at(std::uint64_t seq) const {
  MGC_CHECK(seq >= 1);
  MutexLock l(mu_);
  MGC_CHECK(seq <= entries_.size());
  return entries_[seq - 1].term;
}

void ReplLog::last(std::uint64_t* seq, std::uint64_t* term) const {
  MutexLock l(mu_);
  if (entries_.empty()) {
    *seq = 0;
    *term = 0;
  } else {
    *seq = entries_.size();
    *term = entries_.back().term;
  }
}

std::uint64_t ReplLog::last_seq() const {
  MutexLock l(mu_);
  return entries_.size();
}

std::uint64_t ReplLog::shard_last(std::uint32_t shard) const {
  MutexLock l(mu_);
  MGC_CHECK(shard < shard_counts_.size());
  return shard_counts_[shard];
}

std::vector<std::uint64_t> ReplLog::shard_lasts() const {
  MutexLock l(mu_);
  return shard_counts_;
}

std::size_t ReplLog::read_from(std::uint64_t from_seq, std::size_t max,
                               std::vector<Entry>* out) const {
  MGC_CHECK(from_seq >= 1);
  out->clear();
  MutexLock l(mu_);
  const std::uint64_t last = entries_.size();
  if (from_seq > last) return 0;
  std::size_t n = static_cast<std::size_t>(last - from_seq + 1);
  if (n > max) n = max;
  out->assign(entries_.begin() + static_cast<std::ptrdiff_t>(from_seq - 1),
              entries_.begin() +
                  static_cast<std::ptrdiff_t>(from_seq - 1 + n));
  return n;
}

std::size_t ReplLog::truncate_above(std::uint64_t upto,
                                    std::vector<Entry>* removed) {
  MutexLock l(mu_);
  const std::uint64_t last = entries_.size();
  if (upto >= last) return 0;
  const std::size_t n = static_cast<std::size_t>(last - upto);
  for (std::uint64_t i = upto; i < last; ++i) {
    const Entry& e = entries_[i];
    if (removed != nullptr) removed->push_back(e);
    MGC_CHECK(shard_counts_[e.shard] > 0);
    --shard_counts_[e.shard];
  }
  entries_.resize(static_cast<std::size_t>(upto));
  return n;
}

std::vector<ReplLog::Entry> ReplLog::entries() const {
  MutexLock l(mu_);
  return entries_;
}

}  // namespace mgc::repl
