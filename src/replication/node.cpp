#include "replication/node.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "net/wire.h"
#include "support/check.h"
#include "support/fault.h"

namespace mgc::repl {
namespace {

// Set while the pump applies a replicated entry (or repairs a truncated
// row): the commit hook must echo the stream's sequence number back
// instead of appending a fresh log entry.
struct ApplyCtx {
  bool active = false;
  std::uint64_t seq = 0;
};
thread_local ApplyCtx t_apply_ctx;

NodeConfig normalize(NodeConfig c) {
  if (c.shards < 1) c.shards = 1;
  if (c.quorum < 1) c.quorum = 1;
  if (c.heartbeat_every_ticks < 1) c.heartbeat_every_ticks = 1;
  if (c.retransmit_ticks < 1) c.retransmit_ticks = 1;
  if (c.append_batch < 1) c.append_batch = 1;
  if (c.append_batch > kMaxReplAppendCount) c.append_batch = kMaxReplAppendCount;
  // One worker per shard: the commit hook assigns sequence numbers in
  // memtable-application order, and followers replay the stream in
  // sequence order. A second worker on the same shard could invert the
  // memtable order of two same-key writes relative to their log order.
  c.server.workers_per_shard = 1;
  return c;
}

}  // namespace

struct Node::InConn {
  net::UniqueFd fd;
  std::vector<std::uint8_t> buf;
  std::size_t off = 0;
  bool dead = false;
};

struct Node::Link {
  PeerAddr peer;
  net::UniqueFd fd;
  std::vector<std::uint8_t> out;
  std::size_t off = 0;
  std::uint64_t last_attempt = ~0ULL;  // pump iteration of the last connect
  std::atomic<std::uint64_t>* reset_counter = nullptr;

  void reset() {
    if (fd.valid() && reset_counter) {
      reset_counter->fetch_add(1, std::memory_order_acq_rel);
    }
    fd.reset();
    out.clear();
    off = 0;
  }

  // Non-blocking flush of whatever is queued; a hard send error resets
  // the link (the next tick reconnects).
  void flush() {
    if (!fd.valid()) return;
    while (off < out.size()) {
      const ssize_t n = ::send(fd.get(), out.data() + off, out.size() - off,
                               MSG_NOSIGNAL);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      reset();
      return;
    }
    out.clear();
    off = 0;
  }
};

// All sockets and buffers the pump thread owns. Nothing here is touched
// by any other thread.
struct Node::PumpIo {
  std::vector<std::unique_ptr<InConn>> ins;
  std::vector<Link> links;
  std::vector<char> value_buf;
  std::uint64_t iter = 0;  // pump_io iterations; throttles reconnects
  bool peers_loaded = false;
};

Node::Node(const NodeConfig& cfg)
    : cfg_(normalize(cfg)),
      vm_(cfg_.vm),
      store_(vm_, cfg_.store, cfg_.shards),
      log_(cfg_.shards) {
  MGC_CHECK(cfg_.shards + 1 <= kMaxReplShards);
  shard_committed_.assign(cfg_.shards, 0);
  leader_shard_last_.assign(cfg_.shards, 0);

  listen_fd_ = net::listen_loopback(cfg_.repl_port, 16, &repl_port_, false);
  MGC_CHECK(listen_fd_.valid());
  wake_fd_ = net::UniqueFd(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC));
  MGC_CHECK(wake_fd_.valid());

  // Hooks must be wired before the server's workers exist (set_commit_hook
  // is not safe against concurrent puts).
  for (std::size_t s = 0; s < cfg_.shards; ++s) {
    store_.shard(s).set_commit_hook(
        [this, s](std::uint64_t key, std::uint32_t len) {
          return on_commit(static_cast<std::uint32_t>(s), key, len);
        });
  }
  server_ = std::make_unique<kv::Server>(vm_, store_, cfg_.server);

  if (cfg_.start_as_leader) {
    MutexLock l(state_mu_);
    role_ = Role::kLeader;
    role_relaxed_.store(static_cast<std::uint8_t>(Role::kLeader),
                        std::memory_order_release);
    leader_hint_ = cfg_.id;
    term_.store(1, std::memory_order_release);
  }

  pump_ = std::thread(&Node::pump_main, this);
  net_ = std::make_unique<net::NetServer>(*this, cfg_.net);
}

Node::~Node() { shutdown(); }

void Node::shutdown() {
  bool expected = false;
  if (!shutting_down_.compare_exchange_strong(expected, true)) return;

  // Fail held writes first — their responses flush through the still-live
  // front-end, so net shutdown's drain doesn't wait on writes that will
  // never reach quorum. New registrations are cut off by the flag (checked
  // under state_mu_ in on_local_write_done).
  std::vector<PendingWrite> failed;
  {
    MutexLock l(state_mu_);
    failed.swap(pending_);
  }
  for (PendingWrite& pw : failed) {
    pw.resp.status = kv::ExecStatus::kShutdown;
    pw.done(pw.resp);
  }
  net_->shutdown();
  stop_.store(true, std::memory_order_release);
  prod();
  if (pump_.joinable()) pump_.join();
  server_->shutdown();
}

Role Node::role() const {
  return static_cast<Role>(role_relaxed_.load(std::memory_order_acquire));
}

NodeStats Node::stats() const {
  NodeStats s;
  s.elections_started = elections_started_.load(std::memory_order_acquire);
  s.elections_won = elections_won_.load(std::memory_order_acquire);
  s.stepdowns = stepdowns_.load(std::memory_order_acquire);
  s.truncated_entries = truncated_entries_.load(std::memory_order_acquire);
  s.entries_applied = entries_applied_.load(std::memory_order_acquire);
  s.heartbeats_sent = heartbeats_sent_.load(std::memory_order_acquire);
  s.heartbeats_lost = heartbeats_lost_.load(std::memory_order_acquire);
  s.acks_sent = acks_sent_.load(std::memory_order_acquire);
  s.acks_lost = acks_lost_.load(std::memory_order_acquire);
  s.append_batches_sent = append_batches_sent_.load(std::memory_order_acquire);
  s.append_batches_lost = append_batches_lost_.load(std::memory_order_acquire);
  s.writes_acked = writes_acked_.load(std::memory_order_acquire);
  s.writes_shed = writes_shed_.load(std::memory_order_acquire);
  s.writes_aged_out = writes_aged_out_.load(std::memory_order_acquire);
  s.writes_failed_stepdown =
      writes_failed_stepdown_.load(std::memory_order_acquire);
  s.not_leader_rejects = not_leader_rejects_.load(std::memory_order_acquire);
  s.stale_reads_shed = stale_reads_shed_.load(std::memory_order_acquire);
  s.follower_stalls = follower_stalls_.load(std::memory_order_acquire);
  s.stream_gaps = stream_gaps_.load(std::memory_order_acquire);
  s.links_reset = links_reset_.load(std::memory_order_acquire);
  s.connect_failures = connect_failures_.load(std::memory_order_acquire);
  return s;
}

void Node::connect_peers(const std::vector<PeerAddr>& peers) {
  {
    MutexLock l(state_mu_);
    peers_.clear();
    for (const PeerAddr& p : peers) {
      if (p.id != cfg_.id) peers_.push_back(p);
    }
    MGC_CHECK(peers_.size() < 64);  // votes_mask_ is a u64 by peer index
    peer_state_.assign(peers_.size(), PeerState{});
  }
  have_peers_.store(true, std::memory_order_release);
  prod();
}

void Node::advance_ticks(std::uint64_t n) {
  tick_target_.fetch_add(n, std::memory_order_acq_rel);
  prod();
}

void Node::prod() {
  const std::uint64_t one = 1;
  // gclint: suppress(loop-purity) eventfd is EFD_NONBLOCK; write never stalls
  [[maybe_unused]] ssize_t n = ::write(wake_fd_.get(), &one, sizeof(one));
}

int Node::peer_index(std::uint32_t peer_id) const {
  for (std::size_t i = 0; i < peers_.size(); ++i) {
    if (peers_[i].id == peer_id) return static_cast<int>(i);
  }
  return -1;
}

// --- client request path ----------------------------------------------------

std::uint64_t Node::on_commit(std::uint32_t shard, std::uint64_t key,
                              std::uint32_t value_len) {
  if (t_apply_ctx.active) return t_apply_ctx.seq;
  return log_.append(shard, key, value_len,
                     term_.load(std::memory_order_relaxed));
}

bool Node::read_is_fresh(std::uint64_t key) {
  if (role() == Role::kLeader) return true;
  const std::size_t s = store_.shard_of(key);
  std::uint64_t leader_last = 0;
  {
    MutexLock l(state_mu_);
    leader_last = leader_shard_last_[s];
  }
  const std::uint64_t mine = log_.shard_last(static_cast<std::uint32_t>(s));
  return leader_last <= mine + cfg_.staleness_bound;
}

kv::SubmitResult Node::try_submit(const kv::Request& req, CompletionFn done) {
  if (shutting_down_.load(std::memory_order_acquire)) {
    return kv::SubmitResult::kShutdown;
  }
  if (req.op == kv::OpType::kRead) {
    if (!read_is_fresh(req.key)) {
      stale_reads_shed_.fetch_add(1, std::memory_order_acq_rel);
      return kv::SubmitResult::kOverloaded;
    }
    return server_->try_submit(req, std::move(done));
  }
  {
    MutexLock l(state_mu_);
    if (role_ != Role::kLeader) {
      not_leader_rejects_.fetch_add(1, std::memory_order_acq_rel);
      return kv::SubmitResult::kNotLeader;
    }
    if (pending_.size() >= cfg_.max_pending_writes) {
      writes_shed_.fetch_add(1, std::memory_order_acq_rel);
      return kv::SubmitResult::kOverloaded;
    }
  }
  return server_->try_submit(
      req, [this, cb = std::move(done)](const kv::Response& r) {
        on_local_write_done(r, cb);
      });
}

void Node::on_local_write_done(const kv::Response& r,
                               const CompletionFn& done) {
  // Failed puts (commit-log fault, OOM shed) and unsequenced rows pass
  // straight through — nothing was replicated.
  if (r.status != kv::ExecStatus::kOk || r.seq == 0) {
    done(r);
    return;
  }
  kv::Response resp = r;
  bool fire = false;
  {
    MutexLock l(state_mu_);
    if (shutting_down_.load(std::memory_order_acquire)) {
      resp.status = kv::ExecStatus::kOverloaded;
      fire = true;
    } else if (role_ != Role::kLeader) {
      // Stepped down between enqueue and execution: this row is part of
      // the diverged suffix the new leader will truncate. The client
      // retries against the new leader.
      writes_failed_stepdown_.fetch_add(1, std::memory_order_acq_rel);
      resp.status = kv::ExecStatus::kOverloaded;
      fire = true;
    } else if (cfg_.quorum <= 1) {
      advance_commit_locked(r.seq);
      fire = true;
    } else if (commit_.load(std::memory_order_relaxed) >= r.seq) {
      // The pump streamed and quorum-acked this row before the worker's
      // completion ran.
      fire = true;
    } else {
      PendingWrite pw;
      pw.seq = r.seq;
      pw.enq_tick = now_tick_;
      pw.resp = r;
      pw.done = done;
      pending_.push_back(std::move(pw));
    }
  }
  if (fire) {
    if (resp.status == kv::ExecStatus::kOk) {
      writes_acked_.fetch_add(1, std::memory_order_acq_rel);
    }
    done(resp);
  } else {
    prod();  // new log tail: stream it now, don't wait for a tick
  }
}

// --- commit bookkeeping (state_mu_ held) ------------------------------------

void Node::advance_commit_locked(std::uint64_t to) {
  const std::uint64_t cur = commit_.load(std::memory_order_relaxed);
  const std::uint64_t last = log_.last_seq();
  if (to > last) to = last;
  if (to <= cur) return;
  // Walk the entries crossing the commit threshold to keep the per-shard
  // committed counts (heartbeat payload) in step.
  std::vector<ReplLog::Entry> es;
  log_.read_from(cur + 1, static_cast<std::size_t>(to - cur), &es);
  for (const ReplLog::Entry& e : es) shard_committed_[e.shard] = e.shard_seq;
  commit_.store(to, std::memory_order_release);
}

void Node::take_committed_locked(std::vector<PendingWrite>* out) {
  const std::uint64_t c = commit_.load(std::memory_order_relaxed);
  auto it = pending_.begin();
  while (it != pending_.end()) {
    if (it->seq <= c) {
      out->push_back(std::move(*it));
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
}

// --- role transitions (state_mu_ held) --------------------------------------

void Node::adopt_term_locked(std::uint64_t term,
                             std::vector<PendingWrite>* failed) {
  if (role_ == Role::kLeader) {
    stepdowns_.fetch_add(1, std::memory_order_acq_rel);
    failed->insert(failed->end(),
                   std::make_move_iterator(pending_.begin()),
                   std::make_move_iterator(pending_.end()));
    pending_.clear();
  }
  role_ = Role::kFollower;
  role_relaxed_.store(static_cast<std::uint8_t>(Role::kFollower),
                      std::memory_order_release);
  term_.store(term, std::memory_order_release);
  voted_for_ = kNoNode;
  votes_mask_ = 0;
  leader_hint_ = kNoNode;
  ticks_since_hb_ = 0;
}

void Node::become_leader_locked() {
  role_ = Role::kLeader;
  role_relaxed_.store(static_cast<std::uint8_t>(Role::kLeader),
                      std::memory_order_release);
  leader_hint_ = cfg_.id;
  elections_won_.fetch_add(1, std::memory_order_acq_rel);
  const std::uint64_t last = log_.last_seq();
  for (PeerState& ps : peer_state_) {
    ps.match = -1;  // unknown until the peer's first ack anchors it
    ps.next_send = last + 1;
    ps.stall_ticks = 0;
  }
}

void Node::start_election_locked(PumpIo& io) {
  role_ = Role::kCandidate;
  role_relaxed_.store(static_cast<std::uint8_t>(Role::kCandidate),
                      std::memory_order_release);
  term_.store(term_.load(std::memory_order_relaxed) + 1,
              std::memory_order_release);
  voted_for_ = cfg_.id;
  votes_mask_ = 0;
  ticks_since_hb_ = 0;
  elections_started_.fetch_add(1, std::memory_order_acq_rel);
  if (cfg_.quorum <= 1) {
    become_leader_locked();
    return;
  }
  Frame vr;
  vr.kind = FrameKind::kVoteReq;
  vr.node = cfg_.id;
  vr.term = term_.load(std::memory_order_relaxed);
  std::uint64_t last_seq = 0;
  log_.last(&last_seq, &vr.last_term);  // the (term, seq) election rule
  vr.last_seqs.push_back(last_seq);
  for (std::uint64_t c : log_.shard_lasts()) vr.last_seqs.push_back(c);
  for (const PeerAddr& p : peers_) send_to_peer(io, p.id, vr);
}

// --- pump -------------------------------------------------------------------

void Node::pump_main() {
  Vm::MutatorScope scope(vm_, "repl-pump");
  Mutator& m = scope.mutator();
  PumpIo io;
  io.value_buf.resize(net::kMaxValueLen);
  while (!stop_.load(std::memory_order_acquire)) {
    m.poll();
    if (role() != Role::kLeader &&
        fault::should_fire(fault::Site::kReplFollowerStall, cfg_.id)) {
      // The stalled replica neither observes ticks nor touches its
      // sockets this iteration — frames pile up in kernel buffers and the
      // detector clock runs without it.
      follower_stalls_.fetch_add(1, std::memory_order_acq_rel);
      m.enter_blocked();
      std::this_thread::sleep_for(std::chrono::microseconds(500));
      m.leave_blocked();
      continue;
    }
    process_ticks(m, io);
    pump_io(m, io);
  }
}

void Node::process_ticks(Mutator& m, PumpIo& io) {
  const std::uint64_t target = tick_target_.load(std::memory_order_acquire);
  std::uint64_t done = ticks_done_.load(std::memory_order_relaxed);
  while (done < target && !stop_.load(std::memory_order_acquire)) {
    on_tick(m, io);
    ticks_done_.store(++done, std::memory_order_release);
    m.poll();
  }
}

void Node::on_tick(Mutator& m, PumpIo& io) {
  (void)m;
  bool send_hb = false;
  std::vector<PendingWrite> expired;
  {
    MutexLock l(state_mu_);
    ++now_tick_;
    if (role_ == Role::kLeader) {
      if (now_tick_ %
              static_cast<std::uint64_t>(cfg_.heartbeat_every_ticks) ==
          0) {
        send_hb = true;
      }
      // A peer whose ack has stagnated behind the log for
      // retransmit_ticks gets its stream rewound to the acked position —
      // dropped batches are the only way it falls behind for good.
      const std::uint64_t last = log_.last_seq();
      for (PeerState& ps : peer_state_) {
        if (ps.match >= 0 && static_cast<std::uint64_t>(ps.match) < last) {
          if (++ps.stall_ticks >= cfg_.retransmit_ticks) {
            ps.next_send = static_cast<std::uint64_t>(ps.match) + 1;
            ps.stall_ticks = 0;
          }
        } else {
          ps.stall_ticks = 0;
        }
      }
      auto it = pending_.begin();
      while (it != pending_.end()) {
        if (now_tick_ - it->enq_tick >
            static_cast<std::uint64_t>(cfg_.pending_timeout_ticks)) {
          expired.push_back(std::move(*it));
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      // The deterministic failure detector: a missed-heartbeat COUNT, not
      // a wall-clock timeout, with the node id staggering rivals.
      if (++ticks_since_hb_ >=
          cfg_.election_timeout_ticks + static_cast<int>(cfg_.id)) {
        start_election_locked(io);
      }
    }
  }
  if (send_hb) send_heartbeats(io);
  for (PendingWrite& pw : expired) {
    writes_aged_out_.fetch_add(1, std::memory_order_acq_rel);
    pw.resp.status = kv::ExecStatus::kOverloaded;
    pw.done(pw.resp);
  }
}

void Node::load_peers(PumpIo& io) {
  if (io.peers_loaded || !have_peers_.load(std::memory_order_acquire)) {
    return;
  }
  MutexLock l(state_mu_);
  for (const PeerAddr& p : peers_) {
    Link link;
    link.peer = p;
    link.reset_counter = &links_reset_;
    io.links.push_back(std::move(link));
  }
  io.peers_loaded = true;
}

void Node::try_connect(PumpIo& io) {
  // Retry throttled by pump iterations (~1ms each), NOT by ticks: link
  // liveness must not depend on anyone advancing the detector clock, or a
  // connect that fails before the first tick leaves the stream down for
  // good in a tick-free cluster.
  constexpr std::uint64_t kRetryEveryIters = 32;
  for (Link& link : io.links) {
    if (link.fd.valid()) continue;
    if (link.last_attempt != ~0ULL &&
        io.iter - link.last_attempt < kRetryEveryIters) {
      continue;
    }
    link.last_attempt = io.iter;
    link.fd = net::connect_tcp("127.0.0.1", link.peer.port);
    if (!link.fd.valid()) {
      connect_failures_.fetch_add(1, std::memory_order_acq_rel);
      continue;
    }
    net::set_nonblocking(link.fd.get());
    Frame hello;
    hello.kind = FrameKind::kHello;
    hello.node = cfg_.id;
    hello.term = term_.load(std::memory_order_acquire);
    encode(hello, link.out);
    // A follower re-anchors the leader's ack cursor as soon as the link is
    // back: any ack lost while the link was down would otherwise only be
    // re-solicited by a (tick-driven) heartbeat. Non-leaders ignore acks,
    // so this is harmless when the peer isn't the leader.
    if (role() == Role::kFollower) send_ack(io, link.peer.id);
  }
}

void Node::send_to_peer(PumpIo& io, std::uint32_t peer_id, const Frame& f) {
  for (Link& link : io.links) {
    if (link.peer.id != peer_id) continue;
    if (!link.fd.valid()) return;  // lost in flight; retransmit recovers
    if (link.out.size() > (8u << 20)) {
      link.reset();  // peer wedged long enough to back up 8 MB
      return;
    }
    encode(f, link.out);
    return;
  }
}

void Node::send_heartbeats(PumpIo& io) {
  Frame hb;
  {
    MutexLock l(state_mu_);
    if (role_ != Role::kLeader) return;
    hb.kind = FrameKind::kHeartbeat;
    hb.node = cfg_.id;
    hb.term = term_.load(std::memory_order_relaxed);
    hb.shards.push_back(ShardSeqs{commit_.load(std::memory_order_relaxed),
                                  log_.last_seq()});
    const std::vector<std::uint64_t> lasts = log_.shard_lasts();
    for (std::size_t s = 0; s < lasts.size(); ++s) {
      hb.shards.push_back(ShardSeqs{shard_committed_[s], lasts[s]});
    }
  }
  for (Link& link : io.links) {
    if (fault::should_fire(fault::Site::kReplHeartbeatLoss, cfg_.id)) {
      heartbeats_lost_.fetch_add(1, std::memory_order_acq_rel);
      continue;
    }
    send_to_peer(io, link.peer.id, hb);
    heartbeats_sent_.fetch_add(1, std::memory_order_acq_rel);
  }
}

void Node::send_pending_appends(PumpIo& io) {
  if (role() != Role::kLeader) return;
  const auto link_up = [&io](std::uint32_t peer_id) {
    for (const Link& link : io.links) {
      if (link.peer.id == peer_id) return link.fd.valid();
    }
    return false;
  };
  MutexLock l(state_mu_);
  if (role_ != Role::kLeader) return;
  const std::uint64_t last = log_.last_seq();
  const std::uint64_t commit = commit_.load(std::memory_order_relaxed);
  const std::uint64_t term = term_.load(std::memory_order_relaxed);
  std::vector<ReplLog::Entry> es;
  for (std::size_t i = 0; i < peer_state_.size(); ++i) {
    PeerState& ps = peer_state_[i];
    // A down link holds the stream where it is: advancing next_send past
    // entries nobody could carry would strand them until a (tick-driven)
    // retransmit rewind — a liveness hole in a tick-free cluster. The
    // injected append-drop below is different by design: that batch IS
    // sent and lost, and the retransmit timer is its recovery path.
    if (!link_up(peers_[i].id)) continue;
    // next_send governs the stream even before the peer's first ack
    // anchors match: a peer that is actually elsewhere answers with its
    // real position (gap ack or conflict truncation) and the retransmit
    // timer rewinds to it. Waiting for an ack here would deadlock a
    // tick-free cluster, since only heartbeats (tick-driven) solicit acks.
    int batches = 0;
    while (ps.next_send <= last && batches < 4) {
      const std::uint64_t first = ps.next_send;
      const std::size_t n = log_.read_from(first, cfg_.append_batch, &es);
      if (n == 0) break;
      ps.next_send += n;
      ++batches;
      if (fault::should_fire(fault::Site::kReplAppendDrop, cfg_.id)) {
        // The batch is "sent" and lost on the wire: the peer's ack
        // stagnates and the retransmit timer rewinds next_send to it.
        append_batches_lost_.fetch_add(1, std::memory_order_acq_rel);
        continue;
      }
      Frame ap;
      ap.kind = FrameKind::kAppend;
      ap.node = cfg_.id;
      ap.term = term;
      ap.shard = 0;  // entries route by key; see repl_wire.h
      ap.commit_seq = commit;
      // The Raft consistency check: the follower compares this against
      // its own entry just before the batch to detect a diverged prefix.
      ap.prev_term = first >= 2 ? log_.term_at(first - 1) : 0;
      ap.entries.reserve(n);
      for (const ReplLog::Entry& e : es) {
        ap.entries.push_back(AppendEntry{e.seq, e.key, e.term, e.value_len});
      }
      send_to_peer(io, peers_[i].id, ap);
      append_batches_sent_.fetch_add(1, std::memory_order_acq_rel);
    }
  }
}

void Node::send_ack(PumpIo& io, std::uint32_t to_peer) {
  if (fault::should_fire(fault::Site::kReplAckDrop, cfg_.id)) {
    acks_lost_.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  Frame a;
  a.kind = FrameKind::kAck;
  a.node = cfg_.id;
  a.term = term_.load(std::memory_order_acquire);
  a.shard = 0;
  // Highest contiguous applied {seq, term}, snapshotted together: the
  // term lets the leader verify the ack names ITS entry at that position.
  log_.last(&a.ack_seq, &a.ack_term);
  send_to_peer(io, to_peer, a);
  acks_sent_.fetch_add(1, std::memory_order_acq_rel);
}

void Node::pump_io(Mutator& m, PumpIo& io) {
  ++io.iter;
  load_peers(io);
  try_connect(io);

  // Poll-set layout: [wake, listener, ins..., valid links...]. Connections
  // accepted while handling this poll join the set next iteration.
  const std::size_t n_ins = io.ins.size();
  std::vector<pollfd> fds;
  fds.reserve(2 + n_ins + io.links.size());
  fds.push_back(pollfd{wake_fd_.get(), POLLIN, 0});
  fds.push_back(pollfd{listen_fd_.get(), POLLIN, 0});
  for (const auto& c : io.ins) {
    fds.push_back(pollfd{c->fd.get(), POLLIN, 0});
  }
  for (const Link& link : io.links) {
    if (!link.fd.valid()) continue;
    short ev = POLLIN;  // peers never write here; POLLIN detects close
    if (link.off < link.out.size()) ev |= POLLOUT;
    fds.push_back(pollfd{link.fd.get(), ev, 0});
  }

  // The failure detector's sensor: a stop-the-world pause on this VM
  // parks the pump right here (leave_blocked waits out the pause), so a
  // leader pausing longer than the heartbeat budget goes silent exactly
  // like a JVM-hosted replica would.
  m.enter_blocked();
  const int nready = ::poll(fds.data(), fds.size(), 1);
  m.leave_blocked();
  if (nready < 0 && errno != EINTR) return;

  // wake eventfd
  if (fds[0].revents & POLLIN) {
    std::uint64_t v = 0;
    while (::read(wake_fd_.get(), &v, sizeof(v)) > 0) {
    }
  }
  // listener
  if (fds[1].revents & POLLIN) {
    for (;;) {
      const int cfd = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (cfd < 0) break;
      net::set_nonblocking(cfd);
      auto conn = std::make_unique<InConn>();
      conn->fd = net::UniqueFd(cfd);
      io.ins.push_back(std::move(conn));
    }
  }

  // Inbound frames (index-aligned with the poll-set prefix).
  for (std::size_t i = 0; i < n_ins; ++i) {
    if (fds[2 + i].revents & (POLLIN | POLLERR | POLLHUP)) {
      read_inbound(m, io, *io.ins[i]);
    }
  }
  io.ins.erase(std::remove_if(io.ins.begin(), io.ins.end(),
                              [](const std::unique_ptr<InConn>& c) {
                                return c->dead;
                              }),
               io.ins.end());

  // Outbound links: detect closes (flush happens below regardless).
  for (std::size_t fi = 2 + n_ins; fi < fds.size(); ++fi) {
    for (Link& link : io.links) {
      if (!link.fd.valid() || link.fd.get() != fds[fi].fd) continue;
      if (fds[fi].revents & (POLLERR | POLLHUP)) {
        link.reset();
      } else if (fds[fi].revents & POLLIN) {
        std::uint8_t junk[256];
        const ssize_t n = ::recv(link.fd.get(), junk, sizeof(junk), 0);
        if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
          link.reset();
        }
      }
      break;
    }
  }

  send_pending_appends(io);
  for (Link& link : io.links) link.flush();
}

void Node::read_inbound(Mutator& m, PumpIo& io, InConn& c) {
  std::uint8_t chunk[16384];
  for (;;) {
    const ssize_t n = ::recv(c.fd.get(), chunk, sizeof(chunk), 0);
    if (n > 0) {
      c.buf.insert(c.buf.end(), chunk, chunk + n);
      if (c.buf.size() > (16u << 20)) {
        c.dead = true;  // runaway peer
        return;
      }
      continue;
    }
    if (n == 0) {
      c.dead = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    c.dead = true;
    break;
  }
  // Decode every complete frame buffered so far, even on a dying
  // connection — the bytes already arrived.
  for (;;) {
    Frame f;
    std::size_t consumed = 0;
    const DecodeResult r =
        decode(c.buf.data() + c.off, c.buf.size() - c.off, &consumed, &f);
    if (r == DecodeResult::kFrame) {
      c.off += consumed;
      dispatch(m, io, f);
      continue;
    }
    if (r == DecodeResult::kError) {
      c.dead = true;
    }
    break;
  }
  if (c.off > 0) {
    c.buf.erase(c.buf.begin(),
                c.buf.begin() + static_cast<std::ptrdiff_t>(c.off));
    c.off = 0;
  }
}

// --- protocol ----------------------------------------------------------------

void Node::dispatch(Mutator& m, PumpIo& io, const Frame& f) {
  if (f.kind == FrameKind::kHello) return;  // every frame carries its sender

  // Term preamble: a higher term converts anyone to follower (an
  // ex-leader fails its held writes — the client retry path); a lower
  // term is stale and ignored, except that a stale candidate is told the
  // current term so it catches up.
  std::vector<PendingWrite> failed;
  bool stale = false;
  {
    MutexLock l(state_mu_);
    const std::uint64_t mine = term_.load(std::memory_order_relaxed);
    if (f.term > mine) {
      adopt_term_locked(f.term, &failed);
    } else if (f.term < mine) {
      stale = true;
    }
  }
  for (PendingWrite& pw : failed) {
    writes_failed_stepdown_.fetch_add(1, std::memory_order_acq_rel);
    pw.resp.status = kv::ExecStatus::kOverloaded;
    pw.done(pw.resp);
  }
  if (stale) {
    if (f.kind == FrameKind::kVoteReq) {
      Frame resp;
      resp.kind = FrameKind::kVoteResp;
      resp.node = cfg_.id;
      resp.term = term_.load(std::memory_order_acquire);
      resp.granted = false;
      send_to_peer(io, f.node, resp);
    }
    return;
  }

  switch (f.kind) {
    case FrameKind::kHeartbeat: on_heartbeat(m, io, f); break;
    case FrameKind::kAppend: on_append(m, io, f); break;
    case FrameKind::kAck: on_ack(f); break;
    case FrameKind::kVoteReq: on_vote_req(io, f); break;
    case FrameKind::kVoteResp: on_vote_resp(io, f); break;
    case FrameKind::kHello: break;
  }
}

void Node::on_heartbeat(Mutator& m, PumpIo& io, const Frame& f) {
  if (f.shards.empty()) return;
  bool need_trunc = false;
  std::uint64_t trunc_to = 0;
  {
    MutexLock l(state_mu_);
    if (role_ == Role::kLeader) return;  // same term: impossible sender
    role_ = Role::kFollower;
    role_relaxed_.store(static_cast<std::uint8_t>(Role::kFollower),
                        std::memory_order_release);
    leader_hint_ = f.node;
    ticks_since_hb_ = 0;
    const ShardSeqs& g = f.shards[0];
    if (g.commit_seq > leader_commit_seen_) {
      leader_commit_seen_ = g.commit_seq;
    }
    for (std::size_t i = 1;
         i < f.shards.size() && i - 1 < leader_shard_last_.size(); ++i) {
      leader_shard_last_[i - 1] = f.shards[i].last_seq;
    }
    if (log_.last_seq() > g.last_seq) {
      // Our log extends past the leader's: the unacked suffix a dead
      // leader left behind. The live leader is authoritative — but never
      // below our own commit point: a stale heartbeat (buffered on an old
      // connection, drained late) must not delete quorum-committed
      // entries, and leader completeness guarantees the live leader holds
      // everything we committed.
      need_trunc = true;
      trunc_to = std::max(g.last_seq,
                          commit_.load(std::memory_order_relaxed));
    }
  }
  if (need_trunc) truncate_to(m, trunc_to);
  {
    MutexLock l(state_mu_);
    advance_commit_locked(leader_commit_seen_);
  }
  send_ack(io, f.node);
}

void Node::on_append(Mutator& m, PumpIo& io, const Frame& f) {
  {
    MutexLock l(state_mu_);
    if (role_ == Role::kLeader) return;
    role_ = Role::kFollower;
    role_relaxed_.store(static_cast<std::uint8_t>(Role::kFollower),
                        std::memory_order_release);
    leader_hint_ = f.node;
    ticks_since_hb_ = 0;
    if (f.commit_seq > leader_commit_seen_) {
      leader_commit_seen_ = f.commit_seq;
    }
  }
  // Prev-entry consistency check (Raft's prevLogTerm): if our entry just
  // before the batch carries a different term than the leader says it
  // should, our prefix has diverged there — truncate past it and ack the
  // rewound position so the leader probes further back.
  const std::uint64_t first = f.entries.front().seq;
  if (first >= 2 && first - 1 <= log_.last_seq() &&
      log_.term_at(first - 1) != f.prev_term) {
    truncate_to(m, first - 2);
    send_ack(io, f.node);
    return;
  }
  for (const AppendEntry& ae : f.entries) {
    ReplLog::Entry le;
    le.seq = ae.seq;
    le.key = ae.key;
    le.value_len = ae.value_len;
    le.shard = static_cast<std::uint32_t>(store_.shard_of(ae.key));
    le.term = ae.term;  // the CREATING leader's term, not the streamer's
    ReplLog::AppendAt r = log_.append_at(&le);
    if (r == ReplLog::AppendAt::kGap) {
      // A batch ahead of us was dropped; everything further in this frame
      // is also past the gap. The ack below tells the leader where we
      // really are, and its retransmit timer rewinds.
      stream_gaps_.fetch_add(1, std::memory_order_acq_rel);
      break;
    }
    if (r == ReplLog::AppendAt::kDuplicate) continue;
    if (r == ReplLog::AppendAt::kConflict) {
      // A different record at this seq: a dead leader's suffix. Truncate
      // it (repairing rows) and take the live leader's record instead.
      truncate_to(m, ae.seq - 1);
      r = log_.append_at(&le);
      if (r != ReplLog::AppendAt::kAppended) break;
    }
    kv::synth_value(le.key, io.value_buf.data(), le.value_len);
    t_apply_ctx = ApplyCtx{true, le.seq};
    const bool ok = store_.shard(le.shard).put(m, le.key, io.value_buf.data(),
                                               le.value_len);
    t_apply_ctx = ApplyCtx{};
    if (!ok) {
      // Injected commit-log failure on this replica: keep log == store by
      // undoing the append; the leader retransmits from our ack.
      log_.truncate_above(le.seq - 1, nullptr);
      break;
    }
    entries_applied_.fetch_add(1, std::memory_order_acq_rel);
  }
  {
    MutexLock l(state_mu_);
    advance_commit_locked(leader_commit_seen_);
  }
  send_ack(io, f.node);
}

void Node::on_ack(const Frame& f) {
  std::vector<PendingWrite> fire;
  {
    MutexLock l(state_mu_);
    if (role_ != Role::kLeader) return;
    const int idx = peer_index(f.node);
    if (idx < 0) return;
    PeerState& ps = peer_state_[static_cast<std::size_t>(idx)];
    const std::uint64_t mylast = log_.last_seq();
    // Trust the ack — advance the peer's match point — only when the
    // peer's entry at ack_seq has the same term as OURS at ack_seq: the
    // Log Matching property then makes its whole prefix identical to
    // ours. An unverified ack (position we don't hold, or a different
    // term there) comes from a diverged suffix; counting it toward
    // quorum would commit entries the peer does not actually have.
    const bool verified =
        f.ack_seq == 0 ||
        (f.ack_seq <= mylast && log_.term_at(f.ack_seq) == f.ack_term);
    if (verified) {
      if (static_cast<std::int64_t>(f.ack_seq) > ps.match) {
        ps.match = static_cast<std::int64_t>(f.ack_seq);
        ps.stall_ticks = 0;
      }
      if (ps.next_send < f.ack_seq + 1) ps.next_send = f.ack_seq + 1;
    } else if (f.ack_seq >= 1 && ps.next_send > f.ack_seq) {
      // Diverged peer: probe backward without touching match. Streaming
      // from its claimed position makes the next batch carry prev_term
      // for ack_seq-1 (or conflict at ack_seq itself), truncating the
      // divergence one round at a time until its acks verify again.
      ps.next_send = f.ack_seq;
    }
    // Quorum rule: a seq is committed once quorum members' logs (ours
    // counts) contain it. Sort acked positions descending; the
    // (quorum-1)th value is the frontier.
    std::vector<std::uint64_t> acked;
    acked.reserve(peer_state_.size() + 1);
    acked.push_back(mylast);
    for (const PeerState& p : peer_state_) {
      acked.push_back(p.match < 0 ? 0
                                  : static_cast<std::uint64_t>(p.match));
    }
    std::sort(acked.begin(), acked.end(), std::greater<std::uint64_t>());
    if (cfg_.quorum <= acked.size()) {
      const std::uint64_t frontier = acked[cfg_.quorum - 1];
      // Raft §5.4.2: only an entry of the CURRENT term may be counted
      // toward commitment (earlier entries then commit transitively with
      // it). A quorum-replicated entry from an older term can still be
      // overwritten by a later leader until a current-term entry sits
      // committed above it. Liveness note: inherited entries stay
      // uncommitted until the first current-term write lands — this
      // harness always writes through a new leader, so no no-op entry is
      // appended on election.
      if (frontier >= 1 &&
          frontier > commit_.load(std::memory_order_relaxed) &&
          log_.term_at(frontier) ==
              term_.load(std::memory_order_relaxed)) {
        advance_commit_locked(frontier);
      }
    }
    take_committed_locked(&fire);
  }
  for (PendingWrite& pw : fire) {
    writes_acked_.fetch_add(1, std::memory_order_acq_rel);
    pw.resp.status = kv::ExecStatus::kOk;
    pw.done(pw.resp);
  }
}

void Node::on_vote_req(PumpIo& io, const Frame& f) {
  bool grant = false;
  std::uint64_t myterm = 0;
  {
    MutexLock l(state_mu_);
    myterm = term_.load(std::memory_order_relaxed);
    if (f.term == myterm && role_ != Role::kLeader) {
      const std::uint64_t cand_last =
          f.last_seqs.empty() ? 0 : f.last_seqs[0];
      std::uint64_t my_last = 0;
      std::uint64_t my_last_term = 0;
      log_.last(&my_last, &my_last_term);
      // One vote per term, and only for a candidate at least as up to
      // date as us: higher last-entry term wins outright; equal terms
      // compare by length (Raft §5.4.1). Length alone is NOT enough — a
      // deposed leader's long unacked suffix must not outrank a shorter
      // log holding newer-term quorum-committed entries (the fig-8
      // lost-write scenario).
      const bool up_to_date =
          f.last_term > my_last_term ||
          (f.last_term == my_last_term && cand_last >= my_last);
      if ((voted_for_ == kNoNode || voted_for_ == f.node) && up_to_date) {
        grant = true;
        voted_for_ = f.node;
        ticks_since_hb_ = 0;  // granting resets our own election timer
      }
    }
  }
  Frame resp;
  resp.kind = FrameKind::kVoteResp;
  resp.node = cfg_.id;
  resp.term = myterm;
  resp.granted = grant;
  send_to_peer(io, f.node, resp);
}

void Node::on_vote_resp(PumpIo& io, const Frame& f) {
  bool lead_now = false;
  {
    MutexLock l(state_mu_);
    if (role_ != Role::kCandidate ||
        f.term != term_.load(std::memory_order_relaxed) || !f.granted) {
      return;
    }
    const int idx = peer_index(f.node);
    if (idx < 0) return;
    const std::uint64_t bit = 1ULL << static_cast<unsigned>(idx);
    if (votes_mask_ & bit) return;
    votes_mask_ |= bit;
    if (1 + std::popcount(votes_mask_) >=
        static_cast<int>(cfg_.quorum)) {
      become_leader_locked();
      lead_now = true;
    }
  }
  if (lead_now) send_heartbeats(io);  // announce immediately
}

// --- truncation repair -------------------------------------------------------

void Node::truncate_to(Mutator& m, std::uint64_t upto) {
  // Truncating at or below the commit point would delete quorum-committed
  // (client-acknowledged) entries. Every caller floors at commit_ — by
  // construction (heartbeat floor) or by leader completeness (conflict
  // and prev-term repair only fire above the committed prefix) — so a
  // breach here is protocol corruption, not a recoverable state.
  MGC_CHECK(upto >= commit_.load(std::memory_order_acquire));
  std::vector<ReplLog::Entry> removed;
  log_.truncate_above(upto, &removed);
  repair_rows(m, removed);
}

void Node::repair_rows(Mutator& m,
                       const std::vector<ReplLog::Entry>& removed) {
  if (removed.empty()) return;
  truncated_entries_.fetch_add(removed.size(), std::memory_order_acq_rel);
  // For each removed key: if a surviving prefix entry also wrote it,
  // restore that version (synthesized values depend only on the key, so
  // only the length differs); otherwise the key never legitimately
  // existed — remove the row.
  const std::vector<ReplLog::Entry> snap = log_.entries();
  std::unordered_map<std::uint64_t, const ReplLog::Entry*> latest;
  for (const ReplLog::Entry& e : snap) latest[e.key] = &e;  // last wins
  std::unordered_set<std::uint64_t> seen;
  std::vector<char> buf(net::kMaxValueLen);
  for (const ReplLog::Entry& r : removed) {
    if (!seen.insert(r.key).second) continue;
    const auto it = latest.find(r.key);
    if (it == latest.end()) {
      store_.shard(r.shard).remove(m, r.key);
      continue;
    }
    const ReplLog::Entry& e = *it->second;
    kv::synth_value(e.key, buf.data(), e.value_len);
    t_apply_ctx = ApplyCtx{true, e.seq};
    store_.shard(e.shard).put(m, e.key, buf.data(), e.value_len);
    t_apply_ctx = ApplyCtx{};
  }
}

}  // namespace mgc::repl
