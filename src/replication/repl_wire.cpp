#include "replication/repl_wire.h"

#include "net/wire.h"
#include "support/check.h"

namespace mgc::repl {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

net::MsgKind wire_kind(FrameKind k) {
  switch (k) {
    case FrameKind::kHello: return net::MsgKind::kReplHello;
    case FrameKind::kHeartbeat: return net::MsgKind::kReplHeartbeat;
    case FrameKind::kAppend: return net::MsgKind::kReplAppend;
    case FrameKind::kAck: return net::MsgKind::kReplAck;
    case FrameKind::kVoteReq: return net::MsgKind::kReplVoteReq;
    case FrameKind::kVoteResp: return net::MsgKind::kReplVoteResp;
  }
  MGC_CHECK(false);
  return net::MsgKind::kReplHello;
}

std::size_t payload_size(const Frame& f) {
  switch (f.kind) {
    case FrameKind::kHello: return kReplHeaderSize;
    case FrameKind::kHeartbeat:
      return kReplHeaderSize + 4 + f.shards.size() * kHeartbeatEntrySize;
    case FrameKind::kAppend:
      return kAppendHeaderSize + f.entries.size() * kAppendEntrySize;
    case FrameKind::kAck: return kAckPayloadSize;
    case FrameKind::kVoteReq:
      return kVoteReqHeaderSize + f.last_seqs.size() * kVoteReqEntrySize;
    case FrameKind::kVoteResp: return kReplHeaderSize + 1;
  }
  MGC_CHECK(false);
  return 0;
}

// Validates (magic, version, kind, payload_len) coherence with only the
// header bytes visible; variable-count kinds get their exact-length check
// once the count is read.
bool check_header(const std::uint8_t* p, std::uint32_t payload_len,
                  FrameKind* kind_out) {
  if (p[0] != net::kMagic) return false;
  if (p[1] != net::kBatchVersion) return false;
  switch (static_cast<net::MsgKind>(p[2])) {
    case net::MsgKind::kReplHello:
      if (payload_len != kReplHeaderSize) return false;
      *kind_out = FrameKind::kHello;
      return true;
    case net::MsgKind::kReplHeartbeat:
      if (payload_len < kReplHeaderSize + 4 + kHeartbeatEntrySize ||
          (payload_len - kReplHeaderSize - 4) % kHeartbeatEntrySize != 0) {
        return false;
      }
      *kind_out = FrameKind::kHeartbeat;
      return true;
    case net::MsgKind::kReplAppend:
      if (payload_len < kAppendHeaderSize + kAppendEntrySize ||
          (payload_len - kAppendHeaderSize) % kAppendEntrySize != 0) {
        return false;
      }
      *kind_out = FrameKind::kAppend;
      return true;
    case net::MsgKind::kReplAck:
      if (payload_len != kAckPayloadSize) return false;
      *kind_out = FrameKind::kAck;
      return true;
    case net::MsgKind::kReplVoteReq:
      if (payload_len < kVoteReqHeaderSize + kVoteReqEntrySize ||
          (payload_len - kVoteReqHeaderSize) % kVoteReqEntrySize != 0) {
        return false;
      }
      *kind_out = FrameKind::kVoteReq;
      return true;
    case net::MsgKind::kReplVoteResp:
      if (payload_len != kReplHeaderSize + 1) return false;
      *kind_out = FrameKind::kVoteResp;
      return true;
    default:
      // Client kinds (and garbage) do not belong on the replication plane.
      return false;
  }
}

}  // namespace

void encode(const Frame& f, std::vector<std::uint8_t>& out) {
  MGC_CHECK(f.shards.size() <= kMaxReplShards);
  MGC_CHECK(f.last_seqs.size() <= kMaxReplShards);
  MGC_CHECK(f.entries.size() <= kMaxReplAppendCount);
  if (f.kind == FrameKind::kHeartbeat) MGC_CHECK(!f.shards.empty());
  if (f.kind == FrameKind::kAppend) MGC_CHECK(!f.entries.empty());
  if (f.kind == FrameKind::kVoteReq) MGC_CHECK(!f.last_seqs.empty());

  const std::size_t payload = payload_size(f);
  out.reserve(out.size() + net::kLenPrefixSize + payload);
  put_u32(out, static_cast<std::uint32_t>(payload));
  put_u8(out, net::kMagic);
  put_u8(out, net::kBatchVersion);
  put_u8(out, static_cast<std::uint8_t>(wire_kind(f.kind)));
  put_u8(out, 0);  // reserved
  put_u32(out, f.node);
  put_u64(out, f.term);
  switch (f.kind) {
    case FrameKind::kHello:
      break;
    case FrameKind::kHeartbeat:
      put_u32(out, static_cast<std::uint32_t>(f.shards.size()));
      for (const ShardSeqs& s : f.shards) {
        put_u64(out, s.commit_seq);
        put_u64(out, s.last_seq);
      }
      break;
    case FrameKind::kAppend:
      put_u32(out, f.shard);
      put_u64(out, f.commit_seq);
      put_u64(out, f.prev_term);
      put_u32(out, static_cast<std::uint32_t>(f.entries.size()));
      for (const AppendEntry& e : f.entries) {
        MGC_CHECK(e.value_len <= net::kMaxValueLen);
        put_u64(out, e.seq);
        put_u64(out, e.key);
        put_u64(out, e.term);
        put_u32(out, e.value_len);
      }
      break;
    case FrameKind::kAck:
      put_u32(out, f.shard);
      put_u64(out, f.ack_seq);
      put_u64(out, f.ack_term);
      break;
    case FrameKind::kVoteReq:
      put_u64(out, f.last_term);
      put_u32(out, static_cast<std::uint32_t>(f.last_seqs.size()));
      for (std::uint64_t s : f.last_seqs) put_u64(out, s);
      break;
    case FrameKind::kVoteResp:
      put_u8(out, f.granted ? 1 : 0);
      break;
  }
}

DecodeResult decode(const std::uint8_t* data, std::size_t len,
                    std::size_t* consumed, Frame* out) {
  if (len < net::kLenPrefixSize) return DecodeResult::kNeedMore;
  const std::uint32_t payload_len = get_u32(data);
  if (payload_len < kReplHeaderSize || payload_len > kMaxReplPayload) {
    return DecodeResult::kError;
  }
  if (len < net::kLenPrefixSize + 3) return DecodeResult::kNeedMore;
  const std::uint8_t* p = data + net::kLenPrefixSize;
  FrameKind kind;
  if (!check_header(p, payload_len, &kind)) return DecodeResult::kError;
  if (len < net::kLenPrefixSize + payload_len) return DecodeResult::kNeedMore;
  if (p[3] != 0) return DecodeResult::kError;  // reserved byte

  *out = Frame{};
  out->kind = kind;
  out->node = get_u32(p + 4);
  out->term = get_u64(p + 8);
  const std::uint8_t* b = p + kReplHeaderSize;
  switch (kind) {
    case FrameKind::kHello:
      break;
    case FrameKind::kHeartbeat: {
      const std::uint32_t count = get_u32(b);
      if (count == 0 || count > kMaxReplShards ||
          payload_len !=
              kReplHeaderSize + 4 + count * kHeartbeatEntrySize) {
        return DecodeResult::kError;
      }
      out->shards.reserve(count);
      const std::uint8_t* e = b + 4;
      for (std::uint32_t i = 0; i < count; ++i, e += kHeartbeatEntrySize) {
        ShardSeqs s;
        s.commit_seq = get_u64(e);
        s.last_seq = get_u64(e + 8);
        // A commit ahead of the log it commits is incoherent.
        if (s.commit_seq > s.last_seq) return DecodeResult::kError;
        out->shards.push_back(s);
      }
      break;
    }
    case FrameKind::kAppend: {
      out->shard = get_u32(b);
      if (out->shard >= kMaxReplShards) return DecodeResult::kError;
      out->commit_seq = get_u64(b + 4);
      out->prev_term = get_u64(b + 12);
      const std::uint32_t count = get_u32(b + 20);
      if (count == 0 || count > kMaxReplAppendCount ||
          payload_len != kAppendHeaderSize + count * kAppendEntrySize) {
        return DecodeResult::kError;
      }
      out->entries.reserve(count);
      const std::uint8_t* e = b + 24;
      std::uint64_t prev_seq = 0;
      std::uint64_t prev_entry_term = out->prev_term;
      for (std::uint32_t i = 0; i < count; ++i, e += kAppendEntrySize) {
        AppendEntry a;
        a.seq = get_u64(e);
        a.key = get_u64(e + 8);
        a.term = get_u64(e + 16);
        a.value_len = get_u32(e + 24);
        if (a.value_len > net::kMaxValueLen) return DecodeResult::kError;
        // Entries must be a contiguous ascending run — the apply loop
        // depends on it, so enforce it at the trust boundary. Entry terms
        // must likewise be coherent: nonzero, non-decreasing across the
        // batch (and from prev_term into it), and never ahead of the
        // streaming leader's own term.
        if (a.seq == 0 || (i > 0 && a.seq != prev_seq + 1)) {
          return DecodeResult::kError;
        }
        if (a.term == 0 || a.term < prev_entry_term ||
            a.term > out->term) {
          return DecodeResult::kError;
        }
        prev_seq = a.seq;
        prev_entry_term = a.term;
        out->entries.push_back(a);
      }
      // prev_term == 0 means "nothing before the batch", which is only
      // coherent when the batch starts the log.
      if ((out->prev_term == 0) != (out->entries[0].seq == 1)) {
        return DecodeResult::kError;
      }
      break;
    }
    case FrameKind::kAck:
      out->shard = get_u32(b);
      if (out->shard >= kMaxReplShards) return DecodeResult::kError;
      out->ack_seq = get_u64(b + 4);
      out->ack_term = get_u64(b + 12);
      // An empty log has no last term; a non-empty one must name the term
      // of its last entry, which cannot be ahead of the acker's own term.
      if ((out->ack_seq == 0) != (out->ack_term == 0)) {
        return DecodeResult::kError;
      }
      if (out->ack_term > out->term) return DecodeResult::kError;
      break;
    case FrameKind::kVoteReq: {
      out->last_term = get_u64(b);
      const std::uint32_t count = get_u32(b + 8);
      if (count == 0 || count > kMaxReplShards ||
          payload_len != kVoteReqHeaderSize + count * kVoteReqEntrySize) {
        return DecodeResult::kError;
      }
      out->last_seqs.reserve(count);
      const std::uint8_t* e = b + 12;
      for (std::uint32_t i = 0; i < count; ++i, e += kVoteReqEntrySize) {
        out->last_seqs.push_back(get_u64(e));
      }
      // A candidate campaigns at term > every entry it holds, and an
      // empty log (global last_seq 0) cannot name a last term.
      if (out->last_term >= out->term) return DecodeResult::kError;
      if ((out->last_seqs[0] == 0) != (out->last_term == 0)) {
        return DecodeResult::kError;
      }
      break;
    }
    case FrameKind::kVoteResp: {
      const std::uint8_t granted = b[0];
      if (granted > 1) return DecodeResult::kError;
      out->granted = granted != 0;
      break;
    }
  }
  *consumed = net::kLenPrefixSize + payload_len;
  return DecodeResult::kFrame;
}

}  // namespace mgc::repl
