// Replication-plane wire codec (protocol version 2, kinds 4..9 of
// net::MsgKind). Same framing discipline as the client batch frames: a
// little-endian u32 payload length, a fixed header validated as soon as
// its bytes are visible, bounded counts, and an exact payload-length ==
// header + count * entry check — a malformed or adversarial frame is
// rejected before the decoder buffers toward its claimed length.
//
// Frame layouts (all little-endian; common 16-byte header first):
//
//   header: u8 magic=0xC5, u8 version=2, u8 kind, u8 reserved=0,
//           u32 node (sender id), u64 term
//
//   kReplHello     (9): header only — first frame on every outbound link,
//                       binds the connection to the sender's node id.
//   kReplHeartbeat (6): header, u32 count,
//                       count x { u64 commit_seq, u64 last_seq }
//                       Entry 0 is the global stream {commit, last}; entries
//                       1..n are the per-shard monotone sequence numbers
//                       {committed count, appended count} of store shard
//                       i-1, which drive the follower read staleness gate.
//   kReplAppend    (4): header, u32 shard (reserved, 0 — entries route by
//                       key), u64 commit_seq, u64 prev_term, u32 count,
//                       count x { u64 seq, u64 key, u64 term, u32 value_len }
//                       prev_term is the term of the leader's entry just
//                       before the batch (0 when the batch starts at seq 1):
//                       the Raft consistency check a follower uses to detect
//                       that its own entry at that position diverges. Each
//                       entry carries the term of the leader that CREATED it
//                       (not the streaming leader's term), so same-seq
//                       conflicts are detected by term, never by content.
//   kReplAck       (5): header, u32 shard (reserved, 0), u64 ack_seq
//                       (highest contiguous global seq applied), u64 ack_term
//                       (term of the acker's entry at ack_seq; 0 iff
//                       ack_seq == 0). The leader trusts an ack — advances
//                       the peer's match point — only when ack_term equals
//                       its own entry's term at ack_seq (Log Matching).
//   kReplVoteReq   (7): header, u64 last_term, u32 count,
//                       count x u64 last_seq
//                       last_term is the term of the candidate's last log
//                       entry (0 for an empty log); entry 0 of the array is
//                       its global last_seq. The election rule compares
//                       (last_term, last_seq) lexicographically; any further
//                       entries are informational per-shard counts.
//   kReplVoteResp  (8): header, u8 granted
//
// Append entries carry no value bytes: the kv workers synthesize every
// row's value deterministically from its key (kv::synth_value), so a
// follower regenerates identical bytes and the stream stays fixed-size.
//
// These kinds share the magic and version space with net/wire.h but NOT
// the decoder: net::decode_any recognizes only the client kinds, so a
// replication frame arriving on a client connection is a protocol error,
// and this decoder rejects client kinds the same way.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mgc::repl {

// A cluster is a handful of replicas with a few shards each; the bounds
// exist so a bit-flipped count cannot make the decoder allocate.
inline constexpr std::uint32_t kMaxReplShards = 64;
inline constexpr std::uint32_t kMaxReplAppendCount = 512;

inline constexpr std::size_t kReplHeaderSize = 16;
inline constexpr std::size_t kHeartbeatEntrySize = 16;
inline constexpr std::size_t kAppendHeaderSize = kReplHeaderSize + 24;
inline constexpr std::size_t kAppendEntrySize = 28;
inline constexpr std::size_t kAckPayloadSize = kReplHeaderSize + 20;
inline constexpr std::size_t kVoteReqHeaderSize = kReplHeaderSize + 12;
inline constexpr std::size_t kVoteReqEntrySize = 8;
inline constexpr std::uint32_t kMaxReplPayload = static_cast<std::uint32_t>(
    kAppendHeaderSize + kMaxReplAppendCount * kAppendEntrySize);

enum class FrameKind : std::uint8_t {
  kHello,
  kHeartbeat,
  kAppend,
  kAck,
  kVoteReq,
  kVoteResp,
};

struct AppendEntry {
  std::uint64_t seq = 0;
  std::uint64_t key = 0;
  std::uint64_t term = 0;  // term of the leader that created the entry
  std::uint32_t value_len = 0;
};

// One {committed, appended} high-water pair in a heartbeat: the global
// stream in entry 0, per-shard monotone counts after it.
struct ShardSeqs {
  std::uint64_t commit_seq = 0;  // highest quorum-committed seq
  std::uint64_t last_seq = 0;    // highest appended seq
};

// One decoded frame of any kind; only the members of the matching kind
// are meaningful.
struct Frame {
  FrameKind kind = FrameKind::kHello;
  std::uint32_t node = 0;  // sender id
  std::uint64_t term = 0;

  std::uint32_t shard = 0;                // kAppend / kAck
  std::uint64_t commit_seq = 0;           // kAppend
  std::uint64_t prev_term = 0;            // kAppend: term before the batch
  std::vector<AppendEntry> entries;       // kAppend
  std::uint64_t ack_seq = 0;              // kAck
  std::uint64_t ack_term = 0;             // kAck: term at ack_seq
  std::vector<ShardSeqs> shards;          // kHeartbeat
  std::uint64_t last_term = 0;            // kVoteReq: candidate's last term
  std::vector<std::uint64_t> last_seqs;   // kVoteReq
  bool granted = false;                   // kVoteResp
};

// Appends one encoded frame (length prefix included). Counts are
// MGC_CHECKed against the bounds above — callers batch within them.
void encode(const Frame& f, std::vector<std::uint8_t>& out);

enum class DecodeResult {
  kNeedMore,  // keep buffering
  kFrame,     // *out filled, *consumed bytes eaten
  kError,     // malformed — the connection must be dropped
};

// Attempts to decode one replication frame from [data, data+len). On
// kFrame sets *consumed and fills *out; on kNeedMore / kError nothing is
// consumed. Never reads outside [data, data+len).
DecodeResult decode(const std::uint8_t* data, std::size_t len,
                    std::size_t* consumed, Frame* out);

}  // namespace mgc::repl
