#include "replication/repl_client.h"

#include <chrono>
#include <thread>

#include "support/check.h"

namespace mgc::repl {

ReplClient::ReplClient(std::vector<std::uint16_t> ports, ReplClientConfig cfg)
    : cfg_(cfg) {
  MGC_CHECK(!ports.empty());
  targets_.resize(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) targets_[i].port = ports[i];
}

ReplClient::~ReplClient() = default;

net::BlockingClient& ReplClient::client_at(std::size_t i) {
  Target& t = targets_[i];
  if (!t.client) {
    net::RetryPolicy p = cfg_.policy;
    // Spread the jitter streams: clones of one config must not draw the
    // identical backoff schedule for every replica.
    p.jitter_seed = cfg_.policy.jitter_seed + i;
    t.client =
        std::make_unique<net::BlockingClient>("127.0.0.1", t.port, p);
  }
  return *t.client;
}

void ReplClient::backoff(std::size_t i) {
  Target& t = targets_[i];
  const int prev =
      t.prev_delay_ms > 0 ? t.prev_delay_ms : cfg_.policy.backoff_initial_ms;
  const int delay = client_at(i).next_backoff_ms(prev);
  t.prev_delay_ms = delay;
  ++backoffs_;
  backoff_ms_total_ += static_cast<std::uint64_t>(delay);
  std::this_thread::sleep_for(std::chrono::milliseconds(delay));
}

kv::Response ReplClient::execute(const kv::Request& req) {
  kv::Response last;
  last.status = kv::ExecStatus::kShutdown;  // if no replica ever answers
  const std::size_t attempts = targets_.size() *
                               static_cast<std::size_t>(cfg_.max_rounds);
  for (std::size_t a = 0; a < attempts; ++a) {
    const std::size_t i = cur_;
    net::ResponseFrame f;
    if (!client_at(i).call_once(req, &f)) {
      // Replica unreachable or mid-pause past the socket timeout.
      backoff(i);
      rotate();
      continue;
    }
    last.found = f.found;
    last.status = f.status;
    switch (f.status) {
      case kv::ExecStatus::kOk:
        targets_[i].prev_delay_ms = 0;
        last_node_ = static_cast<int>(i);
        if (req.op != kv::OpType::kRead) acked_.push_back(req.key);
        return last;
      case kv::ExecStatus::kNotLeader:
        rotate();  // redirect, not pressure: no backoff
        break;
      case kv::ExecStatus::kOverloaded:
      case kv::ExecStatus::kShutdown:
        backoff(i);
        rotate();
        break;
    }
  }
  return last;
}

}  // namespace mgc::repl
