#include "replication/cluster.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <unordered_map>

#include "kvstore/server.h"
#include "support/check.h"

namespace mgc::repl {

namespace {

void sleep_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

bool entries_equal(const ReplLog::Entry& a, const ReplLog::Entry& b) {
  // Terms are included: entries keep the term of the leader that CREATED
  // them across re-streaming (the wire carries per-entry terms), so
  // converged replicas must agree on terms too — a term mismatch at the
  // same seq is exactly the divergence the protocol repairs.
  return a.seq == b.seq && a.key == b.key && a.value_len == b.value_len &&
         a.shard == b.shard && a.shard_seq == b.shard_seq &&
         a.term == b.term;
}

}  // namespace

Cluster::Cluster(const ClusterConfig& cfg) {
  MGC_CHECK(cfg.nodes >= 1 && cfg.nodes <= 64);
  MGC_CHECK(cfg.node.quorum >= 1 && cfg.node.quorum <= cfg.nodes);
  nodes_.reserve(cfg.nodes);
  for (std::size_t i = 0; i < cfg.nodes; ++i) {
    NodeConfig nc = cfg.node;
    nc.id = static_cast<std::uint32_t>(i);
    nc.repl_port = 0;
    nc.net.port = 0;
    nc.start_as_leader = (i == 0);
    nodes_.push_back(std::make_unique<Node>(nc));
  }
  // Every listener is bound; wire the full mesh.
  std::vector<PeerAddr> addrs;
  addrs.reserve(cfg.nodes);
  for (const auto& n : nodes_) addrs.push_back({n->id(), n->repl_port()});
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    std::vector<PeerAddr> peers;
    for (std::size_t j = 0; j < addrs.size(); ++j) {
      if (j != i) peers.push_back(addrs[j]);
    }
    nodes_[i]->connect_peers(peers);
  }
}

Cluster::~Cluster() { shutdown(); }

std::vector<std::uint16_t> Cluster::client_ports() const {
  std::vector<std::uint16_t> out;
  out.reserve(nodes_.size());
  for (const auto& n : nodes_) out.push_back(n->client_port());
  return out;
}

void Cluster::tick(std::uint64_t n) {
  for (auto& node : nodes_) node->advance_ticks(n);
}

void Cluster::start_ticker(int interval_us) {
  if (ticker_running_) return;
  ticker_stop_.store(false, std::memory_order_release);
  ticker_ = std::thread([this, interval_us] {
    while (!ticker_stop_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(interval_us));
      tick(1);
    }
  });
  ticker_running_ = true;
}

void Cluster::stop_ticker() {
  if (!ticker_running_) return;
  ticker_stop_.store(true, std::memory_order_release);
  ticker_.join();
  ticker_running_ = false;
}

int Cluster::leader_index() const {
  int best = -1;
  std::uint64_t best_term = 0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i]->role() != Role::kLeader) continue;
    const std::uint64_t t = nodes_[i]->term();
    if (best < 0 || t > best_term) {
      best = static_cast<int>(i);
      best_term = t;
    } else if (t == best_term) {
      return -1;  // two leaders in one term: election safety violated
    }
  }
  return best;
}

bool Cluster::wait_leader(int* idx, int timeout_ms) {
  for (int waited = 0; waited <= timeout_ms; ++waited) {
    const int li = leader_index();
    if (li >= 0) {
      if (idx != nullptr) *idx = li;
      return true;
    }
    sleep_ms(1);
  }
  return false;
}

bool Cluster::wait_commit_at_least(std::uint64_t seq, int timeout_ms) {
  for (int waited = 0; waited <= timeout_ms; ++waited) {
    const int li = leader_index();
    if (li >= 0 && nodes_[static_cast<std::size_t>(li)]->commit_seq() >= seq) {
      return true;
    }
    sleep_ms(1);
  }
  return false;
}

bool Cluster::wait_converged(int timeout_ms) {
  for (int waited = 0; waited <= timeout_ms; ++waited) {
    bool ok = leader_index() >= 0;
    const std::uint64_t last0 = nodes_[0]->log().last_seq();
    const std::uint64_t commit0 = nodes_[0]->commit_seq();
    ok = ok && (commit0 == last0);
    for (std::size_t i = 1; ok && i < nodes_.size(); ++i) {
      ok = nodes_[i]->log().last_seq() == last0 &&
           nodes_[i]->commit_seq() == commit0;
    }
    if (ok) return true;
    sleep_ms(1);
  }
  return false;
}

std::vector<std::string> Cluster::verify(
    const std::vector<std::uint64_t>* acked_keys) {
  std::vector<std::string> bad;
  char buf[256];
  auto fail = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    bad.emplace_back(buf);
  };

  // At most one leader per term, ever observed at this instant.
  {
    std::unordered_map<std::uint64_t, int> leaders_by_term;
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i]->role() != Role::kLeader) continue;
      auto [it, fresh] =
          leaders_by_term.emplace(nodes_[i]->term(), static_cast<int>(i));
      if (!fresh) {
        fail("nodes %d and %zu both lead term %llu", it->second, i,
             static_cast<unsigned long long>(nodes_[i]->term()));
      }
    }
  }

  std::vector<std::vector<ReplLog::Entry>> logs;
  logs.reserve(nodes_.size());
  for (auto& n : nodes_) logs.push_back(n->log().entries());

  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    // Commit never runs past the log.
    if (nodes_[i]->commit_seq() > logs[i].size()) {
      fail("node %zu commit %llu past log end %zu", i,
           static_cast<unsigned long long>(nodes_[i]->commit_seq()),
           logs[i].size());
    }
    // Global seqs dense from 1; per-shard seqs dense from 1 per shard.
    std::vector<std::uint64_t> shard_next(
        nodes_[i]->store().shard_count(), 1);
    for (std::size_t k = 0; k < logs[i].size(); ++k) {
      const ReplLog::Entry& e = logs[i][k];
      if (e.seq != k + 1) {
        fail("node %zu log position %zu has seq %llu", i, k,
             static_cast<unsigned long long>(e.seq));
        break;
      }
      if (e.shard >= shard_next.size()) {
        fail("node %zu seq %zu routed to bad shard %u", i, k + 1, e.shard);
        break;
      }
      if (e.shard_seq != shard_next[e.shard]) {
        fail("node %zu seq %zu shard %u shard_seq %llu, want %llu", i, k + 1,
             e.shard, static_cast<unsigned long long>(e.shard_seq),
             static_cast<unsigned long long>(shard_next[e.shard]));
        break;
      }
      ++shard_next[e.shard];
    }
  }

  // Logs are pairwise prefix-consistent: the shorter log is a prefix of
  // the longer. (Committed prefixes therefore agree everywhere.)
  for (std::size_t i = 1; i < nodes_.size(); ++i) {
    const auto& a = logs[0];
    const auto& b = logs[i];
    const std::size_t n = std::min(a.size(), b.size());
    for (std::size_t k = 0; k < n; ++k) {
      if (!entries_equal(a[k], b[k])) {
        fail("node 0 / node %zu diverge at seq %zu "
             "(keys %llu vs %llu, shards %u vs %u)",
             i, k + 1, static_cast<unsigned long long>(a[k].key),
             static_cast<unsigned long long>(b[k].key), a[k].shard,
             b[k].shard);
        break;
      }
    }
  }

  // Every acked write is durable on every replica with the value length
  // the log records — zero lost acked writes.
  if (acked_keys != nullptr && !acked_keys->empty()) {
    // Expected value length per key = the latest entry for the key in the
    // longest log.
    std::size_t longest = 0;
    for (std::size_t i = 1; i < logs.size(); ++i) {
      if (logs[i].size() > logs[longest].size()) longest = i;
    }
    std::unordered_map<std::uint64_t, std::uint32_t> want_len;
    for (const ReplLog::Entry& e : logs[longest]) want_len[e.key] = e.value_len;

    std::vector<char> value(1u << 20);
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Vm::MutatorScope scope(nodes_[i]->vm(), "cluster-verify");
      Mutator& m = scope.mutator();
      for (std::uint64_t key : *acked_keys) {
        std::size_t len = 0;
        if (!nodes_[i]->store().get(m, key, value.data(), value.size(),
                                    &len)) {
          fail("node %zu lost acked key %llu", i,
               static_cast<unsigned long long>(key));
          continue;
        }
        auto it = want_len.find(key);
        if (it == want_len.end()) {
          fail("acked key %llu absent from every log",
               static_cast<unsigned long long>(key));
        } else if (len != it->second) {
          fail("node %zu key %llu has %zu bytes, log says %u", i,
               static_cast<unsigned long long>(key), len, it->second);
        }
      }
    }
  }

  return bad;
}

void Cluster::shutdown() {
  stop_ticker();
  for (auto& n : nodes_) {
    if (n) n->shutdown();
  }
}

}  // namespace mgc::repl
