// Cluster-aware client: one net::BlockingClient per replica, rotated on
// redirect. The paper's interest is the CLIENT-visible latency of a GC
// pause or failover, so this client behaves like a real driver would:
//
//   * kNotLeader       — the write hit a follower; rotate to the next
//     replica immediately (no backoff — the leader is elsewhere, not
//     overloaded).
//   * transport failure — the replica is down or mid-pause; rotate, and
//     back off with the same decorrelated jitter schedule the underlying
//     BlockingClient uses, so a fleet of these clients does not stampede
//     the new leader in lockstep after a failover.
//   * kOverloaded      — load shed (pending-quorum cap, stale follower
//     read, aged-out write); back off with jitter and rotate.
//
// Every write the cluster acknowledged (kOk) is recorded in acked_keys():
// tests hand that set to Cluster::verify() to prove zero acked writes were
// lost across pauses, drops, and elections. Single-threaded, like one
// YCSB driver thread.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "kvstore/server.h"
#include "net/blocking_client.h"

namespace mgc::repl {

struct ReplClientConfig {
  net::RetryPolicy policy;  // per-replica connection policy (incl. jitter)
  // Full rotations through the replica set before execute() gives up and
  // returns the last rejection. Bounds worst-case latency during an
  // election when no replica leads.
  int max_rounds = 16;
};

class ReplClient {
 public:
  // `ports`: client-facing loopback ports, one per replica (index-aligned
  // with the cluster's node indices).
  explicit ReplClient(std::vector<std::uint16_t> ports,
                      ReplClientConfig cfg = {});
  ~ReplClient();

  ReplClient(const ReplClient&) = delete;
  ReplClient& operator=(const ReplClient&) = delete;

  // One operation against the cluster, rotating per the policy above.
  // Returns the final response (kOk, or the last rejection after
  // max_rounds full rotations).
  kv::Response execute(const kv::Request& req);

  // Replica index that served the last successful response.
  int last_node() const { return last_node_; }

  // Keys of every write the cluster acked with kOk, in ack order.
  const std::vector<std::uint64_t>& acked_keys() const { return acked_; }

  std::uint64_t rotations() const { return rotations_; }
  std::uint64_t backoffs() const { return backoffs_; }
  // Total jittered backoff the client actually slept, in milliseconds —
  // the retry tax a pause/failover imposed on this driver.
  std::uint64_t backoff_ms_total() const { return backoff_ms_total_; }

 private:
  void rotate() { cur_ = (cur_ + 1) % targets_.size(); ++rotations_; }
  net::BlockingClient& client_at(std::size_t i);
  void backoff(std::size_t i);

  ReplClientConfig cfg_;
  struct Target {
    std::uint16_t port = 0;
    std::unique_ptr<net::BlockingClient> client;  // dialed lazily
    int prev_delay_ms = 0;  // decorrelated-jitter chain state
  };
  std::vector<Target> targets_;
  std::size_t cur_ = 0;
  int last_node_ = -1;
  std::vector<std::uint64_t> acked_;
  std::uint64_t rotations_ = 0;
  std::uint64_t backoffs_ = 0;
  std::uint64_t backoff_ms_total_ = 0;
};

}  // namespace mgc::repl
