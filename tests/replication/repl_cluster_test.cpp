// Replicated-cluster integration: quorum commit on the happy path, the
// quorum edge cases the design promises bounded behavior for (one
// follower stalled — progress; a lost quorum — typed shedding, never a
// hang), follower read staleness gating, recovery from dropped append
// batches via the tick-counted retransmit, dropped acks, and the
// ex-leader rejoin that truncates a diverged suffix and repairs the
// memtable. Every scenario ends with the cluster-wide safety verifier.
//
// All four replication fault sites are armed here: Site::kReplFollowerStall,
// Site::kReplAppendDrop, Site::kReplAckDrop (Site::kReplHeartbeatLoss is
// armed by the failover tests).
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "replication/cluster.h"
#include "repl_test_util.h"
#include "support/fault.h"

namespace mgc::repl {
namespace {

using testutil::insert;
using testutil::read;
using testutil::small_node_config;
using testutil::submit_sync;
using testutil::tick_slowly;
using testutil::wait_logs_at;
using testutil::wait_until;

ClusterConfig three_nodes() {
  ClusterConfig cc;
  cc.nodes = 3;
  cc.node = small_node_config();
  return cc;
}

void expect_verify_clean(Cluster& c,
                         const std::vector<std::uint64_t>* acked = nullptr) {
  const std::vector<std::string> bad = c.verify(acked);
  for (const std::string& b : bad) ADD_FAILURE() << "verify: " << b;
}

TEST(ReplCluster, QuorumCommitReplicatesToAllFollowers) {
  Cluster c(three_nodes());
  ASSERT_TRUE(c.node(0).is_leader());

  std::vector<std::uint64_t> acked;
  for (std::uint64_t k = 0; k < 50; ++k) {
    const kv::Response r = submit_sync(c.node(0), insert(k));
    ASSERT_EQ(r.status, kv::ExecStatus::kOk) << "key " << k;
    acked.push_back(k);
  }
  EXPECT_EQ(c.node(0).commit_seq(), 50u);
  EXPECT_EQ(c.node(0).stats().writes_acked, 50u);

  // Quorum needs one follower; the stream still reaches both.
  ASSERT_TRUE(wait_logs_at(c, 50));
  tick_slowly(c, 2);  // heartbeats carry the commit index to the followers
  ASSERT_TRUE(wait_until([&] {
    return c.node(1).commit_seq() == 50 && c.node(2).commit_seq() == 50;
  }));
  expect_verify_clean(c, &acked);

  // A write sent to a follower is a typed redirect, not an ack.
  EXPECT_EQ(submit_sync(c.node(1), insert(999)).status,
            kv::ExecStatus::kNotLeader);
  EXPECT_GE(c.node(1).stats().not_leader_rejects, 1u);
}

TEST(ReplCluster, OneFollowerStalledStillCommitsAtQuorum) {
  Cluster c(three_nodes());
  ASSERT_TRUE(c.node(0).is_leader());

  // Freeze node 2's replication pump (scoped: only that node stalls).
  fault::ScopedSpec guard("repl-follower-stall:scope=2", 11);
  ASSERT_TRUE(wait_until([&] {
    return c.node(2).stats().follower_stalls > 0;
  }));

  // Writes still reach quorum 2 via node 1 — one lost replica costs
  // nothing but redundancy.
  std::vector<std::uint64_t> acked;
  for (std::uint64_t k = 0; k < 30; ++k) {
    const kv::Response r = submit_sync(c.node(0), insert(k));
    ASSERT_EQ(r.status, kv::ExecStatus::kOk) << "key " << k;
    acked.push_back(k);
  }
  EXPECT_EQ(c.node(2).log().last_seq(), 0u);

  // Unfreeze: the stalled follower drains the buffered stream and
  // catches up without a retransmit (nothing was lost, only unread).
  fault::disarm_all();
  ASSERT_TRUE(wait_logs_at(c, 30));
  expect_verify_clean(c, &acked);
}

TEST(ReplCluster, QuorumLossShedsTypedAndNeverHangs) {
  ClusterConfig cc = three_nodes();
  cc.node.max_pending_writes = 4;
  cc.node.pending_timeout_ticks = 6;
  Cluster c(cc);
  ASSERT_TRUE(c.node(0).is_leader());

  // Freeze BOTH followers (unscoped; the site is role-gated, so the
  // leader keeps running). No quorum exists now.
  fault::ScopedSpec guard("repl-follower-stall", 12);
  ASSERT_TRUE(wait_until([&] {
    return c.node(1).stats().follower_stalls > 0 &&
           c.node(2).stats().follower_stalls > 0;
  }));

  // Fill the pending window (the cap check races the asynchronous
  // registration, so keep submitting until the leader sheds): every
  // accepted write is held for a quorum that cannot form, and once the
  // window is full the next submit is rejected kOverloaded on the spot.
  std::vector<std::future<kv::Response>> futs;
  bool shed_at_submit = false;
  for (std::uint64_t k = 0; k < 64 && !shed_at_submit; ++k) {
    auto prom = std::make_shared<std::promise<kv::Response>>();
    const kv::SubmitResult sr = c.node(0).try_submit(
        insert(100 + k), [prom](const kv::Response& r) { prom->set_value(r); });
    if (sr == kv::SubmitResult::kAccepted) {
      futs.push_back(prom->get_future());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } else {
      ASSERT_EQ(sr, kv::SubmitResult::kOverloaded);
      shed_at_submit = true;
    }
  }
  EXPECT_TRUE(shed_at_submit) << "pending window never filled";
  EXPECT_GE(futs.size(), cc.node.max_pending_writes);
  EXPECT_GE(c.node(0).stats().writes_shed, 1u);

  // Age the held writes out: every completion fires with a typed
  // kOverloaded within the tick budget — bounded latency, no hang.
  tick_slowly(c, cc.node.pending_timeout_ticks + 3);
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "a held write never resolved";
    EXPECT_EQ(f.get().status, kv::ExecStatus::kOverloaded);
  }
  EXPECT_GE(c.node(0).stats().writes_aged_out, 1u);

  // Heal: followers drain the buffered stream, quorum returns, and new
  // writes ack again.
  fault::disarm_all();
  std::vector<std::uint64_t> acked;
  ASSERT_TRUE(wait_until([&] {
    return submit_sync(c.node(0), insert(500)).status ==
           kv::ExecStatus::kOk;
  }));
  acked.push_back(500);
  ASSERT_TRUE(wait_logs_at(c, c.node(0).log().last_seq()));
  expect_verify_clean(c, &acked);
}

TEST(ReplCluster, StaleFollowerReadsShedThenRecoverViaRetransmit) {
  ClusterConfig cc = three_nodes();
  cc.node.quorum = 1;  // leader commits alone: appends can lag acks
  cc.node.staleness_bound = 4;
  Cluster c(cc);
  ASSERT_TRUE(c.node(0).is_leader());

  // A heartbeat first: followers learn the leader exists and ack, fixing
  // match so the retransmit timer has a rewind target.
  tick_slowly(c, 2);

  // Drop every append batch the leader sends; heartbeats still flow, so
  // the followers KNOW how far behind they are.
  fault::ScopedSpec guard("repl-append-drop:scope=0", 13);

  std::vector<std::uint64_t> acked;
  for (std::uint64_t k = 0; k < 20; ++k) {
    ASSERT_EQ(submit_sync(c.node(0), insert(k)).status,
              kv::ExecStatus::kOk);
    acked.push_back(k);
  }
  // With quorum 1 the ack is local — the pump streams (and drops) the
  // append batches asynchronously, after submit_sync already returned.
  ASSERT_TRUE(wait_until([&] {
    return c.node(0).stats().append_batches_lost >= 1;
  }));
  EXPECT_EQ(c.node(1).log().last_seq(), 0u);

  // Let a heartbeat advertise the leader's per-shard positions.
  tick_slowly(c, 2);
  ASSERT_TRUE(wait_until([&] {
    // Knowledge gap visible: a read on the follower sheds as stale.
    return submit_sync(c.node(1), read(5)).status ==
           kv::ExecStatus::kOverloaded;
  }));
  EXPECT_GE(c.node(1).stats().stale_reads_shed, 1u);

  // The leader, meanwhile, serves the same read fresh.
  {
    const kv::Response r = submit_sync(c.node(0), read(5));
    EXPECT_EQ(r.status, kv::ExecStatus::kOk);
    EXPECT_TRUE(r.found);
  }

  // Heal the link: the stalled acks trip the retransmit rewind and the
  // followers replay the whole stream.
  fault::disarm_all();
  tick_slowly(c, cc.node.retransmit_ticks + 4);
  ASSERT_TRUE(wait_logs_at(c, 20));
  ASSERT_TRUE(wait_until([&] {
    const kv::Response r = submit_sync(c.node(1), read(5));
    return r.status == kv::ExecStatus::kOk && r.found;
  }));
  expect_verify_clean(c, &acked);
}

TEST(ReplCluster, DroppedAcksDelayNothingWithAHealthyQuorum) {
  Cluster c(three_nodes());
  ASSERT_TRUE(c.node(0).is_leader());

  // Node 1 loses most of its outgoing acks; node 2 supplies the quorum.
  fault::ScopedSpec guard("repl-ack-drop=0.7:scope=1", 14);

  std::vector<std::uint64_t> acked;
  for (std::uint64_t k = 0; k < 40; ++k) {
    const kv::Response r = submit_sync(c.node(0), insert(k));
    ASSERT_EQ(r.status, kv::ExecStatus::kOk) << "key " << k;
    acked.push_back(k);
  }
  EXPECT_GE(c.node(1).stats().acks_lost, 1u);

  fault::disarm_all();
  ASSERT_TRUE(wait_logs_at(c, 40));
  expect_verify_clean(c, &acked);
}

TEST(ReplCluster, ExLeaderRejoinTruncatesDivergedSuffix) {
  ClusterConfig cc = three_nodes();
  cc.node.pending_timeout_ticks = 6;
  Cluster c(cc);
  ASSERT_TRUE(c.node(0).is_leader());

  // Common prefix, committed everywhere.
  std::vector<std::uint64_t> acked;
  for (std::uint64_t k = 0; k < 10; ++k) {
    ASSERT_EQ(submit_sync(c.node(0), insert(k)).status,
              kv::ExecStatus::kOk);
    acked.push_back(k);
  }
  ASSERT_TRUE(wait_logs_at(c, 10));

  // Partition the leader's OUTBOUND plane: appends and heartbeats from
  // node 0 vanish. Its next writes append locally but can never reach a
  // quorum — the diverged suffix.
  fault::ScopedSpec guard(
      "repl-append-drop:scope=0;repl-heartbeat-loss:scope=0", 15);

  std::vector<std::future<kv::Response>> doomed;
  for (std::uint64_t k = 0; k < 3; ++k) {
    auto prom = std::make_shared<std::promise<kv::Response>>();
    doomed.push_back(prom->get_future());
    ASSERT_EQ(c.node(0).try_submit(
                  insert(100 + k),
                  [prom](const kv::Response& r) { prom->set_value(r); }),
              kv::SubmitResult::kAccepted);
  }
  ASSERT_TRUE(wait_until([&] { return c.node(0).log().last_seq() == 13; }));

  // The silent leader trips the followers' detectors; node 1 (smallest
  // stagger) elects itself for term 2. Slow ticks: the one-tick stagger
  // must be wall-clock wide enough for node 1's election to finish
  // before node 2's budget expires, even under sanitizer slowdown.
  tick_slowly(c, cc.node.election_timeout_ticks + 4, /*gap_ms=*/10);
  ASSERT_TRUE(wait_until([&] { return c.node(1).is_leader(); }));
  EXPECT_EQ(c.node(1).stats().elections_won, 1u);

  // The doomed writes must resolve as a typed failure (stepdown on the
  // rival's higher term, or age-out), never hang, and never claim kOk.
  for (auto& f : doomed) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "a diverged write never resolved";
    EXPECT_EQ(f.get().status, kv::ExecStatus::kOverloaded);
  }

  // New leadership writes new history over the suffix's positions.
  ASSERT_TRUE(wait_until([&] {
    return submit_sync(c.node(1), insert(200)).status == kv::ExecStatus::kOk;
  }));
  acked.push_back(200);
  for (std::uint64_t k = 1; k < 5; ++k) {
    ASSERT_EQ(submit_sync(c.node(1), insert(200 + k)).status,
              kv::ExecStatus::kOk);
    acked.push_back(200 + k);
  }

  // Heal the partition: node 0 adopts term 2, truncates seqs 11..13 and
  // repairs its memtable, then catches up on the new history.
  fault::disarm_all();
  tick_slowly(c, 4);
  ASSERT_TRUE(wait_logs_at(c, c.node(1).log().last_seq()));
  const NodeStats s0 = c.node(0).stats();
  EXPECT_GE(s0.stepdowns, 1u);
  EXPECT_GE(s0.truncated_entries, 3u);
  EXPECT_EQ(c.node(0).role(), Role::kFollower);

  // The truncated keys only ever existed in the diverged suffix: the
  // repair must have removed their rows.
  {
    Vm::MutatorScope scope(c.node(0).vm(), "test-probe");
    char buf[256];
    std::size_t len = 0;
    for (std::uint64_t k = 0; k < 3; ++k) {
      EXPECT_FALSE(
          c.node(0).store().get(scope.mutator(), 100 + k, buf, sizeof(buf),
                                &len))
          << "diverged key " << (100 + k) << " survived truncation";
    }
  }
  expect_verify_clean(c, &acked);
}

TEST(ReplCluster, StaleLongerLogCannotOutrankNewerTerms) {
  // The fig-8 shape: the deposed leader's diverged suffix is LONGER than
  // the new history written over it. Length-only rules break here twice —
  // the stale log outranks the new leader's in elections, and its acks
  // (positions past the new leader's log) would anchor replication
  // progress it doesn't have. Healing must come entirely through the
  // term-driven paths: unverified acks probing backward, the prev-term
  // consistency check, and conflict truncation — heartbeat last-seq
  // truncation never fires, since the stale log is never the shorter one
  // until it is already repaired.
  ClusterConfig cc = three_nodes();
  cc.node.pending_timeout_ticks = 6;
  Cluster c(cc);
  ASSERT_TRUE(c.node(0).is_leader());

  std::vector<std::uint64_t> acked;
  for (std::uint64_t k = 0; k < 5; ++k) {
    ASSERT_EQ(submit_sync(c.node(0), insert(k)).status,
              kv::ExecStatus::kOk);
    acked.push_back(k);
  }
  ASSERT_TRUE(wait_logs_at(c, 5));

  // Partition node 0's outbound plane and pile on a LONG doomed suffix:
  // five term-1 entries (seqs 6..10) nobody else will ever hold.
  fault::ScopedSpec guard(
      "repl-append-drop:scope=0;repl-heartbeat-loss:scope=0", 31);
  std::vector<std::future<kv::Response>> doomed;
  for (std::uint64_t k = 0; k < 5; ++k) {
    auto prom = std::make_shared<std::promise<kv::Response>>();
    doomed.push_back(prom->get_future());
    ASSERT_EQ(c.node(0).try_submit(
                  insert(100 + k),
                  [prom](const kv::Response& r) { prom->set_value(r); }),
              kv::SubmitResult::kAccepted);
  }
  ASSERT_TRUE(wait_until([&] { return c.node(0).log().last_seq() == 10; }));

  tick_slowly(c, cc.node.election_timeout_ticks + 4, /*gap_ms=*/10);
  ASSERT_TRUE(wait_until([&] { return c.node(1).is_leader(); }));
  for (auto& f : doomed) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(10)),
              std::future_status::ready)
        << "a diverged write never resolved";
    EXPECT_EQ(f.get().status, kv::ExecStatus::kOverloaded);
  }

  // New history SHORTER than the stale suffix: two term-2 entries, seqs
  // 6..7, quorum-committed by nodes 1 and 2. Node 0's log (10 entries,
  // last term 1) now strictly outranks the cluster's (7 entries, last
  // term 2) on length — and must lose on term.
  ASSERT_TRUE(wait_until([&] {
    return submit_sync(c.node(1), insert(200)).status == kv::ExecStatus::kOk;
  }));
  acked.push_back(200);
  ASSERT_EQ(submit_sync(c.node(1), insert(201)).status, kv::ExecStatus::kOk);
  acked.push_back(201);

  // Heal. Node 0's acks name term-1 entries the leader doesn't hold, so
  // the leader probes backward instead of trusting them, finds the last
  // agreed position (seq 5), and overwrites the five stale entries with
  // the two-entry term-2 history.
  fault::disarm_all();
  tick_slowly(c, 6);
  ASSERT_TRUE(wait_logs_at(c, c.node(1).log().last_seq()));
  EXPECT_EQ(c.node(1).log().last_seq(), 7u);
  const NodeStats s0 = c.node(0).stats();
  EXPECT_GE(s0.truncated_entries, 5u);
  EXPECT_EQ(c.node(0).role(), Role::kFollower);
  EXPECT_TRUE(c.node(1).is_leader());
  EXPECT_EQ(c.node(1).term(), 2u)
      << "the stale-but-longer log forced extra elections";

  // The doomed keys only ever existed in the stale suffix.
  {
    Vm::MutatorScope scope(c.node(0).vm(), "test-probe");
    char buf[256];
    std::size_t len = 0;
    for (std::uint64_t k = 0; k < 5; ++k) {
      EXPECT_FALSE(
          c.node(0).store().get(scope.mutator(), 100 + k, buf, sizeof(buf),
                                &len))
          << "stale key " << (100 + k) << " survived repair";
    }
  }
  expect_verify_clean(c, &acked);
}

}  // namespace
}  // namespace mgc::repl
