// Replication wire codec: round-trips for every frame kind, incremental
// (byte-at-a-time) decode, and the adversarial rejections the trust
// boundary promises — bad magic/version/kind, length/count incoherence,
// out-of-range values, non-contiguous append runs, commit past the log,
// and client-plane frames arriving on the replication plane.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/wire.h"
#include "replication/repl_wire.h"

namespace mgc::repl {
namespace {

std::vector<std::uint8_t> enc(const Frame& f) {
  std::vector<std::uint8_t> out;
  encode(f, out);
  return out;
}

DecodeResult dec(const std::vector<std::uint8_t>& buf, Frame* out,
                 std::size_t* consumed = nullptr) {
  std::size_t c = 0;
  const DecodeResult r = decode(buf.data(), buf.size(), &c, out);
  if (consumed != nullptr) *consumed = c;
  return r;
}

Frame hello() {
  Frame f;
  f.kind = FrameKind::kHello;
  f.node = 2;
  f.term = 7;
  return f;
}

Frame heartbeat() {
  Frame f;
  f.kind = FrameKind::kHeartbeat;
  f.node = 0;
  f.term = 3;
  f.shards = {{10, 12}, {4, 4}, {0, 6}};  // global, shard0, shard1
  return f;
}

Frame append() {
  Frame f;
  f.kind = FrameKind::kAppend;
  f.node = 1;
  f.term = 5;
  f.commit_seq = 41;
  f.prev_term = 4;  // the entry just before seq 42 was created in term 4
  f.entries = {{42, 0xdeadbeef, 4, 256},
               {43, 0xfeedface, 5, 128},
               {44, 9, 5, 0}};
  return f;
}

TEST(ReplWire, RoundTripsEveryKind) {
  Frame out;

  EXPECT_EQ(dec(enc(hello()), &out), DecodeResult::kFrame);
  EXPECT_EQ(out.kind, FrameKind::kHello);
  EXPECT_EQ(out.node, 2u);
  EXPECT_EQ(out.term, 7u);

  EXPECT_EQ(dec(enc(heartbeat()), &out), DecodeResult::kFrame);
  ASSERT_EQ(out.shards.size(), 3u);
  EXPECT_EQ(out.shards[0].commit_seq, 10u);
  EXPECT_EQ(out.shards[0].last_seq, 12u);
  EXPECT_EQ(out.shards[2].last_seq, 6u);

  EXPECT_EQ(dec(enc(append()), &out), DecodeResult::kFrame);
  EXPECT_EQ(out.commit_seq, 41u);
  EXPECT_EQ(out.prev_term, 4u);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[0].seq, 42u);
  EXPECT_EQ(out.entries[0].term, 4u);
  EXPECT_EQ(out.entries[1].key, 0xfeedfaceu);
  EXPECT_EQ(out.entries[1].term, 5u);
  EXPECT_EQ(out.entries[2].value_len, 0u);

  Frame ack;
  ack.kind = FrameKind::kAck;
  ack.node = 2;
  ack.term = 5;
  ack.ack_seq = 44;
  ack.ack_term = 4;
  EXPECT_EQ(dec(enc(ack), &out), DecodeResult::kFrame);
  EXPECT_EQ(out.ack_seq, 44u);
  EXPECT_EQ(out.ack_term, 4u);

  Frame vr;
  vr.kind = FrameKind::kVoteReq;
  vr.node = 1;
  vr.term = 6;
  vr.last_term = 5;
  vr.last_seqs = {44, 30, 14};
  EXPECT_EQ(dec(enc(vr), &out), DecodeResult::kFrame);
  EXPECT_EQ(out.last_term, 5u);
  ASSERT_EQ(out.last_seqs.size(), 3u);
  EXPECT_EQ(out.last_seqs[0], 44u);

  Frame resp;
  resp.kind = FrameKind::kVoteResp;
  resp.node = 2;
  resp.term = 6;
  resp.granted = true;
  EXPECT_EQ(dec(enc(resp), &out), DecodeResult::kFrame);
  EXPECT_TRUE(out.granted);
}

TEST(ReplWire, IncrementalDecodeNeedsMoreUntilComplete) {
  const std::vector<std::uint8_t> buf = enc(append());
  Frame out;
  std::size_t consumed = 0;
  for (std::size_t n = 0; n < buf.size(); ++n) {
    EXPECT_EQ(decode(buf.data(), n, &consumed, &out), DecodeResult::kNeedMore)
        << "prefix of " << n << " bytes";
  }
  EXPECT_EQ(decode(buf.data(), buf.size(), &consumed, &out),
            DecodeResult::kFrame);
  EXPECT_EQ(consumed, buf.size());
}

TEST(ReplWire, TwoFramesBackToBackConsumeExactly) {
  std::vector<std::uint8_t> buf = enc(heartbeat());
  const std::size_t first = buf.size();
  const std::vector<std::uint8_t> second = enc(hello());
  buf.insert(buf.end(), second.begin(), second.end());

  Frame out;
  std::size_t consumed = 0;
  ASSERT_EQ(decode(buf.data(), buf.size(), &consumed, &out),
            DecodeResult::kFrame);
  EXPECT_EQ(consumed, first);
  EXPECT_EQ(out.kind, FrameKind::kHeartbeat);
  ASSERT_EQ(decode(buf.data() + consumed, buf.size() - consumed, &consumed,
                   &out),
            DecodeResult::kFrame);
  EXPECT_EQ(out.kind, FrameKind::kHello);
}

TEST(ReplWire, RejectsCorruptHeaders) {
  Frame out;
  // Bad magic.
  auto buf = enc(hello());
  buf[4] ^= 0xFF;
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  // Bad version.
  buf = enc(hello());
  buf[5] = 9;
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  // Client kind on the replication plane.
  buf = enc(hello());
  buf[6] = static_cast<std::uint8_t>(net::MsgKind::kRequest);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  // Garbage kind.
  buf = enc(hello());
  buf[6] = 0x7E;
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  // Nonzero reserved byte.
  buf = enc(hello());
  buf[7] = 1;
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
}

TEST(ReplWire, RejectsLengthAndCountIncoherence) {
  Frame out;
  // Payload length larger than any legal replication frame.
  std::vector<std::uint8_t> buf = enc(hello());
  const std::uint32_t huge = kMaxReplPayload + 1;
  std::memcpy(buf.data(), &huge, 4);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  // Payload length below the fixed header.
  buf = enc(hello());
  const std::uint32_t tiny = 3;
  std::memcpy(buf.data(), &tiny, 4);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  // Heartbeat whose count disagrees with its payload length.
  buf = enc(heartbeat());
  buf[net::kLenPrefixSize + kReplHeaderSize] = 1;  // claims 1, carries 3
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  // Append count zeroed.
  buf = enc(append());
  buf[net::kLenPrefixSize + kReplHeaderSize + 20] = 0;
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
}

TEST(ReplWire, RejectsSemanticViolations) {
  Frame out;
  // Heartbeat with commit ahead of its own log.
  Frame hb = heartbeat();
  hb.shards[1] = {9, 3};
  auto buf = enc(hb);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // Append run with a gap (not contiguous ascending).
  Frame ap = append();
  ap.entries[2].seq = 50;
  buf = enc(ap);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // Append entry with seq 0 (sequences start at 1).
  ap = append();
  ap.entries = {{0, 1, 4, 8}};
  buf = enc(ap);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // Append value_len past the value cap.
  ap = append();
  ap.prev_term = 0;
  ap.entries = {{1, 1, 1, 8}};
  buf = enc(ap);
  const std::uint32_t bad_len = net::kMaxValueLen + 1;
  std::memcpy(buf.data() + net::kLenPrefixSize + kAppendHeaderSize + 24,
              &bad_len, 4);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // Append entry with term 0 (terms start at 1).
  ap = append();
  ap.entries[0].term = 0;
  buf = enc(ap);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // Append entry terms decreasing across the batch.
  ap = append();
  ap.entries[1].term = 3;  // below entry 0's term 4
  buf = enc(ap);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // Append entry term ahead of the streaming leader's own term.
  ap = append();
  ap.entries[2].term = 6;  // frame term is 5
  buf = enc(ap);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // First entry's term below prev_term (log terms are non-decreasing).
  ap = append();
  ap.entries[0].term = 3;  // prev_term is 4
  buf = enc(ap);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // prev_term claimed for a batch that starts the log (seq 1 has no
  // predecessor), and the converse: no prev_term past the log start.
  ap = append();
  ap.prev_term = 2;
  ap.entries = {{1, 1, 4, 8}};
  buf = enc(ap);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  ap = append();
  ap.prev_term = 0;
  buf = enc(ap);  // entries still start at seq 42
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // Ack naming a term for an empty log, an empty term for a non-empty
  // one, and a term ahead of the acker's own.
  Frame ack;
  ack.kind = FrameKind::kAck;
  ack.node = 2;
  ack.term = 5;
  ack.ack_seq = 0;
  ack.ack_term = 3;
  buf = enc(ack);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  ack.ack_seq = 44;
  ack.ack_term = 0;
  buf = enc(ack);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  ack.ack_term = 6;  // frame term is 5
  buf = enc(ack);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // Vote request whose last term is not behind its campaign term, and an
  // empty log claiming a last term.
  Frame vr;
  vr.kind = FrameKind::kVoteReq;
  vr.node = 1;
  vr.term = 6;
  vr.last_term = 6;
  vr.last_seqs = {44};
  buf = enc(vr);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
  vr.last_term = 2;
  vr.last_seqs = {0};
  buf = enc(vr);
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);

  // Vote response with granted byte neither 0 nor 1.
  Frame resp;
  resp.kind = FrameKind::kVoteResp;
  resp.granted = false;
  buf = enc(resp);
  buf[net::kLenPrefixSize + kReplHeaderSize] = 2;
  EXPECT_EQ(dec(buf, &out), DecodeResult::kError);
}

TEST(ReplWire, ReplicationFrameRejectedByClientDecoder) {
  // The planes share magic+version but not kinds: a replication frame on a
  // client connection must be a protocol error there, not a mystery frame.
  const std::vector<std::uint8_t> buf = enc(heartbeat());
  std::size_t consumed = 0;
  net::DecodedFrame out;
  EXPECT_EQ(net::decode_any(buf.data(), buf.size(), &consumed, &out),
            net::DecodeResult::kError);
}

}  // namespace
}  // namespace mgc::repl
