// Protocol-level election-safety and divergence-repair tests: one real
// Node against scripted fake peers speaking raw replication frames. The
// cluster tests exercise these paths end-to-end but cannot force the
// precise adversarial frame sequences that distinguish the Raft rules
// from their unsound shortcuts — a fake peer can. Covered here:
//
//   * the vote rule compares (last term, last seq) lexicographically —
//     a longer log with an older last term is DENIED (the fig-8
//     lost-write hole), a shorter log with a newer last term is granted,
//     and a term gets at most one vote;
//   * a prev_term mismatch truncates the follower back to the last
//     agreed position and acks it, so the leader's probe converges;
//   * a stale same-term heartbeat can never truncate at or below the
//     follower's commit point;
//   * a new leader does not commit inherited entries on quorum acks
//     alone — only a current-term entry moves the frontier (§5.4.2),
//     committing earlier entries transitively.
//
// Wiring: the node dials each fake peer's listener (that outbound link
// is where its acks, vote responses, and append streams arrive), and the
// fake peer dials the node's replication port to inject frames. No pump,
// no log on the fake side — every byte is the test's choice.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "net/socket.h"
#include "replication/node.h"
#include "replication/repl_wire.h"
#include "repl_test_util.h"

namespace mgc::repl {
namespace {

using testutil::insert;
using testutil::small_node_config;
using testutil::wait_until;

class FakePeer {
 public:
  explicit FakePeer(std::uint32_t id) : id_(id) {
    listener_ = net::listen_loopback(0, 4, &port_);
  }

  std::uint32_t id() const { return id_; }
  std::uint16_t port() const { return port_; }

  // Accepts the node's outbound link and dials its replication port.
  bool attach(std::uint16_t node_repl_port) {
    if (!listener_.valid()) return false;
    if (!wait_until([&] {
          const int fd = ::accept(listener_.get(), nullptr, nullptr);
          if (fd < 0) return false;
          net::set_nonblocking(fd);
          from_node_ = net::UniqueFd(fd);
          return true;
        })) {
      return false;
    }
    to_node_ = net::connect_tcp("127.0.0.1", node_repl_port);
    return from_node_.valid() && to_node_.valid();
  }

  void send(const Frame& f) {
    std::vector<std::uint8_t> buf;
    encode(f, buf);
    EXPECT_TRUE(net::send_all(to_node_.get(), buf.data(), buf.size()));
  }

  // Waits for the next frame of `kind` from the node, preserving queued
  // frames of other kinds (hellos are discarded).
  bool wait_for(FrameKind kind, Frame* out, int timeout_ms = 10000) {
    return wait_until(
        [&] {
          drain();
          for (auto it = pending_.begin(); it != pending_.end(); ++it) {
            if (it->kind == kind) {
              *out = *it;
              pending_.erase(it);
              return true;
            }
          }
          return false;
        },
        timeout_ms);
  }

 private:
  void drain() {
    std::uint8_t chunk[4096];
    for (;;) {
      const ssize_t n =
          net::recv_some(from_node_.get(), chunk, sizeof(chunk));
      if (n <= 0) break;  // EAGAIN (nonblocking) or EOF
      buf_.insert(buf_.end(), chunk, chunk + n);
    }
    for (;;) {
      Frame f;
      std::size_t consumed = 0;
      if (decode(buf_.data(), buf_.size(), &consumed, &f) !=
          DecodeResult::kFrame) {
        break;
      }
      buf_.erase(buf_.begin(),
                 buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
      if (f.kind != FrameKind::kHello) pending_.push_back(f);
    }
  }

  std::uint32_t id_;
  std::uint16_t port_ = 0;
  net::UniqueFd listener_;
  net::UniqueFd from_node_;  // the node's outbound link: we read it
  net::UniqueFd to_node_;    // our injection channel into the node
  std::vector<std::uint8_t> buf_;
  std::deque<Frame> pending_;
};

// One real node wired to two scripted peers (ids 1 and 2), matching the
// 3-node quorum-of-2 shape the cluster tests use.
struct Rig {
  NodeConfig cfg;
  FakePeer p1{1};
  FakePeer p2{2};
  std::unique_ptr<Node> node;

  Rig() {
    cfg = small_node_config();
    cfg.id = 0;
    cfg.start_as_leader = false;
    cfg.repl_port = 0;
    cfg.net.port = 0;
    node = std::make_unique<Node>(cfg);
    node->connect_peers({{1, p1.port()}, {2, p2.port()}});
  }

  bool attach() {
    return p1.attach(node->repl_port()) && p2.attach(node->repl_port());
  }
};

// A contiguous batch starting at first_seq whose entry terms are given in
// order; keys are synthesized from the seq.
Frame make_append(std::uint32_t from, std::uint64_t term,
                  std::uint64_t prev_term, std::uint64_t commit,
                  std::uint64_t first_seq,
                  const std::vector<std::uint64_t>& entry_terms) {
  Frame f;
  f.kind = FrameKind::kAppend;
  f.node = from;
  f.term = term;
  f.commit_seq = commit;
  f.prev_term = prev_term;
  std::uint64_t seq = first_seq;
  for (std::uint64_t t : entry_terms) {
    f.entries.push_back(AppendEntry{seq, seq * 10, t, 64});
    ++seq;
  }
  return f;
}

TEST(ReplElection, VoteRuleComparesTermBeforeLength) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  Node& n = *rig.node;

  // Seed: an acting leader (peer 1, term 2) streams five entries.
  rig.p1.send(make_append(1, 2, 0, 0, 1, {2, 2, 2, 2, 2}));
  ASSERT_TRUE(wait_until([&] { return n.log().last_seq() == 5; }));

  // A candidate with a LONGER log whose last entry is OLDER. Under the
  // length-only rule this won (10 >= 5) and its stale suffix would then
  // overwrite newer entries; the (term, seq) rule denies it.
  Frame vr;
  vr.kind = FrameKind::kVoteReq;
  vr.node = 2;
  vr.term = 3;
  vr.last_term = 1;
  vr.last_seqs = {10};
  rig.p2.send(vr);
  Frame resp;
  ASSERT_TRUE(rig.p2.wait_for(FrameKind::kVoteResp, &resp));
  EXPECT_FALSE(resp.granted);
  EXPECT_EQ(resp.term, 3u);
  EXPECT_EQ(n.term(), 3u);  // the term still advances

  // A candidate with a SHORTER log but a NEWER last term is granted.
  vr.term = 4;
  vr.last_term = 3;
  vr.last_seqs = {3};
  rig.p2.send(vr);
  ASSERT_TRUE(rig.p2.wait_for(FrameKind::kVoteResp, &resp));
  EXPECT_TRUE(resp.granted);

  // One vote per term: a rival with an even better log is refused.
  vr.node = 1;
  vr.last_seqs = {100};
  rig.p1.send(vr);
  ASSERT_TRUE(rig.p1.wait_for(FrameKind::kVoteResp, &resp));
  EXPECT_FALSE(resp.granted);
  EXPECT_EQ(resp.term, 4u);
}

TEST(ReplElection, PrevTermMismatchTruncatesBackToAgreement) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  Node& n = *rig.node;

  // Old leader (term 2) streams five entries.
  rig.p1.send(make_append(1, 2, 0, 0, 1, {2, 2, 2, 2, 2}));
  ASSERT_TRUE(wait_until([&] { return n.log().last_seq() == 5; }));

  // New leader (peer 2, term 3) holds [2,2,2,2,3,3]: its entry at seq 5
  // was created in term 3, the node's in term 2. Streaming from seq 6
  // with prev_term 3 must expose the divergence at seq 5: the node
  // truncates to 4 and acks the rewound position — without ever applying
  // the batch past the mismatch.
  rig.p2.send(make_append(2, 3, 3, 0, 6, {3}));
  Frame ack;
  // Skip the empty-log anchor ack the node sent when its outbound link
  // to peer 2 first came up — only the post-truncation ack matters.
  do {
    ASSERT_TRUE(rig.p2.wait_for(FrameKind::kAck, &ack));
  } while (ack.ack_seq == 0);
  EXPECT_EQ(ack.ack_seq, 4u);
  EXPECT_EQ(ack.ack_term, 2u);
  EXPECT_EQ(n.log().last_seq(), 4u);
  EXPECT_EQ(n.stats().truncated_entries, 1u);

  // The probe from the acked position now agrees (seq 4 was created in
  // term 2) and the term-3 suffix lands.
  rig.p2.send(make_append(2, 3, 2, 0, 5, {3, 3}));
  ASSERT_TRUE(wait_until([&] { return n.log().last_seq() == 6; }));
  const std::vector<ReplLog::Entry> snap = n.log().entries();
  EXPECT_EQ(snap[3].term, 2u);
  EXPECT_EQ(snap[4].term, 3u);
  EXPECT_EQ(snap[5].term, 3u);
}

TEST(ReplElection, StaleHeartbeatCannotTruncateCommittedEntries) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  Node& n = *rig.node;

  // Leader streams eight entries and declares commit 6.
  rig.p1.send(make_append(1, 2, 0, 0, 1, {2, 2, 2, 2, 2, 2, 2, 2}));
  ASSERT_TRUE(wait_until([&] { return n.log().last_seq() == 8; }));
  Frame hb;
  hb.kind = FrameKind::kHeartbeat;
  hb.node = 1;
  hb.term = 2;
  hb.shards = {{6, 8}};
  rig.p1.send(hb);
  ASSERT_TRUE(wait_until([&] { return n.commit_seq() == 6; }));

  // A stale same-term heartbeat claiming last 4 — the shape a buffered
  // old-connection frame takes. Without the floor this truncated to 4,
  // deleting two quorum-committed entries and stranding commit_ past the
  // log end; the floor stops the cut at the commit point.
  hb.shards = {{4, 4}};
  rig.p1.send(hb);
  ASSERT_TRUE(wait_until([&] { return n.log().last_seq() == 6; }));
  EXPECT_EQ(n.commit_seq(), 6u);
  EXPECT_EQ(n.stats().truncated_entries, 2u);  // only the uncommitted tail
}

TEST(ReplElection, CommitWaitsForACurrentTermEntry) {
  Rig rig;
  ASSERT_TRUE(rig.attach());
  Node& n = *rig.node;

  // An old leader (term 1) streams three entries, never committing them.
  rig.p1.send(make_append(1, 1, 0, 0, 1, {1, 1, 1}));
  ASSERT_TRUE(wait_until([&] { return n.log().last_seq() == 3; }));

  // Silence past the detector budget: the node campaigns for term 2
  // (advertising its last entry's term) and wins with peer 1's grant.
  n.advance_ticks(
      static_cast<std::uint64_t>(rig.cfg.election_timeout_ticks) + 1);
  Frame vreq;
  ASSERT_TRUE(rig.p1.wait_for(FrameKind::kVoteReq, &vreq));
  EXPECT_EQ(vreq.term, 2u);
  EXPECT_EQ(vreq.last_term, 1u);
  ASSERT_GE(vreq.last_seqs.size(), 1u);
  EXPECT_EQ(vreq.last_seqs[0], 3u);
  Frame grant;
  grant.kind = FrameKind::kVoteResp;
  grant.node = 1;
  grant.term = 2;
  grant.granted = true;
  rig.p1.send(grant);
  ASSERT_TRUE(wait_until([&] { return n.is_leader(); }));

  // Quorum replication of the inherited term-1 entries alone must NOT
  // commit them (§5.4.2): the verified ack anchors the peer's match at
  // 3, but the frontier entry is not of the current term — a later
  // leader could still legally overwrite it.
  Frame ack;
  ack.kind = FrameKind::kAck;
  ack.node = 1;
  ack.term = 2;
  ack.ack_seq = 3;
  ack.ack_term = 1;
  rig.p1.send(ack);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(n.commit_seq(), 0u);

  // The first current-term write commits, and everything below it
  // transitively. The append must name prev_term 1 and carry the new
  // entry under term 2.
  auto prom = std::make_shared<std::promise<kv::Response>>();
  auto fut = prom->get_future();
  ASSERT_EQ(n.try_submit(insert(500),
                         [prom](const kv::Response& r) {
                           prom->set_value(r);
                         }),
            kv::SubmitResult::kAccepted);
  Frame ap;
  ASSERT_TRUE(rig.p1.wait_for(FrameKind::kAppend, &ap));
  EXPECT_EQ(ap.prev_term, 1u);
  ASSERT_EQ(ap.entries.size(), 1u);
  EXPECT_EQ(ap.entries[0].seq, 4u);
  EXPECT_EQ(ap.entries[0].term, 2u);
  ack.ack_seq = 4;
  ack.ack_term = 2;
  rig.p1.send(ack);
  ASSERT_TRUE(wait_until([&] { return n.commit_seq() == 4; }));
  ASSERT_EQ(fut.wait_for(std::chrono::seconds(10)),
            std::future_status::ready);
  EXPECT_EQ(fut.get().status, kv::ExecStatus::kOk);
}

}  // namespace
}  // namespace mgc::repl
