// GC-pause-driven failover and its determinism. The failure detector is a
// missed-heartbeat COUNT on an externally ticked clock, so a scripted
// scenario — load, silence the leader (Site::kReplHeartbeatLoss), tick the
// detectors past threshold, elect, keep writing, heal — must produce the
// SAME final state every run under the same MGC_FAULT seed: same leader,
// byte-identical logs, same client-visible acked-write set. The wall-clock
// interleaving of pump threads may differ; the OUTCOME may not.
//
// Also covered: the detector threshold itself (one tick short of the
// budget must NOT elect), and a real stop-the-world pause parking the
// leader's pump — the sensor the whole design rides on — observed as
// missed heartbeats.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "replication/cluster.h"
#include "repl_test_util.h"
#include "support/fault.h"

namespace mgc::repl {
namespace {

using testutil::insert;
using testutil::small_node_config;
using testutil::submit_sync;
using testutil::tick_slowly;
using testutil::wait_logs_at;
using testutil::wait_until;

ClusterConfig three_nodes() {
  ClusterConfig cc;
  cc.nodes = 3;
  cc.node = small_node_config();
  return cc;
}

// Everything that must be identical across same-seed runs.
struct Outcome {
  int leader = -1;
  std::uint64_t term = 0;
  std::vector<ReplLog::Entry> log;  // converged — identical on all nodes
  std::vector<std::uint64_t> acked;
  std::vector<std::string> violations;
  std::string stalled_at;  // which phase gave up, when !converged
  bool converged = false;
};

bool outcome_equal(const Outcome& a, const Outcome& b) {
  if (a.leader != b.leader || a.term != b.term || a.acked != b.acked ||
      a.log.size() != b.log.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.log.size(); ++i) {
    const ReplLog::Entry& x = a.log[i];
    const ReplLog::Entry& y = b.log[i];
    if (x.seq != y.seq || x.key != y.key || x.value_len != y.value_len ||
        x.shard != y.shard || x.shard_seq != y.shard_seq ||
        x.term != y.term) {
      return false;
    }
  }
  return true;
}

// One line per node: enough state to see which hop of the
// write→append→ack→commit chain broke when a phase stalls.
std::string cluster_state(Cluster& c) {
  std::string s;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const NodeStats st = c.node(i).stats();
    s += " n" + std::to_string(i) +
         "{role=" + std::to_string(static_cast<int>(c.node(i).role())) +
         " term=" + std::to_string(c.node(i).term()) +
         " last=" + std::to_string(c.node(i).log().last_seq()) +
         " commit=" + std::to_string(c.node(i).commit_seq()) +
         " ap_sent=" + std::to_string(st.append_batches_sent) +
         " acks=" + std::to_string(st.acks_sent) +
         " applied=" + std::to_string(st.entries_applied) +
         " gaps=" + std::to_string(st.stream_gaps) +
         " resets=" + std::to_string(st.links_reset) +
         " cfail=" + std::to_string(st.connect_failures) + "}";
  }
  return s;
}

Outcome run_failover_scenario(std::uint64_t seed) {
  Outcome out;
  out.stalled_at = "initial-leader";
  ClusterConfig cc = three_nodes();
  cc.node.pending_timeout_ticks = 6;
  Cluster c(cc);
  if (!c.node(0).is_leader()) return out;

  // Phase 1: committed prefix.
  for (std::uint64_t k = 0; k < 12; ++k) {
    if (submit_sync(c.node(0), insert(k)).status != kv::ExecStatus::kOk) {
      out.stalled_at =
          "prefix-write-" + std::to_string(k) + cluster_state(c);
      return out;
    }
    out.acked.push_back(k);
  }
  out.stalled_at = "prefix-replication";
  if (!wait_logs_at(c, 12)) return out;

  // Phase 2: silence the leader and tick the detectors past threshold.
  // Node 1 has the smallest stagger, so it must win term 2 — every run.
  // The 10ms tick gap gives node 1's election a full stagger tick of
  // wall time to complete before node 2's budget would also expire —
  // under sanitizer slowdown a 2ms gap lets a rival candidacy race it.
  {
    out.stalled_at = "election";
    fault::ScopedSpec guard("repl-heartbeat-loss:scope=0", seed);
    tick_slowly(c, cc.node.election_timeout_ticks + 4, /*gap_ms=*/10);
    if (!wait_until([&] { return c.node(1).is_leader(); })) return out;
  }

  // Phase 3: write through the new leader, then heal. The deposed leader
  // adopts term 2 from the new leader's heartbeats and catches up.
  for (std::uint64_t k = 100; k < 108; ++k) {
    out.stalled_at = "post-failover-write-" + std::to_string(k);
    if (!wait_until([&] {
          return submit_sync(c.node(1), insert(k)).status ==
                 kv::ExecStatus::kOk;
        })) {
      return out;
    }
    out.acked.push_back(k);
  }
  tick_slowly(c, 4);
  out.stalled_at = "log-convergence";
  if (!wait_logs_at(c, c.node(1).log().last_seq())) return out;
  out.stalled_at = "ex-leader-demotion";
  if (!wait_until([&] { return c.node(0).role() == Role::kFollower; })) {
    return out;
  }

  out.leader = c.leader_index();
  out.term = c.node(1).term();
  out.log = c.node(1).log().entries();
  out.violations = c.verify(&out.acked);
  out.stalled_at.clear();
  out.converged = true;
  return out;
}

TEST(ReplFailover, SameSeedSameFinalState) {
  const Outcome a = run_failover_scenario(21);
  ASSERT_TRUE(a.converged)
      << "first run did not converge (stalled at " << a.stalled_at << ")";
  for (const std::string& v : a.violations) ADD_FAILURE() << "run A: " << v;
  EXPECT_EQ(a.leader, 1);
  EXPECT_EQ(a.term, 2u);
  EXPECT_EQ(a.log.size(), 20u);  // 12 prefix + 8 post-failover

  const Outcome b = run_failover_scenario(21);
  ASSERT_TRUE(b.converged)
      << "second run did not converge (stalled at " << b.stalled_at << ")";
  for (const std::string& v : b.violations) ADD_FAILURE() << "run B: " << v;

  EXPECT_TRUE(outcome_equal(a, b))
      << "same seed produced different final states: leader " << a.leader
      << "/" << b.leader << ", log " << a.log.size() << "/" << b.log.size()
      << ", acked " << a.acked.size() << "/" << b.acked.size();
}

TEST(ReplFailover, DetectorHoldsOneTickShortOfThreshold) {
  ClusterConfig cc = three_nodes();
  Cluster c(cc);
  ASSERT_TRUE(c.node(0).is_leader());

  // Silence the leader, but tick only to one short of node 1's budget
  // (election_timeout_ticks + id). No election may start.
  {
    fault::ScopedSpec guard("repl-heartbeat-loss:scope=0", 22);
    tick_slowly(c, cc.node.election_timeout_ticks + 1 - 1);
    EXPECT_EQ(c.node(1).stats().elections_started, 0u);
    EXPECT_EQ(c.node(2).stats().elections_started, 0u);
    EXPECT_TRUE(c.node(0).is_leader());

    // The next tick crosses the threshold: exactly node 1 fires.
    tick_slowly(c, 1);
    ASSERT_TRUE(wait_until([&] {
      return c.node(1).stats().elections_started == 1;
    }));
  }
  ASSERT_TRUE(wait_until([&] { return c.node(1).is_leader(); }));
  EXPECT_EQ(c.node(2).stats().elections_started, 0u);
}

TEST(ReplFailover, StwPauseParksThePumpAndSuppressesHeartbeats) {
  // The sensor itself: a forced full collection on the leader's VM parks
  // its pump at the safepoint. Heartbeats sent before and after the pause
  // bracket a gap — the pump sent nothing while the world was stopped.
  Cluster c(three_nodes());
  ASSERT_TRUE(c.node(0).is_leader());
  for (std::uint64_t k = 0; k < 64; ++k) {
    ASSERT_EQ(submit_sync(c.node(0), insert(k, 512)).status,
              kv::ExecStatus::kOk);
  }

  tick_slowly(c, 2);
  const std::uint64_t before = c.node(0).stats().heartbeats_sent;

  // Tick WHILE the world is stopped: the pump cannot process these until
  // the collector releases it.
  std::thread ticker([&] {
    for (int t = 0; t < 6; ++t) {
      c.tick(1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  {
    Vm::MutatorScope scope(c.node(0).vm(), "test-forced-pause");
    scope.mutator().system_gc();
  }
  ticker.join();

  // The backlog drains now — the ticks all get processed, late.
  ASSERT_TRUE(wait_until([&] {
    return c.node(0).stats().heartbeats_sent >= before + 1;
  }));
  EXPECT_GE(c.node(0).vm().full_gc_epoch(), 1u)
      << "forced collection did not run";

  // Cluster is intact either way: if the pause outlasted the detector the
  // followers elected, otherwise node 0 still leads — both are legal; lost
  // acked writes are not.
  ASSERT_TRUE(wait_until([&] { return c.leader_index() >= 0; }));
  std::vector<std::uint64_t> acked;
  for (std::uint64_t k = 0; k < 64; ++k) acked.push_back(k);
  for (const std::string& v : c.verify(&acked)) ADD_FAILURE() << v;
}

}  // namespace
}  // namespace mgc::repl
