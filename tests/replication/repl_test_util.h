// Shared rig for the replication tests: a small-heap NodeConfig the
// in-process cluster tests can tick deterministically, a synchronous
// submit wrapper over the asynchronous RequestSink surface, and a bounded
// condition spin.
#pragma once

#include <chrono>
#include <functional>
#include <future>
#include <thread>

#include "replication/cluster.h"
#include "support/units.h"

namespace mgc::repl::testutil {

inline NodeConfig small_node_config() {
  NodeConfig nc;
  nc.shards = 2;
  nc.quorum = 2;
  nc.heartbeat_every_ticks = 1;
  nc.election_timeout_ticks = 8;
  nc.retransmit_ticks = 2;
  nc.vm.gc = GcKind::kSerial;
  nc.vm.heap_bytes = 32 * MiB;
  nc.vm.young_bytes = 8 * MiB;
  nc.vm.gc_threads = 2;
  nc.store = kv::StoreConfig::default_config(nc.vm.heap_bytes);
  return nc;
}

// Submits one request and waits for its completion. Rejections (which by
// contract never run the completion) are mapped onto the response status —
// the SubmitResult and ExecStatus enumerators share values by design. A
// completion that never fires within the deadline reports kShutdown with
// found=false; the caller's expectation then fails loudly rather than the
// test hanging.
inline kv::Response submit_sync(Node& n, const kv::Request& req,
                                int timeout_ms = 10000) {
  auto prom = std::make_shared<std::promise<kv::Response>>();
  auto fut = prom->get_future();
  const kv::SubmitResult sr = n.try_submit(
      req, [prom](const kv::Response& r) { prom->set_value(r); });
  if (sr != kv::SubmitResult::kAccepted) {
    kv::Response r;
    r.status = static_cast<kv::ExecStatus>(sr);
    return r;
  }
  if (fut.wait_for(std::chrono::milliseconds(timeout_ms)) !=
      std::future_status::ready) {
    kv::Response r;
    r.status = kv::ExecStatus::kShutdown;
    return r;
  }
  return fut.get();
}

inline kv::Request insert(std::uint64_t key, std::size_t len = 64) {
  kv::Request req;
  req.op = kv::OpType::kInsert;
  req.key = key;
  req.value_len = len;
  return req;
}

inline kv::Request read(std::uint64_t key) {
  kv::Request req;
  req.op = kv::OpType::kRead;
  req.key = key;
  return req;
}

inline bool wait_until(const std::function<bool()>& pred,
                       int timeout_ms = 10000) {
  for (int waited = 0; waited <= timeout_ms; ++waited) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// All live nodes hold the same log length.
inline bool wait_logs_at(Cluster& c, std::uint64_t seq,
                         int timeout_ms = 10000) {
  return wait_until(
      [&] {
        for (std::size_t i = 0; i < c.size(); ++i) {
          if (c.node(i).log().last_seq() != seq) return false;
        }
        return true;
      },
      timeout_ms);
}

// Ticks the whole cluster one tick at a time with a small settle gap, so
// pumps process each tick (heartbeats, detector counts) in order. The
// stagger between rival candidates only works if ticks arrive roughly one
// at a time.
inline void tick_slowly(Cluster& c, int ticks, int gap_ms = 2) {
  for (int t = 0; t < ticks; ++t) {
    c.tick(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(gap_ms));
  }
}

}  // namespace mgc::repl::testutil
