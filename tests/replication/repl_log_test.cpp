// ReplLog unit tests: the single totally-ordered log with derived
// per-shard sequence annotations. Covers dense global/per-shard numbering,
// the idempotent follower append (duplicate / conflict / gap), windowed
// reads, and truncation rewinding the per-shard counts — the operation a
// rejoining ex-leader's divergence repair rides on.
#include <gtest/gtest.h>

#include <vector>

#include "replication/repl_log.h"

namespace mgc::repl {
namespace {

TEST(ReplLog, AppendAssignsDenseGlobalAndPerShardSeqs) {
  ReplLog log(2);
  std::uint64_t seq = 0;
  std::uint64_t term = 0;
  log.last(&seq, &term);
  EXPECT_EQ(seq, 0u);  // empty log: {0, 0}
  EXPECT_EQ(term, 0u);
  EXPECT_EQ(log.append(0, 100, 64, 1), 1u);
  EXPECT_EQ(log.append(1, 200, 64, 1), 2u);
  EXPECT_EQ(log.append(0, 101, 32, 2), 3u);
  EXPECT_EQ(log.last_seq(), 3u);
  EXPECT_EQ(log.shard_last(0), 2u);
  EXPECT_EQ(log.shard_last(1), 1u);
  EXPECT_EQ(log.term_at(1), 1u);
  EXPECT_EQ(log.term_at(3), 2u);
  log.last(&seq, &term);
  EXPECT_EQ(seq, 3u);
  EXPECT_EQ(term, 2u);

  const auto snap = log.entries();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].shard_seq, 1u);  // shard 0's first
  EXPECT_EQ(snap[1].shard_seq, 1u);  // shard 1's first
  EXPECT_EQ(snap[2].shard_seq, 2u);  // shard 0's second
  EXPECT_EQ(snap[2].key, 101u);
  EXPECT_EQ(snap[2].term, 2u);
}

TEST(ReplLog, AppendAtIsIdempotentAndDetectsDivergence) {
  ReplLog log(2);
  log.append(0, 100, 64, 1);
  log.append(1, 200, 64, 1);

  // Next-in-line entry appends and gets its shard_seq filled in.
  ReplLog::Entry e;
  e.seq = 3;
  e.key = 300;
  e.value_len = 16;
  e.shard = 1;
  EXPECT_EQ(log.append_at(&e), ReplLog::AppendAt::kAppended);
  EXPECT_EQ(e.shard_seq, 2u);

  // The identical record again: duplicate (a retransmit), not an error.
  ReplLog::Entry dup = e;
  EXPECT_EQ(log.append_at(&dup), ReplLog::AppendAt::kDuplicate);
  EXPECT_EQ(log.last_seq(), 3u);

  // Same position, different content: divergence.
  ReplLog::Entry conflict = e;
  conflict.key = 999;
  EXPECT_EQ(log.append_at(&conflict), ReplLog::AppendAt::kConflict);

  // Same position, identical content, different TERM: still divergence —
  // identity is Raft's (seq, term), content matching is coincidence.
  ReplLog::Entry term_conflict = e;
  term_conflict.term = e.term + 1;
  EXPECT_EQ(log.append_at(&term_conflict), ReplLog::AppendAt::kConflict);

  // A seq past the end of the log: gap (the stream lost a frame).
  ReplLog::Entry gap;
  gap.seq = 9;
  gap.key = 1;
  gap.shard = 0;
  EXPECT_EQ(log.append_at(&gap), ReplLog::AppendAt::kGap);
  EXPECT_EQ(log.last_seq(), 3u);
}

TEST(ReplLog, ReadFromWindows) {
  ReplLog log(1);
  for (std::uint64_t k = 0; k < 10; ++k) log.append(0, k, 8, 1);

  std::vector<ReplLog::Entry> out;
  EXPECT_EQ(log.read_from(1, 4, &out), 4u);
  EXPECT_EQ(out.front().seq, 1u);
  EXPECT_EQ(out.back().seq, 4u);

  EXPECT_EQ(log.read_from(8, 100, &out), 3u);
  EXPECT_EQ(out.front().seq, 8u);
  EXPECT_EQ(out.back().seq, 10u);

  EXPECT_EQ(log.read_from(11, 4, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(ReplLog, TruncateRewindsPerShardCounts) {
  ReplLog log(2);
  log.append(0, 100, 8, 1);  // seq 1, shard 0 #1
  log.append(1, 200, 8, 1);  // seq 2, shard 1 #1
  log.append(0, 101, 8, 1);  // seq 3, shard 0 #2
  log.append(0, 102, 8, 1);  // seq 4, shard 0 #3

  std::vector<ReplLog::Entry> removed;
  EXPECT_EQ(log.truncate_above(2, &removed), 2u);
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0].seq, 3u);
  EXPECT_EQ(removed[1].seq, 4u);
  EXPECT_EQ(log.last_seq(), 2u);
  EXPECT_EQ(log.shard_last(0), 1u);
  EXPECT_EQ(log.shard_last(1), 1u);

  // Truncating at or past the end is a no-op.
  EXPECT_EQ(log.truncate_above(2, nullptr), 0u);
  EXPECT_EQ(log.truncate_above(99, nullptr), 0u);

  // A fresh append after the rewind re-uses the freed numbering — the
  // replacement entry occupies the same global and per-shard positions the
  // truncated one did.
  EXPECT_EQ(log.append(0, 777, 8, 2), 3u);
  const auto snap = log.entries();
  EXPECT_EQ(snap.back().shard_seq, 2u);
  EXPECT_EQ(snap.back().term, 2u);
}

}  // namespace
}  // namespace mgc::repl
