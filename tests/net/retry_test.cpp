// Client-side degradation: BlockingClient::execute() must ride out load
// shedding and transport failures the way a real YCSB client box does —
// bounded timeouts, capped exponential backoff, reconnect — and when the
// server is truly gone it must return a typed failure promptly, never hang
// or abort. Paired with the server-side shedding tests: the kOverloaded
// the backend emits under GC pressure is exactly what this retry loop is
// built to absorb.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>

#include "kvstore/server.h"
#include "net/blocking_client.h"
#include "net/net_server.h"
#include "support/fault.h"
#include "support/units.h"

namespace mgc::net {
namespace {

VmConfig small_cfg() {
  VmConfig c;
  c.gc = GcKind::kParNew;
  c.heap_bytes = 24 * MiB;
  c.young_bytes = 6 * MiB;
  c.gc_threads = 2;
  return c;
}

// Tight policy so the whole exhausted-retry path runs in well under a
// second even when every attempt times out.
RetryPolicy fast_policy() {
  RetryPolicy p;
  p.max_attempts = 3;
  p.timeout_ms = 250;
  p.backoff_initial_ms = 1;
  p.backoff_cap_ms = 8;
  return p;
}

struct ServerRig {
  explicit ServerRig(int workers = 2)
      : vm(small_cfg()),
        store(vm, kv::StoreConfig::default_config(small_cfg().heap_bytes)),
        server(vm, store, workers),
        net(std::make_unique<NetServer>(server)) {}

  Vm vm;
  kv::Store store;
  kv::Server server;
  std::unique_ptr<NetServer> net;
};

TEST(NetRetry, DeadPortReturnsTypedFailureWithoutHanging) {
  // Grab a kernel-assigned port, then close the listener: nothing is home.
  std::uint16_t dead_port = 0;
  {
    UniqueFd listener = listen_loopback(0, 1, &dead_port);
    ASSERT_TRUE(listener.valid());
  }

  const auto t0 = std::chrono::steady_clock::now();
  BlockingClient client("127.0.0.1", dead_port, fast_policy());
  EXPECT_FALSE(client.connected());

  kv::Request req;
  req.op = kv::OpType::kRead;
  req.key = 1;
  const kv::Response resp = client.execute(req);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);

  // The transport never produced a response: typed kShutdown, and every
  // attempt burned a (failed) reconnect rather than spinning or aborting.
  EXPECT_EQ(resp.status, kv::ExecStatus::kShutdown);
  EXPECT_FALSE(resp.found);
  EXPECT_EQ(client.retries(), 2u);  // max_attempts=3 => 2 retries
  EXPECT_LT(elapsed.count(), 5000) << "dead-port execute() must fail fast";
}

TEST(NetRetry, OverloadedResponsesAreBackedOffAndRetried) {
  ServerRig rig;
  BlockingClient client("127.0.0.1", rig.net->port(), fast_policy());
  ASSERT_TRUE(client.connected());

  // The first two submissions shed (exactly what the backend does when the
  // queue is full under GC pressure); the third is accepted.
  fault::Policy p;
  p.limit = 2;
  fault::ScopedFault shed(fault::Site::kKvQueueFull, p);

  kv::Request req;
  req.op = kv::OpType::kInsert;
  req.key = 42;
  req.value_len = 64;
  const kv::Response resp = client.execute(req);
  EXPECT_EQ(resp.status, kv::ExecStatus::kOk);
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(client.reconnects(), 0u)
      << "shedding is a typed response, not a transport failure";

  // The accepted attempt really executed.
  kv::Request read;
  read.op = kv::OpType::kRead;
  read.key = 42;
  const kv::Response got = client.execute(read);
  EXPECT_EQ(got.status, kv::ExecStatus::kOk);
  EXPECT_TRUE(got.found);

  rig.net->shutdown();
}

TEST(NetRetry, ServerSideEpipeTriggersReconnectAndSucceeds) {
  ServerRig rig;
  BlockingClient client("127.0.0.1", rig.net->port(), fast_policy());
  ASSERT_TRUE(client.connected());

  {
    // One injected EPIPE on the server's response flush: the connection
    // dies mid-round-trip, the client must reconnect and resend.
    fault::Policy once;
    once.limit = 1;
    fault::ScopedFault epipe(fault::Site::kNetEpipe, once);
    kv::Request req;
    req.op = kv::OpType::kInsert;
    req.key = 7;
    req.value_len = 64;
    const kv::Response resp = client.execute(req);
    EXPECT_EQ(resp.status, kv::ExecStatus::kOk);
    EXPECT_GE(client.reconnects(), 1u);
  }

  kv::Request read;
  read.op = kv::OpType::kRead;
  read.key = 7;
  const kv::Response got = client.execute(read);
  EXPECT_TRUE(got.found);

  rig.net->shutdown();
}

TEST(NetRetry, DecorrelatedJitterIsSeededAndBounded) {
  // The backoff schedule is a pure function of jitter_seed: two clients
  // with the same policy walk identical schedules (fault-replay runs that
  // fix the seed reproduce the exact same retry timing), a different seed
  // walks a different one, and every delay honors the [initial, cap] band.
  RetryPolicy p = fast_policy();
  p.backoff_initial_ms = 2;
  p.backoff_cap_ms = 64;
  RetryPolicy q = p;
  q.jitter_seed = p.jitter_seed + 1;

  BlockingClient a("127.0.0.1", 1, p);
  BlockingClient b("127.0.0.1", 1, p);
  BlockingClient c("127.0.0.1", 1, q);

  int pa = p.backoff_initial_ms, pb = pa, pc = pa;
  bool seed_matters = false;
  for (int i = 0; i < 64; ++i) {
    pa = a.next_backoff_ms(pa);
    pb = b.next_backoff_ms(pb);
    pc = c.next_backoff_ms(pc);
    EXPECT_EQ(pa, pb) << "same seed diverged at step " << i;
    EXPECT_GE(pa, p.backoff_initial_ms);
    EXPECT_LE(pa, p.backoff_cap_ms);
    if (pa != pc) seed_matters = true;
  }
  EXPECT_TRUE(seed_matters) << "jitter_seed had no effect on the schedule";

  // With jitter off the schedule is the classic deterministic doubling
  // from the initial delay, clipped at the cap.
  RetryPolicy plain = p;
  plain.decorrelated_jitter = false;
  BlockingClient d("127.0.0.1", 1, plain);
  EXPECT_EQ(d.next_backoff_ms(2), 4);
  EXPECT_EQ(d.next_backoff_ms(4), 8);
  EXPECT_EQ(d.next_backoff_ms(48), 64);  // capped
}

TEST(NetRetry, ShortReadsAndWritesAreInvisibleToTheCaller) {
  ServerRig rig;
  // Byte-at-a-time reads and writes on the server side: slower, but the
  // framing layer must reassemble everything and the client sees clean
  // round trips with no retries at all.
  fault::disarm_all();
  std::string err;
  ASSERT_TRUE(fault::parse_spec("net-read-short;net-write-short", &err)) << err;
  BlockingClient client("127.0.0.1", rig.net->port(), fast_policy());
  ASSERT_TRUE(client.connected());

  for (int i = 0; i < 32; ++i) {
    kv::Request req;
    req.op = kv::OpType::kInsert;
    req.key = static_cast<std::uint64_t>(i);
    req.value_len = 48;
    const kv::Response resp = client.execute(req);
    ASSERT_EQ(resp.status, kv::ExecStatus::kOk) << i;
  }
  EXPECT_EQ(client.retries(), 0u);
  EXPECT_EQ(client.reconnects(), 0u);
  fault::disarm_all();

  rig.net->shutdown();
}

}  // namespace
}  // namespace mgc::net
