// Fault injection against the epoll front-end: clients that disconnect
// mid-request, half-written frames at shutdown, and shutdown racing live
// traffic. Runs under the `stress` ctest label so the TSan job covers the
// event-loop vs. worker-pool handoff (completion queue, eventfd wakeups,
// connection teardown while requests are in flight).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "kvstore/server.h"
#include "net/blocking_client.h"
#include "net/net_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "support/units.h"

namespace mgc::net {
namespace {

VmConfig small_cfg() {
  VmConfig c;
  c.gc = GcKind::kParNew;
  c.heap_bytes = 24 * MiB;
  c.young_bytes = 6 * MiB;
  c.gc_threads = 2;
  return c;
}

// Polls `cond` for up to `ms` milliseconds.
bool eventually(int ms, const std::function<bool()>& cond) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

TEST(NetFault, DisconnectMidRequestDropsConnectionNotServer) {
  VmConfig cfg = small_cfg();
  Vm vm(cfg);
  kv::StoreConfig scfg = kv::StoreConfig::default_config(cfg.heap_bytes);
  kv::Store store(vm, scfg);
  kv::Server server(vm, store, /*workers=*/2);
  NetServer net(server);

  constexpr int kRounds = 50;
  for (int i = 0; i < kRounds; ++i) {
    UniqueFd fd = connect_tcp("127.0.0.1", net.port());
    ASSERT_TRUE(fd.valid());
    // A valid request, then vanish without reading the response. The
    // worker still executes it; the loop must drop the completion and reap
    // the connection instead of leaking the in-flight slot.
    RequestFrame f;
    f.req.op = kv::OpType::kInsert;
    f.req.key = static_cast<std::uint64_t>(i);
    f.req.value_len = 64;
    f.tag = static_cast<std::uint64_t>(i) + 1;
    std::vector<std::uint8_t> bytes;
    encode_request(f, bytes);
    ASSERT_TRUE(send_all(fd.get(), bytes.data(), bytes.size()));
    fd.reset();  // immediate close, response still in flight
  }

  // Every abandoned request still executed on the backend...
  ASSERT_TRUE(eventually(5000, [&] {
    return server.completed() >= static_cast<std::uint64_t>(kRounds);
  })) << "abandoned requests never executed";

  // ...every connection gets reaped (no leaked pending slots keeping them
  // alive), and the accept loop is not wedged: a fresh client still works.
  ASSERT_TRUE(eventually(5000, [&] {
    const NetServerStats s = net.stats();
    return s.closed == s.accepted && s.accepted >= kRounds;
  })) << "connections leaked: " << net.stats().closed << "/"
      << net.stats().accepted;

  BlockingClient survivor("127.0.0.1", net.port());
  ASSERT_TRUE(survivor.connected());
  kv::Request req;
  req.op = kv::OpType::kRead;
  req.key = 0;
  ResponseFrame resp;
  ASSERT_TRUE(survivor.call(req, &resp));
  EXPECT_TRUE(resp.found) << "insert from a disconnected client was lost";

  net.shutdown();
  const NetServerStats s = net.stats();
  EXPECT_EQ(s.frames_in, static_cast<std::uint64_t>(kRounds) + 1);
  // Responses to vanished clients are dropped (the completion arrives
  // after the connection died) or written into a broken socket; either
  // way they must be accounted, not leaked.
  EXPECT_EQ(s.closed, s.accepted);
}

TEST(NetFault, HalfWrittenFrameAtShutdownDoesNotWedgeDrain) {
  VmConfig cfg = small_cfg();
  Vm vm(cfg);
  kv::StoreConfig scfg = kv::StoreConfig::default_config(cfg.heap_bytes);
  kv::Store store(vm, scfg);
  kv::Server server(vm, store, /*workers=*/2);
  auto net = std::make_unique<NetServer>(server);
  const std::uint16_t port = net->port();

  // Connection A: a half-written request frame (first 7 of 28 bytes).
  UniqueFd half = connect_tcp("127.0.0.1", port);
  ASSERT_TRUE(half.valid());
  RequestFrame f;
  f.req.op = kv::OpType::kInsert;
  f.req.key = 9;
  f.req.value_len = 64;
  f.tag = 77;
  std::vector<std::uint8_t> bytes;
  encode_request(f, bytes);
  ASSERT_TRUE(send_all(half.get(), bytes.data(), 7));

  // Connection B: a complete request whose response we deliberately do not
  // read until after shutdown — the drain must flush it first.
  UniqueFd pending = connect_tcp("127.0.0.1", port);
  ASSERT_TRUE(pending.valid());
  RequestFrame g = f;
  g.req.key = 10;
  g.tag = 78;
  std::vector<std::uint8_t> gbytes;
  encode_request(g, gbytes);
  ASSERT_TRUE(send_all(pending.get(), gbytes.data(), gbytes.size()));
  // Make sure the frame reached the loop before the drain starts.
  ASSERT_TRUE(eventually(5000, [&] { return net->stats().frames_in >= 1; }));

  const auto t0 = std::chrono::steady_clock::now();
  net->shutdown();  // must drain B, discard A's partial frame, and return
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 5000) << "drain hit the force-close deadline";

  // B's response was flushed before its connection closed.
  std::vector<std::uint8_t> acc;
  for (;;) {
    std::uint8_t chunk[64];
    const ssize_t n = recv_some(pending.get(), chunk, sizeof(chunk));
    if (n <= 0) break;
    acc.insert(acc.end(), chunk, chunk + n);
  }
  RequestFrame qignored;
  ResponseFrame resp;
  std::size_t consumed = 0;
  ASSERT_EQ(decode_frame(acc.data(), acc.size(), &consumed, &qignored, &resp),
            DecodeResult::kResponse);
  EXPECT_EQ(resp.tag, 78u);
  EXPECT_TRUE(resp.found);

  // A got EOF without a response (its frame never completed).
  std::uint8_t buf[16];
  EXPECT_EQ(recv_some(half.get(), buf, sizeof(buf)), 0);

  const NetServerStats s = net->stats();
  EXPECT_EQ(s.closed, s.accepted);
  net.reset();
}

TEST(NetFault, ShutdownUnderLiveTrafficNeverHangs) {
  VmConfig cfg = small_cfg();
  Vm vm(cfg);
  kv::StoreConfig scfg = kv::StoreConfig::default_config(cfg.heap_bytes);
  kv::Store store(vm, scfg);
  kv::Server server(vm, store, /*workers=*/3);
  NetServer net(server);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok_calls{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient cl("127.0.0.1", net.port());
      if (!cl.connected()) return;
      std::uint64_t key = static_cast<std::uint64_t>(c) << 32;
      while (!stop.load(std::memory_order_acquire)) {
        kv::Request req;
        req.op = kv::OpType::kInsert;
        req.key = key++;
        req.value_len = 64;
        ResponseFrame resp;
        // After shutdown begins the transport fails (EOF) — that is the
        // expected way out of the loop.
        if (!cl.call(req, &resp)) break;
        if (resp.status == kv::ExecStatus::kOk) ok_calls.fetch_add(1);
      }
    });
  }

  // Let traffic flow, then pull the plug mid-flight.
  ASSERT_TRUE(eventually(5000, [&] { return ok_calls.load() > 200; }));
  net.shutdown();
  stop.store(true, std::memory_order_release);
  for (auto& t : clients) t.join();

  const NetServerStats s = net.stats();
  EXPECT_EQ(s.closed, s.accepted);
  EXPECT_GE(server.completed(), ok_calls.load());
  // Drain semantics: every response the server encoded corresponds to a
  // request it decoded; nothing in flight was dropped on the floor
  // (dropped_responses only counts clients that themselves vanished).
  EXPECT_EQ(s.frames_out + s.dropped_responses, s.frames_in);
}

}  // namespace
}  // namespace mgc::net
