// Loopback integration: M client threads x K ops against the epoll TCP
// front-end. Verifies per-client response counts, that responses are never
// cross-wired (the echoed tag must match the request, and read-your-own-
// writes must hold per thread), and that the backend's completed() count
// matches the sum of what the clients saw.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "kvstore/server.h"
#include "net/blocking_client.h"
#include "net/net_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "support/units.h"

namespace mgc::net {
namespace {

struct Rig {
  VmConfig cfg;
  Vm vm;
  kv::StoreConfig scfg;
  kv::Store store;
  kv::Server server;

  explicit Rig(int workers = 3, std::size_t queue_capacity = 64)
      : cfg(make_cfg()),
        vm(cfg),
        scfg(kv::StoreConfig::default_config(cfg.heap_bytes)),
        store(vm, scfg),
        server(vm, store, workers, queue_capacity) {}

  static VmConfig make_cfg() {
    VmConfig c;
    c.gc = GcKind::kParNew;
    c.heap_bytes = 24 * MiB;
    c.young_bytes = 6 * MiB;
    c.gc_threads = 2;
    return c;
  }
};

TEST(NetLoopback, MultiClientCountsAndTagIntegrity) {
  Rig rig;
  NetServer net(rig.server);
  ASSERT_GT(net.port(), 0);

  constexpr int kClients = 6;
  constexpr int kOpsPerClient = 400;
  std::atomic<std::uint64_t> responses{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient cl("127.0.0.1", net.port());
      ASSERT_TRUE(cl.connected());
      std::uint64_t expected_tag = 0;
      for (int i = 0; i < kOpsPerClient; ++i) {
        // Thread-private key space: read-your-own-writes proves responses
        // came from this connection's requests, not another client's.
        // Insert at even i, read the same key back at the following odd i.
        const std::uint64_t key =
            static_cast<std::uint64_t>(c) * 1000000 +
            static_cast<std::uint64_t>((i / 2) % 50);
        kv::Request req;
        if (i % 2 == 0) {
          req.op = kv::OpType::kInsert;
          req.key = key;
          req.value_len = 128;
        } else {
          req.op = kv::OpType::kRead;
          req.key = key;  // the insert directly before it
        }
        ResponseFrame resp;
        if (!cl.call(req, &resp)) {
          failures.fetch_add(1);
          return;
        }
        // BlockingClient's tags are sequential from 1; any cross-wired
        // response breaks the sequence.
        ++expected_tag;
        EXPECT_EQ(resp.tag, expected_tag);
        EXPECT_EQ(resp.status, kv::ExecStatus::kOk);
        if (req.op == kv::OpType::kRead) {
          EXPECT_TRUE(resp.found) << "lost our own insert of key " << key;
        }
        responses.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(responses.load(),
            static_cast<std::uint64_t>(kClients) * kOpsPerClient);
  EXPECT_EQ(rig.server.completed(), responses.load());

  net.shutdown();
  const NetServerStats s = net.stats();
  EXPECT_EQ(s.frames_in, responses.load());
  EXPECT_EQ(s.frames_out, responses.load());
  EXPECT_EQ(s.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.closed, s.accepted);
  EXPECT_EQ(s.protocol_errors, 0u);
  EXPECT_EQ(s.dropped_responses, 0u);
}

TEST(NetLoopback, PartialFramesAcrossWritesAndBatchedFrames) {
  Rig rig(/*workers=*/2);
  NetServer net(rig.server);

  UniqueFd fd = connect_tcp("127.0.0.1", net.port());
  ASSERT_TRUE(fd.valid());

  // One request dribbled a byte at a time: the server must buffer the
  // partial frame and answer once it completes.
  RequestFrame rf;
  rf.req.op = kv::OpType::kInsert;
  rf.req.key = 7;
  rf.req.value_len = 32;
  rf.tag = 42;
  std::vector<std::uint8_t> bytes;
  encode_request(rf, bytes);
  for (std::uint8_t b : bytes) {
    ASSERT_TRUE(send_all(fd.get(), &b, 1));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }

  auto read_response = [&](ResponseFrame* out) {
    std::vector<std::uint8_t> acc;
    for (;;) {
      RequestFrame qignored;
      std::size_t consumed = 0;
      const DecodeResult r = decode_frame(acc.data(), acc.size(), &consumed,
                                          &qignored, out);
      if (r == DecodeResult::kResponse) {
        acc.erase(acc.begin(), acc.begin() + static_cast<long>(consumed));
        return true;
      }
      if (r != DecodeResult::kNeedMore) return false;
      std::uint8_t chunk[256];
      const ssize_t n = recv_some(fd.get(), chunk, sizeof(chunk));
      if (n <= 0) return false;
      acc.insert(acc.end(), chunk, chunk + n);
    }
  };

  ResponseFrame resp;
  ASSERT_TRUE(read_response(&resp));
  EXPECT_EQ(resp.tag, 42u);
  EXPECT_TRUE(resp.found);

  // Several frames in one write: each must be answered, in order.
  std::vector<std::uint8_t> batch;
  for (std::uint64_t i = 0; i < 5; ++i) {
    RequestFrame f;
    f.req.op = kv::OpType::kRead;
    f.req.key = 7;
    f.tag = 100 + i;
    encode_request(f, batch);
  }
  ASSERT_TRUE(send_all(fd.get(), batch.data(), batch.size()));
  // Responses may be coalesced; read them off one decode at a time. Order
  // must match submission order on a single connection.
  std::vector<std::uint8_t> acc;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ResponseFrame r2;
    RequestFrame qignored;
    for (;;) {
      std::size_t consumed = 0;
      const DecodeResult r = decode_frame(acc.data(), acc.size(), &consumed,
                                          &qignored, &r2);
      if (r == DecodeResult::kResponse) {
        acc.erase(acc.begin(), acc.begin() + static_cast<long>(consumed));
        break;
      }
      ASSERT_EQ(r, DecodeResult::kNeedMore);
      std::uint8_t chunk[256];
      const ssize_t n = recv_some(fd.get(), chunk, sizeof(chunk));
      ASSERT_GT(n, 0);
      acc.insert(acc.end(), chunk, chunk + n);
    }
    EXPECT_EQ(r2.tag, 100 + i);
    EXPECT_TRUE(r2.found);
  }
}

TEST(NetLoopback, MalformedFrameClosesOnlyThatConnection) {
  Rig rig(/*workers=*/2);
  NetServer net(rig.server);

  BlockingClient good("127.0.0.1", net.port());
  ASSERT_TRUE(good.connected());

  UniqueFd bad = connect_tcp("127.0.0.1", net.port());
  ASSERT_TRUE(bad.valid());
  // An oversized length prefix — rejected at the framing layer.
  const std::uint8_t evil[8] = {0xFF, 0xFF, 0xFF, 0x7F, 1, 2, 3, 4};
  ASSERT_TRUE(send_all(bad.get(), evil, sizeof(evil)));
  // The server must close the bad connection...
  std::uint8_t buf[16];
  EXPECT_EQ(recv_some(bad.get(), buf, sizeof(buf)), 0) << "expected EOF";

  // ...while the good one keeps working.
  kv::Request req;
  req.op = kv::OpType::kInsert;
  req.key = 1;
  req.value_len = 16;
  ResponseFrame resp;
  ASSERT_TRUE(good.call(req, &resp));
  EXPECT_EQ(resp.status, kv::ExecStatus::kOk);

  net.shutdown();
  EXPECT_GE(net.stats().protocol_errors, 1u);
}

}  // namespace
}  // namespace mgc::net
