// Shard-per-core integration: the sharded kv::Server behind the multi-loop
// NetServer front-end. Covers M clients x K ops tag integrity across >= 4
// shards, pipelined batch round trips, per-shard shedding isolation under
// a skewed workload (scoped fault injection), the SO_REUSEPORT fallback's
// round-robin fd handoff, and the per-loop drain invariant
// frames_out + dropped_responses == frames_in after shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "kvstore/server.h"
#include "kvstore/sharded_store.h"
#include "net/blocking_client.h"
#include "net/net_server.h"
#include "net/socket.h"
#include "net/wire.h"
#include "support/fault.h"
#include "support/units.h"

namespace mgc::net {
namespace {

struct ShardedRig {
  VmConfig cfg;
  Vm vm;
  kv::StoreConfig scfg;
  kv::ShardedStore store;
  kv::Server server;

  explicit ShardedRig(std::size_t shards, kv::ServerConfig sc = {})
      : cfg(make_cfg()),
        vm(cfg),
        scfg(kv::StoreConfig::default_config(cfg.heap_bytes)),
        store(vm, scfg, shards),
        server(vm, store, sc) {}

  static VmConfig make_cfg() {
    VmConfig c;
    c.gc = GcKind::kParNew;
    c.heap_bytes = 24 * MiB;
    c.young_bytes = 6 * MiB;
    c.gc_threads = 2;
    return c;
  }
};

// After a graceful shutdown every decoded request must be accounted for on
// the loop that decoded it: answered on the wire or dropped with its dead
// connection. Holds per loop, not just in aggregate.
void expect_per_loop_drain_invariant(const NetServer& net) {
  const auto per_loop = net.per_loop_stats();
  for (std::size_t i = 0; i < per_loop.size(); ++i) {
    EXPECT_EQ(per_loop[i].frames_out + per_loop[i].dropped_responses,
              per_loop[i].frames_in)
        << "loop " << i << " leaked requests";
  }
}

TEST(ShardedNet, MultiClientTagIntegrityAcrossShards) {
  ShardedRig rig(/*shards=*/4);
  ASSERT_EQ(rig.server.shard_count(), 4u);
  NetServerConfig ncfg;
  ncfg.loops = 2;
  NetServer net(rig.server, ncfg);
  ASSERT_GT(net.port(), 0);
  ASSERT_EQ(net.loop_count(), 2u);

  constexpr int kClients = 6;
  constexpr int kOpsPerClient = 300;
  std::atomic<std::uint64_t> responses{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient cl("127.0.0.1", net.port());
      ASSERT_TRUE(cl.connected());
      std::uint64_t expected_tag = 0;
      for (int i = 0; i < kOpsPerClient; ++i) {
        // Thread-private key space, keys striped across all shards:
        // read-your-own-writes proves responses were not cross-wired
        // between clients, loops, or shards.
        const std::uint64_t key =
            static_cast<std::uint64_t>(c) * 1000000 +
            static_cast<std::uint64_t>((i / 2) % 64);
        kv::Request req;
        if (i % 2 == 0) {
          req.op = kv::OpType::kInsert;
          req.key = key;
          req.value_len = 128;
        } else {
          req.op = kv::OpType::kRead;
          req.key = key;  // the insert directly before it
        }
        ResponseFrame resp;
        if (!cl.call(req, &resp)) {
          failures.fetch_add(1);
          return;
        }
        ++expected_tag;
        EXPECT_EQ(resp.tag, expected_tag);
        EXPECT_EQ(resp.status, kv::ExecStatus::kOk);
        if (req.op == kv::OpType::kRead) {
          EXPECT_TRUE(resp.found) << "lost our own insert of key " << key;
        }
        responses.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(responses.load(),
            static_cast<std::uint64_t>(kClients) * kOpsPerClient);
  EXPECT_EQ(rig.server.completed(), responses.load());
  // The key stripe really lands on more than one shard.
  std::set<std::size_t> shards_hit;
  for (std::uint64_t k = 0; k < 64; ++k) {
    shards_hit.insert(rig.server.shard_of_key(k));
  }
  EXPECT_GE(shards_hit.size(), 3u);

  net.shutdown();
  const NetServerStats s = net.stats();
  EXPECT_EQ(s.frames_in, responses.load());
  EXPECT_EQ(s.frames_out, responses.load());
  EXPECT_EQ(s.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.closed, s.accepted);
  EXPECT_EQ(s.protocol_errors, 0u);
  EXPECT_EQ(s.dropped_responses, 0u);
  expect_per_loop_drain_invariant(net);
}

TEST(ShardedNet, BatchPipelineRoundTrip) {
  kv::ServerConfig sc;
  sc.workers_per_shard = 1;
  ShardedRig rig(/*shards=*/4, sc);
  NetServerConfig ncfg;
  ncfg.loops = 2;
  NetServer net(rig.server, ncfg);

  BlockingClient cl("127.0.0.1", net.port());
  ASSERT_TRUE(cl.connected());

  // A window larger than the per-connection in-flight cap (64): the idle
  // connection admits it whole, so oversized windows still progress.
  constexpr std::uint64_t kKeys = 100;
  std::vector<kv::Request> inserts;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    kv::Request r;
    r.op = kv::OpType::kInsert;
    r.key = k;
    r.value_len = 64;
    inserts.push_back(r);
  }
  std::vector<ResponseFrame> resp;
  ASSERT_TRUE(cl.submit_batch(inserts, &resp));
  ASSERT_EQ(resp.size(), inserts.size());
  for (std::size_t i = 0; i < resp.size(); ++i) {
    EXPECT_EQ(resp[i].status, kv::ExecStatus::kOk);
    // Index alignment: responses arrive out of order across shards but are
    // re-sequenced by tag; tags were assigned sequentially per entry.
    EXPECT_EQ(resp[i].tag, resp[0].tag + i);
  }
  // The batch really spanned several shards.
  std::set<std::size_t> shards_hit;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    shards_hit.insert(rig.server.shard_of_key(k));
  }
  EXPECT_GE(shards_hit.size(), 3u);

  // Pipelined reads see every insert; execute_batch is the retrying form.
  std::vector<kv::Request> reads;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    kv::Request r;
    r.op = kv::OpType::kRead;
    r.key = k;
    reads.push_back(r);
  }
  const std::vector<kv::Response> answers = cl.execute_batch(reads);
  ASSERT_EQ(answers.size(), reads.size());
  for (std::size_t i = 0; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i].status, kv::ExecStatus::kOk);
    EXPECT_TRUE(answers[i].found) << "batch-inserted key " << i << " lost";
  }

  net.shutdown();
  const NetServerStats s = net.stats();
  EXPECT_EQ(s.frames_in, 2 * kKeys);  // sub-requests counted individually
  EXPECT_EQ(s.frames_out, 2 * kKeys);
  EXPECT_EQ(s.protocol_errors, 0u);
  expect_per_loop_drain_invariant(net);
}

TEST(ShardedNet, SkewSheddingIsolatedToShard) {
  ShardedRig rig(/*shards=*/4);
  // Arm the per-shard queue-full site for shard 2 only: every admission to
  // that shard sheds, the rest of the fleet stays healthy.
  constexpr std::uint32_t kHotShard = 2;
  fault::Policy p;
  p.scope = kHotShard;
  fault::ScopedFault hot(fault::Site::kKvShardQueueFull, p);

  // One key per shard, found by walking the hash.
  std::vector<std::uint64_t> key_for_shard(4, ~0ULL);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    key_for_shard[rig.server.shard_of_key(k)] = k;
  }
  for (std::size_t sh = 0; sh < 4; ++sh) {
    ASSERT_NE(key_for_shard[sh], ~0ULL) << "no key found for shard " << sh;
  }

  constexpr int kOpsPerShard = 50;
  for (std::size_t sh = 0; sh < 4; ++sh) {
    for (int i = 0; i < kOpsPerShard; ++i) {
      kv::Request req;
      req.op = kv::OpType::kInsert;
      req.key = key_for_shard[sh];
      req.value_len = 32;
      const kv::Response r = rig.server.execute(req);
      if (sh == kHotShard) {
        EXPECT_EQ(r.status, kv::ExecStatus::kOverloaded);
      } else {
        EXPECT_EQ(r.status, kv::ExecStatus::kOk);
      }
    }
  }
  // Shedding is fully isolated: all of the hot shard's admissions shed,
  // none of its siblings shed anything.
  for (std::size_t sh = 0; sh < 4; ++sh) {
    if (sh == kHotShard) {
      EXPECT_EQ(rig.server.shed_count(sh),
                static_cast<std::uint64_t>(kOpsPerShard));
    } else {
      EXPECT_EQ(rig.server.shed_count(sh), 0u) << "shard " << sh;
    }
  }
}

TEST(ShardedNet, ReuseportFallbackRoundRobin) {
  ShardedRig rig(/*shards=*/2);
  NetServerConfig ncfg;
  ncfg.loops = 3;
  ncfg.allow_reuseport = false;  // force the single-accept-loop fallback
  NetServer net(rig.server, ncfg);
  ASSERT_FALSE(net.using_reuseport());
  ASSERT_EQ(net.loop_count(), 3u);

  // Sequential clients: accepts happen in connect order, so the fallback's
  // round-robin must spread 6 connections as exactly 2 per loop.
  constexpr int kClients = 6;
  for (int c = 0; c < kClients; ++c) {
    BlockingClient cl("127.0.0.1", net.port());
    ASSERT_TRUE(cl.connected());
    kv::Request req;
    req.op = kv::OpType::kInsert;
    req.key = static_cast<std::uint64_t>(c);
    req.value_len = 32;
    ResponseFrame resp;
    ASSERT_TRUE(cl.call(req, &resp));
    EXPECT_EQ(resp.status, kv::ExecStatus::kOk);
    req.op = kv::OpType::kRead;
    ASSERT_TRUE(cl.call(req, &resp));
    EXPECT_TRUE(resp.found);
  }

  net.shutdown();
  const auto per_loop = net.per_loop_stats();
  ASSERT_EQ(per_loop.size(), 3u);
  std::uint64_t accepted_total = 0;
  for (std::size_t i = 0; i < per_loop.size(); ++i) {
    EXPECT_EQ(per_loop[i].accepted, 2u) << "loop " << i;
    accepted_total += per_loop[i].accepted;
    EXPECT_EQ(per_loop[i].closed, per_loop[i].accepted);
  }
  EXPECT_EQ(accepted_total, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(net.stats().frames_in, static_cast<std::uint64_t>(2 * kClients));
  expect_per_loop_drain_invariant(net);
}

TEST(ShardedNet, ReuseportUsedWhenSupported) {
  ShardedRig rig(/*shards=*/2);
  NetServerConfig ncfg;
  ncfg.loops = 2;
  NetServer net(rig.server, ncfg);
  EXPECT_EQ(net.using_reuseport(), reuseport_supported());

  // Whatever the front-end shape, the port serves traffic.
  BlockingClient cl("127.0.0.1", net.port());
  ASSERT_TRUE(cl.connected());
  kv::Request req;
  req.op = kv::OpType::kInsert;
  req.key = 99;
  req.value_len = 16;
  ResponseFrame resp;
  ASSERT_TRUE(cl.call(req, &resp));
  EXPECT_EQ(resp.status, kv::ExecStatus::kOk);
  net.shutdown();
  expect_per_loop_drain_invariant(net);
}

}  // namespace
}  // namespace mgc::net
