// Wire-codec round-trip and adversarial decode tests. The fuzz loops are
// deterministic (support/rng.h, fixed seeds) and feed truncated,
// oversized-length, and bit-flipped frames; the decoder must reject them
// (or, for flips that still form a valid frame, decode canonically)
// without ever reading out of bounds — ASan enforces the "out of bounds"
// half when this binary runs in the sanitizer jobs.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/wire.h"
#include "support/rng.h"

namespace mgc::net {
namespace {

// Copies the bytes into an exactly-sized heap block so ASan catches any
// read past the end, then decodes.
DecodeResult decode_exact(const std::vector<std::uint8_t>& bytes,
                          std::size_t* consumed, RequestFrame* req,
                          ResponseFrame* resp) {
  std::vector<std::uint8_t> exact(bytes);
  *consumed = 0;
  return decode_frame(exact.data(), exact.size(), consumed, req, resp);
}

TEST(NetCodec, RequestRoundTripAllOpsByteExact) {
  Rng rng(1);
  for (kv::OpType op :
       {kv::OpType::kRead, kv::OpType::kUpdate, kv::OpType::kInsert}) {
    for (int i = 0; i < 100; ++i) {
      RequestFrame in;
      in.req.op = op;
      in.req.key = rng.next();
      in.req.value_len = static_cast<std::size_t>(rng.below(kMaxValueLen + 1));
      in.tag = rng.next();

      std::vector<std::uint8_t> bytes;
      encode_request(in, bytes);
      ASSERT_EQ(bytes.size(), kLenPrefixSize + kRequestPayloadSize);

      RequestFrame out;
      ResponseFrame rignored;
      std::size_t consumed = 0;
      ASSERT_EQ(decode_exact(bytes, &consumed, &out, &rignored),
                DecodeResult::kRequest);
      EXPECT_EQ(consumed, bytes.size());
      EXPECT_EQ(out.req.op, in.req.op);
      EXPECT_EQ(out.req.key, in.req.key);
      EXPECT_EQ(out.req.value_len, in.req.value_len);
      EXPECT_EQ(out.tag, in.tag);

      // Canonical codec: re-encoding the decoded frame reproduces the
      // original bytes exactly.
      std::vector<std::uint8_t> again;
      encode_request(out, again);
      EXPECT_EQ(again, bytes);
    }
  }
}

TEST(NetCodec, ResponseRoundTripByteExact) {
  Rng rng(2);
  for (kv::ExecStatus st : {kv::ExecStatus::kOk, kv::ExecStatus::kShutdown}) {
    for (bool found : {false, true}) {
      ResponseFrame in;
      in.tag = rng.next();
      in.status = st;
      in.found = found;
      std::vector<std::uint8_t> bytes;
      encode_response(in, bytes);
      ASSERT_EQ(bytes.size(), kLenPrefixSize + kResponsePayloadSize);

      RequestFrame qignored;
      ResponseFrame out;
      std::size_t consumed = 0;
      ASSERT_EQ(decode_exact(bytes, &consumed, &qignored, &out),
                DecodeResult::kResponse);
      EXPECT_EQ(consumed, bytes.size());
      EXPECT_EQ(out.tag, in.tag);
      EXPECT_EQ(out.status, in.status);
      EXPECT_EQ(out.found, in.found);

      std::vector<std::uint8_t> again;
      encode_response(out, again);
      EXPECT_EQ(again, bytes);
    }
  }
}

TEST(NetCodec, BackToBackFramesDecodeSequentially) {
  std::vector<std::uint8_t> bytes;
  const int kFrames = 7;
  for (int i = 0; i < kFrames; ++i) {
    RequestFrame f;
    f.req.op = kv::OpType::kInsert;
    f.req.key = static_cast<std::uint64_t>(i);
    f.req.value_len = 64;
    f.tag = 1000 + static_cast<std::uint64_t>(i);
    encode_request(f, bytes);
  }
  std::size_t off = 0;
  for (int i = 0; i < kFrames; ++i) {
    RequestFrame out;
    ResponseFrame rignored;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(bytes.data() + off, bytes.size() - off, &consumed,
                           &out, &rignored),
              DecodeResult::kRequest);
    EXPECT_EQ(out.req.key, static_cast<std::uint64_t>(i));
    EXPECT_EQ(out.tag, 1000u + static_cast<std::uint64_t>(i));
    off += consumed;
  }
  EXPECT_EQ(off, bytes.size());
}

TEST(NetCodec, TruncatedFramesAreNeverAccepted) {
  RequestFrame f;
  f.req.op = kv::OpType::kUpdate;
  f.req.key = 0x1122334455667788ULL;
  f.req.value_len = 900;
  f.tag = 0xdeadbeefcafef00dULL;
  std::vector<std::uint8_t> full;
  encode_request(f, full);

  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> prefix(full.begin(),
                                     full.begin() + static_cast<long>(len));
    RequestFrame out;
    ResponseFrame rignored;
    std::size_t consumed = 99;
    const DecodeResult r = decode_exact(prefix, &consumed, &out, &rignored);
    EXPECT_EQ(r, DecodeResult::kNeedMore) << "prefix length " << len;
    EXPECT_EQ(consumed, 0u) << "nothing may be consumed on a partial frame";
  }
}

TEST(NetCodec, OversizedLengthPrefixRejectedImmediately) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const std::uint32_t bogus =
        kMaxPayload + 1 +
        static_cast<std::uint32_t>(rng.below(0xFFFFFF00u - kMaxPayload));
    std::vector<std::uint8_t> bytes(4);
    for (int b = 0; b < 4; ++b)
      bytes[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(bogus >> (8 * b));
    RequestFrame out;
    ResponseFrame rignored;
    std::size_t consumed = 0;
    // Rejected with only the prefix present: the decoder must not ask for
    // `bogus` more bytes first (that would let a client wedge the server
    // buffer).
    EXPECT_EQ(decode_exact(bytes, &consumed, &out, &rignored),
              DecodeResult::kError);
  }
  // Undersized (< header) lengths are equally malformed.
  for (std::uint32_t tiny = 0; tiny < 4; ++tiny) {
    std::vector<std::uint8_t> bytes(4);
    for (int b = 0; b < 4; ++b)
      bytes[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(tiny >> (8 * b));
    RequestFrame out;
    ResponseFrame rignored;
    std::size_t consumed = 0;
    EXPECT_EQ(decode_exact(bytes, &consumed, &out, &rignored),
              DecodeResult::kError);
  }
}

TEST(NetCodec, BitFlipFuzzNeverReadsOutOfBoundsOrAborts) {
  Rng rng(0xF00D);
  int rejected = 0, still_valid = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    RequestFrame f;
    f.req.op = static_cast<kv::OpType>(rng.below(3));
    f.req.key = rng.next();
    f.req.value_len = static_cast<std::size_t>(rng.below(kMaxValueLen + 1));
    f.tag = rng.next();
    std::vector<std::uint8_t> bytes;
    encode_request(f, bytes);

    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int b = 0; b < flips; ++b) {
      const std::size_t bit = rng.below(bytes.size() * 8);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }

    RequestFrame out;
    ResponseFrame rout;
    std::size_t consumed = 0;
    const DecodeResult r = decode_exact(bytes, &consumed, &out, &rout);
    switch (r) {
      case DecodeResult::kError:
      case DecodeResult::kNeedMore:  // flip landed in the length prefix
        ++rejected;
        break;
      case DecodeResult::kRequest: {
        // The flipped bytes happen to form a valid frame (flip in tag/key/
        // value_len): decoding must be canonical, i.e. re-encoding
        // reproduces the mutated buffer bit-for-bit.
        ++still_valid;
        EXPECT_EQ(consumed, bytes.size());
        std::vector<std::uint8_t> again;
        encode_request(out, again);
        EXPECT_EQ(again, bytes);
        break;
      }
      case DecodeResult::kResponse:
        ADD_FAILURE() << "a request frame cannot flip into a valid response "
                         "(sizes differ)";
        break;
    }
  }
  // Sanity on the fuzz distribution: both outcomes must actually occur.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(still_valid, 0);
}

TEST(NetCodec, RandomGarbageFuzzIsMemorySafe) {
  Rng rng(0xBADC0FFEE);
  for (int iter = 0; iter < 4000; ++iter) {
    const std::size_t len = rng.below(80);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    RequestFrame out;
    ResponseFrame rout;
    std::size_t consumed = 0;
    const DecodeResult r = decode_exact(bytes, &consumed, &out, &rout);
    if (r == DecodeResult::kRequest || r == DecodeResult::kResponse) {
      EXPECT_LE(consumed, bytes.size());
      EXPECT_GT(consumed, 0u);
    }
  }
}

}  // namespace
}  // namespace mgc::net
