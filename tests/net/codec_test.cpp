// Wire-codec round-trip and adversarial decode tests. The fuzz loops are
// deterministic (support/rng.h, fixed seeds) and feed truncated,
// oversized-length, and bit-flipped frames; the decoder must reject them
// (or, for flips that still form a valid frame, decode canonically)
// without ever reading out of bounds — ASan enforces the "out of bounds"
// half when this binary runs in the sanitizer jobs.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/wire.h"
#include "support/rng.h"

namespace mgc::net {
namespace {

// Copies the bytes into an exactly-sized heap block so ASan catches any
// read past the end, then decodes.
DecodeResult decode_exact(const std::vector<std::uint8_t>& bytes,
                          std::size_t* consumed, RequestFrame* req,
                          ResponseFrame* resp) {
  std::vector<std::uint8_t> exact(bytes);
  *consumed = 0;
  return decode_frame(exact.data(), exact.size(), consumed, req, resp);
}

TEST(NetCodec, RequestRoundTripAllOpsByteExact) {
  Rng rng(1);
  for (kv::OpType op :
       {kv::OpType::kRead, kv::OpType::kUpdate, kv::OpType::kInsert}) {
    for (int i = 0; i < 100; ++i) {
      RequestFrame in;
      in.req.op = op;
      in.req.key = rng.next();
      in.req.value_len = static_cast<std::size_t>(rng.below(kMaxValueLen + 1));
      in.tag = rng.next();

      std::vector<std::uint8_t> bytes;
      encode_request(in, bytes);
      ASSERT_EQ(bytes.size(), kLenPrefixSize + kRequestPayloadSize);

      RequestFrame out;
      ResponseFrame rignored;
      std::size_t consumed = 0;
      ASSERT_EQ(decode_exact(bytes, &consumed, &out, &rignored),
                DecodeResult::kRequest);
      EXPECT_EQ(consumed, bytes.size());
      EXPECT_EQ(out.req.op, in.req.op);
      EXPECT_EQ(out.req.key, in.req.key);
      EXPECT_EQ(out.req.value_len, in.req.value_len);
      EXPECT_EQ(out.tag, in.tag);

      // Canonical codec: re-encoding the decoded frame reproduces the
      // original bytes exactly.
      std::vector<std::uint8_t> again;
      encode_request(out, again);
      EXPECT_EQ(again, bytes);
    }
  }
}

TEST(NetCodec, ResponseRoundTripByteExact) {
  Rng rng(2);
  for (kv::ExecStatus st : {kv::ExecStatus::kOk, kv::ExecStatus::kShutdown}) {
    for (bool found : {false, true}) {
      ResponseFrame in;
      in.tag = rng.next();
      in.status = st;
      in.found = found;
      std::vector<std::uint8_t> bytes;
      encode_response(in, bytes);
      ASSERT_EQ(bytes.size(), kLenPrefixSize + kResponsePayloadSize);

      RequestFrame qignored;
      ResponseFrame out;
      std::size_t consumed = 0;
      ASSERT_EQ(decode_exact(bytes, &consumed, &qignored, &out),
                DecodeResult::kResponse);
      EXPECT_EQ(consumed, bytes.size());
      EXPECT_EQ(out.tag, in.tag);
      EXPECT_EQ(out.status, in.status);
      EXPECT_EQ(out.found, in.found);

      std::vector<std::uint8_t> again;
      encode_response(out, again);
      EXPECT_EQ(again, bytes);
    }
  }
}

TEST(NetCodec, BackToBackFramesDecodeSequentially) {
  std::vector<std::uint8_t> bytes;
  const int kFrames = 7;
  for (int i = 0; i < kFrames; ++i) {
    RequestFrame f;
    f.req.op = kv::OpType::kInsert;
    f.req.key = static_cast<std::uint64_t>(i);
    f.req.value_len = 64;
    f.tag = 1000 + static_cast<std::uint64_t>(i);
    encode_request(f, bytes);
  }
  std::size_t off = 0;
  for (int i = 0; i < kFrames; ++i) {
    RequestFrame out;
    ResponseFrame rignored;
    std::size_t consumed = 0;
    ASSERT_EQ(decode_frame(bytes.data() + off, bytes.size() - off, &consumed,
                           &out, &rignored),
              DecodeResult::kRequest);
    EXPECT_EQ(out.req.key, static_cast<std::uint64_t>(i));
    EXPECT_EQ(out.tag, 1000u + static_cast<std::uint64_t>(i));
    off += consumed;
  }
  EXPECT_EQ(off, bytes.size());
}

TEST(NetCodec, TruncatedFramesAreNeverAccepted) {
  RequestFrame f;
  f.req.op = kv::OpType::kUpdate;
  f.req.key = 0x1122334455667788ULL;
  f.req.value_len = 900;
  f.tag = 0xdeadbeefcafef00dULL;
  std::vector<std::uint8_t> full;
  encode_request(f, full);

  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> prefix(full.begin(),
                                     full.begin() + static_cast<long>(len));
    RequestFrame out;
    ResponseFrame rignored;
    std::size_t consumed = 99;
    const DecodeResult r = decode_exact(prefix, &consumed, &out, &rignored);
    EXPECT_EQ(r, DecodeResult::kNeedMore) << "prefix length " << len;
    EXPECT_EQ(consumed, 0u) << "nothing may be consumed on a partial frame";
  }
}

TEST(NetCodec, OversizedLengthPrefixRejectedImmediately) {
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    // Anything past the batch-frame ceiling (the overall cap since protocol
    // version 2) must be rejected with only the 4 prefix bytes present.
    const std::uint32_t bogus =
        kMaxBatchPayload + 1 +
        static_cast<std::uint32_t>(rng.below(0xFFFFFF00u - kMaxBatchPayload));
    std::vector<std::uint8_t> bytes(4);
    for (int b = 0; b < 4; ++b)
      bytes[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(bogus >> (8 * b));
    RequestFrame out;
    ResponseFrame rignored;
    std::size_t consumed = 0;
    // Rejected with only the prefix present: the decoder must not ask for
    // `bogus` more bytes first (that would let a client wedge the server
    // buffer).
    EXPECT_EQ(decode_exact(bytes, &consumed, &out, &rignored),
              DecodeResult::kError);
  }
  // Undersized (< header) lengths are equally malformed.
  for (std::uint32_t tiny = 0; tiny < 4; ++tiny) {
    std::vector<std::uint8_t> bytes(4);
    for (int b = 0; b < 4; ++b)
      bytes[static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(tiny >> (8 * b));
    RequestFrame out;
    ResponseFrame rignored;
    std::size_t consumed = 0;
    EXPECT_EQ(decode_exact(bytes, &consumed, &out, &rignored),
              DecodeResult::kError);
  }
}

TEST(NetCodec, PlausibleLengthBadHeaderRejectedBeforeBuffering) {
  // A length inside the batch envelope but an incoherent header: the
  // decoder must reject as soon as the three header bytes are visible
  // instead of buffering toward the claimed length (that would let a
  // client park ~21 KB per connection behind a junk prefix).
  const std::uint32_t claimed = kBatchHeaderSize + 40 * kBatchRequestEntrySize;
  struct BadHeader {
    std::uint8_t magic, version, kind;
  };
  const BadHeader cases[] = {
      {0x00, kBatchVersion, 2},  // wrong magic
      {kMagic, 9, 2},            // unknown version
      {kMagic, kBatchVersion, 7},// unknown kind
      {kMagic, kVersion, 2},     // batch kind under version 1
      {kMagic, kBatchVersion, 0},// single-op kind with a batch-sized length
  };
  for (const BadHeader& bc : cases) {
    std::vector<std::uint8_t> bytes;
    for (int b = 0; b < 4; ++b)
      bytes.push_back(static_cast<std::uint8_t>(claimed >> (8 * b)));
    bytes.push_back(bc.magic);
    bytes.push_back(bc.version);
    bytes.push_back(bc.kind);
    DecodedFrame out;
    std::size_t consumed = 0;
    std::vector<std::uint8_t> exact(bytes);
    EXPECT_EQ(decode_any(exact.data(), exact.size(), &consumed, &out),
              DecodeResult::kError)
        << "magic=" << int(bc.magic) << " version=" << int(bc.version)
        << " kind=" << int(bc.kind);
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(NetCodec, BatchRequestRoundTripByteExact) {
  Rng rng(11);
  for (const std::size_t count : {std::size_t{1}, std::size_t{7},
                                  std::size_t{kMaxBatchCount}}) {
    std::vector<RequestFrame> in(count);
    for (RequestFrame& f : in) {
      f.req.op = static_cast<kv::OpType>(rng.below(3));
      f.req.key = rng.next();
      f.req.value_len = static_cast<std::size_t>(rng.below(kMaxValueLen + 1));
      f.tag = rng.next();
    }
    std::vector<std::uint8_t> bytes;
    encode_request_batch(in, bytes);
    ASSERT_EQ(bytes.size(), kLenPrefixSize + kBatchHeaderSize +
                                count * kBatchRequestEntrySize);

    DecodedFrame out;
    std::size_t consumed = 0;
    std::vector<std::uint8_t> exact(bytes);
    ASSERT_EQ(decode_any(exact.data(), exact.size(), &consumed, &out),
              DecodeResult::kBatchRequest);
    EXPECT_EQ(consumed, bytes.size());
    ASSERT_EQ(out.batch_req.size(), count);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(out.batch_req[i].req.op, in[i].req.op);
      EXPECT_EQ(out.batch_req[i].req.key, in[i].req.key);
      EXPECT_EQ(out.batch_req[i].req.value_len, in[i].req.value_len);
      EXPECT_EQ(out.batch_req[i].tag, in[i].tag);
    }
    // Canonical: re-encoding reproduces the original bytes.
    std::vector<std::uint8_t> again;
    encode_request_batch(out.batch_req, again);
    EXPECT_EQ(again, bytes);
  }
}

TEST(NetCodec, BatchResponseRoundTripByteExact) {
  Rng rng(12);
  std::vector<ResponseFrame> in(33);
  for (ResponseFrame& f : in) {
    f.tag = rng.next();
    f.status = static_cast<kv::ExecStatus>(rng.below(3));
    f.found = rng.below(2) == 1;
  }
  std::vector<std::uint8_t> bytes;
  encode_response_batch(in, bytes);

  DecodedFrame out;
  std::size_t consumed = 0;
  std::vector<std::uint8_t> exact(bytes);
  ASSERT_EQ(decode_any(exact.data(), exact.size(), &consumed, &out),
            DecodeResult::kBatchResponse);
  EXPECT_EQ(consumed, bytes.size());
  ASSERT_EQ(out.batch_resp.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out.batch_resp[i].tag, in[i].tag);
    EXPECT_EQ(out.batch_resp[i].status, in[i].status);
    EXPECT_EQ(out.batch_resp[i].found, in[i].found);
  }
  std::vector<std::uint8_t> again;
  encode_response_batch(out.batch_resp, again);
  EXPECT_EQ(again, bytes);
}

TEST(NetCodec, BatchCountMustMatchPayloadExactly) {
  std::vector<RequestFrame> in(5);
  for (std::size_t i = 0; i < in.size(); ++i) in[i].tag = i;
  std::vector<std::uint8_t> bytes;
  encode_request_batch(in, bytes);

  // Corrupt the count field (offset 4+4): every mismatch against the
  // actual payload length must be rejected.
  for (const std::uint32_t bad_count : {0u, 4u, 6u, 1024u, 0xFFFFFFFFu}) {
    std::vector<std::uint8_t> mutated(bytes);
    for (int b = 0; b < 4; ++b)
      mutated[kLenPrefixSize + 4 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>(bad_count >> (8 * b));
    DecodedFrame out;
    std::size_t consumed = 0;
    EXPECT_EQ(decode_any(mutated.data(), mutated.size(), &consumed, &out),
              DecodeResult::kError)
        << "count " << bad_count;
  }
  // Nonzero reserved byte is equally malformed.
  std::vector<std::uint8_t> mutated(bytes);
  mutated[kLenPrefixSize + 3] = 1;
  DecodedFrame out;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_any(mutated.data(), mutated.size(), &consumed, &out),
            DecodeResult::kError);
}

TEST(NetCodec, TruncatedBatchFramesAreNeverAccepted) {
  std::vector<RequestFrame> in(3);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i].tag = 100 + i;
    in[i].req.key = i;
  }
  std::vector<std::uint8_t> full;
  encode_request_batch(in, full);
  for (std::size_t len = 0; len < full.size(); ++len) {
    std::vector<std::uint8_t> prefix(full.begin(),
                                     full.begin() + static_cast<long>(len));
    DecodedFrame out;
    std::size_t consumed = 0;
    EXPECT_EQ(decode_any(prefix.data(), prefix.size(), &consumed, &out),
              DecodeResult::kNeedMore)
        << "prefix length " << len;
    EXPECT_EQ(consumed, 0u);
  }
}

TEST(NetCodec, DecodeFrameTreatsBatchesAsProtocolErrors) {
  // The version-1 wrapper must refuse pipelined frames without consuming
  // them — a v1-only peer treats batch traffic as a protocol violation.
  std::vector<RequestFrame> in(2);
  std::vector<std::uint8_t> bytes;
  encode_request_batch(in, bytes);
  RequestFrame req;
  ResponseFrame resp;
  std::size_t consumed = 0;
  EXPECT_EQ(decode_frame(bytes.data(), bytes.size(), &consumed, &req, &resp),
            DecodeResult::kError);
  EXPECT_EQ(consumed, 0u);
}

TEST(NetCodec, BatchBitFlipFuzzNeverReadsOutOfBoundsOrAborts) {
  Rng rng(0xBA7C4);
  int rejected = 0, still_valid = 0;
  for (int iter = 0; iter < 2000; ++iter) {
    const std::size_t count = 1 + rng.below(16);
    std::vector<RequestFrame> in(count);
    for (RequestFrame& f : in) {
      f.req.op = static_cast<kv::OpType>(rng.below(3));
      f.req.key = rng.next();
      f.req.value_len = static_cast<std::size_t>(rng.below(kMaxValueLen + 1));
      f.tag = rng.next();
    }
    std::vector<std::uint8_t> bytes;
    encode_request_batch(in, bytes);
    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int b = 0; b < flips; ++b) {
      const std::size_t bit = rng.below(bytes.size() * 8);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }

    DecodedFrame out;
    std::size_t consumed = 0;
    std::vector<std::uint8_t> exact(bytes);
    const DecodeResult r =
        decode_any(exact.data(), exact.size(), &consumed, &out);
    switch (r) {
      case DecodeResult::kError:
      case DecodeResult::kNeedMore:  // flip landed in the length prefix
        ++rejected;
        break;
      case DecodeResult::kBatchRequest: {
        // Flip landed in an entry's tag/key/value_len and still forms a
        // valid batch: decoding must stay canonical.
        ++still_valid;
        EXPECT_EQ(consumed, bytes.size());
        std::vector<std::uint8_t> again;
        encode_request_batch(out.batch_req, again);
        EXPECT_EQ(again, bytes);
        break;
      }
      default:
        // A batch frame cannot flip into a well-formed single frame: their
        // payload lengths differ (8+21n vs 24/13) for every n.
        ADD_FAILURE() << "batch flipped into kind " << static_cast<int>(r);
        break;
    }
  }
  EXPECT_GT(rejected, 0);
  EXPECT_GT(still_valid, 0);
}

TEST(NetCodec, BatchGarbageFuzzIsMemorySafe) {
  Rng rng(0x6A5BA6E);
  for (int iter = 0; iter < 4000; ++iter) {
    // Garbage sized around the batch envelope, with a plausible prefix
    // spliced in half the time so the fuzz reaches past the length check.
    const std::size_t len = rng.below(600);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    if (len >= 7 && rng.below(2) == 0) {
      const std::uint32_t claimed = static_cast<std::uint32_t>(
          kBatchHeaderSize +
          (1 + rng.below(kMaxBatchCount)) * kBatchRequestEntrySize);
      for (int b = 0; b < 4; ++b)
        bytes[static_cast<std::size_t>(b)] =
            static_cast<std::uint8_t>(claimed >> (8 * b));
      bytes[4] = kMagic;
      bytes[5] = kBatchVersion;
      bytes[6] = 2 + static_cast<std::uint8_t>(rng.below(2));  // batch kinds
    }
    DecodedFrame out;
    std::size_t consumed = 0;
    std::vector<std::uint8_t> exact(bytes);
    const DecodeResult r =
        decode_any(exact.data(), exact.size(), &consumed, &out);
    if (r == DecodeResult::kBatchRequest || r == DecodeResult::kBatchResponse) {
      EXPECT_LE(consumed, bytes.size());
      EXPECT_GT(consumed, 0u);
    }
  }
}

TEST(NetCodec, BitFlipFuzzNeverReadsOutOfBoundsOrAborts) {
  Rng rng(0xF00D);
  int rejected = 0, still_valid = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    RequestFrame f;
    f.req.op = static_cast<kv::OpType>(rng.below(3));
    f.req.key = rng.next();
    f.req.value_len = static_cast<std::size_t>(rng.below(kMaxValueLen + 1));
    f.tag = rng.next();
    std::vector<std::uint8_t> bytes;
    encode_request(f, bytes);

    const int flips = 1 + static_cast<int>(rng.below(3));
    for (int b = 0; b < flips; ++b) {
      const std::size_t bit = rng.below(bytes.size() * 8);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
    }

    RequestFrame out;
    ResponseFrame rout;
    std::size_t consumed = 0;
    const DecodeResult r = decode_exact(bytes, &consumed, &out, &rout);
    switch (r) {
      case DecodeResult::kError:
      case DecodeResult::kNeedMore:  // flip landed in the length prefix
        ++rejected;
        break;
      case DecodeResult::kRequest: {
        // The flipped bytes happen to form a valid frame (flip in tag/key/
        // value_len): decoding must be canonical, i.e. re-encoding
        // reproduces the mutated buffer bit-for-bit.
        ++still_valid;
        EXPECT_EQ(consumed, bytes.size());
        std::vector<std::uint8_t> again;
        encode_request(out, again);
        EXPECT_EQ(again, bytes);
        break;
      }
      case DecodeResult::kResponse:
      case DecodeResult::kBatchRequest:
      case DecodeResult::kBatchResponse:
        // A flipped request cannot become any other kind: sizes differ and
        // the (version, kind) pair is checked jointly against the length.
        ADD_FAILURE() << "a request frame cannot flip into kind "
                      << static_cast<int>(r);
        break;
    }
  }
  // Sanity on the fuzz distribution: both outcomes must actually occur.
  EXPECT_GT(rejected, 0);
  EXPECT_GT(still_valid, 0);
}

TEST(NetCodec, RandomGarbageFuzzIsMemorySafe) {
  Rng rng(0xBADC0FFEE);
  for (int iter = 0; iter < 4000; ++iter) {
    const std::size_t len = rng.below(80);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next());
    RequestFrame out;
    ResponseFrame rout;
    std::size_t consumed = 0;
    const DecodeResult r = decode_exact(bytes, &consumed, &out, &rout);
    if (r == DecodeResult::kRequest || r == DecodeResult::kResponse) {
      EXPECT_LE(consumed, bytes.size());
      EXPECT_GT(consumed, 0u);
    }
  }
}

}  // namespace
}  // namespace mgc::net
