// YCSB client tests: workload validation, phase execution against a real
// server, and the latency band statistics of Tables 5-7.
#include <gtest/gtest.h>

#include "kvstore/sharded_store.h"
#include "net/net_server.h"
#include "support/units.h"
#include "ycsb/latency_stats.h"

namespace mgc::ycsb {
namespace {

TEST(WorkloadSpec, PaperCustomIsHalfReadHalfUpdate) {
  const WorkloadSpec spec = WorkloadSpec::paper_custom(1000, 5000, 2);
  EXPECT_DOUBLE_EQ(spec.read_proportion, 0.5);
  EXPECT_DOUBLE_EQ(spec.update_proportion, 0.5);
  EXPECT_EQ(spec.distribution, KeyDistribution::kZipfian);
  spec.validate();
}

TEST(ClientDriver, LoadAndRunAgainstRealServer) {
  VmConfig cfg;
  cfg.gc = GcKind::kCms;
  cfg.heap_bytes = 24 * MiB;
  cfg.young_bytes = 6 * MiB;
  cfg.gc_threads = 2;
  Vm vm(cfg);
  kv::StoreConfig scfg = kv::StoreConfig::default_config(cfg.heap_bytes);
  kv::Store store(vm, scfg);
  kv::Server server(vm, store, 4);

  WorkloadSpec spec = WorkloadSpec::paper_custom(2000, 8000, 4);
  spec.value_len = 512;
  Client client(server, spec, 7);

  const PhaseResult load = client.load();
  EXPECT_EQ(load.samples.size(), 2000u);
  EXPECT_GT(load.throughput_ops_s(), 0.0);

  const PhaseResult run = client.run();
  EXPECT_GE(run.samples.size(), 8000u);
  std::size_t reads = 0, updates = 0;
  for (const auto& s : run.samples) {
    if (s.op == kv::OpType::kRead) ++reads;
    if (s.op == kv::OpType::kUpdate) ++updates;
    EXPECT_GT(s.latency_ns, 0);
  }
  // ~50/50 mix.
  const double ratio =
      static_cast<double>(reads) / static_cast<double>(reads + updates);
  EXPECT_NEAR(ratio, 0.5, 0.05);

  const auto pauses = vm.gc_log().snapshot();
  const LatencyStats rs = compute_latency_stats(run.samples,
                                                kv::OpType::kRead, pauses);
  EXPECT_EQ(rs.count, reads);
  EXPECT_GT(rs.avg_ms, 0.0);
  EXPECT_GE(rs.max_ms, rs.avg_ms);
  ASSERT_EQ(rs.bands.size(), 5u);
  EXPECT_EQ(rs.bands[0].label, "0.5x-1.5x AVG");
}

TEST(LatencyBands, GcAttributionMatchesOverlap) {
  std::vector<PauseEvent> pauses;
  PauseEvent p;
  p.start_ns = 1000;
  p.end_ns = 2000;
  pauses.push_back(p);

  EXPECT_TRUE(overlaps_pause(pauses, 500, 1500));
  EXPECT_TRUE(overlaps_pause(pauses, 1500, 1600));
  EXPECT_TRUE(overlaps_pause(pauses, 1900, 2500));
  EXPECT_FALSE(overlaps_pause(pauses, 0, 999));
  EXPECT_FALSE(overlaps_pause(pauses, 2001, 3000));

  // Synthetic samples: 9 fast ops, 1 slow op overlapping the pause.
  std::vector<OpSample> samples;
  for (int i = 0; i < 9; ++i) {
    OpSample s;
    s.op = kv::OpType::kRead;
    s.start_ns = 5000 + i;
    s.latency_ns = 1000000;  // 1 ms
    samples.push_back(s);
  }
  OpSample slow;
  slow.op = kv::OpType::kRead;
  slow.start_ns = 900;
  slow.latency_ns = 40000000;  // 40 ms, overlaps the pause
  samples.push_back(slow);

  const LatencyStats st =
      compute_latency_stats(samples, kv::OpType::kRead, pauses);
  EXPECT_EQ(st.count, 10u);
  // The >2x band contains exactly the slow op.
  const LatencyBand& b2 = st.bands[1];
  EXPECT_NEAR(b2.pct_reqs, 10.0, 1e-9);
  // The single pause (1 ms duration) is far above 2x the ~4.9 ms avg? No:
  // avg is ~4.9 ms here, so the 1 ms pause falls below the >2x band and in
  // none of the spike bands; the normal band (0.5x-1.5x avg) misses it too.
  EXPECT_NEAR(st.bands[0].pct_gcs, 0.0, 1e-9);
  EXPECT_NEAR(b2.pct_gcs, 0.0, 1e-9);
  // A long pause lands in every spike band, as in the paper's tables.
  PauseEvent big;
  big.start_ns = 100000;
  big.end_ns = big.start_ns + 500000000;  // 500 ms
  pauses.push_back(big);
  const LatencyStats st2 =
      compute_latency_stats(samples, kv::OpType::kRead, pauses);
  EXPECT_NEAR(st2.bands[1].pct_gcs, 50.0, 1e-9);   // 1 of 2 pauses > 2x avg
  EXPECT_NEAR(st2.bands[4].pct_gcs, 50.0, 1e-9);   // and > 16x avg
}

TEST(LatencyMerge, WeightedMergeAcrossPartitions) {
  auto make = [](std::size_t count, double avg, double mn, double mx,
                 double band0_reqs) {
    LatencyStats s;
    s.count = count;
    s.avg_ms = avg;
    s.min_ms = mn;
    s.max_ms = mx;
    LatencyBand b;
    b.label = "0.5x-1.5x AVG";
    b.pct_reqs = band0_reqs;
    b.pct_gcs = 0.0;
    s.bands.push_back(b);
    return s;
  };
  const LatencyStats merged = merge_latency_stats({
      make(10, 2.0, 1.0, 3.0, 50.0),
      LatencyStats{},  // empty partition (an idle shard) is skipped
      make(30, 4.0, 0.5, 10.0, 70.0),
  });
  EXPECT_EQ(merged.count, 40u);
  EXPECT_NEAR(merged.avg_ms, 3.5, 1e-12);  // (10*2 + 30*4) / 40
  EXPECT_NEAR(merged.min_ms, 0.5, 1e-12);
  EXPECT_NEAR(merged.max_ms, 10.0, 1e-12);
  ASSERT_EQ(merged.bands.size(), 1u);
  EXPECT_NEAR(merged.bands[0].pct_reqs, 65.0, 1e-12);  // count-weighted

  // Merging nothing (or only empty partitions) is a well-defined zero.
  EXPECT_EQ(merge_latency_stats({}).count, 0u);
  EXPECT_EQ(merge_latency_stats({LatencyStats{}, LatencyStats{}}).count, 0u);
}

TEST(ClientDriver, PipelinedRemoteRunAgainstShardedServer) {
  VmConfig cfg;
  cfg.gc = GcKind::kParNew;
  cfg.heap_bytes = 24 * MiB;
  cfg.young_bytes = 6 * MiB;
  cfg.gc_threads = 2;
  Vm vm(cfg);
  kv::StoreConfig scfg = kv::StoreConfig::default_config(cfg.heap_bytes);
  kv::ShardedStore store(vm, scfg, /*shards=*/4);
  kv::Server server(vm, store, kv::ServerConfig{});
  net::NetServerConfig ncfg;
  ncfg.loops = 2;
  net::NetServer netsrv(server, ncfg);

  WorkloadSpec spec = WorkloadSpec::paper_custom(500, 2000, 2);
  spec.value_len = 256;
  spec.pipeline_depth = 8;  // windows of 8 ops per batch round trip
  RemoteEndpoint ep;
  ep.port = netsrv.port();
  Client client(ep, spec, 11);

  const PhaseResult load = client.load();
  EXPECT_EQ(load.samples.size(), 500u);

  const PhaseResult run = client.run();
  EXPECT_GE(run.samples.size(), 2000u);
  std::size_t reads = 0, updates = 0;
  for (const auto& s : run.samples) {
    if (s.op == kv::OpType::kRead) ++reads;
    if (s.op == kv::OpType::kUpdate) ++updates;
    EXPECT_GT(s.latency_ns, 0);
  }
  const double ratio =
      static_cast<double>(reads) / static_cast<double>(reads + updates);
  EXPECT_NEAR(ratio, 0.5, 0.08);

  netsrv.shutdown();
  const net::NetServerStats st = netsrv.stats();
  // Every op crossed the wire (load singles plus pipelined run sub-frames)
  // and nothing leaked: the aggregate drain invariant holds here; the
  // per-loop version is asserted in the net tier.
  EXPECT_EQ(st.frames_out + st.dropped_responses, st.frames_in);
  EXPECT_GE(st.frames_in, 2500u);
}

}  // namespace
}  // namespace mgc::ycsb
