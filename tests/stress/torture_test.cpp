// Stress-labeled torture runs: every collector x TLAB setting drives >= 4
// mutator threads from one fixed seed, forces young and full collections
// at round boundaries, and must come out with zero expanded-verifier
// problems. A separate determinism check reruns a config and compares the
// surviving-graph fingerprints bit for bit.
#include <gtest/gtest.h>

#include "stress/torture.h"

namespace mgc::stress {
namespace {

struct Param {
  GcKind gc;
  bool tlab;
};

std::vector<Param> all_params() {
  std::vector<Param> ps;
  for (GcKind gc : all_gc_kinds()) {
    ps.push_back({gc, true});
    ps.push_back({gc, false});
  }
  return ps;
}

class StressTorture : public ::testing::TestWithParam<Param> {};

INSTANTIATE_TEST_SUITE_P(
    AllCollectors, StressTorture, ::testing::ValuesIn(all_params()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(gc_traits(info.param.gc).short_name) +
             (info.param.tlab ? "_tlab" : "_notlab");
    });

TortureConfig make_config(const Param& p) {
  TortureConfig cfg;
  cfg.vm = small_stress_vm(p.gc, p.tlab);
  cfg.mutators = 4;
  cfg.seed = 42;
  return cfg;
}

TEST_P(StressTorture, MultiThreadedChurnPassesExpandedVerifier) {
  const TortureResult res = run_torture(make_config(GetParam()));

  EXPECT_EQ(res.payload_errors, 0u);
  EXPECT_TRUE(res.problems.empty())
      << res.problems.size() << " verifier problems, first: "
      << res.problems.front();
  EXPECT_GT(res.young_gcs_forced, 0u);
  EXPECT_GT(res.full_gcs_forced, 0u);
  EXPECT_EQ(res.verifier_runs, 6u);

  // The cross-layer checks must actually have engaged, not silently
  // short-circuited.
  EXPECT_GT(res.cells_walked, 0u);
  if (GetParam().gc == GcKind::kG1) {
    EXPECT_GT(res.cross_region_refs, 0u);
  } else {
    EXPECT_GT(res.old_young_refs, 0u);
  }
  if (GetParam().gc == GcKind::kCms) EXPECT_GT(res.free_chunks, 0u);
}

TEST_P(StressTorture, SameSeedReproducesTheSameSurvivingGraph) {
  TortureConfig cfg = make_config(GetParam());
  cfg.rounds = 3;
  cfg.churn_per_round = 800;
  const TortureResult a = run_torture(cfg);
  const TortureResult b = run_torture(cfg);

  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.objects_allocated, b.objects_allocated);
  EXPECT_TRUE(a.ok() && b.ok());

  cfg.seed = 43;
  const TortureResult c = run_torture(cfg);
  EXPECT_NE(a.fingerprint, c.fingerprint) << "seed must steer the workload";
}

}  // namespace
}  // namespace mgc::stress
