// Fault-matrix torture battery: every collector runs the multi-threaded
// torture loop with a fault spec armed — one spec aimed at the GC's own
// failure transitions (forced promotion/evacuation failure, PLAB refill
// failure, stalled workers), one at the allocation front end (TLAB refill
// and slow-path failures, a CMS concurrent-mode failure) — 12 configs in
// all. Armed or not, the run must end with zero verifier problems, zero
// payload errors, and every forced collection accounted for: injected
// failures may add collections, they may not corrupt the reachable graph.
//
// The replay check reruns each collector with a trigger-count spec (after/
// limit policies, so the fire schedule is independent of thread timing) and
// demands bit-identical fingerprints: same spec + same seed => same
// surviving graph, which is what makes fault experiments debuggable.
#include <gtest/gtest.h>

#include "stress/torture.h"

namespace mgc::stress {
namespace {

struct MatrixParam {
  GcKind gc;
  const char* label;
  const char* spec;
};

// Probabilities are kept low and limits tight so every config stays
// survivable: the cascade must degrade (extra GCs, failed refills ridden
// out by the ladder), not tip into OutOfMemory.
constexpr const char* kGcFaultSpec =
    "promotion-fail=0.02:limit=3;g1-evac-fail=0.02:limit=6;"
    "plab-refill=0.01:limit=6;old-alloc=0.01:limit=4;"
    "gc-worker-stall=0.05:limit=4";
constexpr const char* kAllocFaultSpec =
    "tlab-refill=0.02:limit=8;heap-alloc=0.01:limit=4;"
    "cms-concurrent-fail:after=2:limit=1";

std::vector<MatrixParam> matrix() {
  std::vector<MatrixParam> ps;
  for (GcKind gc : all_gc_kinds()) {
    ps.push_back({gc, "gcfaults", kGcFaultSpec});
    ps.push_back({gc, "allocfaults", kAllocFaultSpec});
  }
  return ps;
}

class FaultMatrix : public ::testing::TestWithParam<MatrixParam> {};

INSTANTIATE_TEST_SUITE_P(
    AllCollectors, FaultMatrix, ::testing::ValuesIn(matrix()),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      return std::string(gc_traits(info.param.gc).short_name) + "_" +
             info.param.label;
    });

TEST_P(FaultMatrix, ChurnSurvivesArmedFaultsWithConsistentHeap) {
  TortureConfig cfg;
  cfg.vm = small_stress_vm(GetParam().gc, /*tlab_enabled=*/true);
  cfg.mutators = 4;
  cfg.seed = 42;
  cfg.rounds = 4;
  cfg.churn_per_round = 1200;
  cfg.fault_spec = GetParam().spec;
  cfg.fault_seed = 7;

  const TortureResult res = run_torture(cfg);
  EXPECT_EQ(res.payload_errors, 0u);
  EXPECT_TRUE(res.problems.empty())
      << res.problems.size()
      << " verifier problems, first: " << res.problems.front();
  EXPECT_GT(res.young_gcs_forced, 0u);
  EXPECT_GT(res.cells_walked, 0u) << "verifier short-circuited";
}

class FaultReplay : public ::testing::TestWithParam<GcKind> {};

INSTANTIATE_TEST_SUITE_P(AllCollectors, FaultReplay,
                         ::testing::ValuesIn(all_gc_kinds()),
                         [](const ::testing::TestParamInfo<GcKind>& info) {
                           return gc_traits(info.param).short_name;
                         });

TEST_P(FaultReplay, SameSpecAndSeedReproduceTheSameSurvivingGraph) {
  TortureConfig cfg;
  cfg.vm = small_stress_vm(GetParam(), /*tlab_enabled=*/true);
  cfg.mutators = 4;
  cfg.seed = 42;
  cfg.rounds = 3;
  cfg.churn_per_round = 800;
  // Trigger-count policies only: check N fires regardless of which thread
  // performs it, so the injected-failure sequence replays even though the
  // OS schedule differs between runs.
  cfg.fault_spec =
      "promotion-fail:after=2:limit=2;g1-evac-fail:after=2:limit=4;"
      "tlab-refill:after=10:limit=3";
  cfg.fault_seed = 9;

  const TortureResult a = run_torture(cfg);
  const TortureResult b = run_torture(cfg);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.objects_allocated, b.objects_allocated);
  EXPECT_TRUE(a.ok() && b.ok());

  // The armed run must still reproduce the *clean* run's surviving graph:
  // injected failures add collections, never change reachable content.
  TortureConfig clean = cfg;
  clean.fault_spec.clear();
  const TortureResult c = run_torture(clean);
  EXPECT_EQ(a.fingerprint, c.fingerprint)
      << "fault injection altered the reachable graph";
}

}  // namespace
}  // namespace mgc::stress
