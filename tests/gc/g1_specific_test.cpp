// G1-specific behaviour: region accounting, remembered-set filtering,
// mixed collections reclaiming old garbage, full-GC region rebuild, and
// forced evacuation failure recovery.
#include <gtest/gtest.h>

#include "gc/g1_gc.h"
#include "runtime/heap_verifier.h"
#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/units.h"

namespace mgc {
namespace {

VmConfig g1_config(std::size_t heap_mb, std::size_t young_mb) {
  VmConfig cfg;
  cfg.gc = GcKind::kG1;
  cfg.heap_bytes = heap_mb * MiB;
  cfg.young_bytes = young_mb * MiB;
  cfg.g1_region_bytes = 128 * KiB;
  cfg.gc_threads = 2;
  return cfg;
}

TEST(G1, YoungCollectionRecyclesEdenRegions) {
  Vm vm(g1_config(16, 4));
  auto& g1 = static_cast<G1Gc&>(vm.collector());
  Vm::MutatorScope scope(vm, "t");
  Mutator& m = scope.mutator();
  const std::size_t free_before = g1.regions().free_region_count();
  for (int i = 0; i < 30000; ++i) {
    Local junk(m, m.alloc(1, 12));
    (void)junk;
  }
  m.system_gc();
  // Nothing retained: (almost) every region must be free again.
  EXPECT_GE(g1.regions().free_region_count() + 2, free_before);
  EXPECT_GT(vm.gc_log().count(), 0u);
}

TEST(G1, MixedCollectionsReclaimOldGarbage) {
  VmConfig cfg = g1_config(8, 2);
  cfg.g1_ihop = 0.15;
  cfg.tenuring_threshold = 1;  // promote aggressively: old-gen churn
  Vm vm(cfg);
  auto& g1 = static_cast<G1Gc&>(vm.collector());
  const std::size_t root = vm.create_global_root();
  {
    Vm::MutatorScope s(vm, "init");
    vm.set_global_root(root, managed::hash_map::create(s.mutator(), 512));
  }
  Vm::MutatorScope scope(vm, "t");
  Mutator& m = scope.mutator();
  // Interleave persistent and transient promotions so old regions end up
  // *partially* garbage: fully-dead regions are reclaimed for free at
  // cleanup, but mixed pauses are the only way to get these back. Regions
  // filled during a marking cycle are implicitly live until the next
  // cycle's cleanup (above-TAMS rule), so candidates need a few cycles.
  auto churn = [&](int from, int n, int window, std::size_t payload) {
    for (int i = from; i < from + n; ++i) {
      Local v(m, m.alloc(1, payload));
      v->set_field(0, static_cast<word_t>(i));
      Local map(m, vm.global_root(root));
      // Every 4th insertion is permanent; the rest rotate through a window.
      const std::uint64_t key =
          i % 4 == 0 ? 100000 + static_cast<std::uint64_t>(i % 1200)
                     : static_cast<std::uint64_t>(i % window);
      managed::hash_map::put(m, map, key, v);
    }
  };
  churn(0, 250000, 2000, 24);
  // A candidate needs a cleanup to observe an old region *partially*
  // garbage, but a fixed rotation window can phase-lock with the cleanup
  // cadence so regions are only ever seen fully live or fully dead (the
  // latter are freed for free and never become candidates). Retry in
  // bounded batches with a shifted window and payload size to break the
  // lock-in instead of asserting on one fixed allocation pattern.
  int next = 250000;
  for (int batch = 0; g1.mixed_pauses() == 0 && batch < 50; ++batch) {
    churn(next, 25000, 2000 + 977 * (batch % 7), 24 + 16 * (batch % 3));
    next += 25000;
  }
  EXPECT_GE(g1.cycles_completed(), 1u);
  EXPECT_GE(g1.mixed_pauses(), 1u) << "no mixed collection ever ran";
  const VerifyReport rep = verify_heap(vm);
  for (const auto& p : rep.problems) ADD_FAILURE() << p;
}

TEST(G1, EvacuationFailureRecoversAndHeapStaysSound) {
  // Tiny heap + big live set => evacuation failures (or full-GC
  // escalations) are certain.
  VmConfig cfg = g1_config(3, 1);
  Vm vm(cfg);
  auto& g1 = static_cast<G1Gc&>(vm.collector());
  Vm::MutatorScope scope(vm, "t");
  Mutator& m = scope.mutator();
  Local keep(m, managed::ref_array::create(m, 2400));
  try {
    for (std::size_t i = 0; i < 2400; ++i) {
      Local node(m, m.alloc(1, 120));  // ~1 KB each: ~2.4 MB live
      node->set_field(0, i * 3);
      managed::ref_array::set(m, keep.get(), i, node.get());
      Local junk(m, m.alloc(1, 16));
      (void)junk;
    }
  } catch (const OutOfMemoryError&) {
    GTEST_SKIP() << "heap genuinely too small on this run";
  }
  EXPECT_GE(g1.evacuation_failures() + vm.gc_log().summarize().full_pauses,
            1u);
  for (std::size_t i = 0; i < 2400; i += 113) {
    EXPECT_EQ(managed::ref_array::get(keep.get(), i)->field(0), i * 3);
  }
  const VerifyReport rep = verify_heap(vm);
  for (const auto& p : rep.problems) ADD_FAILURE() << p;
}

TEST(G1, HumongousObjectsPinnedAcrossFullGc) {
  Vm vm(g1_config(16, 2));
  Vm::MutatorScope scope(vm, "t");
  Mutator& m = scope.mutator();
  Local big(m, managed::blob::create_zeroed(m, 300 * KiB));
  managed::blob::mutable_data(big.get())[123] = 77;
  Obj* const before = big.get();
  EXPECT_TRUE(before->is_humongous());
  m.system_gc();
  // Humongous objects are pinned: same address, same contents.
  EXPECT_EQ(big.get(), before);
  EXPECT_EQ(managed::blob::data(big.get())[123], 77);
}

TEST(G1, SystemGcCompactsEverythingIntoOldRegions) {
  Vm vm(g1_config(16, 4));
  auto& g1 = static_cast<G1Gc&>(vm.collector());
  Vm::MutatorScope scope(vm, "t");
  Mutator& m = scope.mutator();
  Local keep(m, managed::ref_array::create(m, 500));
  for (std::size_t i = 0; i < 500; ++i) {
    Local node(m, m.alloc(0, 8));
    node->set_field(0, i);
    managed::ref_array::set(m, keep.get(), i, node.get());
  }
  m.system_gc();
  // After a full collection the young regions are empty.
  std::size_t young_used = 0;
  g1.regions().for_each_region([&](Region& r) {
    if (r.is_young()) young_used += r.used();
  });
  EXPECT_EQ(young_used, 0u);
  for (std::size_t i = 0; i < 500; i += 37) {
    EXPECT_EQ(managed::ref_array::get(keep.get(), i)->field(0), i);
  }
}

}  // namespace
}  // namespace mgc
