// Stress tests for the concurrent collectors: background cycles must run
// to completion while mutators rewire a long-lived graph, and the graph
// must stay intact through initial-mark/remark/sweep (CMS) and
// initial-mark/remark/cleanup/mixed (G1), including concurrent mode
// failures and evacuation failures.
#include <gtest/gtest.h>

#include "gc/cms_gc.h"
#include "gc/g1_gc.h"
#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/units.h"

namespace mgc {
namespace {

// Mutator kernel: keeps a rotating window of medium-lived blobs inside a
// managed hash map (constant churn of old-gen data) plus young garbage.
void churn(Vm& vm, std::size_t map_root, int thread_idx, int iters,
           std::size_t window) {
  Vm::MutatorScope scope(vm, "churn-" + std::to_string(thread_idx));
  Mutator& m = scope.mutator();
  for (int i = 0; i < iters; ++i) {
    const auto key = static_cast<std::uint64_t>(thread_idx) * (1ULL << 32) +
                     static_cast<std::uint64_t>(i) % window;
    Local value(m, m.alloc(1, 24));
    value->set_field(0, key * 7);
    Local map(m, vm.global_root(map_root));
    managed::hash_map::put(m, map, key, value);
    Local junk(m, m.alloc(2, 6));
    (void)junk;
  }
}

TEST(CmsCycle, BackgroundCycleCompletesAndPreservesData) {
  VmConfig cfg;
  cfg.gc = GcKind::kCms;
  cfg.heap_bytes = 12 * MiB;
  cfg.young_bytes = 2 * MiB;
  cfg.gc_threads = 4;
  cfg.cms_trigger_occupancy = 0.10;  // cycle early and often
  Vm vm(cfg);
  const std::size_t root = vm.create_global_root();
  {
    Vm::MutatorScope s(vm, "init");
    vm.set_global_root(root, managed::hash_map::create(s.mutator(), 1024));
  }

  churn(vm, root, 0, 60000, 4000);

  auto& cms = static_cast<CmsGc&>(vm.collector());
  EXPECT_GE(cms.cycles_completed(), 1u) << "no CMS background cycle ran";

  Vm::MutatorScope s(vm, "verify");
  Obj* map = vm.global_root(root);
  for (std::uint64_t k = 0; k < 4000; k += 13) {
    Obj* v = managed::hash_map::get(map, k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(v->field(0), k * 7);
  }
}

TEST(CmsCycle, ConcurrentModeFailureRecovers) {
  VmConfig cfg;
  cfg.gc = GcKind::kCms;
  cfg.heap_bytes = 4 * MiB;
  cfg.young_bytes = 1 * MiB;
  cfg.gc_threads = 2;
  cfg.cms_trigger_occupancy = 0.05;
  Vm vm(cfg);
  const std::size_t root = vm.create_global_root();
  {
    Vm::MutatorScope s(vm, "init");
    vm.set_global_root(root, managed::hash_map::create(s.mutator(), 512));
  }
  // Tight heap (live window ~2.2 MB vs ~3 MB old gen) + rapid promotion
  // => free-list exhaustion mid-cycle.
  churn(vm, root, 0, 60000, 8000);

  Vm::MutatorScope s(vm, "verify");
  Obj* map = vm.global_root(root);
  for (std::uint64_t k = 0; k < 8000; k += 31) {
    Obj* v = managed::hash_map::get(map, k);
    if (v != nullptr) {
      EXPECT_EQ(v->field(0), k * 7);
    }
  }
  // The run must have survived; full collections are expected.
  const auto sum = vm.gc_log().summarize();
  EXPECT_GT(sum.full_pauses, 0u);
}

TEST(G1Cycle, ConcurrentCycleAndMixedCollections) {
  VmConfig cfg;
  cfg.gc = GcKind::kG1;
  cfg.heap_bytes = 16 * MiB;
  cfg.young_bytes = 2 * MiB;
  cfg.g1_region_bytes = 128 * KiB;
  cfg.gc_threads = 4;
  cfg.g1_ihop = 0.10;
  Vm vm(cfg);
  const std::size_t root = vm.create_global_root();
  {
    Vm::MutatorScope s(vm, "init");
    vm.set_global_root(root, managed::hash_map::create(s.mutator(), 1024));
  }

  // Rotating window: constantly retires old-gen data so mixed collections
  // have garbage-rich old regions to reclaim.
  churn(vm, root, 0, 80000, 3000);

  auto& g1 = static_cast<G1Gc&>(vm.collector());
  EXPECT_GE(g1.cycles_completed(), 1u) << "no G1 marking cycle completed";

  Vm::MutatorScope s(vm, "verify");
  Obj* map = vm.global_root(root);
  EXPECT_EQ(managed::hash_map::size(map), 3000u);
  for (std::uint64_t k = 0; k < 3000; k += 7) {
    Obj* v = managed::hash_map::get(map, k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(v->field(0), k * 7);
  }
}

TEST(G1Cycle, HumongousAllocationAndReclamation) {
  VmConfig cfg;
  cfg.gc = GcKind::kG1;
  cfg.heap_bytes = 16 * MiB;
  cfg.young_bytes = 2 * MiB;
  cfg.g1_region_bytes = 128 * KiB;
  cfg.gc_threads = 2;
  cfg.g1_ihop = 0.2;
  Vm vm(cfg);
  Vm::MutatorScope s(vm, "test");
  Mutator& m = s.mutator();

  // Churn humongous blobs: each iteration drops the previous one.
  Local keeper(m);
  for (int i = 0; i < 200; ++i) {
    Obj* blob = managed::blob::create_zeroed(m, 300 * KiB);
    managed::blob::mutable_data(blob)[5] = static_cast<char>(i);
    keeper.set(blob);
    m.poll();
  }
  ASSERT_NE(keeper.get(), nullptr);
  EXPECT_TRUE(keeper.get()->is_humongous());
  EXPECT_EQ(managed::blob::data(keeper.get())[5], static_cast<char>(199));
  // Dead humongous objects must have been reclaimed along the way (via
  // full GCs or cleanup); 200 x 300 KiB >> heap, so survival proves reuse.
}

TEST(G1Cycle, MultiThreadedChurnUnderMarking) {
  VmConfig cfg;
  cfg.gc = GcKind::kG1;
  cfg.heap_bytes = 16 * MiB;
  cfg.young_bytes = 3 * MiB;
  cfg.g1_region_bytes = 128 * KiB;
  cfg.gc_threads = 4;
  cfg.g1_ihop = 0.15;
  Vm vm(cfg);
  const std::size_t root = vm.create_global_root();
  {
    Vm::MutatorScope s(vm, "init");
    vm.set_global_root(root, managed::hash_map::create(s.mutator(), 2048));
  }
  std::mutex mu;
  vm.run_mutators(4, [&](Mutator& m, int idx) {
    for (int i = 0; i < 15000; ++i) {
      const auto key =
          static_cast<std::uint64_t>(idx) * (1ULL << 32) + i % 1500;
      Local value(m, m.alloc(1, 16));
      value->set_field(0, key ^ 0xabcdef);
      {
        GuardedLock<std::mutex> g(m, mu);
        Local map(m, vm.global_root(root));
        managed::hash_map::put(m, map, key, value);
      }
      if (i % 128 == 0) m.poll();
    }
  });
  Vm::MutatorScope s(vm, "verify");
  Obj* map = vm.global_root(root);
  EXPECT_EQ(managed::hash_map::size(map), 4u * 1500u);
  for (int idx = 0; idx < 4; ++idx) {
    for (std::uint64_t i = 0; i < 1500; i += 11) {
      const auto key = static_cast<std::uint64_t>(idx) * (1ULL << 32) + i;
      Obj* v = managed::hash_map::get(map, key);
      ASSERT_NE(v, nullptr);
      EXPECT_EQ(v->field(0), key ^ 0xabcdef);
    }
  }
}

}  // namespace
}  // namespace mgc
