// Property tests, parameterized over every collector x TLAB setting:
//
//   * graph preservation — an arbitrary object graph, snapshot as a
//     structural encoding, survives any amount of collection bit-for-bit;
//   * garbage reclamation — unreachable data is actually reclaimed;
//   * aging/promotion — long-lived objects migrate to the old generation;
//   * heap exhaustion recovery — the eden-overflow full-GC path keeps the
//     VM usable.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/rng.h"
#include "support/units.h"

namespace mgc {
namespace {

struct Param {
  GcKind gc;
  bool tlab;
};

std::vector<Param> all_params() {
  std::vector<Param> ps;
  for (GcKind gc : all_gc_kinds()) {
    ps.push_back({gc, true});
    ps.push_back({gc, false});
  }
  return ps;
}

class GcProperty : public ::testing::TestWithParam<Param> {};

INSTANTIATE_TEST_SUITE_P(
    AllCollectors, GcProperty, ::testing::ValuesIn(all_params()),
    [](const ::testing::TestParamInfo<Param>& info) {
      return std::string(gc_traits(info.param.gc).short_name) +
             (info.param.tlab ? "_tlab" : "_notlab");
    });

VmConfig make_config(const Param& p) {
  VmConfig cfg;
  cfg.gc = p.gc;
  cfg.tlab_enabled = p.tlab;
  cfg.heap_bytes = 12 * MiB;
  cfg.young_bytes = 3 * MiB;
  cfg.gc_threads = 2;
  if (p.gc == GcKind::kG1) cfg.g1_region_bytes = 128 * KiB;
  return cfg;
}

// Builds a random graph (possibly cyclic) of `n` nodes under `root`.
void build_graph(Mutator& m, Local& root, Rng& rng, int n) {
  Local nodes(m, managed::ref_array::create(m, static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) {
    const auto nrefs = static_cast<std::uint16_t>(rng.below(4));
    Local node(m, m.alloc(nrefs, 2));
    node->set_field(0, rng.next());
    node->set_field(1, static_cast<word_t>(i));
    managed::ref_array::set(m, nodes.get(), static_cast<std::size_t>(i),
                            node.get());
  }
  // Random wiring, including back-edges (cycles).
  for (int i = 0; i < n; ++i) {
    Obj* node = managed::ref_array::get(nodes.get(), static_cast<std::size_t>(i));
    for (std::size_t r = 0; r < node->num_refs(); ++r) {
      Obj* target = managed::ref_array::get(
          nodes.get(), rng.below(static_cast<std::uint64_t>(n)));
      m.set_ref(node, r, target);
    }
  }
  root.set(nodes.get());
}

// Structural encoding: discovery-ordered DFS capturing shape, payload and
// edge structure. Two isomorphic-in-place graphs encode identically.
std::vector<word_t> encode_graph(Obj* root) {
  std::vector<word_t> out;
  std::map<const Obj*, std::size_t> ids;
  std::vector<Obj*> stack{root};
  while (!stack.empty()) {
    Obj* o = stack.back();
    stack.pop_back();
    if (o == nullptr) {
      out.push_back(~word_t{0});
      continue;
    }
    auto [it, fresh] = ids.emplace(o, ids.size());
    out.push_back(static_cast<word_t>(it->second));
    if (!fresh) continue;
    out.push_back(o->num_refs());
    for (std::size_t i = 0; i < o->payload_words(); ++i)
      out.push_back(o->field(i));
    for (std::size_t i = o->num_refs(); i-- > 0;) stack.push_back(o->ref(i));
  }
  return out;
}

TEST_P(GcProperty, ArbitraryGraphSurvivesCollections) {
  Vm vm(make_config(GetParam()));
  Vm::MutatorScope scope(vm, "prop");
  Mutator& m = scope.mutator();
  Rng rng(2026);

  Local root(m);
  build_graph(m, root, rng, 800);
  const std::vector<word_t> before = encode_graph(root.get());

  // Churn hard (young collections), then force full collections.
  for (int i = 0; i < 20000; ++i) {
    Local junk(m, m.alloc(2, 6));
    (void)junk;
  }
  m.system_gc();
  m.system_gc();

  EXPECT_EQ(encode_graph(root.get()), before);
  EXPECT_GT(vm.gc_log().count(), 0u);
}

TEST_P(GcProperty, GraphSurvivesRewiringUnderPressure) {
  Vm vm(make_config(GetParam()));
  Vm::MutatorScope scope(vm, "prop");
  Mutator& m = scope.mutator();
  Rng rng(99);

  Local root(m);
  build_graph(m, root, rng, 400);
  // Interleave mutation with garbage: collectors must track the moving
  // target (write barriers, card maintenance).
  for (int round = 0; round < 50; ++round) {
    Obj* nodes = root.get();
    const std::size_t n = managed::ref_array::capacity(nodes);
    for (int i = 0; i < 40; ++i) {
      Obj* a = managed::ref_array::get(nodes, rng.below(n));
      Obj* b = managed::ref_array::get(nodes, rng.below(n));
      if (a->num_refs() > 0) m.set_ref(a, rng.below(a->num_refs()), b);
      Local junk(m, m.alloc(1, 12));
      (void)junk;
    }
    m.poll();
  }
  const std::vector<word_t> snapshot = encode_graph(root.get());
  m.system_gc();
  EXPECT_EQ(encode_graph(root.get()), snapshot);
}

TEST_P(GcProperty, UnreachableMemoryIsReclaimed) {
  Vm vm(make_config(GetParam()));
  Vm::MutatorScope scope(vm, "prop");
  Mutator& m = scope.mutator();
  // Allocate ~4 heaps' worth of garbage: impossible without reclamation.
  for (int i = 0; i < 50000; ++i) {
    Local junk(m, m.alloc(1, 100));  // ~864 B
    (void)junk;
  }
  m.system_gc();
  EXPECT_LT(vm.usage().used, 2 * MiB);
}

TEST_P(GcProperty, LongLivedObjectsArePromoted) {
  Vm vm(make_config(GetParam()));
  Vm::MutatorScope scope(vm, "prop");
  Mutator& m = scope.mutator();
  // A retained set that survives many young collections must end up
  // counted in the old generation.
  Local keep(m, managed::ref_array::create(m, 2000));
  for (std::size_t i = 0; i < 2000; ++i) {
    Local node(m, m.alloc(0, 8));
    node->set_field(0, i);
    managed::ref_array::set(m, keep.get(), i, node.get());
  }
  // ~50 MB of churn => ~20 young collections: enough for the retained set
  // to hit the tenuring threshold (6) and be promoted.
  for (int i = 0; i < 100000; ++i) {
    Local junk(m, m.alloc(1, 60));
    (void)junk;
  }
  const HeapUsage u = vm.usage();
  EXPECT_GT(u.old_used, 100 * KiB)
      << "retained set should have been promoted";
  // And it is still intact.
  for (std::size_t i = 0; i < 2000; i += 97) {
    EXPECT_EQ(managed::ref_array::get(keep.get(), i)->field(0), i);
  }
}

TEST_P(GcProperty, RecoversWhenLiveSetApproachesCapacity) {
  VmConfig cfg = make_config(GetParam());
  cfg.heap_bytes = 6 * MiB;
  cfg.young_bytes = 2 * MiB;
  Vm vm(cfg);
  Vm::MutatorScope scope(vm, "prop");
  Mutator& m = scope.mutator();
  // Fill ~60% of the heap with live data (stresses promotion failure and
  // the eden-overflow compaction path), then keep allocating garbage.
  Local keep(m, managed::ref_array::create(m, 3600));
  for (std::size_t i = 0; i < 3600; ++i) {
    Local node(m, m.alloc(0, 120));  // ~1 KB
    node->set_field(0, i * 31);
    managed::ref_array::set(m, keep.get(), i, node.get());
  }
  for (int i = 0; i < 20000; ++i) {
    Local junk(m, m.alloc(1, 30));
    (void)junk;
  }
  for (std::size_t i = 0; i < 3600; i += 131) {
    EXPECT_EQ(managed::ref_array::get(keep.get(), i)->field(0), i * 31);
  }
}

}  // namespace
}  // namespace mgc
