// Epsilon baseline collector tests: the no-op collector must never run a
// collection cycle, keep the expanded verifier clean, and turn heap
// exhaustion into a structured *hopeless* OutOfMemoryError — never an
// abort, never a retry loop that hangs. A fault-armed torture run folds
// Epsilon into the stress matrix.
#include <gtest/gtest.h>

#include <string>

#include "runtime/heap_verifier.h"
#include "runtime/vm.h"
#include "stress/torture.h"
#include "support/units.h"

namespace mgc {
namespace {

VmConfig epsilon_config(std::size_t heap_bytes) {
  VmConfig cfg;
  cfg.gc = GcKind::kEpsilon;
  cfg.heap_bytes = heap_bytes;
  cfg.young_bytes = std::min<std::size_t>(heap_bytes / 4, 4 * MiB);
  cfg.tlab_bytes = 4 * KiB;
  return cfg;
}

TEST(EpsilonTest, ZeroCollectionCyclesUnderChurn) {
  Vm vm(epsilon_config(64 * MiB));
  Vm::MutatorScope scope(vm, "test");
  Mutator& m = scope.mutator();

  // Enough churn to overflow eden many times over: every refill must come
  // from bump space, never from a collection.
  constexpr int kNodes = 1000;
  Local head(m);
  for (int i = 0; i < kNodes; ++i) {
    Local node(m, m.alloc(1, 2));
    node->set_field(0, static_cast<word_t>(i));
    m.set_ref(node.get(), 0, head.get());
    head.set(node.get());
    for (int g = 0; g < 20; ++g) {
      Local junk(m, m.alloc(2, 8));
      (void)junk;
    }
  }

  int count = 0;
  for (Obj* cur = head.get(); cur != nullptr; cur = cur->ref(0)) {
    EXPECT_EQ(cur->field(0), static_cast<word_t>(kNodes - 1 - count));
    ++count;
  }
  EXPECT_EQ(count, kNodes);
  EXPECT_EQ(vm.gc_log().count(), 0u) << "Epsilon must never collect";

  const GcCostSnapshot cost = vm.cost_snapshot();
  EXPECT_EQ(cost.pauses, 0u);
  EXPECT_EQ(cost.pause_ns, 0);
  EXPECT_EQ(cost.barrier_ops(), 0u) << "Epsilon has no write barrier";
  EXPECT_EQ(cost.concurrent_cycles, 0u);
}

TEST(EpsilonTest, SystemGcIsANoOp) {
  Vm vm(epsilon_config(64 * MiB));
  Vm::MutatorScope scope(vm, "test");
  Mutator& m = scope.mutator();

  for (int i = 0; i < 2000; ++i) {
    Local junk(m, m.alloc(1, 16));
    (void)junk;
  }
  const HeapUsage before = vm.usage();
  m.system_gc();
  const HeapUsage after = vm.usage();
  EXPECT_EQ(vm.gc_log().count(), 0u) << "forced GC must be skipped";
  EXPECT_GE(after.used, before.used) << "nothing may be reclaimed";
}

TEST(EpsilonTest, ExpandedVerifierIsClean) {
  Vm vm(epsilon_config(64 * MiB));
  Vm::MutatorScope scope(vm, "test");
  Mutator& m = scope.mutator();

  // A mix of young-resident and bump-promoted objects with cross refs —
  // without a card barrier the generational card checks don't apply (the
  // dispatch drops them for Epsilon), but space metadata, headers, and the
  // reachable graph must all verify.
  Local head(m);
  for (int i = 0; i < 5000; ++i) {
    Local node(m, m.alloc(2, 6));
    node->set_field(0, static_cast<word_t>(i));
    m.set_ref(node.get(), 0, head.get());
    head.set(node.get());
  }
  const VerifyReport rep = verify_heap_at_safepoint(m);
  EXPECT_TRUE(rep.ok()) << rep.problems.size() << " problems, first: "
                        << (rep.problems.empty() ? std::string()
                                                 : rep.problems.front());
  EXPECT_GT(rep.cells_walked, 0u) << "verifier must actually walk the heap";
}

TEST(EpsilonTest, ExhaustionThrowsHopelessOutOfMemory) {
  Vm vm(epsilon_config(2 * MiB));
  Vm::MutatorScope scope(vm, "test");
  Mutator& m = scope.mutator();

  Local head(m);
  bool threw = false;
  try {
    // Retain everything: with no reclamation this must exhaust the heap in
    // bounded time (a hang here means the allocation ladder is retrying a
    // collector that never frees anything).
    while (true) {
      Local node(m, m.alloc(1, 64));
      m.set_ref(node.get(), 0, head.get());
      head.set(node.get());
    }
  } catch (const OutOfMemoryError& e) {
    threw = true;
    EXPECT_TRUE(e.hopeless())
        << "Epsilon exhaustion is unrecoverable by definition";
    EXPECT_GT(e.requested_bytes(), 0u);
    // Either the capacity fast-fail ("exceeds the largest satisfiable
    // allocation", once the bump space is gone) or the Epsilon slow path
    // ("never reclaims memory") — both are structured, hopeless reports.
    const std::string what = e.what();
    EXPECT_TRUE(what.find("never reclaims") != std::string::npos ||
                what.find("exceeds the largest satisfiable") !=
                    std::string::npos)
        << "diagnostic should say why: " << what;
  }
  EXPECT_TRUE(threw);
  EXPECT_EQ(vm.gc_log().count(), 0u)
      << "no collection may run on the way to OOM";

  // The VM survives the failed allocation: the retained list built before
  // the OOM stays readable through its reference chain.
  ASSERT_NE(head.get(), nullptr);
  int walked = 0;
  for (Obj* cur = head.get(); cur != nullptr && walked < 16; cur = cur->ref(0))
    ++walked;
  EXPECT_EQ(walked, 16);
}

TEST(EpsilonTest, OversizedRequestFailsFastAndHopeless) {
  Vm vm(epsilon_config(2 * MiB));
  Vm::MutatorScope scope(vm, "test");
  Mutator& m = scope.mutator();
  try {
    // Larger than the whole heap: must fail without touching the ladder.
    (void)m.alloc(0, 4 * MiB / sizeof(word_t));
    FAIL() << "allocation beyond heap capacity must throw";
  } catch (const OutOfMemoryError& e) {
    EXPECT_TRUE(e.hopeless());
  }
}

// --- stress-matrix membership ------------------------------------------------

stress::TortureConfig epsilon_torture(std::uint64_t seed) {
  stress::TortureConfig cfg;
  // Epsilon never reclaims, so the torture heap must hold the whole run's
  // allocation volume; the churn knobs are scaled down to keep the volume
  // bounded while still exercising TLAB refill, large, and humongous paths.
  cfg.vm = epsilon_config(256 * MiB);
  cfg.mutators = 4;
  cfg.seed = seed;
  cfg.rounds = 3;
  cfg.churn_per_round = 400;
  cfg.huge_payload_words = 2000;
  cfg.full_every = 2;  // forced fulls are skipped — but must stay harmless
  return cfg;
}

TEST(EpsilonTortureTest, MultiThreadedChurnPassesVerifier) {
  const stress::TortureResult res = stress::run_torture(epsilon_torture(42));
  EXPECT_EQ(res.payload_errors, 0u);
  EXPECT_TRUE(res.problems.empty())
      << res.problems.size() << " verifier problems, first: "
      << res.problems.front();
  EXPECT_GT(res.cells_walked, 0u);
}

TEST(EpsilonTortureTest, FaultArmedRunSurvivesAndReplays) {
  // heap-alloc and tlab-refill faults hit Epsilon's dedicated slow path;
  // after/limit policies keep the schedule timing-independent so the
  // surviving graph must replay bit for bit.
  stress::TortureConfig cfg = epsilon_torture(42);
  cfg.fault_spec = "tlab-refill:after=8:limit=6;heap-alloc:after=20:limit=3";
  const stress::TortureResult a = stress::run_torture(cfg);
  EXPECT_EQ(a.payload_errors, 0u);
  EXPECT_TRUE(a.problems.empty())
      << a.problems.size() << " verifier problems, first: "
      << a.problems.front();

  const stress::TortureResult b = stress::run_torture(cfg);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.objects_allocated, b.objects_allocated);

  cfg.seed = 43;
  const stress::TortureResult c = stress::run_torture(cfg);
  EXPECT_NE(a.fingerprint, c.fingerprint) << "seed must steer the workload";
}

}  // namespace
}  // namespace mgc
